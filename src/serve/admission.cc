#include "serve/admission.h"

#include <string>

namespace dar::serve {

AdmissionController::AdmissionController(AdmissionConfig config,
                                         telemetry::MetricsRegistry* registry)
    : config_(config) {
  if (registry == nullptr) return;
  admitted_metric_ = registry->GetCounter("serve.admitted");
  shed_metric_ = registry->GetCounter("serve.shed");
  in_flight_gauge_ = registry->GetGauge("serve.queue_depth");
}

AdmissionController::TenantState* AdmissionController::GetTenant(
    std::string_view tenant) {
  const MutexLock lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(std::string(tenant),
                          std::make_unique<TenantState>())
             .first;
  }
  return it->second.get();
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    std::string_view tenant) {
  TenantState* state = GetTenant(tenant);

  // Optimistically take the global slot, backing out on any quota miss —
  // under load the common path is three uncontended fetch_adds.
  const uint32_t global =
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.max_concurrent != 0 && global > config_.max_concurrent) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (shed_metric_) shed_metric_->Increment();
    return Status::ResourceExhausted(
        "server at max_concurrent=" + std::to_string(config_.max_concurrent) +
        " in-flight requests; retry with backoff");
  }
  const uint32_t mine =
      state->in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.max_per_tenant != 0 && mine > config_.max_per_tenant) {
    state->in_flight.fetch_sub(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (shed_metric_) shed_metric_->Increment();
    return Status::ResourceExhausted(
        "tenant \"" + std::string(tenant) + "\" at max_per_tenant=" +
        std::to_string(config_.max_per_tenant) + " in-flight requests");
  }
  if (config_.max_tenant_requests != 0) {
    const uint64_t total =
        state->admitted_total.fetch_add(1, std::memory_order_relaxed) + 1;
    if (total > config_.max_tenant_requests) {
      // Leave the counter past the cap: the quota is lifetime, so every
      // later request observes it exhausted too.
      state->in_flight.fetch_sub(1, std::memory_order_relaxed);
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (shed_metric_) shed_metric_->Increment();
      return Status::ResourceExhausted(
          "tenant \"" + std::string(tenant) + "\" exhausted its " +
          std::to_string(config_.max_tenant_requests) + "-request quota");
    }
  }
  if (admitted_metric_) admitted_metric_->Increment();
  if (in_flight_gauge_) in_flight_gauge_->Set(global);
  return Ticket(this, state);
}

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  tenant_->in_flight.fetch_sub(1, std::memory_order_relaxed);
  const uint32_t now =
      controller_->in_flight_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (controller_->in_flight_gauge_) {
    controller_->in_flight_gauge_->Set(now);
  }
  controller_ = nullptr;
  tenant_ = nullptr;
}

}  // namespace dar::serve
