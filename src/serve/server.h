#ifndef DAR_SERVE_SERVER_H_
#define DAR_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "serve/admission.h"
#include "serve/query_service.h"
#include "telemetry/metrics.h"

namespace dar::serve {

struct ServerConfig {
  /// IPv4 address to bind ("127.0.0.1" keeps the server loopback-only,
  /// "0.0.0.0" exposes it).
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port, reported by port() after Start.
  uint16_t port = 0;
  /// Concurrent connections (sessions); further accepts are closed
  /// immediately (connection-level shed).
  uint32_t max_sessions = 64;
  /// Per-request admission quotas (see admission.h).
  AdmissionConfig admission;
};

/// The rule-serving front end: a TCP listener answering both the framed
/// binary protocol (serve/protocol.h) and plain HTTP/JSON
/// (serve/http_adapter.h) on ONE port — the first bytes of a connection
/// pick the dialect (HTTP method names vs. a frame length prefix).
///
/// Session model: one thread per accepted connection, bounded by
/// max_sessions. A binary session runs request/response in order on its
/// connection (pipelining is legal; responses echo request ids); an HTTP
/// session answers one request and closes. Each session's tenant (Hello
/// frame / X-Tenant header) scopes per-tenant admission quotas; every
/// request passes AdmissionController before touching the QueryService,
/// so overload sheds kOverloaded/429 instead of queueing unboundedly.
///
/// Every session thread is joined: a finishing session parks its own
/// thread handle (a thread cannot join itself) and the accept loop or
/// Stop() reaps it, so no thread ever outlives the server object. The
/// locking discipline is compile-checked (common/mutex.h).
///
/// The server NEVER blocks rule publication: queries read whatever
/// snapshot the QueryService's source currently publishes, so a
/// background re-mine or a RestoreCheckpoint re-bind hot-swaps what is
/// served between one response and the next, while each individual
/// response stays single-generation consistent.
///
/// `service` must outlive the server. Stop() (also run by the destructor)
/// closes the listener and every live connection and joins all session
/// threads before returning.
class RuleServer {
 public:
  RuleServer(const QueryService& service, ServerConfig config,
             telemetry::MetricsRegistry* registry = nullptr);
  ~RuleServer();

  RuleServer(const RuleServer&) = delete;
  RuleServer& operator=(const RuleServer&) = delete;

  /// Binds, listens and starts accepting. Fails with IOError (socket
  /// errors, port in use) or InvalidArgument (bad host); AlreadyExists
  /// when started twice.
  [[nodiscard]] Status Start();

  /// Idempotent; safe to call while requests are in flight (they are cut
  /// off at the socket).
  void Stop();

  /// The bound port (the ephemeral one when config.port was 0); 0 before
  /// Start.
  [[nodiscard]] uint16_t port() const { return port_; }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Connections accepted over the server's lifetime.
  [[nodiscard]] uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Connections closed at accept because max_sessions was reached.
  [[nodiscard]] uint64_t connections_shed() const {
    return connections_shed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const AdmissionController& admission() const {
    return admission_;
  }

 private:
  void AcceptLoop();
  // Runs one connection to completion; owns fd (registered in live_fds_).
  void ServeConnection(int fd);
  void ServeBinary(int fd);
  void ServeHttp(int fd);

  // Removes fd from sessions_ (parking the session's thread handle in
  // finished_), closes it and wakes Stop.
  void FinishConnection(int fd);

  // Joins the parked handles of sessions that already finished.
  void ReapFinished() DAR_EXCLUDES(conn_mu_);

  const QueryService& service_;
  const ServerConfig config_;
  AdmissionController admission_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  Mutex conn_mu_;
  CondVar conn_cv_;
  // Live sessions: connection fd -> the thread serving it. A session
  // removes itself in FinishConnection, moving its handle to finished_.
  std::map<int, std::thread> sessions_ DAR_GUARDED_BY(conn_mu_);
  // Handles of finished sessions awaiting join (see ReapFinished).
  std::vector<std::thread> finished_ DAR_GUARDED_BY(conn_mu_);

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_shed_{0};

  // Null when telemetry is disabled.
  telemetry::Counter* connections_metric_ = nullptr;
  telemetry::Counter* connections_shed_metric_ = nullptr;
  telemetry::Counter* binary_requests_ = nullptr;
  telemetry::Counter* http_requests_ = nullptr;
  telemetry::Counter* protocol_errors_ = nullptr;
};

}  // namespace dar::serve

#endif  // DAR_SERVE_SERVER_H_
