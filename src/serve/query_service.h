#ifndef DAR_SERVE_QUERY_SERVICE_H_
#define DAR_SERVE_QUERY_SERVICE_H_

#include <memory>
#include <utility>

#include "common/status.h"
#include "core/miner_result.h"
#include "relation/partition.h"
#include "relation/schema.h"
#include "serve/query_api.h"
#include "stream/snapshot_cell.h"
#include "telemetry/metrics.h"

namespace dar {

class RuleSnapshot;    // stream/rule_snapshot.h
class StreamingMiner;  // stream/streaming_miner.h

/// The transport-agnostic query facade — the ONE surface through which
/// rules are read, shared by in-process callers, the framed binary
/// protocol and the HTTP adapter (serve/server.h). It answers the
/// versioned requests of serve/query_api.h from the latest published
/// RuleSnapshot, hiding the stream-layer machinery (RuleSnapshot,
/// RuleIndex, SnapshotCell) that used to leak into examples and tests.
///
/// A service is *bound* to a snapshot source:
///   - AttachStream: a live dar::stream — every request is answered from
///     the stream's latest snapshot, so background re-mining hot-swaps
///     the served generation without a single blocked reader;
///   - AttachSnapshot: a pinned snapshot — e.g. one-shot Session::Mine
///     results wrapped via MakeSnapshot, or a checkpoint restored for
///     read-only serving.
/// Rebinding is itself a lock-free hot swap: queries in flight finish on
/// the binding they acquired (which keeps its stream/snapshot alive), new
/// queries see the new source. That is how a server warm-starts from a
/// RestoreCheckpoint while traffic is running.
///
/// Consistency contract: every response is derived from exactly one
/// snapshot generation — generation, row counts, ids and totals are never
/// a torn mix across a concurrent re-mine or re-bind (pinned by the
/// TSan-labeled tests in tests/serve_test.cc).
///
/// Hot path: PointQuery performs no allocation in steady state — the
/// request views its tuple, the response reuses its vectors, the index
/// scratch is thread-local, and the only shared-ownership traffic is the
/// two lock-free acquires (binding, then snapshot).
///
/// Thread-safe: any number of threads may call the query methods
/// concurrently with each other and with Attach* calls.
class QueryService {
 public:
  /// `registry` may be null (telemetry disabled). Metrics live under
  /// serve.* next to the stream.* counters of the backing stream.
  explicit QueryService(telemetry::MetricsRegistry* registry = nullptr);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Binds to a live stream WITHOUT taking ownership: `stream` must
  /// outlive both this binding (until the next Attach*) and any query
  /// still in flight on it. Prefer the shared_ptr overload when the
  /// service outlives the code that opened the stream.
  void AttachStream(const StreamingMiner& stream);

  /// Binds to a live stream, sharing ownership: the stream stays alive as
  /// long as any in-flight query still uses the old binding.
  void AttachStream(std::shared_ptr<const StreamingMiner> stream);

  /// Binds to a pinned snapshot (may be null to detach — queries then
  /// fail kUnavailable). `schema`/`partition` provide the naming context
  /// for rule text.
  void AttachSnapshot(std::shared_ptr<const RuleSnapshot> snapshot,
                      Schema schema, AttributePartition partition);

  /// Wraps one-shot mining results as a servable snapshot (generation 1,
  /// rule index built), so batch callers get the same query surface as
  /// streams. The row count is recovered from the Phase-I tree stats.
  static std::shared_ptr<const RuleSnapshot> MakeSnapshot(
      DarMiningResult result, const AttributePartition& partition);

  /// Point query: which clusters contain the tuple, which rules fire.
  /// Errors: kUnavailable (no snapshot), kInvalidRequest (tuple too short
  /// or the snapshot has no index).
  [[nodiscard]] Status PointQuery(const PointQueryRequest& request,
                                  PointQueryResponse& response) const;

  /// Paginated rule listing from the current snapshot.
  [[nodiscard]] Status ListRules(const RuleListRequest& request,
                                 RuleListResponse& response) const;

  /// Measure-ranked, score-filtered rule listing. Errors: kUnavailable
  /// (no snapshot), kInvalidRequest (snapshot carries no scores — open the
  /// stream with StreamConfig::score_measures), kNotFound (measure not
  /// among the scored ones, message lists what is available).
  [[nodiscard]] Status ListRulesScored(
      const ScoredRuleListRequest& request,
      ScoredRuleListResponse& response) const;

  /// Drift report of the current snapshot against its predecessor.
  /// Errors: kUnavailable (no snapshot, or no diff yet — the stream needs
  /// StreamConfig::diff_snapshots and at least two generations).
  [[nodiscard]] Status Diff(const RuleDiffRequest& request,
                            RuleDiffResponse& response) const;

  /// Metadata of the current snapshot. When a source is attached but has
  /// not published yet, succeeds with generation 0 (the readiness-probe
  /// shape); fails kUnavailable only when nothing is attached.
  [[nodiscard]] Status SnapshotInfo(SnapshotInfoResponse& response) const;

  /// True once any source is attached (even if it has not published yet).
  [[nodiscard]] bool bound() const { return binding_.load() != nullptr; }

 private:
  // One immutable source binding, published through a SnapshotCell so
  // re-binding never blocks readers. Exactly one of {stream, pinned} is
  // the source; `owned_stream` keeps the shared_ptr overload's stream
  // alive and aliases `stream` when used.
  struct Binding {
    const StreamingMiner* stream = nullptr;  // not owned; may be null
    std::shared_ptr<const StreamingMiner> owned_stream;
    std::shared_ptr<const RuleSnapshot> pinned;
    Schema schema;
    AttributePartition partition;
  };

  // The current snapshot under `binding`, or kUnavailable.
  static Status Acquire(const Binding* binding,
                        std::shared_ptr<const RuleSnapshot>& snapshot);

  SnapshotCell<const Binding> binding_;

  // Telemetry handles, resolved once at construction (null when the
  // registry is null). Latency histograms carry Unit::kSeconds, so the
  // deterministic exporter view excludes them automatically.
  telemetry::Counter* point_queries_ = nullptr;
  telemetry::Counter* rule_lists_ = nullptr;
  telemetry::Counter* scored_lists_ = nullptr;
  telemetry::Counter* diffs_ = nullptr;
  telemetry::Counter* snapshot_infos_ = nullptr;
  telemetry::Counter* unavailable_ = nullptr;
  telemetry::Histogram* point_query_seconds_ = nullptr;
  telemetry::Histogram* rule_list_seconds_ = nullptr;
};

}  // namespace dar

#endif  // DAR_SERVE_QUERY_SERVICE_H_
