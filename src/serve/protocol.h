#ifndef DAR_SERVE_PROTOCOL_H_
#define DAR_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "persist/wire.h"
#include "serve/query_api.h"

namespace dar::serve {

/// The framed binary protocol the rule server speaks (the HTTP adapter is
/// a thin translation onto the same request surface).
///
/// Framing: every message is `u32 length (little-endian) | payload`, with
/// `length == payload size <= kMaxFrameBytes`. The payload reuses the
/// dar::persist wire primitives (WireWriter/WireReader), so every integer
/// is little-endian and every double is its IEEE-754 bit pattern —
/// byte-identical across machines.
///
/// Request payload:  u32 api_version | u8 method | u64 request_id | body.
/// Response payload: u32 api_version | u8 method | u64 request_id |
///                   u8 serve_code | [error message Str when code != ok |
///                   body when code == ok].
/// The response echoes the request's method and request_id, so a client
/// pipelining requests can match responses by id.
///
/// Versioning: api_version is kQueryApiVersion. A server receiving a
/// frame with an unknown version answers kInvalidRequest naming both
/// versions instead of misparsing the body (fields within one version are
/// append-only; see query_api.h).
enum class Method : uint8_t {
  /// Opens a session: body = tenant name Str (may be empty). The server
  /// uses the tenant for per-tenant admission quotas. Response body is
  /// empty. Optional — a connection that skips Hello runs as tenant "".
  kHello = 1,
  /// Body: u32 max_rules | u32 tuple count | count * f64.
  /// Response body: u64 generation | i64 rows_ingested |
  ///   u32 total_rule_matches | u32 #clusters | #clusters * u32 |
  ///   u32 #rules | #rules * u32.
  kPointQuery = 2,
  /// Body: u32 offset | u32 limit | u8 include_text.
  /// Response body: u64 generation | i64 rows_ingested | u32 total_rules |
  ///   u32 offset | u32 #entries | per entry: u32 id | f64 degree |
  ///   i64 support_count | u32 antecedent_size | u32 consequent_size |
  ///   Str text.
  kListRules = 3,
  /// Empty body. Response body: u32 api_version | u64 generation |
  ///   i64 rows_ingested | u64 num_clusters | u64 num_rules | u8 has_index.
  kSnapshotInfo = 4,
  /// Measure-filtered listing. Body: u32 offset | u32 limit |
  ///   u8 include_text | Str measure | u8 has_min | f64 min_score |
  ///   u8 has_max | f64 max_score | u8 include_pruned.
  /// Response body: u64 generation | i64 rows_ingested |
  ///   u32 total_matching | u32 offset | Str measure | u32 #entries |
  ///   per entry: u32 id | f64 degree | i64 support_count | f64 score |
  ///   u8 representative | u32 antecedent_size | u32 consequent_size |
  ///   Str text.
  kListRulesScored = 5,
  /// Drift report. Body: u32 limit | u8 include_text.
  /// Response body: u64 old_generation | u64 new_generation |
  ///   i64 rows_ingested | u32 born | u32 died | u32 drifted |
  ///   u32 unchanged | u32 total_changed | u32 #entries | per entry:
  ///   u8 kind | u32 rule_id | f64 degree | f64 interval_shift | Str text.
  kDiff = 6,
};

/// Hard cap on one frame's payload; a length prefix above it is treated as
/// a corrupt or hostile stream and the connection is dropped.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Hard cap on a point-query tuple's value count (well above any real
/// schema width; bounds the decode allocation).
inline constexpr uint32_t kMaxTupleValues = 4096;

/// Decoded request header, echoed verbatim into the response.
struct RequestHeader {
  uint32_t api_version = kQueryApiVersion;
  Method method = Method::kHello;
  uint64_t request_id = 0;
};

/// One decoded request. Which member is meaningful depends on
/// header.method. `tenant` views the payload buffer and `point.tuple`
/// views the caller's scratch vector: both stay valid only until the next
/// DecodeRequest call on the same buffers.
struct Request {
  RequestHeader header;
  std::string_view tenant;      // kHello
  PointQueryRequest point;      // kPointQuery
  RuleListRequest list;         // kListRules
  ScoredRuleListRequest scored; // kListRulesScored
  RuleDiffRequest diff;         // kDiff
};

/// Appends `u32 length | payload` to `out`.
void AppendFrame(std::string_view payload, persist::WireWriter& out);

/// Reads one frame length prefix out of `bytes` (which must hold >= 4
/// bytes) and validates it against kMaxFrameBytes.
Result<uint32_t> DecodeFrameLength(std::string_view bytes);

// --- Request encoding (client side) -----------------------------------
// Each encoder writes the request PAYLOAD into `out` (cleared first);
// callers frame it with AppendFrame. Reusing the same two writers across
// messages keeps the encode path allocation-free in steady state.

void EncodeHelloRequest(uint64_t request_id, std::string_view tenant,
                        persist::WireWriter& out);
void EncodePointQueryRequest(uint64_t request_id,
                             const PointQueryRequest& request,
                             persist::WireWriter& out);
void EncodeRuleListRequest(uint64_t request_id,
                           const RuleListRequest& request,
                           persist::WireWriter& out);
void EncodeSnapshotInfoRequest(uint64_t request_id,
                               persist::WireWriter& out);
void EncodeScoredRuleListRequest(uint64_t request_id,
                                 const ScoredRuleListRequest& request,
                                 persist::WireWriter& out);
void EncodeRuleDiffRequest(uint64_t request_id,
                           const RuleDiffRequest& request,
                           persist::WireWriter& out);

// --- Request decoding (server side) -----------------------------------

/// Decodes one request payload. Point-query tuple values are decoded into
/// `tuple_scratch` (cleared first) and viewed by the result. Fails with
/// InvalidArgument on version skew, unknown method, out-of-contract sizes
/// or trailing bytes; OutOfRange on truncation.
Result<Request> DecodeRequest(std::string_view payload,
                              std::vector<double>& tuple_scratch);

// --- Response encoding (server side) ----------------------------------

/// Error response: header echo + code + message, no body. `code` must not
/// be kOk.
void EncodeErrorResponse(const RequestHeader& header, ServeCode code,
                         std::string_view message, persist::WireWriter& out);
void EncodeHelloResponse(const RequestHeader& header,
                         persist::WireWriter& out);
void EncodePointQueryResponse(const RequestHeader& header,
                              const PointQueryResponse& response,
                              persist::WireWriter& out);
void EncodeRuleListResponse(const RequestHeader& header,
                            const RuleListResponse& response,
                            persist::WireWriter& out);
void EncodeSnapshotInfoResponse(const RequestHeader& header,
                                const SnapshotInfoResponse& response,
                                persist::WireWriter& out);
void EncodeScoredRuleListResponse(const RequestHeader& header,
                                  const ScoredRuleListResponse& response,
                                  persist::WireWriter& out);
void EncodeRuleDiffResponse(const RequestHeader& header,
                            const RuleDiffResponse& response,
                            persist::WireWriter& out);

// --- Response decoding (client side) ----------------------------------

/// Header + outcome of one response payload. When `code != kOk`, `message`
/// carries the server's error text and no body follows.
struct ResponseHeader {
  RequestHeader header;
  ServeCode code = ServeCode::kOk;
  std::string message;
};

/// Decodes the response header (and error message, when present), leaving
/// `reader` positioned at the body.
Result<ResponseHeader> DecodeResponseHeader(persist::WireReader& reader);

/// Body decoders; call after DecodeResponseHeader returned code == kOk.
/// Each validates that the body is fully consumed.
Status DecodePointQueryBody(persist::WireReader& reader,
                            PointQueryResponse& out);
Status DecodeRuleListBody(persist::WireReader& reader, RuleListResponse& out);
Status DecodeSnapshotInfoBody(persist::WireReader& reader,
                              SnapshotInfoResponse& out);
Status DecodeScoredRuleListBody(persist::WireReader& reader,
                                ScoredRuleListResponse& out);
Status DecodeRuleDiffBody(persist::WireReader& reader, RuleDiffResponse& out);

}  // namespace dar::serve

#endif  // DAR_SERVE_PROTOCOL_H_
