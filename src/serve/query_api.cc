#include "serve/query_api.h"

#include <utility>

namespace dar {

const char* ServeCodeName(ServeCode code) {
  switch (code) {
    case ServeCode::kOk:
      return "ok";
    case ServeCode::kInvalidRequest:
      return "invalid_request";
    case ServeCode::kNotFound:
      return "not_found";
    case ServeCode::kUnavailable:
      return "unavailable";
    case ServeCode::kOverloaded:
      return "overloaded";
    case ServeCode::kInternal:
      return "internal";
  }
  return "unknown";
}

ServeCode ServeCodeFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return ServeCode::kOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return ServeCode::kInvalidRequest;
    case StatusCode::kNotFound:
      return ServeCode::kNotFound;
    case StatusCode::kUnavailable:
      return ServeCode::kUnavailable;
    case StatusCode::kResourceExhausted:
      return ServeCode::kOverloaded;
    default:
      return ServeCode::kInternal;
  }
}

Status StatusFromServeCode(ServeCode code, std::string message) {
  switch (code) {
    case ServeCode::kOk:
      return Status::OK();
    case ServeCode::kInvalidRequest:
      return Status::InvalidArgument(std::move(message));
    case ServeCode::kNotFound:
      return Status::NotFound(std::move(message));
    case ServeCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case ServeCode::kOverloaded:
      return Status::ResourceExhausted(std::move(message));
    case ServeCode::kInternal:
      return Status::Internal(std::move(message));
  }
  return Status::Internal(std::move(message));
}

}  // namespace dar
