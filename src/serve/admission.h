#ifndef DAR_SERVE_ADMISSION_H_
#define DAR_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "telemetry/metrics.h"

namespace dar::serve {

/// Load-shedding quotas. Zero never means "block everything" — it means
/// "no limit" — so a zeroed config admits freely.
struct AdmissionConfig {
  /// In-flight requests across all tenants; excess is shed. 0 = unlimited.
  uint32_t max_concurrent = 256;
  /// In-flight requests per tenant. 0 = unlimited.
  uint32_t max_per_tenant = 64;
  /// Lifetime request quota per tenant (admitted requests only; sheds do
  /// not consume it). 0 = unlimited.
  uint64_t max_tenant_requests = 0;
};

/// Bounded admission for the rule server: every request acquires a Ticket
/// before touching the QueryService, or is shed with ResourceExhausted
/// (kOverloaded on the wire) WITHOUT being executed — under overload the
/// server stays responsive and degrades by rejecting, not by queueing
/// unboundedly.
///
/// The admit/release hot path is lock-free (a few atomic RMWs); the only
/// lock guards the first sighting of a new tenant name. Per-tenant state
/// lives behind stable pointers, so tickets outliving a map insert are
/// safe.
///
/// Thread-safe.
class AdmissionController {
 private:
  // One tenant's live usage. Stable address: nodes are never erased.
  struct TenantState {
    std::atomic<uint32_t> in_flight{0};
    std::atomic<uint64_t> admitted_total{0};
  };

 public:
  explicit AdmissionController(AdmissionConfig config,
                               telemetry::MetricsRegistry* registry = nullptr);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII admission slot: holds one unit of the global and per-tenant
  /// in-flight budgets, released on destruction. Movable, not copyable; a
  /// moved-from or default-constructed ticket holds nothing.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        tenant_ = other.tenant_;
        other.controller_ = nullptr;
        other.tenant_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    [[nodiscard]] bool holds() const { return controller_ != nullptr; }

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, TenantState* tenant)
        : controller_(controller), tenant_(tenant) {}

    void Release();

    AdmissionController* controller_ = nullptr;
    TenantState* tenant_ = nullptr;
  };

  /// Admits one request for `tenant` ("" is a valid tenant: anonymous
  /// connections share its quota) or sheds it: ResourceExhausted names the
  /// exhausted quota. The returned Ticket releases the slots when
  /// destroyed; it must not outlive the controller.
  Result<Ticket> Admit(std::string_view tenant);

  /// Requests currently holding tickets.
  [[nodiscard]] uint32_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  /// Requests shed since construction.
  [[nodiscard]] uint64_t shed_count() const {
    return shed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const AdmissionConfig& config() const { return config_; }

 private:
  // Stable pointer to `tenant`'s state, created on first sighting.
  TenantState* GetTenant(std::string_view tenant);

  const AdmissionConfig config_;
  std::atomic<uint32_t> in_flight_{0};
  std::atomic<uint64_t> shed_{0};

  // Guards tenants_ (lookup/insert only); the admit/release fast path
  // never takes it after a tenant's first request.
  Mutex mu_;
  std::map<std::string, std::unique_ptr<TenantState>, std::less<>> tenants_
      DAR_GUARDED_BY(mu_);

  // Null when telemetry is disabled.
  telemetry::Counter* admitted_metric_ = nullptr;
  telemetry::Counter* shed_metric_ = nullptr;
  telemetry::Gauge* in_flight_gauge_ = nullptr;
};

}  // namespace dar::serve

#endif  // DAR_SERVE_ADMISSION_H_
