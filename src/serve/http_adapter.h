#ifndef DAR_SERVE_HTTP_ADAPTER_H_
#define DAR_SERVE_HTTP_ADAPTER_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "serve/query_api.h"
#include "serve/query_service.h"

namespace dar::serve {

/// The HTTP/JSON face of the rule server: a thin, dependency-free
/// translation of three GET/POST endpoints onto the same QueryService
/// surface the binary protocol uses. One request per connection
/// (Connection: close); responses are compact JSON built with the
/// deterministic telemetry JsonWriter.
///
/// Endpoints (all under api version 1):
///   GET  /v1/info                     -> SnapshotInfo
///   GET  /v1/rules?offset=&limit=&text=1   -> ListRules
///   GET  /v1/query?tuple=1,2,3&max_rules=N -> PointQuery
///   POST /v1/query   (body "1,2,3" or "[1,2,3]")
/// The tenant for admission is the X-Tenant header ("" when absent).
/// Errors map ServeCode -> HTTP status: invalid_request 400, not_found
/// 404, unavailable 503, overloaded 429, internal 500; the body is
/// {"error":"<code name>","message":"..."}.

/// One parsed HTTP/1.x request head plus body.
struct HttpRequest {
  std::string method;  // uppercase, e.g. "GET"
  std::string path;    // without the query string
  std::string query;   // after '?', may be empty
  /// Header names lowercased; last occurrence wins.
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header value by lowercase name, or "" when absent.
  [[nodiscard]] std::string_view Header(std::string_view name) const;
};

/// Parses `text` (complete head + body, as read off the socket). Fails
/// with InvalidArgument on malformed request lines or headers.
Result<HttpRequest> ParseHttpRequest(std::string_view text);

/// HTTP status code for a serve outcome (200/400/404/503/429/500).
int HttpStatusForServeCode(ServeCode code);

/// Executes `request` against `service` and returns the complete HTTP/1.1
/// response bytes (status line, headers, JSON body). Admission must have
/// been granted by the caller; sheds are answered with
/// MakeHttpErrorResponse instead of calling this.
std::string HandleHttpRequest(const QueryService& service,
                              const HttpRequest& request);

/// Complete HTTP/1.1 error response for `code` (e.g. an admission shed or
/// a parse failure).
std::string MakeHttpErrorResponse(ServeCode code, std::string_view message);

}  // namespace dar::serve

#endif  // DAR_SERVE_HTTP_ADAPTER_H_
