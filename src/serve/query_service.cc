#include "serve/query_service.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/stopwatch.h"
#include "core/model.h"
#include "stream/rule_index.h"
#include "stream/rule_snapshot.h"
#include "stream/streaming_miner.h"

namespace dar {
namespace {

// Per-thread index scratch: the serving hot path reuses it across queries,
// so after warm-up a PointQuery performs no allocation at all.
RuleIndex::QueryScratch& TlsScratch() {
  thread_local RuleIndex::QueryScratch scratch;
  return scratch;
}

}  // namespace

QueryService::QueryService(telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  point_queries_ = registry->GetCounter("serve.point_queries");
  rule_lists_ = registry->GetCounter("serve.rule_lists");
  snapshot_infos_ = registry->GetCounter("serve.snapshot_infos");
  unavailable_ = registry->GetCounter("serve.unavailable");
  point_query_seconds_ = registry->GetHistogram(
      "serve.point_query_seconds", telemetry::Histogram::LatencyBounds());
  rule_list_seconds_ = registry->GetHistogram(
      "serve.rule_list_seconds", telemetry::Histogram::LatencyBounds());
}

void QueryService::AttachStream(const StreamingMiner& stream) {
  auto binding = std::make_shared<Binding>();
  binding->stream = &stream;
  binding->schema = stream.schema();
  binding->partition = stream.partition();
  binding_.store(std::move(binding));
}

void QueryService::AttachStream(
    std::shared_ptr<const StreamingMiner> stream) {
  if (stream == nullptr) {
    binding_.store(nullptr);
    return;
  }
  auto binding = std::make_shared<Binding>();
  binding->stream = stream.get();
  binding->schema = stream->schema();
  binding->partition = stream->partition();
  binding->owned_stream = std::move(stream);
  binding_.store(std::move(binding));
}

void QueryService::AttachSnapshot(
    std::shared_ptr<const RuleSnapshot> snapshot, Schema schema,
    AttributePartition partition) {
  auto binding = std::make_shared<Binding>();
  binding->pinned = std::move(snapshot);
  binding->schema = std::move(schema);
  binding->partition = std::move(partition);
  binding_.store(std::move(binding));
}

std::shared_ptr<const RuleSnapshot> QueryService::MakeSnapshot(
    DarMiningResult result, const AttributePartition& partition) {
  int64_t rows = 0;
  for (const AcfTreeStats& stats : result.phase1.tree_stats) {
    rows = std::max(rows, stats.points_inserted);
  }
  return std::make_shared<const RuleSnapshot>(
      /*generation=*/1, rows, std::move(result.phase1),
      std::move(result.phase2), partition, /*build_index=*/true);
}

Status QueryService::Acquire(const Binding* binding,
                             std::shared_ptr<const RuleSnapshot>& snapshot) {
  if (binding == nullptr) {
    return Status::Unavailable("QueryService has no attached rule source");
  }
  snapshot =
      binding->stream ? binding->stream->current_snapshot() : binding->pinned;
  if (snapshot == nullptr) {
    return Status::Unavailable(
        "no published rule snapshot yet (stream has not re-mined)");
  }
  return Status::OK();
}

Status QueryService::PointQuery(const PointQueryRequest& request,
                                PointQueryResponse& response) const {
  Stopwatch watch;
  if (point_queries_) point_queries_->Increment();
  const std::shared_ptr<const Binding> binding = binding_.load();
  std::shared_ptr<const RuleSnapshot> snapshot;
  Status acquired = Acquire(binding.get(), snapshot);
  if (!acquired.ok()) {
    if (unavailable_) unavailable_->Increment();
    return acquired;
  }

  const RuleIndex* index = snapshot->index();
  if (index == nullptr) {
    return Status::InvalidArgument(
        "snapshot has no rule index (stream opened with "
        "build_rule_index = false); point queries are not servable");
  }
  DAR_ASSIGN_OR_RETURN(const RuleIndex::Hits hits,
                       index->Query(request.tuple, TlsScratch()));

  // Every field below comes from `snapshot` — one generation, even while
  // the backing stream publishes a newer one mid-call.
  response.generation = snapshot->generation();
  response.rows_ingested = snapshot->rows_ingested();
  response.clusters.clear();
  for (size_t id : hits.clusters) {
    response.clusters.push_back(static_cast<uint32_t>(id));
  }
  response.total_rule_matches = static_cast<uint32_t>(hits.rules.size());
  size_t keep = hits.rules.size();
  if (request.max_rules != 0 && keep > request.max_rules) {
    // Rule indices ascend by degree (Phase II sorts strongest first), so
    // truncation keeps the strongest implications.
    keep = request.max_rules;
  }
  response.rules.clear();
  for (size_t i = 0; i < keep; ++i) {
    response.rules.push_back(static_cast<uint32_t>(hits.rules[i]));
  }
  if (point_query_seconds_) {
    point_query_seconds_->Record(watch.ElapsedSeconds());
  }
  return Status::OK();
}

Status QueryService::ListRules(const RuleListRequest& request,
                               RuleListResponse& response) const {
  Stopwatch watch;
  if (rule_lists_) rule_lists_->Increment();
  const std::shared_ptr<const Binding> binding = binding_.load();
  std::shared_ptr<const RuleSnapshot> snapshot;
  Status acquired = Acquire(binding.get(), snapshot);
  if (!acquired.ok()) {
    if (unavailable_) unavailable_->Increment();
    return acquired;
  }

  uint32_t limit = request.limit == 0 ? kDefaultRuleListLimit
                                      : std::min(request.limit,
                                                 kMaxRuleListLimit);
  const std::vector<DistanceRule>& rules = snapshot->rules();
  response.generation = snapshot->generation();
  response.rows_ingested = snapshot->rows_ingested();
  response.total_rules = static_cast<uint32_t>(rules.size());
  response.offset = request.offset;
  response.rules.clear();
  // An offset at or past the end is the natural pagination stop: an empty
  // page, not an error — the total tells the client it is done.
  for (size_t i = request.offset;
       i < rules.size() && response.rules.size() < limit; ++i) {
    const DistanceRule& rule = rules[i];
    RuleListEntry& entry = response.rules.emplace_back();
    entry.id = static_cast<uint32_t>(i);
    entry.degree = rule.degree;
    entry.support_count = rule.support_count;
    entry.antecedent_size = static_cast<uint32_t>(rule.antecedent.size());
    entry.consequent_size = static_cast<uint32_t>(rule.consequent.size());
    if (request.include_text) {
      entry.text = rule.ToString(snapshot->clusters(), binding->schema,
                                 binding->partition);
    }
  }
  if (rule_list_seconds_) rule_list_seconds_->Record(watch.ElapsedSeconds());
  return Status::OK();
}

Status QueryService::SnapshotInfo(SnapshotInfoResponse& response) const {
  if (snapshot_infos_) snapshot_infos_->Increment();
  const std::shared_ptr<const Binding> binding = binding_.load();
  if (binding == nullptr) {
    if (unavailable_) unavailable_->Increment();
    return Status::Unavailable("QueryService has no attached rule source");
  }
  std::shared_ptr<const RuleSnapshot> snapshot;
  Status acquired = Acquire(binding.get(), snapshot);
  response.api_version = kQueryApiVersion;
  if (!acquired.ok()) {
    // Bound but nothing published yet: answer generation 0 so clients can
    // readiness-probe without special-casing an error.
    response.generation = 0;
    response.rows_ingested =
        binding->stream ? binding->stream->rows_ingested() : 0;
    response.num_clusters = 0;
    response.num_rules = 0;
    response.has_index = false;
    return Status::OK();
  }
  response.generation = snapshot->generation();
  response.rows_ingested = snapshot->rows_ingested();
  response.num_clusters = snapshot->clusters().size();
  response.num_rules = snapshot->rules().size();
  response.has_index = snapshot->index() != nullptr;
  return Status::OK();
}

}  // namespace dar
