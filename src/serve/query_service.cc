#include "serve/query_service.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/stopwatch.h"
#include "core/model.h"
#include "stream/rule_index.h"
#include "stream/rule_snapshot.h"
#include "stream/streaming_miner.h"

namespace dar {
namespace {

// Per-thread index scratch: the serving hot path reuses it across queries,
// so after warm-up a PointQuery performs no allocation at all.
RuleIndex::QueryScratch& TlsScratch() {
  thread_local RuleIndex::QueryScratch scratch;
  return scratch;
}

}  // namespace

QueryService::QueryService(telemetry::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  point_queries_ = registry->GetCounter("serve.point_queries");
  rule_lists_ = registry->GetCounter("serve.rule_lists");
  scored_lists_ = registry->GetCounter("serve.scored_lists");
  diffs_ = registry->GetCounter("serve.diffs");
  snapshot_infos_ = registry->GetCounter("serve.snapshot_infos");
  unavailable_ = registry->GetCounter("serve.unavailable");
  point_query_seconds_ = registry->GetHistogram(
      "serve.point_query_seconds", telemetry::Histogram::LatencyBounds());
  rule_list_seconds_ = registry->GetHistogram(
      "serve.rule_list_seconds", telemetry::Histogram::LatencyBounds());
}

void QueryService::AttachStream(const StreamingMiner& stream) {
  auto binding = std::make_shared<Binding>();
  binding->stream = &stream;
  binding->schema = stream.schema();
  binding->partition = stream.partition();
  binding_.store(std::move(binding));
}

void QueryService::AttachStream(
    std::shared_ptr<const StreamingMiner> stream) {
  if (stream == nullptr) {
    binding_.store(nullptr);
    return;
  }
  auto binding = std::make_shared<Binding>();
  binding->stream = stream.get();
  binding->schema = stream->schema();
  binding->partition = stream->partition();
  binding->owned_stream = std::move(stream);
  binding_.store(std::move(binding));
}

void QueryService::AttachSnapshot(
    std::shared_ptr<const RuleSnapshot> snapshot, Schema schema,
    AttributePartition partition) {
  auto binding = std::make_shared<Binding>();
  binding->pinned = std::move(snapshot);
  binding->schema = std::move(schema);
  binding->partition = std::move(partition);
  binding_.store(std::move(binding));
}

std::shared_ptr<const RuleSnapshot> QueryService::MakeSnapshot(
    DarMiningResult result, const AttributePartition& partition) {
  int64_t rows = 0;
  for (const AcfTreeStats& stats : result.phase1.tree_stats) {
    rows = std::max(rows, stats.points_inserted);
  }
  return std::make_shared<const RuleSnapshot>(
      /*generation=*/1, rows, std::move(result.phase1),
      std::move(result.phase2), partition, /*build_index=*/true);
}

Status QueryService::Acquire(const Binding* binding,
                             std::shared_ptr<const RuleSnapshot>& snapshot) {
  if (binding == nullptr) {
    return Status::Unavailable("QueryService has no attached rule source");
  }
  snapshot =
      binding->stream ? binding->stream->current_snapshot() : binding->pinned;
  if (snapshot == nullptr) {
    return Status::Unavailable(
        "no published rule snapshot yet (stream has not re-mined)");
  }
  return Status::OK();
}

Status QueryService::PointQuery(const PointQueryRequest& request,
                                PointQueryResponse& response) const {
  Stopwatch watch;
  if (point_queries_) point_queries_->Increment();
  const std::shared_ptr<const Binding> binding = binding_.load();
  std::shared_ptr<const RuleSnapshot> snapshot;
  Status acquired = Acquire(binding.get(), snapshot);
  if (!acquired.ok()) {
    if (unavailable_) unavailable_->Increment();
    return acquired;
  }

  const RuleIndex* index = snapshot->index();
  if (index == nullptr) {
    return Status::InvalidArgument(
        "snapshot has no rule index (stream opened with "
        "build_rule_index = false); point queries are not servable");
  }
  DAR_ASSIGN_OR_RETURN(const RuleIndex::Hits hits,
                       index->Query(request.tuple, TlsScratch()));

  // Every field below comes from `snapshot` — one generation, even while
  // the backing stream publishes a newer one mid-call.
  response.generation = snapshot->generation();
  response.rows_ingested = snapshot->rows_ingested();
  response.clusters.clear();
  for (size_t id : hits.clusters) {
    response.clusters.push_back(static_cast<uint32_t>(id));
  }
  response.total_rule_matches = static_cast<uint32_t>(hits.rules.size());
  size_t keep = hits.rules.size();
  if (request.max_rules != 0 && keep > request.max_rules) {
    // Rule indices ascend by degree (Phase II sorts strongest first), so
    // truncation keeps the strongest implications.
    keep = request.max_rules;
  }
  response.rules.clear();
  for (size_t i = 0; i < keep; ++i) {
    response.rules.push_back(static_cast<uint32_t>(hits.rules[i]));
  }
  if (point_query_seconds_) {
    point_query_seconds_->Record(watch.ElapsedSeconds());
  }
  return Status::OK();
}

Status QueryService::ListRules(const RuleListRequest& request,
                               RuleListResponse& response) const {
  Stopwatch watch;
  if (rule_lists_) rule_lists_->Increment();
  const std::shared_ptr<const Binding> binding = binding_.load();
  std::shared_ptr<const RuleSnapshot> snapshot;
  Status acquired = Acquire(binding.get(), snapshot);
  if (!acquired.ok()) {
    if (unavailable_) unavailable_->Increment();
    return acquired;
  }

  uint32_t limit = request.limit == 0 ? kDefaultRuleListLimit
                                      : std::min(request.limit,
                                                 kMaxRuleListLimit);
  const std::vector<DistanceRule>& rules = snapshot->rules();
  response.generation = snapshot->generation();
  response.rows_ingested = snapshot->rows_ingested();
  response.total_rules = static_cast<uint32_t>(rules.size());
  response.offset = request.offset;
  response.rules.clear();
  // An offset at or past the end is the natural pagination stop: an empty
  // page, not an error — the total tells the client it is done.
  for (size_t i = request.offset;
       i < rules.size() && response.rules.size() < limit; ++i) {
    const DistanceRule& rule = rules[i];
    RuleListEntry& entry = response.rules.emplace_back();
    entry.id = static_cast<uint32_t>(i);
    entry.degree = rule.degree;
    entry.support_count = rule.support_count;
    entry.antecedent_size = static_cast<uint32_t>(rule.antecedent.size());
    entry.consequent_size = static_cast<uint32_t>(rule.consequent.size());
    if (request.include_text) {
      entry.text = rule.ToString(snapshot->clusters(), binding->schema,
                                 binding->partition);
    }
  }
  if (rule_list_seconds_) rule_list_seconds_->Record(watch.ElapsedSeconds());
  return Status::OK();
}

Status QueryService::ListRulesScored(const ScoredRuleListRequest& request,
                                     ScoredRuleListResponse& response) const {
  Stopwatch watch;
  if (scored_lists_) scored_lists_->Increment();
  const std::shared_ptr<const Binding> binding = binding_.load();
  std::shared_ptr<const RuleSnapshot> snapshot;
  Status acquired = Acquire(binding.get(), snapshot);
  if (!acquired.ok()) {
    if (unavailable_) unavailable_->Increment();
    return acquired;
  }

  const quality::ScoredRuleSet* scored = snapshot->scored();
  if (scored == nullptr) {
    return Status::InvalidArgument(
        "snapshot carries no measure scores; open the stream with "
        "StreamConfig::score_measures to serve scored listings");
  }
  const int measure = scored->FindMeasure(request.measure);
  if (measure < 0) {
    std::string known;
    for (const std::string& name : scored->measure_names) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::NotFound("measure \"" + request.measure +
                            "\" is not scored on this snapshot (have: " +
                            known + ")");
  }
  const std::vector<double>& scores =
      scored->scores[static_cast<size_t>(measure)];

  // Filter, then rank descending by score (ties ascend by rule id so the
  // order — and therefore the page content — is fully deterministic).
  std::vector<uint32_t> selected;
  selected.reserve(scores.size());
  for (size_t k = 0; k < scores.size(); ++k) {
    if (!request.include_pruned && scored->representative[k] == 0) continue;
    if (request.has_min && scores[k] < request.min_score) continue;
    if (request.has_max && scores[k] > request.max_score) continue;
    selected.push_back(static_cast<uint32_t>(k));
  }
  std::sort(selected.begin(), selected.end(),
            [&scores](uint32_t a, uint32_t b) {
              if (scores[a] != scores[b]) return scores[a] > scores[b];
              return a < b;
            });

  const uint32_t limit = request.limit == 0
                             ? kDefaultRuleListLimit
                             : std::min(request.limit, kMaxRuleListLimit);
  const std::vector<DistanceRule>& rules = snapshot->rules();
  response.generation = snapshot->generation();
  response.rows_ingested = snapshot->rows_ingested();
  response.total_matching = static_cast<uint32_t>(selected.size());
  response.offset = request.offset;
  response.measure = request.measure;
  response.rules.clear();
  for (size_t i = request.offset;
       i < selected.size() && response.rules.size() < limit; ++i) {
    const uint32_t id = selected[i];
    const DistanceRule& rule = rules[id];
    ScoredRuleListEntry& entry = response.rules.emplace_back();
    entry.id = id;
    entry.degree = rule.degree;
    entry.support_count = rule.support_count;
    entry.score = scores[id];
    entry.representative = scored->representative[id] != 0;
    entry.antecedent_size = static_cast<uint32_t>(rule.antecedent.size());
    entry.consequent_size = static_cast<uint32_t>(rule.consequent.size());
    if (request.include_text) {
      entry.text = rule.ToString(snapshot->clusters(), binding->schema,
                                 binding->partition);
    } else {
      entry.text.clear();
    }
  }
  if (rule_list_seconds_) rule_list_seconds_->Record(watch.ElapsedSeconds());
  return Status::OK();
}

Status QueryService::Diff(const RuleDiffRequest& request,
                          RuleDiffResponse& response) const {
  if (diffs_) diffs_->Increment();
  const std::shared_ptr<const Binding> binding = binding_.load();
  std::shared_ptr<const RuleSnapshot> snapshot;
  Status acquired = Acquire(binding.get(), snapshot);
  if (!acquired.ok()) {
    if (unavailable_) unavailable_->Increment();
    return acquired;
  }

  const quality::SnapshotDiffResult* diff = snapshot->diff();
  if (diff == nullptr) {
    return Status::Unavailable(
        "snapshot carries no diff: the stream needs "
        "StreamConfig::diff_snapshots and at least two published "
        "generations");
  }

  response.old_generation = diff->old_generation;
  response.new_generation = diff->new_generation;
  response.rows_ingested = snapshot->rows_ingested();
  response.born = static_cast<uint32_t>(diff->born);
  response.died = static_cast<uint32_t>(diff->died);
  response.drifted = static_cast<uint32_t>(diff->drifted);
  response.unchanged = static_cast<uint32_t>(diff->unchanged);
  response.total_changed =
      static_cast<uint32_t>(diff->born + diff->died + diff->drifted);
  const uint32_t limit = request.limit == 0
                             ? kDefaultRuleListLimit
                             : std::min(request.limit, kMaxRuleListLimit);
  const std::vector<DistanceRule>& rules = snapshot->rules();
  response.entries.clear();
  for (const quality::RuleDiffRecord& record : diff->records) {
    if (record.kind == quality::DiffKind::kUnchanged) continue;
    if (response.entries.size() >= limit) break;
    RuleDiffEntry& entry = response.entries.emplace_back();
    entry.kind = static_cast<uint8_t>(record.kind);
    if (record.kind == quality::DiffKind::kDied) {
      // The old generation's rules (and naming context) are gone; only
      // the index survives in the record.
      entry.rule_id = static_cast<uint32_t>(record.old_index);
      entry.degree = 0;
      entry.interval_shift = 0;
      entry.text.clear();
      continue;
    }
    const uint32_t id = static_cast<uint32_t>(record.new_index);
    entry.rule_id = id;
    entry.degree = rules[id].degree;
    entry.interval_shift = record.interval_shift;
    if (request.include_text) {
      entry.text = rules[id].ToString(snapshot->clusters(), binding->schema,
                                      binding->partition);
    } else {
      entry.text.clear();
    }
  }
  return Status::OK();
}

Status QueryService::SnapshotInfo(SnapshotInfoResponse& response) const {
  if (snapshot_infos_) snapshot_infos_->Increment();
  const std::shared_ptr<const Binding> binding = binding_.load();
  if (binding == nullptr) {
    if (unavailable_) unavailable_->Increment();
    return Status::Unavailable("QueryService has no attached rule source");
  }
  std::shared_ptr<const RuleSnapshot> snapshot;
  Status acquired = Acquire(binding.get(), snapshot);
  response.api_version = kQueryApiVersion;
  if (!acquired.ok()) {
    // Bound but nothing published yet: answer generation 0 so clients can
    // readiness-probe without special-casing an error.
    response.generation = 0;
    response.rows_ingested =
        binding->stream ? binding->stream->rows_ingested() : 0;
    response.num_clusters = 0;
    response.num_rules = 0;
    response.has_index = false;
    return Status::OK();
  }
  response.generation = snapshot->generation();
  response.rows_ingested = snapshot->rows_ingested();
  response.num_clusters = snapshot->clusters().size();
  response.num_rules = snapshot->rules().size();
  response.has_index = snapshot->index() != nullptr;
  return Status::OK();
}

}  // namespace dar
