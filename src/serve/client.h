#ifndef DAR_SERVE_CLIENT_H_
#define DAR_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "persist/wire.h"
#include "serve/query_api.h"

namespace dar::serve {

/// Blocking client for the framed binary protocol: one TCP connection,
/// synchronous request/response. Server-side errors come back as the
/// Status the server produced (ResourceExhausted for kOverloaded sheds,
/// Unavailable before the first snapshot, ...), so a caller's handling is
/// identical for in-process QueryService use and remote use — the point
/// of the shared query API.
///
/// Reuses its encode/decode buffers across calls: a steady-state point
/// query allocates nothing on the client either.
///
/// Not thread-safe: one RuleClient per thread (connections are cheap).
/// Movable; a moved-from client is disconnected.
class RuleClient {
 public:
  /// Connects to host:port and, when `tenant` is non-empty, opens the
  /// session with a Hello carrying it (the server scopes per-tenant
  /// quotas by that name). Fails with IOError when the TCP connect fails.
  static Result<RuleClient> Connect(const std::string& host, uint16_t port,
                                    const std::string& tenant = "");

  RuleClient(RuleClient&& other) noexcept { *this = std::move(other); }
  RuleClient& operator=(RuleClient&& other) noexcept;
  RuleClient(const RuleClient&) = delete;
  RuleClient& operator=(const RuleClient&) = delete;
  ~RuleClient() { Close(); }

  [[nodiscard]] Status PointQuery(const PointQueryRequest& request,
                                  PointQueryResponse& response);
  [[nodiscard]] Status ListRules(const RuleListRequest& request,
                                 RuleListResponse& response);
  [[nodiscard]] Status SnapshotInfo(SnapshotInfoResponse& response);
  [[nodiscard]] Status ListRulesScored(const ScoredRuleListRequest& request,
                                       ScoredRuleListResponse& response);
  [[nodiscard]] Status Diff(const RuleDiffRequest& request,
                            RuleDiffResponse& response);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Closes the connection; further calls fail. Idempotent.
  void Close();

 private:
  RuleClient() = default;

  // Frames and sends the payload in `payload_`, then reads the matching
  // response frame into `inbuf_` and returns a reader positioned at the
  // response body, with the header validated (method + request id echo,
  // error codes mapped back to Status).
  Result<persist::WireReader> RoundTrip(uint64_t request_id);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  persist::WireWriter payload_;
  persist::WireWriter frame_;
  std::string inbuf_;
};

}  // namespace dar::serve

#endif  // DAR_SERVE_CLIENT_H_
