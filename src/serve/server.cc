#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "persist/wire.h"
#include "serve/http_adapter.h"
#include "serve/protocol.h"

namespace dar::serve {
namespace {

// Largest HTTP head (request line + headers) we accept; bigger is hostile.
constexpr size_t kMaxHttpHeadBytes = 64 * 1024;
constexpr size_t kMaxHttpBodyBytes = 1 << 20;

bool ReadFull(int fd, char* buf, size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, buf, n, 0);
    if (r == 0) return false;  // orderly EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    buf += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

bool WriteFull(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t r = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<size_t>(r));
  }
  return true;
}

// Waits until the connection's first 4 bytes are peekable (left in the
// socket) and reports whether they spell an HTTP method. Both dialects
// open with >= 4 bytes: a binary frame starts with its u32 length, an
// HTTP request line with "GET "/"POST"/...
bool SniffHttp(int fd, bool& is_http) {
  char head[4];
  for (;;) {
    const ssize_t r = ::recv(fd, head, sizeof(head), MSG_PEEK);
    if (r == 0) return false;
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r >= 4) break;
    // Partial first packet: block until more arrives.
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 1000) < 0 && errno != EINTR) return false;
  }
  const std::string_view first(head, 4);
  is_http = first == "GET " || first == "POST" || first == "PUT " ||
            first == "HEAD" || first == "DELE" || first == "OPTI" ||
            first == "PATC";
  return true;
}

}  // namespace

RuleServer::RuleServer(const QueryService& service, ServerConfig config,
                       telemetry::MetricsRegistry* registry)
    : service_(service),
      config_(std::move(config)),
      admission_(config_.admission, registry) {
  if (registry == nullptr) return;
  connections_metric_ = registry->GetCounter("serve.connections");
  connections_shed_metric_ = registry->GetCounter("serve.connections_shed");
  binary_requests_ = registry->GetCounter("serve.binary_requests");
  http_requests_ = registry->GetCounter("serve.http_requests");
  protocol_errors_ = registry->GetCounter("serve.protocol_errors");
}

RuleServer::~RuleServer() { Stop(); }

Status RuleServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server is already running on port " +
                                 std::to_string(port_));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("cannot parse IPv4 host \"" +
                                   config_.host + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = Status::IOError(
        "bind " + config_.host + ":" + std::to_string(config_.port) + ": " +
        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = config_.port;
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&RuleServer::AcceptLoop, this);
  return Status::OK();
}

void RuleServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    const MutexLock lock(conn_mu_);
    for (const auto& session : sessions_) {
      ::shutdown(session.first, SHUT_RDWR);
    }
    while (!sessions_.empty()) conn_cv_.Wait(conn_mu_);
  }
  // Every session has parked its handle by now; join them for real.
  ReapFinished();
}

void RuleServer::AcceptLoop() {
  for (;;) {
    // Join sessions that finished since the last pass, so handle storage
    // stays bounded by the churn of one accept interval.
    ReapFinished();
    if (stopping_.load(std::memory_order_acquire)) return;
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;  // listener is gone; nothing to accept on
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (connections_metric_) connections_metric_->Increment();

    bool admitted = false;
    {
      const MutexLock lock(conn_mu_);
      if (!stopping_.load(std::memory_order_acquire) &&
          sessions_.size() < config_.max_sessions) {
        // Spawn under the lock: the session's own FinishConnection needs
        // this map entry and blocks on conn_mu_ until it exists.
        sessions_.emplace(fd,
                          std::thread(&RuleServer::ServeConnection, this, fd));
        admitted = true;
      }
    }
    if (!admitted) {
      // Session-level shed: close before speaking any protocol, so the
      // client sees a clean connection reset instead of a hang.
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      if (connections_shed_metric_) connections_shed_metric_->Increment();
      ::close(fd);
      continue;
    }
  }
}

void RuleServer::FinishConnection(int fd) {
  const MutexLock lock(conn_mu_);
  const auto it = sessions_.find(fd);
  if (it != sessions_.end()) {
    // The session is removing itself and a thread cannot join itself:
    // park the handle for ReapFinished (accept loop or Stop) to join.
    finished_.push_back(std::move(it->second));
    sessions_.erase(it);
  }
  ::close(fd);
  // Notify under the lock: Stop may destroy the cv the moment the map is
  // observed empty, so the notify must happen-before its wait returns.
  conn_cv_.NotifyAll();
}

void RuleServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    const MutexLock lock(conn_mu_);
    done.swap(finished_);
  }
  // Join outside the lock: a parked handle's thread is past its critical
  // section, but its last instructions may still be in flight.
  for (std::thread& t : done) t.join();
}

void RuleServer::ServeConnection(int fd) {
  bool is_http = false;
  if (SniffHttp(fd, is_http)) {
    if (is_http) {
      ServeHttp(fd);
    } else {
      ServeBinary(fd);
    }
  }
  FinishConnection(fd);
}

void RuleServer::ServeBinary(int fd) {
  // Per-session reusable buffers: after the first few requests a session
  // serves point queries without allocating.
  std::string tenant;
  persist::WireWriter payload;
  persist::WireWriter frame;
  std::string inbuf;
  std::vector<double> tuple_scratch;
  PointQueryResponse point_response;
  RuleListResponse list_response;
  SnapshotInfoResponse info_response;
  ScoredRuleListResponse scored_response;
  RuleDiffResponse diff_response;

  for (;;) {
    char lenbuf[4];
    if (!ReadFull(fd, lenbuf, sizeof(lenbuf))) return;
    const Result<uint32_t> length =
        DecodeFrameLength(std::string_view(lenbuf, sizeof(lenbuf)));
    if (!length.ok()) {
      // A hostile or corrupt length prefix: no way to resynchronize.
      if (protocol_errors_) protocol_errors_->Increment();
      return;
    }
    inbuf.resize(*length);
    if (!ReadFull(fd, inbuf.data(), inbuf.size())) return;
    if (binary_requests_) binary_requests_->Increment();

    const Result<Request> decoded = DecodeRequest(inbuf, tuple_scratch);
    if (!decoded.ok()) {
      // The frame boundary held, but the payload is out of contract:
      // answer the error, then drop the session (its id echo is gone).
      if (protocol_errors_) protocol_errors_->Increment();
      EncodeErrorResponse(RequestHeader{}, ServeCode::kInvalidRequest,
                          decoded.status().message(), payload);
      frame.Clear();
      AppendFrame(payload.bytes(), frame);
      (void)WriteFull(fd, frame.bytes());
      return;
    }
    const Request& request = *decoded;
    const RequestHeader& header = request.header;

    if (header.method == Method::kHello) {
      tenant.assign(request.tenant);
      EncodeHelloResponse(header, payload);
    } else {
      Result<AdmissionController::Ticket> ticket = admission_.Admit(tenant);
      if (!ticket.ok()) {
        EncodeErrorResponse(header, ServeCode::kOverloaded,
                            ticket.status().message(), payload);
      } else {
        Status status = Status::OK();
        switch (header.method) {
          case Method::kPointQuery:
            status = service_.PointQuery(request.point, point_response);
            if (status.ok()) {
              EncodePointQueryResponse(header, point_response, payload);
            }
            break;
          case Method::kListRules:
            status = service_.ListRules(request.list, list_response);
            if (status.ok()) {
              EncodeRuleListResponse(header, list_response, payload);
            }
            break;
          case Method::kSnapshotInfo:
            status = service_.SnapshotInfo(info_response);
            if (status.ok()) {
              EncodeSnapshotInfoResponse(header, info_response, payload);
            }
            break;
          case Method::kListRulesScored:
            status = service_.ListRulesScored(request.scored,
                                              scored_response);
            if (status.ok()) {
              EncodeScoredRuleListResponse(header, scored_response, payload);
            }
            break;
          case Method::kDiff:
            status = service_.Diff(request.diff, diff_response);
            if (status.ok()) {
              EncodeRuleDiffResponse(header, diff_response, payload);
            }
            break;
          case Method::kHello:
            break;  // handled above
        }
        if (!status.ok()) {
          EncodeErrorResponse(header, ServeCodeFromStatus(status),
                              status.message(), payload);
        }
      }
    }
    frame.Clear();
    AppendFrame(payload.bytes(), frame);
    if (!WriteFull(fd, frame.bytes())) return;
  }
}

void RuleServer::ServeHttp(int fd) {
  if (http_requests_) http_requests_->Increment();
  std::string buf;
  buf.reserve(4096);
  char chunk[4096];
  size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    if (buf.size() > kMaxHttpHeadBytes) return;
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r == 0) return;
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    buf.append(chunk, static_cast<size_t>(r));
    head_end = buf.find("\r\n\r\n");
  }

  // Pull the declared body in before parsing (ParseHttpRequest wants the
  // complete request).
  size_t content_length = 0;
  {
    const Result<HttpRequest> head_only =
        ParseHttpRequest(buf.substr(0, head_end + 4));
    if (head_only.ok()) {
      const std::string_view value = head_only->Header("content-length");
      if (!value.empty()) {
        content_length = static_cast<size_t>(
            std::strtoul(std::string(value).c_str(), nullptr, 10));
      }
    }
  }
  if (content_length > kMaxHttpBodyBytes) {
    (void)WriteFull(fd, MakeHttpErrorResponse(ServeCode::kInvalidRequest,
                                              "request body too large"));
    return;
  }
  const size_t total = head_end + 4 + content_length;
  while (buf.size() < total) {
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r == 0) return;
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    buf.append(chunk, static_cast<size_t>(r));
  }

  const Result<HttpRequest> parsed = ParseHttpRequest(buf.substr(0, total));
  if (!parsed.ok()) {
    if (protocol_errors_) protocol_errors_->Increment();
    (void)WriteFull(fd, MakeHttpErrorResponse(ServeCode::kInvalidRequest,
                                              parsed.status().message()));
    return;
  }

  const Result<AdmissionController::Ticket> ticket =
      admission_.Admit(parsed->Header("x-tenant"));
  if (!ticket.ok()) {
    (void)WriteFull(fd, MakeHttpErrorResponse(ServeCode::kOverloaded,
                                              ticket.status().message()));
    return;
  }
  (void)WriteFull(fd, HandleHttpRequest(service_, *parsed));
}

}  // namespace dar::serve
