#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>

#include "serve/protocol.h"

namespace dar::serve {
namespace {

Status ReadFull(int fd, char* buf, size_t n) {
  while (n > 0) {
    const ssize_t r = ::recv(fd, buf, n, 0);
    if (r == 0) {
      return Status::IOError("server closed the connection mid-response");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    buf += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFull(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t r = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    bytes.remove_prefix(static_cast<size_t>(r));
  }
  return Status::OK();
}

}  // namespace

Result<RuleClient> RuleClient::Connect(const std::string& host,
                                       uint16_t port,
                                       const std::string& tenant) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse IPv4 host \"" + host +
                                   "\"");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = Status::IOError(
        "connect " + host + ":" + std::to_string(port) + ": " +
        std::strerror(errno));
    ::close(fd);
    return status;
  }
  RuleClient client;
  client.fd_ = fd;
  if (!tenant.empty()) {
    const uint64_t id = client.next_request_id_++;
    EncodeHelloRequest(id, tenant, client.payload_);
    DAR_ASSIGN_OR_RETURN(persist::WireReader reader, client.RoundTrip(id));
    DAR_RETURN_IF_ERROR(reader.ExpectEnd("hello response payload"));
  }
  return client;
}

RuleClient& RuleClient::operator=(RuleClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    payload_ = std::move(other.payload_);
    frame_ = std::move(other.frame_);
    inbuf_ = std::move(other.inbuf_);
    other.fd_ = -1;
  }
  return *this;
}

void RuleClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<persist::WireReader> RuleClient::RoundTrip(uint64_t request_id) {
  if (fd_ < 0) {
    return Status::IOError("client is not connected");
  }
  frame_.Clear();
  AppendFrame(payload_.bytes(), frame_);
  DAR_RETURN_IF_ERROR(WriteFull(fd_, frame_.bytes()));

  char lenbuf[4];
  DAR_RETURN_IF_ERROR(ReadFull(fd_, lenbuf, sizeof(lenbuf)));
  DAR_ASSIGN_OR_RETURN(
      const uint32_t length,
      DecodeFrameLength(std::string_view(lenbuf, sizeof(lenbuf))));
  inbuf_.resize(length);
  DAR_RETURN_IF_ERROR(ReadFull(fd_, inbuf_.data(), inbuf_.size()));

  persist::WireReader reader{std::string_view(inbuf_)};
  DAR_ASSIGN_OR_RETURN(const ResponseHeader header,
                       DecodeResponseHeader(reader));
  if (header.header.request_id != request_id) {
    return Status::Internal(
        "response id " + std::to_string(header.header.request_id) +
        " does not match request id " + std::to_string(request_id) +
        " (protocol desync)");
  }
  if (header.code != ServeCode::kOk) {
    return StatusFromServeCode(header.code, header.message);
  }
  return reader;
}

Status RuleClient::PointQuery(const PointQueryRequest& request,
                              PointQueryResponse& response) {
  const uint64_t id = next_request_id_++;
  EncodePointQueryRequest(id, request, payload_);
  DAR_ASSIGN_OR_RETURN(persist::WireReader reader, RoundTrip(id));
  return DecodePointQueryBody(reader, response);
}

Status RuleClient::ListRules(const RuleListRequest& request,
                             RuleListResponse& response) {
  const uint64_t id = next_request_id_++;
  EncodeRuleListRequest(id, request, payload_);
  DAR_ASSIGN_OR_RETURN(persist::WireReader reader, RoundTrip(id));
  return DecodeRuleListBody(reader, response);
}

Status RuleClient::SnapshotInfo(SnapshotInfoResponse& response) {
  const uint64_t id = next_request_id_++;
  EncodeSnapshotInfoRequest(id, payload_);
  DAR_ASSIGN_OR_RETURN(persist::WireReader reader, RoundTrip(id));
  return DecodeSnapshotInfoBody(reader, response);
}

Status RuleClient::ListRulesScored(const ScoredRuleListRequest& request,
                                   ScoredRuleListResponse& response) {
  const uint64_t id = next_request_id_++;
  EncodeScoredRuleListRequest(id, request, payload_);
  DAR_ASSIGN_OR_RETURN(persist::WireReader reader, RoundTrip(id));
  return DecodeScoredRuleListBody(reader, response);
}

Status RuleClient::Diff(const RuleDiffRequest& request,
                        RuleDiffResponse& response) {
  const uint64_t id = next_request_id_++;
  EncodeRuleDiffRequest(id, request, payload_);
  DAR_ASSIGN_OR_RETURN(persist::WireReader reader, RoundTrip(id));
  return DecodeRuleDiffBody(reader, response);
}

}  // namespace dar::serve
