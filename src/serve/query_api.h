#ifndef DAR_SERVE_QUERY_API_H_
#define DAR_SERVE_QUERY_API_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace dar {

/// Version of the QueryService request/response surface. Compatibility
/// policy (see DESIGN.md "Serving"): within one api version, fields are
/// append-only — existing field names, types and meanings never change,
/// new fields are added with defaults that older peers can ignore. A
/// request/response shape change that cannot be expressed that way bumps
/// this constant, and the binary protocol (serve/protocol.h) carries the
/// version in every frame so mismatched peers fail with a clear error
/// instead of a misparse.
inline constexpr uint32_t kQueryApiVersion = 1;

/// Typed outcome of a serve-layer request, carried verbatim on the wire
/// (one byte) and mapped to/from dar::Status at the endpoints. Values are
/// part of the protocol — never renumber.
enum class ServeCode : uint8_t {
  kOk = 0,
  /// Malformed or out-of-contract request (undecodable frame, tuple too
  /// short, unknown method).
  kInvalidRequest = 1,
  /// The requested entity does not exist (e.g. an unknown HTTP path).
  kNotFound = 2,
  /// The service has no published snapshot yet (stream has not crossed
  /// its re-mine cadence and nothing was attached).
  kUnavailable = 3,
  /// Admission control shed the request: a quota (global or per-tenant)
  /// is exhausted. The request was NOT executed; retry with backoff.
  kOverloaded = 4,
  kInternal = 5,
};

/// Stable lowercase name for `code` ("ok", "overloaded", ...).
const char* ServeCodeName(ServeCode code);

/// Maps a service Status onto the wire code: OK->kOk, InvalidArgument/
/// OutOfRange->kInvalidRequest, NotFound->kNotFound, Unavailable->
/// kUnavailable, ResourceExhausted->kOverloaded, everything else->
/// kInternal.
ServeCode ServeCodeFromStatus(const Status& status);

/// Inverse mapping for clients: reconstructs a Status carrying `message`
/// from a wire code (kOk -> OK).
Status StatusFromServeCode(ServeCode code, std::string message);

/// "Which clusters contain tuple t, which rules fire for t?" — the serving
/// hot path. `tuple` is a full-width row (one value per schema attribute
/// covered by the partitioning) viewed, not owned: the request performs no
/// allocation, and the viewed storage must outlive the query call. Beware
/// `request.tuple = relation.Row(r)` — Row() returns an owning vector, so
/// binding the span straight to it dangles; name the row first.
struct PointQueryRequest {
  std::span<const double> tuple;
  /// Truncates the response's rule list to the first `max_rules` firing
  /// rules (Phase II orders rules by ascending degree, so the strongest
  /// implications survive truncation). 0 = no limit.
  uint32_t max_rules = 0;
};

/// Every field is derived from ONE snapshot generation — a response never
/// mixes generations, even while the backing stream hot-swaps snapshots
/// mid-flight. Response objects are designed for reuse: the vectors are
/// cleared, not reallocated, so a serving loop reusing one response per
/// thread allocates nothing in steady state.
struct PointQueryResponse {
  uint64_t generation = 0;
  /// Rows the stream had absorbed when the answering snapshot was derived.
  int64_t rows_ingested = 0;
  /// Ids (into the answering snapshot's ClusterSet) of clusters whose
  /// bounding box contains the tuple, ascending.
  std::vector<uint32_t> clusters;
  /// Indices (into the answering snapshot's rule vector) of rules all of
  /// whose clusters contain the tuple, ascending; truncated to
  /// `max_rules` when requested.
  std::vector<uint32_t> rules;
  /// Firing-rule count before `max_rules` truncation.
  uint32_t total_rule_matches = 0;
};

/// Pagination over the answering snapshot's rule vector.
struct RuleListRequest {
  uint32_t offset = 0;
  /// Page size; capped server-side at kMaxRuleListLimit. 0 = default 100.
  uint32_t limit = 0;
  /// When true each entry carries the pretty-printed rule text (costs a
  /// string per entry; leave off on hot paths).
  bool include_text = false;
};

inline constexpr uint32_t kDefaultRuleListLimit = 100;
inline constexpr uint32_t kMaxRuleListLimit = 4096;

struct RuleListEntry {
  uint32_t id = 0;
  /// Degree of association (Dfn 5.3; smaller = stronger implication).
  double degree = 0;
  /// §6.2 support count; -1 when the stream never rescanned tuples.
  int64_t support_count = -1;
  uint32_t antecedent_size = 0;
  uint32_t consequent_size = 0;
  /// Pretty form; empty unless RuleListRequest::include_text.
  std::string text;
};

struct RuleListResponse {
  uint64_t generation = 0;
  int64_t rows_ingested = 0;
  /// Total rules in the answering snapshot (pagination denominator).
  uint32_t total_rules = 0;
  /// Echo of the request offset.
  uint32_t offset = 0;
  std::vector<RuleListEntry> rules;
};

/// Measure-filtered rule listing: rules ranked by one interestingness
/// measure (descending; ties break to ascending rule id), optionally
/// band-filtered on the score and restricted to redundancy-pruning
/// representatives. Requires the backing stream to have been opened with
/// StreamConfig::score_measures naming `measure`; fails kNotFound (unknown
/// measure) or kInvalidRequest (snapshot carries no scores) otherwise.
struct ScoredRuleListRequest {
  uint32_t offset = 0;
  /// Page size; capped server-side at kMaxRuleListLimit. 0 = default 100.
  uint32_t limit = 0;
  bool include_text = false;
  /// Measure to rank and filter by ("lift", "confidence", ...).
  std::string measure;
  /// Score band: entries with score < min_score (when has_min) or
  /// > max_score (when has_max) are filtered out before pagination.
  bool has_min = false;
  double min_score = 0;
  bool has_max = false;
  double max_score = 0;
  /// When false (default) rules pruned as redundant are excluded.
  bool include_pruned = false;
};

struct ScoredRuleListEntry {
  uint32_t id = 0;
  double degree = 0;
  int64_t support_count = -1;
  /// The requested measure's value for this rule.
  double score = 0;
  /// False when redundancy pruning marked the rule a near-duplicate
  /// (only visible with include_pruned).
  bool representative = true;
  uint32_t antecedent_size = 0;
  uint32_t consequent_size = 0;
  std::string text;
};

struct ScoredRuleListResponse {
  uint64_t generation = 0;
  int64_t rows_ingested = 0;
  /// Rules passing the score/representative filters (pagination
  /// denominator), before offset/limit.
  uint32_t total_matching = 0;
  uint32_t offset = 0;
  /// Echo of the request measure.
  std::string measure;
  std::vector<ScoredRuleListEntry> rules;
};

/// Drift report: how the current snapshot's rules compare to the previous
/// generation's. Requires the backing stream to have been opened with
/// StreamConfig::diff_snapshots; fails kUnavailable before the second
/// generation (nothing to diff yet).
struct RuleDiffRequest {
  /// Truncates `entries` (the changed-rule detail list); counts are always
  /// totals. 0 = default 100, capped at kMaxRuleListLimit.
  uint32_t limit = 0;
  bool include_text = false;
};

/// One changed rule. `kind` carries quality::DiffKind on the wire:
/// 1 = drifted, 2 = born, 3 = died (unchanged rules are not listed).
struct RuleDiffEntry {
  uint8_t kind = 0;
  /// Index into the current snapshot's rule vector for born/drifted
  /// entries; index into the PREVIOUS generation's vector for died ones.
  uint32_t rule_id = 0;
  double degree = 0;
  /// Interval drift magnitude (worst-dimension relative endpoint shift);
  /// 0 for born/died.
  double interval_shift = 0;
  /// Pretty form of born/drifted rules; always empty for died rules (the
  /// old generation's naming context is gone).
  std::string text;
};

struct RuleDiffResponse {
  uint64_t old_generation = 0;
  uint64_t new_generation = 0;
  int64_t rows_ingested = 0;
  uint32_t born = 0;
  uint32_t died = 0;
  uint32_t drifted = 0;
  uint32_t unchanged = 0;
  /// born + died + drifted (how many entries exist before truncation).
  uint32_t total_changed = 0;
  std::vector<RuleDiffEntry> entries;
};

/// Snapshot metadata: what generation is live, how fresh it is, how big.
struct SnapshotInfoResponse {
  uint32_t api_version = kQueryApiVersion;
  uint64_t generation = 0;
  int64_t rows_ingested = 0;
  uint64_t num_clusters = 0;
  uint64_t num_rules = 0;
  /// False when the stream was opened with build_rule_index = false;
  /// point queries then fail with kInvalidRequest.
  bool has_index = false;
};

}  // namespace dar

#endif  // DAR_SERVE_QUERY_API_H_
