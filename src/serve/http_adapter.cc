#include "serve/http_adapter.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.h"

namespace dar::serve {
namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// Splits "a=1&b=2" into a map; no %-decoding (values here are numbers and
// flags, which never need it).
std::map<std::string, std::string> ParseQueryParams(std::string_view query) {
  std::map<std::string, std::string> params;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    std::string_view pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos) {
      params[std::string(pair.substr(0, eq))] =
          std::string(pair.substr(eq + 1));
    } else if (!pair.empty()) {
      params[std::string(pair)] = "";
    }
    pos = amp + 1;
  }
  return params;
}

// Parses "1,2,3" or "[1, 2, 3]" into doubles.
Result<std::vector<double>> ParseTupleList(std::string_view text) {
  std::string trimmed(text);
  std::erase_if(trimmed, [](unsigned char c) {
    return std::isspace(c) || c == '[' || c == ']';
  });
  std::vector<double> values;
  size_t pos = 0;
  while (pos < trimmed.size()) {
    size_t comma = trimmed.find(',', pos);
    if (comma == std::string::npos) comma = trimmed.size();
    const std::string token = trimmed.substr(pos, comma - pos);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size()) {
      return Status::InvalidArgument("cannot parse tuple value \"" + token +
                                     "\"");
    }
    values.push_back(v);
    pos = comma + 1;
  }
  if (values.empty()) {
    return Status::InvalidArgument(
        "empty tuple; pass ?tuple=v1,v2,... or a body like [v1,v2,...]");
  }
  return values;
}

Result<uint32_t> ParseU32Param(const std::map<std::string, std::string>& params,
                               const std::string& name, uint32_t fallback) {
  auto it = params.find(name);
  if (it == params.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(it->second.c_str(), &end, 10);
  if (end != it->second.c_str() + it->second.size() ||
      v > 0xffffffffUL) {
    return Status::InvalidArgument("parameter " + name + "=\"" + it->second +
                                   "\" is not a u32");
  }
  return static_cast<uint32_t>(v);
}

// Optional double parameter: (present, value). Errors only on unparsable
// text, never on absence.
Result<std::pair<bool, double>> ParseF64Param(
    const std::map<std::string, std::string>& params,
    const std::string& name) {
  auto it = params.find(name);
  if (it == params.end() || it->second.empty()) return std::pair{false, 0.0};
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end != it->second.c_str() + it->second.size()) {
    return Status::InvalidArgument("parameter " + name + "=\"" + it->second +
                                   "\" is not a number");
  }
  return std::pair{true, v};
}

std::string MakeResponse(int http_status, std::string_view reason,
                         const std::string& json_body) {
  std::string out = "HTTP/1.1 " + std::to_string(http_status) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: application/json\r\n";
  out += "Content-Length: " + std::to_string(json_body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += json_body;
  return out;
}

std::string_view ReasonPhrase(int http_status) {
  switch (http_status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string ErrorBody(ServeCode code, std::string_view message) {
  telemetry::JsonWriter json;
  json.BeginObject();
  json.Key("error");
  json.String(ServeCodeName(code));
  json.Key("message");
  json.String(std::string(message));
  json.EndObject();
  return std::move(json).TakeStr();
}

std::string ErrorResponseForStatus(const Status& status) {
  const ServeCode code = ServeCodeFromStatus(status);
  return MakeHttpErrorResponse(code, status.message());
}

std::string HandleInfo(const QueryService& service) {
  SnapshotInfoResponse info;
  Status status = service.SnapshotInfo(info);
  if (!status.ok()) return ErrorResponseForStatus(status);
  telemetry::JsonWriter json;
  json.BeginObject();
  json.Key("api_version");
  json.Int(info.api_version);
  json.Key("generation");
  json.Int(static_cast<int64_t>(info.generation));
  json.Key("rows_ingested");
  json.Int(info.rows_ingested);
  json.Key("num_clusters");
  json.Int(static_cast<int64_t>(info.num_clusters));
  json.Key("num_rules");
  json.Int(static_cast<int64_t>(info.num_rules));
  json.Key("has_index");
  json.Bool(info.has_index);
  json.EndObject();
  return MakeResponse(200, "OK", json.str());
}

// GET /v1/rules?measure=lift&min=1.5: the measure-ranked variant of the
// rule listing, served from the snapshot's quality layer.
std::string HandleRulesScored(const QueryService& service,
                              const std::map<std::string, std::string>& params,
                              const std::string& measure) {
  ScoredRuleListRequest scored;
  scored.measure = measure;
  {
    auto offset = ParseU32Param(params, "offset", 0);
    if (!offset.ok()) return ErrorResponseForStatus(offset.status());
    scored.offset = *offset;
  }
  {
    auto limit = ParseU32Param(params, "limit", 0);
    if (!limit.ok()) return ErrorResponseForStatus(limit.status());
    scored.limit = *limit;
  }
  {
    auto min = ParseF64Param(params, "min");
    if (!min.ok()) return ErrorResponseForStatus(min.status());
    scored.has_min = min->first;
    scored.min_score = min->second;
  }
  {
    auto max = ParseF64Param(params, "max");
    if (!max.ok()) return ErrorResponseForStatus(max.status());
    scored.has_max = max->first;
    scored.max_score = max->second;
  }
  auto text_it = params.find("text");
  scored.include_text = text_it != params.end() && text_it->second == "1";
  auto pruned_it = params.find("pruned");
  scored.include_pruned =
      pruned_it != params.end() && pruned_it->second == "1";

  ScoredRuleListResponse response;
  Status status = service.ListRulesScored(scored, response);
  if (!status.ok()) return ErrorResponseForStatus(status);
  telemetry::JsonWriter json;
  json.BeginObject();
  json.Key("generation");
  json.Int(static_cast<int64_t>(response.generation));
  json.Key("rows_ingested");
  json.Int(response.rows_ingested);
  json.Key("measure");
  json.String(response.measure);
  json.Key("total_matching");
  json.Int(response.total_matching);
  json.Key("offset");
  json.Int(response.offset);
  json.Key("rules");
  json.BeginArray();
  for (const ScoredRuleListEntry& entry : response.rules) {
    json.BeginObject();
    json.Key("id");
    json.Int(entry.id);
    json.Key("score");
    json.Double(entry.score);
    json.Key("degree");
    json.Double(entry.degree);
    json.Key("support_count");
    json.Int(entry.support_count);
    json.Key("representative");
    json.Bool(entry.representative);
    json.Key("antecedent_size");
    json.Int(entry.antecedent_size);
    json.Key("consequent_size");
    json.Int(entry.consequent_size);
    if (scored.include_text) {
      json.Key("text");
      json.String(entry.text);
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return MakeResponse(200, "OK", json.str());
}

std::string HandleDiff(const QueryService& service,
                       const HttpRequest& request) {
  const auto params = ParseQueryParams(request.query);
  RuleDiffRequest diff;
  {
    auto limit = ParseU32Param(params, "limit", 0);
    if (!limit.ok()) return ErrorResponseForStatus(limit.status());
    diff.limit = *limit;
  }
  auto text_it = params.find("text");
  diff.include_text = text_it != params.end() && text_it->second == "1";

  RuleDiffResponse response;
  Status status = service.Diff(diff, response);
  if (!status.ok()) return ErrorResponseForStatus(status);
  telemetry::JsonWriter json;
  json.BeginObject();
  json.Key("old_generation");
  json.Int(static_cast<int64_t>(response.old_generation));
  json.Key("new_generation");
  json.Int(static_cast<int64_t>(response.new_generation));
  json.Key("rows_ingested");
  json.Int(response.rows_ingested);
  json.Key("born");
  json.Int(response.born);
  json.Key("died");
  json.Int(response.died);
  json.Key("drifted");
  json.Int(response.drifted);
  json.Key("unchanged");
  json.Int(response.unchanged);
  json.Key("total_changed");
  json.Int(response.total_changed);
  json.Key("entries");
  json.BeginArray();
  for (const RuleDiffEntry& entry : response.entries) {
    json.BeginObject();
    json.Key("kind");
    json.String(entry.kind == 1   ? "drifted"
                : entry.kind == 2 ? "born"
                                  : "died");
    json.Key("rule_id");
    json.Int(entry.rule_id);
    json.Key("degree");
    json.Double(entry.degree);
    json.Key("interval_shift");
    json.Double(entry.interval_shift);
    if (diff.include_text) {
      json.Key("text");
      json.String(entry.text);
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return MakeResponse(200, "OK", json.str());
}

std::string HandleRules(const QueryService& service,
                        const HttpRequest& request) {
  const auto params = ParseQueryParams(request.query);
  // A `measure` parameter switches to the scored listing: same path, the
  // quality layer's ranking and filtering on top.
  auto measure_it = params.find("measure");
  if (measure_it != params.end() && !measure_it->second.empty()) {
    return HandleRulesScored(service, params, measure_it->second);
  }
  RuleListRequest list;
  {
    auto offset = ParseU32Param(params, "offset", 0);
    if (!offset.ok()) return ErrorResponseForStatus(offset.status());
    list.offset = *offset;
  }
  {
    auto limit = ParseU32Param(params, "limit", 0);
    if (!limit.ok()) return ErrorResponseForStatus(limit.status());
    list.limit = *limit;
  }
  auto text_it = params.find("text");
  list.include_text = text_it != params.end() && text_it->second == "1";

  RuleListResponse response;
  Status status = service.ListRules(list, response);
  if (!status.ok()) return ErrorResponseForStatus(status);
  telemetry::JsonWriter json;
  json.BeginObject();
  json.Key("generation");
  json.Int(static_cast<int64_t>(response.generation));
  json.Key("rows_ingested");
  json.Int(response.rows_ingested);
  json.Key("total_rules");
  json.Int(response.total_rules);
  json.Key("offset");
  json.Int(response.offset);
  json.Key("rules");
  json.BeginArray();
  for (const RuleListEntry& entry : response.rules) {
    json.BeginObject();
    json.Key("id");
    json.Int(entry.id);
    json.Key("degree");
    json.Double(entry.degree);
    json.Key("support_count");
    json.Int(entry.support_count);
    json.Key("antecedent_size");
    json.Int(entry.antecedent_size);
    json.Key("consequent_size");
    json.Int(entry.consequent_size);
    if (list.include_text) {
      json.Key("text");
      json.String(entry.text);
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return MakeResponse(200, "OK", json.str());
}

std::string HandleQuery(const QueryService& service,
                        const HttpRequest& request) {
  const auto params = ParseQueryParams(request.query);
  std::string_view tuple_text;
  auto tuple_it = params.find("tuple");
  if (tuple_it != params.end()) {
    tuple_text = tuple_it->second;
  } else if (!request.body.empty()) {
    tuple_text = request.body;
  } else {
    return MakeHttpErrorResponse(
        ServeCode::kInvalidRequest,
        "missing tuple: pass ?tuple=v1,v2,... or a request body");
  }
  auto tuple = ParseTupleList(tuple_text);
  if (!tuple.ok()) return ErrorResponseForStatus(tuple.status());

  PointQueryRequest point;
  point.tuple = std::span<const double>(*tuple);
  {
    auto max_rules = ParseU32Param(params, "max_rules", 0);
    if (!max_rules.ok()) return ErrorResponseForStatus(max_rules.status());
    point.max_rules = *max_rules;
  }

  PointQueryResponse response;
  Status status = service.PointQuery(point, response);
  if (!status.ok()) return ErrorResponseForStatus(status);
  telemetry::JsonWriter json;
  json.BeginObject();
  json.Key("generation");
  json.Int(static_cast<int64_t>(response.generation));
  json.Key("rows_ingested");
  json.Int(response.rows_ingested);
  json.Key("clusters");
  json.BeginArray();
  for (uint32_t id : response.clusters) json.Int(id);
  json.EndArray();
  json.Key("rules");
  json.BeginArray();
  for (uint32_t id : response.rules) json.Int(id);
  json.EndArray();
  json.Key("total_rule_matches");
  json.Int(response.total_rule_matches);
  json.EndObject();
  return MakeResponse(200, "OK", json.str());
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  auto it = headers.find(ToLower(name));
  if (it == headers.end()) return {};
  return it->second;
}

Result<HttpRequest> ParseHttpRequest(std::string_view text) {
  HttpRequest request;
  const size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return Status::InvalidArgument("HTTP request head is not terminated");
  }
  std::string_view head = text.substr(0, head_end);
  request.body = std::string(text.substr(head_end + 4));

  const size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Status::InvalidArgument("malformed HTTP request line");
  }
  request.method = std::string(request_line.substr(0, sp1));
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark == std::string_view::npos) {
    request.path = std::string(target);
  } else {
    request.path = std::string(target.substr(0, qmark));
    request.query = std::string(target.substr(qmark + 1));
  }

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed HTTP header line \"" +
                                     std::string(line) + "\"");
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
    request.headers[ToLower(line.substr(0, colon))] = std::string(value);
    pos = eol + 2;
  }
  return request;
}

int HttpStatusForServeCode(ServeCode code) {
  switch (code) {
    case ServeCode::kOk:
      return 200;
    case ServeCode::kInvalidRequest:
      return 400;
    case ServeCode::kNotFound:
      return 404;
    case ServeCode::kUnavailable:
      return 503;
    case ServeCode::kOverloaded:
      return 429;
    case ServeCode::kInternal:
      return 500;
  }
  return 500;
}

std::string MakeHttpErrorResponse(ServeCode code, std::string_view message) {
  const int http_status = HttpStatusForServeCode(code);
  return MakeResponse(http_status, ReasonPhrase(http_status),
                      ErrorBody(code, message));
}

std::string HandleHttpRequest(const QueryService& service,
                              const HttpRequest& request) {
  if (request.path == "/v1/info" && request.method == "GET") {
    return HandleInfo(service);
  }
  if (request.path == "/v1/rules" && request.method == "GET") {
    return HandleRules(service, request);
  }
  if (request.path == "/v1/query" &&
      (request.method == "GET" || request.method == "POST")) {
    return HandleQuery(service, request);
  }
  if (request.path == "/v1/diff" && request.method == "GET") {
    return HandleDiff(service, request);
  }
  return MakeHttpErrorResponse(
      ServeCode::kNotFound,
      "no endpoint " + request.method + " " + request.path +
          "; serving /v1/info, /v1/rules, /v1/query, /v1/diff");
}

}  // namespace dar::serve
