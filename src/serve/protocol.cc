#include "serve/protocol.h"

#include <string>
#include <utility>

namespace dar::serve {
namespace {

void EncodeRequestHeader(Method method, uint64_t request_id,
                         persist::WireWriter& out) {
  out.Clear();
  out.U32(kQueryApiVersion);
  out.U8(static_cast<uint8_t>(method));
  out.U64(request_id);
}

void EncodeResponseHeader(const RequestHeader& header, ServeCode code,
                          persist::WireWriter& out) {
  out.Clear();
  out.U32(kQueryApiVersion);
  out.U8(static_cast<uint8_t>(header.method));
  out.U64(header.request_id);
  out.U8(static_cast<uint8_t>(code));
}

}  // namespace

void AppendFrame(std::string_view payload, persist::WireWriter& out) {
  out.U32(static_cast<uint32_t>(payload.size()));
  out.Raw(payload);
}

Result<uint32_t> DecodeFrameLength(std::string_view bytes) {
  persist::WireReader reader(bytes);
  DAR_ASSIGN_OR_RETURN(const uint32_t length, reader.U32());
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(length) + " exceeds the " +
        std::to_string(kMaxFrameBytes) + "-byte cap; dropping connection");
  }
  return length;
}

void EncodeHelloRequest(uint64_t request_id, std::string_view tenant,
                        persist::WireWriter& out) {
  EncodeRequestHeader(Method::kHello, request_id, out);
  out.Str(tenant);
}

void EncodePointQueryRequest(uint64_t request_id,
                             const PointQueryRequest& request,
                             persist::WireWriter& out) {
  EncodeRequestHeader(Method::kPointQuery, request_id, out);
  out.U32(request.max_rules);
  out.U32(static_cast<uint32_t>(request.tuple.size()));
  for (double v : request.tuple) out.F64(v);
}

void EncodeRuleListRequest(uint64_t request_id,
                           const RuleListRequest& request,
                           persist::WireWriter& out) {
  EncodeRequestHeader(Method::kListRules, request_id, out);
  out.U32(request.offset);
  out.U32(request.limit);
  out.U8(request.include_text ? 1 : 0);
}

void EncodeSnapshotInfoRequest(uint64_t request_id,
                               persist::WireWriter& out) {
  EncodeRequestHeader(Method::kSnapshotInfo, request_id, out);
}

void EncodeScoredRuleListRequest(uint64_t request_id,
                                 const ScoredRuleListRequest& request,
                                 persist::WireWriter& out) {
  EncodeRequestHeader(Method::kListRulesScored, request_id, out);
  out.U32(request.offset);
  out.U32(request.limit);
  out.U8(request.include_text ? 1 : 0);
  out.Str(request.measure);
  out.U8(request.has_min ? 1 : 0);
  out.F64(request.min_score);
  out.U8(request.has_max ? 1 : 0);
  out.F64(request.max_score);
  out.U8(request.include_pruned ? 1 : 0);
}

void EncodeRuleDiffRequest(uint64_t request_id,
                           const RuleDiffRequest& request,
                           persist::WireWriter& out) {
  EncodeRequestHeader(Method::kDiff, request_id, out);
  out.U32(request.limit);
  out.U8(request.include_text ? 1 : 0);
}

Result<Request> DecodeRequest(std::string_view payload,
                              std::vector<double>& tuple_scratch) {
  persist::WireReader reader(payload);
  Request request;
  DAR_ASSIGN_OR_RETURN(request.header.api_version, reader.U32());
  if (request.header.api_version != kQueryApiVersion) {
    return Status::InvalidArgument(
        "request api version " + std::to_string(request.header.api_version) +
        " does not match server version " +
        std::to_string(kQueryApiVersion));
  }
  DAR_ASSIGN_OR_RETURN(const uint8_t method_byte, reader.U8());
  if (method_byte < static_cast<uint8_t>(Method::kHello) ||
      method_byte > static_cast<uint8_t>(Method::kDiff)) {
    return Status::InvalidArgument("unknown request method " +
                                   std::to_string(method_byte));
  }
  request.header.method = static_cast<Method>(method_byte);
  DAR_ASSIGN_OR_RETURN(request.header.request_id, reader.U64());

  switch (request.header.method) {
    case Method::kHello: {
      DAR_ASSIGN_OR_RETURN(const uint32_t len, reader.U32());
      const size_t start = payload.size() - reader.remaining();
      DAR_ASSIGN_OR_RETURN(persist::WireReader name, reader.Slice(len));
      (void)name;  // bounds-checked skip
      // Tenant views the payload buffer: no copy on the accept path.
      request.tenant = payload.substr(start, len);
      break;
    }
    case Method::kPointQuery: {
      DAR_ASSIGN_OR_RETURN(request.point.max_rules, reader.U32());
      DAR_ASSIGN_OR_RETURN(const uint32_t count, reader.U32());
      if (count > kMaxTupleValues) {
        return Status::InvalidArgument(
            "point-query tuple has " + std::to_string(count) +
            " values; the protocol caps tuples at " +
            std::to_string(kMaxTupleValues));
      }
      tuple_scratch.clear();
      tuple_scratch.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        DAR_ASSIGN_OR_RETURN(const double v, reader.F64());
        tuple_scratch.push_back(v);
      }
      request.point.tuple = std::span<const double>(tuple_scratch);
      break;
    }
    case Method::kListRules: {
      DAR_ASSIGN_OR_RETURN(request.list.offset, reader.U32());
      DAR_ASSIGN_OR_RETURN(request.list.limit, reader.U32());
      DAR_ASSIGN_OR_RETURN(const uint8_t text, reader.U8());
      request.list.include_text = text != 0;
      break;
    }
    case Method::kSnapshotInfo:
      break;
    case Method::kListRulesScored: {
      DAR_ASSIGN_OR_RETURN(request.scored.offset, reader.U32());
      DAR_ASSIGN_OR_RETURN(request.scored.limit, reader.U32());
      DAR_ASSIGN_OR_RETURN(const uint8_t text, reader.U8());
      request.scored.include_text = text != 0;
      DAR_ASSIGN_OR_RETURN(request.scored.measure, reader.Str());
      DAR_ASSIGN_OR_RETURN(const uint8_t has_min, reader.U8());
      request.scored.has_min = has_min != 0;
      DAR_ASSIGN_OR_RETURN(request.scored.min_score, reader.F64());
      DAR_ASSIGN_OR_RETURN(const uint8_t has_max, reader.U8());
      request.scored.has_max = has_max != 0;
      DAR_ASSIGN_OR_RETURN(request.scored.max_score, reader.F64());
      DAR_ASSIGN_OR_RETURN(const uint8_t pruned, reader.U8());
      request.scored.include_pruned = pruned != 0;
      break;
    }
    case Method::kDiff: {
      DAR_ASSIGN_OR_RETURN(request.diff.limit, reader.U32());
      DAR_ASSIGN_OR_RETURN(const uint8_t text, reader.U8());
      request.diff.include_text = text != 0;
      break;
    }
  }
  DAR_RETURN_IF_ERROR(reader.ExpectEnd("request payload"));
  return request;
}

void EncodeErrorResponse(const RequestHeader& header, ServeCode code,
                         std::string_view message,
                         persist::WireWriter& out) {
  EncodeResponseHeader(header, code, out);
  out.Str(message);
}

void EncodeHelloResponse(const RequestHeader& header,
                         persist::WireWriter& out) {
  EncodeResponseHeader(header, ServeCode::kOk, out);
}

void EncodePointQueryResponse(const RequestHeader& header,
                              const PointQueryResponse& response,
                              persist::WireWriter& out) {
  EncodeResponseHeader(header, ServeCode::kOk, out);
  out.U64(response.generation);
  out.I64(response.rows_ingested);
  out.U32(response.total_rule_matches);
  out.U32(static_cast<uint32_t>(response.clusters.size()));
  for (uint32_t id : response.clusters) out.U32(id);
  out.U32(static_cast<uint32_t>(response.rules.size()));
  for (uint32_t id : response.rules) out.U32(id);
}

void EncodeRuleListResponse(const RequestHeader& header,
                            const RuleListResponse& response,
                            persist::WireWriter& out) {
  EncodeResponseHeader(header, ServeCode::kOk, out);
  out.U64(response.generation);
  out.I64(response.rows_ingested);
  out.U32(response.total_rules);
  out.U32(response.offset);
  out.U32(static_cast<uint32_t>(response.rules.size()));
  for (const RuleListEntry& entry : response.rules) {
    out.U32(entry.id);
    out.F64(entry.degree);
    out.I64(entry.support_count);
    out.U32(entry.antecedent_size);
    out.U32(entry.consequent_size);
    out.Str(entry.text);
  }
}

void EncodeSnapshotInfoResponse(const RequestHeader& header,
                                const SnapshotInfoResponse& response,
                                persist::WireWriter& out) {
  EncodeResponseHeader(header, ServeCode::kOk, out);
  out.U32(response.api_version);
  out.U64(response.generation);
  out.I64(response.rows_ingested);
  out.U64(response.num_clusters);
  out.U64(response.num_rules);
  out.U8(response.has_index ? 1 : 0);
}

void EncodeScoredRuleListResponse(const RequestHeader& header,
                                  const ScoredRuleListResponse& response,
                                  persist::WireWriter& out) {
  EncodeResponseHeader(header, ServeCode::kOk, out);
  out.U64(response.generation);
  out.I64(response.rows_ingested);
  out.U32(response.total_matching);
  out.U32(response.offset);
  out.Str(response.measure);
  out.U32(static_cast<uint32_t>(response.rules.size()));
  for (const ScoredRuleListEntry& entry : response.rules) {
    out.U32(entry.id);
    out.F64(entry.degree);
    out.I64(entry.support_count);
    out.F64(entry.score);
    out.U8(entry.representative ? 1 : 0);
    out.U32(entry.antecedent_size);
    out.U32(entry.consequent_size);
    out.Str(entry.text);
  }
}

void EncodeRuleDiffResponse(const RequestHeader& header,
                            const RuleDiffResponse& response,
                            persist::WireWriter& out) {
  EncodeResponseHeader(header, ServeCode::kOk, out);
  out.U64(response.old_generation);
  out.U64(response.new_generation);
  out.I64(response.rows_ingested);
  out.U32(response.born);
  out.U32(response.died);
  out.U32(response.drifted);
  out.U32(response.unchanged);
  out.U32(response.total_changed);
  out.U32(static_cast<uint32_t>(response.entries.size()));
  for (const RuleDiffEntry& entry : response.entries) {
    out.U8(entry.kind);
    out.U32(entry.rule_id);
    out.F64(entry.degree);
    out.F64(entry.interval_shift);
    out.Str(entry.text);
  }
}

Result<ResponseHeader> DecodeResponseHeader(persist::WireReader& reader) {
  ResponseHeader out;
  DAR_ASSIGN_OR_RETURN(out.header.api_version, reader.U32());
  if (out.header.api_version != kQueryApiVersion) {
    return Status::InvalidArgument(
        "response api version " + std::to_string(out.header.api_version) +
        " does not match client version " +
        std::to_string(kQueryApiVersion));
  }
  DAR_ASSIGN_OR_RETURN(const uint8_t method_byte, reader.U8());
  if (method_byte < static_cast<uint8_t>(Method::kHello) ||
      method_byte > static_cast<uint8_t>(Method::kDiff)) {
    return Status::InvalidArgument("unknown response method " +
                                   std::to_string(method_byte));
  }
  out.header.method = static_cast<Method>(method_byte);
  DAR_ASSIGN_OR_RETURN(out.header.request_id, reader.U64());
  DAR_ASSIGN_OR_RETURN(const uint8_t code_byte, reader.U8());
  if (code_byte > static_cast<uint8_t>(ServeCode::kInternal)) {
    return Status::InvalidArgument("unknown serve code " +
                                   std::to_string(code_byte));
  }
  out.code = static_cast<ServeCode>(code_byte);
  if (out.code != ServeCode::kOk) {
    DAR_ASSIGN_OR_RETURN(out.message, reader.Str());
    DAR_RETURN_IF_ERROR(reader.ExpectEnd("error response payload"));
  }
  return out;
}

Status DecodePointQueryBody(persist::WireReader& reader,
                            PointQueryResponse& out) {
  DAR_ASSIGN_OR_RETURN(out.generation, reader.U64());
  DAR_ASSIGN_OR_RETURN(out.rows_ingested, reader.I64());
  DAR_ASSIGN_OR_RETURN(out.total_rule_matches, reader.U32());
  DAR_ASSIGN_OR_RETURN(const uint32_t num_clusters, reader.U32());
  out.clusters.clear();
  out.clusters.reserve(num_clusters);
  for (uint32_t i = 0; i < num_clusters; ++i) {
    DAR_ASSIGN_OR_RETURN(const uint32_t id, reader.U32());
    out.clusters.push_back(id);
  }
  DAR_ASSIGN_OR_RETURN(const uint32_t num_rules, reader.U32());
  out.rules.clear();
  out.rules.reserve(num_rules);
  for (uint32_t i = 0; i < num_rules; ++i) {
    DAR_ASSIGN_OR_RETURN(const uint32_t id, reader.U32());
    out.rules.push_back(id);
  }
  return reader.ExpectEnd("point-query response payload");
}

Status DecodeRuleListBody(persist::WireReader& reader,
                          RuleListResponse& out) {
  DAR_ASSIGN_OR_RETURN(out.generation, reader.U64());
  DAR_ASSIGN_OR_RETURN(out.rows_ingested, reader.I64());
  DAR_ASSIGN_OR_RETURN(out.total_rules, reader.U32());
  DAR_ASSIGN_OR_RETURN(out.offset, reader.U32());
  DAR_ASSIGN_OR_RETURN(const uint32_t num_entries, reader.U32());
  if (num_entries > kMaxRuleListLimit) {
    return Status::InvalidArgument(
        "rule-list response carries " + std::to_string(num_entries) +
        " entries; the protocol caps pages at " +
        std::to_string(kMaxRuleListLimit));
  }
  out.rules.clear();
  out.rules.reserve(num_entries);
  for (uint32_t i = 0; i < num_entries; ++i) {
    RuleListEntry& entry = out.rules.emplace_back();
    DAR_ASSIGN_OR_RETURN(entry.id, reader.U32());
    DAR_ASSIGN_OR_RETURN(entry.degree, reader.F64());
    DAR_ASSIGN_OR_RETURN(entry.support_count, reader.I64());
    DAR_ASSIGN_OR_RETURN(entry.antecedent_size, reader.U32());
    DAR_ASSIGN_OR_RETURN(entry.consequent_size, reader.U32());
    DAR_ASSIGN_OR_RETURN(entry.text, reader.Str());
  }
  return reader.ExpectEnd("rule-list response payload");
}

Status DecodeSnapshotInfoBody(persist::WireReader& reader,
                              SnapshotInfoResponse& out) {
  DAR_ASSIGN_OR_RETURN(out.api_version, reader.U32());
  DAR_ASSIGN_OR_RETURN(out.generation, reader.U64());
  DAR_ASSIGN_OR_RETURN(out.rows_ingested, reader.I64());
  DAR_ASSIGN_OR_RETURN(out.num_clusters, reader.U64());
  DAR_ASSIGN_OR_RETURN(out.num_rules, reader.U64());
  DAR_ASSIGN_OR_RETURN(const uint8_t has_index, reader.U8());
  out.has_index = has_index != 0;
  return reader.ExpectEnd("snapshot-info response payload");
}

Status DecodeScoredRuleListBody(persist::WireReader& reader,
                                ScoredRuleListResponse& out) {
  DAR_ASSIGN_OR_RETURN(out.generation, reader.U64());
  DAR_ASSIGN_OR_RETURN(out.rows_ingested, reader.I64());
  DAR_ASSIGN_OR_RETURN(out.total_matching, reader.U32());
  DAR_ASSIGN_OR_RETURN(out.offset, reader.U32());
  DAR_ASSIGN_OR_RETURN(out.measure, reader.Str());
  DAR_ASSIGN_OR_RETURN(const uint32_t num_entries, reader.U32());
  if (num_entries > kMaxRuleListLimit) {
    return Status::InvalidArgument(
        "scored rule-list response carries " + std::to_string(num_entries) +
        " entries; the protocol caps pages at " +
        std::to_string(kMaxRuleListLimit));
  }
  out.rules.clear();
  out.rules.reserve(num_entries);
  for (uint32_t i = 0; i < num_entries; ++i) {
    ScoredRuleListEntry& entry = out.rules.emplace_back();
    DAR_ASSIGN_OR_RETURN(entry.id, reader.U32());
    DAR_ASSIGN_OR_RETURN(entry.degree, reader.F64());
    DAR_ASSIGN_OR_RETURN(entry.support_count, reader.I64());
    DAR_ASSIGN_OR_RETURN(entry.score, reader.F64());
    DAR_ASSIGN_OR_RETURN(const uint8_t representative, reader.U8());
    entry.representative = representative != 0;
    DAR_ASSIGN_OR_RETURN(entry.antecedent_size, reader.U32());
    DAR_ASSIGN_OR_RETURN(entry.consequent_size, reader.U32());
    DAR_ASSIGN_OR_RETURN(entry.text, reader.Str());
  }
  return reader.ExpectEnd("scored rule-list response payload");
}

Status DecodeRuleDiffBody(persist::WireReader& reader,
                          RuleDiffResponse& out) {
  DAR_ASSIGN_OR_RETURN(out.old_generation, reader.U64());
  DAR_ASSIGN_OR_RETURN(out.new_generation, reader.U64());
  DAR_ASSIGN_OR_RETURN(out.rows_ingested, reader.I64());
  DAR_ASSIGN_OR_RETURN(out.born, reader.U32());
  DAR_ASSIGN_OR_RETURN(out.died, reader.U32());
  DAR_ASSIGN_OR_RETURN(out.drifted, reader.U32());
  DAR_ASSIGN_OR_RETURN(out.unchanged, reader.U32());
  DAR_ASSIGN_OR_RETURN(out.total_changed, reader.U32());
  DAR_ASSIGN_OR_RETURN(const uint32_t num_entries, reader.U32());
  if (num_entries > kMaxRuleListLimit) {
    return Status::InvalidArgument(
        "diff response carries " + std::to_string(num_entries) +
        " entries; the protocol caps pages at " +
        std::to_string(kMaxRuleListLimit));
  }
  out.entries.clear();
  out.entries.reserve(num_entries);
  for (uint32_t i = 0; i < num_entries; ++i) {
    RuleDiffEntry& entry = out.entries.emplace_back();
    DAR_ASSIGN_OR_RETURN(entry.kind, reader.U8());
    DAR_ASSIGN_OR_RETURN(entry.rule_id, reader.U32());
    DAR_ASSIGN_OR_RETURN(entry.degree, reader.F64());
    DAR_ASSIGN_OR_RETURN(entry.interval_shift, reader.F64());
    DAR_ASSIGN_OR_RETURN(entry.text, reader.Str());
  }
  return reader.ExpectEnd("diff response payload");
}

}  // namespace dar::serve
