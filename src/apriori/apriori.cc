#include "apriori/apriori.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace dar {

namespace {

using CountMap = std::unordered_map<Itemset, int64_t, ItemsetHash>;

// Joins frequent (k-1)-itemsets that share their first k-2 items, then
// prunes candidates with an infrequent (k-1)-subset (downward closure).
std::vector<Itemset> GenerateCandidates(
    const std::vector<Itemset>& prev_frequent) {
  std::vector<Itemset> candidates;
  std::unordered_set<Itemset, ItemsetHash> prev_set(prev_frequent.begin(),
                                                    prev_frequent.end());
  for (size_t i = 0; i < prev_frequent.size(); ++i) {
    for (size_t j = i + 1; j < prev_frequent.size(); ++j) {
      const Itemset& a = prev_frequent[i];
      const Itemset& b = prev_frequent[j];
      // prev_frequent is lexicographically sorted, so joinable pairs share
      // the first k-2 items and differ in the last.
      bool joinable = true;
      for (size_t t = 0; t + 1 < a.size(); ++t) {
        if (a[t] != b[t]) {
          joinable = false;
          break;
        }
      }
      if (!joinable) break;  // later j only diverge earlier
      Itemset cand = a;
      cand.push_back(b.back());
      if (cand[cand.size() - 2] > cand.back()) {
        std::swap(cand[cand.size() - 2], cand[cand.size() - 1]);
      }
      // Downward closure: every (k-1)-subset must be frequent.
      bool ok = true;
      Itemset sub(cand.size() - 1);
      for (size_t drop = 0; ok && drop < cand.size(); ++drop) {
        sub.clear();
        for (size_t t = 0; t < cand.size(); ++t) {
          if (t != drop) sub.push_back(cand[t]);
        }
        if (prev_set.find(sub) == prev_set.end()) ok = false;
      }
      if (ok) candidates.push_back(std::move(cand));
    }
  }
  return candidates;
}

// Counts occurrences of each candidate in the transactions by enumerating
// the k-subsets of each transaction and probing the candidate set.
void CountCandidates(const std::vector<Itemset>& transactions, size_t k,
                     CountMap& counts) {
  Itemset subset(k);
  std::vector<size_t> idx(k);
  for (const Itemset& t : transactions) {
    if (t.size() < k) continue;
    // Enumerate k-combinations of t.
    for (size_t i = 0; i < k; ++i) idx[i] = i;
    while (true) {
      for (size_t i = 0; i < k; ++i) subset[i] = t[idx[i]];
      auto it = counts.find(subset);
      if (it != counts.end()) ++it->second;
      // Advance the combination.
      size_t pos = k;
      while (pos > 0) {
        --pos;
        if (idx[pos] != pos + t.size() - k) break;
        if (pos == 0) {
          pos = k;  // done
          break;
        }
      }
      if (pos == k) break;
      ++idx[pos];
      for (size_t i = pos + 1; i < k; ++i) idx[i] = idx[i - 1] + 1;
    }
  }
}

}  // namespace

std::string AssociationRule::ToString() const {
  std::ostringstream os;
  os << ItemsetToString(antecedent) << " => " << ItemsetToString(consequent)
     << " (support=" << support << ", confidence=" << confidence << ")";
  return os.str();
}

Result<std::vector<FrequentItemset>> MineFrequentItemsets(
    const std::vector<Itemset>& transactions, const AprioriOptions& options) {
  if (options.min_support_count < 1) {
    return Status::InvalidArgument("min_support_count must be >= 1");
  }
  for (const Itemset& t : transactions) {
    if (!std::is_sorted(t.begin(), t.end()) ||
        std::adjacent_find(t.begin(), t.end()) != t.end()) {
      return Status::InvalidArgument(
          "transactions must be canonical itemsets (sorted, unique)");
    }
  }

  std::vector<FrequentItemset> result;

  // Scan 1: count 1-itemsets.
  std::unordered_map<Item, int64_t> singles;
  for (const Itemset& t : transactions) {
    for (Item it : t) ++singles[it];
  }
  std::vector<Itemset> frequent;
  for (const auto& [item, count] : singles) {
    if (count < options.min_support_count) continue;
    if (options.candidate_filter && !options.candidate_filter({item})) {
      continue;
    }
    frequent.push_back({item});
  }
  std::sort(frequent.begin(), frequent.end());
  for (const Itemset& f : frequent) {
    result.push_back({f, singles[f[0]]});
  }

  size_t k = 2;
  while (!frequent.empty() &&
         (options.max_itemset_size == 0 || k <= options.max_itemset_size)) {
    std::vector<Itemset> candidates = GenerateCandidates(frequent);
    if (options.candidate_filter) {
      std::erase_if(candidates, [&](const Itemset& c) {
        return !options.candidate_filter(c);
      });
    }
    if (candidates.empty()) break;
    CountMap counts;
    counts.reserve(candidates.size() * 2);
    for (auto& c : candidates) counts.emplace(std::move(c), 0);
    CountCandidates(transactions, k, counts);

    frequent.clear();
    for (const auto& [items, count] : counts) {
      if (count >= options.min_support_count) frequent.push_back(items);
    }
    std::sort(frequent.begin(), frequent.end());
    for (const Itemset& f : frequent) {
      result.push_back({f, counts[f]});
    }
    ++k;
  }
  return result;
}

Result<std::vector<AssociationRule>> GenerateRules(
    const std::vector<FrequentItemset>& frequent_itemsets,
    size_t num_transactions, const AprioriOptions& options) {
  if (num_transactions == 0) {
    return Status::InvalidArgument("num_transactions must be positive");
  }
  CountMap counts;
  counts.reserve(frequent_itemsets.size() * 2);
  for (const auto& f : frequent_itemsets) counts[f.items] = f.count;

  std::vector<AssociationRule> rules;
  for (const auto& f : frequent_itemsets) {
    size_t n = f.items.size();
    if (n < 2) continue;
    // Enumerate non-empty proper subsets as antecedents via bitmask.
    uint64_t limit = 1ull << n;
    for (uint64_t mask = 1; mask + 1 < limit; ++mask) {
      Itemset antecedent, consequent;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1ull << i)) {
          antecedent.push_back(f.items[i]);
        } else {
          consequent.push_back(f.items[i]);
        }
      }
      auto it = counts.find(antecedent);
      if (it == counts.end()) {
        return Status::InvalidArgument(
            "frequent itemsets are not downward closed: missing " +
            ItemsetToString(antecedent));
      }
      double confidence = static_cast<double>(f.count) / it->second;
      if (confidence >= options.min_confidence) {
        AssociationRule rule;
        rule.antecedent = std::move(antecedent);
        rule.consequent = std::move(consequent);
        rule.support_count = f.count;
        rule.support = static_cast<double>(f.count) / num_transactions;
        rule.confidence = confidence;
        rules.push_back(std::move(rule));
      }
    }
  }
  return rules;
}

Result<std::vector<AssociationRule>> MineAssociationRules(
    const std::vector<Itemset>& transactions, const AprioriOptions& options) {
  DAR_ASSIGN_OR_RETURN(std::vector<FrequentItemset> frequent,
                       MineFrequentItemsets(transactions, options));
  return GenerateRules(frequent, transactions.size(), options);
}

}  // namespace dar
