#ifndef DAR_APRIORI_ITEMSET_H_
#define DAR_APRIORI_ITEMSET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dar {

/// An item: an opaque dense identifier. Callers map attribute values (or
/// intervals, or clusters) to items before mining.
using Item = uint32_t;

/// A sorted, duplicate-free set of items.
using Itemset = std::vector<Item>;

/// Sorts and deduplicates `items` in place, making it a valid Itemset.
void Canonicalize(Itemset& items);

/// True iff `sub` is a subset of `super` (both canonical).
bool IsSubsetOf(const Itemset& sub, const Itemset& super);

/// Set-union of two canonical itemsets.
Itemset Union(const Itemset& a, const Itemset& b);

/// Set-difference a \ b of two canonical itemsets.
Itemset Difference(const Itemset& a, const Itemset& b);

/// "{1, 5, 9}".
std::string ItemsetToString(const Itemset& items);

/// FNV-1a hash of the item sequence, for unordered containers.
struct ItemsetHash {
  [[nodiscard]] size_t operator()(const Itemset& items) const {
    uint64_t h = 1469598103934665603ull;
    for (Item it : items) {
      h ^= it;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace dar

#endif  // DAR_APRIORI_ITEMSET_H_
