#ifndef DAR_APRIORI_APRIORI_H_
#define DAR_APRIORI_APRIORI_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apriori/itemset.h"
#include "common/result.h"

namespace dar {

/// Parameters for classical association-rule mining [AS94].
struct AprioriOptions {
  /// Minimum number of transactions an itemset must appear in (the paper's
  /// s0 as an absolute count).
  int64_t min_support_count = 1;
  /// Minimum confidence |A u B| / |A| for emitted rules.
  double min_confidence = 0.5;
  /// Upper bound on frequent-itemset size; 0 means unbounded.
  size_t max_itemset_size = 0;
  /// Optional predicate applied to every candidate itemset before counting;
  /// candidates failing it are discarded. The predicate must be
  /// anti-monotone (if it rejects a set it must reject every superset),
  /// otherwise the level-wise search is incomplete. Used e.g. by the
  /// quantitative-rule miner to reject itemsets with two intervals over the
  /// same attribute.
  std::function<bool(const Itemset&)> candidate_filter;
};

/// A frequent itemset with its transaction count.
struct FrequentItemset {
  Itemset items;
  int64_t count = 0;
};

/// A classical association rule `antecedent => consequent` with its
/// support/confidence measures.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  int64_t support_count = 0;  // |antecedent u consequent|
  double support = 0;         // support_count / |r|
  double confidence = 0;      // support_count / |antecedent|

  [[nodiscard]] std::string ToString() const;
};

/// Mines all frequent itemsets from `transactions` (each a canonical
/// Itemset) using the level-wise Apriori algorithm: Scan i / Prune i of §3.
/// Results are grouped by increasing size, lexicographic within a size.
Result<std::vector<FrequentItemset>> MineFrequentItemsets(
    const std::vector<Itemset>& transactions, const AprioriOptions& options);

/// Generates all rules with confidence >= options.min_confidence from the
/// frequent itemsets (which must be self-consistent, i.e. every subset of a
/// frequent itemset present — as produced by MineFrequentItemsets).
/// `num_transactions` scales the support fraction.
Result<std::vector<AssociationRule>> GenerateRules(
    const std::vector<FrequentItemset>& frequent_itemsets,
    size_t num_transactions, const AprioriOptions& options);

/// Convenience: MineFrequentItemsets + GenerateRules.
Result<std::vector<AssociationRule>> MineAssociationRules(
    const std::vector<Itemset>& transactions, const AprioriOptions& options);

}  // namespace dar

#endif  // DAR_APRIORI_APRIORI_H_
