#include "apriori/itemset.h"

#include <algorithm>

namespace dar {

void Canonicalize(Itemset& items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
}

bool IsSubsetOf(const Itemset& sub, const Itemset& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

Itemset Union(const Itemset& a, const Itemset& b) {
  Itemset out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

Itemset Difference(const Itemset& a, const Itemset& b) {
  Itemset out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::string ItemsetToString(const Itemset& items) {
  std::string out = "{";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(items[i]);
  }
  out += "}";
  return out;
}

}  // namespace dar
