#include "graph/graph.h"

#include <algorithm>

#include "common/logging.h"

namespace dar {
namespace graph {

Graph Graph::FromEdges(
    size_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  Graph g;
  g.offsets_.assign(num_nodes + 1, 0);
  for (const auto& [a, b] : edges) {
    DAR_CHECK(a != b);
    DAR_CHECK(a < num_nodes && b < num_nodes);
    ++g.offsets_[a + 1];
    ++g.offsets_[b + 1];
  }
  for (size_t v = 0; v < num_nodes; ++v) g.offsets_[v + 1] += g.offsets_[v];
  g.adj_.resize(g.offsets_[num_nodes]);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    g.adj_[cursor[a]++] = b;
    g.adj_[cursor[b]++] = a;
  }
  // Sort each row and coalesce duplicate edges; rebuild offsets if any
  // duplicates were dropped so rows stay contiguous.
  bool had_duplicates = false;
  std::vector<size_t> new_offsets(num_nodes + 1, 0);
  size_t write = 0;
  for (size_t v = 0; v < num_nodes; ++v) {
    size_t begin = g.offsets_[v];
    size_t end = g.offsets_[v + 1];
    std::sort(g.adj_.begin() + static_cast<ptrdiff_t>(begin),
              g.adj_.begin() + static_cast<ptrdiff_t>(end));
    size_t row_start = write;
    for (size_t i = begin; i < end; ++i) {
      if (i > begin && g.adj_[i] == g.adj_[i - 1]) {
        had_duplicates = true;
        continue;
      }
      g.adj_[write++] = g.adj_[i];
    }
    new_offsets[v] = row_start;
  }
  new_offsets[num_nodes] = write;
  if (had_duplicates) {
    g.adj_.resize(write);
    // new_offsets[v] holds the row start; shift into the n+1 layout.
    for (size_t v = 0; v < num_nodes; ++v) g.offsets_[v] = new_offsets[v];
    g.offsets_[num_nodes] = write;
  }
  g.num_edges_ = g.adj_.size() / 2;
  return g;
}

bool Graph::HasEdge(uint32_t a, uint32_t b) const {
  // Probe the smaller row; both are sorted.
  if (Degree(a) > Degree(b)) std::swap(a, b);
  auto row = Neighbors(a);
  return std::binary_search(row.begin(), row.end(), b);
}

Components ConnectedComponents(const Graph& g) {
  size_t n = g.num_nodes();
  Components out;
  constexpr uint32_t kUnassigned = UINT32_MAX;
  out.component_of.assign(n, kUnassigned);
  uint32_t next_component = 0;
  std::vector<uint32_t> frontier;
  // Scanning roots in ascending id order assigns component indices in
  // order of each component's smallest vertex.
  for (uint32_t root = 0; root < n; ++root) {
    if (out.component_of[root] != kUnassigned) continue;
    uint32_t c = next_component++;
    out.component_of[root] = c;
    frontier.assign(1, root);
    while (!frontier.empty()) {
      uint32_t v = frontier.back();
      frontier.pop_back();
      for (uint32_t w : g.Neighbors(v)) {
        if (out.component_of[w] == kUnassigned) {
          out.component_of[w] = c;
          frontier.push_back(w);
        }
      }
    }
  }
  out.members.resize(next_component);
  // A second ascending pass leaves every member list sorted.
  for (uint32_t v = 0; v < n; ++v) {
    out.members[out.component_of[v]].push_back(v);
  }
  return out;
}

Degeneracy DegeneracyOrder(const Graph& g) {
  size_t n = g.num_nodes();
  Degeneracy out;
  out.order.reserve(n);
  out.rank.assign(n, 0);
  if (n == 0) return out;

  // Bucket queue keyed by current degree. Each bucket is a vertex list;
  // pos[v] locates v inside its bucket for O(1) removal.
  std::vector<size_t> degree(n);
  size_t max_degree = 0;
  for (uint32_t v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<std::vector<uint32_t>> buckets(max_degree + 1);
  std::vector<size_t> pos(n);
  // Bucket contents evolve purely from the graph structure (no hashing,
  // no addresses), so the peel order — including tie-breaks — is a pure
  // function of the graph.
  for (uint32_t v = static_cast<uint32_t>(n); v-- > 0;) {
    pos[v] = buckets[degree[v]].size();
    buckets[degree[v]].push_back(v);
  }
  std::vector<bool> removed(n, false);
  size_t cursor = 0;  // lowest possibly non-empty bucket
  for (size_t step = 0; step < n; ++step) {
    while (buckets[cursor].empty()) ++cursor;
    uint32_t v = buckets[cursor].back();
    buckets[cursor].pop_back();
    removed[v] = true;
    out.degeneracy = std::max(out.degeneracy, cursor);
    out.rank[v] = static_cast<uint32_t>(out.order.size());
    out.order.push_back(v);
    for (uint32_t w : g.Neighbors(v)) {
      if (removed[w]) continue;
      size_t d = degree[w];
      // Remove w from buckets[d] by swapping with the last element.
      uint32_t moved = buckets[d].back();
      buckets[d][pos[w]] = moved;
      pos[moved] = pos[w];
      buckets[d].pop_back();
      degree[w] = d - 1;
      pos[w] = buckets[d - 1].size();
      buckets[d - 1].push_back(w);
      if (d - 1 < cursor) cursor = d - 1;
    }
  }
  return out;
}

}  // namespace graph
}  // namespace dar
