#include "graph/clique.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/logging.h"
#include "telemetry/trace.h"

namespace dar {
namespace graph {

namespace {

// What one component's search produced. Cliques carry *global* vertex
// ids, each ascending; emission order is the deterministic Bron-Kerbosch
// order of that component, independent of which worker ran it.
struct ComponentOutcome {
  std::vector<std::vector<uint32_t>> cliques;
  bool cap_truncated = false;
  bool step_truncated = false;
  size_t steps = 0;
  size_t degeneracy = 0;
};

// Budget and emission bookkeeping shared by both search backends. Step()
// and Emit() return false when the search must stop (budget exhausted or
// clique cap reached); the backends abort the whole component then —
// per-component accounting, with the global cap re-applied at merge time.
class SearchSink {
 public:
  SearchSink(const std::vector<uint32_t>& members, size_t max_cliques,
             size_t max_steps, ComponentOutcome* oc)
      : members_(members),
        max_cliques_(max_cliques),
        max_steps_(max_steps),
        oc_(oc) {}

  // One Bron-Kerbosch expansion (frame entry). Mirrors the per-call step
  // count of the old recursive enumerator.
  [[nodiscard]] bool Step() {
    ++oc_->steps;
    if (max_steps_ != 0 && oc_->steps > max_steps_) {
      oc_->step_truncated = true;
      return false;
    }
    return true;
  }

  // `r_local` holds local ids in descent order; translate and store
  // ascending. The cap check runs *before* the push, so a capped
  // component holds exactly max_cliques_ cliques and the flag records
  // the attempt at one more.
  [[nodiscard]] bool Emit(const std::vector<uint32_t>& r_local) {
    if (max_cliques_ != 0 && oc_->cliques.size() >= max_cliques_) {
      oc_->cap_truncated = true;
      return false;
    }
    std::vector<uint32_t> clique;
    clique.reserve(r_local.size());
    for (uint32_t v : r_local) clique.push_back(members_[v]);
    std::sort(clique.begin(), clique.end());
    oc_->cliques.push_back(std::move(clique));
    return true;
  }

 private:
  const std::vector<uint32_t>& members_;  // local id -> global id
  size_t max_cliques_;
  size_t max_steps_;
  ComponentOutcome* oc_;
};

size_t IntersectionSize(std::span<const uint32_t> a,
                        const std::vector<uint32_t>& b) {
  size_t count = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

// --- Sparse backend: P/X/candidates as sorted id vectors. ---------------
//
// Iterative Bron-Kerbosch with pivoting. The recursion of the textbook
// algorithm is replaced by an explicit Frame stack on the heap: each
// frame snapshots its candidate list (P \ N(pivot)) at creation, walks it
// left to right, and `awaiting` marks that the frame's current candidate
// has a child in flight — when control returns, the candidate migrates
// from P to X exactly as the recursive version did after its callee
// returned. Depth is bounded by the component's degeneracy + 1, but even
// adversarial graphs only grow a heap vector, never the thread stack.
class VectorCliqueSearch {
 public:
  VectorCliqueSearch(const Graph& local, const Degeneracy& degen,
                     SearchSink* sink)
      : local_(local), degen_(degen), sink_(sink) {}

  // Degeneracy-ordered outer loop: root v takes its later-ordered
  // neighbors as P and earlier-ordered ones as X, so every maximal clique
  // is reported exactly once (at its earliest vertex in the order) and
  // every subproblem starts with |P| <= degeneracy.
  void Run() {
    for (uint32_t v : degen_.order) {
      std::vector<uint32_t> p, x;
      for (uint32_t w : local_.Neighbors(v)) {
        (degen_.rank[w] > degen_.rank[v] ? p : x).push_back(w);
      }
      r_.assign(1, v);
      if (!RunRoot(std::move(p), std::move(x))) return;
    }
  }

 private:
  struct Frame {
    std::vector<uint32_t> p, x;     // sorted ascending
    std::vector<uint32_t> cand;     // P \ N(pivot), snapshot at entry
    size_t next = 0;                // index of the current candidate
    bool awaiting = false;          // current candidate's child in flight
  };

  [[nodiscard]] bool RunRoot(std::vector<uint32_t> p,
                             std::vector<uint32_t> x) {
    if (!sink_->Step()) return false;
    if (p.empty() && x.empty()) return sink_->Emit(r_);
    std::vector<Frame> stack;
    stack.push_back(MakeFrame(std::move(p), std::move(x)));
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.awaiting) RetireCandidate(f);
      if (f.next >= f.cand.size()) {
        stack.pop_back();
        continue;
      }
      uint32_t v = f.cand[f.next];
      std::vector<uint32_t> p2 = Intersect(f.p, v);
      std::vector<uint32_t> x2 = Intersect(f.x, v);
      if (!sink_->Step()) return false;
      r_.push_back(v);
      f.awaiting = true;
      if (p2.empty() && x2.empty()) {
        if (!sink_->Emit(r_)) return false;
        continue;  // loop top retires v immediately
      }
      stack.push_back(MakeFrame(std::move(p2), std::move(x2)));
    }
    return true;
  }

  // The child of f's current candidate finished: drop it from R and move
  // it from P to X.
  void RetireCandidate(Frame& f) {
    uint32_t v = f.cand[f.next];
    r_.pop_back();
    f.p.erase(std::lower_bound(f.p.begin(), f.p.end(), v));
    f.x.insert(std::lower_bound(f.x.begin(), f.x.end(), v), v);
    ++f.next;
    f.awaiting = false;
  }

  Frame MakeFrame(std::vector<uint32_t> p, std::vector<uint32_t> x) {
    Frame f;
    f.p = std::move(p);
    f.x = std::move(x);
    // Pivot: vertex of P u X with the most neighbors inside P (scanned P
    // then X, strictly-greater wins — fixed order, so the choice is a
    // pure function of the sets).
    uint32_t pivot = 0;
    size_t best = 0;
    bool have_pivot = false;
    for (const std::vector<uint32_t>* set : {&f.p, &f.x}) {
      for (uint32_t u : *set) {
        size_t deg = IntersectionSize(local_.Neighbors(u), f.p);
        if (!have_pivot || deg > best) {
          best = deg;
          pivot = u;
          have_pivot = true;
        }
      }
    }
    auto nbrs = local_.Neighbors(pivot);
    std::set_difference(f.p.begin(), f.p.end(), nbrs.begin(), nbrs.end(),
                        std::back_inserter(f.cand));
    return f;
  }

  std::vector<uint32_t> Intersect(const std::vector<uint32_t>& set,
                                  uint32_t v) const {
    auto nbrs = local_.Neighbors(v);
    std::vector<uint32_t> out;
    std::set_intersection(set.begin(), set.end(), nbrs.begin(), nbrs.end(),
                          std::back_inserter(out));
    return out;
  }

  const Graph& local_;
  const Degeneracy& degen_;
  SearchSink* sink_;
  std::vector<uint32_t> r_;  // current clique, local ids, descent order
};

// --- Dense backend: P/X/candidates as 64-bit-word bitsets. --------------
//
// Same frame machine as VectorCliqueSearch, but sets are bitsets over the
// component and adjacency is a k x k bit matrix, so set intersections and
// pivot scoring collapse into word-ANDs and popcounts. On a near-complete
// component the pivot scan drops from O(k^2) id comparisons per frame to
// O(k^2/64) word ops — the difference between K_1000 grinding for minutes
// and finishing instantly. Scan orders (P then X for the pivot, ascending
// bit order for candidates) match the sparse backend exactly, so both
// backends emit identical cliques in identical order.
class BitsetCliqueSearch {
 public:
  BitsetCliqueSearch(const Graph& local, const Degeneracy& degen,
                     SearchSink* sink)
      : degen_(degen),
        sink_(sink),
        n_(local.num_nodes()),
        words_((local.num_nodes() + 63) / 64),
        matrix_(words_ * local.num_nodes(), 0) {
    for (uint32_t v = 0; v < n_; ++v) {
      for (uint32_t w : local.Neighbors(v)) {
        matrix_[v * words_ + w / 64] |= uint64_t{1} << (w % 64);
      }
    }
  }

  void Run() {
    for (uint32_t v : degen_.order) {
      std::vector<uint64_t> p(words_, 0), x(words_, 0);
      const uint64_t* row = Row(v);
      for (size_t w = 0; w < words_; ++w) {
        uint64_t bits = row[w];
        while (bits != 0) {
          uint32_t u = static_cast<uint32_t>(
              w * 64 + static_cast<size_t>(std::countr_zero(bits)));
          bits &= bits - 1;
          (degen_.rank[u] > degen_.rank[v] ? p : x)[w] |= uint64_t{1}
                                                          << (u % 64);
        }
      }
      r_.assign(1, v);
      if (!RunRoot(std::move(p), std::move(x))) return;
    }
  }

 private:
  static constexpr uint32_t kNone = UINT32_MAX;

  struct Frame {
    std::vector<uint64_t> p, x, cand;
    uint32_t scan_from = 0;  // next bit position to probe in cand
    uint32_t current = 0;    // candidate whose child is in flight
    bool awaiting = false;
  };

  [[nodiscard]] bool RunRoot(std::vector<uint64_t> p,
                             std::vector<uint64_t> x) {
    if (!sink_->Step()) return false;
    if (AllZero(p) && AllZero(x)) return sink_->Emit(r_);
    std::vector<Frame> stack;
    stack.push_back(MakeFrame(std::move(p), std::move(x)));
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.awaiting) {
        r_.pop_back();
        ClearBit(f.p, f.current);
        SetBit(f.x, f.current);
        f.scan_from = f.current + 1;
        f.awaiting = false;
      }
      uint32_t v = NextBit(f.cand, f.scan_from);
      if (v == kNone) {
        stack.pop_back();
        continue;
      }
      std::vector<uint64_t> p2 = And(f.p, Row(v));
      std::vector<uint64_t> x2 = And(f.x, Row(v));
      if (!sink_->Step()) return false;
      r_.push_back(v);
      f.current = v;
      f.awaiting = true;
      if (AllZero(p2) && AllZero(x2)) {
        if (!sink_->Emit(r_)) return false;
        continue;
      }
      stack.push_back(MakeFrame(std::move(p2), std::move(x2)));
    }
    return true;
  }

  Frame MakeFrame(std::vector<uint64_t> p, std::vector<uint64_t> x) {
    Frame f;
    f.p = std::move(p);
    f.x = std::move(x);
    uint32_t pivot = 0;
    size_t best = 0;
    bool have_pivot = false;
    for (const std::vector<uint64_t>* set : {&f.p, &f.x}) {
      for (uint32_t u = NextBit(*set, 0); u != kNone;
           u = NextBit(*set, u + 1)) {
        const uint64_t* row = Row(u);
        size_t deg = 0;
        for (size_t w = 0; w < words_; ++w) {
          deg += static_cast<size_t>(std::popcount(f.p[w] & row[w]));
        }
        if (!have_pivot || deg > best) {
          best = deg;
          pivot = u;
          have_pivot = true;
        }
      }
    }
    f.cand.resize(words_);
    const uint64_t* row = Row(pivot);
    for (size_t w = 0; w < words_; ++w) f.cand[w] = f.p[w] & ~row[w];
    return f;
  }

  [[nodiscard]] const uint64_t* Row(uint32_t v) const {
    return matrix_.data() + v * words_;
  }
  std::vector<uint64_t> And(const std::vector<uint64_t>& set,
                            const uint64_t* row) const {
    std::vector<uint64_t> out(words_);
    for (size_t w = 0; w < words_; ++w) out[w] = set[w] & row[w];
    return out;
  }
  static bool AllZero(const std::vector<uint64_t>& set) {
    for (uint64_t w : set) {
      if (w != 0) return false;
    }
    return true;
  }
  static void SetBit(std::vector<uint64_t>& set, uint32_t v) {
    set[v / 64] |= uint64_t{1} << (v % 64);
  }
  static void ClearBit(std::vector<uint64_t>& set, uint32_t v) {
    set[v / 64] &= ~(uint64_t{1} << (v % 64));
  }
  // Lowest set bit at position >= from, or kNone.
  uint32_t NextBit(const std::vector<uint64_t>& set, uint32_t from) const {
    if (from >= n_) return kNone;
    size_t w = from / 64;
    uint64_t bits = set[w] & (~uint64_t{0} << (from % 64));
    while (true) {
      if (bits != 0) {
        return static_cast<uint32_t>(
            w * 64 + static_cast<size_t>(std::countr_zero(bits)));
      }
      if (++w >= words_) return kNone;
      bits = set[w];
    }
  }

  const Degeneracy& degen_;
  SearchSink* sink_;
  size_t n_;
  size_t words_;
  std::vector<uint64_t> matrix_;  // k rows of `words_` adjacency words
  std::vector<uint32_t> r_;
};

// Enumerates one connected component. `local_id` is the shared global ->
// local translation (filled by the coordinator, read-only here).
ComponentOutcome EnumerateComponent(const Graph& g,
                                    const std::vector<uint32_t>& members,
                                    const std::vector<uint32_t>& local_id,
                                    const CliqueOptions& options) {
  size_t k = members.size();
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t w : g.Neighbors(members[i])) {
      if (w > members[i]) edges.emplace_back(i, local_id[w]);
    }
  }
  // Members are ascending, so local ids preserve the global order and the
  // local graph is just the induced subgraph relabeled.
  Graph local = Graph::FromEdges(k, edges);
  Degeneracy degen = DegeneracyOrder(local);

  ComponentOutcome oc;
  oc.degeneracy = degen.degeneracy;
  SearchSink sink(members, options.max_cliques, options.max_steps, &oc);
  double density =
      k > 1 ? 2.0 * static_cast<double>(local.num_edges()) /
                  (static_cast<double>(k) * static_cast<double>(k - 1))
            : 0.0;
  // Backend choice is a pure function of the component (never of the
  // schedule), and both backends emit identical cliques anyway.
  if (k > 2 && k <= options.max_bitset_nodes &&
      density >= options.dense_cutoff) {
    BitsetCliqueSearch(local, degen, &sink).Run();
  } else {
    VectorCliqueSearch(local, degen, &sink).Run();
  }
  return oc;
}

}  // namespace

CliqueResult EnumerateMaximalCliques(const Graph& g,
                                     const CliqueOptions& options) {
  Components comps = ConnectedComponents(g);
  size_t num_components = comps.members.size();
  std::vector<uint32_t> local_id(g.num_nodes(), 0);
  for (const auto& members : comps.members) {
    for (uint32_t i = 0; i < members.size(); ++i) {
      local_id[members[i]] = i;
    }
  }

  // Fan components over the executor. Each slot is written by exactly one
  // worker; the merge below reads them in component order, so the result
  // never depends on the schedule.
  std::vector<ComponentOutcome> outcomes(num_components);
  telemetry::Histogram* comp_hist = options.telemetry.GetHistogram(
      "graph.component_seconds", telemetry::Histogram::LatencyBounds());
  auto run_component = [&](size_t c) -> Status {
    const telemetry::TraceSpan span(comp_hist);
    outcomes[c] =
        EnumerateComponent(g, comps.members[c], local_id, options);
    return Status::OK();
  };
  if (options.executor != nullptr && options.executor->parallelism() > 1 &&
      num_components > 1) {
    // run_component cannot fail; Status exists for the ParallelFor shape.
    (void)options.executor->ParallelFor(num_components, run_component);
  } else {
    for (size_t c = 0; c < num_components; ++c) (void)run_component(c);
  }

  CliqueResult out;
  out.num_components = num_components;
  for (const ComponentOutcome& oc : outcomes) {
    out.steps += oc.steps;
    out.degeneracy = std::max(out.degeneracy, oc.degeneracy);
    if (oc.step_truncated) out.step_budget_truncated = true;
    if (oc.cap_truncated) out.clique_cap_truncated = true;
  }
  // Merge in component order, re-applying the global cap: the kept set is
  // the prefix of the component-ordered emission, regardless of which
  // worker finished first.
  for (ComponentOutcome& oc : outcomes) {
    for (std::vector<uint32_t>& clique : oc.cliques) {
      if (options.max_cliques != 0 &&
          out.cliques.size() >= options.max_cliques) {
        out.clique_cap_truncated = true;
        break;
      }
      out.largest_clique = std::max(out.largest_clique, clique.size());
      out.cliques.push_back(std::move(clique));
    }
  }
  std::sort(out.cliques.begin(), out.cliques.end());

  const telemetry::TelemetryContext& telem = options.telemetry;
  if (telem.enabled()) {
    telem.GetCounter("graph.components")
        ->Increment(static_cast<int64_t>(out.num_components));
    telem.GetGauge("graph.degeneracy")
        ->Set(static_cast<double>(out.degeneracy));
    telem.GetCounter("graph.expansion_steps")
        ->Increment(static_cast<int64_t>(out.steps));
    telemetry::Histogram* sizes = telem.GetHistogram(
        "graph.clique_size", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64},
        telemetry::Unit::kCount);
    for (const auto& clique : out.cliques) {
      sizes->Record(static_cast<double>(clique.size()));
    }
  }
  return out;
}

}  // namespace graph
}  // namespace dar
