#ifndef DAR_GRAPH_CLIQUE_H_
#define DAR_GRAPH_CLIQUE_H_

#include <cstdint>
#include <vector>

#include "common/executor.h"
#include "graph/graph.h"
#include "telemetry/context.h"

namespace dar {
namespace graph {

/// Tuning and budgets for EnumerateMaximalCliques.
struct CliqueOptions {
  /// Global cap on emitted cliques (0 = unbounded). Applied twice: inside
  /// each component (no component enumerates past the cap) and again
  /// during the component-ordered merge, so the kept set is the prefix of
  /// the deterministic component-order emission — independent of how
  /// components were scheduled across workers.
  size_t max_cliques = 0;
  /// Cap on Bron-Kerbosch expansion steps *per component* (0 = unbounded).
  /// Dense graphs can grind for a long time between emitted cliques; the
  /// step bound makes truncation responsive, not just the clique cap.
  size_t max_steps = 0;
  /// Components whose edge density (2m / k(k-1)) reaches this cutoff — and
  /// whose node count fits max_bitset_nodes — are enumerated over a bitset
  /// adjacency matrix: pivot scoring becomes word-parallel popcounts,
  /// turning the O(k) per-candidate scan into O(k/64). Sparse components
  /// stay on sorted-span intersections.
  double dense_cutoff = 0.25;
  /// Upper bound on bitset-path component size (k^2/8 bytes of matrix; the
  /// default caps it at 2 MiB per component).
  size_t max_bitset_nodes = 4096;
  /// Optional executor (not owned, may be null = serial). Components are
  /// fanned over it with per-slot results merged in component order, so
  /// the output is bit-identical at any thread count.
  Executor* executor = nullptr;
  /// Optional recording context (default: disabled). Deterministic
  /// metrics (graph.components, graph.degeneracy, graph.expansion_steps,
  /// graph.clique_size histogram) are recorded on the calling thread;
  /// the graph.component_seconds histogram is recorded from workers.
  telemetry::TelemetryContext telemetry;
};

/// Output of one enumeration. Cliques are canonical: each ascending, the
/// whole list sorted lexicographically. The two truncation flags are
/// distinct signals — a fired clique cap means the graph has more maximal
/// cliques than the caller allowed; a fired step budget means some
/// component's search was cut off mid-walk (its cliques up to that point
/// are still emitted and still maximal).
struct CliqueResult {
  std::vector<std::vector<uint32_t>> cliques;
  bool clique_cap_truncated = false;
  bool step_budget_truncated = false;
  /// Structure facts, for telemetry and bench params.
  size_t num_components = 0;
  size_t degeneracy = 0;
  size_t largest_clique = 0;
  /// Total expansion steps across all components (deterministic).
  size_t steps = 0;
};

/// Enumerates all maximal cliques of `g` (isolated vertices yield trivial
/// 1-cliques). Bron-Kerbosch with pivoting, driven by a degeneracy-ordered
/// outer loop and implemented iteratively with an explicit frame stack —
/// enumeration depth is bounded by heap, not the thread's stack, so
/// pathological graphs (10^5-node paths, giant cliques) cannot overflow.
/// Runs per connected component, optionally in parallel on
/// options.executor; results are merged in component order and are
/// bit-identical for every executor and thread count.
[[nodiscard]] CliqueResult EnumerateMaximalCliques(const Graph& g,
                                                   const CliqueOptions& options);

}  // namespace graph
}  // namespace dar

#endif  // DAR_GRAPH_CLIQUE_H_
