#ifndef DAR_GRAPH_GRAPH_H_
#define DAR_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dar {
namespace graph {

/// An immutable undirected graph in compressed-sparse-row form: one
/// offsets array of n+1 entries into a flat neighbor array of 2m sorted
/// vertex ids. Built once (from the Phase-II edge sweep or a generator)
/// and then only read — all accessors are const and safe to share across
/// executor workers without locking.
///
/// Vertex ids are uint32_t: Phase II tops out at 10^4-10^5 clusters, and
/// the narrow ids halve the adjacency footprint and double how much of a
/// neighborhood fits per cache line during the clique search.
class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list. Self-loops are rejected
  /// (DAR_CHECK), duplicate edges (in either orientation) are coalesced,
  /// and endpoints must be < num_nodes. The result is independent of the
  /// edge order.
  static Graph FromEdges(size_t num_nodes,
                         const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  [[nodiscard]] size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] size_t num_edges() const { return num_edges_; }

  /// Neighbors of `v`, ascending. Valid as long as the graph lives.
  [[nodiscard]] std::span<const uint32_t> Neighbors(uint32_t v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] size_t Degree(uint32_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }
  [[nodiscard]] bool HasEdge(uint32_t a, uint32_t b) const;

 private:
  std::vector<size_t> offsets_;  // n + 1 row starts into adj_
  std::vector<uint32_t> adj_;    // 2m neighbor ids, each row ascending
  size_t num_edges_ = 0;
};

/// Connected components of a graph, in deterministic order: component i
/// is the one whose smallest vertex is the i-th smallest among component
/// minima (i.e. components appear in order of their lowest vertex id),
/// and each member list is ascending. This ordering is what lets the
/// clique engine merge per-component results into a schedule-independent
/// whole.
struct Components {
  /// component_of[v] = index into members.
  std::vector<uint32_t> component_of;
  std::vector<std::vector<uint32_t>> members;
};

[[nodiscard]] Components ConnectedComponents(const Graph& g);

/// Degeneracy ordering via the linear-time bucket peel (Matula-Beck):
/// repeatedly remove a minimum-degree vertex (ties broken by a fixed,
/// schedule-independent bucket discipline). `order` lists vertices in
/// removal order,
/// `rank[v]` is v's position in it, and `degeneracy` is the largest
/// degree seen at removal time — the clique search keys its outer loop
/// off this order so every subproblem starts with at most `degeneracy`
/// candidates.
struct Degeneracy {
  std::vector<uint32_t> order;
  std::vector<uint32_t> rank;
  size_t degeneracy = 0;
};

[[nodiscard]] Degeneracy DegeneracyOrder(const Graph& g);

}  // namespace graph
}  // namespace dar

#endif  // DAR_GRAPH_GRAPH_H_
