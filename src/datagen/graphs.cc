#include "datagen/graphs.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace dar {

namespace {

// Appends the edges of Erdos-Renyi G(n, p) to `edges`, sampling by
// geometric skips over the linearized strictly-upper-triangular pair
// sequence: with edge probability p, the gap to the next present edge is
// Geometric(p), so we draw gaps instead of flipping every pair — O(m)
// draws for a graph with m edges.
void AppendGnpEdges(size_t n, double p, Rng& rng,
                    std::vector<std::pair<uint32_t, uint32_t>>* edges) {
  if (n < 2 || p <= 0.0) return;
  const double log_q = std::log1p(-p);
  const size_t total = n * (n - 1) / 2;
  auto next_gap = [&]() -> size_t {
    double g = std::log1p(-rng.Uniform(0.0, 1.0)) / log_q;
    // Clamp before the size_t cast: a tail draw can exceed the pair count
    // and an out-of-range float-to-int conversion is UB.
    return g >= static_cast<double>(total) ? total
                                           : static_cast<size_t>(g);
  };
  size_t row = 0;       // current outer vertex
  size_t row_base = 0;  // linear index of pair (row, row + 1)
  for (size_t t = next_gap(); t < total; t += 1 + next_gap()) {
    // Advance to the row containing pair t (rows shrink, t only grows).
    while (t >= row_base + (n - 1 - row)) {
      row_base += n - 1 - row;
      ++row;
    }
    size_t col = row + 1 + (t - row_base);
    edges->emplace_back(static_cast<uint32_t>(row),
                        static_cast<uint32_t>(col));
  }
}

void SortAndDedup(std::vector<std::pair<uint32_t, uint32_t>>* edges) {
  std::sort(edges->begin(), edges->end());
  edges->erase(std::unique(edges->begin(), edges->end()), edges->end());
}

}  // namespace

Result<GeneratedGraph> GeneratePlantedCliqueGraph(
    const PlantedCliqueGraphSpec& spec) {
  if (spec.clique_size < 2) {
    return Status::InvalidArgument("clique_size must be >= 2");
  }
  if (spec.overlap >= spec.clique_size) {
    return Status::InvalidArgument("overlap must be < clique_size");
  }
  if (spec.background_p < 0.0 || spec.background_p >= 1.0) {
    return Status::InvalidArgument("background_p must be in [0, 1)");
  }
  const size_t stride = spec.clique_size - spec.overlap;
  if (spec.num_cliques > 0) {
    size_t last_end = (spec.num_cliques - 1) * stride + spec.clique_size;
    if (last_end > spec.num_nodes) {
      return Status::InvalidArgument(
          "planted clique chain does not fit in num_nodes");
    }
  }

  GeneratedGraph out;
  out.num_nodes = spec.num_nodes;
  for (size_t c = 0; c < spec.num_cliques; ++c) {
    size_t start = c * stride;
    for (size_t a = start; a < start + spec.clique_size; ++a) {
      for (size_t b = a + 1; b < start + spec.clique_size; ++b) {
        out.edges.emplace_back(static_cast<uint32_t>(a),
                               static_cast<uint32_t>(b));
      }
    }
  }
  Rng rng(spec.seed);
  AppendGnpEdges(spec.num_nodes, spec.background_p, rng, &out.edges);
  SortAndDedup(&out.edges);
  return out;
}

GeneratedGraph MoonMoserGraph(size_t k) {
  GeneratedGraph out;
  out.num_nodes = 3 * k;
  // Complete k-partite with parts {3p, 3p+1, 3p+2}: an edge wherever the
  // endpoints sit in different parts. 3^k maximal cliques (one vertex
  // per part) — the Moon-Moser maximum for 3k vertices.
  for (uint32_t a = 0; a < out.num_nodes; ++a) {
    for (uint32_t b = a + 1; b < out.num_nodes; ++b) {
      if (a / 3 != b / 3) out.edges.emplace_back(a, b);
    }
  }
  return out;
}

Result<GeneratedGraph> GenerateGnp(size_t num_nodes, double p,
                                   uint64_t seed) {
  if (p < 0.0 || p >= 1.0) {
    return Status::InvalidArgument("p must be in [0, 1)");
  }
  GeneratedGraph out;
  out.num_nodes = num_nodes;
  Rng rng(seed);
  AppendGnpEdges(num_nodes, p, rng, &out.edges);
  return out;
}

}  // namespace dar
