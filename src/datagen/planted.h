#ifndef DAR_DATAGEN_PLANTED_H_
#define DAR_DATAGEN_PLANTED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace dar {

/// One planted (ground-truth) cluster of a synthetic attribute set: points
/// are drawn Gaussian around `center` with `stddev` per dimension.
struct PlantedCluster {
  std::vector<double> center;
  double stddev = 1.0;
};

/// One synthetic attribute set.
struct PlantedPart {
  std::string label;
  size_t dim = 1;
  MetricKind metric = MetricKind::kEuclidean;
  std::vector<PlantedCluster> clusters;
  /// Domain used for uniform outlier tuples.
  double domain_lo = 0;
  double domain_hi = 100;
};

/// A cross-attribute co-occurrence pattern: tuples drawn from this pattern
/// take cluster `cluster_of_part[p]` on part p. Patterns are the planted
/// ground truth behind distance-based rules — every pair of clusters chosen
/// by a common pattern genuinely co-occurs. An entry of -1 leaves that part
/// unconstrained: the tuple draws a background cluster for it (see
/// PlantedDataSpec::background_choices), so the pattern correlates only the
/// parts it names.
struct PlantedPattern {
  std::vector<int64_t> cluster_of_part;
  double weight = 1.0;
};

/// Full synthetic-data specification.
struct PlantedDataSpec {
  std::vector<PlantedPart> parts;
  std::vector<PlantedPattern> patterns;
  /// Fraction of tuples drawn uniformly over the domains (the "irrelevant
  /// (or outliers) points" of §7.2).
  double outlier_fraction = 0.0;
  /// Per part: the cluster indices an unconstrained (-1) pattern entry may
  /// draw from. Empty (or missing part entry) means all of the part's
  /// clusters.
  std::vector<std::vector<size_t>> background_choices;
};

/// A generated dataset: the relation, its partitioning, and per-tuple
/// ground truth (pattern index, or -1 for outlier tuples).
struct PlantedDataset {
  Relation relation;
  AttributePartition partition;
  std::vector<int32_t> pattern_of_row;
};

/// Validates `spec` and generates `n` tuples with the given seed. Column
/// names are "<label>_<d>" (or just "<label>" for 1-d parts); identical
/// seeds give identical data.
Result<PlantedDataset> GeneratePlanted(const PlantedDataSpec& spec, size_t n,
                                       uint64_t seed);

/// Builds a WBCD-like specification (§7.2 substitute): `num_attrs`
/// independent 1-d interval attributes, `clusters_per_attr` well-separated
/// planted clusters each, and `clusters_per_attr` cross-attribute patterns
/// aligning cluster k of every attribute. Scaling `n` in GeneratePlanted
/// increases points per cluster (and outliers proportionally) while the
/// cluster structure stays constant — exactly the §7.2 scaling experiment.
PlantedDataSpec WbcdLikeSpec(size_t num_attrs, size_t clusters_per_attr,
                             double outlier_fraction, uint64_t seed);

/// Builds the §7.2 evaluation workload: like WbcdLikeSpec, but each of
/// `num_patterns` patterns correlates only `attrs_per_pattern` randomly
/// chosen attributes, claiming a *dedicated* cluster on each (so pattern
/// clusters contain only their pattern's tuples); the remaining clusters of
/// every attribute are background clusters drawn uniformly by unconstrained
/// tuples. This produces the paper's §7.2 shape — on the order of
/// `num_attrs * clusters_per_attr` ACFs and `num_patterns` non-trivial
/// cliques — and scales in N with the cluster structure held constant.
/// Requires clusters_per_attr to exceed the per-attribute claim count
/// (ceil(num_patterns * attrs_per_pattern / num_attrs)).
Result<PlantedDataSpec> WbcdPartialPatternSpec(size_t num_attrs,
                                               size_t clusters_per_attr,
                                               size_t num_patterns,
                                               size_t attrs_per_pattern,
                                               double outlier_fraction,
                                               uint64_t seed);

/// Returns a copy of `spec` with every planted cluster center translated by
/// `shift` in every dimension. A shift of 0 returns the spec unchanged —
/// the stationary control for drift experiments. Shifts large relative to
/// the cluster stddevs (and to the inter-cluster spacing, if rules should
/// change identity rather than merely drift) move the recovered rule
/// intervals; small shifts exercise the "drifted" classification of
/// SnapshotDiff without killing the rules.
PlantedDataSpec ShiftClusterMeans(const PlantedDataSpec& spec, double shift);

/// Drift-injection generator: the first `drift_row` tuples are drawn from
/// `spec`, the remaining `n - drift_row` from ShiftClusterMeans(spec,
/// shift). The two segments use decorrelated derived seeds, so the
/// stationary control (shift = 0) still changes the *sample* after the
/// cut — only the distribution stays fixed. `pattern_of_row` covers both
/// segments; pattern indices are comparable across the cut because the
/// shifted spec keeps the pattern structure.
/// Requires 0 < drift_row <= n.
Result<PlantedDataset> GenerateDrifting(const PlantedDataSpec& spec, size_t n,
                                        size_t drift_row, double shift,
                                        uint64_t seed);

}  // namespace dar

#endif  // DAR_DATAGEN_PLANTED_H_
