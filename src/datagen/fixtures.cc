#include "datagen/fixtures.h"

#include "common/logging.h"
#include "common/random.h"

namespace dar {

namespace {

CsvTable MakeFig2(const std::vector<double>& last_two_salaries) {
  Schema schema = *Schema::Make({{"Job", AttributeKind::kNominal},
                                 {"Age", AttributeKind::kInterval},
                                 {"Salary", AttributeKind::kInterval}});
  CsvTable table{Relation(schema), std::vector<Dictionary>(3)};
  Dictionary& jobs = table.dictionaries[0];
  double mgr = jobs.Encode("Mgr");
  double dba = jobs.Encode("DBA");
  DAR_CHECK(table.relation.AppendRow({mgr, 30, 40000}).ok());
  DAR_CHECK(table.relation.AppendRow({dba, 30, 40000}).ok());
  DAR_CHECK(table.relation.AppendRow({dba, 30, 40000}).ok());
  DAR_CHECK(table.relation.AppendRow({dba, 30, 40000}).ok());
  DAR_CHECK(table.relation.AppendRow({dba, 30, last_two_salaries[0]}).ok());
  DAR_CHECK(table.relation.AppendRow({dba, 30, last_two_salaries[1]}).ok());
  return table;
}

}  // namespace

std::vector<double> Fig1SalaryColumn() {
  return {18000, 30000, 31000, 80000, 81000, 82000};
}

CsvTable Fig2RelationR1() { return MakeFig2({100000, 90000}); }

CsvTable Fig2RelationR2() { return MakeFig2({41000, 42000}); }

Result<AttributePartition> Fig2Partition(const Schema& schema) {
  return AttributePartition::Make(
      schema, {{{"Job"}, MetricKind::kDiscrete},
               {{"Age"}, MetricKind::kEuclidean},
               {{"Salary"}, MetricKind::kEuclidean}});
}

Result<Fig4Dataset> MakeFig4Dataset(const Fig4Options& options) {
  if (options.intersection == 0 || options.scale == 0) {
    return Status::InvalidArgument("intersection and scale must be positive");
  }
  Schema schema = *Schema::Make(
      {{"X", AttributeKind::kInterval}, {"Y", AttributeKind::kInterval}});
  DAR_ASSIGN_OR_RETURN(
      AttributePartition partition,
      AttributePartition::Make(schema, {{{"X"}, MetricKind::kEuclidean},
                                        {{"Y"}, MetricKind::kEuclidean}}));
  Relation rel(schema);
  Rng rng(options.seed);

  const double x0 = 50.0;
  const double y0 = 50.0;
  auto jitter = [&]() { return rng.Gaussian(0.0, options.jitter); };

  for (size_t s = 0; s < options.scale; ++s) {
    for (size_t i = 0; i < options.intersection; ++i) {
      DAR_RETURN_IF_ERROR(rel.AppendRow({x0 + jitter(), y0 + jitter()}));
    }
    for (size_t i = 0; i < options.only_x; ++i) {
      // In C_X, far from C_Y on the Y axis.
      DAR_RETURN_IF_ERROR(
          rel.AppendRow({x0 + jitter(), y0 + options.far_offset + jitter()}));
    }
    for (size_t i = 0; i < options.only_y; ++i) {
      // In C_Y, near C_X on the X axis.
      DAR_RETURN_IF_ERROR(
          rel.AppendRow({x0 + options.near_offset + jitter(), y0 + jitter()}));
    }
  }
  return Fig4Dataset{std::move(rel), std::move(partition)};
}

PlantedDataSpec InsuranceSpec() {
  PlantedDataSpec spec;
  spec.outlier_fraction = 0.08;

  PlantedPart age{"Age", 1, MetricKind::kEuclidean,
                  {{{44}, 1.6}, {{28}, 2.0}, {{62}, 2.2}},
                  18, 80};
  PlantedPart dependents{"Dependents", 1, MetricKind::kEuclidean,
                         {{{3.5}, 0.5}, {{0.4}, 0.3}, {{1.8}, 0.4}},
                         0, 8};
  PlantedPart claims{"Claims", 1, MetricKind::kEuclidean,
                     {{{12000}, 800}, {{2500}, 400}, {{6500}, 600}},
                     0, 20000};
  spec.parts = {age, dependents, claims};

  // Pattern 0 is the §5.2 headline: middle-aged, several dependents, high
  // claims. Patterns 1-2 are competing populations.
  spec.patterns = {{{0, 0, 0}, 0.4}, {{1, 1, 1}, 0.35}, {{2, 2, 2}, 0.25}};
  return spec;
}

}  // namespace dar
