#ifndef DAR_DATAGEN_FIXTURES_H_
#define DAR_DATAGEN_FIXTURES_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "datagen/planted.h"
#include "relation/csv.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace dar {

/// The Figure-1 Salary column: {18K, 30K, 31K, 80K, 81K, 82K}. Equi-depth
/// partitioning at depth 2 produces [18K,30K], [31K,80K], [81K,82K];
/// distance-based clustering produces [18K,18K], [30K,31K], [80K,82K].
std::vector<double> Fig1SalaryColumn();

/// The Figure-2 relations over (Job nominal, Age, Salary). In both, the
/// classical rule `Job=DBA AND Age=30 => Salary=40000` has support 50% and
/// confidence 60%; R2's non-matching salaries (41K, 42K) are near 40K while
/// R1's (100K, 90K) are far.
CsvTable Fig2RelationR1();
CsvTable Fig2RelationR2();

/// The attribute partitioning used with the Figure-2 relations: Job
/// (discrete metric), Age, Salary as three singleton parts.
Result<AttributePartition> Fig2Partition(const Schema& schema);

/// Parameters of the Figure-4 two-cluster scenario.
struct Fig4Options {
  /// Tuples in the intersection of C_X and C_Y (10 in the figure).
  size_t intersection = 10;
  /// Tuples in C_X - C_Y (2 in the figure): X values inside C_X, Y values
  /// displaced from C_Y by `far_offset`.
  size_t only_x = 2;
  /// Tuples in C_Y - C_X (3 in the figure): Y values inside C_Y, X values
  /// displaced from C_X by `near_offset`.
  size_t only_y = 3;
  /// Displacements relative to the cluster scale; the figure's point is
  /// near_offset << far_offset.
  double near_offset = 3.0;
  double far_offset = 30.0;
  /// Replication factor for every group (so frequency thresholds can be
  /// met at scale 1:1 with the figure when == 1).
  size_t scale = 1;
  /// Gaussian jitter inside clusters.
  double jitter = 0.25;
  uint64_t seed = 42;
};

/// Two-attribute dataset realizing Figure 4: classical confidence favours
/// C_X => C_Y (10/12 > 10/13), while the distance-based degree favours
/// C_Y => C_X because the C_Y-only tuples sit close to the intersection.
struct Fig4Dataset {
  Relation relation;
  AttributePartition partition;
};
Result<Fig4Dataset> MakeFig4Dataset(const Fig4Options& options);

/// The §5.2 insurance scenario: Age, Dependents, Claims with planted
/// patterns, the headline one being Age in [41,47] & Dependents in [2,5]
/// => Claims around $10K-$14K.
PlantedDataSpec InsuranceSpec();

}  // namespace dar

#endif  // DAR_DATAGEN_FIXTURES_H_
