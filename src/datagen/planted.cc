#include "datagen/planted.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace dar {

namespace {

Status ValidateSpec(const PlantedDataSpec& spec) {
  if (spec.parts.empty()) {
    return Status::InvalidArgument("spec has no parts");
  }
  if (spec.patterns.empty()) {
    return Status::InvalidArgument("spec has no patterns");
  }
  if (spec.outlier_fraction < 0 || spec.outlier_fraction >= 1) {
    return Status::InvalidArgument("outlier_fraction must be in [0, 1)");
  }
  for (const auto& part : spec.parts) {
    if (part.dim == 0) return Status::InvalidArgument("part with dim 0");
    if (part.clusters.empty()) {
      return Status::InvalidArgument("part '" + part.label +
                                     "' has no clusters");
    }
    for (const auto& c : part.clusters) {
      if (c.center.size() != part.dim) {
        return Status::InvalidArgument("cluster center dimension mismatch in '" +
                                       part.label + "'");
      }
    }
    if (part.domain_lo >= part.domain_hi) {
      return Status::InvalidArgument("invalid domain for '" + part.label +
                                     "'");
    }
  }
  for (const auto& pat : spec.patterns) {
    if (pat.cluster_of_part.size() != spec.parts.size()) {
      return Status::InvalidArgument("pattern arity != number of parts");
    }
    for (size_t p = 0; p < spec.parts.size(); ++p) {
      int64_t idx = pat.cluster_of_part[p];
      if (idx < -1 ||
          idx >= static_cast<int64_t>(spec.parts[p].clusters.size())) {
        return Status::InvalidArgument("pattern references unknown cluster");
      }
    }
    if (pat.weight <= 0) {
      return Status::InvalidArgument("pattern weight must be positive");
    }
  }
  if (!spec.background_choices.empty()) {
    if (spec.background_choices.size() != spec.parts.size()) {
      return Status::InvalidArgument(
          "background_choices size != number of parts");
    }
    for (size_t p = 0; p < spec.parts.size(); ++p) {
      for (size_t idx : spec.background_choices[p]) {
        if (idx >= spec.parts[p].clusters.size()) {
          return Status::InvalidArgument(
              "background choice references unknown cluster");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<PlantedDataset> GeneratePlanted(const PlantedDataSpec& spec, size_t n,
                                       uint64_t seed) {
  DAR_RETURN_IF_ERROR(ValidateSpec(spec));
  if (n == 0) return Status::InvalidArgument("n must be positive");

  // Schema: one interval column per dimension of each part.
  std::vector<Attribute> attrs;
  std::vector<std::pair<std::vector<std::string>, MetricKind>> part_specs;
  for (const auto& part : spec.parts) {
    std::vector<std::string> names;
    for (size_t d = 0; d < part.dim; ++d) {
      std::string name =
          part.dim == 1 ? part.label : part.label + "_" + std::to_string(d);
      attrs.push_back({name, part.metric == MetricKind::kDiscrete
                                 ? AttributeKind::kNominal
                                 : AttributeKind::kInterval});
      names.push_back(std::move(name));
    }
    part_specs.emplace_back(std::move(names), part.metric);
  }
  DAR_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  DAR_ASSIGN_OR_RETURN(AttributePartition partition,
                       AttributePartition::Make(schema, part_specs));

  Rng rng(seed);
  std::vector<double> weights;
  weights.reserve(spec.patterns.size());
  for (const auto& pat : spec.patterns) weights.push_back(pat.weight);

  Relation rel(schema);
  rel.Reserve(n);
  std::vector<int32_t> pattern_of_row;
  pattern_of_row.reserve(n);

  std::vector<double> row(schema.num_attributes());
  for (size_t i = 0; i < n; ++i) {
    bool outlier = rng.Bernoulli(spec.outlier_fraction);
    int32_t pattern = -1;
    if (!outlier) pattern = static_cast<int32_t>(rng.Categorical(weights));
    size_t col = 0;
    for (size_t p = 0; p < spec.parts.size(); ++p) {
      const PlantedPart& part = spec.parts[p];
      if (outlier) {
        for (size_t d = 0; d < part.dim; ++d) {
          row[col++] = rng.Uniform(part.domain_lo, part.domain_hi);
        }
      } else {
        int64_t idx = spec.patterns[pattern].cluster_of_part[p];
        if (idx < 0) {
          // Unconstrained part: draw a background cluster.
          if (p < spec.background_choices.size() &&
              !spec.background_choices[p].empty()) {
            const auto& choices = spec.background_choices[p];
            idx = static_cast<int64_t>(choices[static_cast<size_t>(
                rng.UniformInt(0, static_cast<int64_t>(choices.size()) - 1))]);
          } else {
            idx = rng.UniformInt(
                0, static_cast<int64_t>(part.clusters.size()) - 1);
          }
        }
        const PlantedCluster& c = part.clusters[static_cast<size_t>(idx)];
        for (size_t d = 0; d < part.dim; ++d) {
          double v = rng.Gaussian(c.center[d], c.stddev);
          if (part.metric == MetricKind::kDiscrete) v = c.center[d];
          row[col++] = v;
        }
      }
    }
    DAR_RETURN_IF_ERROR(rel.AppendRow(row));
    pattern_of_row.push_back(pattern);
  }
  return PlantedDataset{std::move(rel), std::move(partition),
                        std::move(pattern_of_row)};
}

PlantedDataSpec WbcdLikeSpec(size_t num_attrs, size_t clusters_per_attr,
                             double outlier_fraction, uint64_t seed) {
  PlantedDataSpec spec;
  spec.outlier_fraction = outlier_fraction;
  Rng rng(seed);

  // Well-separated cluster centers per attribute: slots on a jittered grid
  // so the planted structure is recoverable at small diameter thresholds.
  const double kDomainLo = 0.0;
  const double kDomainHi = 1000.0;
  double slot = (kDomainHi - kDomainLo) / static_cast<double>(
                                              clusters_per_attr);
  for (size_t a = 0; a < num_attrs; ++a) {
    PlantedPart part;
    part.label = "attr" + std::to_string(a);
    part.dim = 1;
    part.metric = MetricKind::kEuclidean;
    part.domain_lo = kDomainLo;
    part.domain_hi = kDomainHi;
    for (size_t k = 0; k < clusters_per_attr; ++k) {
      PlantedCluster c;
      double base = kDomainLo + (static_cast<double>(k) + 0.5) * slot;
      c.center = {base + rng.Uniform(-0.15 * slot, 0.15 * slot)};
      c.stddev = 0.04 * slot;
      part.clusters.push_back(std::move(c));
    }
    spec.parts.push_back(std::move(part));
  }
  // Pattern k aligns cluster k of every attribute, so every attribute pair
  // carries a planted distance-based rule.
  for (size_t k = 0; k < clusters_per_attr; ++k) {
    PlantedPattern pat;
    pat.cluster_of_part.assign(num_attrs, static_cast<int64_t>(k));
    pat.weight = 1.0;
    spec.patterns.push_back(std::move(pat));
  }
  return spec;
}

Result<PlantedDataSpec> WbcdPartialPatternSpec(size_t num_attrs,
                                               size_t clusters_per_attr,
                                               size_t num_patterns,
                                               size_t attrs_per_pattern,
                                               double outlier_fraction,
                                               uint64_t seed) {
  if (attrs_per_pattern == 0 || attrs_per_pattern > num_attrs) {
    return Status::InvalidArgument(
        "attrs_per_pattern must be in [1, num_attrs]");
  }
  size_t total_claims = num_patterns * attrs_per_pattern;
  size_t claims_per_attr = (total_claims + num_attrs - 1) / num_attrs;
  if (claims_per_attr + 1 > clusters_per_attr) {
    return Status::InvalidArgument(
        "clusters_per_attr too small: need > " +
        std::to_string(claims_per_attr) +
        " to leave room for background clusters");
  }
  // Start from the fully-aligned spec (same parts/centers), then rewrite
  // the pattern structure.
  PlantedDataSpec spec =
      WbcdLikeSpec(num_attrs, clusters_per_attr, outlier_fraction, seed);
  spec.patterns.clear();

  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  // Dedicated (pattern-claimed) cluster indices are a random sample of each
  // attribute's clusters, interleaved with the background clusters across
  // the whole domain. Confining claims to a prefix would concentrate
  // background clusters in one half of the domain and shrink the
  // inter-cluster distances between unrelated background images.
  std::vector<std::vector<size_t>> perm(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    perm[a].resize(clusters_per_attr);
    for (size_t k = 0; k < clusters_per_attr; ++k) perm[a][k] = k;
    rng.Shuffle(perm[a]);
  }
  // Assign each pattern `attrs_per_pattern` attributes, spreading claims
  // evenly.
  std::vector<size_t> next_free(num_attrs, 0);  // index into perm[a]
  for (size_t p = 0; p < num_patterns; ++p) {
    PlantedPattern pat;
    pat.cluster_of_part.assign(num_attrs, -1);
    pat.weight = 1.0;
    // Prefer attributes with the fewest claims so far (keeps claims even),
    // breaking ties randomly.
    std::vector<size_t> eligible;
    for (size_t a = 0; a < num_attrs; ++a) {
      if (next_free[a] < claims_per_attr) eligible.push_back(a);
    }
    if (eligible.size() < attrs_per_pattern) {
      return Status::InvalidArgument(
          "cannot place pattern " + std::to_string(p) +
          ": not enough attributes with free dedicated clusters");
    }
    rng.Shuffle(eligible);
    std::stable_sort(eligible.begin(), eligible.end(),
                     [&](size_t a, size_t b) {
                       return next_free[a] < next_free[b];
                     });
    for (size_t i = 0; i < attrs_per_pattern; ++i) {
      size_t attr = eligible[i];
      pat.cluster_of_part[attr] =
          static_cast<int64_t>(perm[attr][next_free[attr]++]);
    }
    spec.patterns.push_back(std::move(pat));
  }
  // Background clusters: the unclaimed remainder of each permutation.
  spec.background_choices.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    for (size_t k = claims_per_attr; k < clusters_per_attr; ++k) {
      spec.background_choices[a].push_back(perm[a][k]);
    }
  }
  return spec;
}

PlantedDataSpec ShiftClusterMeans(const PlantedDataSpec& spec, double shift) {
  PlantedDataSpec shifted = spec;
  for (auto& part : shifted.parts) {
    for (auto& cluster : part.clusters) {
      for (double& c : cluster.center) c += shift;
    }
  }
  return shifted;
}

Result<PlantedDataset> GenerateDrifting(const PlantedDataSpec& spec, size_t n,
                                        size_t drift_row, double shift,
                                        uint64_t seed) {
  if (drift_row == 0 || drift_row > n) {
    return Status::InvalidArgument("drift_row must be in [1, n]");
  }
  DAR_ASSIGN_OR_RETURN(PlantedDataset pre,
                       GeneratePlanted(spec, drift_row, seed));
  if (drift_row == n) return pre;

  const PlantedDataSpec shifted = ShiftClusterMeans(spec, shift);
  DAR_ASSIGN_OR_RETURN(
      PlantedDataset post,
      GeneratePlanted(shifted, n - drift_row, seed ^ 0xd6e8feb86659fd93ull));
  pre.relation.Reserve(n);
  for (size_t r = 0; r < post.relation.num_rows(); ++r) {
    DAR_RETURN_IF_ERROR(pre.relation.AppendRow(post.relation.Row(r)));
  }
  pre.pattern_of_row.insert(pre.pattern_of_row.end(),
                            post.pattern_of_row.begin(),
                            post.pattern_of_row.end());
  return pre;
}

}  // namespace dar
