#ifndef DAR_DATAGEN_GRAPHS_H_
#define DAR_DATAGEN_GRAPHS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"

namespace dar {

/// A generated undirected graph as a plain edge list — the adversarial
/// inputs for the dar::graph clique engine. Kept free of any graph-type
/// dependency so benches and tests feed it to whatever representation
/// they are exercising.
struct GeneratedGraph {
  size_t num_nodes = 0;
  /// Unique edges, first < second, sorted lexicographically.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
};

/// Worst-case Phase-II graph: overlapping planted cliques over a sparse
/// G(n, p) background. Clique c occupies the `clique_size` consecutive
/// vertices starting at c * (clique_size - overlap), so consecutive
/// cliques share `overlap` vertices — the shared boundaries are what
/// makes naive enumeration revisit work, and what exercises the pivot
/// choice. Background edges knit the planted chain into (typically) one
/// giant component plus isolated-vertex components.
struct PlantedCliqueGraphSpec {
  size_t num_nodes = 5000;
  size_t num_cliques = 40;
  size_t clique_size = 20;
  /// Vertices shared between consecutive planted cliques (< clique_size).
  size_t overlap = 5;
  /// Erdos-Renyi background edge probability over all vertex pairs.
  double background_p = 0.0;
  uint64_t seed = 1;
};

/// Fails (InvalidArgument) when the planted chain does not fit in
/// num_nodes, overlap >= clique_size, or background_p is out of [0, 1).
Result<GeneratedGraph> GeneratePlantedCliqueGraph(
    const PlantedCliqueGraphSpec& spec);

/// The Moon-Moser graph K_{3,3,...,3} (k parts of 3): the 3k-vertex graph
/// with the maximum possible number of maximal cliques, 3^k — every
/// choice of one vertex per part. The canonical worst case for
/// maximal-clique enumeration; a handful of parts is enough to fire any
/// clique or step budget.
GeneratedGraph MoonMoserGraph(size_t k);

/// Plain Erdos-Renyi G(n, p), deterministic in `seed`. Edge presence is
/// sampled by geometric skips over the ordered pair sequence, so large
/// sparse graphs cost O(edges), not O(n^2).
Result<GeneratedGraph> GenerateGnp(size_t num_nodes, double p, uint64_t seed);

}  // namespace dar

#endif  // DAR_DATAGEN_GRAPHS_H_
