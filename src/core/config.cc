#include "core/config.h"

#include <cmath>
#include <string>

namespace dar {

namespace {

bool BadFraction(double v) { return std::isnan(v) || v < 0; }

Status CheckNonNegativeEntries(const std::vector<double>& v,
                               const char* name) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (std::isnan(v[i]) || v[i] < 0) {
      return Status::InvalidArgument(
          std::string(name) + "[" + std::to_string(i) +
          "] must be a non-negative number, got " + std::to_string(v[i]));
    }
  }
  return Status::OK();
}

}  // namespace

Status DarConfig::Validate() const {
  if (memory_budget_bytes == 0) {
    return Status::InvalidArgument("memory_budget_bytes must be positive");
  }
  if (!(frequency_fraction > 0 && frequency_fraction <= 1)) {
    return Status::InvalidArgument(
        "frequency_fraction must be in (0, 1], got " +
        std::to_string(frequency_fraction));
  }
  if (BadFraction(outlier_fraction)) {
    return Status::InvalidArgument(
        "outlier_fraction must be a non-negative number, got " +
        std::to_string(outlier_fraction));
  }
  DAR_RETURN_IF_ERROR(
      CheckNonNegativeEntries(initial_diameters, "initial_diameters"));

  if (tree.branching_factor < 2) {
    return Status::InvalidArgument(
        "tree.branching_factor must be >= 2, got " +
        std::to_string(tree.branching_factor));
  }
  if (tree.leaf_capacity < 1) {
    return Status::InvalidArgument("tree.leaf_capacity must be >= 1, got " +
                                   std::to_string(tree.leaf_capacity));
  }
  if (std::isnan(tree.initial_threshold) || tree.initial_threshold < 0) {
    return Status::InvalidArgument(
        "tree.initial_threshold must be a non-negative number, got " +
        std::to_string(tree.initial_threshold));
  }
  if (!(tree.threshold_growth > 1)) {
    return Status::InvalidArgument(
        "tree.threshold_growth must be > 1, got " +
        std::to_string(tree.threshold_growth));
  }
  if (tree.max_rebuilds_per_insert < 1) {
    return Status::InvalidArgument(
        "tree.max_rebuilds_per_insert must be >= 1, got " +
        std::to_string(tree.max_rebuilds_per_insert));
  }

  if (std::isnan(degree_threshold) || degree_threshold < 0) {
    return Status::InvalidArgument(
        "degree_threshold must be a non-negative number, got " +
        std::to_string(degree_threshold));
  }
  DAR_RETURN_IF_ERROR(
      CheckNonNegativeEntries(degree_thresholds, "degree_thresholds"));
  DAR_RETURN_IF_ERROR(
      CheckNonNegativeEntries(density_thresholds, "density_thresholds"));
  if (!(phase2_leniency >= 1)) {
    return Status::InvalidArgument(
        "phase2_leniency must be >= 1 (see §6.2), got " +
        std::to_string(phase2_leniency));
  }
  if (max_antecedent == 0) {
    return Status::InvalidArgument("max_antecedent must be >= 1");
  }
  if (max_consequent == 0) {
    return Status::InvalidArgument("max_consequent must be >= 1");
  }

  // The per-part vectors are positional (index = part id); any two that
  // are both non-empty must agree on the number of parts.
  struct Named {
    const std::vector<double>* v;
    const char* name;
  };
  const Named per_part[] = {{&initial_diameters, "initial_diameters"},
                            {&degree_thresholds, "degree_thresholds"},
                            {&density_thresholds, "density_thresholds"}};
  for (const Named& a : per_part) {
    for (const Named& b : per_part) {
      if (a.v == b.v || a.v->empty() || b.v->empty()) continue;
      if (a.v->size() != b.v->size()) {
        return Status::InvalidArgument(
            std::string("per-part vector sizes disagree: ") + a.name +
            " has " + std::to_string(a.v->size()) + " entries but " +
            b.name + " has " + std::to_string(b.v->size()));
      }
    }
  }
  return Status::OK();
}

}  // namespace dar
