#ifndef DAR_CORE_MINING_REPORT_H_
#define DAR_CORE_MINING_REPORT_H_

#include <cstdint>
#include <vector>

#include "core/miner_result.h"
#include "core/rules.h"
#include "telemetry/metrics.h"

namespace dar {

/// What Session::Mine returns: the mining output plus the run's telemetry
/// snapshot. The loose instrumentation counters that used to live on
/// Phase2Result (comparison counts, degree evaluations, ...) are now views
/// over the snapshot — one source of truth, and every future metric is
/// reachable without another API change.
///
/// The snapshot's non-timing metrics are deterministic: for a fixed seed
/// and config they are identical across thread counts and repeated runs
/// (serialize with JsonExporter{include_timings=false} to compare).
struct MiningReport {
  DarMiningResult result;
  telemetry::Snapshot telemetry;

  [[nodiscard]] const Phase1Result& phase1() const { return result.phase1; }
  [[nodiscard]] const Phase2Result& phase2() const { return result.phase2; }
  [[nodiscard]] const std::vector<DistanceRule>& rules() const {
    return result.phase2.rules;
  }

  // Legacy loose-counter views (previously fields on Phase2Result /
  // derived from Phase1Result).

  /// Cluster pairs whose inter-cluster distances were evaluated while
  /// building the clustering graph.
  [[nodiscard]] int64_t graph_comparisons_made() const {
    return telemetry.CounterOr("phase2.edge_evaluations");
  }
  /// Cluster pairs skipped by the low-density-image pruning heuristic.
  [[nodiscard]] int64_t graph_comparisons_skipped() const {
    return telemetry.CounterOr("phase2.pruned_pairs");
  }
  /// Degree computations performed during rule generation.
  [[nodiscard]] int64_t degree_evaluations() const {
    return telemetry.CounterOr("phase2.degree_evaluations");
  }
  /// Threshold-raise rebuilds across all Phase-I trees.
  [[nodiscard]] int64_t tree_rebuilds() const {
    return telemetry.CounterOr("phase1.rebuilds");
  }
  /// Node splits across all Phase-I trees.
  [[nodiscard]] int64_t tree_splits() const {
    return telemetry.CounterOr("phase1.splits");
  }
};

}  // namespace dar

#endif  // DAR_CORE_MINING_REPORT_H_
