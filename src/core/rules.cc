#include "core/rules.h"

#include <sstream>

namespace dar {

std::string DistanceRule::ToString(const ClusterSet& clusters,
                                   const Schema& schema,
                                   const AttributePartition& partition) const {
  auto render = [&](const std::vector<size_t>& ids) {
    std::string out;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) out += " AND ";
      out += "[" + clusters.Describe(ids[i], schema, partition) + "]";
    }
    return out;
  };
  std::ostringstream os;
  os << render(antecedent) << " => " << render(consequent)
     << " (degree=" << degree;
  if (support_count >= 0) os << ", support_count=" << support_count;
  os << ")";
  return os.str();
}

}  // namespace dar
