#include "core/rule_gen.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/logging.h"

namespace dar {

namespace {

// Enumerates all subsets of `universe` with size in [1, max_size], invoking
// `fn(subset)`; returns false early if fn returns false (budget exhausted).
bool ForEachSubset(const std::vector<size_t>& universe, size_t max_size,
                   const std::function<bool(const std::vector<size_t>&)>& fn) {
  std::vector<size_t> current;
  // Recursive combination enumeration.
  std::function<bool(size_t)> rec = [&](size_t start) -> bool {
    if (!current.empty()) {
      if (!fn(current)) return false;
    }
    if (current.size() == max_size) return true;
    for (size_t i = start; i < universe.size(); ++i) {
      current.push_back(universe[i]);
      if (!rec(i + 1)) return false;
      current.pop_back();
    }
    return true;
  };
  return rec(0);
}

}  // namespace

double DegreeOfAssociation(const ClusterSet& clusters,
                           const std::vector<size_t>& antecedent,
                           const std::vector<size_t>& consequent,
                           ClusterMetric m) {
  DAR_CHECK(!antecedent.empty());
  DAR_CHECK(!consequent.empty());
  double degree = 0;
  for (size_t cy : consequent) {
    const FoundCluster& y = clusters.cluster(cy);
    for (size_t cx : antecedent) {
      const FoundCluster& x = clusters.cluster(cx);
      double d = ClusterDistance(y.acf.image(y.part), x.acf.image(y.part), m);
      degree = std::max(degree, d);
    }
  }
  return degree;
}

RuleGenResult GenerateDistanceRules(
    const ClusterSet& clusters,
    const std::vector<std::vector<size_t>>& cliques,
    const RuleGenOptions& options) {
  RuleGenResult result;
  std::set<std::pair<std::vector<size_t>, std::vector<size_t>>> seen;

  // Cache of degree evaluations D(C_Y[Yp], C_X[Yp]) keyed by (y, x).
  std::map<std::pair<size_t, size_t>, double> degree_cache;
  auto degree_of = [&](size_t cy, size_t cx) {
    auto key = std::make_pair(cy, cx);
    auto it = degree_cache.find(key);
    if (it != degree_cache.end()) return it->second;
    const FoundCluster& y = clusters.cluster(cy);
    const FoundCluster& x = clusters.cluster(cx);
    double d = ClusterDistance(y.acf.image(y.part), x.acf.image(y.part),
                               options.metric);
    ++result.degree_evaluations;
    degree_cache.emplace(key, d);
    return d;
  };

  // D0 for a consequent cluster: per-part override when provided, else the
  // scalar threshold (degrees live on the consequent part's scale).
  auto degree_limit = [&](size_t cy) {
    size_t part = clusters.cluster(cy).part;
    if (part < options.degree_thresholds.size()) {
      return options.degree_thresholds[part];
    }
    return options.degree_threshold;
  };

  for (const auto& q2 : cliques) {
    for (const auto& q1 : cliques) {
      // assoc(C_Yj) restricted to this Q1 (§6.2).
      std::map<size_t, std::vector<size_t>> assoc;
      for (size_t cy : q2) {
        std::vector<size_t>& a = assoc[cy];
        for (size_t cx : q1) {
          if (cx == cy) continue;
          if (clusters.cluster(cx).part == clusters.cluster(cy).part) {
            continue;
          }
          if (degree_of(cy, cx) <= degree_limit(cy)) {
            a.push_back(cx);
          }
        }
        std::sort(a.begin(), a.end());
      }

      bool keep_going = ForEachSubset(
          q2, options.max_consequent,
          [&](const std::vector<size_t>& consequent) -> bool {
            // Intersect assoc sets over the consequent.
            std::vector<size_t> candidates = assoc[consequent[0]];
            for (size_t i = 1; i < consequent.size() && !candidates.empty();
                 ++i) {
              std::vector<size_t> next;
              const auto& other = assoc[consequent[i]];
              std::set_intersection(candidates.begin(), candidates.end(),
                                    other.begin(), other.end(),
                                    std::back_inserter(next));
              candidates = std::move(next);
            }
            if (candidates.empty()) return true;
            // Antecedents must live on parts disjoint from the consequent's.
            std::set<size_t> consequent_parts;
            for (size_t cy : consequent) {
              consequent_parts.insert(clusters.cluster(cy).part);
            }
            std::erase_if(candidates, [&](size_t cx) {
              return consequent_parts.count(clusters.cluster(cx).part) > 0;
            });
            if (candidates.empty()) return true;

            return ForEachSubset(
                candidates, options.max_antecedent,
                [&](const std::vector<size_t>& antecedent) -> bool {
                  auto key = std::make_pair(antecedent, consequent);
                  if (!seen.insert(key).second) return true;
                  if (result.rules.size() >= options.max_rules) {
                    result.truncated = true;
                    return false;
                  }
                  DistanceRule rule;
                  rule.antecedent = antecedent;
                  rule.consequent = consequent;
                  double degree = 0;
                  for (size_t cy : consequent) {
                    for (size_t cx : antecedent) {
                      degree = std::max(degree, degree_of(cy, cx));
                    }
                  }
                  rule.degree = degree;
                  result.rules.push_back(std::move(rule));
                  return true;
                });
          });
      if (!keep_going) return result;
    }
  }
  return result;
}

}  // namespace dar
