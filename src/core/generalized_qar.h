#ifndef DAR_CORE_GENERALIZED_QAR_H_
#define DAR_CORE_GENERALIZED_QAR_H_

#include <string>
#include <vector>

#include "apriori/apriori.h"
#include "common/result.h"
#include "core/session.h"

namespace dar {

/// A generalized quantitative association rule (Dfn 4.4): a classical
/// support/confidence rule whose predicates are cluster memberships.
struct GeneralizedQarRule {
  std::vector<size_t> antecedent;  // cluster ids
  std::vector<size_t> consequent;
  int64_t support_count = 0;
  double support = 0;
  double confidence = 0;

  std::string ToString(const ClusterSet& clusters, const Schema& schema,
                       const AttributePartition& partition) const;
};

/// Output of the §4.3 algorithm.
struct GeneralizedQarResult {
  Phase1Result phase1;
  std::vector<GeneralizedQarRule> rules;
  /// Frequent cluster-itemsets found by the Apriori stage.
  std::vector<FrequentItemset> frequent_itemsets;
};

/// The §4.3 algorithm for *classical* association rules over interval data:
/// Phase I clusters each attribute set (Birch/ACF trees, same as Session);
/// Phase II assigns every tuple to its nearest frequent cluster per part,
/// treats the cluster ids as items, and runs the a-priori algorithm with
/// the same frequency threshold s0 and a confidence threshold. This is the
/// intermediate definition that meets Goal 1 but not Goals 2/3 (§5), kept
/// as a comparison point for distance-based rules.
class GeneralizedQarMiner {
 public:
  GeneralizedQarMiner(DarConfig config, double min_confidence)
      : config_(std::move(config)), min_confidence_(min_confidence) {}

  /// Validates the config (via Session::Builder) and runs the algorithm
  /// serially.
  Result<GeneralizedQarResult> Mine(const Relation& rel,
                                    const AttributePartition& partition) const;

 private:
  DarConfig config_;
  double min_confidence_;
};

}  // namespace dar

#endif  // DAR_CORE_GENERALIZED_QAR_H_
