#ifndef DAR_CORE_MODEL_H_
#define DAR_CORE_MODEL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "birch/acf.h"
#include "birch/acf_tree.h"
#include "common/result.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace dar {

/// A frequent cluster discovered by Phase I: an ACF plus bookkeeping.
struct FoundCluster {
  /// Dense id; index into ClusterSet::clusters().
  size_t id = 0;
  /// Attribute set (partition part) the cluster is defined on.
  size_t part = 0;
  Acf acf;
};

/// The set of frequent clusters produced by Phase I, with helpers used by
/// Phase II and by the generalized-QAR miner.
class ClusterSet {
 public:
  ClusterSet() = default;
  ClusterSet(std::shared_ptr<const AcfLayout> layout,
             std::vector<FoundCluster> clusters);

  [[nodiscard]] const std::vector<FoundCluster>& clusters() const { return clusters_; }
  [[nodiscard]] const FoundCluster& cluster(size_t id) const { return clusters_.at(id); }
  [[nodiscard]] size_t size() const { return clusters_.size(); }
  [[nodiscard]] const AcfLayout& layout() const { return *layout_; }

  /// Ids of the clusters defined on part `p`.
  [[nodiscard]] const std::vector<size_t>& ClustersOnPart(size_t p) const {
    return by_part_.at(p);
  }
  [[nodiscard]] size_t num_parts() const { return by_part_.size(); }

  /// Id of the cluster on part `p` whose centroid is nearest to `values`
  /// (the §4.3.2 point-to-cluster assignment), or NotFound when the part
  /// has no frequent clusters.
  Result<size_t> AssignToCluster(size_t p,
                                 std::span<const double> values) const;

  /// Human-readable description of cluster `id` by its smallest bounding
  /// box (the §7.2 presentation choice), e.g. "Salary in [80K, 82K]".
  std::string Describe(size_t id, const Schema& schema,
                       const AttributePartition& partition) const;

 private:
  std::shared_ptr<const AcfLayout> layout_;
  std::vector<FoundCluster> clusters_;
  std::vector<std::vector<size_t>> by_part_;
};

/// Everything Phase I reports.
struct Phase1Result {
  std::shared_ptr<const AcfLayout> layout;
  ClusterSet clusters;
  /// Per-part statistics of the final trees.
  std::vector<AcfTreeStats> tree_stats;
  /// Confirmed outliers across all parts.
  std::vector<Acf> outliers;
  /// Number of leaf clusters before frequency filtering, per part.
  std::vector<size_t> raw_cluster_counts;
  /// Effective density thresholds d0^X per part (see DarConfig).
  std::vector<double> effective_d0;
  /// The absolute frequency threshold s0 used.
  int64_t frequency_threshold = 0;
  /// Wall-clock seconds spent in Phase I.
  double seconds = 0;
};

}  // namespace dar

#endif  // DAR_CORE_MODEL_H_
