#ifndef DAR_CORE_PHASE2_RUNNER_H_
#define DAR_CORE_PHASE2_RUNNER_H_

#include "common/executor.h"
#include "common/result.h"
#include "core/config.h"
#include "core/miner_result.h"
#include "core/model.h"
#include "core/observer.h"
#include "telemetry/context.h"

namespace dar {

/// Everything Phase II needs besides the summaries themselves. All
/// pointers are optional and non-owning; null means serial / no callbacks /
/// no recording.
struct Phase2RunOptions {
  Executor* executor = nullptr;
  MiningObserver* observer = nullptr;
  telemetry::TelemetryContext telemetry;
};

/// Runs Phase II — clustering graph (Dfn 6.1), maximal cliques, rule
/// generation (§6.2) — from *borrowed* Phase-I summaries. By the ACF
/// Representativity Theorem (Thm 6.1) this never touches tuple data, which
/// is exactly why incremental re-mining is cheap: dar::stream re-runs this
/// on every snapshot while ingestion continues, and Session::RunPhase2 is a
/// thin delegate. The output is a pure function of `phase1` and `config`
/// for every executor (edge sweeps merge per-shard buffers in cluster-id
/// order).
Result<Phase2Result> RunPhase2OnSummaries(const Phase1Result& phase1,
                                          const DarConfig& config,
                                          const Phase2RunOptions& options);

}  // namespace dar

#endif  // DAR_CORE_PHASE2_RUNNER_H_
