#include "core/session.h"

#include <algorithm>
#include <cmath>

#include "birch/acf_tree.h"
#include "common/stopwatch.h"
#include "core/phase1_builder.h"
#include "core/phase2_runner.h"

namespace dar {

Session::Builder& Session::Builder::AddObserver(
    std::shared_ptr<MiningObserver> observer) {
  if (observer != nullptr) observers_.push_back(std::move(observer));
  return *this;
}

Result<Session> Session::Builder::Build() const {
  DAR_RETURN_IF_ERROR(config_.Validate());
  std::shared_ptr<Executor> executor =
      executor_ != nullptr ? executor_
                           : std::make_shared<SerialExecutor>();
  auto observers = std::make_shared<ObserverList>();
  for (const auto& o : observers_) observers->Add(o);
  return Session(config_, std::move(executor), std::move(observers),
                 std::make_shared<telemetry::MetricsRegistry>());
}

Result<Phase1Result> Session::RunPhase1(
    const Relation& rel, const AttributePartition& partition) const {
  if (rel.num_rows() == 0) {
    return Status::InvalidArgument("relation is empty");
  }
  DAR_ASSIGN_OR_RETURN(
      Phase1Builder builder,
      Phase1Builder::Make(config_, rel.schema(), partition, executor_.get(),
                          observer_or_null(),
                          telemetry::TelemetryContext(registry_.get())));
  DAR_RETURN_IF_ERROR(builder.AddRelation(rel));
  return std::move(builder).Finish();
}

Result<Phase2Result> Session::RunPhase2(const Phase1Result& phase1) const {
  // Phase II is summary-only (Thm 6.1): delegate to the shared runner that
  // dar::stream re-mines through as well.
  Phase2RunOptions options;
  options.executor = executor_.get();
  options.observer = observer_or_null();
  options.telemetry = telemetry::TelemetryContext(registry_.get());
  return RunPhase2OnSummaries(phase1, config_, options);
}

// Session::OpenStream is defined in src/stream/streaming_miner.cc: the
// stream subsystem layers on top of dar_core, so the facade's streaming
// entry point lives (and links) with the code it constructs.

Status Session::CountRuleSupport(const Relation& rel,
                                 const AttributePartition& partition,
                                 const Phase1Result& phase1,
                                 std::vector<DistanceRule>& rules) const {
  const ClusterSet& clusters = phase1.clusters;
  for (auto& rule : rules) rule.support_count = 0;
  if (rules.empty() || rel.num_rows() == 0) return Status::OK();

  // Shard the rescan over contiguous row ranges; each shard accumulates
  // per-rule counts locally and the integer sums are merged in shard order
  // — row assignment is a pure function of the row, so the totals are
  // executor-independent.
  size_t parallelism = static_cast<size_t>(executor_->parallelism());
  size_t num_shards =
      std::max<size_t>(1, std::min(parallelism, rel.num_rows()));
  size_t rows_per_shard = (rel.num_rows() + num_shards - 1) / num_shards;
  std::vector<std::vector<int64_t>> shard_counts(
      num_shards, std::vector<int64_t>(rules.size(), 0));

  DAR_RETURN_IF_ERROR(executor_->ParallelFor(
      num_shards, [&](size_t s) -> Status {
        size_t begin = s * rows_per_shard;
        size_t end = std::min(rel.num_rows(), begin + rows_per_shard);
        std::vector<int64_t>& counts = shard_counts[s];
        std::vector<double> buf;
        // Per row: assign the row to one cluster per part, then bump every
        // rule whose clusters all match.
        std::vector<int64_t> assignment(partition.num_parts(), -1);
        for (size_t r = begin; r < end; ++r) {
          for (size_t p = 0; p < partition.num_parts(); ++p) {
            rel.ProjectRow(r, partition.part(p).columns, buf);
            auto assigned = clusters.AssignToCluster(p, buf);
            assignment[p] =
                assigned.ok() ? static_cast<int64_t>(*assigned) : -1;
          }
          for (size_t k = 0; k < rules.size(); ++k) {
            const DistanceRule& rule = rules[k];
            bool all = true;
            for (const auto* side : {&rule.antecedent, &rule.consequent}) {
              for (size_t id : *side) {
                const FoundCluster& c = clusters.cluster(id);
                if (assignment[c.part] != static_cast<int64_t>(id)) {
                  all = false;
                  break;
                }
              }
              if (!all) break;
            }
            if (all) ++counts[k];
          }
        }
        return Status::OK();
      }));

  for (const auto& counts : shard_counts) {
    for (size_t k = 0; k < rules.size(); ++k) {
      rules[k].support_count += counts[k];
    }
  }
  return Status::OK();
}

Result<MiningReport> Session::Mine(
    const Relation& rel, const AttributePartition& partition) const {
  registry_->Reset();  // one Mine call == one reported run
  MiningReport report;
  DAR_ASSIGN_OR_RETURN(report.result.phase1, RunPhase1(rel, partition));
  DAR_ASSIGN_OR_RETURN(report.result.phase2,
                       RunPhase2(report.result.phase1));
  if (config_.count_rule_support) {
    DAR_RETURN_IF_ERROR(CountRuleSupport(rel, partition,
                                         report.result.phase1,
                                         report.result.phase2.rules));
  }
  report.telemetry = registry_->TakeSnapshot();
  if (MiningObserver* observer = observer_or_null(); observer != nullptr) {
    observer->OnRunComplete(report.telemetry);
  }
  return report;
}

}  // namespace dar
