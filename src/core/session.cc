#include "core/session.h"

#include <algorithm>
#include <cmath>

#include "birch/acf_tree.h"
#include "common/stopwatch.h"
#include "core/clustering_graph.h"
#include "core/phase1_builder.h"
#include "core/rule_gen.h"

namespace dar {

Session::Builder& Session::Builder::AddObserver(
    std::shared_ptr<MiningObserver> observer) {
  if (observer != nullptr) observers_.push_back(std::move(observer));
  return *this;
}

Result<Session> Session::Builder::Build() const {
  DAR_RETURN_IF_ERROR(config_.Validate());
  std::shared_ptr<Executor> executor =
      executor_ != nullptr ? executor_
                           : std::make_shared<SerialExecutor>();
  auto observers = std::make_shared<ObserverList>();
  for (const auto& o : observers_) observers->Add(o);
  return Session(config_, std::move(executor), std::move(observers),
                 std::make_shared<telemetry::MetricsRegistry>());
}

Result<Phase1Result> Session::RunPhase1(
    const Relation& rel, const AttributePartition& partition) const {
  if (rel.num_rows() == 0) {
    return Status::InvalidArgument("relation is empty");
  }
  DAR_ASSIGN_OR_RETURN(
      Phase1Builder builder,
      Phase1Builder::Make(config_, rel.schema(), partition, executor_.get(),
                          observer_or_null(),
                          telemetry::TelemetryContext(registry_.get())));
  DAR_RETURN_IF_ERROR(builder.AddRelation(rel));
  return std::move(builder).Finish();
}

Result<Phase2Result> Session::RunPhase2(const Phase1Result& phase1) const {
  Stopwatch watch;
  Phase2Result out;
  const telemetry::TelemetryContext telem(registry_.get());

  ClusteringGraphOptions graph_opts;
  graph_opts.metric = config_.metric;
  graph_opts.prune_low_density_images = config_.prune_low_density_images;
  graph_opts.executor = executor_.get();
  graph_opts.observer = observer_or_null();
  graph_opts.telemetry = telem;
  graph_opts.d0.reserve(phase1.effective_d0.size());
  for (double d0 : phase1.effective_d0) {
    graph_opts.d0.push_back(d0 * config_.phase2_leniency);
  }

  ClusteringGraph graph(phase1.clusters, graph_opts);
  out.graph_edges = graph.num_edges();

  out.cliques = graph.MaximalCliques(config_.max_cliques,
                                     &out.cliques_truncated);
  for (const auto& q : out.cliques) {
    if (q.size() >= 2) ++out.num_nontrivial_cliques;
  }

  RuleGenOptions rule_opts;
  rule_opts.metric = config_.metric;
  rule_opts.degree_threshold = config_.degree_threshold;
  rule_opts.degree_thresholds = config_.degree_thresholds;
  rule_opts.max_antecedent = config_.max_antecedent;
  rule_opts.max_consequent = config_.max_consequent;
  rule_opts.max_rules = config_.max_rules;
  RuleGenResult rules =
      GenerateDistanceRules(phase1.clusters, out.cliques, rule_opts);
  out.rules = std::move(rules.rules);
  out.rules_truncated = rules.truncated;

  // Strongest rules first.
  std::sort(out.rules.begin(), out.rules.end(),
            [](const DistanceRule& a, const DistanceRule& b) {
              return a.degree < b.degree;
            });
  out.seconds = watch.ElapsedSeconds();

  // The loose Phase-II counters live in the snapshot now; recorded once
  // per run on the coordinating thread, so their values are deterministic.
  telem.GetCounter("phase2.edge_evaluations")
      ->Increment(graph.comparisons_made());
  telem.GetCounter("phase2.pruned_pairs")
      ->Increment(graph.comparisons_skipped());
  telem.GetCounter("phase2.graph_edges")
      ->Increment(static_cast<int64_t>(out.graph_edges));
  telem.GetCounter("phase2.cliques")
      ->Increment(static_cast<int64_t>(out.cliques.size()));
  telem.GetCounter("phase2.nontrivial_cliques")
      ->Increment(static_cast<int64_t>(out.num_nontrivial_cliques));
  telem.GetCounter("phase2.degree_evaluations")
      ->Increment(rules.degree_evaluations);
  telem.GetCounter("phase2.rules")
      ->Increment(static_cast<int64_t>(out.rules.size()));
  telem.GetGauge("phase2.seconds", telemetry::Unit::kSeconds)
      ->Set(out.seconds);
  return out;
}

Status Session::CountRuleSupport(const Relation& rel,
                                 const AttributePartition& partition,
                                 const Phase1Result& phase1,
                                 std::vector<DistanceRule>& rules) const {
  const ClusterSet& clusters = phase1.clusters;
  for (auto& rule : rules) rule.support_count = 0;
  if (rules.empty() || rel.num_rows() == 0) return Status::OK();

  // Shard the rescan over contiguous row ranges; each shard accumulates
  // per-rule counts locally and the integer sums are merged in shard order
  // — row assignment is a pure function of the row, so the totals are
  // executor-independent.
  size_t parallelism = static_cast<size_t>(executor_->parallelism());
  size_t num_shards =
      std::max<size_t>(1, std::min(parallelism, rel.num_rows()));
  size_t rows_per_shard = (rel.num_rows() + num_shards - 1) / num_shards;
  std::vector<std::vector<int64_t>> shard_counts(
      num_shards, std::vector<int64_t>(rules.size(), 0));

  DAR_RETURN_IF_ERROR(executor_->ParallelFor(
      num_shards, [&](size_t s) -> Status {
        size_t begin = s * rows_per_shard;
        size_t end = std::min(rel.num_rows(), begin + rows_per_shard);
        std::vector<int64_t>& counts = shard_counts[s];
        std::vector<double> buf;
        // Per row: assign the row to one cluster per part, then bump every
        // rule whose clusters all match.
        std::vector<int64_t> assignment(partition.num_parts(), -1);
        for (size_t r = begin; r < end; ++r) {
          for (size_t p = 0; p < partition.num_parts(); ++p) {
            rel.ProjectRow(r, partition.part(p).columns, buf);
            auto assigned = clusters.AssignToCluster(p, buf);
            assignment[p] =
                assigned.ok() ? static_cast<int64_t>(*assigned) : -1;
          }
          for (size_t k = 0; k < rules.size(); ++k) {
            const DistanceRule& rule = rules[k];
            bool all = true;
            for (const auto* side : {&rule.antecedent, &rule.consequent}) {
              for (size_t id : *side) {
                const FoundCluster& c = clusters.cluster(id);
                if (assignment[c.part] != static_cast<int64_t>(id)) {
                  all = false;
                  break;
                }
              }
              if (!all) break;
            }
            if (all) ++counts[k];
          }
        }
        return Status::OK();
      }));

  for (const auto& counts : shard_counts) {
    for (size_t k = 0; k < rules.size(); ++k) {
      rules[k].support_count += counts[k];
    }
  }
  return Status::OK();
}

Result<MiningReport> Session::Mine(
    const Relation& rel, const AttributePartition& partition) const {
  registry_->Reset();  // one Mine call == one reported run
  MiningReport report;
  DAR_ASSIGN_OR_RETURN(report.result.phase1, RunPhase1(rel, partition));
  DAR_ASSIGN_OR_RETURN(report.result.phase2,
                       RunPhase2(report.result.phase1));
  if (config_.count_rule_support) {
    DAR_RETURN_IF_ERROR(CountRuleSupport(rel, partition,
                                         report.result.phase1,
                                         report.result.phase2.rules));
  }
  report.telemetry = registry_->TakeSnapshot();
  if (MiningObserver* observer = observer_or_null(); observer != nullptr) {
    observer->OnRunComplete(report.telemetry);
  }
  return report;
}

}  // namespace dar
