#include "core/session.h"

#include <algorithm>
#include <cmath>

#include "birch/acf_tree.h"
#include "common/stopwatch.h"
#include "core/phase1_builder.h"
#include "core/phase2_runner.h"
#include "core/rule_stats.h"

namespace dar {

Session::Builder& Session::Builder::AddObserver(
    std::shared_ptr<MiningObserver> observer) {
  if (observer != nullptr) observers_.push_back(std::move(observer));
  return *this;
}

Result<Session> Session::Builder::Build() const {
  DAR_RETURN_IF_ERROR(config_.Validate());
  std::shared_ptr<Executor> executor =
      executor_ != nullptr ? executor_
                           : std::make_shared<SerialExecutor>();
  auto observers = std::make_shared<ObserverList>();
  for (const auto& o : observers_) observers->Add(o);
  return Session(config_, std::move(executor), std::move(observers),
                 std::make_shared<telemetry::MetricsRegistry>());
}

Result<Phase1Result> Session::RunPhase1(
    const Relation& rel, const AttributePartition& partition) const {
  if (rel.num_rows() == 0) {
    return Status::InvalidArgument("relation is empty");
  }
  DAR_ASSIGN_OR_RETURN(
      Phase1Builder builder,
      Phase1Builder::Make(config_, rel.schema(), partition, executor_.get(),
                          observer_or_null(),
                          telemetry::TelemetryContext(registry_.get())));
  DAR_RETURN_IF_ERROR(builder.AddRelation(rel));
  return std::move(builder).Finish();
}

Result<Phase2Result> Session::RunPhase2(const Phase1Result& phase1) const {
  // Phase II is summary-only (Thm 6.1): delegate to the shared runner that
  // dar::stream re-mines through as well.
  Phase2RunOptions options;
  options.executor = executor_.get();
  options.observer = observer_or_null();
  options.telemetry = telemetry::TelemetryContext(registry_.get());
  return RunPhase2OnSummaries(phase1, config_, options);
}

// Session::OpenStream is defined in src/stream/streaming_miner.cc: the
// stream subsystem layers on top of dar_core, so the facade's streaming
// entry point lives (and links) with the code it constructs.

Status Session::CountRuleSupport(const Relation& rel,
                                 const AttributePartition& partition,
                                 const Phase1Result& phase1,
                                 std::vector<DistanceRule>& rules) const {
  // The §6.2 support count is the `both` cell of the full contingency
  // table; the generalized scan (core/rule_stats.h) shards the rescan and
  // merges integer counts in shard order, so the result stays
  // executor-independent.
  DAR_ASSIGN_OR_RETURN(
      const std::vector<RuleStats> stats,
      ComputeRuleStats(rel, partition, phase1.clusters, rules,
                       executor_.get()));
  for (size_t k = 0; k < rules.size(); ++k) {
    rules[k].support_count = stats[k].both;
  }
  return Status::OK();
}

Result<MiningReport> Session::Mine(
    const Relation& rel, const AttributePartition& partition) const {
  registry_->Reset();  // one Mine call == one reported run
  MiningReport report;
  DAR_ASSIGN_OR_RETURN(report.result.phase1, RunPhase1(rel, partition));
  DAR_ASSIGN_OR_RETURN(report.result.phase2,
                       RunPhase2(report.result.phase1));
  if (config_.count_rule_support) {
    DAR_RETURN_IF_ERROR(CountRuleSupport(rel, partition,
                                         report.result.phase1,
                                         report.result.phase2.rules));
  }
  report.telemetry = registry_->TakeSnapshot();
  if (MiningObserver* observer = observer_or_null(); observer != nullptr) {
    observer->OnRunComplete(report.telemetry);
  }
  return report;
}

}  // namespace dar
