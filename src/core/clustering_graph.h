#ifndef DAR_CORE_CLUSTERING_GRAPH_H_
#define DAR_CORE_CLUSTERING_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "birch/metrics.h"
#include "common/executor.h"
#include "core/model.h"
#include "core/observer.h"
#include "graph/clique.h"
#include "graph/graph.h"
#include "telemetry/context.h"

namespace dar {

/// Construction parameters for the clustering graph (Dfn 6.1).
struct ClusteringGraphOptions {
  /// Inter-cluster metric D.
  ClusterMetric metric = ClusterMetric::kD2AvgInter;
  /// Per-part density thresholds d0^X (already multiplied by the Phase-II
  /// leniency factor by the caller).
  std::vector<double> d0;
  /// §6.2 pruning heuristic (see DarConfig::prune_low_density_images).
  bool prune_low_density_images = true;
  /// Optional executor for the edge-evaluation sweep and the clique
  /// search (not owned, may be null = serial). Cluster-pair ranges are
  /// sharded statically and the per-shard edge buffers merged in
  /// cluster-id order; the clique engine fans connected components the
  /// same way — so both the graph and its cliques are bit-identical for
  /// every executor.
  Executor* executor = nullptr;
  /// Optional observer (not owned, may be null). OnGraphEdge and
  /// OnCliqueFound fire from the coordinating thread, serially and in
  /// deterministic order.
  MiningObserver* observer = nullptr;
  /// Optional recording context (default: disabled). The pair sweep
  /// records per-shard wall times into the "phase2.shard_seconds"
  /// histogram and the clique engine its graph.* metrics; the
  /// deterministic phase2.* counters (evaluations, pruned pairs, edges)
  /// are recorded by the Phase-II runner from the accessors.
  telemetry::TelemetryContext telemetry;
};

/// The clustering graph of Dfn 6.1: one node per frequent cluster, and an
/// undirected edge between clusters C_X (on part X) and C_Y (on part Y != X)
/// iff both `D(C_X[X], C_Y[X]) <= d0^X` and `D(C_X[Y], C_Y[Y]) <= d0^Y` —
/// i.e. the two clusters' tuple sets co-occur in both projections. Cliques
/// of this graph are the "large itemsets" of distance-based rules.
///
/// Storage is a flat CSR dar::graph::Graph built once from the sharded
/// edge sweep; maximal-clique enumeration delegates to
/// graph::EnumerateMaximalCliques (degeneracy-ordered iterative
/// Bron-Kerbosch, per-component executor parallelism).
class ClusteringGraph {
 public:
  /// Builds the graph from the Phase-I cluster set. By the ACF
  /// Representativity Theorem (Thm 6.1) this touches only ACFs. The
  /// O(n^2/2) pair evaluation runs on options.executor when given; each
  /// pair's edge test is a pure function of the two ACFs, so the edge set
  /// does not depend on the schedule.
  ClusteringGraph(const ClusterSet& clusters,
                  const ClusteringGraphOptions& options);

  [[nodiscard]] size_t num_nodes() const { return graph_.num_nodes(); }
  [[nodiscard]] size_t num_edges() const { return graph_.num_edges(); }

  [[nodiscard]] bool HasEdge(size_t a, size_t b) const {
    return graph_.HasEdge(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
  }
  [[nodiscard]] std::span<const uint32_t> Neighbors(size_t node) const {
    return graph_.Neighbors(static_cast<uint32_t>(node));
  }

  /// The underlying CSR graph (valid as long as this object lives).
  [[nodiscard]] const graph::Graph& graph() const { return graph_; }

  /// Number of candidate pairs whose distances were actually evaluated,
  /// and number skipped by the density-image pruning heuristic. For the
  /// ablation bench.
  [[nodiscard]] int64_t comparisons_made() const { return comparisons_made_; }
  [[nodiscard]] int64_t comparisons_skipped() const { return comparisons_skipped_; }

  /// Full-control enumeration: budgets, backend tuning, and executor come
  /// from `options` (the constructor's executor/telemetry are *not*
  /// implied — pass them again if wanted). Fires OnCliqueFound per kept
  /// clique, in canonical order, from the calling thread.
  [[nodiscard]] graph::CliqueResult EnumerateCliques(
      graph::CliqueOptions options) const;

  /// Legacy-shaped enumeration: all maximal cliques (each a sorted list
  /// of node ids, list sorted lexicographically), serial, with the
  /// historical budget mapping (`max_cliques` cap plus a 64x step
  /// budget; 0 = unbounded). When either budget fires, `*truncated` (if
  /// non-null) is set — callers that need to distinguish the two signals
  /// use EnumerateCliques.
  std::vector<std::vector<size_t>> MaximalCliques(
      size_t max_cliques = 0, bool* truncated = nullptr) const;

 private:
  graph::Graph graph_;
  int64_t comparisons_made_ = 0;
  int64_t comparisons_skipped_ = 0;
  MiningObserver* observer_ = nullptr;  // not owned; may be null
};

}  // namespace dar

#endif  // DAR_CORE_CLUSTERING_GRAPH_H_
