#ifndef DAR_CORE_CLUSTERING_GRAPH_H_
#define DAR_CORE_CLUSTERING_GRAPH_H_

#include <cstdint>
#include <vector>

#include "birch/metrics.h"
#include "common/executor.h"
#include "core/model.h"
#include "core/observer.h"
#include "telemetry/context.h"

namespace dar {

/// Construction parameters for the clustering graph (Dfn 6.1).
struct ClusteringGraphOptions {
  /// Inter-cluster metric D.
  ClusterMetric metric = ClusterMetric::kD2AvgInter;
  /// Per-part density thresholds d0^X (already multiplied by the Phase-II
  /// leniency factor by the caller).
  std::vector<double> d0;
  /// §6.2 pruning heuristic (see DarConfig::prune_low_density_images).
  bool prune_low_density_images = true;
  /// Optional executor for the edge-evaluation sweep (not owned, may be
  /// null = serial). Cluster-pair ranges are sharded statically and the
  /// per-shard edge buffers merged in cluster-id order, so the graph is
  /// bit-identical for every executor.
  Executor* executor = nullptr;
  /// Optional observer (not owned, may be null). OnGraphEdge and
  /// OnCliqueFound fire from the coordinating thread, serially and in
  /// deterministic order.
  MiningObserver* observer = nullptr;
  /// Optional recording context (default: disabled). The pair sweep
  /// records per-shard wall times into the "phase2.shard_seconds"
  /// histogram; the deterministic counters (evaluations, pruned pairs,
  /// edges) are recorded by Session::RunPhase2 from the accessors.
  telemetry::TelemetryContext telemetry;
};

/// The clustering graph of Dfn 6.1: one node per frequent cluster, and an
/// undirected edge between clusters C_X (on part X) and C_Y (on part Y != X)
/// iff both `D(C_X[X], C_Y[X]) <= d0^X` and `D(C_X[Y], C_Y[Y]) <= d0^Y` —
/// i.e. the two clusters' tuple sets co-occur in both projections. Cliques
/// of this graph are the "large itemsets" of distance-based rules.
class ClusteringGraph {
 public:
  /// Builds the graph from the Phase-I cluster set. By the ACF
  /// Representativity Theorem (Thm 6.1) this touches only ACFs. The
  /// O(n^2/2) pair evaluation runs on options.executor when given; each
  /// pair's edge test is a pure function of the two ACFs, so the edge set
  /// does not depend on the schedule.
  ClusteringGraph(const ClusterSet& clusters,
                  const ClusteringGraphOptions& options);

  [[nodiscard]] size_t num_nodes() const { return adjacency_.size(); }
  [[nodiscard]] size_t num_edges() const { return num_edges_; }

  [[nodiscard]] bool HasEdge(size_t a, size_t b) const;
  [[nodiscard]] const std::vector<size_t>& Neighbors(size_t node) const {
    return adjacency_.at(node);
  }

  /// Number of candidate pairs whose distances were actually evaluated,
  /// and number skipped by the density-image pruning heuristic. For the
  /// ablation bench.
  [[nodiscard]] int64_t comparisons_made() const { return comparisons_made_; }
  [[nodiscard]] int64_t comparisons_skipped() const { return comparisons_skipped_; }

  /// All maximal cliques (each a sorted list of node ids), enumerated with
  /// Bron-Kerbosch with pivoting. Isolated nodes yield trivial 1-cliques,
  /// matching the paper's convention.
  ///
  /// `max_cliques` bounds the enumeration (0 = unbounded): graphs whose
  /// thresholds were set too leniently can have exponentially many maximal
  /// cliques, and a capped, loudly-truncated result beats an OOM. When the
  /// cap fires, `*truncated` (if non-null) is set.
  std::vector<std::vector<size_t>> MaximalCliques(
      size_t max_cliques = 0, bool* truncated = nullptr) const;

 private:
  std::vector<std::vector<size_t>> adjacency_;  // sorted neighbor lists
  size_t num_edges_ = 0;
  int64_t comparisons_made_ = 0;
  int64_t comparisons_skipped_ = 0;
  MiningObserver* observer_ = nullptr;  // not owned; may be null
};

}  // namespace dar

#endif  // DAR_CORE_CLUSTERING_GRAPH_H_
