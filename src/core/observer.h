#ifndef DAR_CORE_OBSERVER_H_
#define DAR_CORE_OBSERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "birch/acf_tree.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dar {

/// Progress/metrics hooks for a mining run. Attach implementations to a
/// dar::Session via Session::Builder::AddObserver; every callback has an
/// empty default so observers override only what they need.
///
/// Threading: when the session runs on a ThreadPoolExecutor, the Phase-I
/// callbacks (OnPhase1PartStart/Done, OnTreeRebuild) fire from whichever
/// worker owns that attribute part and may arrive *concurrently* —
/// implementations must be thread-safe for those. The Phase-II callbacks
/// (OnGraphEdge, OnCliqueFound) and OnRunComplete are always invoked from
/// the coordinating thread, serially and in deterministic order (edges by
/// ascending cluster pair, cliques in canonical order — lexicographic
/// over sorted member ids, thread-count invariant —
/// OnRunComplete once at the very end of Session::Mine).
class MiningObserver {
 public:
  virtual ~MiningObserver() = default;

  /// Phase I is about to start feeding tuples into part `part`'s ACF-tree.
  virtual void OnPhase1PartStart(size_t /*part*/) {}

  /// Part `part`'s tree has absorbed every tuple of the batch. `timings`
  /// carries the part's wall-clock feed time (finish_seconds is filled by
  /// the Finish-stage callbacks of a later release and is currently 0
  /// here).
  virtual void OnPhase1PartDone(size_t /*part*/,
                                const AcfTreeStats& /*stats*/,
                                const telemetry::PartTimings& /*timings*/) {}

  /// The run's metrics snapshot, fired by Session::Mine exactly once per
  /// run, after both phases (and optional support counting) finish. Always
  /// invoked from the coordinating thread.
  virtual void OnRunComplete(const telemetry::Snapshot& /*snapshot*/) {}

  /// Part `part`'s tree hit its memory budget and rebuilt itself at a
  /// raised diameter threshold (§4.3.1).
  virtual void OnTreeRebuild(size_t /*part*/, int /*rebuild_count*/,
                             double /*new_threshold*/) {}

  /// The clustering graph (Dfn 6.1) gained the edge {a, b}.
  virtual void OnGraphEdge(size_t /*cluster_a*/, size_t /*cluster_b*/) {}

  /// A maximal clique of the clustering graph was enumerated.
  virtual void OnCliqueFound(const std::vector<size_t>& /*clique*/) {}
};

/// Bundled observer that aggregates per-phase event counters with relaxed
/// atomics, mirroring the counters reported in Phase1Result/Phase2Result
/// (tree rebuilds ~ tree_stats[*].rebuild_count, graph_edges,
/// cliques.size()); session_test pins that correspondence. Safe to attach
/// to any executor.
class CountersObserver : public MiningObserver {
 public:
  struct Counters {
    int64_t parts_started = 0;
    int64_t parts_done = 0;
    int64_t tree_rebuilds = 0;
    int64_t graph_edges = 0;
    int64_t cliques_found = 0;
    int64_t runs_completed = 0;
  };

  void OnPhase1PartStart(size_t) override { ++parts_started_; }
  void OnPhase1PartDone(size_t, const AcfTreeStats&,
                        const telemetry::PartTimings&) override {
    ++parts_done_;
  }
  void OnRunComplete(const telemetry::Snapshot&) override {
    ++runs_completed_;
  }
  void OnTreeRebuild(size_t, int, double) override { ++tree_rebuilds_; }
  void OnGraphEdge(size_t, size_t) override { ++graph_edges_; }
  void OnCliqueFound(const std::vector<size_t>&) override {
    ++cliques_found_;
  }

  [[nodiscard]] Counters counters() const {
    Counters c;
    c.parts_started = parts_started_.load();
    c.parts_done = parts_done_.load();
    c.tree_rebuilds = tree_rebuilds_.load();
    c.graph_edges = graph_edges_.load();
    c.cliques_found = cliques_found_.load();
    c.runs_completed = runs_completed_.load();
    return c;
  }

  void Reset() {
    parts_started_ = 0;
    parts_done_ = 0;
    tree_rebuilds_ = 0;
    graph_edges_ = 0;
    cliques_found_ = 0;
    runs_completed_ = 0;
  }

 private:
  std::atomic<int64_t> parts_started_{0};
  std::atomic<int64_t> parts_done_{0};
  std::atomic<int64_t> tree_rebuilds_{0};
  std::atomic<int64_t> graph_edges_{0};
  std::atomic<int64_t> cliques_found_{0};
  std::atomic<int64_t> runs_completed_{0};
};

/// Fan-out: forwards every callback to each registered observer, in
/// registration order. Used internally by Session; registration is not
/// thread-safe and must finish before mining starts.
class ObserverList : public MiningObserver {
 public:
  void Add(std::shared_ptr<MiningObserver> observer) {
    if (observer != nullptr) observers_.push_back(std::move(observer));
  }
  [[nodiscard]] bool empty() const { return observers_.empty(); }

  void OnPhase1PartStart(size_t part) override {
    for (auto& o : observers_) o->OnPhase1PartStart(part);
  }
  void OnPhase1PartDone(size_t part, const AcfTreeStats& stats,
                        const telemetry::PartTimings& timings) override {
    for (auto& o : observers_) o->OnPhase1PartDone(part, stats, timings);
  }
  void OnRunComplete(const telemetry::Snapshot& snapshot) override {
    for (auto& o : observers_) o->OnRunComplete(snapshot);
  }
  void OnTreeRebuild(size_t part, int rebuild_count,
                     double new_threshold) override {
    for (auto& o : observers_) {
      o->OnTreeRebuild(part, rebuild_count, new_threshold);
    }
  }
  void OnGraphEdge(size_t a, size_t b) override {
    for (auto& o : observers_) o->OnGraphEdge(a, b);
  }
  void OnCliqueFound(const std::vector<size_t>& clique) override {
    for (auto& o : observers_) o->OnCliqueFound(clique);
  }

 private:
  std::vector<std::shared_ptr<MiningObserver>> observers_;
};

}  // namespace dar

#endif  // DAR_CORE_OBSERVER_H_
