#include "core/phase2_runner.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/clustering_graph.h"
#include "core/rule_gen.h"
#include "graph/clique.h"

namespace dar {

Result<Phase2Result> RunPhase2OnSummaries(const Phase1Result& phase1,
                                          const DarConfig& config,
                                          const Phase2RunOptions& options) {
  Stopwatch watch;
  Phase2Result out;
  const telemetry::TelemetryContext telem = options.telemetry;

  ClusteringGraphOptions graph_opts;
  graph_opts.metric = config.metric;
  graph_opts.prune_low_density_images = config.prune_low_density_images;
  graph_opts.executor = options.executor;
  graph_opts.observer = options.observer;
  graph_opts.telemetry = telem;
  graph_opts.d0.reserve(phase1.effective_d0.size());
  for (double d0 : phase1.effective_d0) {
    graph_opts.d0.push_back(d0 * config.phase2_leniency);
  }

  ClusteringGraph graph(phase1.clusters, graph_opts);
  out.graph_edges = graph.num_edges();

  graph::CliqueOptions clique_opts;
  clique_opts.max_cliques = config.max_cliques;
  // Dense graphs can grind for a long time between emitted cliques; the
  // step budget makes truncation responsive, not just the clique cap.
  clique_opts.max_steps = config.max_cliques != 0 ? 64 * config.max_cliques : 0;
  clique_opts.executor = options.executor;
  clique_opts.telemetry = telem;
  graph::CliqueResult cliques = graph.EnumerateCliques(clique_opts);
  out.clique_cap_truncated = cliques.clique_cap_truncated;
  out.clique_steps_truncated = cliques.step_budget_truncated;
  out.cliques_truncated =
      out.clique_cap_truncated || out.clique_steps_truncated;
  out.cliques.reserve(cliques.cliques.size());
  for (const auto& q : cliques.cliques) {
    out.cliques.emplace_back(q.begin(), q.end());
    if (q.size() >= 2) ++out.num_nontrivial_cliques;
  }

  RuleGenOptions rule_opts;
  rule_opts.metric = config.metric;
  rule_opts.degree_threshold = config.degree_threshold;
  rule_opts.degree_thresholds = config.degree_thresholds;
  rule_opts.max_antecedent = config.max_antecedent;
  rule_opts.max_consequent = config.max_consequent;
  rule_opts.max_rules = config.max_rules;
  RuleGenResult rules =
      GenerateDistanceRules(phase1.clusters, out.cliques, rule_opts);
  out.rules = std::move(rules.rules);
  out.rules_truncated = rules.truncated;

  // Strongest rules first.
  std::sort(out.rules.begin(), out.rules.end(),
            [](const DistanceRule& a, const DistanceRule& b) {
              return a.degree < b.degree;
            });
  out.seconds = watch.ElapsedSeconds();

  // The loose Phase-II counters live in the snapshot now; recorded once
  // per run on the coordinating thread, so their values are deterministic.
  if (!telem.enabled()) return out;
  telem.GetCounter("phase2.edge_evaluations")
      ->Increment(graph.comparisons_made());
  telem.GetCounter("phase2.pruned_pairs")
      ->Increment(graph.comparisons_skipped());
  telem.GetCounter("phase2.graph_edges")
      ->Increment(static_cast<int64_t>(out.graph_edges));
  telem.GetCounter("phase2.cliques")
      ->Increment(static_cast<int64_t>(out.cliques.size()));
  telem.GetCounter("phase2.nontrivial_cliques")
      ->Increment(static_cast<int64_t>(out.num_nontrivial_cliques));
  telem.GetCounter("phase2.clique_cap_truncations")
      ->Increment(out.clique_cap_truncated ? 1 : 0);
  telem.GetCounter("phase2.clique_step_truncations")
      ->Increment(out.clique_steps_truncated ? 1 : 0);
  telem.GetCounter("phase2.degree_evaluations")
      ->Increment(rules.degree_evaluations);
  telem.GetCounter("phase2.rules")
      ->Increment(static_cast<int64_t>(out.rules.size()));
  telem.GetGauge("phase2.seconds", telemetry::Unit::kSeconds)
      ->Set(out.seconds);
  return out;
}

}  // namespace dar
