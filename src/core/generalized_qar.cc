#include "core/generalized_qar.h"

#include <sstream>

namespace dar {

std::string GeneralizedQarRule::ToString(
    const ClusterSet& clusters, const Schema& schema,
    const AttributePartition& partition) const {
  auto render = [&](const std::vector<size_t>& ids) {
    std::string out;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) out += " AND ";
      out += "[" + clusters.Describe(ids[i], schema, partition) + "]";
    }
    return out;
  };
  std::ostringstream os;
  os << render(antecedent) << " => " << render(consequent)
     << " (support=" << support << ", confidence=" << confidence << ")";
  return os.str();
}

Result<GeneralizedQarResult> GeneralizedQarMiner::Mine(
    const Relation& rel, const AttributePartition& partition) const {
  GeneralizedQarResult out;
  DAR_ASSIGN_OR_RETURN(Session session,
                       Session::Builder().WithConfig(config_).Build());
  DAR_ASSIGN_OR_RETURN(out.phase1, session.RunPhase1(rel, partition));
  const ClusterSet& clusters = out.phase1.clusters;

  // Encode each tuple as the set of nearest frequent clusters, one item per
  // part that has any frequent cluster (§4.3.2: parts without frequent
  // clusters are omitted).
  std::vector<Itemset> transactions(rel.num_rows());
  std::vector<double> buf;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    Itemset& t = transactions[r];
    for (size_t p = 0; p < partition.num_parts(); ++p) {
      rel.ProjectRow(r, partition.part(p).columns, buf);
      auto assigned = clusters.AssignToCluster(p, buf);
      if (assigned.ok()) t.push_back(static_cast<Item>(*assigned));
    }
    Canonicalize(t);
  }

  AprioriOptions ap;
  ap.min_support_count = out.phase1.frequency_threshold;
  ap.min_confidence = min_confidence_;
  DAR_ASSIGN_OR_RETURN(out.frequent_itemsets,
                       MineFrequentItemsets(transactions, ap));
  DAR_ASSIGN_OR_RETURN(
      std::vector<AssociationRule> rules,
      GenerateRules(out.frequent_itemsets, transactions.size(), ap));

  out.rules.reserve(rules.size());
  for (const auto& r : rules) {
    GeneralizedQarRule g;
    for (Item it : r.antecedent) g.antecedent.push_back(it);
    for (Item it : r.consequent) g.consequent.push_back(it);
    g.support_count = r.support_count;
    g.support = r.support;
    g.confidence = r.confidence;
    out.rules.push_back(std::move(g));
  }
  return out;
}

}  // namespace dar
