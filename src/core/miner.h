#ifndef DAR_CORE_MINER_H_
#define DAR_CORE_MINER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "core/model.h"
#include "core/rule_gen.h"
#include "core/rules.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace dar {

/// Everything Phase II reports.
struct Phase2Result {
  /// Maximal cliques of the clustering graph (cluster-id lists).
  std::vector<std::vector<size_t>> cliques;
  size_t num_nontrivial_cliques = 0;  // cliques of size >= 2
  bool cliques_truncated = false;
  size_t graph_edges = 0;
  int64_t graph_comparisons_made = 0;
  int64_t graph_comparisons_skipped = 0;
  std::vector<DistanceRule> rules;
  bool rules_truncated = false;
  int64_t degree_evaluations = 0;
  /// Wall-clock seconds spent in Phase II (graph + cliques + rules).
  double seconds = 0;
};

/// Combined mining output.
struct DarMiningResult {
  Phase1Result phase1;
  Phase2Result phase2;
};

/// The paper's two-phase distance-based association rule miner (§6):
///
///   Phase I  — one memory-bounded ACF-tree per attribute set clusters the
///              data in a single scan; frequent clusters (>= s0 tuples)
///              survive.
///   Phase II — the clustering graph over surviving clusters is built from
///              ACFs alone, its maximal cliques enumerated, and DARs
///              emitted per §6.2; the data is not rescanned (unless
///              count_rule_support requests the optional post-scan).
///
/// Typical use:
///
///     DarMiner miner(config);
///     DAR_ASSIGN_OR_RETURN(DarMiningResult res, miner.Mine(rel, partition));
///     for (const auto& rule : res.phase2.rules)
///       std::cout << rule.ToString(res.phase1.clusters, rel.schema(),
///                                  partition) << "\n";
class DarMiner {
 public:
  explicit DarMiner(DarConfig config) : config_(std::move(config)) {}

  /// Runs both phases on `rel` under the user's attribute partitioning.
  Result<DarMiningResult> Mine(const Relation& rel,
                               const AttributePartition& partition) const;

  /// Runs Phase I only (used by scaling benches and by callers that want
  /// to inspect clusters before rule formation).
  Result<Phase1Result> RunPhase1(const Relation& rel,
                                 const AttributePartition& partition) const;

  /// Runs Phase II on an existing Phase-I result.
  Result<Phase2Result> RunPhase2(const Phase1Result& phase1) const;

  /// Optional §6.2 post-processing: rescans `rel` once and fills
  /// `support_count` of every rule with the number of tuples assigned to
  /// all of the rule's clusters.
  Status CountRuleSupport(const Relation& rel,
                          const AttributePartition& partition,
                          const Phase1Result& phase1,
                          std::vector<DistanceRule>& rules) const;

  const DarConfig& config() const { return config_; }

 private:
  DarConfig config_;
};

}  // namespace dar

#endif  // DAR_CORE_MINER_H_
