#ifndef DAR_CORE_MINER_H_
#define DAR_CORE_MINER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/config.h"
#include "core/miner_result.h"
#include "core/model.h"
#include "core/rule_gen.h"
#include "core/rules.h"
#include "core/session.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace dar {

/// DEPRECATED legacy entry point — prefer dar::Session.
///
/// DarMiner predates the Session facade and is kept as a thin,
/// source-compatible shim: every method constructs a serial Session and
/// delegates. It performs only the historical spot checks rather than the
/// full DarConfig::Validate() (benches sweep knobs like
/// `phase2_leniency < 1` that Validate rejects), runs strictly serially,
/// and offers no observer hooks. New code should write:
///
///     DAR_ASSIGN_OR_RETURN(Session session, Session::Builder()
///                              .WithConfig(config)
///                              .WithThreads(8)
///                              .Build());
///     DAR_ASSIGN_OR_RETURN(DarMiningResult res,
///                          session.Mine(rel, partition));
class DarMiner {
 public:
  explicit DarMiner(DarConfig config) : config_(std::move(config)) {}

  /// Runs both phases on `rel` under the user's attribute partitioning.
  Result<DarMiningResult> Mine(const Relation& rel,
                               const AttributePartition& partition) const;

  /// Runs Phase I only (used by scaling benches and by callers that want
  /// to inspect clusters before rule formation).
  Result<Phase1Result> RunPhase1(const Relation& rel,
                                 const AttributePartition& partition) const;

  /// Runs Phase II on an existing Phase-I result.
  [[nodiscard]] Result<Phase2Result> RunPhase2(const Phase1Result& phase1) const;

  /// Optional §6.2 post-processing: rescans `rel` once and fills
  /// `support_count` of every rule with the number of tuples assigned to
  /// all of the rule's clusters.
  Status CountRuleSupport(const Relation& rel,
                          const AttributePartition& partition,
                          const Phase1Result& phase1,
                          std::vector<DistanceRule>& rules) const;

  [[nodiscard]] const DarConfig& config() const { return config_; }

 private:
  // Serial, non-validating Session with the shim's config (friend access).
  [[nodiscard]] Session LegacySession() const;

  DarConfig config_;
};

}  // namespace dar

#endif  // DAR_CORE_MINER_H_
