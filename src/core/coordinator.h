#ifndef DAR_CORE_COORDINATOR_H_
#define DAR_CORE_COORDINATOR_H_

#include <span>
#include <string>

#include "common/result.h"
#include "core/mining_report.h"
#include "core/session.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace dar {

/// Distributed mining front-end over a Session (experimental API tier).
///
/// ACF additivity (Eq. 3/7, Thm 6.1) means Phase I can run independently
/// over disjoint shards of the data — on the session's executor within one
/// process, or in separate processes that exchange persist-format
/// checkpoints — after which the shard summaries merge into one Phase-I
/// state and Phase II runs exactly once on the union. Obtain one via
/// Session::NewCoordinator(); the session must outlive it.
///
///     DAR_ASSIGN_OR_RETURN(auto report,
///                          session.NewCoordinator().MineSharded(
///                              rel, partition, /*num_shards=*/8));
///
/// Determinism: shard builders are serial and fed contiguous row ranges,
/// and shard merges are applied in shard order, so for a fixed shard count
/// the result is bit-identical for every executor / thread count. Changing
/// the *shard count* regroups the floating-point sums inside each summary,
/// so across shard counts results agree exactly only when the coordinate
/// sums are exact (e.g. integer-valued data) and otherwise to within the
/// usual re-absorption tolerance (see DESIGN.md "Distributed mining").
class Coordinator {
 public:
  /// Shards `rel` into `num_shards` contiguous row ranges, builds one
  /// serial Phase-I state per shard (fanned across the session's
  /// executor), merges them in shard order, and runs Phase II once. The
  /// per-shard builders run without observers; the merging builder uses
  /// the session's observers and telemetry (merge.* series). Mirrors
  /// Session::Mine: resets the session registry and reports one run.
  Result<MiningReport> MineSharded(const Relation& rel,
                                   const AttributePartition& partition,
                                   size_t num_shards) const;

  /// Merges N persist-format checkpoints (persist::MergeCheckpoints) and
  /// runs Phase II once on the merged summaries — the cross-process half
  /// of the fan-out: workers SaveCheckpoint their shards, the coordinator
  /// mines the union without ever seeing the data. Rule support counts are
  /// left at -1 (the data is not available for the §6.2 rescan). Defined
  /// in src/persist/ — callers link the umbrella `dar` target.
  Result<MiningReport> MineFromCheckpoints(
      std::span<const std::string> paths) const;

 private:
  friend class Session;
  explicit Coordinator(const Session* session) : session_(session) {}

  const Session* session_;  // not owned; must outlive the coordinator
};

}  // namespace dar

#endif  // DAR_CORE_COORDINATOR_H_
