#include "core/report.h"

#include <ostream>
#include <sstream>

namespace dar {

namespace {

// Minimal JSON emission helpers. Values in this module are numbers and
// ASCII identifiers from schemas; strings are escaped conservatively.
void AppendEscaped(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

std::string Num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void AppendIdList(const std::vector<size_t>& ids, std::string& out) {
  out += '[';
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  out += ']';
}

}  // namespace

std::string MiningResultToJson(const DarMiningResult& result,
                               const Schema& schema,
                               const AttributePartition& partition) {
  const Phase1Result& p1 = result.phase1;
  const Phase2Result& p2 = result.phase2;
  std::string out = "{\n";

  out += "  \"parts\": [";
  for (size_t p = 0; p < partition.num_parts(); ++p) {
    if (p > 0) out += ", ";
    AppendEscaped(partition.part(p).label, out);
  }
  out += "],\n";

  out += "  \"frequency_threshold\": " +
         std::to_string(p1.frequency_threshold) + ",\n";
  out += "  \"effective_d0\": [";
  for (size_t p = 0; p < p1.effective_d0.size(); ++p) {
    if (p > 0) out += ", ";
    out += Num(p1.effective_d0[p]);
  }
  out += "],\n";

  out += "  \"clusters\": [\n";
  for (size_t i = 0; i < p1.clusters.size(); ++i) {
    const FoundCluster& c = p1.clusters.cluster(i);
    out += "    {\"id\": " + std::to_string(c.id) +
           ", \"part\": " + std::to_string(c.part) +
           ", \"n\": " + std::to_string(c.acf.n()) + ", \"centroid\": [";
    auto centroid = c.acf.Centroid();
    for (size_t d = 0; d < centroid.size(); ++d) {
      if (d > 0) out += ", ";
      out += Num(centroid[d]);
    }
    out += "], \"box\": [";
    auto box = c.acf.BoundingBox(c.part);
    for (size_t d = 0; d < box.size(); ++d) {
      if (d > 0) out += ", ";
      out += "[" + Num(box[d].first) + ", " + Num(box[d].second) + "]";
    }
    out += "], \"diameter\": " + Num(c.acf.Diameter()) + ", \"label\": ";
    AppendEscaped(p1.clusters.Describe(c.id, schema, partition), out);
    out += "}";
    out += (i + 1 < p1.clusters.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"rules\": [\n";
  for (size_t i = 0; i < p2.rules.size(); ++i) {
    const DistanceRule& rule = p2.rules[i];
    out += "    {\"antecedent\": ";
    AppendIdList(rule.antecedent, out);
    out += ", \"consequent\": ";
    AppendIdList(rule.consequent, out);
    out += ", \"degree\": " + Num(rule.degree);
    if (rule.support_count >= 0) {
      out += ", \"support_count\": " + std::to_string(rule.support_count);
    }
    out += "}";
    out += (i + 1 < p2.rules.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"stats\": {\"cliques\": " + std::to_string(p2.cliques.size()) +
         ", \"nontrivial_cliques\": " +
         std::to_string(p2.num_nontrivial_cliques) +
         ", \"graph_edges\": " + std::to_string(p2.graph_edges) +
         ", \"rules_truncated\": " +
         (p2.rules_truncated ? std::string("true") : std::string("false")) +
         ", \"cliques_truncated\": " +
         (p2.cliques_truncated ? std::string("true") : std::string("false")) +
         ", \"clique_cap_truncated\": " +
         (p2.clique_cap_truncated ? std::string("true") : std::string("false")) +
         ", \"clique_steps_truncated\": " +
         (p2.clique_steps_truncated ? std::string("true")
                                    : std::string("false")) +
         ", \"phase1_seconds\": " + Num(p1.seconds) +
         ", \"phase2_seconds\": " + Num(p2.seconds) + "}\n";
  out += "}\n";
  return out;
}

Status WriteMiningReport(const DarMiningResult& result, const Schema& schema,
                         const AttributePartition& partition,
                         std::ostream& out) {
  out << MiningResultToJson(result, schema, partition);
  if (!out) return Status::IOError("report write failed");
  return Status::OK();
}

std::string MiningResultSummary(const DarMiningResult& result,
                                const Schema& schema,
                                const AttributePartition& partition,
                                size_t max_rules) {
  const Phase1Result& p1 = result.phase1;
  const Phase2Result& p2 = result.phase2;
  std::ostringstream os;
  os << "Phase I: " << p1.clusters.size() << " frequent clusters (s0 = "
     << p1.frequency_threshold << " tuples, " << p1.seconds << "s)\n";
  os << "Phase II: " << p2.graph_edges << " edges, "
     << p2.num_nontrivial_cliques << " non-trivial cliques, "
     << p2.rules.size() << " rules (" << p2.seconds << "s)";
  if (p2.rules_truncated) os << " [rules truncated]";
  if (p2.clique_cap_truncated) os << " [clique cap hit]";
  if (p2.clique_steps_truncated) os << " [clique step budget hit]";
  // Restored checkpoints only carry the combined legacy signal.
  if (p2.cliques_truncated && !p2.clique_cap_truncated &&
      !p2.clique_steps_truncated) {
    os << " [cliques truncated]";
  }
  os << "\n";
  size_t shown = 0;
  for (const auto& rule : p2.rules) {
    if (shown++ >= max_rules) {
      os << "  ... " << (p2.rules.size() - max_rules) << " more\n";
      break;
    }
    os << "  " << rule.ToString(p1.clusters, schema, partition) << "\n";
  }
  return os.str();
}

}  // namespace dar
