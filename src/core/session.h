#ifndef DAR_CORE_SESSION_H_
#define DAR_CORE_SESSION_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "core/config.h"
#include "core/miner_result.h"
#include "core/mining_report.h"
#include "core/model.h"
#include "core/observer.h"
#include "core/rules.h"
#include "relation/partition.h"
#include "relation/relation.h"
#include "stream/stream_config.h"
#include "telemetry/context.h"
#include "telemetry/metrics.h"

namespace dar {

class Coordinator;      // core/coordinator.h
class StreamingMiner;   // stream/streaming_miner.h
struct RestoredStream;  // stream/streaming_miner.h

/// The library's mining facade: a validated DarConfig, an Executor that
/// decides how the two phases use the hardware, observers receiving
/// progress/metrics callbacks, and a MetricsRegistry both phases record
/// into. Construct through the fluent Builder:
///
///     DAR_ASSIGN_OR_RETURN(
///         dar::Session session,
///         dar::Session::Builder()
///             .WithConfig(config)
///             .WithThreads(8)                 // or .WithExecutor(...)
///             .AddObserver(my_observer)       // optional
///             .Build());                      // validates the config
///     DAR_ASSIGN_OR_RETURN(MiningReport report,
///                          session.Mine(rel, partition));
///     // report.rules(), report.phase1(), report.telemetry, ...
///
/// Determinism guarantee: for a fixed config and input, every executor —
/// SerialExecutor, ThreadPoolExecutor(k) for any k — produces bit-identical
/// results (clusters, graph, cliques, rules, counters). Phase I builds one
/// independent ACF-tree per attribute part (Thm 6.1 keeps cross-attribute
/// sums inside each ACF) and Phase II shards pure edge predicates with
/// per-shard buffers merged in cluster-id order, so parallelism never
/// reorders a floating-point reduction. tests/session_test.cc pins this.
class Session {
 public:
  class Builder {
   public:
    Builder() = default;

    /// Sets the mining configuration (default: DarConfig{}).
    Builder& WithConfig(DarConfig config) {
      config_ = std::move(config);
      return *this;
    }

    /// Sets the executor both phases run on. Default: SerialExecutor.
    Builder& WithExecutor(std::shared_ptr<Executor> executor) {
      executor_ = std::move(executor);
      return *this;
    }

    /// Convenience: WithExecutor(MakeExecutor(num_threads)) — <= 1 means
    /// serial, 0 means hardware concurrency.
    Builder& WithThreads(int num_threads) {
      return WithExecutor(MakeExecutor(num_threads));
    }

    /// Registers an observer; may be called repeatedly. Observers are
    /// invoked in registration order. See observer.h for which callbacks
    /// can fire concurrently.
    Builder& AddObserver(std::shared_ptr<MiningObserver> observer);

    /// Validates the config (DarConfig::Validate) and assembles the
    /// session; refuses to construct on any invalid knob.
    [[nodiscard]] Result<Session> Build() const;

   private:
    DarConfig config_;
    std::shared_ptr<Executor> executor_;
    std::vector<std::shared_ptr<MiningObserver>> observers_;
  };

  /// Runs both phases on `rel` under the user's attribute partitioning
  /// and returns the results bundled with the run's telemetry snapshot.
  /// The registry is reset at the start of the run and observers receive
  /// OnRunComplete(snapshot) exactly once at the end, so each Mine call
  /// reports one run. Concurrent Mine calls on one Session would share
  /// (and race on resetting) the registry — run them on separate
  /// Sessions.
  Result<MiningReport> Mine(const Relation& rel,
                            const AttributePartition& partition) const;

  /// Runs Phase I only (used by scaling benches and by callers that want
  /// to inspect clusters before rule formation). Parallelized per
  /// attribute part on the session's executor.
  Result<Phase1Result> RunPhase1(const Relation& rel,
                                 const AttributePartition& partition) const;

  /// Runs Phase II on an existing Phase-I result. The clustering-graph
  /// edge sweep is parallelized on the session's executor.
  [[nodiscard]] Result<Phase2Result> RunPhase2(
      const Phase1Result& phase1) const;

  /// Opens an incremental mining stream over this session's config,
  /// executor and metrics registry: a StreamingMiner that accepts
  /// micro-batches of tuples, keeps the per-part ACF-trees live, and
  /// republishes an immutable RuleSnapshot (rules + tuple->rule query
  /// index) on a configurable cadence — ingest-while-serving, no rescans
  /// (see stream/streaming_miner.h for the threading contract).
  ///
  /// The stream records into the session's registry cumulatively; do not
  /// interleave Mine() calls (which Reset() the registry) with an open
  /// stream on the same Session. Defined in src/stream/ — callers link the
  /// umbrella `dar` target.
  [[nodiscard]] Result<std::unique_ptr<StreamingMiner>> OpenStream(
      const Schema& schema, const AttributePartition& partition,
      StreamConfig stream_config = {}) const;

  /// Persists `stream`'s complete resumable state — config, schema,
  /// partition, the live per-part ACF-trees, counters and the current
  /// snapshot — to `path` atomically (versioned, CRC-guarded container;
  /// see persist/checkpoint_io.h). `dictionaries` are embedded when given
  /// so a restoring process decodes nominal tuples identically. Convenience
  /// forwarder for StreamingMiner::SaveCheckpoint; defined in src/stream/
  /// — callers link the umbrella `dar` target.
  [[nodiscard]] Status SaveCheckpoint(
      const StreamingMiner& stream, const std::string& path,
      std::span<const Dictionary> dictionaries = {}) const;

  /// Reopens a checkpointed stream under THIS session's config, executor,
  /// registry and observers: restored summaries re-mine to rules
  /// bit-identical to the saved stream's when the config matches, and warm
  /// re-mine under this session's thresholds when it does not (no data
  /// access either way — Thm 6.1). Any corruption of the file surfaces as
  /// a descriptive error Status. Defined in src/stream/.
  [[nodiscard]] Result<RestoredStream> RestoreCheckpoint(
      const std::string& path) const;

  /// Distributed mining front-end (experimental tier): shard Phase I
  /// across the executor or across processes via checkpoint files, merge
  /// the summaries (ACF additivity), run Phase II once. The session must
  /// outlive the returned coordinator. See core/coordinator.h.
  [[nodiscard]] Coordinator NewCoordinator() const;

  /// Optional §6.2 post-processing: rescans `rel` once and fills
  /// `support_count` of every rule with the number of tuples assigned to
  /// all of the rule's clusters. Row ranges are sharded on the executor;
  /// per-shard counts are summed in shard order.
  Status CountRuleSupport(const Relation& rel,
                          const AttributePartition& partition,
                          const Phase1Result& phase1,
                          std::vector<DistanceRule>& rules) const;

  [[nodiscard]] const DarConfig& config() const { return config_; }
  [[nodiscard]] Executor& executor() const { return *executor_; }

  /// The session's metrics registry. RunPhase1/RunPhase2 record into it
  /// cumulatively; Mine resets it per run. Callers driving the phases
  /// directly can TakeSnapshot()/Reset() it between runs themselves.
  [[nodiscard]] telemetry::MetricsRegistry& metrics() const {
    return *registry_;
  }

 private:
  // The coordinator drives the session's private pipeline pieces
  // (observer_or_null, registry) when orchestrating sharded runs.
  friend class Coordinator;

  Session(DarConfig config, std::shared_ptr<Executor> executor,
          std::shared_ptr<ObserverList> observers,
          std::shared_ptr<telemetry::MetricsRegistry> registry)
      : config_(std::move(config)),
        executor_(std::move(executor)),
        observers_(std::move(observers)),
        registry_(std::move(registry)) {}

  // The observer to hand to pipeline stages: null when none registered.
  [[nodiscard]] MiningObserver* observer_or_null() const {
    return observers_ != nullptr && !observers_->empty() ? observers_.get()
                                                         : nullptr;
  }

  DarConfig config_;
  std::shared_ptr<Executor> executor_;
  std::shared_ptr<ObserverList> observers_;
  std::shared_ptr<telemetry::MetricsRegistry> registry_;
};

}  // namespace dar

#endif  // DAR_CORE_SESSION_H_
