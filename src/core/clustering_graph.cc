#include "core/clustering_graph.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "telemetry/trace.h"

namespace dar {

namespace {

// Radius of the image of cluster `c` on part `p`: a lower bound on any D2
// distance involving that image (D2(A,B)^2 = R_A^2 + R_B^2 + ||cA - cB||^2).
double ImageRadius(const FoundCluster& c, size_t p) {
  return c.acf.image(p).Radius();
}

// Splits the outer-loop rows [0, n) of the strictly-upper-triangular pair
// sweep into at most `max_shards` contiguous ranges with roughly equal
// *pair* counts (row i carries n-1-i pairs, so equal row ranges would be
// badly skewed). Returns the shard boundaries, bounds[s]..bounds[s+1].
std::vector<size_t> PairShardBounds(size_t n, size_t max_shards) {
  std::vector<size_t> bounds = {0};
  if (n == 0) {
    bounds.push_back(0);
    return bounds;
  }
  size_t shards = std::max<size_t>(1, std::min(max_shards, n));
  double total = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  double per_shard = total / static_cast<double>(shards);
  double acc = 0;
  for (size_t i = 0; i < n && bounds.size() < shards; ++i) {
    acc += static_cast<double>(n - 1 - i);
    if (acc >= per_shard * static_cast<double>(bounds.size())) {
      bounds.push_back(i + 1);
    }
  }
  while (bounds.size() < shards + 1) bounds.push_back(n);
  bounds.back() = n;
  return bounds;
}

}  // namespace

ClusteringGraph::ClusteringGraph(const ClusterSet& clusters,
                                 const ClusteringGraphOptions& options)
    : observer_(options.observer) {
  size_t n = clusters.size();
  DAR_CHECK_EQ(options.d0.size(), clusters.num_parts());

  bool can_prune = options.prune_low_density_images &&
                   options.metric == ClusterMetric::kD2AvgInter;

  // Precompute the pruning predicate per (cluster, part): true when the
  // cluster's image on that part is too diffuse to satisfy the threshold.
  std::vector<std::vector<bool>> image_too_diffuse;
  if (can_prune) {
    image_too_diffuse.assign(n, std::vector<bool>(clusters.num_parts()));
    for (size_t i = 0; i < n; ++i) {
      for (size_t p = 0; p < clusters.num_parts(); ++p) {
        image_too_diffuse[i][p] =
            ImageRadius(clusters.cluster(i), p) > options.d0[p];
      }
    }
  }

  // Shard the pair sweep over contiguous outer-row ranges. Every pair is
  // evaluated exactly once by a pure predicate, each shard appends its
  // edges (in (i, j) order) to its own buffer, and the buffers are merged
  // in shard order below — so edges, counters, and adjacency are
  // bit-identical to the serial sweep for any executor and thread count.
  size_t parallelism =
      options.executor != nullptr
          ? static_cast<size_t>(options.executor->parallelism())
          : 1;
  std::vector<size_t> bounds = PairShardBounds(n, parallelism);
  size_t num_shards = bounds.size() - 1;
  struct Shard {
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    int64_t made = 0;
    int64_t skipped = 0;
  };
  std::vector<Shard> shards(num_shards);

  // Resolved once on the coordinator; per-shard Record calls are
  // lock-free and may fire concurrently.
  telemetry::Histogram* shard_hist = options.telemetry.GetHistogram(
      "phase2.shard_seconds", telemetry::Histogram::LatencyBounds());
  auto sweep_shard = [&](size_t s) -> Status {
    const telemetry::TraceSpan span(shard_hist);
    Shard& shard = shards[s];
    for (size_t i = bounds[s]; i < bounds[s + 1]; ++i) {
      const FoundCluster& a = clusters.cluster(i);
      for (size_t j = i + 1; j < n; ++j) {
        const FoundCluster& b = clusters.cluster(j);
        if (a.part == b.part) continue;  // clusters on one part are exclusive
        if (can_prune) {
          // Edge needs D(a[a.part], b[a.part]) <= d0[a.part]; under D2 the
          // distance is at least the radius of either image.
          if (image_too_diffuse[j][a.part] || image_too_diffuse[i][b.part]) {
            ++shard.skipped;
            continue;
          }
        }
        ++shard.made;
        double d_on_a = ClusterDistance(a.acf.image(a.part),
                                        b.acf.image(a.part), options.metric);
        if (d_on_a > options.d0[a.part]) continue;
        double d_on_b = ClusterDistance(a.acf.image(b.part),
                                        b.acf.image(b.part), options.metric);
        if (d_on_b > options.d0[b.part]) continue;
        shard.edges.emplace_back(static_cast<uint32_t>(i),
                                 static_cast<uint32_t>(j));
      }
    }
    return Status::OK();
  };
  if (options.executor != nullptr && num_shards > 1) {
    // sweep_shard cannot fail; the Status plumbing exists for ParallelFor.
    (void)options.executor->ParallelFor(num_shards, sweep_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) (void)sweep_shard(s);
  }

  // Deterministic merge: shard s covers rows before shard s+1, so visiting
  // buffers in shard order replays the serial (i, j) edge order exactly.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (const Shard& shard : shards) {
    comparisons_made_ += shard.made;
    comparisons_skipped_ += shard.skipped;
    for (const auto& [i, j] : shard.edges) {
      edges.emplace_back(i, j);
      if (observer_ != nullptr) observer_->OnGraphEdge(i, j);
    }
  }
  graph_ = graph::Graph::FromEdges(n, edges);
}

graph::CliqueResult ClusteringGraph::EnumerateCliques(
    graph::CliqueOptions options) const {
  graph::CliqueResult result = graph::EnumerateMaximalCliques(graph_, options);
  if (observer_ != nullptr) {
    std::vector<size_t> clique;
    for (const auto& c : result.cliques) {
      clique.assign(c.begin(), c.end());
      observer_->OnCliqueFound(clique);
    }
  }
  return result;
}

std::vector<std::vector<size_t>> ClusteringGraph::MaximalCliques(
    size_t max_cliques, bool* truncated) const {
  graph::CliqueOptions options;
  options.max_cliques = max_cliques;
  // Historical budget mapping: a fired cap and a fired step budget both
  // collapse into the single legacy `truncated` signal here.
  options.max_steps = max_cliques != 0 ? 64 * max_cliques : 0;
  graph::CliqueResult result = EnumerateCliques(options);
  if (truncated != nullptr) {
    *truncated = result.clique_cap_truncated || result.step_budget_truncated;
  }
  std::vector<std::vector<size_t>> cliques;
  cliques.reserve(result.cliques.size());
  for (const auto& c : result.cliques) {
    cliques.emplace_back(c.begin(), c.end());
  }
  return cliques;
}

}  // namespace dar
