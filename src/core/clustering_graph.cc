#include "core/clustering_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/trace.h"

namespace dar {

namespace {

// Radius of the image of cluster `c` on part `p`: a lower bound on any D2
// distance involving that image (D2(A,B)^2 = R_A^2 + R_B^2 + ||cA - cB||^2).
double ImageRadius(const FoundCluster& c, size_t p) {
  return c.acf.image(p).Radius();
}

// Splits the outer-loop rows [0, n) of the strictly-upper-triangular pair
// sweep into at most `max_shards` contiguous ranges with roughly equal
// *pair* counts (row i carries n-1-i pairs, so equal row ranges would be
// badly skewed). Returns the shard boundaries, bounds[s]..bounds[s+1].
std::vector<size_t> PairShardBounds(size_t n, size_t max_shards) {
  std::vector<size_t> bounds = {0};
  if (n == 0) {
    bounds.push_back(0);
    return bounds;
  }
  size_t shards = std::max<size_t>(1, std::min(max_shards, n));
  double total = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  double per_shard = total / static_cast<double>(shards);
  double acc = 0;
  for (size_t i = 0; i < n && bounds.size() < shards; ++i) {
    acc += static_cast<double>(n - 1 - i);
    if (acc >= per_shard * static_cast<double>(bounds.size())) {
      bounds.push_back(i + 1);
    }
  }
  while (bounds.size() < shards + 1) bounds.push_back(n);
  bounds.back() = n;
  return bounds;
}

}  // namespace

ClusteringGraph::ClusteringGraph(const ClusterSet& clusters,
                                 const ClusteringGraphOptions& options)
    : observer_(options.observer) {
  size_t n = clusters.size();
  adjacency_.resize(n);
  DAR_CHECK_EQ(options.d0.size(), clusters.num_parts());

  bool can_prune = options.prune_low_density_images &&
                   options.metric == ClusterMetric::kD2AvgInter;

  // Precompute the pruning predicate per (cluster, part): true when the
  // cluster's image on that part is too diffuse to satisfy the threshold.
  std::vector<std::vector<bool>> image_too_diffuse;
  if (can_prune) {
    image_too_diffuse.assign(n, std::vector<bool>(clusters.num_parts()));
    for (size_t i = 0; i < n; ++i) {
      for (size_t p = 0; p < clusters.num_parts(); ++p) {
        image_too_diffuse[i][p] =
            ImageRadius(clusters.cluster(i), p) > options.d0[p];
      }
    }
  }

  // Shard the pair sweep over contiguous outer-row ranges. Every pair is
  // evaluated exactly once by a pure predicate, each shard appends its
  // edges (in (i, j) order) to its own buffer, and the buffers are merged
  // in shard order below — so edges, counters, and adjacency are
  // bit-identical to the serial sweep for any executor and thread count.
  size_t parallelism =
      options.executor != nullptr
          ? static_cast<size_t>(options.executor->parallelism())
          : 1;
  std::vector<size_t> bounds = PairShardBounds(n, parallelism);
  size_t num_shards = bounds.size() - 1;
  struct Shard {
    std::vector<std::pair<size_t, size_t>> edges;
    int64_t made = 0;
    int64_t skipped = 0;
  };
  std::vector<Shard> shards(num_shards);

  // Resolved once on the coordinator; per-shard Record calls are
  // lock-free and may fire concurrently.
  telemetry::Histogram* shard_hist = options.telemetry.GetHistogram(
      "phase2.shard_seconds", telemetry::Histogram::LatencyBounds());
  auto sweep_shard = [&](size_t s) -> Status {
    const telemetry::TraceSpan span(shard_hist);
    Shard& shard = shards[s];
    for (size_t i = bounds[s]; i < bounds[s + 1]; ++i) {
      const FoundCluster& a = clusters.cluster(i);
      for (size_t j = i + 1; j < n; ++j) {
        const FoundCluster& b = clusters.cluster(j);
        if (a.part == b.part) continue;  // clusters on one part are exclusive
        if (can_prune) {
          // Edge needs D(a[a.part], b[a.part]) <= d0[a.part]; under D2 the
          // distance is at least the radius of either image.
          if (image_too_diffuse[j][a.part] || image_too_diffuse[i][b.part]) {
            ++shard.skipped;
            continue;
          }
        }
        ++shard.made;
        double d_on_a = ClusterDistance(a.acf.image(a.part),
                                        b.acf.image(a.part), options.metric);
        if (d_on_a > options.d0[a.part]) continue;
        double d_on_b = ClusterDistance(a.acf.image(b.part),
                                        b.acf.image(b.part), options.metric);
        if (d_on_b > options.d0[b.part]) continue;
        shard.edges.emplace_back(i, j);
      }
    }
    return Status::OK();
  };
  if (options.executor != nullptr && num_shards > 1) {
    // sweep_shard cannot fail; the Status plumbing exists for ParallelFor.
    (void)options.executor->ParallelFor(num_shards, sweep_shard);
  } else {
    for (size_t s = 0; s < num_shards; ++s) (void)sweep_shard(s);
  }

  // Deterministic merge: shard s covers rows before shard s+1, so visiting
  // buffers in shard order replays the serial (i, j) edge order exactly.
  for (const Shard& shard : shards) {
    comparisons_made_ += shard.made;
    comparisons_skipped_ += shard.skipped;
    for (const auto& [i, j] : shard.edges) {
      adjacency_[i].push_back(j);
      adjacency_[j].push_back(i);
      ++num_edges_;
      if (observer_ != nullptr) observer_->OnGraphEdge(i, j);
    }
  }
  for (auto& nbrs : adjacency_) std::sort(nbrs.begin(), nbrs.end());
}

bool ClusteringGraph::HasEdge(size_t a, size_t b) const {
  const auto& nbrs = adjacency_.at(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

namespace {

// Bron-Kerbosch with pivoting over sorted neighbor lists.
class CliqueFinder {
 public:
  CliqueFinder(const std::vector<std::vector<size_t>>& adj,
               size_t max_cliques, MiningObserver* observer)
      : adj_(adj), max_cliques_(max_cliques), observer_(observer) {}

  std::vector<std::vector<size_t>> Run() {
    std::vector<size_t> r, p, x;
    p.reserve(adj_.size());
    for (size_t v = 0; v < adj_.size(); ++v) p.push_back(v);
    Expand(r, std::move(p), std::move(x));
    return std::move(cliques_);
  }

  bool truncated() const { return truncated_; }

 private:
  // All vectors sorted ascending; intersections via std::set_intersection.
  void Expand(std::vector<size_t>& r, std::vector<size_t> p,
              std::vector<size_t> x) {
    if (truncated_) return;
    // Dense graphs can grind for a long time between emitted cliques; the
    // step bound makes truncation responsive, not just the clique cap.
    if (max_cliques_ != 0 && ++steps_ > 64 * max_cliques_) {
      truncated_ = true;
      return;
    }
    if (p.empty() && x.empty()) {
      if (max_cliques_ != 0 && cliques_.size() >= max_cliques_) {
        truncated_ = true;
        return;
      }
      cliques_.push_back(r);
      if (observer_ != nullptr) {
        std::vector<size_t> sorted = r;
        std::sort(sorted.begin(), sorted.end());
        observer_->OnCliqueFound(sorted);
      }
      return;
    }
    // Pivot: vertex of P u X with the most neighbors inside P.
    size_t pivot = 0;
    size_t best = 0;
    bool have_pivot = false;
    for (const auto* set : {&p, &x}) {
      for (size_t v : *set) {
        size_t deg = IntersectionSize(adj_[v], p);
        if (!have_pivot || deg > best) {
          best = deg;
          pivot = v;
          have_pivot = true;
        }
      }
    }
    // Candidates: P minus N(pivot).
    std::vector<size_t> candidates;
    std::set_difference(p.begin(), p.end(), adj_[pivot].begin(),
                        adj_[pivot].end(), std::back_inserter(candidates));
    for (size_t v : candidates) {
      if (truncated_) return;
      std::vector<size_t> p2, x2;
      std::set_intersection(p.begin(), p.end(), adj_[v].begin(),
                            adj_[v].end(), std::back_inserter(p2));
      std::set_intersection(x.begin(), x.end(), adj_[v].begin(),
                            adj_[v].end(), std::back_inserter(x2));
      r.push_back(v);
      Expand(r, std::move(p2), std::move(x2));
      r.pop_back();
      // Move v from P to X.
      p.erase(std::lower_bound(p.begin(), p.end(), v));
      auto pos = std::lower_bound(x.begin(), x.end(), v);
      x.insert(pos, v);
    }
  }

  static size_t IntersectionSize(const std::vector<size_t>& a,
                                 const std::vector<size_t>& b) {
    size_t count = 0, i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
    return count;
  }

  const std::vector<std::vector<size_t>>& adj_;
  size_t max_cliques_;
  MiningObserver* observer_;
  size_t steps_ = 0;
  std::vector<std::vector<size_t>> cliques_;
  bool truncated_ = false;
};

}  // namespace

std::vector<std::vector<size_t>> ClusteringGraph::MaximalCliques(
    size_t max_cliques, bool* truncated) const {
  CliqueFinder finder(adjacency_, max_cliques, observer_);
  std::vector<std::vector<size_t>> cliques = finder.Run();
  if (truncated != nullptr) *truncated = finder.truncated();
  for (auto& c : cliques) std::sort(c.begin(), c.end());
  std::sort(cliques.begin(), cliques.end());
  return cliques;
}

}  // namespace dar
