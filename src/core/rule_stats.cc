#include "core/rule_stats.h"

#include <algorithm>

namespace dar {
namespace {

// Per-shard accumulation: three counters per rule, bumped from one shared
// per-row cluster assignment.
struct ShardCounts {
  std::vector<int64_t> antecedent;
  std::vector<int64_t> consequent;
  std::vector<int64_t> both;
};

bool SideMatches(const std::vector<size_t>& side, const ClusterSet& clusters,
                 std::span<const int64_t> assignment) {
  for (size_t id : side) {
    const FoundCluster& c = clusters.cluster(id);
    if (assignment[c.part] != static_cast<int64_t>(id)) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<RuleStats>> ComputeRuleStats(
    const Relation& rel, const AttributePartition& partition,
    const ClusterSet& clusters, std::span<const DistanceRule> rules,
    Executor* executor) {
  std::vector<RuleStats> stats(rules.size());
  for (RuleStats& s : stats) s.total = static_cast<int64_t>(rel.num_rows());
  if (rules.empty() || rel.num_rows() == 0) return stats;

  const size_t parallelism =
      executor != nullptr ? static_cast<size_t>(executor->parallelism()) : 1;
  const size_t num_shards =
      std::max<size_t>(1, std::min(parallelism, rel.num_rows()));
  const size_t rows_per_shard =
      (rel.num_rows() + num_shards - 1) / num_shards;
  std::vector<ShardCounts> shards(num_shards);
  for (ShardCounts& shard : shards) {
    shard.antecedent.assign(rules.size(), 0);
    shard.consequent.assign(rules.size(), 0);
    shard.both.assign(rules.size(), 0);
  }

  auto scan_shard = [&](size_t s) -> Status {
    const size_t begin = s * rows_per_shard;
    const size_t end = std::min(rel.num_rows(), begin + rows_per_shard);
    ShardCounts& counts = shards[s];
    std::vector<double> buf;
    std::vector<int64_t> assignment(partition.num_parts(), -1);
    for (size_t r = begin; r < end; ++r) {
      for (size_t p = 0; p < partition.num_parts(); ++p) {
        rel.ProjectRow(r, partition.part(p).columns, buf);
        auto assigned = clusters.AssignToCluster(p, buf);
        assignment[p] = assigned.ok() ? static_cast<int64_t>(*assigned) : -1;
      }
      for (size_t k = 0; k < rules.size(); ++k) {
        const bool a = SideMatches(rules[k].antecedent, clusters, assignment);
        const bool c = SideMatches(rules[k].consequent, clusters, assignment);
        if (a) ++counts.antecedent[k];
        if (c) ++counts.consequent[k];
        if (a && c) ++counts.both[k];
      }
    }
    return Status::OK();
  };

  if (executor != nullptr) {
    DAR_RETURN_IF_ERROR(executor->ParallelFor(num_shards, scan_shard));
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      DAR_RETURN_IF_ERROR(scan_shard(s));
    }
  }

  // Shard-order merge: integer sums, so the totals are executor-independent.
  for (const ShardCounts& shard : shards) {
    for (size_t k = 0; k < rules.size(); ++k) {
      stats[k].antecedent += shard.antecedent[k];
      stats[k].consequent += shard.consequent[k];
      stats[k].both += shard.both[k];
    }
  }
  return stats;
}

}  // namespace dar
