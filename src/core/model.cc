#include "core/model.h"

#include <limits>
#include <sstream>

#include "birch/metrics.h"
#include "common/logging.h"
#include "common/str_util.h"

namespace dar {

ClusterSet::ClusterSet(std::shared_ptr<const AcfLayout> layout,
                       std::vector<FoundCluster> clusters)
    : layout_(std::move(layout)), clusters_(std::move(clusters)) {
  DAR_CHECK(layout_ != nullptr);
  by_part_.resize(layout_->num_parts());
  for (size_t i = 0; i < clusters_.size(); ++i) {
    DAR_CHECK_EQ(clusters_[i].id, i);
    by_part_.at(clusters_[i].part).push_back(i);
  }
}

Result<size_t> ClusterSet::AssignToCluster(
    size_t p, std::span<const double> values) const {
  const std::vector<size_t>& ids = by_part_.at(p);
  if (ids.empty()) {
    return Status::NotFound("part " + std::to_string(p) +
                            " has no frequent clusters");
  }
  size_t best = ids[0];
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t id : ids) {
    double d = PointClusterDistance(values, clusters_[id].acf.cf());
    if (d < best_d) {
      best_d = d;
      best = id;
    }
  }
  return best;
}

std::string ClusterSet::Describe(size_t id, const Schema& schema,
                                 const AttributePartition& partition) const {
  const FoundCluster& c = cluster(id);
  const AttributeSet& part = partition.part(c.part);
  auto box = c.acf.BoundingBox(c.part);
  std::ostringstream os;
  for (size_t d = 0; d < box.size(); ++d) {
    if (d > 0) os << ", ";
    const std::string& name = schema.attribute(part.columns[d]).name;
    if (box[d].first == box[d].second) {
      os << name << " = " << FormatDouble(box[d].first);
    } else {
      os << name << " in [" << FormatDouble(box[d].first) << ", "
         << FormatDouble(box[d].second) << "]";
    }
  }
  os << " (n=" << c.acf.n() << ")";
  return os.str();
}

}  // namespace dar
