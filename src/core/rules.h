#ifndef DAR_CORE_RULES_H_
#define DAR_CORE_RULES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"
#include "relation/partition.h"

namespace dar {

/// A distance-based association rule (Dfn 5.3):
/// `C_X1 ... C_Xx => C_Y1 ... C_Yy` between clusters on pairwise disjoint
/// attribute sets. `degree` is the rule's degree of association — the
/// maximum over all antecedent/consequent pairs of `D(C_Yj[Yj], C_Xi[Yj])`
/// (smaller = stronger implication); the rule "holds with degree D0" for
/// any D0 >= degree.
struct DistanceRule {
  std::vector<size_t> antecedent;  // cluster ids, sorted
  std::vector<size_t> consequent;  // cluster ids, sorted
  double degree = 0;
  /// Maximum pairwise antecedent/antecedent and consequent/consequent
  /// co-occurrence distance relative to its part threshold, recorded for
  /// diagnostics (always <= 1 by construction since subsets come from
  /// cliques).
  double cooccurrence_slack = 0;
  /// Tuples assigned to every cluster of the rule; -1 until the optional
  /// post-scan fills it (DarConfig::count_rule_support).
  int64_t support_count = -1;

  /// Pretty form, e.g. "[Age in [41, 47]] => [Claims in [10000, 14000]]
  /// (degree=0.42)".
  std::string ToString(const ClusterSet& clusters, const Schema& schema,
                       const AttributePartition& partition) const;
};

}  // namespace dar

#endif  // DAR_CORE_RULES_H_
