#ifndef DAR_CORE_CONFIG_H_
#define DAR_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "birch/acf_tree.h"
#include "birch/metrics.h"
#include "common/status.h"

namespace dar {

/// All knobs of the two-phase DAR mining algorithm (§6).
struct DarConfig {
  // --- Phase I (clustering) ---

  /// Total memory budget for all ACF-trees together, split evenly across
  /// the attribute-set trees (the paper's 5 MB Phase-I limit, §7.2).
  size_t memory_budget_bytes = 5u << 20;

  /// Frequency threshold s0 as a fraction of the relation size: clusters
  /// supported by fewer tuples are not passed to Phase II (Dfn 4.2; §7.2
  /// uses 3%).
  double frequency_fraction = 0.03;

  /// Clusters smaller than `outlier_fraction * s0` tuples are paged out as
  /// outlier candidates during tree rebuilds (§4.3.1: "significantly
  /// smaller than the frequency threshold"). 0 disables outlier paging.
  double outlier_fraction = 0.25;

  /// Optional per-part initial diameter thresholds d0^X for the trees.
  /// Empty, or 0 for a part, means start at 0 and let memory pressure
  /// adapt the threshold (BIRCH behaviour).
  std::vector<double> initial_diameters;

  /// Structural knobs forwarded to every ACF-tree (memory budget,
  /// initial_threshold and outlier_entry_min_n are overwritten per run).
  AcfTreeOptions tree;

  /// When true, a global refinement pass (BIRCH's agglomerative phase,
  /// birch/refine.h) merges fragmented leaf clusters per part after the
  /// scan, using the part's final diameter threshold. Off by default to
  /// match the paper's two-phase algorithm exactly; bench/ablation_refine
  /// quantifies the effect.
  bool refine_clusters = false;

  // --- Phase II (rule formation) ---

  /// Inter-cluster distance metric D used for the degree of association and
  /// the clustering-graph conditions. D2 (Eq. 6) is the paper's primary
  /// choice and the one its theorems use.
  ClusterMetric metric = ClusterMetric::kD2AvgInter;

  /// Degree-of-association threshold D0 (Dfn 5.1/5.3): a rule holds when
  /// every antecedent-to-consequent image distance is <= this.
  double degree_threshold = 1.0;

  /// Optional per-part degree thresholds: the degree test for a consequent
  /// cluster on part Y uses degree_thresholds[Y] when set (non-empty).
  /// Degrees are measured on the consequent part's scale, so a single
  /// global D0 is only meaningful when the parts share a scale — the
  /// standardization problem the paper discusses in Sec 5.2. Empty means
  /// use the scalar degree_threshold for every part.
  std::vector<double> degree_thresholds;

  /// Optional per-part density thresholds d0^X used by the clustering
  /// graph (Dfn 6.1). A part with no override (empty vector or 0) uses
  /// max(final tree threshold, median diameter of that part's frequent
  /// clusters).
  std::vector<double> density_thresholds;

  /// Multiplier on the d0^X thresholds for Phase-II graph edges. §6.2:
  /// "using a more lenient (higher) threshold in Phase II produces a better
  /// set of rules".
  double phase2_leniency = 2.0;

  /// Enables the §6.2 comparison-pruning heuristic: image clusters whose
  /// radius already exceeds the density threshold cannot contribute an edge
  /// under D2 (D2(A,B) >= max(R_A, R_B)), so those pairs are skipped
  /// without computing distances. Only applied when `metric` is D2.
  bool prune_low_density_images = true;

  /// Arity caps for emitted rules (antecedent / consequent cluster counts).
  size_t max_antecedent = 3;
  size_t max_consequent = 2;

  /// Hard cap on emitted rules; exceeding it sets `rules_truncated` in the
  /// result rather than silently dropping work.
  size_t max_rules = 100000;

  /// Hard cap on enumerated maximal cliques (0 = unbounded). Over-lenient
  /// thresholds can make the clustering graph dense, whose clique count is
  /// exponential; the cap sets `cliques_truncated` instead of exhausting
  /// memory.
  size_t max_cliques = 100000;

  /// When true, Phase II is followed by one data rescan that counts, for
  /// every emitted rule, the tuples assigned to all of its clusters
  /// (§6.2's optional post-processing step).
  bool count_rule_support = false;

  /// Checks every knob for sanity: rejects zero memory budget,
  /// `frequency_fraction` outside (0, 1], negative or NaN thresholds and
  /// fractions, `phase2_leniency < 1`, zero rule arities, degenerate tree
  /// knobs, and per-part vectors (`initial_diameters`,
  /// `degree_thresholds`, `density_thresholds`) whose non-empty sizes
  /// disagree with each other. Session::Builder::Build refuses to
  /// construct on any violation; the returned Status names the offending
  /// knob.
  [[nodiscard]] Status Validate() const;
};

}  // namespace dar

#endif  // DAR_CORE_CONFIG_H_
