#include "core/coordinator.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/stopwatch.h"
#include "core/merge.h"
#include "core/phase1_builder.h"
#include "core/phase2_runner.h"

namespace dar {

Coordinator Session::NewCoordinator() const { return Coordinator(this); }

Result<MiningReport> Coordinator::MineSharded(
    const Relation& rel, const AttributePartition& partition,
    size_t num_shards) const {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (rel.num_rows() == 0) {
    return Status::InvalidArgument("relation is empty");
  }
  num_shards = std::min(num_shards, rel.num_rows());

  const Session& session = *session_;
  session.registry_->Reset();  // mirrors Mine: one call == one reported run
  telemetry::TelemetryContext telemetry(session.registry_.get());
  Stopwatch watch;

  // Phase I per shard: contiguous row ranges, one *serial* builder each
  // (executor = nullptr), fanned across the session's executor. Serial
  // shard builders + merges applied in shard order below make the result
  // a pure function of (data, config, num_shards) — never of the thread
  // count. Shard builders run without observers; rebuild notifications
  // fire from the merging builder, which carries the session's observers.
  std::vector<std::optional<Phase1Builder>> shards(num_shards);
  DAR_RETURN_IF_ERROR(session.executor_->ParallelFor(
      num_shards, [&](size_t s) -> Status {
        DAR_ASSIGN_OR_RETURN(
            Phase1Builder builder,
            Phase1Builder::Make(session.config_, rel.schema(), partition));
        // Balanced split: with num_shards <= num_rows every shard is
        // non-empty (an empty shard would be refused by MergeBuilders).
        const size_t begin = s * rel.num_rows() / num_shards;
        const size_t end = (s + 1) * rel.num_rows() / num_shards;
        std::vector<double> buf(rel.num_columns());
        for (size_t r = begin; r < end; ++r) {
          for (size_t c = 0; c < rel.num_columns(); ++c) {
            buf[c] = rel.at(r, c);
          }
          DAR_RETURN_IF_ERROR(builder.AddRow(buf));
        }
        shards[s].emplace(std::move(builder));
        return Status::OK();
      }));

  // Merge in shard order into a fresh builder wired to the session's
  // executor (so re-absorption part-parallelizes) and observers.
  DAR_ASSIGN_OR_RETURN(
      Phase1Builder merged,
      Phase1Builder::Make(session.config_, rel.schema(), partition,
                          session.executor_.get(), session.observer_or_null(),
                          telemetry));
  for (auto& shard : shards) {
    DAR_RETURN_IF_ERROR(MergeBuilders(merged, *shard, telemetry));
  }
  if (telemetry.enabled()) {
    telemetry.GetCounter("merge.shards")
        ->Increment(static_cast<int64_t>(num_shards));
    telemetry
        .GetHistogram("merge.seconds", telemetry::Histogram::LatencyBounds())
        ->Record(watch.ElapsedSeconds());
  }

  MiningReport report;
  DAR_ASSIGN_OR_RETURN(report.result.phase1, std::move(merged).Finish());
  DAR_ASSIGN_OR_RETURN(report.result.phase2,
                       session.RunPhase2(report.result.phase1));
  if (session.config_.count_rule_support) {
    DAR_RETURN_IF_ERROR(
        session.CountRuleSupport(rel, partition, report.result.phase1,
                                 report.result.phase2.rules));
  }
  report.telemetry = session.registry_->TakeSnapshot();
  if (MiningObserver* observer = session.observer_or_null();
      observer != nullptr) {
    observer->OnRunComplete(report.telemetry);
  }
  return report;
}

// Coordinator::MineFromCheckpoints is defined in src/persist/merge.cc: the
// checkpoint-merging half layers on dar_persist, so the coordinator's
// cross-process entry point lives (and links) with the code it decodes —
// the same arrangement as Session::OpenStream / SaveCheckpoint in
// src/stream/.

}  // namespace dar
