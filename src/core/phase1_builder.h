#ifndef DAR_CORE_PHASE1_BUILDER_H_
#define DAR_CORE_PHASE1_BUILDER_H_

#include <memory>
#include <vector>

#include "birch/acf_tree.h"
#include "common/executor.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "core/config.h"
#include "core/model.h"
#include "core/observer.h"
#include "relation/partition.h"
#include "relation/relation.h"
#include "telemetry/context.h"

namespace dar {

/// Incremental (streaming) Phase I: feed tuples one at a time, then
/// Finish(). This is the §3 operating mode — the trees adapt to the memory
/// budget *while* the single pass is in progress, so the data never needs
/// to fit in memory and can come from a cursor, a file, or a socket.
///
///     Phase1Builder builder(config, schema, partition);
///     while (auto row = source.Next()) {
///       DAR_RETURN_IF_ERROR(builder.AddRow(*row));
///     }
///     DAR_ASSIGN_OR_RETURN(Phase1Result phase1, std::move(builder).Finish());
///
/// For materialized relations, AddRelation() feeds every attribute part's
/// tree independently — each part's ACF-tree only ever sees its own
/// insertions (Theorem 6.1 keeps cross-attribute sums inside each ACF), so
/// when an Executor with parallelism > 1 is supplied the parts run
/// concurrently. Per-tree insertion order and outlier-paging cadence are
/// identical in both modes and for every executor, so the resulting trees
/// (and everything downstream) are bit-identical to a serial run.
///
/// Session::RunPhase1 feeds a Relation through this builder with the
/// session's executor and observers.
class Phase1Builder {
 public:
  /// Validates the configuration and builds one ACF-tree per part.
  /// `executor` and `observer` are optional non-owning pointers that must
  /// outlive the builder; null means serial / no callbacks. `telemetry` is
  /// an optional recording context (default: disabled); the batch
  /// AddRelation/Finish path records per-part insert/split/rebuild
  /// counters, tree heights and sampled absorb latencies through it.
  static Result<Phase1Builder> Make(
      const DarConfig& config, const Schema& schema,
      const AttributePartition& partition, Executor* executor = nullptr,
      MiningObserver* observer = nullptr,
      telemetry::TelemetryContext telemetry = {});

  Phase1Builder(Phase1Builder&&) = default;
  Phase1Builder& operator=(Phase1Builder&&) = default;

  /// Adds one tuple; `row` must have one value per schema attribute.
  Status AddRow(std::span<const double> row);

  /// Adds every tuple of `rel`, part-parallel when an executor was given.
  /// Equivalent to calling AddRow for each row in order.
  Status AddRelation(const Relation& rel);

  /// Number of tuples added so far.
  [[nodiscard]] int64_t rows_added() const { return rows_added_; }

  /// Absorbs another builder's Phase-I state, built over a *disjoint* tuple
  /// set under a structurally identical schema/partition (ACF additivity,
  /// Eq. 3/7): each part's tree is merged summary-by-summary
  /// (AcfTree::MergeFrom) and the row count accumulated, so a subsequent
  /// Finish()/Snapshot() summarizes the union of both inputs without any
  /// rescan. Part-parallel when an executor was given; `other` (which may
  /// come from a decoded checkpoint of another process) is unchanged.
  Status MergeFrom(const Phase1Builder& other);

  /// Re-absorbs outliers, optionally refines clusters, applies the
  /// frequency threshold and assembles the Phase1Result (part-parallel
  /// when an executor was given; output is merged in part order and does
  /// not depend on the executor). The builder is consumed.
  Result<Phase1Result> Finish() &&;

  /// Non-consuming Finish: deep-clones every live tree and runs the exact
  /// finishing pipeline (FinishScan, optional refinement, frequency
  /// filtering, d0 derivation) on the clones, leaving the builder ready to
  /// absorb more rows. For identical rows this produces a Phase1Result
  /// bit-identical to Finish() — it is the incremental re-mine primitive of
  /// dar::stream: Phase II only needs the summaries, so rules can be
  /// re-derived mid-stream without rescanning any data (Thm 6.1).
  [[nodiscard]] Result<Phase1Result> Snapshot() const;

 private:
  // Serialization backdoor for dar::persist (persist/persist_peer.h):
  // checkpoint encode reads the trees, decode reconstructs a builder
  // through this constructor with deserialized trees.
  friend struct PersistPeer;

  Phase1Builder(DarConfig config, AttributePartition partition,
                std::shared_ptr<const AcfLayout> layout,
                std::vector<std::unique_ptr<AcfTree>> trees,
                size_t schema_width, Executor* executor,
                MiningObserver* observer,
                telemetry::TelemetryContext telemetry);

  // Keeps each tree's outlier paging threshold in step with the running
  // tuple count (s0 is only known at Finish in streaming mode).
  void UpdateOutlierThresholds();

  // Outlier paging threshold for a tree that has seen `rows` tuples.
  [[nodiscard]] int64_t OutlierMinN(int64_t rows) const;

  // Feeds rows [0, rel.num_rows()) of `rel` into part `p`'s tree,
  // replaying the exact per-tree insert/paging sequence of AddRow.
  Status FeedPart(const Relation& rel, size_t p);

  // Runs fn(p) for every part, on the executor when present.
  Status ForEachPart(const std::function<Status(size_t)>& fn) const;

  // Shared finishing pipeline over `trees` (the real trees for Finish, a
  // fresh set of clones for Snapshot). Mutates the given trees (outlier
  // re-absorption), never the builder itself.
  Result<Phase1Result> FinishTrees(
      std::vector<std::unique_ptr<AcfTree>>& trees) const;

  // Records the Phase-I counters/gauges of `out` into telemetry_ (no-op
  // when the context is disabled). Called once from Finish.
  void RecordTelemetry(const Phase1Result& out) const;

  DarConfig config_;
  AttributePartition partition_;
  std::shared_ptr<const AcfLayout> layout_;
  std::vector<std::unique_ptr<AcfTree>> trees_;
  size_t schema_width_;
  Executor* executor_ = nullptr;       // not owned; may be null
  MiningObserver* observer_ = nullptr; // not owned; may be null
  telemetry::TelemetryContext telemetry_;  // disabled by default
  int64_t rows_added_ = 0;
  Stopwatch watch_;
  PartedRow scratch_;
  std::vector<double> buf_;
};

}  // namespace dar

#endif  // DAR_CORE_PHASE1_BUILDER_H_
