#ifndef DAR_CORE_PHASE1_BUILDER_H_
#define DAR_CORE_PHASE1_BUILDER_H_

#include <memory>
#include <vector>

#include "birch/acf_tree.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "core/config.h"
#include "core/model.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace dar {

/// Incremental (streaming) Phase I: feed tuples one at a time, then
/// Finish(). This is the §3 operating mode — the trees adapt to the memory
/// budget *while* the single pass is in progress, so the data never needs
/// to fit in memory and can come from a cursor, a file, or a socket.
///
///     Phase1Builder builder(config, schema, partition);
///     while (auto row = source.Next()) {
///       DAR_RETURN_IF_ERROR(builder.AddRow(*row));
///     }
///     DAR_ASSIGN_OR_RETURN(Phase1Result phase1, std::move(builder).Finish());
///
/// DarMiner::RunPhase1 is a thin wrapper that feeds a Relation through this
/// builder.
class Phase1Builder {
 public:
  /// Validates the configuration and builds one ACF-tree per part.
  static Result<Phase1Builder> Make(const DarConfig& config,
                                    const Schema& schema,
                                    const AttributePartition& partition);

  Phase1Builder(Phase1Builder&&) = default;
  Phase1Builder& operator=(Phase1Builder&&) = default;

  /// Adds one tuple; `row` must have one value per schema attribute.
  Status AddRow(std::span<const double> row);

  /// Number of tuples added so far.
  int64_t rows_added() const { return rows_added_; }

  /// Re-absorbs outliers, optionally refines clusters, applies the
  /// frequency threshold and assembles the Phase1Result. The builder is
  /// consumed.
  Result<Phase1Result> Finish() &&;

 private:
  Phase1Builder(DarConfig config, AttributePartition partition,
                std::shared_ptr<const AcfLayout> layout,
                std::vector<std::unique_ptr<AcfTree>> trees,
                size_t schema_width);

  // Keeps each tree's outlier paging threshold in step with the running
  // tuple count (s0 is only known at Finish in streaming mode).
  void UpdateOutlierThresholds();

  DarConfig config_;
  AttributePartition partition_;
  std::shared_ptr<const AcfLayout> layout_;
  std::vector<std::unique_ptr<AcfTree>> trees_;
  size_t schema_width_;
  int64_t rows_added_ = 0;
  Stopwatch watch_;
  PartedRow scratch_;
  std::vector<double> buf_;
};

}  // namespace dar

#endif  // DAR_CORE_PHASE1_BUILDER_H_
