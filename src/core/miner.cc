#include "core/miner.h"

namespace dar {

Session DarMiner::LegacySession() const {
  // Bypasses DarConfig::Validate() on purpose: the legacy surface accepted
  // out-of-range knobs (ablation benches sweep phase2_leniency below 1)
  // and its spot checks live in Phase1Builder::Make. Session::Builder is
  // the validated path.
  return Session(config_, std::make_shared<SerialExecutor>(),
                 std::make_shared<ObserverList>());
}

Result<Phase1Result> DarMiner::RunPhase1(
    const Relation& rel, const AttributePartition& partition) const {
  return LegacySession().RunPhase1(rel, partition);
}

Result<Phase2Result> DarMiner::RunPhase2(const Phase1Result& phase1) const {
  return LegacySession().RunPhase2(phase1);
}

Status DarMiner::CountRuleSupport(const Relation& rel,
                                  const AttributePartition& partition,
                                  const Phase1Result& phase1,
                                  std::vector<DistanceRule>& rules) const {
  return LegacySession().CountRuleSupport(rel, partition, phase1, rules);
}

Result<DarMiningResult> DarMiner::Mine(
    const Relation& rel, const AttributePartition& partition) const {
  return LegacySession().Mine(rel, partition);
}

}  // namespace dar
