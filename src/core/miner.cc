#include "core/miner.h"

#include <algorithm>
#include <cmath>

#include "birch/acf_tree.h"
#include "common/stopwatch.h"
#include "core/clustering_graph.h"
#include "core/phase1_builder.h"

namespace dar {

Result<Phase1Result> DarMiner::RunPhase1(
    const Relation& rel, const AttributePartition& partition) const {
  if (rel.num_rows() == 0) {
    return Status::InvalidArgument("relation is empty");
  }
  DAR_ASSIGN_OR_RETURN(
      Phase1Builder builder,
      Phase1Builder::Make(config_, rel.schema(), partition));
  std::vector<double> row(rel.num_columns());
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    for (size_t c = 0; c < rel.num_columns(); ++c) row[c] = rel.at(r, c);
    DAR_RETURN_IF_ERROR(builder.AddRow(row));
  }
  return std::move(builder).Finish();
}

Result<Phase2Result> DarMiner::RunPhase2(const Phase1Result& phase1) const {
  Stopwatch watch;
  Phase2Result out;

  ClusteringGraphOptions graph_opts;
  graph_opts.metric = config_.metric;
  graph_opts.prune_low_density_images = config_.prune_low_density_images;
  graph_opts.d0.reserve(phase1.effective_d0.size());
  for (double d0 : phase1.effective_d0) {
    graph_opts.d0.push_back(d0 * config_.phase2_leniency);
  }

  ClusteringGraph graph(phase1.clusters, graph_opts);
  out.graph_edges = graph.num_edges();
  out.graph_comparisons_made = graph.comparisons_made();
  out.graph_comparisons_skipped = graph.comparisons_skipped();

  out.cliques = graph.MaximalCliques(config_.max_cliques,
                                     &out.cliques_truncated);
  for (const auto& q : out.cliques) {
    if (q.size() >= 2) ++out.num_nontrivial_cliques;
  }

  RuleGenOptions rule_opts;
  rule_opts.metric = config_.metric;
  rule_opts.degree_threshold = config_.degree_threshold;
  rule_opts.degree_thresholds = config_.degree_thresholds;
  rule_opts.max_antecedent = config_.max_antecedent;
  rule_opts.max_consequent = config_.max_consequent;
  rule_opts.max_rules = config_.max_rules;
  RuleGenResult rules =
      GenerateDistanceRules(phase1.clusters, out.cliques, rule_opts);
  out.rules = std::move(rules.rules);
  out.rules_truncated = rules.truncated;
  out.degree_evaluations = rules.degree_evaluations;

  // Strongest rules first.
  std::sort(out.rules.begin(), out.rules.end(),
            [](const DistanceRule& a, const DistanceRule& b) {
              return a.degree < b.degree;
            });
  out.seconds = watch.ElapsedSeconds();
  return out;
}

Status DarMiner::CountRuleSupport(const Relation& rel,
                                  const AttributePartition& partition,
                                  const Phase1Result& phase1,
                                  std::vector<DistanceRule>& rules) const {
  const ClusterSet& clusters = phase1.clusters;
  for (auto& rule : rules) rule.support_count = 0;

  std::vector<double> buf;
  // Per row: assign the row to one cluster per part, then bump every rule
  // whose clusters all match.
  std::vector<int64_t> assignment(partition.num_parts(), -1);
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    for (size_t p = 0; p < partition.num_parts(); ++p) {
      rel.ProjectRow(r, partition.part(p).columns, buf);
      auto assigned = clusters.AssignToCluster(p, buf);
      assignment[p] = assigned.ok() ? static_cast<int64_t>(*assigned) : -1;
    }
    for (auto& rule : rules) {
      bool all = true;
      for (const auto* side : {&rule.antecedent, &rule.consequent}) {
        for (size_t id : *side) {
          const FoundCluster& c = clusters.cluster(id);
          if (assignment[c.part] != static_cast<int64_t>(id)) {
            all = false;
            break;
          }
        }
        if (!all) break;
      }
      if (all) ++rule.support_count;
    }
  }
  return Status::OK();
}

Result<DarMiningResult> DarMiner::Mine(
    const Relation& rel, const AttributePartition& partition) const {
  DarMiningResult result;
  DAR_ASSIGN_OR_RETURN(result.phase1, RunPhase1(rel, partition));
  DAR_ASSIGN_OR_RETURN(result.phase2, RunPhase2(result.phase1));
  if (config_.count_rule_support) {
    DAR_RETURN_IF_ERROR(CountRuleSupport(rel, partition, result.phase1,
                                         result.phase2.rules));
  }
  return result;
}

}  // namespace dar
