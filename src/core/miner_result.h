#ifndef DAR_CORE_MINER_RESULT_H_
#define DAR_CORE_MINER_RESULT_H_

#include <cstdint>
#include <vector>

#include "core/model.h"
#include "core/rules.h"

namespace dar {

/// Everything Phase II reports. Instrumentation counters that used to
/// live here (graph comparison counts, degree evaluations) moved to the
/// telemetry::Snapshot — read them through MiningReport's views.
struct Phase2Result {
  /// Maximal cliques of the clustering graph (cluster-id lists).
  std::vector<std::vector<size_t>> cliques;
  size_t num_nontrivial_cliques = 0;  // cliques of size >= 2
  /// Distinct truncation signals: the clique cap (config.max_cliques)
  /// fired, vs. the expansion-step budget (64x the cap) cut a search off
  /// mid-walk. `cliques_truncated` stays their OR — it is what the
  /// checkpoint format persists, so restored results only carry the
  /// combined signal.
  bool clique_cap_truncated = false;
  bool clique_steps_truncated = false;
  bool cliques_truncated = false;
  size_t graph_edges = 0;
  std::vector<DistanceRule> rules;
  bool rules_truncated = false;
  /// Wall-clock seconds spent in Phase II (graph + cliques + rules).
  double seconds = 0;
};

/// Combined mining output.
struct DarMiningResult {
  Phase1Result phase1;
  Phase2Result phase2;
};

}  // namespace dar

#endif  // DAR_CORE_MINER_RESULT_H_
