#include "core/phase1_builder.h"

#include <algorithm>
#include <cmath>

#include "birch/refine.h"

namespace dar {

Result<Phase1Builder> Phase1Builder::Make(
    const DarConfig& config, const Schema& schema,
    const AttributePartition& partition, Executor* executor,
    MiningObserver* observer, telemetry::TelemetryContext telemetry) {
  if (partition.num_parts() == 0) {
    return Status::InvalidArgument("attribute partition is empty");
  }
  if (config.frequency_fraction <= 0 || config.frequency_fraction > 1) {
    return Status::InvalidArgument("frequency_fraction must be in (0, 1]");
  }
  for (const auto& part : partition.parts()) {
    for (size_t col : part.columns) {
      if (col >= schema.num_attributes()) {
        return Status::InvalidArgument(
            "partition references column " + std::to_string(col) +
            " outside the schema");
      }
    }
  }

  auto layout = std::make_shared<AcfLayout>();
  layout->parts.reserve(partition.num_parts());
  for (const auto& part : partition.parts()) {
    layout->parts.push_back({part.dimension(), part.metric, part.label});
  }

  std::vector<std::unique_ptr<AcfTree>> trees;
  trees.reserve(partition.num_parts());
  for (size_t p = 0; p < partition.num_parts(); ++p) {
    AcfTreeOptions opts = config.tree;
    opts.memory_budget_bytes = std::max<size_t>(
        1, config.memory_budget_bytes / partition.num_parts());
    opts.initial_threshold = p < config.initial_diameters.size()
                                 ? config.initial_diameters[p]
                                 : 0.0;
    opts.outlier_entry_min_n = 0;  // adjusted as rows arrive
    if (observer != nullptr) {
      // Chain after any hook the caller put in config.tree.
      auto user_hook = opts.on_rebuild;
      opts.on_rebuild = [observer, user_hook, p](int count, double thresh) {
        if (user_hook) user_hook(count, thresh);
        observer->OnTreeRebuild(p, count, thresh);
      };
    }
    trees.push_back(
        std::make_unique<AcfTree>(layout, p, opts));
  }
  return Phase1Builder(config, partition, std::move(layout),
                       std::move(trees), schema.num_attributes(), executor,
                       observer, telemetry);
}

Phase1Builder::Phase1Builder(DarConfig config, AttributePartition partition,
                             std::shared_ptr<const AcfLayout> layout,
                             std::vector<std::unique_ptr<AcfTree>> trees,
                             size_t schema_width, Executor* executor,
                             MiningObserver* observer,
                             telemetry::TelemetryContext telemetry)
    : config_(std::move(config)),
      partition_(std::move(partition)),
      layout_(std::move(layout)),
      trees_(std::move(trees)),
      schema_width_(schema_width),
      executor_(executor),
      observer_(observer),
      telemetry_(telemetry) {
  scratch_.resize(partition_.num_parts());
  for (size_t p = 0; p < partition_.num_parts(); ++p) {
    scratch_[p].resize(partition_.part(p).dimension());
  }
}

int64_t Phase1Builder::OutlierMinN(int64_t rows) const {
  return static_cast<int64_t>(config_.outlier_fraction *
                              config_.frequency_fraction *
                              static_cast<double>(rows));
}

void Phase1Builder::UpdateOutlierThresholds() {
  if (config_.outlier_fraction <= 0) return;
  int64_t min_n = OutlierMinN(rows_added_);
  for (auto& tree : trees_) tree->set_outlier_entry_min_n(min_n);
}

Status Phase1Builder::AddRow(std::span<const double> row) {
  if (row.size() != schema_width_) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != schema width " +
        std::to_string(schema_width_));
  }
  for (size_t p = 0; p < partition_.num_parts(); ++p) {
    const auto& cols = partition_.part(p).columns;
    for (size_t d = 0; d < cols.size(); ++d) {
      scratch_[p][d] = row[cols[d]];
    }
  }
  for (auto& tree : trees_) {
    DAR_RETURN_IF_ERROR(tree->InsertPoint(scratch_));
  }
  ++rows_added_;
  // Keep outlier paging roughly in step with the running count; the exact
  // value only matters at rebuild time, so a coarse cadence is fine.
  if ((rows_added_ & 0xFFF) == 0) UpdateOutlierThresholds();
  return Status::OK();
}

Status Phase1Builder::ForEachPart(
    const std::function<Status(size_t)>& fn) const {
  if (executor_ != nullptr) {
    return executor_->ParallelFor(partition_.num_parts(), fn);
  }
  Status first = Status::OK();
  for (size_t p = 0; p < partition_.num_parts(); ++p) {
    Status s = fn(p);
    if (!s.ok() && first.ok()) first = std::move(s);
  }
  return first;
}

Status Phase1Builder::FeedPart(const Relation& rel, size_t p) {
  if (observer_ != nullptr) observer_->OnPhase1PartStart(p);
  // Sampled absorb latency: every 64th insert is individually timed. The
  // histogram handle is resolved once per part (the lookup locks), and
  // recording is lock-free and safe from this worker thread.
  telemetry::Histogram* absorb_hist = telemetry_.GetHistogram(
      "phase1.absorb_seconds", telemetry::Histogram::LatencyBounds());
  Stopwatch feed_watch;
  // Each tree sees the exact insert sequence and outlier-paging cadence it
  // would under the streaming AddRow loop — trees only observe their own
  // insertions, so interleaving across trees is immaterial and the result
  // is bit-identical for any executor.
  PartedRow scratch(partition_.num_parts());
  for (size_t q = 0; q < partition_.num_parts(); ++q) {
    scratch[q].resize(partition_.part(q).dimension());
  }
  AcfTree& tree = *trees_[p];
  const int64_t start = rows_added_;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    // ACFs summarize the cluster's image on *every* part (Eq. 7), so each
    // tree needs the full parted row, not just its own projection.
    for (size_t q = 0; q < partition_.num_parts(); ++q) {
      const auto& cols = partition_.part(q).columns;
      for (size_t d = 0; d < cols.size(); ++d) {
        scratch[q][d] = rel.at(r, cols[d]);
      }
    }
    if (absorb_hist != nullptr && (r & 63) == 0) {
      Stopwatch insert_watch;
      DAR_RETURN_IF_ERROR(tree.InsertPoint(scratch));
      absorb_hist->Record(insert_watch.ElapsedSeconds());
    } else {
      DAR_RETURN_IF_ERROR(tree.InsertPoint(scratch));
    }
    int64_t count = start + static_cast<int64_t>(r) + 1;
    if ((count & 0xFFF) == 0 && config_.outlier_fraction > 0) {
      tree.set_outlier_entry_min_n(OutlierMinN(count));
    }
  }
  telemetry::PartTimings timings;
  timings.feed_seconds = feed_watch.ElapsedSeconds();
  if (telemetry::Histogram* feed_hist = telemetry_.GetHistogram(
          "phase1.feed_seconds", telemetry::Histogram::LatencyBounds());
      feed_hist != nullptr) {
    feed_hist->Record(timings.feed_seconds);
  }
  if (observer_ != nullptr) {
    observer_->OnPhase1PartDone(p, tree.Stats(), timings);
  }
  return Status::OK();
}

Status Phase1Builder::AddRelation(const Relation& rel) {
  if (rel.num_columns() != schema_width_) {
    return Status::InvalidArgument(
        "relation width " + std::to_string(rel.num_columns()) +
        " != schema width " + std::to_string(schema_width_));
  }
  DAR_RETURN_IF_ERROR(
      ForEachPart([&](size_t p) { return FeedPart(rel, p); }));
  rows_added_ += static_cast<int64_t>(rel.num_rows());
  return Status::OK();
}

Status Phase1Builder::MergeFrom(const Phase1Builder& other) {
  if (schema_width_ != other.schema_width_) {
    return Status::InvalidArgument(
        "cannot merge Phase-I builders over different schema widths (" +
        std::to_string(schema_width_) + " vs " +
        std::to_string(other.schema_width_) + ")");
  }
  if (!LayoutsEquivalent(*layout_, *other.layout_)) {
    return Status::InvalidArgument(
        "cannot merge Phase-I builders with different attribute "
        "partitionings");
  }
  if (other.rows_added_ == 0) {
    return Status::InvalidArgument(
        "cannot merge an empty Phase-I builder (no rows added)");
  }
  DAR_RETURN_IF_ERROR(ForEachPart(
      [&](size_t p) { return trees_[p]->MergeFrom(*other.trees_[p]); }));
  rows_added_ += other.rows_added_;
  UpdateOutlierThresholds();
  return Status::OK();
}

Result<Phase1Result> Phase1Builder::Finish() && {
  return FinishTrees(trees_);
}

Result<Phase1Result> Phase1Builder::Snapshot() const {
  // Clone every live tree (part-parallel) and finish the clones; the
  // originals keep absorbing rows. Clones replay FinishScan exactly as the
  // real trees would, so for identical rows the result is bit-identical
  // to Finish().
  std::vector<std::unique_ptr<AcfTree>> clones(trees_.size());
  DAR_RETURN_IF_ERROR(ForEachPart([&](size_t p) -> Status {
    clones[p] = trees_[p]->Clone();
    return Status::OK();
  }));
  return FinishTrees(clones);
}

Result<Phase1Result> Phase1Builder::FinishTrees(
    std::vector<std::unique_ptr<AcfTree>>& trees) const {
  if (rows_added_ == 0) {
    return Status::InvalidArgument("no rows were added");
  }

  Phase1Result out;
  out.layout = layout_;
  out.frequency_threshold = std::max<int64_t>(
      1,
      static_cast<int64_t>(std::ceil(config_.frequency_fraction *
                                     static_cast<double>(rows_added_))));

  // Per-part finishing (outlier re-absorption, optional refinement,
  // frequency filtering, d0 derivation) is independent across parts; run
  // it on the executor with one output slot per part and merge in part
  // order so cluster ids never depend on scheduling.
  struct PartSlot {
    std::vector<Acf> frequent;
    double d0 = 0;
    AcfTreeStats stats;
    std::vector<Acf> outliers;
    size_t raw_count = 0;
  };
  std::vector<PartSlot> slots(partition_.num_parts());
  const int64_t s0 = out.frequency_threshold;
  DAR_RETURN_IF_ERROR(ForEachPart([&](size_t p) -> Status {
    DAR_RETURN_IF_ERROR(trees[p]->FinishScan());
    PartSlot& slot = slots[p];
    std::vector<Acf> leaf_clusters = trees[p]->ExtractClusters();
    if (config_.refine_clusters) {
      RefineOptions refine;
      refine.diameter_threshold = trees[p]->threshold();
      leaf_clusters = RefineClusters(std::move(leaf_clusters), refine);
    }
    slot.raw_count = leaf_clusters.size();
    std::vector<double> diameters;
    for (auto& acf : leaf_clusters) {
      if (acf.n() < s0) continue;
      diameters.push_back(acf.Diameter());
      slot.frequent.push_back(std::move(acf));
    }
    double d0 = 0;
    if (p < config_.density_thresholds.size()) {
      d0 = config_.density_thresholds[p];
    }
    if (d0 <= 0) {
      double median = 0;
      if (!diameters.empty()) {
        size_t mid = diameters.size() / 2;
        std::nth_element(diameters.begin(), diameters.begin() + mid,
                         diameters.end());
        median = diameters[mid];
      }
      d0 = std::max(trees[p]->threshold(), median);
    }
    slot.d0 = d0;
    slot.stats = trees[p]->Stats();
    slot.outliers = trees[p]->outliers();
    return Status::OK();
  }));

  std::vector<FoundCluster> found;
  out.raw_cluster_counts.resize(partition_.num_parts());
  out.effective_d0.resize(partition_.num_parts());
  for (size_t p = 0; p < partition_.num_parts(); ++p) {
    PartSlot& slot = slots[p];
    for (auto& acf : slot.frequent) {
      FoundCluster c;
      c.id = found.size();
      c.part = p;
      c.acf = std::move(acf);
      found.push_back(std::move(c));
    }
    out.raw_cluster_counts[p] = slot.raw_count;
    out.effective_d0[p] = slot.d0;
    out.tree_stats.push_back(slot.stats);
    for (auto& acf : slot.outliers) out.outliers.push_back(std::move(acf));
  }
  out.clusters = ClusterSet(out.layout, std::move(found));
  out.seconds = watch_.ElapsedSeconds();
  RecordTelemetry(out);
  return out;
}

void Phase1Builder::RecordTelemetry(const Phase1Result& out) const {
  if (!telemetry_.enabled()) return;
  using telemetry::Unit;
  telemetry_.GetCounter("phase1.rows")->Increment(rows_added_);
  telemetry_.GetCounter("phase1.clusters")
      ->Increment(static_cast<int64_t>(out.clusters.size()));
  telemetry_.GetCounter("phase1.outliers")
      ->Increment(static_cast<int64_t>(out.outliers.size()));
  int64_t inserts = 0, splits = 0, rebuilds = 0;
  size_t bytes = 0;
  for (size_t p = 0; p < out.tree_stats.size(); ++p) {
    const AcfTreeStats& stats = out.tree_stats[p];
    const std::string prefix = "phase1.part" + std::to_string(p);
    telemetry_.GetCounter(prefix + ".inserts")
        ->Increment(stats.points_inserted);
    telemetry_.GetCounter(prefix + ".splits")->Increment(stats.split_count);
    telemetry_.GetCounter(prefix + ".rebuilds")
        ->Increment(stats.rebuild_count);
    telemetry_.GetGauge(prefix + ".height")
        ->Set(static_cast<double>(stats.height));
    inserts += stats.points_inserted;
    splits += stats.split_count;
    rebuilds += stats.rebuild_count;
    bytes += stats.approx_bytes;
  }
  telemetry_.GetCounter("phase1.inserts")->Increment(inserts);
  telemetry_.GetCounter("phase1.splits")->Increment(splits);
  telemetry_.GetCounter("phase1.rebuilds")->Increment(rebuilds);
  telemetry_.GetGauge("phase1.tree_bytes", Unit::kBytes)
      ->Set(static_cast<double>(bytes));
  telemetry_.GetGauge("phase1.seconds", Unit::kSeconds)->Set(out.seconds);
}

}  // namespace dar
