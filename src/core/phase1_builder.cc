#include "core/phase1_builder.h"

#include <algorithm>
#include <cmath>

#include "birch/refine.h"

namespace dar {

Result<Phase1Builder> Phase1Builder::Make(
    const DarConfig& config, const Schema& schema,
    const AttributePartition& partition) {
  if (partition.num_parts() == 0) {
    return Status::InvalidArgument("attribute partition is empty");
  }
  if (config.frequency_fraction <= 0 || config.frequency_fraction > 1) {
    return Status::InvalidArgument("frequency_fraction must be in (0, 1]");
  }
  for (const auto& part : partition.parts()) {
    for (size_t col : part.columns) {
      if (col >= schema.num_attributes()) {
        return Status::InvalidArgument(
            "partition references column " + std::to_string(col) +
            " outside the schema");
      }
    }
  }

  auto layout = std::make_shared<AcfLayout>();
  layout->parts.reserve(partition.num_parts());
  for (const auto& part : partition.parts()) {
    layout->parts.push_back({part.dimension(), part.metric, part.label});
  }

  std::vector<std::unique_ptr<AcfTree>> trees;
  trees.reserve(partition.num_parts());
  for (size_t p = 0; p < partition.num_parts(); ++p) {
    AcfTreeOptions opts = config.tree;
    opts.memory_budget_bytes = std::max<size_t>(
        1, config.memory_budget_bytes / partition.num_parts());
    opts.initial_threshold = p < config.initial_diameters.size()
                                 ? config.initial_diameters[p]
                                 : 0.0;
    opts.outlier_entry_min_n = 0;  // adjusted as rows arrive
    trees.push_back(
        std::make_unique<AcfTree>(layout, p, opts));
  }
  return Phase1Builder(config, partition, std::move(layout),
                       std::move(trees), schema.num_attributes());
}

Phase1Builder::Phase1Builder(DarConfig config, AttributePartition partition,
                             std::shared_ptr<const AcfLayout> layout,
                             std::vector<std::unique_ptr<AcfTree>> trees,
                             size_t schema_width)
    : config_(std::move(config)),
      partition_(std::move(partition)),
      layout_(std::move(layout)),
      trees_(std::move(trees)),
      schema_width_(schema_width) {
  scratch_.resize(partition_.num_parts());
  for (size_t p = 0; p < partition_.num_parts(); ++p) {
    scratch_[p].resize(partition_.part(p).dimension());
  }
}

void Phase1Builder::UpdateOutlierThresholds() {
  if (config_.outlier_fraction <= 0) return;
  int64_t min_n = static_cast<int64_t>(config_.outlier_fraction *
                                       config_.frequency_fraction *
                                       static_cast<double>(rows_added_));
  for (auto& tree : trees_) tree->set_outlier_entry_min_n(min_n);
}

Status Phase1Builder::AddRow(std::span<const double> row) {
  if (row.size() != schema_width_) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != schema width " +
        std::to_string(schema_width_));
  }
  for (size_t p = 0; p < partition_.num_parts(); ++p) {
    const auto& cols = partition_.part(p).columns;
    for (size_t d = 0; d < cols.size(); ++d) {
      scratch_[p][d] = row[cols[d]];
    }
  }
  for (auto& tree : trees_) {
    DAR_RETURN_IF_ERROR(tree->InsertPoint(scratch_));
  }
  ++rows_added_;
  // Keep outlier paging roughly in step with the running count; the exact
  // value only matters at rebuild time, so a coarse cadence is fine.
  if ((rows_added_ & 0xFFF) == 0) UpdateOutlierThresholds();
  return Status::OK();
}

Result<Phase1Result> Phase1Builder::Finish() && {
  if (rows_added_ == 0) {
    return Status::InvalidArgument("no rows were added");
  }
  for (auto& tree : trees_) {
    DAR_RETURN_IF_ERROR(tree->FinishScan());
  }

  Phase1Result out;
  out.layout = layout_;
  out.frequency_threshold = std::max<int64_t>(
      1,
      static_cast<int64_t>(std::ceil(config_.frequency_fraction *
                                     static_cast<double>(rows_added_))));

  std::vector<FoundCluster> found;
  out.raw_cluster_counts.resize(partition_.num_parts());
  out.effective_d0.resize(partition_.num_parts());
  for (size_t p = 0; p < partition_.num_parts(); ++p) {
    std::vector<Acf> leaf_clusters = trees_[p]->ExtractClusters();
    if (config_.refine_clusters) {
      RefineOptions refine;
      refine.diameter_threshold = trees_[p]->threshold();
      leaf_clusters = RefineClusters(std::move(leaf_clusters), refine);
    }
    out.raw_cluster_counts[p] = leaf_clusters.size();
    std::vector<double> diameters;
    for (auto& acf : leaf_clusters) {
      if (acf.n() < out.frequency_threshold) continue;
      diameters.push_back(acf.Diameter());
      FoundCluster c;
      c.id = found.size();
      c.part = p;
      c.acf = std::move(acf);
      found.push_back(std::move(c));
    }
    double d0 = 0;
    if (p < config_.density_thresholds.size()) {
      d0 = config_.density_thresholds[p];
    }
    if (d0 <= 0) {
      double median = 0;
      if (!diameters.empty()) {
        size_t mid = diameters.size() / 2;
        std::nth_element(diameters.begin(), diameters.begin() + mid,
                         diameters.end());
        median = diameters[mid];
      }
      d0 = std::max(trees_[p]->threshold(), median);
    }
    out.effective_d0[p] = d0;
    out.tree_stats.push_back(trees_[p]->Stats());
    for (const auto& acf : trees_[p]->outliers()) {
      out.outliers.push_back(acf);
    }
  }
  out.clusters = ClusterSet(out.layout, std::move(found));
  out.seconds = watch_.ElapsedSeconds();
  return out;
}

}  // namespace dar
