#ifndef DAR_CORE_RULE_GEN_H_
#define DAR_CORE_RULE_GEN_H_

#include <vector>

#include "birch/metrics.h"
#include "core/clustering_graph.h"
#include "core/model.h"
#include "core/rules.h"

namespace dar {

/// Parameters of the clique-pair rule enumeration (§6.2).
struct RuleGenOptions {
  ClusterMetric metric = ClusterMetric::kD2AvgInter;
  /// Degree-of-association threshold D0.
  double degree_threshold = 1.0;
  /// Optional per-part override of D0, keyed by the consequent cluster's
  /// part (see DarConfig::degree_thresholds).
  std::vector<double> degree_thresholds;
  size_t max_antecedent = 3;
  size_t max_consequent = 2;
  size_t max_rules = 100000;
};

/// Rule-generation output plus diagnostics.
struct RuleGenResult {
  std::vector<DistanceRule> rules;
  /// True when max_rules stopped enumeration early (never silent).
  bool truncated = false;
  /// Number of assoc-set distance evaluations performed.
  int64_t degree_evaluations = 0;
};

/// Emits all DARs from the maximal cliques of the clustering graph,
/// following §6.2: for every ordered pair of cliques (Q1, Q2) — including
/// Q1 == Q2 — and every consequent subset C_Y' of Q2, emit
/// `C_X' => C_Y'` for every antecedent subset C_X' of the intersection of
/// `assoc(C_Yj) = {C_X in Q1 : D(C_Yj[Yj], C_X[Yj]) <= D0}` over C_Y',
/// with all attribute sets pairwise disjoint. Duplicate rules arising from
/// overlapping cliques are emitted once, with arity bounded by the options.
RuleGenResult GenerateDistanceRules(
    const ClusterSet& clusters,
    const std::vector<std::vector<size_t>>& cliques,
    const RuleGenOptions& options);

/// The degree of association of a concrete rule `antecedent => consequent`
/// under metric `m`: max over pairs of D(C_Yj[Yj], C_Xi[Yj]). Exposed for
/// tests and for evaluating user-specified rules (Figure 2 / Figure 4
/// scenarios).
double DegreeOfAssociation(const ClusterSet& clusters,
                           const std::vector<size_t>& antecedent,
                           const std::vector<size_t>& consequent,
                           ClusterMetric m);

}  // namespace dar

#endif  // DAR_CORE_RULE_GEN_H_
