#ifndef DAR_CORE_ADVISOR_H_
#define DAR_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace dar {

/// Controls for threshold suggestion.
struct AdvisorOptions {
  /// Rows sampled for the distance statistics (uniform without
  /// replacement; the whole relation if smaller).
  size_t sample_size = 1000;
  uint64_t seed = 7;
  /// Phase-I diameter = this multiple of the median nearest-neighbour
  /// distance within the sample (clusters should absorb neighbours, not
  /// bridge gaps).
  double nn_multiplier = 4.0;
  /// Phase-II density/degree thresholds = this fraction of the part's RMS
  /// spread (inter-cluster image distances live on the spread scale once
  /// clusters absorb any outliers; see EXPERIMENTS.md).
  double spread_fraction = 0.8;
};

/// Suggested mining parameters with a human-readable rationale.
struct ThresholdAdvice {
  std::vector<double> initial_diameters;   // per part (Phase I, d0^X)
  std::vector<double> density_thresholds;  // per part (Phase II graph)
  /// Per-part D0 (degrees live on the consequent part's scale).
  std::vector<double> degree_thresholds;
  double degree_threshold = 0;  // scalar fallback (mean of the above)
  std::string rationale;
};

/// Suggests per-part thresholds from a data sample.
///
/// The paper notes (§1) that classical association-rule mining gives the
/// user "no guidance on selecting the confidence or support thresholds";
/// distance-based mining adds *more* knobs (d0^X per part, D0). This
/// advisor derives starting points from two robust scale statistics per
/// attribute set:
///
///  - the median nearest-neighbour distance (the within-cluster scale) for
///    the Phase-I diameter threshold, and
///  - the RMS spread (the between-cluster/image scale) for the Phase-II
///    density and degree thresholds.
///
/// Discrete-metric parts get the exact thresholds the theorems prescribe
/// (diameter 0, density/degree below 1). Suggestions are heuristics — a
/// starting point for the sensitivity sweeps in bench/, not an oracle.
Result<ThresholdAdvice> SuggestThresholds(const Relation& rel,
                                          const AttributePartition& partition,
                                          const AdvisorOptions& options = {});

}  // namespace dar

#endif  // DAR_CORE_ADVISOR_H_
