#include "core/advisor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>
#include <utility>
#include <sstream>

#include "common/random.h"
#include "relation/metric.h"

namespace dar {

namespace {

// Uniform sample of row indices without replacement.
std::vector<size_t> SampleRows(size_t num_rows, size_t sample_size,
                               Rng& rng) {
  if (sample_size >= num_rows) {
    std::vector<size_t> all(num_rows);
    for (size_t i = 0; i < num_rows; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm.
  std::vector<size_t> out;
  out.reserve(sample_size);
  std::vector<bool> chosen(num_rows, false);
  for (size_t j = num_rows - sample_size; j < num_rows; ++j) {
    size_t t = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(j)));
    if (chosen[t]) t = j;
    chosen[t] = true;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

namespace {

// Greedy leader clustering of `points` at radius `t`: every point joins the
// first leader within distance t, else becomes a new leader. Returns the
// number of leaders holding at least 1% of the points (noise-robust count).
size_t LeaderCount(const std::vector<std::vector<double>>& points,
                   MetricKind metric, double t) {
  std::vector<std::vector<double>> leaders;
  std::vector<size_t> mass;
  for (const auto& p : points) {
    bool assigned = false;
    for (size_t l = 0; l < leaders.size(); ++l) {
      if (PointDistance(metric, p, leaders[l]) <= t) {
        ++mass[l];
        assigned = true;
        break;
      }
    }
    if (!assigned) {
      leaders.push_back(p);
      mass.push_back(1);
    }
  }
  // 2% of the sample: suppresses leaders formed by scattered outliers.
  size_t min_mass = std::max<size_t>(2, points.size() / 50);
  size_t count = 0;
  for (size_t m : mass) {
    if (m >= min_mass) ++count;
  }
  return count;
}

// Threshold-persistence estimate of the within-cluster scale: sweep a
// geometric ladder of candidate thresholds and return the middle of the
// widest plateau where the (leader-)cluster count is stable and > 1.
// Returns 0 when no plateau exists (no multi-cluster structure detected).
double PersistentThreshold(const std::vector<std::vector<double>>& points,
                           MetricKind metric, double lo, double hi) {
  if (lo <= 0 || hi <= lo) return 0;
  constexpr int kRungs = 14;
  std::vector<double> ts(kRungs);
  std::vector<size_t> counts(kRungs);
  for (int k = 0; k < kRungs; ++k) {
    ts[k] = lo * std::pow(hi / lo, static_cast<double>(k) / (kRungs - 1));
    counts[k] = LeaderCount(points, metric, ts[k]);
  }
  // Widest run of rungs with a stable count. Strict equality first: a
  // tolerance of +-1 can chain together a slow drift at a fine scale into
  // a pseudo-plateau. Only when no strict plateau exists (scattered
  // outliers flickering the count by one) fall back to the tolerant scan.
  // Ties prefer the smaller cluster count — the coarser interpretation.
  auto widest = [&](int tolerance) {
    int best_start = -1, best_len = 0;
    for (int start = 0; start < kRungs; ++start) {
      if (counts[start] < 2) continue;
      int len = 1;
      while (start + len < kRungs && counts[start + len] >= 2 &&
             std::llabs(static_cast<long long>(counts[start + len]) -
                        static_cast<long long>(counts[start])) <=
                 tolerance) {
        ++len;
      }
      bool better =
          len > best_len ||
          (len == best_len && best_start >= 0 &&
           counts[start] < counts[best_start]);
      if (better) {
        best_len = len;
        best_start = start;
      }
    }
    return std::pair<int, int>(best_start, best_len);
  };
  auto [best_start, best_len] = widest(0);
  if (best_len < 2) std::tie(best_start, best_len) = widest(1);
  if (best_start < 0 || best_len < 2) return 0;
  // Geometric middle of the plateau.
  return std::sqrt(ts[best_start] * ts[best_start + best_len - 1]);
}

}  // namespace

Result<ThresholdAdvice> SuggestThresholds(
    const Relation& rel, const AttributePartition& partition,
    const AdvisorOptions& options) {
  if (rel.num_rows() < 2) {
    return Status::InvalidArgument("need at least 2 rows to advise");
  }
  if (options.sample_size < 2) {
    return Status::InvalidArgument("sample_size must be at least 2");
  }
  Rng rng(options.seed);
  std::vector<size_t> rows =
      SampleRows(rel.num_rows(), options.sample_size, rng);

  ThresholdAdvice advice;
  advice.initial_diameters.resize(partition.num_parts());
  advice.density_thresholds.resize(partition.num_parts());
  std::ostringstream rationale;
  double degree_sum = 0;
  size_t degree_terms = 0;

  std::vector<std::vector<double>> points(rows.size());
  std::vector<double> buf;
  for (size_t p = 0; p < partition.num_parts(); ++p) {
    const AttributeSet& part = partition.part(p);
    if (part.metric == MetricKind::kDiscrete) {
      // Theorems 5.1/5.2: diameter 0 keeps clusters single-valued; any
      // density/degree threshold below 1 distinguishes equal from unequal.
      advice.initial_diameters[p] = 0.0;
      advice.density_thresholds[p] = 0.5;
      rationale << part.label << ": discrete metric -> d0=0, density=0.5\n";
      continue;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      rel.ProjectRow(rows[i], part.columns, buf);
      points[i] = buf;
    }
    // Median nearest-neighbour distance (the sampling-density floor of the
    // threshold ladder).
    std::vector<double> nn(rows.size(),
                           std::numeric_limits<double>::infinity());
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t j = i + 1; j < rows.size(); ++j) {
        double d = PointDistance(part.metric, points[i], points[j]);
        nn[i] = std::min(nn[i], d);
        nn[j] = std::min(nn[j], d);
      }
    }
    size_t mid = nn.size() / 2;
    std::nth_element(nn.begin(), nn.begin() + mid, nn.end());
    double median_nn = nn[mid];

    // RMS spread about the sample centroid.
    std::vector<double> centroid(part.dimension(), 0.0);
    for (const auto& pt : points) {
      for (size_t d = 0; d < centroid.size(); ++d) centroid[d] += pt[d];
    }
    for (auto& v : centroid) v /= static_cast<double>(points.size());
    double spread2 = 0;
    for (const auto& pt : points) {
      spread2 += SquaredEuclidean(pt, centroid);
    }
    double spread = std::sqrt(spread2 / points.size());

    // Phase-I diameter: the threshold-persistence estimate — the middle of
    // the widest range of thresholds over which the sample's cluster count
    // is stable. (Nearest-neighbour distances alone shrink with sample
    // density, so they only set the ladder's floor.)
    // The ladder's leader clustering is O(S * leaders) per rung; a few
    // hundred points estimate the plateau just as well.
    std::vector<std::vector<double>> ladder_points(
        points.begin(),
        points.begin() + std::min<size_t>(points.size(), 300));
    double diameter = PersistentThreshold(
        ladder_points, part.metric,
        std::max(median_nn, 1e-9 * (spread + 1e-12)),
        spread > 0 ? spread : 1.0);
    bool from_plateau = diameter > 0;
    if (diameter <= 0) {
      // No multi-cluster structure detected: fall back to the
      // nearest-neighbour scale, floored by a sliver of the spread.
      diameter = std::max(options.nn_multiplier * median_nn, 0.01 * spread);
      if (diameter <= 0) diameter = 1.0;
    }
    double density = options.spread_fraction * spread;
    advice.initial_diameters[p] = diameter;
    advice.density_thresholds[p] = std::max(density, diameter);
    degree_sum += advice.density_thresholds[p];
    ++degree_terms;
    rationale << part.label << ": median NN dist=" << median_nn
              << ", RMS spread=" << spread << " -> d0=" << diameter
              << (from_plateau ? " (plateau)" : " (fallback)")
              << ", density=" << advice.density_thresholds[p] << "\n";
  }

  advice.degree_thresholds = advice.density_thresholds;
  advice.degree_threshold =
      degree_terms > 0 ? degree_sum / degree_terms : 0.5;
  rationale << "degree threshold D0 = mean density = "
            << advice.degree_threshold << "\n";
  advice.rationale = rationale.str();
  return advice;
}

}  // namespace dar
