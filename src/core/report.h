#ifndef DAR_CORE_REPORT_H_
#define DAR_CORE_REPORT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "core/miner_result.h"
#include "relation/partition.h"

namespace dar {

/// Serializes a mining result as JSON for downstream tools: the run's
/// thresholds, every frequent cluster (part, size, centroid, bounding box,
/// diameter) and every rule (cluster ids, degree, optional support).
/// Clusters are referenced by id from the rules, so the output is
/// self-contained.
std::string MiningResultToJson(const DarMiningResult& result,
                               const Schema& schema,
                               const AttributePartition& partition);

/// Writes MiningResultToJson to `out`.
Status WriteMiningReport(const DarMiningResult& result, const Schema& schema,
                         const AttributePartition& partition,
                         std::ostream& out);

/// Plain-text summary (counts, thresholds, the strongest rules) for logs
/// and CLIs. `max_rules` bounds the rule listing.
std::string MiningResultSummary(const DarMiningResult& result,
                                const Schema& schema,
                                const AttributePartition& partition,
                                size_t max_rules = 20);

}  // namespace dar

#endif  // DAR_CORE_REPORT_H_
