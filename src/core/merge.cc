#include "core/merge.h"

#include "common/stopwatch.h"

namespace dar {

Status MergeTrees(AcfTree& dst, const AcfTree& src,
                  telemetry::TelemetryContext telemetry) {
  Stopwatch watch;
  const AcfTreeStats before = src.Stats();
  DAR_RETURN_IF_ERROR(dst.MergeFrom(src));
  if (telemetry.enabled()) {
    telemetry.GetCounter("merge.tree_merges")->Increment(1);
    telemetry.GetCounter("merge.summaries")
        ->Increment(static_cast<int64_t>(before.num_leaf_entries));
    telemetry.GetCounter("merge.outliers")
        ->Increment(static_cast<int64_t>(before.num_outliers));
    telemetry.GetCounter("merge.mass")->Increment(before.points_inserted);
    telemetry
        .GetHistogram("merge.tree_seconds",
                      telemetry::Histogram::LatencyBounds())
        ->Record(watch.ElapsedSeconds());
  }
  return Status::OK();
}

Status MergeBuilders(Phase1Builder& dst, const Phase1Builder& src,
                     telemetry::TelemetryContext telemetry) {
  Stopwatch watch;
  const int64_t src_rows = src.rows_added();
  DAR_RETURN_IF_ERROR(dst.MergeFrom(src));
  if (telemetry.enabled()) {
    telemetry.GetCounter("merge.builder_merges")->Increment(1);
    telemetry.GetCounter("merge.rows")->Increment(src_rows);
    telemetry
        .GetHistogram("merge.builder_seconds",
                      telemetry::Histogram::LatencyBounds())
        ->Record(watch.ElapsedSeconds());
  }
  return Status::OK();
}

}  // namespace dar
