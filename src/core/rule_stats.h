#ifndef DAR_CORE_RULE_STATS_H_
#define DAR_CORE_RULE_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "core/model.h"
#include "core/rules.h"
#include "relation/partition.h"
#include "relation/relation.h"

namespace dar {

/// The 2x2 contingency table of one rule over a scanned relation, in the
/// form every classical interestingness measure consumes (Guillaume et
/// al., arXiv:1206.6741): of `total` scanned tuples, `antecedent` matched
/// every antecedent cluster, `consequent` matched every consequent
/// cluster, and `both` matched the whole rule (== the §6.2 support
/// count). A tuple "matches" a cluster when the §4.3.2 point-to-cluster
/// assignment puts it in that cluster on the cluster's part.
struct RuleStats {
  int64_t total = 0;
  int64_t antecedent = 0;
  int64_t consequent = 0;
  int64_t both = 0;
};

/// Fills one RuleStats per rule with a single pass over `rel`: each row is
/// assigned to one cluster per part once, then every rule's three match
/// counters are bumped from that shared assignment — the cost is one
/// assignment scan regardless of how many measures are later evaluated.
///
/// Row ranges are sharded on `executor` (null = serial) and the per-shard
/// integer counts are summed in shard order, so the result is bit-identical
/// at any thread count. This is the generalization of the §6.2 support
/// post-scan; Session::CountRuleSupport delegates here.
Result<std::vector<RuleStats>> ComputeRuleStats(
    const Relation& rel, const AttributePartition& partition,
    const ClusterSet& clusters, std::span<const DistanceRule> rules,
    Executor* executor);

}  // namespace dar

#endif  // DAR_CORE_RULE_STATS_H_
