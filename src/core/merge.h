#ifndef DAR_CORE_MERGE_H_
#define DAR_CORE_MERGE_H_

#include "birch/acf_tree.h"
#include "common/status.h"
#include "core/phase1_builder.h"
#include "telemetry/context.h"

namespace dar {

/// Summary-level merge primitives for distributed mining (ROADMAP item 3).
///
/// CF/ACF additivity (Eq. 3/7, Thm 6.1) makes Phase-I state over disjoint
/// tuple sets mergeable without rescanning data: the union's summary is the
/// re-insertion of one side's leaf clusters into the other, with outliers
/// re-queued for a fresh FinishScan decision and memory pressure handled by
/// the usual rebuild-threshold loop. These wrappers add `merge.*` telemetry
/// on top of AcfTree::MergeFrom / Phase1Builder::MergeFrom; both validate
/// structural compatibility and return a descriptive Status on mismatch,
/// and both re-validate the merged tree under -DDAR_VALIDATE_INVARIANTS.

/// Merges `src` (built over a disjoint tuple set) into `dst`. Records
/// merge.tree_merges / merge.summaries / merge.outliers / merge.mass
/// counters and a merge.tree_seconds histogram when `telemetry` is enabled.
Status MergeTrees(AcfTree& dst, const AcfTree& src,
                  telemetry::TelemetryContext telemetry = {});

/// Merges `src`'s Phase-I state (all per-part trees + row count) into
/// `dst`. Records merge.builder_merges / merge.rows and a
/// merge.builder_seconds histogram when `telemetry` is enabled.
Status MergeBuilders(Phase1Builder& dst, const Phase1Builder& src,
                     telemetry::TelemetryContext telemetry = {});

}  // namespace dar

#endif  // DAR_CORE_MERGE_H_
