#ifndef DAR_PERSIST_CODEC_H_
#define DAR_PERSIST_CODEC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "birch/acf_tree.h"
#include "common/executor.h"
#include "common/result.h"
#include "core/config.h"
#include "core/miner_result.h"
#include "core/model.h"
#include "core/observer.h"
#include "core/phase1_builder.h"
#include "persist/wire.h"
#include "relation/partition.h"
#include "relation/schema.h"
#include "telemetry/context.h"

namespace dar::persist {

/// Section codecs for the checkpoint container (checkpoint_io.h). Each
/// Encode* returns a complete section payload; each Decode* re-validates
/// everything it reads (counts against remaining bytes, enum ranges,
/// cross-references against the schema/partition/layout), because a CRC
/// only rules out accidental corruption of valid bytes — it does not make
/// the bytes trustworthy.
///
/// Decoded summaries are bit-exact: doubles round-trip as raw IEEE-754
/// bits, so re-mining a restored Phase1Builder yields rules bit-identical
/// to the original run (Thm 6.1: Phase II is a pure function of the ACF
/// summaries).

// --- schema / dictionaries / partition / config ---

[[nodiscard]] std::string EncodeSchemaSection(const Schema& schema);
Result<Schema> DecodeSchemaSection(std::string_view bytes);

[[nodiscard]] std::string EncodeDictionariesSection(
    std::span<const Dictionary> dictionaries);
Result<std::vector<Dictionary>> DecodeDictionariesSection(
    std::string_view bytes);

[[nodiscard]] std::string EncodePartitionSection(
    const AttributePartition& partition);
/// Rebuilds through AttributePartition::Make, so all of Make's validation
/// (disjointness, schema bounds, nominal/discrete agreement) re-runs.
Result<AttributePartition> DecodePartitionSection(std::string_view bytes,
                                                  const Schema& schema);

/// Serializes every numeric/vector knob. AcfTreeOptions::on_rebuild is a
/// std::function and is deliberately NOT serialized — restore re-wires
/// hooks from the restoring session (see stream_checkpoint.cc).
[[nodiscard]] std::string EncodeConfigSection(const DarConfig& config);
Result<DarConfig> DecodeConfigSection(std::string_view bytes);

// --- shard provenance ---

/// Provenance of one input shard, recorded in the kShards section of
/// merged checkpoints (persist/merge.h) and of stream checkpoints whose
/// StreamConfig::shard_id was set.
struct ShardInfo {
  /// Caller-assigned shard identity; -1 = anonymous. MergeCheckpoints
  /// requires non-negative ids to be unique across its inputs.
  int64_t shard_id = -1;
  /// Tuples this shard contributed.
  int64_t rows = 0;
};

[[nodiscard]] std::string EncodeShardsSection(
    std::span<const ShardInfo> shards);
Result<std::vector<ShardInfo>> DecodeShardsSection(std::string_view bytes);

// --- ACF-trees and Phase1Builder ---

/// Exact structural serialization of one tree: options, threshold,
/// counters, outlier buffers, then a preorder walk of the node structure.
/// Deliberately NOT a re-insertion log — InsertSummary could merge or
/// reorder entries, and ExtractClusters() order (hence cluster ids, hence
/// rule identities) must survive a round-trip bit-identically.
void EncodeTree(const AcfTree& tree, WireWriter& w);

/// Rebuilds a tree against `layout` (decoded images are validated against
/// it). When DAR_VALIDATE_INVARIANTS is defined the decoded tree is
/// additionally run through AcfTree::ValidateInvariants, so a CRC-valid
/// but semantically corrupt tree (e.g. version-skewed bytes) fails here
/// with the offending node path in the error.
Result<std::unique_ptr<AcfTree>> DecodeTree(
    WireReader& r, std::shared_ptr<const AcfLayout> layout,
    size_t expect_part);

[[nodiscard]] std::string EncodeBuilderSection(const Phase1Builder& builder);

/// Restores a builder ready to absorb more rows. `config` is the
/// *restoring* session's config — pass the original config for exact
/// continuation, or a config with different d0/frequency thresholds for
/// warm re-mining over the same summaries without data access. Tree
/// structure/options come from the file; on_rebuild hooks are re-wired
/// from `config.tree.on_rebuild` and `observer` exactly as
/// Phase1Builder::Make wires them.
Result<Phase1Builder> DecodeBuilderSection(
    std::string_view bytes, const DarConfig& config, const Schema& schema,
    const AttributePartition& partition, Executor* executor = nullptr,
    MiningObserver* observer = nullptr,
    telemetry::TelemetryContext telemetry = {});

// --- mining results (RuleSnapshot payload) ---

/// Generation + rows + Phase1Result + Phase2Result. dar_persist does not
/// link dar_stream, so the RuleSnapshot object itself is (re)assembled by
/// the stream layer from these parts.
[[nodiscard]] std::string EncodeResultsSection(uint64_t generation,
                                               int64_t rows_ingested,
                                               const Phase1Result& phase1,
                                               const Phase2Result& phase2);

struct DecodedResults {
  uint64_t generation = 0;
  int64_t rows_ingested = 0;
  Phase1Result phase1;
  Phase2Result phase2;
};
Result<DecodedResults> DecodeResultsSection(std::string_view bytes);

}  // namespace dar::persist

#endif  // DAR_PERSIST_CODEC_H_
