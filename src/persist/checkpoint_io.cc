#include "persist/checkpoint_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "persist/wire.h"

namespace dar::persist {

std::string_view SectionName(uint32_t id) {
  switch (static_cast<SectionId>(id)) {
    case SectionId::kConfig:
      return "config";
    case SectionId::kSchema:
      return "schema";
    case SectionId::kPartition:
      return "partition";
    case SectionId::kDictionaries:
      return "dictionaries";
    case SectionId::kStreamState:
      return "stream_state";
    case SectionId::kBuilder:
      return "builder";
    case SectionId::kSnapshot:
      return "snapshot";
    case SectionId::kShards:
      return "shards";
    case SectionId::kRetainedRows:
      return "retained_rows";
  }
  return "unknown";
}

void CheckpointWriter::AddSection(SectionId id, std::string payload) {
  sections_.push_back({static_cast<uint32_t>(id), std::move(payload)});
}

std::string CheckpointWriter::Serialize() const {
  WireWriter w;
  w.Raw(std::string_view(kCheckpointMagic, sizeof(kCheckpointMagic)));
  w.U32(kFormatVersion);
  w.U32(static_cast<uint32_t>(sections_.size()));
  w.U32(Crc32(std::string_view(w.bytes()).substr(0, 16)));
  for (const Section& s : sections_) {
    // The section CRC (format v2) covers the serialized id + length header
    // and the payload, so corruption of the framing itself is detected —
    // not just payload bit flips.
    const size_t section_start = w.bytes().size();
    w.U32(s.id);
    w.U64(s.payload.size());
    w.Raw(s.payload);
    w.U32(Crc32(std::string_view(w.bytes()).substr(section_start)));
  }
  return std::move(w).Take();
}

Status CheckpointWriter::WriteToFile(const std::string& path,
                                     size_t* bytes_written) const {
  const std::string bytes = Serialize();
  if (bytes_written != nullptr) *bytes_written = bytes.size();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open '" + tmp + "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::IOError("write to '" + tmp + "' failed");
    }
  }
  // rename(2) within a filesystem is atomic: readers observe either the
  // previous checkpoint or the complete new one, never a prefix.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

Result<CheckpointReader> CheckpointReader::Parse(std::string bytes) {
  CheckpointReader reader;
  reader.bytes_ = std::move(bytes);
  const std::string_view data = reader.bytes_;

  if (data.size() < kHeaderBytes) {
    return Status::InvalidArgument(
        "not a DAR checkpoint: " + std::to_string(data.size()) +
        " bytes is shorter than the " + std::to_string(kHeaderBytes) +
        "-byte header");
  }
  if (data.substr(0, sizeof(kCheckpointMagic)) !=
      std::string_view(kCheckpointMagic, sizeof(kCheckpointMagic))) {
    return Status::InvalidArgument("not a DAR checkpoint (bad magic)");
  }

  WireReader header(data.substr(sizeof(kCheckpointMagic),
                                kHeaderBytes - sizeof(kCheckpointMagic)));
  DAR_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  DAR_ASSIGN_OR_RETURN(uint32_t section_count, header.U32());
  DAR_ASSIGN_OR_RETURN(uint32_t header_crc, header.U32());
  if (Crc32(data.substr(0, 16)) != header_crc) {
    return Status::InvalidArgument(
        "checkpoint header CRC mismatch (corrupted header)");
  }
  if (version > kFormatVersion) {
    return Status::InvalidArgument(
        "checkpoint format_version " + std::to_string(version) +
        " is newer than supported version " + std::to_string(kFormatVersion) +
        " — upgrade the library to read this file");
  }
  if (version == 0) {
    return Status::InvalidArgument("checkpoint format_version 0 is invalid");
  }
  reader.format_version_ = version;

  WireReader body(data.substr(kHeaderBytes));
  size_t offset = kHeaderBytes;
  for (uint32_t i = 0; i < section_count; ++i) {
    const size_t section_start = offset;
    DAR_ASSIGN_OR_RETURN(uint32_t id, body.U32());
    DAR_ASSIGN_OR_RETURN(uint64_t len, body.U64());
    offset += 12;
    if (len > body.remaining()) {
      return Status::InvalidArgument(
          "checkpoint truncated: section " + std::to_string(id) + " (" +
          std::string(SectionName(id)) + ") claims " + std::to_string(len) +
          " payload bytes but only " + std::to_string(body.remaining()) +
          " remain");
    }
    DAR_ASSIGN_OR_RETURN(WireReader payload,
                         body.Slice(static_cast<size_t>(len)));
    (void)payload;
    DAR_ASSIGN_OR_RETURN(uint32_t crc, body.U32());
    // Format v2 guards the section header (id + length) too; v1 covered
    // the payload only, so a flipped id bit could demote a known section
    // to an ignorable unknown one without tripping any check.
    const std::string_view crc_bytes =
        version >= 2
            ? data.substr(section_start, 12 + static_cast<size_t>(len))
            : data.substr(offset, static_cast<size_t>(len));
    if (Crc32(crc_bytes) != crc) {
      return Status::InvalidArgument(
          "checkpoint section " + std::to_string(id) + " (" +
          std::string(SectionName(id)) + ") failed its CRC check "
          "(corrupted section)");
    }
    for (uint32_t seen : reader.section_ids_) {
      if (seen == id) {
        return Status::InvalidArgument(
            "checkpoint contains duplicate section " + std::to_string(id) +
            " (" + std::string(SectionName(id)) + ")");
      }
    }
    reader.section_ids_.push_back(id);
    reader.spans_.emplace_back(offset, static_cast<size_t>(len));
    offset += static_cast<size_t>(len) + 4;
  }
  if (body.remaining() != 0) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(body.remaining()) +
        " trailing bytes after the last section");
  }
  return reader;
}

Result<CheckpointReader> CheckpointReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open checkpoint '" + path +
                           "' for reading");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read of checkpoint '" + path + "' failed");
  }
  auto parsed = Parse(std::move(buf).str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  "'" + path + "': " + parsed.status().message());
  }
  return parsed;
}

bool CheckpointReader::HasSection(SectionId id) const {
  for (uint32_t seen : section_ids_) {
    if (seen == static_cast<uint32_t>(id)) return true;
  }
  return false;
}

Result<std::string_view> CheckpointReader::Section(SectionId id) const {
  for (size_t i = 0; i < section_ids_.size(); ++i) {
    if (section_ids_[i] == static_cast<uint32_t>(id)) {
      return std::string_view(bytes_).substr(spans_[i].first,
                                             spans_[i].second);
    }
  }
  return Status::NotFound("checkpoint has no '" +
                          std::string(SectionName(static_cast<uint32_t>(id))) +
                          "' section");
}

}  // namespace dar::persist
