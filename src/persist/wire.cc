#include "persist/wire.h"

#include <array>
#include <cstring>

namespace dar::persist {

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

Status WireReader::Need(size_t n, const char* what) const {
  if (remaining() < n) {
    return Status::OutOfRange(
        std::string("short read: need ") + std::to_string(n) + " bytes for " +
        what + ", have " + std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> WireReader::U8() {
  DAR_RETURN_IF_ERROR(Need(1, "u8"));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> WireReader::U32() {
  DAR_RETURN_IF_ERROR(Need(4, "u32"));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::U64() {
  DAR_RETURN_IF_ERROR(Need(8, "u64"));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int32_t> WireReader::I32() {
  DAR_ASSIGN_OR_RETURN(uint32_t v, U32());
  return static_cast<int32_t>(v);
}

Result<int64_t> WireReader::I64() {
  DAR_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> WireReader::F64() {
  DAR_ASSIGN_OR_RETURN(uint64_t v, U64());
  return std::bit_cast<double>(v);
}

Result<std::string> WireReader::Str() {
  DAR_ASSIGN_OR_RETURN(uint32_t len, U32());
  DAR_RETURN_IF_ERROR(Need(len, "string body"));
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Result<WireReader> WireReader::Slice(size_t len) {
  DAR_RETURN_IF_ERROR(Need(len, "sub-block"));
  WireReader sub(data_.substr(pos_, len));
  pos_ += len;
  return sub;
}

Status WireReader::ExpectEnd(std::string_view what) const {
  if (remaining() != 0) {
    return Status::InvalidArgument(
        std::string(what) + ": " + std::to_string(remaining()) +
        " trailing bytes after the last field");
  }
  return Status::OK();
}

namespace {

// Table-driven CRC-32 (reflected 0xEDB88320, init/xorout 0xFFFFFFFF) —
// matches zlib's crc32(), which dar_ckpt.py reproduces with binascii.
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dar::persist
