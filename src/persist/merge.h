#ifndef DAR_PERSIST_MERGE_H_
#define DAR_PERSIST_MERGE_H_

#include <span>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "core/config.h"
#include "core/observer.h"
#include "core/phase1_builder.h"
#include "persist/codec.h"
#include "relation/partition.h"
#include "relation/schema.h"
#include "telemetry/context.h"

namespace dar::persist {

/// Checkpoint-level shard merging: the persist container format doubles as
/// the wire format of distributed mining (ROADMAP item 3). Worker
/// processes mine disjoint data shards and SaveCheckpoint their Phase-I
/// state; MergeCheckpoints decodes the checkpoints one at a time,
/// cross-checks compatibility, and folds the per-part ACF-trees into one
/// builder by ACF additivity (Eq. 3/7) — the coordinator never sees a
/// tuple. See DESIGN.md "Distributed mining" for the compatibility policy.

/// Knobs for MergeCheckpoints. All pointers are optional, non-owning and
/// must outlive the returned builder.
struct MergeOptions {
  /// Config the merged builder is rebuilt under; null means the inputs'
  /// own (shared) saved config. Passing a different config warm-re-mines
  /// the merged summaries under new thresholds, exactly like
  /// Session::RestoreCheckpoint.
  const DarConfig* config = nullptr;
  /// Executor for the merged builder (part-parallel merge + Finish).
  Executor* executor = nullptr;
  /// Observer wired into the merged builder's rebuild hooks.
  MiningObserver* observer = nullptr;
  /// Records merge.* counters/histograms when enabled.
  telemetry::TelemetryContext telemetry;
};

/// A merged multi-shard Phase-I state plus everything needed to interpret
/// or re-persist it. Write it back out with WriteMergedCheckpoint, or run
/// Phase II on `std::move(builder).Finish()` (Coordinator::
/// MineFromCheckpoints does both ends for you).
struct MergedCheckpoint {
  /// The inputs' shared saved config (NOT MergeOptions::config).
  DarConfig config;
  Schema schema;
  AttributePartition partition;
  /// Reconciled dictionaries: per column, the longest of the inputs'
  /// dictionaries (each must be a prefix of the longest — codes are baked
  /// into the summaries and cannot be remapped).
  std::vector<Dictionary> dictionaries;
  /// Union of the inputs' shard provenance, in input order. Inputs without
  /// a shards section contribute one anonymous entry {-1, rows}.
  std::vector<ShardInfo> shards;
  /// The merged Phase-I state over the union of all shards' tuples.
  Phase1Builder builder;
};

/// Merges N shard checkpoints. Every incompatibility is a descriptive
/// error Status naming the offending file(s): schema mismatch, partition
/// mismatch, config mismatch (first differing knob), irreconcilable
/// dictionaries, empty shards (0 rows), duplicate non-negative shard ids,
/// and version-skewed or corrupt containers (via CheckpointReader).
Result<MergedCheckpoint> MergeCheckpoints(std::span<const std::string> paths,
                                          const MergeOptions& options = {});

/// Persists a merged checkpoint atomically: kConfig/kSchema/kPartition/
/// [kDictionaries]/kBuilder/kShards. Merged checkpoints are coordinator
/// artifacts — they carry no stream state or rule snapshot — but are
/// themselves valid MergeCheckpoints inputs, so merging can proceed in
/// trees of any shape.
Status WriteMergedCheckpoint(const MergedCheckpoint& merged,
                             const std::string& path);

}  // namespace dar::persist

#endif  // DAR_PERSIST_MERGE_H_
