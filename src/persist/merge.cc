#include "persist/merge.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/stopwatch.h"
#include "core/coordinator.h"
#include "core/merge.h"
#include "core/session.h"
#include "persist/checkpoint_io.h"

namespace dar::persist {
namespace {

Status Contextualize(const std::string& path, const Status& status) {
  return {status.code(), "'" + path + "': " + status.message()};
}

/// Name of the first knob on which the two configs disagree, or "" when
/// they agree on every serialized knob (tree.on_rebuild is a process-local
/// hook and is never serialized or compared).
std::string FirstConfigDiff(const DarConfig& a, const DarConfig& b) {
  if (a.memory_budget_bytes != b.memory_budget_bytes)
    return "memory_budget_bytes";
  if (a.frequency_fraction != b.frequency_fraction)
    return "frequency_fraction";
  if (a.outlier_fraction != b.outlier_fraction) return "outlier_fraction";
  if (a.initial_diameters != b.initial_diameters) return "initial_diameters";
  if (a.tree.branching_factor != b.tree.branching_factor)
    return "tree.branching_factor";
  if (a.tree.leaf_capacity != b.tree.leaf_capacity)
    return "tree.leaf_capacity";
  if (a.tree.initial_threshold != b.tree.initial_threshold)
    return "tree.initial_threshold";
  if (a.tree.memory_budget_bytes != b.tree.memory_budget_bytes)
    return "tree.memory_budget_bytes";
  if (a.tree.threshold_growth != b.tree.threshold_growth)
    return "tree.threshold_growth";
  if (a.tree.outlier_entry_min_n != b.tree.outlier_entry_min_n)
    return "tree.outlier_entry_min_n";
  if (a.tree.max_rebuilds_per_insert != b.tree.max_rebuilds_per_insert)
    return "tree.max_rebuilds_per_insert";
  if (a.refine_clusters != b.refine_clusters) return "refine_clusters";
  if (a.metric != b.metric) return "metric";
  if (a.degree_threshold != b.degree_threshold) return "degree_threshold";
  if (a.degree_thresholds != b.degree_thresholds)
    return "degree_thresholds";
  if (a.density_thresholds != b.density_thresholds)
    return "density_thresholds";
  if (a.phase2_leniency != b.phase2_leniency) return "phase2_leniency";
  if (a.prune_low_density_images != b.prune_low_density_images)
    return "prune_low_density_images";
  if (a.max_antecedent != b.max_antecedent) return "max_antecedent";
  if (a.max_consequent != b.max_consequent) return "max_consequent";
  if (a.max_rules != b.max_rules) return "max_rules";
  if (a.max_cliques != b.max_cliques) return "max_cliques";
  if (a.count_rule_support != b.count_rule_support)
    return "count_rule_support";
  return "";
}

bool PartitionsEqual(const AttributePartition& a,
                     const AttributePartition& b) {
  if (a.num_parts() != b.num_parts()) return false;
  for (size_t p = 0; p < a.num_parts(); ++p) {
    if (a.part(p).columns != b.part(p).columns ||
        a.part(p).metric != b.part(p).metric) {
      return false;
    }
  }
  return true;
}

/// Everything decoded from one shard checkpoint except the builder, whose
/// (large) payload is re-fetched from `reader` once the effective config
/// is known.
struct ShardMeta {
  CheckpointReader reader;
  DarConfig config;
  Schema schema;
  AttributePartition partition;
  std::vector<Dictionary> dictionaries;
  std::vector<ShardInfo> shards;
  bool has_shards = false;
};

Result<ShardMeta> LoadShardMeta(const std::string& path) {
  DAR_ASSIGN_OR_RETURN(CheckpointReader reader, CheckpointReader::Open(path));
  DAR_ASSIGN_OR_RETURN(std::string_view config_bytes,
                       reader.Section(SectionId::kConfig));
  DAR_ASSIGN_OR_RETURN(DarConfig config, DecodeConfigSection(config_bytes));
  DAR_ASSIGN_OR_RETURN(std::string_view schema_bytes,
                       reader.Section(SectionId::kSchema));
  DAR_ASSIGN_OR_RETURN(Schema schema, DecodeSchemaSection(schema_bytes));
  DAR_ASSIGN_OR_RETURN(std::string_view partition_bytes,
                       reader.Section(SectionId::kPartition));
  DAR_ASSIGN_OR_RETURN(AttributePartition partition,
                       DecodePartitionSection(partition_bytes, schema));
  std::vector<Dictionary> dictionaries;
  if (reader.HasSection(SectionId::kDictionaries)) {
    DAR_ASSIGN_OR_RETURN(std::string_view dict_bytes,
                         reader.Section(SectionId::kDictionaries));
    DAR_ASSIGN_OR_RETURN(dictionaries,
                         DecodeDictionariesSection(dict_bytes));
  }
  std::vector<ShardInfo> shards;
  bool has_shards = false;
  if (reader.HasSection(SectionId::kShards)) {
    DAR_ASSIGN_OR_RETURN(std::string_view shard_bytes,
                         reader.Section(SectionId::kShards));
    DAR_ASSIGN_OR_RETURN(shards, DecodeShardsSection(shard_bytes));
    has_shards = true;
  }
  ShardMeta meta{std::move(reader), std::move(config),   std::move(schema),
                 std::move(partition), std::move(dictionaries),
                 std::move(shards), has_shards};
  return meta;
}

/// Folds `from` into `into` under the prefix rule: codes are baked into
/// the shards' summaries and cannot be remapped, so per column the shorter
/// dictionary must be a code-for-code prefix of the longer, which wins.
Status ReconcileDictionaries(std::vector<Dictionary>& into,
                             const std::vector<Dictionary>& from,
                             const std::string& path) {
  if (from.empty()) return Status::OK();
  if (into.empty()) {
    into = from;
    return Status::OK();
  }
  if (into.size() != from.size()) {
    return Status::InvalidArgument(
        "'" + path + "': has " + std::to_string(from.size()) +
        " dictionaries but earlier checkpoints have " +
        std::to_string(into.size()));
  }
  for (size_t d = 0; d < into.size(); ++d) {
    const size_t common = std::min(into[d].size(), from[d].size());
    for (size_t code = 0; code < common; ++code) {
      const std::string a =
          into[d].Decode(static_cast<double>(code)).ValueOrDie();
      const std::string b =
          from[d].Decode(static_cast<double>(code)).ValueOrDie();
      if (a != b) {
        return Status::InvalidArgument(
            "'" + path + "': dictionary " + std::to_string(d) +
            " maps code " + std::to_string(code) + " to '" + b +
            "' but earlier checkpoints map it to '" + a +
            "'; nominal codes are baked into the summaries and cannot be "
            "remapped");
      }
    }
    if (from[d].size() > into[d].size()) into[d] = from[d];
  }
  return Status::OK();
}

}  // namespace

Result<MergedCheckpoint> MergeCheckpoints(std::span<const std::string> paths,
                                          const MergeOptions& options) {
  if (paths.empty()) {
    return Status::InvalidArgument(
        "MergeCheckpoints needs at least one checkpoint path");
  }
  Stopwatch watch;
  telemetry::TelemetryContext telemetry = options.telemetry;

  auto first_or = LoadShardMeta(paths[0]);
  if (!first_or.ok()) return Contextualize(paths[0], first_or.status());
  ShardMeta first = std::move(first_or).ValueOrDie();

  // The merged builder is rebuilt under the caller's config when given
  // (warm re-mine, same semantics as Session::RestoreCheckpoint) and the
  // inputs' own shared config otherwise.
  const DarConfig& effective =
      options.config != nullptr ? *options.config : first.config;
  DAR_RETURN_IF_ERROR(effective.Validate());

  DAR_ASSIGN_OR_RETURN(std::string_view builder_bytes,
                       first.reader.Section(SectionId::kBuilder));
  auto builder_or = DecodeBuilderSection(
      builder_bytes, effective, first.schema, first.partition,
      options.executor, options.observer, telemetry);
  if (!builder_or.ok()) return Contextualize(paths[0], builder_or.status());
  Phase1Builder merged = std::move(builder_or).ValueOrDie();
  if (merged.rows_added() == 0) {
    return Status::InvalidArgument("'" + paths[0] +
                                   "': shard checkpoint is empty (0 rows)");
  }

  std::vector<Dictionary> dictionaries = std::move(first.dictionaries);
  std::vector<ShardInfo> shards = std::move(first.shards);
  // `provenance_path[k]` names the file that contributed shards[k], for
  // the duplicate-id diagnostics below.
  std::vector<std::string> provenance_path(shards.size(), paths[0]);
  if (!first.has_shards) {
    shards.push_back({-1, merged.rows_added()});
    provenance_path.push_back(paths[0]);
  }
  for (size_t i = 1; i < paths.size(); ++i) {
    auto meta_or = LoadShardMeta(paths[i]);
    if (!meta_or.ok()) return Contextualize(paths[i], meta_or.status());
    ShardMeta meta = std::move(meta_or).ValueOrDie();

    if (const std::string knob = FirstConfigDiff(first.config, meta.config);
        !knob.empty()) {
      return Status::InvalidArgument(
          "config mismatch: '" + paths[i] + "' disagrees with '" + paths[0] +
          "' on " + knob + "; shards must be mined under one config");
    }
    if (!(meta.schema == first.schema)) {
      return Status::InvalidArgument(
          "schema mismatch: '" + paths[i] +
          "' was mined over a different relation schema than '" + paths[0] +
          "'");
    }
    if (!PartitionsEqual(meta.partition, first.partition)) {
      return Status::InvalidArgument(
          "partition mismatch: '" + paths[i] +
          "' uses a different attribute partitioning than '" + paths[0] +
          "'");
    }
    DAR_RETURN_IF_ERROR(
        ReconcileDictionaries(dictionaries, meta.dictionaries, paths[i]));

    DAR_ASSIGN_OR_RETURN(std::string_view bytes,
                         meta.reader.Section(SectionId::kBuilder));
    // Shard builders are transient (consumed by the merge): decode them
    // serial and unobserved.
    auto shard_or = DecodeBuilderSection(bytes, effective, first.schema,
                                         first.partition);
    if (!shard_or.ok()) return Contextualize(paths[i], shard_or.status());
    Phase1Builder shard = std::move(shard_or).ValueOrDie();
    if (shard.rows_added() == 0) {
      return Status::InvalidArgument("'" + paths[i] +
                                     "': shard checkpoint is empty (0 rows)");
    }
    DAR_RETURN_IF_ERROR(MergeBuilders(merged, shard, telemetry));

    if (meta.has_shards) {
      for (const ShardInfo& s : meta.shards) {
        shards.push_back(s);
        provenance_path.push_back(paths[i]);
      }
    } else {
      shards.push_back({-1, shard.rows_added()});
      provenance_path.push_back(paths[i]);
    }
  }

  // Non-negative shard ids assert an identity; the same shard merged twice
  // would double-count its tuples, so refuse duplicates outright.
  std::map<int64_t, size_t> first_seen;
  for (size_t k = 0; k < shards.size(); ++k) {
    if (shards[k].shard_id < 0) continue;
    auto [it, inserted] = first_seen.emplace(shards[k].shard_id, k);
    if (!inserted) {
      return Status::InvalidArgument(
          "duplicate shard id " + std::to_string(shards[k].shard_id) +
          ": contributed by both '" + provenance_path[it->second] +
          "' and '" + provenance_path[k] +
          "'; merging the same shard twice would double-count its tuples");
    }
  }

  if (telemetry.enabled()) {
    telemetry.GetCounter("merge.checkpoints")
        ->Increment(static_cast<int64_t>(paths.size()));
    telemetry.GetCounter("merge.shards")
        ->Increment(static_cast<int64_t>(shards.size()));
    telemetry
        .GetHistogram("merge.seconds", telemetry::Histogram::LatencyBounds())
        ->Record(watch.ElapsedSeconds());
  }

  return MergedCheckpoint{std::move(first.config),
                          std::move(first.schema),
                          std::move(first.partition),
                          std::move(dictionaries),
                          std::move(shards),
                          std::move(merged)};
}

Status WriteMergedCheckpoint(const MergedCheckpoint& merged,
                             const std::string& path) {
  CheckpointWriter writer;
  writer.AddSection(SectionId::kConfig, EncodeConfigSection(merged.config));
  writer.AddSection(SectionId::kSchema, EncodeSchemaSection(merged.schema));
  writer.AddSection(SectionId::kPartition,
                    EncodePartitionSection(merged.partition));
  if (!merged.dictionaries.empty()) {
    writer.AddSection(SectionId::kDictionaries,
                      EncodeDictionariesSection(merged.dictionaries));
  }
  writer.AddSection(SectionId::kBuilder,
                    EncodeBuilderSection(merged.builder));
  writer.AddSection(SectionId::kShards, EncodeShardsSection(merged.shards));
  return writer.WriteToFile(path);
}

}  // namespace dar::persist

namespace dar {

// Defined here rather than in core/coordinator.cc because it layers on
// dar_persist (dar_core must not depend on it) — the same arrangement as
// Session::SaveCheckpoint / RestoreCheckpoint in src/stream/.
Result<MiningReport> Coordinator::MineFromCheckpoints(
    std::span<const std::string> paths) const {
  const Session& session = *session_;
  session.registry_->Reset();  // mirrors Mine: one call == one reported run
  telemetry::TelemetryContext telemetry(session.registry_.get());

  persist::MergeOptions options;
  options.config = &session.config_;
  options.executor = session.executor_.get();
  options.observer = session.observer_or_null();
  options.telemetry = telemetry;
  DAR_ASSIGN_OR_RETURN(persist::MergedCheckpoint merged,
                       persist::MergeCheckpoints(paths, options));

  MiningReport report;
  DAR_ASSIGN_OR_RETURN(report.result.phase1,
                       std::move(merged.builder).Finish());
  DAR_ASSIGN_OR_RETURN(report.result.phase2,
                       session.RunPhase2(report.result.phase1));
  // The data itself is not available here, so the optional §6.2 support
  // rescan (config.count_rule_support) cannot run: support counts stay at
  // their unset value.
  report.telemetry = session.registry_->TakeSnapshot();
  if (MiningObserver* observer = session.observer_or_null();
      observer != nullptr) {
    observer->OnRunComplete(report.telemetry);
  }
  return report;
}

}  // namespace dar
