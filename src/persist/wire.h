#ifndef DAR_PERSIST_WIRE_H_
#define DAR_PERSIST_WIRE_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace dar::persist {

/// Little-endian append-only encoder for the checkpoint wire format.
///
/// Every multi-byte value is written least-significant byte first,
/// independent of host endianness, so a checkpoint written on any machine
/// reads back on any other. Doubles are written as the raw IEEE-754 bit
/// pattern (via bit_cast to uint64_t): a round-trip reproduces the exact
/// bits, which is what makes restored summaries re-mine to bit-identical
/// rules (Thm 6.1 holds for the *exact* CF sums, not approximations).
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  /// u32 byte length followed by the raw bytes.
  void Str(std::string_view s);
  /// Raw bytes, no length prefix (for pre-encoded sub-blobs).
  void Raw(std::string_view s) { buf_.append(s); }

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] size_t size() const { return buf_.size(); }
  [[nodiscard]] std::string Take() { return std::move(buf_); }
  /// Empties the buffer but keeps its capacity, so one writer can encode
  /// a stream of messages (e.g. dar::serve response frames) without
  /// reallocating per message.
  void Clear() { buf_.clear(); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.
///
/// Every read returns a Result and fails with OutOfRange instead of
/// reading past the end — a truncated or bit-flipped checkpoint must
/// surface as a clean Status, never as UB. The underlying bytes must
/// outlive the reader.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int32_t> I32();
  Result<int64_t> I64();
  Result<double> F64();
  /// Reads a u32 length prefix, then that many bytes.
  Result<std::string> Str();

  /// Splits off a sub-reader over the next `len` bytes and advances past
  /// them; fails when fewer than `len` bytes remain.
  Result<WireReader> Slice(size_t len);

  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }

  /// Fails with InvalidArgument naming `what` when bytes remain — catches
  /// payloads with trailing garbage that still pass their CRC length.
  [[nodiscard]] Status ExpectEnd(std::string_view what) const;

 private:
  // OutOfRange unless `n` more bytes are available.
  [[nodiscard]] Status Need(size_t n, const char* what) const;

  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), implemented
/// locally so dar_persist has no external dependency.
[[nodiscard]] uint32_t Crc32(std::string_view data);

}  // namespace dar::persist

#endif  // DAR_PERSIST_WIRE_H_
