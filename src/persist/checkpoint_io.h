#ifndef DAR_PERSIST_CHECKPOINT_IO_H_
#define DAR_PERSIST_CHECKPOINT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dar::persist {

/// Checkpoint container format, version 2 (all integers little-endian):
///
///     offset 0   8 bytes   magic "DARCKPT\0"
///     offset 8   u32       format_version
///     offset 12  u32       section_count
///     offset 16  u32       CRC-32 of bytes [0, 16)   (header CRC)
///     offset 20  sections, back to back:
///                  u32  section id
///                  u64  payload length
///                  ...  payload bytes
///                  u32  CRC-32 of the section — the 12 header bytes
///                       (id + length, as serialized) followed by the
///                       payload bytes
///
/// Version 1 differed only in the section CRC: it covered the payload
/// bytes alone, leaving the id and length fields unguarded — a bit flip
/// in an optional section's id could silently turn it into an unknown
/// (skipped) section. Version-1 files are still read; new files are
/// always written as version 2.
///
/// Sections are independently CRC-guarded and length-prefixed, so a reader
/// can verify and skip sections it does not understand; ids it has never
/// heard of are tolerated (forward-compatible additions), but a
/// format_version above the library's is refused outright (the framing
/// itself may have changed).
///
/// Threading: CheckpointWriter and CheckpointReader are deliberately
/// lock-free by CONFINEMENT — each instance belongs to one thread (the
/// stream's writer thread, or whoever calls Open). They hold no mutex and
/// no guarded state, so the thread-safety analysis has nothing to check
/// here; sharing an instance across threads without external
/// synchronization is a caller bug, not a supported mode.
inline constexpr char kCheckpointMagic[8] = {'D', 'A', 'R', 'C',
                                             'K', 'P', 'T', '\0'};
inline constexpr uint32_t kFormatVersion = 2;
inline constexpr size_t kHeaderBytes = 20;

/// Well-known section ids. Values are part of the on-disk format — never
/// renumber; add new ids for new content.
enum class SectionId : uint32_t {
  kConfig = 1,        // DarConfig the checkpoint was taken under
  kSchema = 2,        // relation schema (attribute names + kinds)
  kPartition = 3,     // attribute partitioning (columns + metrics)
  kDictionaries = 4,  // nominal-column label dictionaries
  kStreamState = 5,   // StreamingMiner counters + StreamConfig
  kBuilder = 6,       // Phase1Builder state: per-part ACF-trees
  kSnapshot = 7,      // last published RuleSnapshot (optional)
  kShards = 8,        // shard provenance: (shard_id, rows) per input shard
  kRetainedRows = 9,  // tuples retained for the support post-scan (optional)
};

[[nodiscard]] std::string_view SectionName(uint32_t id);

/// Accumulates sections and writes the container atomically: the bytes go
/// to `<path>.tmp` first and are renamed over `path` only after a clean
/// close, so a crash mid-write never leaves a half-written checkpoint
/// where a reader expects a valid one.
class CheckpointWriter {
 public:
  /// Appends one section. Ids may repeat across calls only by caller
  /// error; CheckpointReader refuses duplicate ids.
  void AddSection(SectionId id, std::string payload);

  /// The complete container image (header + sections).
  [[nodiscard]] std::string Serialize() const;

  /// Serializes and writes atomically (write tmp, fsync-free rename).
  /// `bytes_written`, when non-null, receives the container size — so
  /// callers can report it without serializing a second time.
  [[nodiscard]] Status WriteToFile(const std::string& path,
                                   size_t* bytes_written = nullptr) const;

 private:
  struct Section {
    uint32_t id;
    std::string payload;
  };
  std::vector<Section> sections_;
};

/// Parses and verifies a checkpoint container. Every corruption mode —
/// truncation, bit flips, bad magic, future version, duplicate or
/// oversized sections, trailing bytes — is a descriptive error Status;
/// a CheckpointReader that parsed successfully guarantees every section
/// payload matched its CRC. The section *contents* are still untrusted
/// (a CRC protects against accidental corruption, not encoding bugs), so
/// the per-type decoders bounds-check everything again.
class CheckpointReader {
 public:
  /// Parses an in-memory container image (takes ownership of the bytes).
  static Result<CheckpointReader> Parse(std::string bytes);

  /// Reads and parses `path`.
  static Result<CheckpointReader> Open(const std::string& path);

  [[nodiscard]] uint32_t format_version() const { return format_version_; }

  [[nodiscard]] bool HasSection(SectionId id) const;

  /// The verified payload of section `id`; NotFound when absent. The view
  /// borrows from this reader and is invalidated with it.
  [[nodiscard]] Result<std::string_view> Section(SectionId id) const;

  /// Ids in file order (duplicates impossible after a successful Parse).
  [[nodiscard]] const std::vector<uint32_t>& section_ids() const {
    return section_ids_;
  }

  [[nodiscard]] size_t total_bytes() const { return bytes_.size(); }

 private:
  CheckpointReader() = default;

  std::string bytes_;
  uint32_t format_version_ = 0;
  std::vector<uint32_t> section_ids_;  // file order
  // Parallel to section_ids_: (offset, length) of each verified payload.
  std::vector<std::pair<size_t, size_t>> spans_;
};

}  // namespace dar::persist

#endif  // DAR_PERSIST_CHECKPOINT_IO_H_
