#ifndef DAR_PERSIST_PERSIST_PEER_H_
#define DAR_PERSIST_PERSIST_PEER_H_

#include <functional>
#include <memory>

#include "birch/acf.h"
#include "birch/acf_tree.h"
#include "birch/cf.h"
#include "common/result.h"
#include "core/phase1_builder.h"
#include "persist/wire.h"

namespace dar {

/// Serialization backdoor: the one `friend` the summary classes grant to
/// dar::persist, mirroring the InvariantTestPeer idiom. All methods are
/// defined in persist/codec.cc; everything else in the library goes
/// through the public codec functions in persist/codec.h, so the privates
/// of CfVector/Acf/AcfTree/Phase1Builder stay encapsulated everywhere
/// except this single, audited seam.
///
/// Decoding constructs objects through their public constructors first and
/// only then fills in state, so no code path ever observes a
/// partially-initialized tree: a decode either returns a fully formed
/// object or a Status, never a half-written one.
struct PersistPeer {
  // --- CfVector ---
  static void EncodeCf(const CfVector& cf, persist::WireWriter& w);
  static Result<CfVector> DecodeCf(persist::WireReader& r);

  // --- Acf (validated against `layout`) ---
  static void EncodeAcf(const Acf& acf, persist::WireWriter& w);
  static Result<Acf> DecodeAcf(persist::WireReader& r,
                               std::shared_ptr<const AcfLayout> layout);

  // --- AcfTree (exact structural walk; see codec.cc for the layout) ---
  static void EncodeTree(const AcfTree& tree, persist::WireWriter& w);
  static Result<std::unique_ptr<AcfTree>> DecodeTree(
      persist::WireReader& r, std::shared_ptr<const AcfLayout> layout,
      size_t expect_part,
      std::function<void(int, double)> on_rebuild);

  // --- Phase1Builder ---
  static void EncodeBuilder(const Phase1Builder& builder,
                            persist::WireWriter& w);
  static Result<Phase1Builder> DecodeBuilder(
      persist::WireReader& r, const DarConfig& config, const Schema& schema,
      const AttributePartition& partition, Executor* executor,
      MiningObserver* observer, telemetry::TelemetryContext telemetry);

 private:
  // Node-recursion helpers. AcfTree::Node is private, so these are member
  // templates: the template parameter carries the type into the (friend)
  // definitions in codec.cc without naming it here.
  template <typename Node>
  static void EncodeNode(const Node& node, persist::WireWriter& w);
  template <typename Node>
  static Result<std::unique_ptr<Node>> DecodeNode(
      persist::WireReader& r, const std::shared_ptr<const AcfLayout>& layout,
      size_t own_part, int depth, size_t& num_nodes, size_t& num_leaf_entries);
};

}  // namespace dar

#endif  // DAR_PERSIST_PERSIST_PEER_H_
