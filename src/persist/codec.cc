#include "persist/codec.h"

#include <algorithm>
#include <utility>

#include "persist/persist_peer.h"

namespace dar {
namespace {

using persist::WireReader;
using persist::WireWriter;

// Reads `count` raw doubles (no length prefix; the caller knows the count).
Status ReadF64s(WireReader& r, size_t count, std::vector<double>& out,
                const char* what) {
  if (r.remaining() < 8 * count) {
    return Status::OutOfRange(std::string(what) + " truncated: need " +
                              std::to_string(8 * count) + " bytes, have " +
                              std::to_string(r.remaining()));
  }
  out.resize(count);
  for (size_t i = 0; i < count; ++i) {
    DAR_ASSIGN_OR_RETURN(out[i], r.F64());
  }
  return Status::OK();
}

void WriteF64Vec(WireWriter& w, std::span<const double> v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (double x : v) w.F64(x);
}

Result<std::vector<double>> ReadF64Vec(WireReader& r, const char* what) {
  DAR_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  std::vector<double> out;
  DAR_RETURN_IF_ERROR(ReadF64s(r, count, out, what));
  return out;
}

// Reads a u32 element count and refuses counts that could not possibly fit
// in the remaining bytes (each element needs >= `min_bytes_each`), so a
// corrupt count can never trigger a huge allocation.
Result<size_t> ReadCount(WireReader& r, size_t min_bytes_each,
                         const char* what) {
  DAR_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  if (static_cast<uint64_t>(count) * min_bytes_each > r.remaining()) {
    return Status::OutOfRange(
        std::string(what) + " count " + std::to_string(count) +
        " cannot fit in the " + std::to_string(r.remaining()) +
        " remaining bytes");
  }
  return static_cast<size_t>(count);
}

Result<MetricKind> ReadMetricKind(WireReader& r, const char* what) {
  DAR_ASSIGN_OR_RETURN(uint8_t raw, r.U8());
  if (raw > static_cast<uint8_t>(MetricKind::kDiscrete)) {
    return Status::InvalidArgument(std::string(what) + ": metric kind " +
                                   std::to_string(raw) + " is out of range");
  }
  return static_cast<MetricKind>(raw);
}

Result<bool> ReadBool(WireReader& r, const char* what) {
  DAR_ASSIGN_OR_RETURN(uint8_t raw, r.U8());
  if (raw > 1) {
    return Status::InvalidArgument(std::string(what) + ": boolean byte " +
                                   std::to_string(raw) + " is not 0 or 1");
  }
  return raw != 0;
}

void WriteTreeOptions(WireWriter& w, const AcfTreeOptions& o) {
  w.I32(o.branching_factor);
  w.I32(o.leaf_capacity);
  w.F64(o.initial_threshold);
  w.U64(o.memory_budget_bytes);
  w.F64(o.threshold_growth);
  w.I64(o.outlier_entry_min_n);
  w.I32(o.max_rebuilds_per_insert);
}

// on_rebuild is not on the wire; the caller re-wires it after decode.
Result<AcfTreeOptions> ReadTreeOptions(WireReader& r) {
  AcfTreeOptions o;
  DAR_ASSIGN_OR_RETURN(o.branching_factor, r.I32());
  DAR_ASSIGN_OR_RETURN(o.leaf_capacity, r.I32());
  DAR_ASSIGN_OR_RETURN(o.initial_threshold, r.F64());
  DAR_ASSIGN_OR_RETURN(uint64_t budget, r.U64());
  o.memory_budget_bytes = static_cast<size_t>(budget);
  DAR_ASSIGN_OR_RETURN(o.threshold_growth, r.F64());
  DAR_ASSIGN_OR_RETURN(o.outlier_entry_min_n, r.I64());
  DAR_ASSIGN_OR_RETURN(o.max_rebuilds_per_insert, r.I32());
  if (o.branching_factor < 2 || o.leaf_capacity < 1 ||
      o.memory_budget_bytes == 0) {
    return Status::InvalidArgument(
        "tree options out of range: branching_factor " +
        std::to_string(o.branching_factor) + ", leaf_capacity " +
        std::to_string(o.leaf_capacity) + ", memory_budget " +
        std::to_string(o.memory_budget_bytes));
  }
  return o;
}

// Per-Acf floor on the wire: own_part u32 + image-count u32 + per image at
// least a CF header (metric u8 + dim u32 + n i64).
constexpr size_t kMinAcfBytes = 4 + 4 + 13;

}  // namespace

// ---------------------------------------------------------------------------
// PersistPeer: CfVector
// ---------------------------------------------------------------------------

void PersistPeer::EncodeCf(const CfVector& cf, WireWriter& w) {
  w.U8(static_cast<uint8_t>(cf.metric_));
  w.U32(static_cast<uint32_t>(cf.dim()));
  w.I64(cf.n_);
  for (double v : cf.ls_) w.F64(v);
  for (double v : cf.ss_) w.F64(v);
  for (double v : cf.min_) w.F64(v);
  for (double v : cf.max_) w.F64(v);
  if (cf.metric_ == MetricKind::kDiscrete) {
    // std::map iterates keys in ascending order, so the histogram encoding
    // (and therefore the whole checkpoint) is canonical for a given state.
    for (const auto& hist : cf.hist_) {
      w.U32(static_cast<uint32_t>(hist.size()));
      for (const auto& [value, count] : hist) {
        w.F64(value);
        w.I64(count);
      }
    }
  }
}

Result<CfVector> PersistPeer::DecodeCf(WireReader& r) {
  DAR_ASSIGN_OR_RETURN(MetricKind metric, ReadMetricKind(r, "CF"));
  DAR_ASSIGN_OR_RETURN(uint32_t dim, r.U32());
  DAR_ASSIGN_OR_RETURN(int64_t n, r.I64());
  if (n < 0) {
    return Status::InvalidArgument("CF tuple count " + std::to_string(n) +
                                   " is negative");
  }
  // The four moment vectors alone need 32*dim bytes; checking before the
  // CfVector(dim, ...) constructor allocates keeps a corrupt dim from
  // requesting gigabytes.
  if (r.remaining() < 32ull * dim) {
    return Status::OutOfRange("CF of dimension " + std::to_string(dim) +
                              " truncated: need " + std::to_string(32ull * dim) +
                              " bytes, have " + std::to_string(r.remaining()));
  }
  CfVector cf(dim, metric);
  cf.n_ = n;
  DAR_RETURN_IF_ERROR(ReadF64s(r, dim, cf.ls_, "CF linear sums"));
  DAR_RETURN_IF_ERROR(ReadF64s(r, dim, cf.ss_, "CF squared sums"));
  DAR_RETURN_IF_ERROR(ReadF64s(r, dim, cf.min_, "CF minima"));
  DAR_RETURN_IF_ERROR(ReadF64s(r, dim, cf.max_, "CF maxima"));
  if (metric == MetricKind::kDiscrete) {
    for (size_t d = 0; d < dim; ++d) {
      DAR_ASSIGN_OR_RETURN(size_t entries,
                           ReadCount(r, 16, "CF histogram entry"));
      auto& hist = cf.hist_[d];
      for (size_t i = 0; i < entries; ++i) {
        DAR_ASSIGN_OR_RETURN(double value, r.F64());
        DAR_ASSIGN_OR_RETURN(int64_t count, r.I64());
        if (count < 0) {
          return Status::InvalidArgument("CF histogram count " +
                                         std::to_string(count) +
                                         " is negative");
        }
        hist[value] = count;
      }
      if (hist.size() != entries) {
        return Status::InvalidArgument(
            "CF histogram has duplicate value keys");
      }
    }
  }
  return cf;
}

// ---------------------------------------------------------------------------
// PersistPeer: Acf
// ---------------------------------------------------------------------------

void PersistPeer::EncodeAcf(const Acf& acf, WireWriter& w) {
  w.U32(static_cast<uint32_t>(acf.own_part_));
  w.U32(static_cast<uint32_t>(acf.images_.size()));
  for (const CfVector& image : acf.images_) EncodeCf(image, w);
}

Result<Acf> PersistPeer::DecodeAcf(WireReader& r,
                                   std::shared_ptr<const AcfLayout> layout) {
  DAR_ASSIGN_OR_RETURN(uint32_t own_part, r.U32());
  DAR_ASSIGN_OR_RETURN(uint32_t num_images, r.U32());
  if (own_part >= layout->num_parts()) {
    return Status::InvalidArgument(
        "ACF own_part " + std::to_string(own_part) + " is outside the " +
        std::to_string(layout->num_parts()) + "-part layout");
  }
  if (num_images != layout->num_parts()) {
    return Status::InvalidArgument(
        "ACF has " + std::to_string(num_images) + " images, layout has " +
        std::to_string(layout->num_parts()) + " parts");
  }
  std::vector<CfVector> images;
  images.reserve(num_images);
  for (uint32_t p = 0; p < num_images; ++p) {
    DAR_ASSIGN_OR_RETURN(CfVector image, DecodeCf(r));
    const PartSpec& spec = layout->parts[p];
    if (image.dim() != spec.dim || image.metric() != spec.metric) {
      return Status::InvalidArgument(
          "ACF image " + std::to_string(p) + " has dim " +
          std::to_string(image.dim()) + "/metric " +
          std::to_string(static_cast<int>(image.metric())) +
          ", layout expects dim " + std::to_string(spec.dim) + "/metric " +
          std::to_string(static_cast<int>(spec.metric)));
    }
    images.push_back(std::move(image));
  }
  Acf acf(std::move(layout), own_part);
  acf.images_ = std::move(images);
  return acf;
}

// ---------------------------------------------------------------------------
// PersistPeer: AcfTree nodes (preorder structural walk)
// ---------------------------------------------------------------------------

template <typename Node>
void PersistPeer::EncodeNode(const Node& node, WireWriter& w) {
  w.U8(node.is_leaf ? 1 : 0);
  if (node.is_leaf) {
    w.U32(static_cast<uint32_t>(node.entries.size()));
    for (const Acf& entry : node.entries) EncodeAcf(entry, w);
  } else {
    w.U32(static_cast<uint32_t>(node.children.size()));
    for (const auto& child : node.children) {
      EncodeCf(child.cf, w);
      EncodeNode(*child.child, w);
    }
  }
}

template <typename Node>
Result<std::unique_ptr<Node>> PersistPeer::DecodeNode(
    WireReader& r, const std::shared_ptr<const AcfLayout>& layout,
    size_t own_part, int depth, size_t& num_nodes,
    size_t& num_leaf_entries) {
  // The tree is height-balanced; a depth beyond any plausible height means
  // the bytes are corrupt (or adversarial) and recursing further would
  // only risk stack exhaustion.
  if (depth > 64) {
    return Status::InvalidArgument(
        "tree node nesting exceeds 64 levels — corrupt checkpoint");
  }
  DAR_ASSIGN_OR_RETURN(bool is_leaf, ReadBool(r, "node is_leaf flag"));
  auto node = std::make_unique<Node>();
  node->is_leaf = is_leaf;
  ++num_nodes;
  if (is_leaf) {
    DAR_ASSIGN_OR_RETURN(size_t entries,
                         ReadCount(r, kMinAcfBytes, "leaf entry"));
    node->entries.reserve(entries);
    for (size_t i = 0; i < entries; ++i) {
      DAR_ASSIGN_OR_RETURN(Acf entry, DecodeAcf(r, layout));
      if (entry.own_part() != own_part) {
        return Status::InvalidArgument(
            "leaf entry belongs to part " + std::to_string(entry.own_part()) +
            ", tree clusters part " + std::to_string(own_part));
      }
      node->entries.push_back(std::move(entry));
    }
    num_leaf_entries += entries;
  } else {
    DAR_ASSIGN_OR_RETURN(size_t children,
                         ReadCount(r, 14, "internal child"));
    if (children == 0) {
      return Status::InvalidArgument(
          "internal tree node with zero children — corrupt checkpoint");
    }
    node->children.reserve(children);
    const PartSpec& own_spec = layout->parts[own_part];
    for (size_t i = 0; i < children; ++i) {
      DAR_ASSIGN_OR_RETURN(CfVector cf, DecodeCf(r));
      if (cf.dim() != own_spec.dim || cf.metric() != own_spec.metric) {
        return Status::InvalidArgument(
            "internal child CF has dim " + std::to_string(cf.dim()) +
            "/metric " + std::to_string(static_cast<int>(cf.metric())) +
            ", tree's own part expects dim " + std::to_string(own_spec.dim) +
            "/metric " + std::to_string(static_cast<int>(own_spec.metric)));
      }
      DAR_ASSIGN_OR_RETURN(
          std::unique_ptr<Node> child,
          DecodeNode<Node>(r, layout, own_part, depth + 1, num_nodes,
                           num_leaf_entries));
      typename std::remove_reference_t<decltype(node->children)>::value_type
          ref;
      ref.cf = std::move(cf);
      ref.child = std::move(child);
      node->children.push_back(std::move(ref));
    }
  }
  return node;
}

// ---------------------------------------------------------------------------
// PersistPeer: AcfTree
// ---------------------------------------------------------------------------

// Tree blob layout (fixed offsets through num_leaf_entries, which
// tools/dar_ckpt.py reads without a full ACF decoder):
//   0   u32  own_part
//   4   i32  branching_factor        |
//   8   i32  leaf_capacity            |
//   12  f64  initial_threshold        |
//   20  u64  memory_budget_bytes      |  AcfTreeOptions
//   28  f64  threshold_growth         |  (on_rebuild not serialized)
//   36  i64  outlier_entry_min_n      |
//   44  i32  max_rebuilds_per_insert /
//   48  f64  threshold
//   56  i32  rebuild_count
//   60  i64  split_count
//   68  i64  points_inserted
//   76  u64  num_nodes
//   84  u64  num_leaf_entries
//   92  outlier_buffer (u32 count + ACFs), outliers (u32 count + ACFs),
//       then the root node walk.
void PersistPeer::EncodeTree(const AcfTree& tree, WireWriter& w) {
  w.U32(static_cast<uint32_t>(tree.own_part_));
  WriteTreeOptions(w, tree.options_);
  w.F64(tree.threshold_);
  w.I32(tree.rebuild_count_);
  w.I64(tree.split_count_);
  w.I64(tree.points_inserted_);
  w.U64(tree.num_nodes_);
  w.U64(tree.num_leaf_entries_);
  w.U32(static_cast<uint32_t>(tree.outlier_buffer_.size()));
  for (const Acf& acf : tree.outlier_buffer_) EncodeAcf(acf, w);
  w.U32(static_cast<uint32_t>(tree.outliers_.size()));
  for (const Acf& acf : tree.outliers_) EncodeAcf(acf, w);
  EncodeNode(*tree.root_, w);
}

Result<std::unique_ptr<AcfTree>> PersistPeer::DecodeTree(
    WireReader& r, std::shared_ptr<const AcfLayout> layout,
    size_t expect_part, std::function<void(int, double)> on_rebuild) {
  if (layout == nullptr || expect_part >= layout->num_parts()) {
    return Status::InvalidArgument(
        "DecodeTree: expect_part " + std::to_string(expect_part) +
        " is outside the layout");
  }
  DAR_ASSIGN_OR_RETURN(uint32_t own_part, r.U32());
  if (own_part != expect_part) {
    return Status::InvalidArgument(
        "tree clusters part " + std::to_string(own_part) + ", expected part " +
        std::to_string(expect_part));
  }
  DAR_ASSIGN_OR_RETURN(AcfTreeOptions options, ReadTreeOptions(r));
  options.on_rebuild = std::move(on_rebuild);

  double threshold;
  int rebuild_count;
  int64_t split_count, points_inserted;
  uint64_t num_nodes, num_leaf_entries;
  DAR_ASSIGN_OR_RETURN(threshold, r.F64());
  DAR_ASSIGN_OR_RETURN(rebuild_count, r.I32());
  DAR_ASSIGN_OR_RETURN(split_count, r.I64());
  DAR_ASSIGN_OR_RETURN(points_inserted, r.I64());
  DAR_ASSIGN_OR_RETURN(num_nodes, r.U64());
  DAR_ASSIGN_OR_RETURN(num_leaf_entries, r.U64());
  if (!(threshold >= 0) || rebuild_count < 0 || split_count < 0 ||
      points_inserted < 0) {
    return Status::InvalidArgument(
        "tree counters out of range: threshold " + std::to_string(threshold) +
        ", rebuilds " + std::to_string(rebuild_count) + ", splits " +
        std::to_string(split_count) + ", points " +
        std::to_string(points_inserted));
  }

  // Public constructor first: the tree below is always fully formed (empty
  // root, correct layout byte estimate); decoded state replaces its parts
  // only after every byte has been read and validated.
  auto tree = std::make_unique<AcfTree>(layout, expect_part, options);

  DAR_ASSIGN_OR_RETURN(size_t buffered,
                       ReadCount(r, kMinAcfBytes, "outlier-buffer entry"));
  std::vector<Acf> outlier_buffer;
  outlier_buffer.reserve(buffered);
  for (size_t i = 0; i < buffered; ++i) {
    DAR_ASSIGN_OR_RETURN(Acf acf, DecodeAcf(r, layout));
    outlier_buffer.push_back(std::move(acf));
  }
  DAR_ASSIGN_OR_RETURN(size_t confirmed,
                       ReadCount(r, kMinAcfBytes, "outlier entry"));
  std::vector<Acf> outliers;
  outliers.reserve(confirmed);
  for (size_t i = 0; i < confirmed; ++i) {
    DAR_ASSIGN_OR_RETURN(Acf acf, DecodeAcf(r, layout));
    outliers.push_back(std::move(acf));
  }

  size_t counted_nodes = 0, counted_leaf_entries = 0;
  DAR_ASSIGN_OR_RETURN(
      std::unique_ptr<AcfTree::Node> root,
      DecodeNode<AcfTree::Node>(r, layout, expect_part, 0, counted_nodes,
                                counted_leaf_entries));
  // The cached counters drive memory budgeting and stats; a mismatch with
  // the actual structure means the blob is internally inconsistent.
  if (counted_nodes != num_nodes || counted_leaf_entries != num_leaf_entries) {
    return Status::InvalidArgument(
        "tree counter mismatch: header claims " + std::to_string(num_nodes) +
        " nodes/" + std::to_string(num_leaf_entries) + " leaf entries, walk "
        "found " + std::to_string(counted_nodes) + "/" +
        std::to_string(counted_leaf_entries));
  }

  tree->threshold_ = threshold;
  tree->rebuild_count_ = rebuild_count;
  tree->split_count_ = split_count;
  tree->points_inserted_ = points_inserted;
  tree->num_nodes_ = counted_nodes;
  tree->num_leaf_entries_ = counted_leaf_entries;
  tree->outlier_buffer_ = std::move(outlier_buffer);
  tree->outliers_ = std::move(outliers);
  tree->root_ = std::move(root);
  return tree;
}

// ---------------------------------------------------------------------------
// PersistPeer: Phase1Builder
// ---------------------------------------------------------------------------

void PersistPeer::EncodeBuilder(const Phase1Builder& builder, WireWriter& w) {
  w.I64(builder.rows_added_);
  w.U32(static_cast<uint32_t>(builder.trees_.size()));
  for (const auto& tree : builder.trees_) {
    WireWriter blob;
    EncodeTree(*tree, blob);
    w.U64(blob.size());
    w.Raw(blob.bytes());
  }
}

Result<Phase1Builder> PersistPeer::DecodeBuilder(
    WireReader& r, const DarConfig& config, const Schema& schema,
    const AttributePartition& partition, Executor* executor,
    MiningObserver* observer, telemetry::TelemetryContext telemetry) {
  DAR_ASSIGN_OR_RETURN(int64_t rows_added, r.I64());
  DAR_ASSIGN_OR_RETURN(uint32_t num_parts, r.U32());
  if (rows_added < 0) {
    return Status::InvalidArgument("builder rows_added " +
                                   std::to_string(rows_added) +
                                   " is negative");
  }
  if (num_parts != partition.num_parts()) {
    return Status::InvalidArgument(
        "checkpoint builder has " + std::to_string(num_parts) +
        " part trees, the partition has " +
        std::to_string(partition.num_parts()) + " parts");
  }

  // One shared layout for the builder and every tree/ACF under it: the
  // summary classes compare layouts by pointer identity, so decode must
  // thread a single shared_ptr through everything it constructs.
  auto layout = std::make_shared<AcfLayout>();
  layout->parts.reserve(partition.num_parts());
  for (const auto& part : partition.parts()) {
    layout->parts.push_back({part.dimension(), part.metric, part.label});
  }

  std::vector<std::unique_ptr<AcfTree>> trees;
  trees.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    DAR_ASSIGN_OR_RETURN(uint64_t blob_len, r.U64());
    DAR_ASSIGN_OR_RETURN(WireReader blob,
                         r.Slice(static_cast<size_t>(blob_len)));
    // Hooks are not serialized; re-wire them exactly as Phase1Builder::Make
    // does, from the *restoring* config and observer.
    std::function<void(int, double)> on_rebuild = config.tree.on_rebuild;
    if (observer != nullptr) {
      auto user_hook = std::move(on_rebuild);
      on_rebuild = [observer, user_hook, p](int count, double thresh) {
        if (user_hook) user_hook(count, thresh);
        observer->OnTreeRebuild(p, count, thresh);
      };
    }
    auto tree = persist::DecodeTree(blob, layout, p);
    if (!tree.ok()) {
      return Status(tree.status().code(), "part " + std::to_string(p) +
                                              " tree: " +
                                              tree.status().message());
    }
    DAR_RETURN_IF_ERROR(
        blob.ExpectEnd("part " + std::to_string(p) + " tree blob"));
    (*tree)->options_.on_rebuild = std::move(on_rebuild);
    trees.push_back(std::move(*tree));
  }
  DAR_RETURN_IF_ERROR(r.ExpectEnd("builder section"));

  Phase1Builder builder(config, partition, std::move(layout),
                        std::move(trees), schema.num_attributes(), executor,
                        observer, telemetry);
  builder.rows_added_ = rows_added;
  return builder;
}

// ---------------------------------------------------------------------------
// Public section codecs
// ---------------------------------------------------------------------------

namespace persist {

void EncodeTree(const AcfTree& tree, WireWriter& w) {
  PersistPeer::EncodeTree(tree, w);
}

Result<std::unique_ptr<AcfTree>> DecodeTree(
    WireReader& r, std::shared_ptr<const AcfLayout> layout,
    size_t expect_part) {
  DAR_ASSIGN_OR_RETURN(
      std::unique_ptr<AcfTree> tree,
      PersistPeer::DecodeTree(r, std::move(layout), expect_part, {}));
#ifdef DAR_VALIDATE_INVARIANTS
  // A CRC catches flipped bits, not semantically wrong (e.g. version-
  // skewed) trees: under validation builds every decoded tree must also
  // pass the full structural/arithmetic invariant walk, which names the
  // offending node path on failure.
  if (Status s = tree->ValidateInvariants(); !s.ok()) {
    return Status(s.code(),
                  "decoded tree failed invariant validation: " + s.message());
  }
#endif
  return tree;
}

std::string EncodeSchemaSection(const Schema& schema) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(schema.num_attributes()));
  for (const Attribute& attr : schema.attributes()) {
    w.Str(attr.name);
    w.U8(static_cast<uint8_t>(attr.kind));
  }
  return std::move(w).Take();
}

Result<Schema> DecodeSchemaSection(std::string_view bytes) {
  WireReader r(bytes);
  DAR_ASSIGN_OR_RETURN(size_t count, ReadCount(r, 5, "schema attribute"));
  std::vector<Attribute> attrs;
  attrs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Attribute attr;
    DAR_ASSIGN_OR_RETURN(attr.name, r.Str());
    DAR_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    if (kind > static_cast<uint8_t>(AttributeKind::kNominal)) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' has kind byte " +
                                     std::to_string(kind));
    }
    attr.kind = static_cast<AttributeKind>(kind);
    attrs.push_back(std::move(attr));
  }
  DAR_RETURN_IF_ERROR(r.ExpectEnd("schema section"));
  return Schema::Make(std::move(attrs));
}

std::string EncodeDictionariesSection(
    std::span<const Dictionary> dictionaries) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(dictionaries.size()));
  for (const Dictionary& dict : dictionaries) {
    w.U32(static_cast<uint32_t>(dict.size()));
    for (size_t code = 0; code < dict.size(); ++code) {
      // Decode(code) cannot fail for codes the dictionary itself reports.
      w.Str(dict.Decode(static_cast<double>(code)).ValueOrDie());
    }
  }
  return std::move(w).Take();
}

Result<std::vector<Dictionary>> DecodeDictionariesSection(
    std::string_view bytes) {
  WireReader r(bytes);
  DAR_ASSIGN_OR_RETURN(size_t count, ReadCount(r, 4, "dictionary"));
  std::vector<Dictionary> dictionaries(count);
  for (size_t i = 0; i < count; ++i) {
    DAR_ASSIGN_OR_RETURN(size_t labels, ReadCount(r, 4, "dictionary label"));
    for (size_t code = 0; code < labels; ++code) {
      DAR_ASSIGN_OR_RETURN(std::string label, r.Str());
      // Encode assigns codes 0,1,2,... in insertion order, so feeding the
      // labels back in code order reproduces the exact mapping.
      const double assigned = dictionaries[i].Encode(label);
      if (assigned != static_cast<double>(code)) {
        return Status::InvalidArgument(
            "dictionary " + std::to_string(i) + " has duplicate label '" +
            label + "'");
      }
    }
  }
  DAR_RETURN_IF_ERROR(r.ExpectEnd("dictionaries section"));
  return dictionaries;
}

std::string EncodeShardsSection(std::span<const ShardInfo> shards) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(shards.size()));
  for (const ShardInfo& s : shards) {
    w.I64(s.shard_id);
    w.I64(s.rows);
  }
  return std::move(w).Take();
}

Result<std::vector<ShardInfo>> DecodeShardsSection(std::string_view bytes) {
  WireReader r(bytes);
  DAR_ASSIGN_OR_RETURN(size_t count, ReadCount(r, 16, "shard"));
  std::vector<ShardInfo> shards(count);
  for (size_t i = 0; i < count; ++i) {
    DAR_ASSIGN_OR_RETURN(shards[i].shard_id, r.I64());
    DAR_ASSIGN_OR_RETURN(shards[i].rows, r.I64());
    if (shards[i].rows < 0) {
      return Status::InvalidArgument(
          "shard " + std::to_string(i) + " claims negative row count " +
          std::to_string(shards[i].rows));
    }
  }
  DAR_RETURN_IF_ERROR(r.ExpectEnd("shards section"));
  return shards;
}

std::string EncodePartitionSection(const AttributePartition& partition) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(partition.num_parts()));
  for (const AttributeSet& part : partition.parts()) {
    w.U8(static_cast<uint8_t>(part.metric));
    w.U32(static_cast<uint32_t>(part.columns.size()));
    for (size_t col : part.columns) w.U64(col);
  }
  return std::move(w).Take();
}

Result<AttributePartition> DecodePartitionSection(std::string_view bytes,
                                                  const Schema& schema) {
  WireReader r(bytes);
  DAR_ASSIGN_OR_RETURN(size_t num_parts, ReadCount(r, 5, "partition part"));
  std::vector<std::pair<std::vector<std::string>, MetricKind>> parts;
  parts.reserve(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    DAR_ASSIGN_OR_RETURN(MetricKind metric,
                         ReadMetricKind(r, "partition part"));
    DAR_ASSIGN_OR_RETURN(size_t cols, ReadCount(r, 8, "partition column"));
    std::vector<std::string> names;
    names.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      DAR_ASSIGN_OR_RETURN(uint64_t col, r.U64());
      if (col >= schema.num_attributes()) {
        return Status::InvalidArgument(
            "partition part " + std::to_string(p) + " references column " +
            std::to_string(col) + " outside the " +
            std::to_string(schema.num_attributes()) + "-attribute schema");
      }
      names.push_back(schema.attribute(static_cast<size_t>(col)).name);
    }
    parts.emplace_back(std::move(names), metric);
  }
  DAR_RETURN_IF_ERROR(r.ExpectEnd("partition section"));
  return AttributePartition::Make(schema, parts);
}

std::string EncodeConfigSection(const DarConfig& config) {
  WireWriter w;
  w.U64(config.memory_budget_bytes);
  w.F64(config.frequency_fraction);
  w.F64(config.outlier_fraction);
  WriteF64Vec(w, config.initial_diameters);
  WriteTreeOptions(w, config.tree);
  w.U8(config.refine_clusters ? 1 : 0);
  w.U8(static_cast<uint8_t>(config.metric));
  w.F64(config.degree_threshold);
  WriteF64Vec(w, config.degree_thresholds);
  WriteF64Vec(w, config.density_thresholds);
  w.F64(config.phase2_leniency);
  w.U8(config.prune_low_density_images ? 1 : 0);
  w.U64(config.max_antecedent);
  w.U64(config.max_consequent);
  w.U64(config.max_rules);
  w.U64(config.max_cliques);
  w.U8(config.count_rule_support ? 1 : 0);
  return std::move(w).Take();
}

Result<DarConfig> DecodeConfigSection(std::string_view bytes) {
  WireReader r(bytes);
  DarConfig config;
  DAR_ASSIGN_OR_RETURN(uint64_t budget, r.U64());
  config.memory_budget_bytes = static_cast<size_t>(budget);
  DAR_ASSIGN_OR_RETURN(config.frequency_fraction, r.F64());
  DAR_ASSIGN_OR_RETURN(config.outlier_fraction, r.F64());
  DAR_ASSIGN_OR_RETURN(config.initial_diameters,
                       ReadF64Vec(r, "initial_diameters"));
  DAR_ASSIGN_OR_RETURN(config.tree, ReadTreeOptions(r));
  DAR_ASSIGN_OR_RETURN(config.refine_clusters, ReadBool(r, "refine_clusters"));
  DAR_ASSIGN_OR_RETURN(uint8_t metric, r.U8());
  if (metric > static_cast<uint8_t>(ClusterMetric::kD4VarIncrease)) {
    return Status::InvalidArgument("cluster metric byte " +
                                   std::to_string(metric) +
                                   " is out of range");
  }
  config.metric = static_cast<ClusterMetric>(metric);
  DAR_ASSIGN_OR_RETURN(config.degree_threshold, r.F64());
  DAR_ASSIGN_OR_RETURN(config.degree_thresholds,
                       ReadF64Vec(r, "degree_thresholds"));
  DAR_ASSIGN_OR_RETURN(config.density_thresholds,
                       ReadF64Vec(r, "density_thresholds"));
  DAR_ASSIGN_OR_RETURN(config.phase2_leniency, r.F64());
  DAR_ASSIGN_OR_RETURN(config.prune_low_density_images,
                       ReadBool(r, "prune_low_density_images"));
  DAR_ASSIGN_OR_RETURN(uint64_t max_antecedent, r.U64());
  DAR_ASSIGN_OR_RETURN(uint64_t max_consequent, r.U64());
  DAR_ASSIGN_OR_RETURN(uint64_t max_rules, r.U64());
  DAR_ASSIGN_OR_RETURN(uint64_t max_cliques, r.U64());
  config.max_antecedent = static_cast<size_t>(max_antecedent);
  config.max_consequent = static_cast<size_t>(max_consequent);
  config.max_rules = static_cast<size_t>(max_rules);
  config.max_cliques = static_cast<size_t>(max_cliques);
  DAR_ASSIGN_OR_RETURN(config.count_rule_support,
                       ReadBool(r, "count_rule_support"));
  DAR_RETURN_IF_ERROR(r.ExpectEnd("config section"));
  DAR_RETURN_IF_ERROR(config.Validate());
  return config;
}

std::string EncodeBuilderSection(const Phase1Builder& builder) {
  WireWriter w;
  PersistPeer::EncodeBuilder(builder, w);
  return std::move(w).Take();
}

Result<Phase1Builder> DecodeBuilderSection(
    std::string_view bytes, const DarConfig& config, const Schema& schema,
    const AttributePartition& partition, Executor* executor,
    MiningObserver* observer, telemetry::TelemetryContext telemetry) {
  WireReader r(bytes);
  return PersistPeer::DecodeBuilder(r, config, schema, partition, executor,
                                    observer, telemetry);
}

namespace {

void EncodeStats(const AcfTreeStats& s, WireWriter& w) {
  w.U64(s.num_nodes);
  w.U64(s.num_leaf_entries);
  w.U64(s.num_outliers);
  w.I32(s.rebuild_count);
  w.F64(s.threshold);
  w.U64(s.approx_bytes);
  w.I64(s.points_inserted);
  w.I64(s.split_count);
  w.I32(s.height);
}

Result<AcfTreeStats> DecodeStats(WireReader& r) {
  AcfTreeStats s;
  DAR_ASSIGN_OR_RETURN(uint64_t num_nodes, r.U64());
  DAR_ASSIGN_OR_RETURN(uint64_t num_leaf_entries, r.U64());
  DAR_ASSIGN_OR_RETURN(uint64_t num_outliers, r.U64());
  s.num_nodes = static_cast<size_t>(num_nodes);
  s.num_leaf_entries = static_cast<size_t>(num_leaf_entries);
  s.num_outliers = static_cast<size_t>(num_outliers);
  DAR_ASSIGN_OR_RETURN(s.rebuild_count, r.I32());
  DAR_ASSIGN_OR_RETURN(s.threshold, r.F64());
  DAR_ASSIGN_OR_RETURN(uint64_t approx_bytes, r.U64());
  s.approx_bytes = static_cast<size_t>(approx_bytes);
  DAR_ASSIGN_OR_RETURN(s.points_inserted, r.I64());
  DAR_ASSIGN_OR_RETURN(s.split_count, r.I64());
  DAR_ASSIGN_OR_RETURN(s.height, r.I32());
  return s;
}

Result<std::vector<size_t>> ReadIdVec(WireReader& r, size_t bound,
                                      const char* what) {
  DAR_ASSIGN_OR_RETURN(size_t count, ReadCount(r, 8, what));
  std::vector<size_t> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    DAR_ASSIGN_OR_RETURN(uint64_t id, r.U64());
    if (id >= bound) {
      return Status::InvalidArgument(
          std::string(what) + " references cluster " + std::to_string(id) +
          " outside the " + std::to_string(bound) + "-cluster set");
    }
    ids.push_back(static_cast<size_t>(id));
  }
  return ids;
}

}  // namespace

std::string EncodeResultsSection(uint64_t generation, int64_t rows_ingested,
                                 const Phase1Result& phase1,
                                 const Phase2Result& phase2) {
  WireWriter w;
  w.U64(generation);
  w.I64(rows_ingested);

  // Phase1Result.
  w.U32(static_cast<uint32_t>(phase1.layout->num_parts()));
  for (const PartSpec& spec : phase1.layout->parts) {
    w.U64(spec.dim);
    w.U8(static_cast<uint8_t>(spec.metric));
    w.Str(spec.label);
  }
  w.U32(static_cast<uint32_t>(phase1.clusters.size()));
  for (const FoundCluster& cluster : phase1.clusters.clusters()) {
    w.U64(cluster.id);
    w.U64(cluster.part);
    PersistPeer::EncodeAcf(cluster.acf, w);
  }
  w.U32(static_cast<uint32_t>(phase1.tree_stats.size()));
  for (const AcfTreeStats& stats : phase1.tree_stats) EncodeStats(stats, w);
  w.U32(static_cast<uint32_t>(phase1.outliers.size()));
  for (const Acf& acf : phase1.outliers) PersistPeer::EncodeAcf(acf, w);
  w.U32(static_cast<uint32_t>(phase1.raw_cluster_counts.size()));
  for (size_t count : phase1.raw_cluster_counts) w.U64(count);
  WriteF64Vec(w, phase1.effective_d0);
  w.I64(phase1.frequency_threshold);
  w.F64(phase1.seconds);

  // Phase2Result.
  w.U32(static_cast<uint32_t>(phase2.cliques.size()));
  for (const auto& clique : phase2.cliques) {
    w.U32(static_cast<uint32_t>(clique.size()));
    for (size_t id : clique) w.U64(id);
  }
  w.U64(phase2.num_nontrivial_cliques);
  w.U8(phase2.cliques_truncated ? 1 : 0);
  w.U64(phase2.graph_edges);
  w.U32(static_cast<uint32_t>(phase2.rules.size()));
  for (const DistanceRule& rule : phase2.rules) {
    w.U32(static_cast<uint32_t>(rule.antecedent.size()));
    for (size_t id : rule.antecedent) w.U64(id);
    w.U32(static_cast<uint32_t>(rule.consequent.size()));
    for (size_t id : rule.consequent) w.U64(id);
    w.F64(rule.degree);
    w.F64(rule.cooccurrence_slack);
    w.I64(rule.support_count);
  }
  w.U8(phase2.rules_truncated ? 1 : 0);
  w.F64(phase2.seconds);
  return std::move(w).Take();
}

Result<DecodedResults> DecodeResultsSection(std::string_view bytes) {
  WireReader r(bytes);
  DecodedResults out;
  DAR_ASSIGN_OR_RETURN(out.generation, r.U64());
  DAR_ASSIGN_OR_RETURN(out.rows_ingested, r.I64());

  // Phase1Result. As everywhere in decode, one shared layout object is
  // threaded through the ClusterSet and every ACF.
  DAR_ASSIGN_OR_RETURN(size_t num_parts, ReadCount(r, 13, "layout part"));
  auto layout = std::make_shared<AcfLayout>();
  layout->parts.reserve(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    PartSpec spec;
    DAR_ASSIGN_OR_RETURN(uint64_t dim, r.U64());
    spec.dim = static_cast<size_t>(dim);
    DAR_ASSIGN_OR_RETURN(spec.metric, ReadMetricKind(r, "layout part"));
    DAR_ASSIGN_OR_RETURN(spec.label, r.Str());
    layout->parts.push_back(std::move(spec));
  }
  out.phase1.layout = layout;

  DAR_ASSIGN_OR_RETURN(size_t num_clusters,
                       ReadCount(r, 16 + kMinAcfBytes, "cluster"));
  std::vector<FoundCluster> clusters;
  clusters.reserve(num_clusters);
  for (size_t i = 0; i < num_clusters; ++i) {
    FoundCluster cluster;
    DAR_ASSIGN_OR_RETURN(uint64_t id, r.U64());
    DAR_ASSIGN_OR_RETURN(uint64_t part, r.U64());
    // ClusterSet's constructor DAR_CHECKs id density and part bounds;
    // validate here first so corrupt bytes fail with a Status, not a crash.
    if (id != i) {
      return Status::InvalidArgument(
          "cluster ids are not dense: cluster " + std::to_string(i) +
          " has id " + std::to_string(id));
    }
    if (part >= num_parts) {
      return Status::InvalidArgument(
          "cluster " + std::to_string(i) + " is on part " +
          std::to_string(part) + " of a " + std::to_string(num_parts) +
          "-part layout");
    }
    cluster.id = static_cast<size_t>(id);
    cluster.part = static_cast<size_t>(part);
    DAR_ASSIGN_OR_RETURN(cluster.acf, PersistPeer::DecodeAcf(r, layout));
    if (cluster.acf.own_part() != cluster.part) {
      return Status::InvalidArgument(
          "cluster " + std::to_string(i) + " ACF is on part " +
          std::to_string(cluster.acf.own_part()) + ", cluster claims part " +
          std::to_string(cluster.part));
    }
    clusters.push_back(std::move(cluster));
  }
  out.phase1.clusters = ClusterSet(layout, std::move(clusters));

  DAR_ASSIGN_OR_RETURN(size_t num_stats, ReadCount(r, 64, "tree stats"));
  out.phase1.tree_stats.reserve(num_stats);
  for (size_t i = 0; i < num_stats; ++i) {
    DAR_ASSIGN_OR_RETURN(AcfTreeStats stats, DecodeStats(r));
    out.phase1.tree_stats.push_back(stats);
  }
  DAR_ASSIGN_OR_RETURN(size_t num_outliers,
                       ReadCount(r, kMinAcfBytes, "outlier"));
  out.phase1.outliers.reserve(num_outliers);
  for (size_t i = 0; i < num_outliers; ++i) {
    DAR_ASSIGN_OR_RETURN(Acf acf, PersistPeer::DecodeAcf(r, layout));
    out.phase1.outliers.push_back(std::move(acf));
  }
  DAR_ASSIGN_OR_RETURN(size_t num_raw, ReadCount(r, 8, "raw cluster count"));
  out.phase1.raw_cluster_counts.reserve(num_raw);
  for (size_t i = 0; i < num_raw; ++i) {
    DAR_ASSIGN_OR_RETURN(uint64_t count, r.U64());
    out.phase1.raw_cluster_counts.push_back(static_cast<size_t>(count));
  }
  DAR_ASSIGN_OR_RETURN(out.phase1.effective_d0,
                       ReadF64Vec(r, "effective_d0"));
  DAR_ASSIGN_OR_RETURN(out.phase1.frequency_threshold, r.I64());
  DAR_ASSIGN_OR_RETURN(out.phase1.seconds, r.F64());

  // Phase2Result.
  DAR_ASSIGN_OR_RETURN(size_t num_cliques, ReadCount(r, 4, "clique"));
  out.phase2.cliques.reserve(num_cliques);
  for (size_t i = 0; i < num_cliques; ++i) {
    DAR_ASSIGN_OR_RETURN(std::vector<size_t> ids,
                         ReadIdVec(r, num_clusters, "clique"));
    out.phase2.cliques.push_back(std::move(ids));
  }
  DAR_ASSIGN_OR_RETURN(uint64_t nontrivial, r.U64());
  out.phase2.num_nontrivial_cliques = static_cast<size_t>(nontrivial);
  DAR_ASSIGN_OR_RETURN(out.phase2.cliques_truncated,
                       ReadBool(r, "cliques_truncated"));
  DAR_ASSIGN_OR_RETURN(uint64_t edges, r.U64());
  out.phase2.graph_edges = static_cast<size_t>(edges);
  DAR_ASSIGN_OR_RETURN(size_t num_rules, ReadCount(r, 32, "rule"));
  out.phase2.rules.reserve(num_rules);
  for (size_t i = 0; i < num_rules; ++i) {
    DistanceRule rule;
    DAR_ASSIGN_OR_RETURN(rule.antecedent,
                         ReadIdVec(r, num_clusters, "rule antecedent"));
    DAR_ASSIGN_OR_RETURN(rule.consequent,
                         ReadIdVec(r, num_clusters, "rule consequent"));
    DAR_ASSIGN_OR_RETURN(rule.degree, r.F64());
    DAR_ASSIGN_OR_RETURN(rule.cooccurrence_slack, r.F64());
    DAR_ASSIGN_OR_RETURN(rule.support_count, r.I64());
    out.phase2.rules.push_back(std::move(rule));
  }
  DAR_ASSIGN_OR_RETURN(out.phase2.rules_truncated,
                       ReadBool(r, "rules_truncated"));
  DAR_ASSIGN_OR_RETURN(out.phase2.seconds, r.F64());
  DAR_RETURN_IF_ERROR(r.ExpectEnd("results section"));
  return out;
}

}  // namespace persist
}  // namespace dar
