#ifndef DAR_STREAM_STREAMING_MINER_H_
#define DAR_STREAM_STREAMING_MINER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "core/config.h"
#include "core/observer.h"
#include "core/phase1_builder.h"
#include "quality/measure.h"
#include "relation/partition.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "stream/rule_index.h"
#include "stream/rule_snapshot.h"
#include "stream/snapshot_cell.h"
#include "stream/stream_config.h"
#include "telemetry/metrics.h"

namespace dar {

class QueryService;  // serve/query_service.h
class StreamingMiner;
struct StreamTestPeer;  // test-only backdoor; defined by tests

/// Everything StreamingMiner::RestoreFromFile recovers from a checkpoint:
/// the resumed stream plus the context a caller needs to keep feeding it —
/// the relation schema, the nominal-label dictionaries (empty when the
/// checkpoint carried none) and the DarConfig the checkpoint was written
/// under. The stream itself runs under the *restoring* session's config,
/// so comparing it against `saved_config` tells the caller whether they
/// are continuing the original run or warm re-mining the same summaries
/// under new thresholds.
struct RestoredStream {
  std::unique_ptr<StreamingMiner> stream;
  Schema schema;
  std::vector<Dictionary> dictionaries;
  DarConfig saved_config;
};

/// Incremental micro-batch mining (the tentpole of dar::stream): tuples
/// arrive in micro-batches, the per-part ACF-trees stay live across
/// batches (the same insert/absorb path batch Phase I uses — §3's single
/// pass, just never finished), and on a configurable cadence the current
/// summaries are re-mined into an immutable RuleSnapshot published through
/// an atomic shared_ptr swap.
///
/// Re-mining is *summary-only*: Phase1Builder::Snapshot() deep-clones the
/// live trees and runs the finishing pipeline on the clones, and Phase II
/// is a pure function of those summaries (Thm 6.1) — no ingested tuple is
/// ever revisited, so the cost of refreshing the rules is proportional to
/// the number of clusters, not to the stream length. Because the per-tree
/// insert sequence is identical to the batch path, a stream fed K
/// micro-batches on one thread publishes exactly the rule set a one-shot
/// Session::Mine over the concatenated batches derives.
///
/// Support counts and the quality layer: when the session's DarConfig has
/// count_rule_support set, the stream retains every ingested tuple and
/// each re-mine runs the §6.2 post-scan over the retained rows, so the
/// published rules carry exact support_count values just like the batch
/// path (without it, support_count stays -1: nothing is retained to
/// rescan). On top of that scan, StreamConfig::score_measures evaluates
/// interestingness measures per rule, prune_redundant marks near-duplicate
/// rules, and diff_snapshots classifies rules as born/died/drifted against
/// the previous generation — all carried by the published RuleSnapshot
/// (scored()/diff()) and surfaced as quality.* telemetry.
///
/// Threading contract: ONE writer thread calls Ingest/IngestRow/Remine;
/// any number of reader threads call snapshot()/Query()/generation()/
/// rows_ingested()/rows_since_snapshot() concurrently with it without
/// blocking (publication is a SnapshotCell pointer swap — its spin bit is
/// a compile-checked capability, see stream/snapshot_cell.h — and the
/// counters are plain atomics; the miner itself holds no mutex, so there
/// is nothing here for the thread-safety analysis to guard: writer-only
/// state like builder_ is protected by confinement, not locking).
/// A reader's snapshot is complete and internally consistent
/// (RuleSnapshot::CheckConsistency) and remains valid as long as the
/// reader holds the shared_ptr, even after newer generations replace it.
///
///     DAR_ASSIGN_OR_RETURN(auto stream,
///                          session.OpenStream(schema, partition));
///     DAR_RETURN_IF_ERROR(stream->Ingest(batch));  // may auto-publish
///     // Reads go through dar::QueryService (serve/query_service.h):
///     QueryService service;
///     service.AttachStream(*stream);
///     DAR_RETURN_IF_ERROR(service.PointQuery(request, response));
class StreamingMiner {
 public:
  /// Validates both configs and assembles the stream. `executor` may be
  /// null (serial); `registry` may be null (telemetry disabled);
  /// `observer` may be null. Prefer Session::OpenStream, which wires the
  /// session's executor, registry and observers in.
  static Result<std::unique_ptr<StreamingMiner>> Make(
      const DarConfig& config, const Schema& schema,
      const AttributePartition& partition, StreamConfig stream_config,
      std::shared_ptr<Executor> executor,
      std::shared_ptr<telemetry::MetricsRegistry> registry,
      MiningObserver* observer = nullptr);

  StreamingMiner(const StreamingMiner&) = delete;
  StreamingMiner& operator=(const StreamingMiner&) = delete;

  /// Absorbs one micro-batch (same schema as the stream). Feeds each
  /// part's tree with the identical insert/paging sequence AddRow would,
  /// part-parallel on the stream's executor. When the cadence is enabled
  /// and this batch crosses it, re-mines and publishes a new snapshot
  /// before returning.
  Status Ingest(const Relation& batch);

  /// Absorbs a single tuple (one value per schema attribute). Cadence
  /// applies as in Ingest.
  Status IngestRow(std::span<const double> row);

  /// Re-mines the current summaries and publishes the result as the new
  /// current snapshot, regardless of cadence. Returns the published
  /// snapshot. Fails (and publishes nothing) when no rows were ingested.
  Result<std::shared_ptr<const RuleSnapshot>> Remine();

  /// Adds a user-defined interestingness measure to this stream's registry
  /// so StreamConfig::score_measures may name it. The built-ins (support,
  /// confidence, lift, conviction, chi_squared) are pre-registered. Fails
  /// AlreadyExists on a name collision. Writer-thread only; register
  /// before the first re-mine that scores.
  Status RegisterMeasure(
      std::unique_ptr<quality::InterestingnessMeasure> measure) {
    return measures_.Register(std::move(measure));
  }

  /// Writes the stream's complete resumable state to `path` atomically
  /// (write-to-temp + rename; see persist/checkpoint_io.h for the format):
  /// config, schema, partition, the live per-part ACF-trees, the stream
  /// counters, and the current snapshot's results when one is published.
  /// `dictionaries` (one per nominal column, optional) are embedded so a
  /// restoring process can decode future nominal tuples identically.
  ///
  /// The trees are serialized bit-exactly, so a stream restored from this
  /// checkpoint re-mines to rules bit-identical to this stream's, at any
  /// thread count (Thm 6.1: Phase II is a pure function of the ACF
  /// summaries). Writer-thread only (reads the live builder).
  [[nodiscard]] Status SaveCheckpoint(
      const std::string& path,
      std::span<const Dictionary> dictionaries = {}) const;

  /// Reopens a checkpointed stream: rebuilds the live trees and counters
  /// from `path` and republishes the checkpointed snapshot (when one was
  /// recorded), ready to ingest from exactly where the saved stream
  /// stopped. `config` is the restoring session's DarConfig — pass the
  /// original for exact continuation, or different d0/frequency thresholds
  /// to warm re-mine the same summaries without any data access. Every
  /// corruption mode (truncation, bit flips, version skew) surfaces as a
  /// descriptive error Status, never a crash or a partially built stream.
  static Result<RestoredStream> RestoreFromFile(
      const std::string& path, const DarConfig& config,
      std::shared_ptr<Executor> executor,
      std::shared_ptr<telemetry::MetricsRegistry> registry,
      MiningObserver* observer = nullptr);

  /// The schema this stream ingests under (what OpenStream was given).
  [[nodiscard]] const Schema& schema() const { return schema_; }

  /// The attribute partitioning this stream mines under.
  [[nodiscard]] const AttributePartition& partition() const {
    return partition_;
  }

  /// Total tuples absorbed so far.
  [[nodiscard]] int64_t rows_ingested() const {
    return rows_ingested_.load(std::memory_order_acquire);
  }

  /// Generation of the current snapshot; 0 until the first publication.
  [[nodiscard]] uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Staleness gauge: tuples absorbed since the current snapshot was
  /// derived (== rows_ingested() until the first publication).
  [[nodiscard]] int64_t rows_since_snapshot() const {
    return rows_ingested_.load(std::memory_order_acquire) -
           rows_at_snapshot_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const StreamConfig& stream_config() const {
    return stream_config_;
  }

 private:
  // Gates the public constructor (make_unique needs one) to Make().
  struct PrivateTag {
    explicit PrivateTag() = default;
  };

 public:
  StreamingMiner(PrivateTag, DarConfig config, StreamConfig stream_config,
                 Schema schema, AttributePartition partition,
                 std::shared_ptr<Executor> executor,
                 std::shared_ptr<telemetry::MetricsRegistry> registry,
                 MiningObserver* observer, Phase1Builder builder);

 private:
  // Snapshot readers go through dar::QueryService (serve/query_service.h),
  // which answers versioned point-query/listing/info requests from one
  // consistent snapshot generation and survives stream hot-swaps. The
  // service (and the test-only peer, defined by tests that diff whole
  // snapshots for bit-equality) reach the published snapshot through this
  // private accessor: callable from any thread, never blocks beyond
  // SnapshotCell's few-instruction pointer copy; null until the first
  // publication.
  friend class QueryService;
  friend struct StreamTestPeer;

  [[nodiscard]] std::shared_ptr<const RuleSnapshot> current_snapshot() const {
    return snapshot_.load();
  }

  // Publishes a fresh snapshot when the auto-remine cadence has been
  // crossed; no-op otherwise.
  Status MaybeRemine();

  // Saves a cadence checkpoint to stream_config_.checkpoint_path when the
  // checkpoint cadence has been crossed; no-op otherwise. Defined in
  // stream_checkpoint.cc with the rest of the persistence glue.
  Status MaybeCheckpoint();

  // True when ingested tuples are kept for the per-remine support
  // post-scan (and everything built on it).
  [[nodiscard]] bool retains_rows() const {
    return config_.count_rule_support;
  }

  // Computes the quality tail of one re-mine over the freshly derived
  // results: the support post-scan over retained_rows_ (updating each
  // rule's support_count in place), measure scoring, redundancy pruning,
  // and — when `previous` is non-null — the diff against it. Returns empty
  // artifacts when the stream retains nothing.
  Result<QualityArtifacts> ComputeQuality(const Phase1Result& phase1,
                                          Phase2Result& phase2,
                                          const RuleSnapshot* previous,
                                          uint64_t new_generation);

  DarConfig config_;
  StreamConfig stream_config_;
  Schema schema_;
  AttributePartition partition_;
  std::shared_ptr<Executor> executor_;  // may be null => serial
  std::shared_ptr<telemetry::MetricsRegistry> registry_;  // may be null
  MiningObserver* observer_ = nullptr;  // not owned; may be null
  Phase1Builder builder_;  // writer-thread only
  // Every ingested tuple, kept only when retains_rows(): the §6.2 support
  // post-scan and the quality layer rescan it each re-mine. Memory is then
  // O(stream length) — the caller opted in via count_rule_support.
  Relation retained_rows_;  // writer-thread only
  quality::MeasureRegistry measures_;  // writer-thread only

  SnapshotCell<const RuleSnapshot> snapshot_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<int64_t> rows_ingested_{0};
  std::atomic<int64_t> rows_at_snapshot_{0};
  // Rows ingested when the last cadence checkpoint was written. Only the
  // writer thread reads or writes it, so a plain field suffices.
  int64_t rows_at_checkpoint_ = 0;

  // Telemetry handles, resolved once at construction (null when the
  // registry is null). Histograms carry Unit::kSeconds, so the exporter's
  // deterministic view excludes them automatically.
  telemetry::Counter* ingest_batches_ = nullptr;
  telemetry::Counter* ingest_rows_ = nullptr;
  telemetry::Counter* remines_ = nullptr;
  telemetry::Gauge* generation_gauge_ = nullptr;
  telemetry::Gauge* staleness_gauge_ = nullptr;
  telemetry::Gauge* snapshot_rules_ = nullptr;
  telemetry::Gauge* snapshot_clusters_ = nullptr;
  telemetry::Histogram* ingest_seconds_ = nullptr;
  telemetry::Histogram* remine_seconds_ = nullptr;
  telemetry::Counter* rules_scored_ = nullptr;
  telemetry::Counter* rules_pruned_ = nullptr;
  telemetry::Counter* rules_born_ = nullptr;
  telemetry::Counter* rules_died_ = nullptr;
  telemetry::Counter* rules_drifted_ = nullptr;
};

}  // namespace dar

#endif  // DAR_STREAM_STREAMING_MINER_H_
