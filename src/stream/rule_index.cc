#include "stream/rule_index.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace dar {

RuleIndex RuleIndex::Build(const ClusterSet& clusters,
                           const std::vector<DistanceRule>& rules,
                           const AttributePartition& partition) {
  RuleIndex index;
  index.num_clusters_ = clusters.size();
  index.parts_.resize(partition.num_parts());

  for (size_t p = 0; p < partition.num_parts(); ++p) {
    PartIndex& part = index.parts_[p];
    part.columns = partition.part(p).columns;
    for (size_t col : part.columns) {
      index.min_row_width_ = std::max(index.min_row_width_, col + 1);
    }
    if (p < clusters.num_parts()) {
      const std::vector<size_t>& on_part = clusters.ClustersOnPart(p);
      part.ids.assign(on_part.begin(), on_part.end());
    }
    // Sort by the box's lower bound on the part's first dimension, ties by
    // id, so the layout is a pure function of the cluster set.
    std::vector<std::vector<Interval>> boxes(part.ids.size());
    for (size_t i = 0; i < part.ids.size(); ++i) {
      const auto bb = clusters.cluster(part.ids[i]).acf.BoundingBox(p);
      boxes[i].reserve(bb.size());
      for (const auto& [lo, hi] : bb) boxes[i].push_back({lo, hi});
    }
    std::vector<size_t> order(part.ids.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const double la = boxes[a].empty() ? 0 : boxes[a][0].lo;
      const double lb = boxes[b].empty() ? 0 : boxes[b][0].lo;
      if (la != lb) return la < lb;
      return part.ids[a] < part.ids[b];
    });
    std::vector<size_t> sorted_ids;
    sorted_ids.reserve(order.size());
    part.lo0.reserve(order.size());
    part.prefix_max_hi.reserve(order.size());
    part.boxes.reserve(order.size());
    double running_max = -std::numeric_limits<double>::infinity();
    for (size_t i : order) {
      sorted_ids.push_back(part.ids[i]);
      part.lo0.push_back(boxes[i].empty() ? 0 : boxes[i][0].lo);
      running_max =
          std::max(running_max, boxes[i].empty() ? 0 : boxes[i][0].hi);
      part.prefix_max_hi.push_back(running_max);
      part.boxes.push_back(std::move(boxes[i]));
    }
    part.ids = std::move(sorted_ids);
  }

  index.rules_of_cluster_.resize(clusters.size());
  index.rule_arity_.resize(rules.size());
  for (size_t k = 0; k < rules.size(); ++k) {
    const DistanceRule& rule = rules[k];
    index.rule_arity_[k] = rule.antecedent.size() + rule.consequent.size();
    for (const auto* side : {&rule.antecedent, &rule.consequent}) {
      for (size_t id : *side) {
        if (id < index.rules_of_cluster_.size()) {
          index.rules_of_cluster_[id].push_back(k);
        }
      }
    }
  }
  return index;
}

Result<RuleIndex::Hits> RuleIndex::Query(std::span<const double> row,
                                         QueryScratch& scratch) const {
  scratch.clusters.clear();
  scratch.rules.clear();
  scratch.touched.clear();
  if (row.size() < min_row_width_) {
    return Status::InvalidArgument(
        "query tuple has " + std::to_string(row.size()) +
        " values; the partitioning references column " +
        std::to_string(min_row_width_ - 1));
  }

  for (const PartIndex& part : parts_) {
    if (part.ids.empty()) continue;
    const double v0 = row[part.columns[0]];
    // Candidates must have lo0 <= v0; walk left from the upper bound while
    // some candidate's dim-0 interval can still reach v0.
    auto it = std::upper_bound(part.lo0.begin(), part.lo0.end(), v0);
    for (size_t i = static_cast<size_t>(it - part.lo0.begin()); i-- > 0;) {
      if (part.prefix_max_hi[i] < v0) break;  // nothing earlier reaches v0
      const std::vector<Interval>& box = part.boxes[i];
      bool contains = true;
      for (size_t d = 0; d < box.size(); ++d) {
        const double v = row[part.columns[d]];
        if (v < box[d].lo || v > box[d].hi) {
          contains = false;
          break;
        }
      }
      if (contains) scratch.clusters.push_back(part.ids[i]);
    }
  }
  std::sort(scratch.clusters.begin(), scratch.clusters.end());

  // A rule fires iff every one of its clusters contains the tuple. Gather
  // the rule references of the containing clusters and count runs — cost
  // is proportional to the references actually touched, never to the
  // total rule count.
  std::vector<size_t>& touched = scratch.touched;
  for (size_t id : scratch.clusters) {
    const std::vector<size_t>& refs = rules_of_cluster_[id];
    touched.insert(touched.end(), refs.begin(), refs.end());
  }
  std::sort(touched.begin(), touched.end());
  for (size_t i = 0; i < touched.size();) {
    size_t j = i;
    while (j < touched.size() && touched[j] == touched[i]) ++j;
    if (j - i == rule_arity_[touched[i]]) {
      scratch.rules.push_back(touched[i]);
    }
    i = j;
  }
  return Hits{std::span<const size_t>(scratch.clusters),
              std::span<const size_t>(scratch.rules)};
}

}  // namespace dar
