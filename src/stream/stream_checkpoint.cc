// Persistence glue between dar::stream and dar::persist: checkpoint save/
// restore for StreamingMiner, the stream-state section codec, and the
// Session-facade entry points. Lives here rather than in src/persist/ so
// dar_persist depends only on dar_core — the stream types (StreamConfig,
// RuleSnapshot) stay out of the persist library, which serializes their
// contents through the generic section codecs.

#include <memory>
#include <string>
#include <utility>

#include "common/stopwatch.h"
#include "core/session.h"
#include "persist/checkpoint_io.h"
#include "persist/codec.h"
#include "persist/wire.h"
#include "stream/streaming_miner.h"
#include "telemetry/metrics.h"

namespace dar {
namespace {

using persist::SectionId;

/// Everything in the kStreamState section: the stream's counters plus its
/// StreamConfig, so a restored stream resumes with the exact cadence the
/// saved one ran under.
struct StreamState {
  uint64_t generation = 0;
  int64_t rows_ingested = 0;
  int64_t rows_at_snapshot = 0;
  int64_t rows_at_checkpoint = 0;
  StreamConfig stream_config;
};

std::string EncodeStreamStateSection(const StreamState& s) {
  persist::WireWriter w;
  w.U64(s.generation);
  w.I64(s.rows_ingested);
  w.I64(s.rows_at_snapshot);
  w.I64(s.rows_at_checkpoint);
  w.I64(s.stream_config.remine_every_rows);
  w.U8(s.stream_config.build_rule_index ? 1 : 0);
  w.I64(s.stream_config.checkpoint_every_rows);
  w.Str(s.stream_config.checkpoint_path);
  // Quality knobs: an appended tail, so checkpoints written before the
  // quality layer existed still decode (the reader defaults the knobs when
  // nothing remains before the end of the section).
  w.U32(static_cast<uint32_t>(s.stream_config.score_measures.size()));
  for (const std::string& name : s.stream_config.score_measures) {
    w.Str(name);
  }
  w.U8(s.stream_config.prune_redundant ? 1 : 0);
  w.F64(s.stream_config.prune_min_overlap);
  w.U8(s.stream_config.diff_snapshots ? 1 : 0);
  w.F64(s.stream_config.drift_interval_tolerance);
  w.F64(s.stream_config.drift_degree_tolerance);
  return std::move(w).Take();
}

Result<StreamState> DecodeStreamStateSection(std::string_view bytes) {
  persist::WireReader r(bytes);
  StreamState s;
  DAR_ASSIGN_OR_RETURN(s.generation, r.U64());
  DAR_ASSIGN_OR_RETURN(s.rows_ingested, r.I64());
  DAR_ASSIGN_OR_RETURN(s.rows_at_snapshot, r.I64());
  DAR_ASSIGN_OR_RETURN(s.rows_at_checkpoint, r.I64());
  DAR_ASSIGN_OR_RETURN(s.stream_config.remine_every_rows, r.I64());
  DAR_ASSIGN_OR_RETURN(uint8_t build_index, r.U8());
  if (build_index > 1) {
    return Status::InvalidArgument("stream state: build_rule_index byte " +
                                   std::to_string(build_index) +
                                   " is not 0 or 1");
  }
  s.stream_config.build_rule_index = build_index != 0;
  DAR_ASSIGN_OR_RETURN(s.stream_config.checkpoint_every_rows, r.I64());
  DAR_ASSIGN_OR_RETURN(s.stream_config.checkpoint_path, r.Str());
  if (r.remaining() > 0) {
    // Quality-knob tail (absent in checkpoints predating the quality
    // layer, which restore with the struct defaults).
    DAR_ASSIGN_OR_RETURN(uint32_t num_measures, r.U32());
    s.stream_config.score_measures.reserve(num_measures);
    for (uint32_t m = 0; m < num_measures; ++m) {
      DAR_ASSIGN_OR_RETURN(std::string name, r.Str());
      s.stream_config.score_measures.push_back(std::move(name));
    }
    DAR_ASSIGN_OR_RETURN(uint8_t prune, r.U8());
    if (prune > 1) {
      return Status::InvalidArgument("stream state: prune_redundant byte " +
                                     std::to_string(prune) +
                                     " is not 0 or 1");
    }
    s.stream_config.prune_redundant = prune != 0;
    DAR_ASSIGN_OR_RETURN(s.stream_config.prune_min_overlap, r.F64());
    DAR_ASSIGN_OR_RETURN(uint8_t diff, r.U8());
    if (diff > 1) {
      return Status::InvalidArgument("stream state: diff_snapshots byte " +
                                     std::to_string(diff) +
                                     " is not 0 or 1");
    }
    s.stream_config.diff_snapshots = diff != 0;
    DAR_ASSIGN_OR_RETURN(s.stream_config.drift_interval_tolerance, r.F64());
    DAR_ASSIGN_OR_RETURN(s.stream_config.drift_degree_tolerance, r.F64());
  }
  DAR_RETURN_IF_ERROR(r.ExpectEnd("stream state section"));
  DAR_RETURN_IF_ERROR(s.stream_config.Validate());
  if (s.rows_ingested < 0 || s.rows_at_snapshot < 0 ||
      s.rows_at_checkpoint < 0 || s.rows_at_snapshot > s.rows_ingested ||
      s.rows_at_checkpoint > s.rows_ingested) {
    return Status::InvalidArgument(
        "stream state counters out of range: rows_ingested " +
        std::to_string(s.rows_ingested) + ", rows_at_snapshot " +
        std::to_string(s.rows_at_snapshot) + ", rows_at_checkpoint " +
        std::to_string(s.rows_at_checkpoint));
  }
  return s;
}

// kRetainedRows payload: u64 rows, u64 cols, then row-major F64 values.
// Saved only by streams that retain tuples for the support post-scan.
std::string EncodeRetainedRowsSection(const Relation& rel) {
  persist::WireWriter w;
  w.U64(rel.num_rows());
  w.U64(rel.num_columns());
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    for (double value : rel.Row(r)) {
      w.F64(value);
    }
  }
  return std::move(w).Take();
}

Result<Relation> DecodeRetainedRowsSection(std::string_view bytes,
                                           const Schema& schema) {
  persist::WireReader r(bytes);
  DAR_ASSIGN_OR_RETURN(uint64_t rows, r.U64());
  DAR_ASSIGN_OR_RETURN(uint64_t cols, r.U64());
  Relation rel(schema);
  if (cols != rel.num_columns()) {
    return Status::InvalidArgument(
        "retained rows section has " + std::to_string(cols) +
        " columns, schema has " + std::to_string(rel.num_columns()));
  }
  rel.Reserve(static_cast<size_t>(rows));
  std::vector<double> row(static_cast<size_t>(cols));
  for (uint64_t i = 0; i < rows; ++i) {
    for (uint64_t c = 0; c < cols; ++c) {
      DAR_ASSIGN_OR_RETURN(row[static_cast<size_t>(c)], r.F64());
    }
    DAR_RETURN_IF_ERROR(rel.AppendRow(row));
  }
  DAR_RETURN_IF_ERROR(r.ExpectEnd("retained rows section"));
  return rel;
}

void RecordSave(telemetry::MetricsRegistry* reg, size_t bytes,
                double seconds) {
  if (reg == nullptr) return;
  reg->GetCounter("persist.saves")->Increment();
  reg->GetCounter("persist.save_bytes", telemetry::Unit::kBytes)
      ->Increment(static_cast<int64_t>(bytes));
  reg->GetGauge("persist.last_checkpoint_bytes", telemetry::Unit::kBytes)
      ->Set(static_cast<double>(bytes));
  reg->GetHistogram("persist.save_seconds",
                    telemetry::Histogram::LatencyBounds())
      ->Record(seconds);
}

void RecordLoad(telemetry::MetricsRegistry* reg, size_t bytes,
                double seconds) {
  if (reg == nullptr) return;
  reg->GetCounter("persist.loads")->Increment();
  reg->GetCounter("persist.load_bytes", telemetry::Unit::kBytes)
      ->Increment(static_cast<int64_t>(bytes));
  reg->GetHistogram("persist.load_seconds",
                    telemetry::Histogram::LatencyBounds())
      ->Record(seconds);
}

}  // namespace

Status StreamingMiner::SaveCheckpoint(
    const std::string& path, std::span<const Dictionary> dictionaries) const {
  Stopwatch watch;
  persist::CheckpointWriter writer;
  writer.AddSection(SectionId::kConfig, persist::EncodeConfigSection(config_));
  writer.AddSection(SectionId::kSchema, persist::EncodeSchemaSection(schema_));
  writer.AddSection(SectionId::kPartition,
                    persist::EncodePartitionSection(partition_));
  if (!dictionaries.empty()) {
    writer.AddSection(SectionId::kDictionaries,
                      persist::EncodeDictionariesSection(dictionaries));
  }

  StreamState state;
  state.generation = generation_.load(std::memory_order_acquire);
  state.rows_ingested = rows_ingested_.load(std::memory_order_acquire);
  state.rows_at_snapshot = rows_at_snapshot_.load(std::memory_order_acquire);
  // The file itself is a checkpoint at rows_ingested, regardless of the
  // in-memory cadence bookkeeping.
  state.rows_at_checkpoint = state.rows_ingested;
  state.stream_config = stream_config_;
  writer.AddSection(SectionId::kStreamState, EncodeStreamStateSection(state));

  writer.AddSection(SectionId::kBuilder,
                    persist::EncodeBuilderSection(builder_));

  // Shard provenance: one entry for this stream, so merge tooling
  // (persist::MergeCheckpoints, tools/dar_ckpt.py) can attribute the
  // checkpoint's tuples to a distributed-mining shard.
  const persist::ShardInfo shard{stream_config_.shard_id,
                                 state.rows_ingested};
  writer.AddSection(SectionId::kShards,
                    persist::EncodeShardsSection({&shard, 1}));

  if (retains_rows()) {
    writer.AddSection(SectionId::kRetainedRows,
                      EncodeRetainedRowsSection(retained_rows_));
  }

  std::shared_ptr<const RuleSnapshot> snap = snapshot_.load();
  if (snap != nullptr) {
    writer.AddSection(
        SectionId::kSnapshot,
        persist::EncodeResultsSection(snap->generation(),
                                      snap->rows_ingested(), snap->phase1(),
                                      snap->phase2()));
  }

  size_t bytes = 0;
  DAR_RETURN_IF_ERROR(writer.WriteToFile(path, &bytes));
  RecordSave(registry_.get(), bytes, watch.ElapsedSeconds());
  return Status::OK();
}

Status StreamingMiner::MaybeCheckpoint() {
  if (stream_config_.checkpoint_every_rows <= 0) return Status::OK();
  const int64_t rows = rows_ingested_.load(std::memory_order_relaxed);
  if (rows - rows_at_checkpoint_ < stream_config_.checkpoint_every_rows) {
    return Status::OK();
  }
  // Advance the cadence mark before writing: a failing disk surfaces one
  // error per cadence window, not one per subsequent row.
  rows_at_checkpoint_ = rows;
  return SaveCheckpoint(stream_config_.checkpoint_path);
}

Result<RestoredStream> StreamingMiner::RestoreFromFile(
    const std::string& path, const DarConfig& config,
    std::shared_ptr<Executor> executor,
    std::shared_ptr<telemetry::MetricsRegistry> registry,
    MiningObserver* observer) {
  Stopwatch watch;
  DAR_RETURN_IF_ERROR(config.Validate());
  DAR_ASSIGN_OR_RETURN(persist::CheckpointReader reader,
                       persist::CheckpointReader::Open(path));

  DAR_ASSIGN_OR_RETURN(std::string_view config_bytes,
                       reader.Section(SectionId::kConfig));
  DAR_ASSIGN_OR_RETURN(DarConfig saved_config,
                       persist::DecodeConfigSection(config_bytes));
  DAR_ASSIGN_OR_RETURN(std::string_view schema_bytes,
                       reader.Section(SectionId::kSchema));
  DAR_ASSIGN_OR_RETURN(Schema schema,
                       persist::DecodeSchemaSection(schema_bytes));
  DAR_ASSIGN_OR_RETURN(std::string_view partition_bytes,
                       reader.Section(SectionId::kPartition));
  DAR_ASSIGN_OR_RETURN(AttributePartition partition,
                       persist::DecodePartitionSection(partition_bytes,
                                                       schema));
  std::vector<Dictionary> dictionaries;
  if (reader.HasSection(SectionId::kDictionaries)) {
    DAR_ASSIGN_OR_RETURN(std::string_view dict_bytes,
                         reader.Section(SectionId::kDictionaries));
    DAR_ASSIGN_OR_RETURN(dictionaries,
                         persist::DecodeDictionariesSection(dict_bytes));
  }
  DAR_ASSIGN_OR_RETURN(std::string_view state_bytes,
                       reader.Section(SectionId::kStreamState));
  DAR_ASSIGN_OR_RETURN(StreamState state,
                       DecodeStreamStateSection(state_bytes));
  // Same invariant StreamingMiner::Make enforces: scoring needs the
  // support post-scan, which needs retained tuples.
  if (!state.stream_config.score_measures.empty() &&
      !config.count_rule_support) {
    return Status::InvalidArgument(
        "'" + path + "': the checkpointed stream scores measures (" +
        "StreamConfig::score_measures) but the restoring config has "
        "count_rule_support off");
  }
  // Shard identity travels in the provenance section (absent in
  // checkpoints predating it, which restore as anonymous).
  if (reader.HasSection(SectionId::kShards)) {
    DAR_ASSIGN_OR_RETURN(std::string_view shard_bytes,
                         reader.Section(SectionId::kShards));
    DAR_ASSIGN_OR_RETURN(std::vector<persist::ShardInfo> shards,
                         persist::DecodeShardsSection(shard_bytes));
    if (shards.size() != 1) {
      return Status::InvalidArgument(
          "'" + path + "': a stream checkpoint must describe exactly one "
          "shard, found " + std::to_string(shards.size()) +
          " (merged checkpoints cannot be restored as streams)");
    }
    state.stream_config.shard_id = shards[0].shard_id;
    if (shards[0].rows != state.rows_ingested) {
      return Status::InvalidArgument(
          "'" + path + "': shard provenance records " +
          std::to_string(shards[0].rows) + " rows but stream state records " +
          std::to_string(state.rows_ingested));
    }
  }

  // The builder is rebuilt under the *restoring* config: the serialized
  // trees are pre-frequency-filter summaries, and the finishing pipeline
  // (frequency threshold, d0 derivation) runs the restoring session's
  // knobs — which is exactly what makes warm re-mining under different
  // thresholds possible without touching the data.
  DAR_ASSIGN_OR_RETURN(std::string_view builder_bytes,
                       reader.Section(SectionId::kBuilder));
  DAR_ASSIGN_OR_RETURN(
      Phase1Builder builder,
      persist::DecodeBuilderSection(
          builder_bytes, config, schema, partition,
          executor != nullptr ? executor.get() : nullptr, observer,
          telemetry::TelemetryContext(registry.get())));
  if (builder.rows_added() != state.rows_ingested) {
    return Status::InvalidArgument(
        "'" + path + "': builder recorded " +
        std::to_string(builder.rows_added()) +
        " rows but stream state recorded " +
        std::to_string(state.rows_ingested));
  }

  telemetry::MetricsRegistry* reg = registry.get();
  auto stream = std::make_unique<StreamingMiner>(
      PrivateTag{}, config, state.stream_config, schema, partition,
      std::move(executor), std::move(registry), observer,
      std::move(builder));
  stream->rows_ingested_.store(state.rows_ingested,
                               std::memory_order_release);
  stream->rows_at_snapshot_.store(state.rows_at_snapshot,
                                  std::memory_order_release);
  stream->generation_.store(state.generation, std::memory_order_release);
  stream->rows_at_checkpoint_ = state.rows_at_checkpoint;

  if (reader.HasSection(SectionId::kRetainedRows)) {
    DAR_ASSIGN_OR_RETURN(std::string_view rows_bytes,
                         reader.Section(SectionId::kRetainedRows));
    DAR_ASSIGN_OR_RETURN(Relation retained,
                         DecodeRetainedRowsSection(rows_bytes, schema));
    if (static_cast<int64_t>(retained.num_rows()) != state.rows_ingested) {
      return Status::InvalidArgument(
          "'" + path + "': retained rows section has " +
          std::to_string(retained.num_rows()) +
          " rows but stream state recorded " +
          std::to_string(state.rows_ingested));
    }
    if (stream->retains_rows()) {
      stream->retained_rows_ = std::move(retained);
    }
    // A restoring config without count_rule_support simply drops the
    // retained tuples: the stream stops rescanning.
  } else if (stream->retains_rows() && state.rows_ingested > 0) {
    return Status::InvalidArgument(
        "'" + path + "': the restoring config sets count_rule_support but "
        "the checkpoint retained no tuples (it was saved without "
        "count_rule_support), so the support post-scan cannot resume");
  }

  if (reader.HasSection(SectionId::kSnapshot)) {
    DAR_ASSIGN_OR_RETURN(std::string_view snap_bytes,
                         reader.Section(SectionId::kSnapshot));
    DAR_ASSIGN_OR_RETURN(persist::DecodedResults results,
                         persist::DecodeResultsSection(snap_bytes));
    if (results.generation != state.generation ||
        results.rows_ingested != state.rows_at_snapshot) {
      return Status::InvalidArgument(
          "'" + path + "': snapshot section is generation " +
          std::to_string(results.generation) + " at " +
          std::to_string(results.rows_ingested) +
          " rows, stream state expects generation " +
          std::to_string(state.generation) + " at " +
          std::to_string(state.rows_at_snapshot) + " rows");
    }
    auto snap = std::make_shared<const RuleSnapshot>(
        results.generation, results.rows_ingested,
        std::move(results.phase1), std::move(results.phase2),
        stream->partition_, state.stream_config.build_rule_index);
    DAR_RETURN_IF_ERROR(snap->CheckConsistency());
    stream->snapshot_.store(std::move(snap));
  } else if (state.generation != 0) {
    return Status::InvalidArgument(
        "'" + path + "': stream state records generation " +
        std::to_string(state.generation) +
        " but the checkpoint has no snapshot section");
  }

  RecordLoad(reg, reader.total_bytes(), watch.ElapsedSeconds());

  RestoredStream out;
  out.stream = std::move(stream);
  out.schema = std::move(schema);
  out.dictionaries = std::move(dictionaries);
  out.saved_config = std::move(saved_config);
  return out;
}

// Defined here rather than in session.cc for the same reason as
// Session::OpenStream: dar_core must not depend on dar_stream/dar_persist.

Status Session::SaveCheckpoint(const StreamingMiner& stream,
                               const std::string& path,
                               std::span<const Dictionary> dictionaries) const {
  return stream.SaveCheckpoint(path, dictionaries);
}

Result<RestoredStream> Session::RestoreCheckpoint(
    const std::string& path) const {
  return StreamingMiner::RestoreFromFile(path, config_, executor_, registry_,
                                         observer_or_null());
}

}  // namespace dar
