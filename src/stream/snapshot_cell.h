#ifndef DAR_STREAM_SNAPSHOT_CELL_H_
#define DAR_STREAM_SNAPSHOT_CELL_H_

#include <atomic>
#include <memory>
#include <utility>

#include "common/mutex.h"

namespace dar {

// Single-slot publication cell for std::shared_ptr<T>: one writer swaps in
// new values, any number of readers copy the current one concurrently.
//
// This exists because libstdc++'s std::atomic<std::shared_ptr<T>> (as of
// GCC 12) guards its pointer slot with a lock bit but releases it on the
// reader path with memory_order_relaxed, so the plain pointer read formally
// races with the writer's swap — ThreadSanitizer reports it, correctly per
// the C++ memory model. This cell runs the same spin-on-a-bit protocol with
// acquire/release on both sides. The critical section is a pointer +
// refcount copy (a few instructions, no allocation: the previous value is
// released outside the lock), so contention is negligible for the stream's
// one-writer/many-reader publication pattern.
//
// The spin bit is a Clang thread-safety capability (common/mutex.h), so
// the compiler — not just TSan — proves ptr_ is only touched inside an
// Acquire/Release pair.
template <typename T>
class SnapshotCell {
 public:
  SnapshotCell() = default;
  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  [[nodiscard]] std::shared_ptr<T> load() const {
    lock_.Acquire();
    std::shared_ptr<T> copy = ptr_;
    lock_.Release();
    return copy;
  }

  void store(std::shared_ptr<T> next) {
    lock_.Acquire();
    ptr_.swap(next);
    lock_.Release();
    // `next` now holds the previous value; it is released here, after the
    // lock, so a possibly expensive destructor never runs under it.
  }

 private:
  // The one-bit spinlock itself. Not a dar::Mutex: the whole point of this
  // cell is a critical section short enough that a futex-backed mutex
  // would dominate it, and the bit doubles as the TSan-visible
  // acquire/release pair documented above.
  class DAR_CAPABILITY("SnapshotCell::SpinBit") SpinBit {
   public:
    void Acquire() const DAR_ACQUIRE() {
      while (locked_.exchange(true, std::memory_order_acquire)) {
        while (locked_.load(std::memory_order_relaxed)) {
        }
      }
    }
    void Release() const DAR_RELEASE() {
      locked_.store(false, std::memory_order_release);
    }

   private:
    mutable std::atomic<bool> locked_{false};
  };

  SpinBit lock_;
  std::shared_ptr<T> ptr_ DAR_GUARDED_BY(lock_);
};

}  // namespace dar

#endif  // DAR_STREAM_SNAPSHOT_CELL_H_
