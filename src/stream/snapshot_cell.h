#ifndef DAR_STREAM_SNAPSHOT_CELL_H_
#define DAR_STREAM_SNAPSHOT_CELL_H_

#include <atomic>
#include <memory>
#include <utility>

namespace dar {

// Single-slot publication cell for std::shared_ptr<T>: one writer swaps in
// new values, any number of readers copy the current one concurrently.
//
// This exists because libstdc++'s std::atomic<std::shared_ptr<T>> (as of
// GCC 12) guards its pointer slot with a lock bit but releases it on the
// reader path with memory_order_relaxed, so the plain pointer read formally
// races with the writer's swap — ThreadSanitizer reports it, correctly per
// the C++ memory model. This cell runs the same spin-on-a-bit protocol with
// acquire/release on both sides. The critical section is a pointer +
// refcount copy (a few instructions, no allocation: the previous value is
// released outside the lock), so contention is negligible for the stream's
// one-writer/many-reader publication pattern.
template <typename T>
class SnapshotCell {
 public:
  SnapshotCell() = default;
  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  [[nodiscard]] std::shared_ptr<T> load() const {
    Lock();
    std::shared_ptr<T> copy = ptr_;
    Unlock();
    return copy;
  }

  void store(std::shared_ptr<T> next) {
    Lock();
    ptr_.swap(next);
    Unlock();
    // `next` now holds the previous value; it is released here, after the
    // lock, so a possibly expensive destructor never runs under it.
  }

 private:
  void Lock() const {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void Unlock() const { locked_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> locked_{false};
  std::shared_ptr<T> ptr_;  // guarded by locked_
};

}  // namespace dar

#endif  // DAR_STREAM_SNAPSHOT_CELL_H_
