#include "stream/rule_snapshot.h"

#include <algorithm>
#include <string>
#include <utility>

namespace dar {

RuleSnapshot::RuleSnapshot(uint64_t generation, int64_t rows_ingested,
                           Phase1Result phase1, Phase2Result phase2,
                           const AttributePartition& partition,
                           bool build_index, QualityArtifacts quality)
    : generation_(generation),
      rows_ingested_(rows_ingested),
      phase1_(std::move(phase1)),
      phase2_(std::move(phase2)),
      quality_(std::move(quality)) {
  if (build_index) {
    index_ = std::make_unique<const RuleIndex>(
        RuleIndex::Build(phase1_.clusters, phase2_.rules, partition));
  }
}

Status RuleSnapshot::CheckConsistency() const {
  if (generation_ == 0) {
    return Status::Internal("snapshot has generation 0 (never published)");
  }
  if (rows_ingested_ <= 0) {
    return Status::Internal("snapshot claims " +
                            std::to_string(rows_ingested_) +
                            " ingested rows");
  }
  const size_t num_clusters = phase1_.clusters.size();
  if (phase1_.effective_d0.size() != phase1_.clusters.num_parts()) {
    return Status::Internal(
        "effective_d0 has " + std::to_string(phase1_.effective_d0.size()) +
        " entries for " + std::to_string(phase1_.clusters.num_parts()) +
        " parts");
  }
  for (size_t k = 0; k < phase2_.rules.size(); ++k) {
    const DistanceRule& rule = phase2_.rules[k];
    if (rule.antecedent.empty() || rule.consequent.empty()) {
      return Status::Internal("rule " + std::to_string(k) +
                              " has an empty side");
    }
    for (const auto* side : {&rule.antecedent, &rule.consequent}) {
      if (!std::is_sorted(side->begin(), side->end())) {
        return Status::Internal("rule " + std::to_string(k) +
                                " has unsorted cluster ids");
      }
      for (size_t id : *side) {
        if (id >= num_clusters) {
          return Status::Internal(
              "rule " + std::to_string(k) + " references cluster " +
              std::to_string(id) + " of " + std::to_string(num_clusters));
        }
      }
    }
  }
  if (quality_.scored != nullptr) {
    if (quality_.scored->stats.size() != phase2_.rules.size()) {
      return Status::Internal(
          "scored set covers " +
          std::to_string(quality_.scored->stats.size()) +
          " rules, snapshot has " + std::to_string(phase2_.rules.size()));
    }
    if (quality_.scored->num_pruned > quality_.scored->stats.size()) {
      return Status::Internal(
          "scored set claims " + std::to_string(quality_.scored->num_pruned) +
          " pruned of " + std::to_string(quality_.scored->stats.size()));
    }
  }
  if (index_ != nullptr) {
    if (index_->num_clusters() != num_clusters) {
      return Status::Internal(
          "index covers " + std::to_string(index_->num_clusters()) +
          " clusters, snapshot has " + std::to_string(num_clusters));
    }
    if (index_->num_rules() != phase2_.rules.size()) {
      return Status::Internal(
          "index covers " + std::to_string(index_->num_rules()) +
          " rules, snapshot has " + std::to_string(phase2_.rules.size()));
    }
  }
  return Status::OK();
}

}  // namespace dar
