#ifndef DAR_STREAM_RULE_INDEX_H_
#define DAR_STREAM_RULE_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/model.h"
#include "core/rules.h"
#include "relation/partition.h"

namespace dar {

/// The snapshot's serving index: answers "which clusters contain tuple t"
/// and "which DARs fire for t" point queries without scanning every
/// cluster or rule.
///
/// Containment is bounding-box containment of the tuple's projection in
/// the cluster's image on its own part (the §7.2 presentation geometry —
/// the same boxes ClusterSet::Describe prints). A rule *fires* for t when
/// every antecedent and consequent cluster contains t.
///
/// Structure: per part, clusters are sorted by their box's lower bound on
/// the part's first dimension, with a running prefix-max of the upper
/// bounds. A query binary-searches the sorted lower bounds and walks left
/// only while the prefix-max still reaches the probe value, so it visits
/// the candidates whose first-dimension interval actually straddles the
/// probe instead of every cluster on the part. Rule firing is counted
/// through a cluster->rules adjacency, touching only rules that reference
/// at least one containing cluster.
///
/// Immutable after Build; Query is const and safe to call from any number
/// of reader threads concurrently, each with its own QueryScratch.
class RuleIndex {
 public:
  /// Reusable per-caller buffers for Query. A scratch grows to the high
  /// water mark of its caller's queries and is never shrunk, so a serving
  /// thread that reuses one scratch performs no allocation per query in
  /// steady state. Not thread-safe: one scratch per concurrent caller.
  struct QueryScratch {
    std::vector<size_t> clusters;
    std::vector<size_t> rules;
    std::vector<size_t> touched;  // internal: gathered rule references
  };

  /// A query answer as views into the caller's QueryScratch: valid until
  /// the next Query call with the same scratch (and no longer than the
  /// snapshot owning this index). The ids index the snapshot's ClusterSet
  /// and rule vector respectively; both are ascending.
  struct Hits {
    std::span<const size_t> clusters;
    std::span<const size_t> rules;
  };

  RuleIndex() = default;

  /// Builds the index over a Phase-I cluster set and the Phase-II rules
  /// derived from it. `partition` supplies each part's schema columns so
  /// queries can take a full-width tuple.
  static RuleIndex Build(const ClusterSet& clusters,
                         const std::vector<DistanceRule>& rules,
                         const AttributePartition& partition);

  /// Point query for one full-width tuple (one value per schema attribute
  /// covered by the partitioning; `row.size()` must be at least the
  /// largest partitioned column index + 1). Fills `scratch` and returns
  /// views into it — the allocation-free hot path.
  [[nodiscard]] Result<Hits> Query(std::span<const double> row,
                                   QueryScratch& scratch) const;

  [[nodiscard]] size_t num_clusters() const { return num_clusters_; }
  [[nodiscard]] size_t num_rules() const { return rule_arity_.size(); }

 private:
  // One dimension's [lo, hi] of a cluster's bounding box.
  struct Interval {
    double lo = 0;
    double hi = 0;
  };

  struct PartIndex {
    std::vector<size_t> columns;  // schema columns of this part
    // Clusters on this part sorted by box lo on dimension 0 (ties by id).
    std::vector<size_t> ids;
    std::vector<double> lo0;            // sort keys, aligned with ids
    std::vector<double> prefix_max_hi;  // running max of hi on dim 0
    std::vector<std::vector<Interval>> boxes;  // full box, aligned with ids
  };

  std::vector<PartIndex> parts_;
  std::vector<std::vector<size_t>> rules_of_cluster_;
  std::vector<size_t> rule_arity_;  // |antecedent| + |consequent| per rule
  size_t num_clusters_ = 0;
  size_t min_row_width_ = 0;
};

}  // namespace dar

#endif  // DAR_STREAM_RULE_INDEX_H_
