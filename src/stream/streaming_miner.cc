#include "stream/streaming_miner.h"

#include <utility>

#include "common/stopwatch.h"
#include "core/phase2_runner.h"
#include "core/rule_stats.h"
#include "core/session.h"
#include "quality/diff.h"
#include "quality/prune.h"
#include "quality/scored_rules.h"
#include "telemetry/context.h"

namespace dar {

StreamingMiner::StreamingMiner(
    PrivateTag, DarConfig config, StreamConfig stream_config, Schema schema,
    AttributePartition partition, std::shared_ptr<Executor> executor,
    std::shared_ptr<telemetry::MetricsRegistry> registry,
    MiningObserver* observer, Phase1Builder builder)
    : config_(std::move(config)),
      stream_config_(std::move(stream_config)),
      schema_(std::move(schema)),
      partition_(std::move(partition)),
      executor_(std::move(executor)),
      registry_(std::move(registry)),
      observer_(observer),
      builder_(std::move(builder)),
      retained_rows_(schema_) {
  if (registry_ != nullptr) {
    // Resolve every handle once; recording is then lock-free. All metric
    // names live under stream.* so a telemetry snapshot shows the stream's
    // lifetime totals next to the per-remine phase1.*/phase2.* counters.
    telemetry::MetricsRegistry& reg = *registry_;
    ingest_batches_ = reg.GetCounter("stream.ingest_batches");
    ingest_rows_ = reg.GetCounter("stream.ingest_rows");
    remines_ = reg.GetCounter("stream.remines");
    generation_gauge_ = reg.GetGauge("stream.generation");
    staleness_gauge_ = reg.GetGauge("stream.staleness_rows");
    snapshot_rules_ = reg.GetGauge("stream.snapshot_rules");
    snapshot_clusters_ = reg.GetGauge("stream.snapshot_clusters");
    ingest_seconds_ = reg.GetHistogram(
        "stream.ingest_seconds", telemetry::Histogram::LatencyBounds());
    remine_seconds_ = reg.GetHistogram(
        "stream.remine_seconds", telemetry::Histogram::LatencyBounds());
    rules_scored_ = reg.GetCounter("quality.rules_scored");
    rules_pruned_ = reg.GetCounter("quality.rules_pruned");
    rules_born_ = reg.GetCounter("quality.rules_born");
    rules_died_ = reg.GetCounter("quality.rules_died");
    rules_drifted_ = reg.GetCounter("quality.rules_drifted");
  }
}

Result<std::unique_ptr<StreamingMiner>> StreamingMiner::Make(
    const DarConfig& config, const Schema& schema,
    const AttributePartition& partition, StreamConfig stream_config,
    std::shared_ptr<Executor> executor,
    std::shared_ptr<telemetry::MetricsRegistry> registry,
    MiningObserver* observer) {
  DAR_RETURN_IF_ERROR(config.Validate());
  DAR_RETURN_IF_ERROR(stream_config.Validate());
  if (!stream_config.score_measures.empty() && !config.count_rule_support) {
    return Status::InvalidArgument(
        "StreamConfig::score_measures requires DarConfig::"
        "count_rule_support: measure scoring needs contingency tables, so "
        "the stream must retain tuples for the post-scan");
  }
  DAR_ASSIGN_OR_RETURN(
      Phase1Builder builder,
      Phase1Builder::Make(config, schema, partition,
                          executor != nullptr ? executor.get() : nullptr,
                          observer,
                          telemetry::TelemetryContext(registry.get())));
  // The atomics rule out moves, so the stream lives on the heap from
  // birth; PrivateTag keeps construction funneled through Make.
  return std::make_unique<StreamingMiner>(
      PrivateTag{}, config, std::move(stream_config), schema, partition,
      std::move(executor), std::move(registry), observer,
      std::move(builder));
}

Status StreamingMiner::Ingest(const Relation& batch) {
  Stopwatch watch;
  DAR_RETURN_IF_ERROR(builder_.AddRelation(batch));
  if (retains_rows()) {
    retained_rows_.Reserve(retained_rows_.num_rows() + batch.num_rows());
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      DAR_RETURN_IF_ERROR(retained_rows_.AppendRow(batch.Row(r)));
    }
  }
  rows_ingested_.store(builder_.rows_added(), std::memory_order_release);
  if (ingest_batches_ != nullptr) {
    ingest_batches_->Increment();
    ingest_rows_->Increment(static_cast<int64_t>(batch.num_rows()));
    ingest_seconds_->Record(watch.ElapsedSeconds());
    staleness_gauge_->Set(static_cast<double>(rows_since_snapshot()));
  }
  // Re-mine before checkpointing, so a cadence checkpoint taken this batch
  // carries the freshest snapshot available.
  DAR_RETURN_IF_ERROR(MaybeRemine());
  return MaybeCheckpoint();
}

Status StreamingMiner::IngestRow(std::span<const double> row) {
  Stopwatch watch;
  DAR_RETURN_IF_ERROR(builder_.AddRow(row));
  if (retains_rows()) {
    DAR_RETURN_IF_ERROR(retained_rows_.AppendRow(row));
  }
  rows_ingested_.store(builder_.rows_added(), std::memory_order_release);
  if (ingest_rows_ != nullptr) {
    ingest_rows_->Increment();
    ingest_seconds_->Record(watch.ElapsedSeconds());
    staleness_gauge_->Set(static_cast<double>(rows_since_snapshot()));
  }
  DAR_RETURN_IF_ERROR(MaybeRemine());
  return MaybeCheckpoint();
}

Status StreamingMiner::MaybeRemine() {
  if (stream_config_.remine_every_rows <= 0) return Status::OK();
  if (rows_since_snapshot() < stream_config_.remine_every_rows) {
    return Status::OK();
  }
  return Remine().status();
}

Result<std::shared_ptr<const RuleSnapshot>> StreamingMiner::Remine() {
  Stopwatch watch;
  const int64_t rows = builder_.rows_added();
  // Summary-only: clone the live trees, finish the clones, re-derive the
  // rules from the summaries. No ingested tuple is revisited.
  DAR_ASSIGN_OR_RETURN(Phase1Result phase1, builder_.Snapshot());
  Phase2RunOptions options;
  options.executor = executor_ != nullptr ? executor_.get() : nullptr;
  options.observer = observer_;
  options.telemetry = telemetry::TelemetryContext(registry_.get());
  DAR_ASSIGN_OR_RETURN(Phase2Result phase2,
                       RunPhase2OnSummaries(phase1, config_, options));

  const uint64_t generation =
      generation_.load(std::memory_order_relaxed) + 1;
  const std::shared_ptr<const RuleSnapshot> previous = snapshot_.load();
  DAR_ASSIGN_OR_RETURN(
      QualityArtifacts quality,
      ComputeQuality(phase1, phase2, previous.get(), generation));
  auto snapshot = std::make_shared<const RuleSnapshot>(
      generation, rows, std::move(phase1), std::move(phase2), partition_,
      stream_config_.build_rule_index, std::move(quality));

  // Publication order: the fully built snapshot first (SnapshotCell's
  // unlock is a release), then the counters readers use as staleness/
  // progress gauges. A reader that sees generation N can therefore always
  // load a snapshot of at least that generation.
  snapshot_.store(snapshot);
  rows_at_snapshot_.store(rows, std::memory_order_release);
  generation_.store(generation, std::memory_order_release);

  if (remines_ != nullptr) {
    remines_->Increment();
    remine_seconds_->Record(watch.ElapsedSeconds());
    generation_gauge_->Set(static_cast<double>(generation));
    staleness_gauge_->Set(0);
    snapshot_rules_->Set(static_cast<double>(snapshot->rules().size()));
    snapshot_clusters_->Set(static_cast<double>(snapshot->clusters().size()));
    if (snapshot->scored() != nullptr) {
      rules_scored_->Increment(
          static_cast<int64_t>(snapshot->scored()->stats.size()));
      rules_pruned_->Increment(
          static_cast<int64_t>(snapshot->scored()->num_pruned));
    }
    if (snapshot->diff() != nullptr) {
      rules_born_->Increment(static_cast<int64_t>(snapshot->diff()->born));
      rules_died_->Increment(static_cast<int64_t>(snapshot->diff()->died));
      rules_drifted_->Increment(
          static_cast<int64_t>(snapshot->diff()->drifted));
    }
  }
  return snapshot;
}

Result<QualityArtifacts> StreamingMiner::ComputeQuality(
    const Phase1Result& phase1, Phase2Result& phase2,
    const RuleSnapshot* previous, uint64_t new_generation) {
  QualityArtifacts quality;
  if (retains_rows()) {
    // The §6.2 support post-scan the batch path runs inside Mine(): one
    // executor-parallel pass over the retained tuples fills contingency
    // tables for every rule at once.
    DAR_ASSIGN_OR_RETURN(
        std::vector<RuleStats> stats,
        ComputeRuleStats(retained_rows_, partition_, phase1.clusters,
                         phase2.rules,
                         executor_ != nullptr ? executor_.get() : nullptr));
    for (size_t k = 0; k < phase2.rules.size(); ++k) {
      phase2.rules[k].support_count = stats[k].both;
    }
    if (!stream_config_.score_measures.empty()) {
      DAR_ASSIGN_OR_RETURN(
          quality::ScoredRuleSet scored,
          quality::ScoreRules(std::move(stats), measures_,
                              stream_config_.score_measures));
      if (stream_config_.prune_redundant) {
        quality::PruneOptions prune_options;
        prune_options.min_overlap = stream_config_.prune_min_overlap;
        DAR_ASSIGN_OR_RETURN(
            quality::PruneResult pruned,
            quality::PruneRedundant(phase1.clusters, phase2.rules,
                                    scored.scores, prune_options));
        scored.representative = std::move(pruned.representative);
        scored.num_pruned = pruned.num_pruned;
      }
      quality.scored = std::make_shared<const quality::ScoredRuleSet>(
          std::move(scored));
    }
  }
  if (stream_config_.diff_snapshots && previous != nullptr) {
    quality::DiffOptions diff_options;
    diff_options.interval_tolerance =
        stream_config_.drift_interval_tolerance;
    diff_options.degree_tolerance = stream_config_.drift_degree_tolerance;
    DAR_ASSIGN_OR_RETURN(
        quality::SnapshotDiffResult diff,
        quality::DiffRuleSets(previous->clusters(), previous->rules(),
                              previous->generation(), phase1.clusters,
                              phase2.rules, new_generation, diff_options));
    quality.diff =
        std::make_shared<const quality::SnapshotDiffResult>(std::move(diff));
  }
  return quality;
}

// Defined here rather than in session.cc so dar_core does not depend on
// dar_stream: the facade's streaming entry point links with the subsystem
// it constructs.
Result<std::unique_ptr<StreamingMiner>> Session::OpenStream(
    const Schema& schema, const AttributePartition& partition,
    StreamConfig stream_config) const {
  return StreamingMiner::Make(config_, schema, partition, stream_config,
                              executor_, registry_, observer_or_null());
}

}  // namespace dar
