#ifndef DAR_STREAM_RULE_SNAPSHOT_H_
#define DAR_STREAM_RULE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/miner_result.h"
#include "core/model.h"
#include "core/rules.h"
#include "quality/diff.h"
#include "quality/scored_rules.h"
#include "relation/partition.h"
#include "stream/rule_index.h"

namespace dar {

/// Optional per-snapshot quality layer: measure scores + pruning verdicts
/// and the diff against the previous generation. Produced by
/// StreamingMiner when the stream was opened with score_measures /
/// diff_snapshots; both pointers null otherwise. Shared (not copied) into
/// the snapshot so readers hold them for exactly as long as they hold the
/// generation.
struct QualityArtifacts {
  std::shared_ptr<const quality::ScoredRuleSet> scored;
  std::shared_ptr<const quality::SnapshotDiffResult> diff;
};

/// One published state of an incremental mining stream: the Phase-I
/// summaries and Phase-II rules derived from everything ingested up to
/// `rows_ingested`, plus (optionally) the RuleIndex serving layer built
/// over them.
///
/// Immutable after construction. StreamingMiner publishes snapshots as
/// `std::shared_ptr<const RuleSnapshot>` through an atomic swap, so any
/// number of reader threads can hold, query and compare snapshots while
/// the ingest thread keeps mining — a reader's view is always one
/// complete, internally consistent generation, never a half-updated one.
class RuleSnapshot {
 public:
  RuleSnapshot(uint64_t generation, int64_t rows_ingested,
               Phase1Result phase1, Phase2Result phase2,
               const AttributePartition& partition, bool build_index,
               QualityArtifacts quality = {});

  RuleSnapshot(const RuleSnapshot&) = delete;
  RuleSnapshot& operator=(const RuleSnapshot&) = delete;

  /// 1-based publication counter: snapshot N+1 replaced snapshot N.
  [[nodiscard]] uint64_t generation() const { return generation_; }

  /// Rows the stream had absorbed when this snapshot was derived.
  [[nodiscard]] int64_t rows_ingested() const { return rows_ingested_; }

  [[nodiscard]] const Phase1Result& phase1() const { return phase1_; }
  [[nodiscard]] const Phase2Result& phase2() const { return phase2_; }
  [[nodiscard]] const ClusterSet& clusters() const {
    return phase1_.clusters;
  }
  [[nodiscard]] const std::vector<DistanceRule>& rules() const {
    return phase2_.rules;
  }

  /// The tuple->cluster/rule point-query index; null when the stream was
  /// opened with StreamConfig::build_rule_index = false.
  [[nodiscard]] const RuleIndex* index() const { return index_.get(); }

  /// Measure scores + pruning verdicts for this generation's rules; null
  /// when the stream was opened without StreamConfig::score_measures.
  [[nodiscard]] const quality::ScoredRuleSet* scored() const {
    return quality_.scored.get();
  }

  /// The diff against the previous published generation; null when the
  /// stream was opened without StreamConfig::diff_snapshots, and on the
  /// first generation (nothing to diff against).
  [[nodiscard]] const quality::SnapshotDiffResult* diff() const {
    return quality_.diff.get();
  }

  /// Structural self-check used by the concurrency tests: a reader that
  /// obtained this snapshot through StreamingMiner::snapshot() must always
  /// see a complete object — every rule's cluster ids sorted and in range,
  /// per-part d0 vector sized to the cluster set, index cardinalities
  /// matching, generation positive. Any violation means a torn publish.
  [[nodiscard]] Status CheckConsistency() const;

 private:
  uint64_t generation_;
  int64_t rows_ingested_;
  Phase1Result phase1_;
  Phase2Result phase2_;
  std::unique_ptr<const RuleIndex> index_;  // null when disabled
  QualityArtifacts quality_;                // both null when disabled
};

}  // namespace dar

#endif  // DAR_STREAM_RULE_SNAPSHOT_H_
