#ifndef DAR_STREAM_STREAM_CONFIG_H_
#define DAR_STREAM_STREAM_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dar {

/// Knobs of an incremental mining stream (Session::OpenStream). The
/// DarConfig knobs — thresholds, metrics, arities — are inherited from the
/// owning Session; this struct only configures *when* rules are re-derived
/// and what the published snapshot carries.
struct StreamConfig {
  /// Re-mine cadence: after every `remine_every_rows` ingested rows a new
  /// RuleSnapshot is derived and published automatically. 0 disables the
  /// automatic cadence — snapshots are then produced only by explicit
  /// Remine() calls. Re-mining is summary-only (Thm 6.1): cost is
  /// proportional to the number of clusters, not to the rows ingested.
  int64_t remine_every_rows = 4096;

  /// When true (default) every snapshot carries a RuleIndex, so readers
  /// can answer "which clusters contain tuple t / which DARs fire for t"
  /// point queries in sublinear time. Costs O(clusters * log) per re-mine.
  bool build_rule_index = true;

  /// Checkpoint cadence: after every `checkpoint_every_rows` ingested rows
  /// the stream's full resumable state — live ACF-trees, counters and the
  /// current snapshot — is written atomically to `checkpoint_path`
  /// (see persist/checkpoint_io.h). 0 disables automatic checkpointing;
  /// StreamingMiner::SaveCheckpoint still works on demand. Cadence
  /// checkpoints carry no dictionaries section (the writer thread does not
  /// hold them); pass them to an explicit SaveCheckpoint call instead.
  int64_t checkpoint_every_rows = 0;

  /// Destination file for cadence checkpoints. Required (non-empty) when
  /// checkpoint_every_rows > 0; each checkpoint atomically replaces the
  /// previous one via write-to-temp + rename.
  std::string checkpoint_path;

  /// Shard identity recorded in this stream's checkpoints (the kShards
  /// provenance section) for distributed mining: workers mining disjoint
  /// data shards set distinct non-negative ids, and
  /// persist::MergeCheckpoints refuses to merge two checkpoints claiming
  /// the same non-negative id (the same shard merged twice would
  /// double-count its tuples). -1 (default) = anonymous; anonymous shards
  /// are never treated as duplicates.
  int64_t shard_id = -1;

  /// Rejects a negative cadence, and a checkpoint cadence without a
  /// destination path. Session::OpenStream refuses to open a stream on any
  /// violation.
  [[nodiscard]] Status Validate() const {
    if (remine_every_rows < 0) {
      return Status::InvalidArgument(
          "StreamConfig::remine_every_rows must be >= 0, got " +
          std::to_string(remine_every_rows));
    }
    if (checkpoint_every_rows < 0) {
      return Status::InvalidArgument(
          "StreamConfig::checkpoint_every_rows must be >= 0, got " +
          std::to_string(checkpoint_every_rows));
    }
    if (checkpoint_every_rows > 0 && checkpoint_path.empty()) {
      return Status::InvalidArgument(
          "StreamConfig::checkpoint_every_rows is set but checkpoint_path "
          "is empty");
    }
    if (shard_id < -1) {
      return Status::InvalidArgument(
          "StreamConfig::shard_id must be >= -1 (-1 = anonymous), got " +
          std::to_string(shard_id));
    }
    return Status::OK();
  }
};

}  // namespace dar

#endif  // DAR_STREAM_STREAM_CONFIG_H_
