#ifndef DAR_STREAM_STREAM_CONFIG_H_
#define DAR_STREAM_STREAM_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dar {

/// Knobs of an incremental mining stream (Session::OpenStream). The
/// DarConfig knobs — thresholds, metrics, arities — are inherited from the
/// owning Session; this struct only configures *when* rules are re-derived
/// and what the published snapshot carries.
struct StreamConfig {
  /// Re-mine cadence: after every `remine_every_rows` ingested rows a new
  /// RuleSnapshot is derived and published automatically. 0 disables the
  /// automatic cadence — snapshots are then produced only by explicit
  /// Remine() calls. Re-mining is summary-only (Thm 6.1): cost is
  /// proportional to the number of clusters, not to the rows ingested.
  int64_t remine_every_rows = 4096;

  /// When true (default) every snapshot carries a RuleIndex, so readers
  /// can answer "which clusters contain tuple t / which DARs fire for t"
  /// point queries in sublinear time. Costs O(clusters * log) per re-mine.
  bool build_rule_index = true;

  /// Checkpoint cadence: after every `checkpoint_every_rows` ingested rows
  /// the stream's full resumable state — live ACF-trees, counters and the
  /// current snapshot — is written atomically to `checkpoint_path`
  /// (see persist/checkpoint_io.h). 0 disables automatic checkpointing;
  /// StreamingMiner::SaveCheckpoint still works on demand. Cadence
  /// checkpoints carry no dictionaries section (the writer thread does not
  /// hold them); pass them to an explicit SaveCheckpoint call instead.
  int64_t checkpoint_every_rows = 0;

  /// Destination file for cadence checkpoints. Required (non-empty) when
  /// checkpoint_every_rows > 0; each checkpoint atomically replaces the
  /// previous one via write-to-temp + rename.
  std::string checkpoint_path;

  /// Shard identity recorded in this stream's checkpoints (the kShards
  /// provenance section) for distributed mining: workers mining disjoint
  /// data shards set distinct non-negative ids, and
  /// persist::MergeCheckpoints refuses to merge two checkpoints claiming
  /// the same non-negative id (the same shard merged twice would
  /// double-count its tuples). -1 (default) = anonymous; anonymous shards
  /// are never treated as duplicates.
  int64_t shard_id = -1;

  /// Interestingness measures evaluated over every published snapshot's
  /// rules (quality/measure.h names: "support", "confidence", "lift",
  /// "conviction", "chi_squared", plus any measure registered on the
  /// stream). Empty (default) disables per-snapshot scoring. Non-empty
  /// requires DarConfig::count_rule_support: scoring needs contingency
  /// tables, so the stream retains ingested tuples for the post-scan.
  std::vector<std::string> score_measures;

  /// When true, each scored snapshot is redundancy-pruned: near-duplicate
  /// rules (same attribute sets, every interval dimension overlapping by
  /// >= prune_min_overlap, dominated on degree and all scores) are marked
  /// non-representative. Requires non-empty score_measures.
  bool prune_redundant = false;

  /// Pruning strictness in [0, 1]: the per-dimension Jaccard overlap two
  /// rules must exceed to be considered near-duplicates. Higher = stricter
  /// = fewer rules pruned.
  double prune_min_overlap = 0.5;

  /// When true, every published snapshot (after the first) carries a
  /// SnapshotDiff against its predecessor classifying rules as born /
  /// died / drifted / unchanged, surfaced via quality.* telemetry and the
  /// serve diff endpoints.
  bool diff_snapshots = false;

  /// A matched rule counts as drifted when any interval endpoint moved by
  /// more than this fraction of the interval width...
  double drift_interval_tolerance = 0.05;

  /// ...or its degree moved by more than this relative fraction.
  double drift_degree_tolerance = 0.05;

  /// Rejects a negative cadence, a checkpoint cadence without a
  /// destination path, and inconsistent quality knobs. Session::OpenStream
  /// refuses to open a stream on any violation.
  [[nodiscard]] Status Validate() const {
    if (remine_every_rows < 0) {
      return Status::InvalidArgument(
          "StreamConfig::remine_every_rows must be >= 0, got " +
          std::to_string(remine_every_rows));
    }
    if (checkpoint_every_rows < 0) {
      return Status::InvalidArgument(
          "StreamConfig::checkpoint_every_rows must be >= 0, got " +
          std::to_string(checkpoint_every_rows));
    }
    if (checkpoint_every_rows > 0 && checkpoint_path.empty()) {
      return Status::InvalidArgument(
          "StreamConfig::checkpoint_every_rows is set but checkpoint_path "
          "is empty");
    }
    if (shard_id < -1) {
      return Status::InvalidArgument(
          "StreamConfig::shard_id must be >= -1 (-1 = anonymous), got " +
          std::to_string(shard_id));
    }
    for (const std::string& name : score_measures) {
      if (name.empty()) {
        return Status::InvalidArgument(
            "StreamConfig::score_measures contains an empty name");
      }
    }
    if (prune_redundant && score_measures.empty()) {
      return Status::InvalidArgument(
          "StreamConfig::prune_redundant requires score_measures: pruning "
          "compares rule scores to pick representatives");
    }
    if (prune_min_overlap < 0.0 || prune_min_overlap > 1.0) {
      return Status::InvalidArgument(
          "StreamConfig::prune_min_overlap must be in [0, 1], got " +
          std::to_string(prune_min_overlap));
    }
    if (drift_interval_tolerance < 0.0) {
      return Status::InvalidArgument(
          "StreamConfig::drift_interval_tolerance must be >= 0, got " +
          std::to_string(drift_interval_tolerance));
    }
    if (drift_degree_tolerance < 0.0) {
      return Status::InvalidArgument(
          "StreamConfig::drift_degree_tolerance must be >= 0, got " +
          std::to_string(drift_degree_tolerance));
    }
    return Status::OK();
  }
};

}  // namespace dar

#endif  // DAR_STREAM_STREAM_CONFIG_H_
