#ifndef DAR_STREAM_STREAM_CONFIG_H_
#define DAR_STREAM_STREAM_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dar {

/// Knobs of an incremental mining stream (Session::OpenStream). The
/// DarConfig knobs — thresholds, metrics, arities — are inherited from the
/// owning Session; this struct only configures *when* rules are re-derived
/// and what the published snapshot carries.
struct StreamConfig {
  /// Re-mine cadence: after every `remine_every_rows` ingested rows a new
  /// RuleSnapshot is derived and published automatically. 0 disables the
  /// automatic cadence — snapshots are then produced only by explicit
  /// Remine() calls. Re-mining is summary-only (Thm 6.1): cost is
  /// proportional to the number of clusters, not to the rows ingested.
  int64_t remine_every_rows = 4096;

  /// When true (default) every snapshot carries a RuleIndex, so readers
  /// can answer "which clusters contain tuple t / which DARs fire for t"
  /// point queries in sublinear time. Costs O(clusters * log) per re-mine.
  bool build_rule_index = true;

  /// Rejects a negative cadence. Session::OpenStream refuses to open a
  /// stream on any violation.
  [[nodiscard]] Status Validate() const {
    if (remine_every_rows < 0) {
      return Status::InvalidArgument(
          "StreamConfig::remine_every_rows must be >= 0, got " +
          std::to_string(remine_every_rows));
    }
    return Status::OK();
  }
};

}  // namespace dar

#endif  // DAR_STREAM_STREAM_CONFIG_H_
