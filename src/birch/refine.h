#ifndef DAR_BIRCH_REFINE_H_
#define DAR_BIRCH_REFINE_H_

#include <vector>

#include "birch/acf.h"
#include "birch/metrics.h"

namespace dar {

/// Options for the global refinement pass.
struct RefineOptions {
  /// Two clusters merge while the merged diameter stays within this bound
  /// and their centroid distance is within `centroid_factor` times it.
  double diameter_threshold = 0;
  double centroid_factor = 1.0;
  /// Safety cap on merge operations (0 = unbounded).
  size_t max_merges = 0;
};

/// Agglomeratively merges a flat set of cluster summaries: repeatedly joins
/// the closest pair (by centroid distance on the own part) while the merged
/// diameter stays within the threshold.
///
/// This is BIRCH's global-clustering phase adapted to ACFs. The insertion
/// order sensitivity of the CF-tree routinely *fragments* a natural cluster
/// into several leaf entries (the paper attributes its ~4% centroid drift
/// to "the use of a non-optimal clustering strategy"); a refinement pass
/// over the extracted summaries repairs most fragmentation at
/// O(C^2 log C) cost in the number of clusters — cheap relative to the
/// scan, since C is memory-bounded.
///
/// All input summaries must share the same layout and own part.
std::vector<Acf> RefineClusters(std::vector<Acf> clusters,
                                const RefineOptions& options);

}  // namespace dar

#endif  // DAR_BIRCH_REFINE_H_
