#include "birch/metrics.h"

#include <cmath>

#include "common/logging.h"

namespace dar {

namespace {

// Average pairwise mismatch count between two discrete-part summaries:
// sum over dimensions of 1 - P(match) with
// P(match) = sum_v h1(v) * h2(v) / (N1 * N2).
double DiscreteAvgInter(const CfVector& a, const CfVector& b) {
  double total = 0;
  double n1n2 = static_cast<double>(a.n()) * b.n();
  for (size_t d = 0; d < a.dim(); ++d) {
    double same = 0;
    const auto& ha = a.histogram(d);
    const auto& hb = b.histogram(d);
    // Iterate the smaller histogram.
    const auto& small = ha.size() <= hb.size() ? ha : hb;
    const auto& large = ha.size() <= hb.size() ? hb : ha;
    for (const auto& [v, c] : small) {
      auto it = large.find(v);
      if (it != large.end()) same += static_cast<double>(c) * it->second;
    }
    total += 1.0 - same / n1n2;
  }
  return total;
}

// sum over points of ||t - centroid||^2 = SS - ||LS||^2 / N.
double ScatterAboutCentroid(const CfVector& c) {
  return c.SsSum() - c.LsSquaredNorm() / c.n();
}

}  // namespace

const char* ClusterMetricToString(ClusterMetric m) {
  switch (m) {
    case ClusterMetric::kD0Centroid:
      return "D0";
    case ClusterMetric::kD1CentroidManhattan:
      return "D1";
    case ClusterMetric::kD2AvgInter:
      return "D2";
    case ClusterMetric::kD3AvgIntra:
      return "D3";
    case ClusterMetric::kD4VarIncrease:
      return "D4";
  }
  return "unknown";
}

double ClusterDistance(const CfVector& a, const CfVector& b, ClusterMetric m) {
  DAR_CHECK_EQ(a.dim(), b.dim());
  DAR_CHECK_GT(a.n(), 0);
  DAR_CHECK_GT(b.n(), 0);
  bool discrete = a.has_histogram() && b.has_histogram();
  switch (m) {
    case ClusterMetric::kD0Centroid: {
      if (discrete) return DiscreteAvgInter(a, b);
      double s = 0;
      for (size_t d = 0; d < a.dim(); ++d) {
        double diff = a.ls()[d] / a.n() - b.ls()[d] / b.n();
        s += diff * diff;
      }
      return std::sqrt(s);
    }
    case ClusterMetric::kD1CentroidManhattan: {
      if (discrete) return DiscreteAvgInter(a, b);
      double s = 0;
      for (size_t d = 0; d < a.dim(); ++d) {
        s += std::fabs(a.ls()[d] / a.n() - b.ls()[d] / b.n());
      }
      return s;
    }
    case ClusterMetric::kD2AvgInter: {
      if (discrete) return DiscreteAvgInter(a, b);
      // sum_ij ||a_i - b_j||^2 = N2*SS1 + N1*SS2 - 2 * LS1 . LS2
      double dot = 0;
      for (size_t d = 0; d < a.dim(); ++d) dot += a.ls()[d] * b.ls()[d];
      double d2 = (b.n() * a.SsSum() + a.n() * b.SsSum() - 2.0 * dot) /
                  (static_cast<double>(a.n()) * b.n());
      return std::sqrt(std::max(0.0, d2));
    }
    case ClusterMetric::kD3AvgIntra: {
      return a.DiameterWithMerge(b);
    }
    case ClusterMetric::kD4VarIncrease: {
      if (discrete) return DiscreteAvgInter(a, b);
      CfVector merged = a;
      merged.Merge(b);
      double inc = ScatterAboutCentroid(merged) - ScatterAboutCentroid(a) -
                   ScatterAboutCentroid(b);
      return std::sqrt(std::max(0.0, inc));
    }
  }
  return 0;
}

double PointClusterDistance(std::span<const double> x, const CfVector& c) {
  DAR_CHECK_EQ(x.size(), c.dim());
  DAR_CHECK_GT(c.n(), 0);
  if (c.has_histogram()) {
    double total = 0;
    for (size_t d = 0; d < x.size(); ++d) {
      const auto& h = c.histogram(d);
      auto it = h.find(x[d]);
      double match = it == h.end() ? 0.0 : static_cast<double>(it->second);
      total += 1.0 - match / c.n();
    }
    return total;
  }
  switch (c.metric()) {
    case MetricKind::kManhattan: {
      double s = 0;
      for (size_t d = 0; d < x.size(); ++d) {
        s += std::fabs(x[d] - c.ls()[d] / c.n());
      }
      return s;
    }
    case MetricKind::kEuclidean:
    case MetricKind::kDiscrete: {
      double s = 0;
      for (size_t d = 0; d < x.size(); ++d) {
        double diff = x[d] - c.ls()[d] / c.n();
        s += diff * diff;
      }
      return std::sqrt(s);
    }
  }
  return 0;
}

}  // namespace dar
