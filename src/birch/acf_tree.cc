#include "birch/acf_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace dar {

namespace {

constexpr double kMinThreshold = 1e-12;

}  // namespace

AcfTree::AcfTree(std::shared_ptr<const AcfLayout> layout, size_t own_part,
                 AcfTreeOptions options)
    : layout_(std::move(layout)),
      own_part_(own_part),
      options_(options),
      threshold_(options.initial_threshold),
      root_(std::make_unique<Node>()) {
  DAR_CHECK(layout_ != nullptr);
  DAR_CHECK_LT(own_part_, layout_->num_parts());
  DAR_CHECK_GE(options_.branching_factor, 2);
  DAR_CHECK_GE(options_.leaf_capacity, 1);
  acf_bytes_estimate_ = layout_->ApproxAcfBytes();
}

Status AcfTree::InsertPoint(const PartedRow& row) {
  if (row.size() != layout_->num_parts()) {
    return Status::InvalidArgument(
        "parted row has " + std::to_string(row.size()) + " parts, expected " +
        std::to_string(layout_->num_parts()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].size() != layout_->parts[i].dim) {
      return Status::InvalidArgument("part " + std::to_string(i) +
                                     " has wrong dimension");
    }
    for (double v : row[i]) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "non-finite value in part " + std::to_string(i) +
            "; CF summaries require finite coordinates");
      }
    }
  }
  InsertOutcome out = InsertPointRec(root_.get(), row);
  if (out.split) GrowRoot(std::move(out.sibling));
  ++points_inserted_;

  if (in_rebuild_) return Status::OK();
  int rebuilds = 0;
  while (ApproxBytesNow() > options_.memory_budget_bytes) {
    if (++rebuilds > options_.max_rebuilds_per_insert) {
      return Status::ResourceExhausted(
          "ACF-tree cannot fit in " +
          std::to_string(options_.memory_budget_bytes) +
          " bytes after " + std::to_string(rebuilds - 1) + " rebuilds");
    }
    DAR_RETURN_IF_ERROR(Rebuild());
  }
  return Status::OK();
}

Status AcfTree::InsertSummary(Acf acf) {
  if (acf.layout_ptr().get() != layout_.get() ||
      acf.own_part() != own_part_) {
    return Status::InvalidArgument(
        "summary layout/part does not match this tree");
  }
  if (acf.n() <= 0) {
    return Status::InvalidArgument("cannot insert an empty summary");
  }
  int64_t mass = acf.n();
  InsertOutcome out = InsertSummaryRec(root_.get(), std::move(acf));
  if (out.split) GrowRoot(std::move(out.sibling));
  points_inserted_ += in_rebuild_ ? 0 : mass;

  if (in_rebuild_) return Status::OK();
  int rebuilds = 0;
  while (ApproxBytesNow() > options_.memory_budget_bytes) {
    if (++rebuilds > options_.max_rebuilds_per_insert) {
      return Status::ResourceExhausted("ACF-tree over memory budget");
    }
    DAR_RETURN_IF_ERROR(Rebuild());
  }
  return Status::OK();
}

AcfTree::InsertOutcome AcfTree::InsertPointRec(Node* node,
                                               const PartedRow& row) {
  const std::vector<double>& own = row[own_part_];
  if (node->is_leaf) {
    // Find the closest existing cluster.
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      double d = PointClusterDistance(own, node->entries[i].cf());
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    // Absorb only if the merged diameter stays within the threshold AND
    // the point itself is within the threshold of the centroid. The second
    // condition guards against mass dilution: for a heavy cluster the
    // average pairwise diameter moves by only O(D^2/N) when one point at
    // distance D is added, so the diameter test alone would let large
    // clusters swallow arbitrarily distant points.
    if (!node->entries.empty() &&
        node->entries[best].cf().DiameterWithPoint(own) <= threshold_ &&
        best_d <= threshold_) {
      node->entries[best].AddRow(row);
      return {};
    }
    // Start a new cluster.
    Acf fresh(layout_, own_part_);
    fresh.AddRow(row);
    node->entries.push_back(std::move(fresh));
    ++num_leaf_entries_;
    if (node->entries.size() <=
        static_cast<size_t>(options_.leaf_capacity)) {
      return {};
    }
    return {true, SplitNode(node)};
  }

  // Internal node: descend into the closest child.
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->children.size(); ++i) {
    double d = PointClusterDistance(own, node->children[i].cf);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  InsertOutcome below = InsertPointRec(node->children[best].child.get(), row);
  if (!below.split) {
    node->children[best].cf.AddPoint(own);
  } else {
    node->children[best].cf = ComputeNodeCf(*node->children[best].child);
    ChildRef fresh{ComputeNodeCf(*below.sibling), std::move(below.sibling)};
    node->children.push_back(std::move(fresh));
    if (node->children.size() >
        static_cast<size_t>(options_.branching_factor)) {
      return {true, SplitNode(node)};
    }
  }
  return {};
}

AcfTree::InsertOutcome AcfTree::InsertSummaryRec(Node* node, Acf&& acf) {
  if (node->is_leaf) {
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      double d = ClusterDistance(acf.cf(), node->entries[i].cf(),
                                 ClusterMetric::kD0Centroid);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    // Same dual test as for points (diameter + centroid distance), so
    // reinsertion during rebuilds cannot dilute heavy clusters either.
    if (!node->entries.empty() &&
        node->entries[best].cf().DiameterWithMerge(acf.cf()) <= threshold_ &&
        best_d <= threshold_) {
      node->entries[best].Merge(acf);
      return {};
    }
    node->entries.push_back(std::move(acf));
    ++num_leaf_entries_;
    if (node->entries.size() <=
        static_cast<size_t>(options_.leaf_capacity)) {
      return {};
    }
    return {true, SplitNode(node)};
  }

  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->children.size(); ++i) {
    double d = ClusterDistance(acf.cf(), node->children[i].cf,
                               ClusterMetric::kD0Centroid);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  const CfVector acf_cf = acf.cf();  // keep a copy; acf may be moved below
  InsertOutcome below =
      InsertSummaryRec(node->children[best].child.get(), std::move(acf));
  if (!below.split) {
    node->children[best].cf.Merge(acf_cf);
  } else {
    node->children[best].cf = ComputeNodeCf(*node->children[best].child);
    ChildRef fresh{ComputeNodeCf(*below.sibling), std::move(below.sibling)};
    node->children.push_back(std::move(fresh));
    if (node->children.size() >
        static_cast<size_t>(options_.branching_factor)) {
      return {true, SplitNode(node)};
    }
  }
  return {};
}

std::unique_ptr<AcfTree::Node> AcfTree::SplitNode(Node* node) {
  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  ++num_nodes_;

  if (node->is_leaf) {
    // Seed with the farthest pair of entry centroids, then assign each
    // entry to the closer seed.
    size_t n = node->entries.size();
    DAR_CHECK_GE(n, 2u);
    size_t sa = 0, sb = 1;
    double best = -1;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double d = ClusterDistance(node->entries[i].cf(),
                                   node->entries[j].cf(),
                                   ClusterMetric::kD0Centroid);
        if (d > best) {
          best = d;
          sa = i;
          sb = j;
        }
      }
    }
    const CfVector seed_a = node->entries[sa].cf();
    const CfVector seed_b = node->entries[sb].cf();
    std::vector<Acf> keep, move_out;
    for (size_t i = 0; i < n; ++i) {
      if (i == sa) {
        keep.push_back(std::move(node->entries[i]));
        continue;
      }
      if (i == sb) {
        move_out.push_back(std::move(node->entries[i]));
        continue;
      }
      double da = ClusterDistance(node->entries[i].cf(), seed_a,
                                  ClusterMetric::kD0Centroid);
      double db = ClusterDistance(node->entries[i].cf(), seed_b,
                                  ClusterMetric::kD0Centroid);
      if (da <= db) {
        keep.push_back(std::move(node->entries[i]));
      } else {
        move_out.push_back(std::move(node->entries[i]));
      }
    }
    node->entries = std::move(keep);
    sibling->entries = std::move(move_out);
  } else {
    size_t n = node->children.size();
    DAR_CHECK_GE(n, 2u);
    size_t sa = 0, sb = 1;
    double best = -1;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double d = ClusterDistance(node->children[i].cf, node->children[j].cf,
                                   ClusterMetric::kD0Centroid);
        if (d > best) {
          best = d;
          sa = i;
          sb = j;
        }
      }
    }
    const CfVector seed_a = node->children[sa].cf;
    const CfVector seed_b = node->children[sb].cf;
    std::vector<ChildRef> keep, move_out;
    for (size_t i = 0; i < n; ++i) {
      if (i == sa) {
        keep.push_back(std::move(node->children[i]));
        continue;
      }
      if (i == sb) {
        move_out.push_back(std::move(node->children[i]));
        continue;
      }
      double da = ClusterDistance(node->children[i].cf, seed_a,
                                  ClusterMetric::kD0Centroid);
      double db = ClusterDistance(node->children[i].cf, seed_b,
                                  ClusterMetric::kD0Centroid);
      if (da <= db) {
        keep.push_back(std::move(node->children[i]));
      } else {
        move_out.push_back(std::move(node->children[i]));
      }
    }
    node->children = std::move(keep);
    sibling->children = std::move(move_out);
  }
  return sibling;
}

CfVector AcfTree::ComputeNodeCf(const Node& node) const {
  const PartSpec& spec = layout_->parts[own_part_];
  CfVector cf(spec.dim, spec.metric);
  if (node.is_leaf) {
    for (const auto& e : node.entries) cf.Merge(e.cf());
  } else {
    for (const auto& c : node.children) cf.Merge(c.cf);
  }
  return cf;
}

void AcfTree::GrowRoot(std::unique_ptr<Node> sibling) {
  auto new_root = std::make_unique<Node>();
  new_root->is_leaf = false;
  ChildRef left{ComputeNodeCf(*root_), std::move(root_)};
  ChildRef right{ComputeNodeCf(*sibling), std::move(sibling)};
  new_root->children.push_back(std::move(left));
  new_root->children.push_back(std::move(right));
  root_ = std::move(new_root);
  ++num_nodes_;
}

double AcfTree::NextThreshold() const {
  // Within each leaf, the cheapest merge is between the closest pair of
  // entries; take the median of those over all leaves so a substantial
  // fraction of clusters merge after the rebuild (BIRCH §4.2 heuristic).
  std::vector<double> candidates;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf) {
      if (node->entries.size() < 2) continue;
      double best = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node->entries.size(); ++i) {
        for (size_t j = i + 1; j < node->entries.size(); ++j) {
          best = std::min(best, node->entries[i].cf().DiameterWithMerge(
                                    node->entries[j].cf()));
        }
      }
      candidates.push_back(best);
    } else {
      for (const auto& c : node->children) stack.push_back(c.child.get());
    }
  }
  double data_driven = 0;
  if (!candidates.empty()) {
    size_t mid = candidates.size() / 2;
    std::nth_element(candidates.begin(), candidates.begin() + mid,
                     candidates.end());
    data_driven = candidates[mid];
  } else {
    // Degenerate tree shapes (e.g. leaf capacity 1) never co-locate two
    // entries in a leaf; sample a handful of entries globally so the
    // threshold still jumps to the data scale instead of crawling up by
    // the growth factor alone.
    std::vector<Acf> sample;
    CollectLeafEntriesConst(root_.get(), sample);
    size_t limit = std::min<size_t>(sample.size(), 48);
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < limit; ++i) {
      for (size_t j = i + 1; j < limit; ++j) {
        best = std::min(best,
                        sample[i].cf().DiameterWithMerge(sample[j].cf()));
      }
    }
    if (limit >= 2) data_driven = best;
  }
  return std::max({threshold_ * options_.threshold_growth, data_driven,
                   kMinThreshold});
}

Status AcfTree::Rebuild() {
  double next = NextThreshold();
  std::vector<Acf> entries;
  CollectLeafEntries(root_.get(), entries);

  threshold_ = next;
  root_ = std::make_unique<Node>();
  num_nodes_ = 1;
  num_leaf_entries_ = 0;
  ++rebuild_count_;

  in_rebuild_ = true;
  Status status = Status::OK();
  for (auto& e : entries) {
    if (options_.outlier_entry_min_n > 0 &&
        e.n() < options_.outlier_entry_min_n) {
      outlier_buffer_.push_back(std::move(e));
      continue;
    }
    status = InsertSummary(std::move(e));
    if (!status.ok()) break;
  }
  in_rebuild_ = false;
  if (status.ok() && options_.on_rebuild) {
    options_.on_rebuild(rebuild_count_, threshold_);
  }
  return status;
}

void AcfTree::CollectLeafEntries(Node* node, std::vector<Acf>& out) {
  if (node->is_leaf) {
    for (auto& e : node->entries) out.push_back(std::move(e));
    node->entries.clear();
    return;
  }
  for (auto& c : node->children) CollectLeafEntries(c.child.get(), out);
}

void AcfTree::CollectLeafEntriesConst(const Node* node,
                                      std::vector<Acf>& out) const {
  if (node->is_leaf) {
    for (const auto& e : node->entries) out.push_back(e);
    return;
  }
  for (const auto& c : node->children) {
    CollectLeafEntriesConst(c.child.get(), out);
  }
}

Status AcfTree::FinishScan() {
  std::vector<Acf> pending = std::move(outlier_buffer_);
  outlier_buffer_.clear();
  for (auto& acf : pending) {
    // Walk down to the most promising leaf; absorb only if the merge keeps
    // the diameter within the threshold, else the cluster is a confirmed
    // outlier.
    Node* node = root_.get();
    std::vector<CfVector*> path;
    while (!node->is_leaf) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node->children.size(); ++i) {
        double d = ClusterDistance(acf.cf(), node->children[i].cf,
                                   ClusterMetric::kD0Centroid);
        if (d < best_d) {
          best_d = d;
          best = i;
        }
      }
      path.push_back(&node->children[best].cf);
      node = node->children[best].child.get();
    }
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      double d = ClusterDistance(acf.cf(), node->entries[i].cf(),
                                 ClusterMetric::kD0Centroid);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    if (!node->entries.empty() &&
        node->entries[best].cf().DiameterWithMerge(acf.cf()) <= threshold_ &&
        best_d <= threshold_) {
      const CfVector acf_cf = acf.cf();
      node->entries[best].Merge(acf);
      for (CfVector* cf : path) cf->Merge(acf_cf);
    } else {
      outliers_.push_back(std::move(acf));
    }
  }
  return Status::OK();
}

std::vector<Acf> AcfTree::ExtractClusters() const {
  std::vector<Acf> out;
  CollectLeafEntriesConst(root_.get(), out);
  return out;
}

Result<size_t> AcfTree::NearestClusterIndex(
    std::span<const double> own_values) const {
  if (num_leaf_entries_ == 0) {
    return Status::NotFound("tree has no clusters");
  }
  // Descend to the leaf the insertion path would reach.
  const Node* node = root_.get();
  while (!node->is_leaf) {
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->children.size(); ++i) {
      double d = PointClusterDistance(own_values, node->children[i].cf);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    node = node->children[best].child.get();
  }
  const Acf* target = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& e : node->entries) {
    double d = PointClusterDistance(own_values, e.cf());
    if (d < best_d) {
      best_d = d;
      target = &e;
    }
  }
  DAR_CHECK(target != nullptr);
  // Map the entry pointer to its DFS (ExtractClusters) index.
  size_t index = 0;
  bool found = false;
  // Recursive DFS matching CollectLeafEntriesConst order.
  auto dfs = [&](auto&& self, const Node* n) -> void {
    if (found) return;
    if (n->is_leaf) {
      for (const auto& e : n->entries) {
        if (&e == target) {
          found = true;
          return;
        }
        ++index;
      }
      return;
    }
    for (const auto& c : n->children) {
      self(self, c.child.get());
      if (found) return;
    }
  };
  dfs(dfs, root_.get());
  DAR_CHECK(found);
  return index;
}

size_t AcfTree::CountNodes(const Node* node) const {
  if (node->is_leaf) return 1;
  size_t n = 1;
  for (const auto& c : node->children) n += CountNodes(c.child.get());
  return n;
}

size_t AcfTree::ApproxBytesNow() const {
  const PartSpec& spec = layout_->parts[own_part_];
  size_t internal_entry =
      sizeof(ChildRef) + sizeof(CfVector) + 4 * spec.dim * sizeof(double);
  size_t node_bytes =
      sizeof(Node) + options_.branching_factor * internal_entry;
  // The outlier buffer is conceptually paged out to disk (§4.3.1) and does
  // not count against the in-memory budget.
  return num_nodes_ * node_bytes + num_leaf_entries_ * acf_bytes_estimate_;
}

int64_t AcfTree::TotalMass() const {
  int64_t mass = 0;
  for (const auto& e : ExtractClusters()) mass += e.n();
  for (const auto& e : outlier_buffer_) mass += e.n();
  for (const auto& e : outliers_) mass += e.n();
  return mass;
}

AcfTreeStats AcfTree::Stats() const {
  AcfTreeStats s;
  s.num_nodes = num_nodes_;
  s.num_leaf_entries = num_leaf_entries_;
  s.num_outliers = outlier_buffer_.size() + outliers_.size();
  s.rebuild_count = rebuild_count_;
  s.threshold = threshold_;
  s.approx_bytes = ApproxBytesNow();
  s.points_inserted = points_inserted_;
  return s;
}

}  // namespace dar
