#include "birch/acf_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/logging.h"

namespace dar {

namespace {

constexpr double kMinThreshold = 1e-12;

// Relative tolerance when comparing floating-point summary sums that were
// accumulated in different association orders (incremental AddPoint along
// the insert path vs. a bottom-up re-merge).
constexpr double kCfCompareTolerance = 1e-6;

bool ApproxEqual(double a, double b) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= kCfCompareTolerance * scale;
}

}  // namespace

// When built with -DDAR_VALIDATE_INVARIANTS, every mutating operation
// re-validates the whole tree before returning (skipped mid-rebuild, when
// the tree is transiently inconsistent by design).
#ifdef DAR_VALIDATE_INVARIANTS
#define DAR_VALIDATE_TREE()                                  \
  do {                                                       \
    if (!in_rebuild_) DAR_RETURN_IF_ERROR(ValidateInvariants()); \
  } while (false)
#else
#define DAR_VALIDATE_TREE() \
  do {                      \
  } while (false)
#endif

AcfTree::AcfTree(std::shared_ptr<const AcfLayout> layout, size_t own_part,
                 AcfTreeOptions options)
    : layout_(std::move(layout)),
      own_part_(own_part),
      options_(options),
      threshold_(options.initial_threshold),
      root_(std::make_unique<Node>()) {
  DAR_CHECK(layout_ != nullptr);
  DAR_CHECK_LT(own_part_, layout_->num_parts());
  DAR_CHECK_GE(options_.branching_factor, 2);
  DAR_CHECK_GE(options_.leaf_capacity, 1);
  acf_bytes_estimate_ = layout_->ApproxAcfBytes();
}

std::unique_ptr<AcfTree::Node> AcfTree::CloneNode(const Node& node) const {
  auto copy = std::make_unique<Node>();
  copy->is_leaf = node.is_leaf;
  copy->entries = node.entries;  // Acf is value-copyable (shared layout)
  copy->children.reserve(node.children.size());
  for (const ChildRef& ref : node.children) {
    copy->children.push_back(ChildRef{ref.cf, CloneNode(*ref.child)});
  }
  return copy;
}

std::unique_ptr<AcfTree> AcfTree::Clone() const {
  auto copy = std::make_unique<AcfTree>(layout_, own_part_, options_);
  copy->threshold_ = threshold_;
  copy->root_ = CloneNode(*root_);
  copy->outlier_buffer_ = outlier_buffer_;
  copy->outliers_ = outliers_;
  copy->rebuild_count_ = rebuild_count_;
  copy->split_count_ = split_count_;
  copy->points_inserted_ = points_inserted_;
  copy->num_nodes_ = num_nodes_;
  copy->num_leaf_entries_ = num_leaf_entries_;
  return copy;
}

Status AcfTree::InsertPoint(const PartedRow& row) {
  if (row.size() != layout_->num_parts()) {
    return Status::InvalidArgument(
        "parted row has " + std::to_string(row.size()) + " parts, expected " +
        std::to_string(layout_->num_parts()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].size() != layout_->parts[i].dim) {
      return Status::InvalidArgument("part " + std::to_string(i) +
                                     " has wrong dimension");
    }
    for (double v : row[i]) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "non-finite value in part " + std::to_string(i) +
            "; CF summaries require finite coordinates");
      }
    }
  }
  InsertOutcome out = InsertPointRec(root_.get(), row);
  if (out.split) GrowRoot(std::move(out.sibling));
  ++points_inserted_;

  if (in_rebuild_) return Status::OK();
  int rebuilds = 0;
  while (ApproxBytesNow() > options_.memory_budget_bytes) {
    if (++rebuilds > options_.max_rebuilds_per_insert) {
      return Status::ResourceExhausted(
          "ACF-tree cannot fit in " +
          std::to_string(options_.memory_budget_bytes) +
          " bytes after " + std::to_string(rebuilds - 1) + " rebuilds");
    }
    DAR_RETURN_IF_ERROR(Rebuild());
  }
  DAR_VALIDATE_TREE();
  return Status::OK();
}

Status AcfTree::InsertSummary(Acf acf) {
  if (acf.layout_ptr().get() != layout_.get() ||
      acf.own_part() != own_part_) {
    return Status::InvalidArgument(
        "summary layout/part does not match this tree");
  }
  if (acf.n() <= 0) {
    return Status::InvalidArgument("cannot insert an empty summary");
  }
  int64_t mass = acf.n();
  InsertOutcome out = InsertSummaryRec(root_.get(), std::move(acf));
  if (out.split) GrowRoot(std::move(out.sibling));
  points_inserted_ += in_rebuild_ ? 0 : mass;

  if (in_rebuild_) return Status::OK();
  int rebuilds = 0;
  while (ApproxBytesNow() > options_.memory_budget_bytes) {
    if (++rebuilds > options_.max_rebuilds_per_insert) {
      return Status::ResourceExhausted("ACF-tree over memory budget");
    }
    DAR_RETURN_IF_ERROR(Rebuild());
  }
  DAR_VALIDATE_TREE();
  return Status::OK();
}

AcfTree::InsertOutcome AcfTree::InsertPointRec(Node* node,
                                               const PartedRow& row) {
  const std::vector<double>& own = row[own_part_];
  if (node->is_leaf) {
    // Find the closest existing cluster.
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      double d = PointClusterDistance(own, node->entries[i].cf());
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    // Absorb only if the merged diameter stays within the threshold AND
    // the point itself is within the threshold of the centroid. The second
    // condition guards against mass dilution: for a heavy cluster the
    // average pairwise diameter moves by only O(D^2/N) when one point at
    // distance D is added, so the diameter test alone would let large
    // clusters swallow arbitrarily distant points.
    if (!node->entries.empty() &&
        node->entries[best].cf().DiameterWithPoint(own) <= threshold_ &&
        best_d <= threshold_) {
      node->entries[best].AddRow(row);
      return {};
    }
    // Start a new cluster.
    Acf fresh(layout_, own_part_);
    fresh.AddRow(row);
    node->entries.push_back(std::move(fresh));
    ++num_leaf_entries_;
    if (node->entries.size() <=
        static_cast<size_t>(options_.leaf_capacity)) {
      return {};
    }
    return {true, SplitNode(node)};
  }

  // Internal node: descend into the closest child.
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->children.size(); ++i) {
    double d = PointClusterDistance(own, node->children[i].cf);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  InsertOutcome below = InsertPointRec(node->children[best].child.get(), row);
  if (!below.split) {
    node->children[best].cf.AddPoint(own);
  } else {
    node->children[best].cf = ComputeNodeCf(*node->children[best].child);
    ChildRef fresh{ComputeNodeCf(*below.sibling), std::move(below.sibling)};
    node->children.push_back(std::move(fresh));
    if (node->children.size() >
        static_cast<size_t>(options_.branching_factor)) {
      return {true, SplitNode(node)};
    }
  }
  return {};
}

AcfTree::InsertOutcome AcfTree::InsertSummaryRec(Node* node, Acf&& acf) {
  if (node->is_leaf) {
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      double d = ClusterDistance(acf.cf(), node->entries[i].cf(),
                                 ClusterMetric::kD0Centroid);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    // Same dual test as for points (diameter + centroid distance), so
    // reinsertion during rebuilds cannot dilute heavy clusters either.
    if (!node->entries.empty() &&
        node->entries[best].cf().DiameterWithMerge(acf.cf()) <= threshold_ &&
        best_d <= threshold_) {
      node->entries[best].Merge(acf);
      return {};
    }
    node->entries.push_back(std::move(acf));
    ++num_leaf_entries_;
    if (node->entries.size() <=
        static_cast<size_t>(options_.leaf_capacity)) {
      return {};
    }
    return {true, SplitNode(node)};
  }

  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->children.size(); ++i) {
    double d = ClusterDistance(acf.cf(), node->children[i].cf,
                               ClusterMetric::kD0Centroid);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  const CfVector acf_cf = acf.cf();  // keep a copy; acf may be moved below
  InsertOutcome below =
      InsertSummaryRec(node->children[best].child.get(), std::move(acf));
  if (!below.split) {
    node->children[best].cf.Merge(acf_cf);
  } else {
    node->children[best].cf = ComputeNodeCf(*node->children[best].child);
    ChildRef fresh{ComputeNodeCf(*below.sibling), std::move(below.sibling)};
    node->children.push_back(std::move(fresh));
    if (node->children.size() >
        static_cast<size_t>(options_.branching_factor)) {
      return {true, SplitNode(node)};
    }
  }
  return {};
}

std::unique_ptr<AcfTree::Node> AcfTree::SplitNode(Node* node) {
  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  ++num_nodes_;
  ++split_count_;

  if (node->is_leaf) {
    // Seed with the farthest pair of entry centroids, then assign each
    // entry to the closer seed.
    size_t n = node->entries.size();
    DAR_CHECK_GE(n, 2u);
    size_t sa = 0, sb = 1;
    double best = -1;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double d = ClusterDistance(node->entries[i].cf(),
                                   node->entries[j].cf(),
                                   ClusterMetric::kD0Centroid);
        if (d > best) {
          best = d;
          sa = i;
          sb = j;
        }
      }
    }
    const CfVector seed_a = node->entries[sa].cf();
    const CfVector seed_b = node->entries[sb].cf();
    std::vector<Acf> keep, move_out;
    for (size_t i = 0; i < n; ++i) {
      if (i == sa) {
        keep.push_back(std::move(node->entries[i]));
        continue;
      }
      if (i == sb) {
        move_out.push_back(std::move(node->entries[i]));
        continue;
      }
      double da = ClusterDistance(node->entries[i].cf(), seed_a,
                                  ClusterMetric::kD0Centroid);
      double db = ClusterDistance(node->entries[i].cf(), seed_b,
                                  ClusterMetric::kD0Centroid);
      if (da <= db) {
        keep.push_back(std::move(node->entries[i]));
      } else {
        move_out.push_back(std::move(node->entries[i]));
      }
    }
    node->entries = std::move(keep);
    sibling->entries = std::move(move_out);
  } else {
    size_t n = node->children.size();
    DAR_CHECK_GE(n, 2u);
    size_t sa = 0, sb = 1;
    double best = -1;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double d = ClusterDistance(node->children[i].cf, node->children[j].cf,
                                   ClusterMetric::kD0Centroid);
        if (d > best) {
          best = d;
          sa = i;
          sb = j;
        }
      }
    }
    const CfVector seed_a = node->children[sa].cf;
    const CfVector seed_b = node->children[sb].cf;
    std::vector<ChildRef> keep, move_out;
    for (size_t i = 0; i < n; ++i) {
      if (i == sa) {
        keep.push_back(std::move(node->children[i]));
        continue;
      }
      if (i == sb) {
        move_out.push_back(std::move(node->children[i]));
        continue;
      }
      double da = ClusterDistance(node->children[i].cf, seed_a,
                                  ClusterMetric::kD0Centroid);
      double db = ClusterDistance(node->children[i].cf, seed_b,
                                  ClusterMetric::kD0Centroid);
      if (da <= db) {
        keep.push_back(std::move(node->children[i]));
      } else {
        move_out.push_back(std::move(node->children[i]));
      }
    }
    node->children = std::move(keep);
    sibling->children = std::move(move_out);
  }
  return sibling;
}

CfVector AcfTree::ComputeNodeCf(const Node& node) const {
  const PartSpec& spec = layout_->parts[own_part_];
  CfVector cf(spec.dim, spec.metric);
  if (node.is_leaf) {
    for (const auto& e : node.entries) cf.Merge(e.cf());
  } else {
    for (const auto& c : node.children) cf.Merge(c.cf);
  }
  return cf;
}

void AcfTree::GrowRoot(std::unique_ptr<Node> sibling) {
  auto new_root = std::make_unique<Node>();
  new_root->is_leaf = false;
  ChildRef left{ComputeNodeCf(*root_), std::move(root_)};
  ChildRef right{ComputeNodeCf(*sibling), std::move(sibling)};
  new_root->children.push_back(std::move(left));
  new_root->children.push_back(std::move(right));
  root_ = std::move(new_root);
  ++num_nodes_;
}

double AcfTree::NextThreshold() const {
  // Within each leaf, the cheapest merge is between the closest pair of
  // entries; take the median of those over all leaves so a substantial
  // fraction of clusters merge after the rebuild (BIRCH §4.2 heuristic).
  std::vector<double> candidates;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf) {
      if (node->entries.size() < 2) continue;
      double best = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node->entries.size(); ++i) {
        for (size_t j = i + 1; j < node->entries.size(); ++j) {
          best = std::min(best, node->entries[i].cf().DiameterWithMerge(
                                    node->entries[j].cf()));
        }
      }
      candidates.push_back(best);
    } else {
      for (const auto& c : node->children) stack.push_back(c.child.get());
    }
  }
  double data_driven = 0;
  if (!candidates.empty()) {
    size_t mid = candidates.size() / 2;
    std::nth_element(candidates.begin(), candidates.begin() + mid,
                     candidates.end());
    data_driven = candidates[mid];
  } else {
    // Degenerate tree shapes (e.g. leaf capacity 1) never co-locate two
    // entries in a leaf; sample a handful of entries globally so the
    // threshold still jumps to the data scale instead of crawling up by
    // the growth factor alone.
    std::vector<Acf> sample;
    CollectLeafEntriesConst(root_.get(), sample);
    size_t limit = std::min<size_t>(sample.size(), 48);
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < limit; ++i) {
      for (size_t j = i + 1; j < limit; ++j) {
        best = std::min(best,
                        sample[i].cf().DiameterWithMerge(sample[j].cf()));
      }
    }
    if (limit >= 2) data_driven = best;
  }
  return std::max({threshold_ * options_.threshold_growth, data_driven,
                   kMinThreshold});
}

Status AcfTree::Rebuild() {
  double next = NextThreshold();
  std::vector<Acf> entries;
  CollectLeafEntries(root_.get(), entries);

  threshold_ = next;
  root_ = std::make_unique<Node>();
  num_nodes_ = 1;
  num_leaf_entries_ = 0;
  ++rebuild_count_;

  in_rebuild_ = true;
  Status status = Status::OK();
  for (auto& e : entries) {
    if (options_.outlier_entry_min_n > 0 &&
        e.n() < options_.outlier_entry_min_n) {
      outlier_buffer_.push_back(std::move(e));
      continue;
    }
    status = InsertSummary(std::move(e));
    if (!status.ok()) break;
  }
  in_rebuild_ = false;
  if (!status.ok()) return status;
  DAR_VALIDATE_TREE();
  if (options_.on_rebuild) {
    options_.on_rebuild(rebuild_count_, threshold_);
  }
  return status;
}

void AcfTree::CollectLeafEntries(Node* node, std::vector<Acf>& out) {
  if (node->is_leaf) {
    for (auto& e : node->entries) out.push_back(std::move(e));
    node->entries.clear();
    return;
  }
  for (auto& c : node->children) CollectLeafEntries(c.child.get(), out);
}

void AcfTree::CollectLeafEntriesConst(const Node* node,
                                      std::vector<Acf>& out) const {
  if (node->is_leaf) {
    for (const auto& e : node->entries) out.push_back(e);
    return;
  }
  for (const auto& c : node->children) {
    CollectLeafEntriesConst(c.child.get(), out);
  }
}

Status AcfTree::FinishScan() {
  std::vector<Acf> pending = std::move(outlier_buffer_);
  outlier_buffer_.clear();
  for (auto& acf : pending) {
    // Walk down to the most promising leaf; absorb only if the merge keeps
    // the diameter within the threshold, else the cluster is a confirmed
    // outlier.
    Node* node = root_.get();
    std::vector<CfVector*> path;
    while (!node->is_leaf) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node->children.size(); ++i) {
        double d = ClusterDistance(acf.cf(), node->children[i].cf,
                                   ClusterMetric::kD0Centroid);
        if (d < best_d) {
          best_d = d;
          best = i;
        }
      }
      path.push_back(&node->children[best].cf);
      node = node->children[best].child.get();
    }
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      double d = ClusterDistance(acf.cf(), node->entries[i].cf(),
                                 ClusterMetric::kD0Centroid);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    if (!node->entries.empty() &&
        node->entries[best].cf().DiameterWithMerge(acf.cf()) <= threshold_ &&
        best_d <= threshold_) {
      const CfVector acf_cf = acf.cf();
      node->entries[best].Merge(acf);
      for (CfVector* cf : path) cf->Merge(acf_cf);
    } else {
      outliers_.push_back(std::move(acf));
    }
  }
  DAR_VALIDATE_TREE();
  return Status::OK();
}

Status AcfTree::MergeFrom(const AcfTree& other) {
  if (own_part_ != other.own_part_) {
    return Status::InvalidArgument(
        "cannot merge ACF-trees over different attribute sets (part " +
        std::to_string(own_part_) + " vs " +
        std::to_string(other.own_part_) + ")");
  }
  if (!LayoutsEquivalent(*layout_, *other.layout_)) {
    return Status::InvalidArgument(
        "cannot merge ACF-trees with structurally different layouts");
  }
  const bool rehome = other.layout_.get() != layout_.get();

  // Merge under the looser of the two thresholds so clusters that either
  // shard considered coherent stay absorbable; re-insertion below may raise
  // it further through the usual rebuild loop.
  threshold_ = std::max(threshold_, other.threshold_);

  std::vector<Acf> entries;
  other.CollectLeafEntriesConst(other.root_.get(), entries);
  for (auto& e : entries) {
    DAR_RETURN_IF_ERROR(
        InsertSummary(rehome ? e.WithLayout(layout_) : std::move(e)));
  }
  // Outliers (paged-out and confirmed alike) get a fresh FinishScan chance
  // under the merged threshold. InsertSummary accounts inserted mass into
  // points_inserted_; the buffered outliers bypass it, so account manually
  // to keep TotalMass() == points inserted.
  for (const std::vector<Acf>* src : {&other.outlier_buffer_, &other.outliers_}) {
    for (const Acf& acf : *src) {
      points_inserted_ += acf.n();
      outlier_buffer_.push_back(rehome ? acf.WithLayout(layout_) : acf);
    }
  }
  rebuild_count_ += other.rebuild_count_;
  split_count_ += other.split_count_;
  DAR_VALIDATE_TREE();
  return Status::OK();
}

std::vector<Acf> AcfTree::ExtractClusters() const {
  std::vector<Acf> out;
  CollectLeafEntriesConst(root_.get(), out);
  return out;
}

Result<size_t> AcfTree::NearestClusterIndex(
    std::span<const double> own_values) const {
  if (num_leaf_entries_ == 0) {
    return Status::NotFound("tree has no clusters");
  }
  // Descend to the leaf the insertion path would reach.
  const Node* node = root_.get();
  while (!node->is_leaf) {
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->children.size(); ++i) {
      double d = PointClusterDistance(own_values, node->children[i].cf);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    node = node->children[best].child.get();
  }
  const Acf* target = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& e : node->entries) {
    double d = PointClusterDistance(own_values, e.cf());
    if (d < best_d) {
      best_d = d;
      target = &e;
    }
  }
  DAR_CHECK(target != nullptr);
  // Map the entry pointer to its DFS (ExtractClusters) index.
  size_t index = 0;
  bool found = false;
  // Recursive DFS matching CollectLeafEntriesConst order.
  auto dfs = [&](auto&& self, const Node* n) -> void {
    if (found) return;
    if (n->is_leaf) {
      for (const auto& e : n->entries) {
        if (&e == target) {
          found = true;
          return;
        }
        ++index;
      }
      return;
    }
    for (const auto& c : n->children) {
      self(self, c.child.get());
      if (found) return;
    }
  };
  dfs(dfs, root_.get());
  DAR_CHECK(found);
  return index;
}

size_t AcfTree::CountNodes(const Node* node) const {
  if (node->is_leaf) return 1;
  size_t n = 1;
  for (const auto& c : node->children) n += CountNodes(c.child.get());
  return n;
}

size_t AcfTree::ApproxBytesNow() const {
  const PartSpec& spec = layout_->parts[own_part_];
  size_t internal_entry =
      sizeof(ChildRef) + sizeof(CfVector) + 4 * spec.dim * sizeof(double);
  size_t node_bytes =
      sizeof(Node) + options_.branching_factor * internal_entry;
  // The outlier buffer is conceptually paged out to disk (§4.3.1) and does
  // not count against the in-memory budget.
  return num_nodes_ * node_bytes + num_leaf_entries_ * acf_bytes_estimate_;
}

int64_t AcfTree::TotalMass() const {
  int64_t mass = 0;
  for (const auto& e : ExtractClusters()) mass += e.n();
  for (const auto& e : outlier_buffer_) mass += e.n();
  for (const auto& e : outliers_) mass += e.n();
  return mass;
}

Status AcfTree::ValidateCfSummary(const CfVector& cf, size_t expect_dim,
                                  MetricKind expect_metric,
                                  const std::string& path) const {
  if (cf.dim() != expect_dim) {
    return Status::Internal(path + ": CF has dim " +
                            std::to_string(cf.dim()) + ", expected " +
                            std::to_string(expect_dim));
  }
  if (cf.metric() != expect_metric) {
    return Status::Internal(path + ": CF metric does not match its part");
  }
  if (cf.n() < 0) {
    return Status::Internal(path + ": negative tuple count " +
                            std::to_string(cf.n()));
  }
  for (size_t d = 0; d < cf.dim(); ++d) {
    if (cf.ss()[d] < 0) {
      return Status::Internal(path + ": negative squared-sum term ss[" +
                              std::to_string(d) +
                              "] = " + std::to_string(cf.ss()[d]));
    }
  }
  if (cf.n() > 0) {
    for (size_t d = 0; d < cf.dim(); ++d) {
      if (cf.min()[d] > cf.max()[d]) {
        return Status::Internal(path + ": min > max on dimension " +
                                std::to_string(d));
      }
      double centroid = cf.ls()[d] / static_cast<double>(cf.n());
      double span =
          kCfCompareTolerance *
          std::max({1.0, std::fabs(cf.min()[d]), std::fabs(cf.max()[d])});
      if (centroid < cf.min()[d] - span || centroid > cf.max()[d] + span) {
        return Status::Internal(path + ": centroid " +
                                std::to_string(centroid) +
                                " outside bounding box on dimension " +
                                std::to_string(d));
      }
    }
    // Cauchy-Schwarz on the moments: N * sum(ss) >= |LS|^2. A violation
    // means the summary cannot describe any real point set, so every
    // diameter/radius derived from it is garbage.
    double lhs = static_cast<double>(cf.n()) * cf.SsSum();
    double rhs = cf.LsSquaredNorm();
    if (lhs < rhs && !ApproxEqual(lhs, rhs)) {
      return Status::Internal(path + ": moment inequality violated (N*SS = " +
                              std::to_string(lhs) + " < |LS|^2 = " +
                              std::to_string(rhs) + ")");
    }
  }
  if (cf.has_histogram()) {
    for (size_t d = 0; d < cf.dim(); ++d) {
      int64_t total = 0;
      for (const auto& [value, count] : cf.histogram(d)) {
        if (count < 0) {
          return Status::Internal(path + ": negative histogram count on " +
                                  "dimension " + std::to_string(d));
        }
        total += count;
      }
      if (total != cf.n()) {
        return Status::Internal(
            path + ": histogram mass " + std::to_string(total) +
            " != N = " + std::to_string(cf.n()) + " on dimension " +
            std::to_string(d));
      }
    }
  }
  return Status::OK();
}

Status AcfTree::ValidateAcfEntry(const Acf& acf,
                                 const std::string& path) const {
  if (acf.layout_ptr().get() != layout_.get()) {
    return Status::Internal(path + ": entry layout differs from the tree's");
  }
  if (acf.own_part() != own_part_) {
    return Status::Internal(path + ": entry own_part " +
                            std::to_string(acf.own_part()) +
                            " != tree part " + std::to_string(own_part_));
  }
  if (acf.n() <= 0) {
    return Status::Internal(path + ": entry summarizes no tuples");
  }
  // Cross-attribute consistency (Eq. 7): every image must summarize exactly
  // the tuples of the cluster, on the dimensions of its part.
  for (size_t p = 0; p < layout_->num_parts(); ++p) {
    const std::string img_path = path + "/img" + std::to_string(p);
    DAR_RETURN_IF_ERROR(ValidateCfSummary(
        acf.image(p), layout_->parts[p].dim, layout_->parts[p].metric,
        img_path));
    if (acf.image(p).n() != acf.cf().n()) {
      return Status::Internal(
          img_path + ": cross-attribute mass " +
          std::to_string(acf.image(p).n()) + " != own mass " +
          std::to_string(acf.cf().n()));
    }
  }
  return Status::OK();
}

Status AcfTree::ValidateNodeRec(const Node& node, const std::string& path,
                                bool is_root, size_t* nodes,
                                size_t* leaf_entries) const {
  ++*nodes;
  if (node.is_leaf) {
    if (!node.children.empty()) {
      return Status::Internal(path + ": leaf node has internal children");
    }
    if (node.entries.size() > static_cast<size_t>(options_.leaf_capacity)) {
      return Status::Internal(path + ": leaf holds " +
                              std::to_string(node.entries.size()) +
                              " entries, capacity is " +
                              std::to_string(options_.leaf_capacity));
    }
    if (!is_root && node.entries.empty()) {
      return Status::Internal(path + ": non-root leaf is empty");
    }
    *leaf_entries += node.entries.size();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      DAR_RETURN_IF_ERROR(
          ValidateAcfEntry(node.entries[i], path + "/e" + std::to_string(i)));
    }
    return Status::OK();
  }

  if (!node.entries.empty()) {
    return Status::Internal(path + ": internal node holds leaf entries");
  }
  if (node.children.empty()) {
    return Status::Internal(path + ": internal node has no children");
  }
  if (node.children.size() >
      static_cast<size_t>(options_.branching_factor)) {
    return Status::Internal(path + ": internal node fan-out " +
                            std::to_string(node.children.size()) +
                            " exceeds branching factor " +
                            std::to_string(options_.branching_factor));
  }
  const PartSpec& own = layout_->parts[own_part_];
  for (size_t i = 0; i < node.children.size(); ++i) {
    const std::string child_path = path + "/c" + std::to_string(i);
    const ChildRef& ref = node.children[i];
    if (ref.child == nullptr) {
      return Status::Internal(child_path + ": null child pointer");
    }
    DAR_RETURN_IF_ERROR(
        ValidateCfSummary(ref.cf, own.dim, own.metric, child_path));
    // CF additivity (BIRCH Additivity Theorem): the entry CF must equal the
    // bottom-up merge of its subtree. N, min and max are exact under both
    // accumulation orders; LS/SS are float sums and get a tolerance.
    CfVector recomputed = ComputeNodeCf(*ref.child);
    if (ref.cf.n() != recomputed.n()) {
      return Status::Internal(
          child_path + ": CF additivity violated: entry N = " +
          std::to_string(ref.cf.n()) + ", subtree N = " +
          std::to_string(recomputed.n()));
    }
    for (size_t d = 0; d < own.dim; ++d) {
      if (!ApproxEqual(ref.cf.ls()[d], recomputed.ls()[d])) {
        return Status::Internal(
            child_path + ": CF additivity violated: ls[" +
            std::to_string(d) + "] = " + std::to_string(ref.cf.ls()[d]) +
            ", subtree sum = " + std::to_string(recomputed.ls()[d]));
      }
      if (!ApproxEqual(ref.cf.ss()[d], recomputed.ss()[d])) {
        return Status::Internal(
            child_path + ": CF additivity violated: ss[" +
            std::to_string(d) + "] = " + std::to_string(ref.cf.ss()[d]) +
            ", subtree sum = " + std::to_string(recomputed.ss()[d]));
      }
      if (recomputed.n() > 0 &&
          (ref.cf.min()[d] != recomputed.min()[d] ||
           ref.cf.max()[d] != recomputed.max()[d])) {
        return Status::Internal(child_path +
                                ": CF additivity violated: bounding box "
                                "differs from subtree on dimension " +
                                std::to_string(d));
      }
    }
    DAR_RETURN_IF_ERROR(
        ValidateNodeRec(*ref.child, child_path, false, nodes, leaf_entries));
  }
  return Status::OK();
}

Status AcfTree::ValidateInvariants() const {
  if (root_ == nullptr) {
    return Status::Internal("tree has no root node");
  }
  size_t nodes = 0;
  size_t leaf_entries = 0;
  DAR_RETURN_IF_ERROR(
      ValidateNodeRec(*root_, "root", /*is_root=*/true, &nodes,
                      &leaf_entries));
  if (nodes != num_nodes_) {
    return Status::Internal("cached node count " +
                            std::to_string(num_nodes_) + " != recount " +
                            std::to_string(nodes));
  }
  if (leaf_entries != num_leaf_entries_) {
    return Status::Internal("cached leaf-entry count " +
                            std::to_string(num_leaf_entries_) +
                            " != recount " + std::to_string(leaf_entries));
  }
  for (size_t i = 0; i < outlier_buffer_.size(); ++i) {
    DAR_RETURN_IF_ERROR(ValidateAcfEntry(
        outlier_buffer_[i], "outlier_buffer/e" + std::to_string(i)));
  }
  for (size_t i = 0; i < outliers_.size(); ++i) {
    DAR_RETURN_IF_ERROR(
        ValidateAcfEntry(outliers_[i], "outliers/e" + std::to_string(i)));
  }
  // Mass conservation: no tuple is lost or double-counted by absorption,
  // splits, rebuilds, or outlier paging.
  if (TotalMass() != points_inserted_) {
    return Status::Internal("total mass " + std::to_string(TotalMass()) +
                            " != points inserted " +
                            std::to_string(points_inserted_));
  }
  return Status::OK();
}

AcfTreeStats AcfTree::Stats() const {
  AcfTreeStats s;
  s.num_nodes = num_nodes_;
  s.num_leaf_entries = num_leaf_entries_;
  s.num_outliers = outlier_buffer_.size() + outliers_.size();
  s.rebuild_count = rebuild_count_;
  s.threshold = threshold_;
  s.approx_bytes = ApproxBytesNow();
  s.points_inserted = points_inserted_;
  s.split_count = split_count_;
  // The tree is height-balanced, so the leftmost root-to-leaf path has the
  // common length.
  const Node* node = root_.get();
  while (node != nullptr) {
    ++s.height;
    node = node->is_leaf || node->children.empty()
               ? nullptr
               : node->children.front().child.get();
  }
  return s;
}

}  // namespace dar
