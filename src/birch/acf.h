#ifndef DAR_BIRCH_ACF_H_
#define DAR_BIRCH_ACF_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "birch/cf.h"
#include "relation/metric.h"

namespace dar {

/// Shape of one attribute set in an ACF layout.
struct PartSpec {
  size_t dim = 1;
  MetricKind metric = MetricKind::kEuclidean;
  std::string label;
};

/// The shapes of all attribute sets X_1..X_m of the user partitioning, shared
/// by every ACF of a mining run. Rows handed to ACFs are given as one value
/// vector per part ("parted rows").
struct AcfLayout {
  std::vector<PartSpec> parts;

  [[nodiscard]] size_t num_parts() const { return parts.size(); }

  /// Rough heap footprint of one ACF under this layout, used by the
  /// ACF-tree's memory budgeting (histogram sizes are estimated).
  [[nodiscard]] size_t ApproxAcfBytes() const;
};

/// True when two layouts describe the same shape: equal part counts and,
/// per part, equal dimension and metric (labels are cosmetic and ignored).
/// Summaries built under structurally equivalent layouts are additive even
/// when the layout objects live in different processes.
[[nodiscard]] bool LayoutsEquivalent(const AcfLayout& a, const AcfLayout& b);

/// A tuple projected per attribute set: values[i] are the tuple's
/// coordinates on part i.
using PartedRow = std::vector<std::vector<double>>;

/// Association Clustering Feature (§6.1): the summary of a cluster *defined
/// on* one attribute set (`own_part`), extended with CF summaries of the
/// cluster's *image* on every other attribute set (Eq. 7). ACFs are additive
/// like CFs, and by the ACF Representativity Theorem (Thm 6.1) every
/// inter-cluster distance needed in Phase II — `D(C_Y[Y], C_X[Y])` for any
/// parts X, Y — is computable from ACFs alone, without rescanning data.
class Acf {
 public:
  Acf() = default;
  Acf(std::shared_ptr<const AcfLayout> layout, size_t own_part);

  [[nodiscard]] const AcfLayout& layout() const { return *layout_; }
  [[nodiscard]] std::shared_ptr<const AcfLayout> layout_ptr() const { return layout_; }
  [[nodiscard]] size_t own_part() const { return own_part_; }

  /// Number of tuples summarized.
  [[nodiscard]] int64_t n() const { return images_.empty() ? 0 : cf().n(); }

  /// The clustering feature on the cluster's own attribute set (Eq. 3).
  [[nodiscard]] const CfVector& cf() const { return images_[own_part_]; }

  /// The CF of the cluster's image on part `p` (Eq. 7); `p == own_part()`
  /// returns cf().
  [[nodiscard]] const CfVector& image(size_t p) const { return images_.at(p); }

  /// Adds a tuple. `row[i]` must match part i's dimension.
  void AddRow(const PartedRow& row);

  /// Additivity: absorbs another ACF with the same layout and own part.
  void Merge(const Acf& other);

  /// Copy of this ACF whose layout pointer is `layout`, which must be
  /// structurally equivalent (LayoutsEquivalent) to the current one. Used
  /// when merging summaries decoded in another process, where equal layouts
  /// are distinct heap objects but the tree requires pointer identity.
  [[nodiscard]] Acf WithLayout(std::shared_ptr<const AcfLayout> layout) const;

  /// Centroid on the own part.
  [[nodiscard]] std::vector<double> Centroid() const { return cf().Centroid(); }

  /// Diameter on the own part (the cluster-quality measure of Dfn 4.2).
  [[nodiscard]] double Diameter() const { return cf().Diameter(); }

  /// Smallest bounding box of the image on part `p`: (lo, hi) per
  /// dimension. §7.2 uses this as the user-facing cluster description.
  [[nodiscard]] std::vector<std::pair<double, double>> BoundingBox(size_t p) const;

  /// Rough heap footprint in bytes.
  [[nodiscard]] size_t ApproxBytes() const;

  [[nodiscard]] std::string ToString() const;

 private:
  // Test-only backdoor so invariant tests can plant corruptions.
  friend struct InvariantTestPeer;
  // Serialization backdoor for dar::persist (persist/persist_peer.h).
  friend struct PersistPeer;

  std::shared_ptr<const AcfLayout> layout_;
  size_t own_part_ = 0;
  std::vector<CfVector> images_;
};

}  // namespace dar

#endif  // DAR_BIRCH_ACF_H_
