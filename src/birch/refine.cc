#include "birch/refine.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/logging.h"

namespace dar {

namespace {

struct Candidate {
  double distance;
  size_t a;
  size_t b;
  // Versions guard against stale heap entries after merges.
  uint64_t version_a;
  uint64_t version_b;

  bool operator>(const Candidate& other) const {
    return distance > other.distance;
  }
};

}  // namespace

std::vector<Acf> RefineClusters(std::vector<Acf> clusters,
                                const RefineOptions& options) {
  if (clusters.size() < 2 || options.diameter_threshold <= 0) {
    return clusters;
  }
  for (size_t i = 1; i < clusters.size(); ++i) {
    DAR_CHECK_EQ(clusters[i].own_part(), clusters[0].own_part());
  }

  std::vector<bool> alive(clusters.size(), true);
  std::vector<uint64_t> version(clusters.size(), 0);
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      heap;

  auto centroid_distance = [&](size_t a, size_t b) {
    return ClusterDistance(clusters[a].cf(), clusters[b].cf(),
                           ClusterMetric::kD0Centroid);
  };
  auto push_if_mergeable = [&](size_t a, size_t b) {
    double d = centroid_distance(a, b);
    if (d > options.centroid_factor * options.diameter_threshold) return;
    if (clusters[a].cf().DiameterWithMerge(clusters[b].cf()) >
        options.diameter_threshold) {
      return;
    }
    heap.push({d, a, b, version[a], version[b]});
  };

  for (size_t i = 0; i < clusters.size(); ++i) {
    for (size_t j = i + 1; j < clusters.size(); ++j) {
      push_if_mergeable(i, j);
    }
  }

  size_t merges = 0;
  while (!heap.empty()) {
    Candidate c = heap.top();
    heap.pop();
    if (!alive[c.a] || !alive[c.b] || version[c.a] != c.version_a ||
        version[c.b] != c.version_b) {
      continue;  // stale
    }
    // Re-check the merge condition (versions make this redundant, but the
    // invariant is cheap to assert).
    if (clusters[c.a].cf().DiameterWithMerge(clusters[c.b].cf()) >
        options.diameter_threshold) {
      continue;
    }
    clusters[c.a].Merge(clusters[c.b]);
    alive[c.b] = false;
    ++version[c.a];
    ++merges;
    if (options.max_merges != 0 && merges >= options.max_merges) break;
    for (size_t j = 0; j < clusters.size(); ++j) {
      if (j != c.a && alive[j]) push_if_mergeable(c.a, j);
    }
  }

  std::vector<Acf> out;
  out.reserve(clusters.size() - merges);
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (alive[i]) out.push_back(std::move(clusters[i]));
  }
  return out;
}

}  // namespace dar
