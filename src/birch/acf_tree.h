#ifndef DAR_BIRCH_ACF_TREE_H_
#define DAR_BIRCH_ACF_TREE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "birch/acf.h"
#include "birch/metrics.h"
#include "common/result.h"
#include "common/status.h"

namespace dar {

// Test-only backdoor for planting corruptions; defined by invariant tests.
struct InvariantTestPeer;
// Serialization backdoor for dar::persist; defined in persist/persist_peer.h.
struct PersistPeer;

/// Tuning knobs for one ACF-tree.
struct AcfTreeOptions {
  /// Max entries per internal node (BIRCH's branching factor B).
  int branching_factor = 16;
  /// Max ACF entries per leaf node (BIRCH's L).
  int leaf_capacity = 8;
  /// Initial diameter threshold T for absorbing points into clusters.
  /// BIRCH starts at 0 (every distinct point its own cluster) and lets the
  /// rebuild loop raise it under memory pressure.
  double initial_threshold = 0.0;
  /// Memory budget for this tree in (approximate) bytes. Exceeding it
  /// triggers a threshold increase and rebuild (§3, §4.3.1).
  size_t memory_budget_bytes = 1 << 20;
  /// Minimum multiplicative growth of the threshold per rebuild.
  double threshold_growth = 1.5;
  /// During rebuilds, leaf clusters with fewer than this many tuples are
  /// paged out to the outlier buffer instead of being reinserted
  /// ("clusters significantly smaller than the frequency threshold",
  /// §4.3.1). 0 disables outlier paging.
  int64_t outlier_entry_min_n = 0;
  /// Safety cap on rebuilds per insert; exceeded => ResourceExhausted.
  int max_rebuilds_per_insert = 64;
  /// Invoked after every threshold-raise rebuild with the tree's rebuild
  /// count and its new threshold. Runs on whichever thread is inserting
  /// into this tree.
  std::function<void(int rebuild_count, double new_threshold)> on_rebuild;
};

/// Summary statistics for benchmarking, telemetry and tests.
struct AcfTreeStats {
  size_t num_nodes = 0;
  size_t num_leaf_entries = 0;
  size_t num_outliers = 0;
  int rebuild_count = 0;
  double threshold = 0;
  size_t approx_bytes = 0;
  int64_t points_inserted = 0;
  /// Node splits over the tree's lifetime (including splits replayed
  /// during rebuilds).
  int64_t split_count = 0;
  /// Levels from root to leaf; 1 for a leaf-only root. The tree is
  /// height-balanced, so any root-to-leaf path has this length.
  int height = 0;
};

/// The height-balanced clustering tree of §4.3.1/§6.1: a CF-tree whose leaf
/// entries are ACFs. Internal nodes hold (CF, child) pairs on the tree's own
/// attribute set and guide insertion to the closest leaf cluster; leaf
/// entries absorb points while their diameter stays within the current
/// threshold, else spawn new clusters. When the memory budget is exceeded
/// the threshold is raised and the tree rebuilt by reinserting leaf ACFs —
/// the data is never rescanned. Small clusters can be paged out as outliers
/// during rebuilds and are re-absorbed by FinishScan().
///
/// One AcfTree is built per attribute set X_i of the user partitioning; the
/// tree clusters on X_i while its leaf ACFs accumulate image summaries over
/// every part.
class AcfTree {
 public:
  /// `own_part` selects which part of `layout` this tree clusters on.
  AcfTree(std::shared_ptr<const AcfLayout> layout, size_t own_part,
          AcfTreeOptions options);

  AcfTree(const AcfTree&) = delete;
  AcfTree& operator=(const AcfTree&) = delete;

  /// Deep copy of the tree's full state — nodes, leaf ACFs, outlier
  /// buffers, counters and options (including any on_rebuild hook). The
  /// clone evolves independently of the original; streaming re-mines clone
  /// each live tree and run the destructive finishing pipeline
  /// (FinishScan + extraction) on the copies, so ingestion can continue on
  /// the originals. O(tree size).
  [[nodiscard]] std::unique_ptr<AcfTree> Clone() const;

  /// Inserts one tuple (projected per part). May trigger rebuilds.
  Status InsertPoint(const PartedRow& row);

  /// Inserts a pre-aggregated cluster summary (used by rebuilds and by
  /// FinishScan; also the primitive for merging trees).
  Status InsertSummary(Acf acf);

  /// Re-inserts paged-out outliers: each is absorbed into an existing
  /// cluster if the merged diameter fits the threshold, otherwise confirmed
  /// as an outlier. Call once after the data scan (§4.3.1).
  Status FinishScan();

  /// Absorbs another tree built over a *disjoint* tuple set: by CF/ACF
  /// additivity (Eq. 3/7) the union's summary is exactly the re-insertion
  /// of the other tree's leaf clusters. The threshold is raised to the max
  /// of the two trees before re-absorption; the other tree's paged-out and
  /// confirmed outliers land in this tree's outlier buffer for a fresh
  /// FinishScan decision under the merged threshold. Memory-budget
  /// overruns trigger the normal rebuild loop. `other` may come from a
  /// different process: a structurally equivalent layout (LayoutsEquivalent)
  /// suffices, pointer identity is not required. `other` is unchanged.
  Status MergeFrom(const AcfTree& other);

  /// All leaf clusters, in leaf order. Confirmed outliers are not included;
  /// see outliers().
  [[nodiscard]] std::vector<Acf> ExtractClusters() const;

  /// Clusters confirmed as outliers by FinishScan (plus any still paged out
  /// if FinishScan has not been called).
  [[nodiscard]] const std::vector<Acf>& outliers() const { return outliers_; }

  /// Index (into ExtractClusters() order) of the leaf cluster whose
  /// centroid is closest to `own_values`, following the tree as a search
  /// structure (§4.3.2). Returns NotFound on an empty tree.
  [[nodiscard]] Result<size_t> NearestClusterIndex(std::span<const double> own_values) const;

  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] int rebuild_count() const { return rebuild_count_; }

  /// Adjusts the outlier paging threshold mid-scan. Streaming callers keep
  /// it proportional to the running tuple count, since the absolute
  /// frequency threshold s0 is only known when the scan ends.
  void set_outlier_entry_min_n(int64_t n) { options_.outlier_entry_min_n = n; }
  [[nodiscard]] AcfTreeStats Stats() const;

  /// Total tuple mass in the tree plus the outlier buffer. Invariant:
  /// equals the number of inserted points (plus summary masses).
  [[nodiscard]] int64_t TotalMass() const;

  /// Walks the whole tree and verifies the structural and summary-arithmetic
  /// invariants the mining phases rely on (Thm 6.1 is only valid on a tree
  /// where these hold):
  ///
  ///  - CF additivity: every internal entry's CF equals the merge of its
  ///    child subtree's CFs (exactly in N, within float tolerance in
  ///    LS/SS/min/max, exactly in discrete histograms);
  ///  - entry-count bounds: internal fan-out within [1, branching_factor],
  ///    leaf occupancy within [1, leaf_capacity] (root may be empty);
  ///  - CF sanity: non-negative masses and squared-sum terms, the
  ///    Cauchy-Schwarz moment inequality N*SS >= |LS|^2, centroids inside
  ///    the tracked bounding boxes;
  ///  - ACF cross-attribute consistency: every image summarizes exactly
  ///    cf().n() tuples on the right dimensions/metric;
  ///  - cached counters (num_nodes, num_leaf_entries, total mass) match a
  ///    recount.
  ///
  /// Returns the first violation as an Internal status naming the offending
  /// node path (e.g. "root/c2/e0"), or OK. O(tree size); automatically run
  /// after every mutating operation when built with -DDAR_VALIDATE_INVARIANTS.
  [[nodiscard]] Status ValidateInvariants() const;

 private:
  friend struct InvariantTestPeer;
  friend struct PersistPeer;
  struct Node;
  struct ChildRef {
    CfVector cf;  // summary of the subtree, on the own part
    std::unique_ptr<Node> child;
  };
  struct Node {
    bool is_leaf = true;
    std::vector<ChildRef> children;  // internal nodes
    std::vector<Acf> entries;        // leaf nodes
  };

  // Outcome of a recursive insert: whether the node split, and if so the
  // new sibling to add to the parent.
  struct InsertOutcome {
    bool split = false;
    std::unique_ptr<Node> sibling;
  };

  InsertOutcome InsertPointRec(Node* node, const PartedRow& row);
  InsertOutcome InsertSummaryRec(Node* node, Acf&& acf);

  // Splits an over-full node; returns the new sibling holding roughly half
  // the entries. `node` keeps the other half.
  std::unique_ptr<Node> SplitNode(Node* node);

  // Recomputes the subtree CF of `node` on the own part.
  [[nodiscard]] CfVector ComputeNodeCf(const Node& node) const;

  // Handles a root split by growing the tree one level.
  void GrowRoot(std::unique_ptr<Node> sibling);

  // Raises the threshold and reinserts all leaf entries; pages out small
  // clusters as outliers. Returns an error if the budget cannot be met.
  Status Rebuild();

  // Picks the next threshold: max(growth * current, the median over leaves
  // of the smallest merged-pair diameter within the leaf), so that at least
  // a substantial fraction of adjacent clusters merge after the rebuild.
  [[nodiscard]] double NextThreshold() const;

  void CollectLeafEntries(Node* node, std::vector<Acf>& out);
  void CollectLeafEntriesConst(const Node* node, std::vector<Acf>& out) const;

  // Recursive deep copy of a subtree (Clone's workhorse).
  [[nodiscard]] std::unique_ptr<Node> CloneNode(const Node& node) const;

  [[nodiscard]] size_t CountNodes(const Node* node) const;
  [[nodiscard]] size_t ApproxBytesNow() const;

  // ValidateInvariants helpers; `path` names the node under scrutiny.
  Status ValidateNodeRec(const Node& node, const std::string& path,
                         bool is_root, size_t* nodes,
                         size_t* leaf_entries) const;
  Status ValidateCfSummary(const CfVector& cf, size_t expect_dim,
                           MetricKind expect_metric,
                           const std::string& path) const;
  [[nodiscard]] Status ValidateAcfEntry(const Acf& acf, const std::string& path) const;

  std::shared_ptr<const AcfLayout> layout_;
  size_t own_part_;
  AcfTreeOptions options_;
  double threshold_;
  std::unique_ptr<Node> root_;
  std::vector<Acf> outlier_buffer_;  // paged out, not yet confirmed
  std::vector<Acf> outliers_;        // confirmed by FinishScan
  int rebuild_count_ = 0;
  int64_t split_count_ = 0;
  int64_t points_inserted_ = 0;
  size_t num_nodes_ = 1;
  size_t num_leaf_entries_ = 0;
  size_t acf_bytes_estimate_;
  bool in_rebuild_ = false;
};

}  // namespace dar

#endif  // DAR_BIRCH_ACF_TREE_H_
