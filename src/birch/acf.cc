#include "birch/acf.h"

#include <sstream>

#include "common/logging.h"

namespace dar {

size_t AcfLayout::ApproxAcfBytes() const {
  size_t bytes = sizeof(Acf);
  for (const auto& p : parts) {
    bytes += sizeof(CfVector) + 4 * p.dim * sizeof(double);
    if (p.metric == MetricKind::kDiscrete) {
      // Histograms grow with distinct values; assume a modest nominal
      // domain. The tree recomputes exact sizes during rebuilds.
      bytes += p.dim * 16 * (sizeof(double) + sizeof(int64_t) + 48);
    }
  }
  return bytes;
}

bool LayoutsEquivalent(const AcfLayout& a, const AcfLayout& b) {
  if (a.parts.size() != b.parts.size()) return false;
  for (size_t i = 0; i < a.parts.size(); ++i) {
    if (a.parts[i].dim != b.parts[i].dim ||
        a.parts[i].metric != b.parts[i].metric) {
      return false;
    }
  }
  return true;
}

Acf::Acf(std::shared_ptr<const AcfLayout> layout, size_t own_part)
    : layout_(std::move(layout)), own_part_(own_part) {
  DAR_CHECK(layout_ != nullptr);
  DAR_CHECK_LT(own_part_, layout_->num_parts());
  images_.reserve(layout_->num_parts());
  for (const auto& p : layout_->parts) {
    images_.emplace_back(p.dim, p.metric);
  }
}

void Acf::AddRow(const PartedRow& row) {
  DAR_CHECK_EQ(row.size(), images_.size());
  for (size_t i = 0; i < images_.size(); ++i) {
    images_[i].AddPoint(row[i]);
  }
}

void Acf::Merge(const Acf& other) {
  DAR_CHECK_EQ(own_part_, other.own_part_);
  DAR_CHECK_EQ(images_.size(), other.images_.size());
  for (size_t i = 0; i < images_.size(); ++i) {
    images_[i].Merge(other.images_[i]);
  }
}

Acf Acf::WithLayout(std::shared_ptr<const AcfLayout> layout) const {
  DAR_CHECK(layout != nullptr);
  DAR_CHECK(layout_ != nullptr);
  DAR_CHECK(LayoutsEquivalent(*layout_, *layout));
  Acf out = *this;
  out.layout_ = std::move(layout);
  return out;
}

std::vector<std::pair<double, double>> Acf::BoundingBox(size_t p) const {
  const CfVector& img = image(p);
  std::vector<std::pair<double, double>> box(img.dim());
  for (size_t d = 0; d < img.dim(); ++d) {
    box[d] = {img.min()[d], img.max()[d]};
  }
  return box;
}

size_t Acf::ApproxBytes() const {
  size_t bytes = sizeof(Acf);
  for (const auto& img : images_) bytes += img.ApproxBytes();
  return bytes;
}

std::string Acf::ToString() const {
  std::ostringstream os;
  os << "ACF{part=" << layout_->parts[own_part_].label << ", n=" << n()
     << ", box=[";
  auto box = BoundingBox(own_part_);
  for (size_t d = 0; d < box.size(); ++d) {
    if (d > 0) os << " x ";
    os << "[" << box[d].first << ", " << box[d].second << "]";
  }
  os << "]}";
  return os.str();
}

}  // namespace dar
