#ifndef DAR_BIRCH_CF_H_
#define DAR_BIRCH_CF_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "relation/metric.h"

namespace dar {

struct InvariantTestPeer;
struct PersistPeer;

/// A Clustering Feature (BIRCH; Eq. 3 of the paper): the summary
/// `(N, sum t_i, sum t_i^2)` of a set of points projected on one attribute
/// set, extended with
///
///  - per-dimension minima/maxima, so clusters can be *described* by their
///    smallest bounding box (§7.2 chooses the bounding box over the centroid
///    as the user-facing description), and
///  - for attribute sets under the discrete 0/1 metric, a per-dimension
///    value histogram, which makes the §5.1 nominal-data distances (average
///    pairwise mismatch) exactly computable from the summary.
///
/// CfVectors are additive (BIRCH's Additivity Theorem): `Merge` of the
/// summaries of two point sets equals the summary of their union. All
/// cluster statistics used by the mining algorithms (centroid, radius,
/// diameter, inter-cluster distances) derive from this summary alone.
///
/// Note on the diameter: Dfn 4.1 defines the diameter as the *average
/// pairwise distance*. For the Euclidean metric the CF-computable form is
/// the root-mean-square pairwise distance
/// `sqrt(sum_ij ||t_i - t_j||^2 / (N(N-1)))` — this is what BIRCH (and
/// therefore the paper's implementation) uses, and what `Diameter()`
/// returns for kEuclidean/kManhattan parts. For kDiscrete parts the exact
/// average pairwise mismatch count is computable from the histograms and is
/// returned instead.
class CfVector {
 public:
  CfVector() = default;
  CfVector(size_t dim, MetricKind metric);

  [[nodiscard]] size_t dim() const { return ls_.size(); }
  [[nodiscard]] MetricKind metric() const { return metric_; }
  [[nodiscard]] int64_t n() const { return n_; }

  /// Linear sum per dimension.
  [[nodiscard]] std::span<const double> ls() const { return ls_; }
  /// Sum of squares per dimension.
  [[nodiscard]] std::span<const double> ss() const { return ss_; }
  /// Per-dimension minima/maxima (meaningless when n() == 0).
  [[nodiscard]] std::span<const double> min() const { return min_; }
  [[nodiscard]] std::span<const double> max() const { return max_; }

  [[nodiscard]] bool has_histogram() const { return metric_ == MetricKind::kDiscrete; }
  /// Value -> count histogram for dimension `d` (discrete parts only).
  [[nodiscard]] const std::map<double, int64_t>& histogram(size_t d) const {
    return hist_.at(d);
  }

  /// Adds one point (length must equal dim()).
  void AddPoint(std::span<const double> x);

  /// Additivity: absorbs `other` (summaries of disjoint point sets).
  void Merge(const CfVector& other);

  /// Centroid `LS / N` (Eq. 4). Requires n() > 0.
  [[nodiscard]] std::vector<double> Centroid() const;

  /// RMS distance of points to the centroid; 0 when n() < 2.
  [[nodiscard]] double Radius() const;

  /// Average pairwise distance (Dfn 4.1); see class comment for the exact
  /// form per metric. 0 when n() < 2.
  [[nodiscard]] double Diameter() const;

  /// Diameter of this summary after hypothetically adding point `x`,
  /// without mutating the summary. Used by the CF-tree absorption test.
  [[nodiscard]] double DiameterWithPoint(std::span<const double> x) const;

  /// Diameter of the hypothetical merge of this summary and `other`.
  [[nodiscard]] double DiameterWithMerge(const CfVector& other) const;

  /// Sum over dimensions of ss (||t||^2 summed over points).
  [[nodiscard]] double SsSum() const;
  /// Squared Euclidean norm of the LS vector.
  [[nodiscard]] double LsSquaredNorm() const;

  /// Rough heap footprint in bytes (memory-budget accounting).
  [[nodiscard]] size_t ApproxBytes() const;

  [[nodiscard]] std::string ToString() const;

 private:
  // Test-only backdoor so invariant tests can plant corruptions.
  friend struct InvariantTestPeer;
  // Serialization backdoor for dar::persist (persist/persist_peer.h).
  friend struct PersistPeer;

  double DiameterFromMoments(int64_t n, double ss_sum,
                             double ls_sq_norm) const;

  MetricKind metric_ = MetricKind::kEuclidean;
  int64_t n_ = 0;
  std::vector<double> ls_;
  std::vector<double> ss_;
  std::vector<double> min_;
  std::vector<double> max_;
  std::vector<std::map<double, int64_t>> hist_;  // only for kDiscrete
};

}  // namespace dar

#endif  // DAR_BIRCH_CF_H_
