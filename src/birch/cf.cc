#include "birch/cf.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace dar {

CfVector::CfVector(size_t dim, MetricKind metric)
    : metric_(metric),
      ls_(dim, 0.0),
      ss_(dim, 0.0),
      min_(dim, std::numeric_limits<double>::infinity()),
      max_(dim, -std::numeric_limits<double>::infinity()) {
  if (metric_ == MetricKind::kDiscrete) hist_.resize(dim);
}

void CfVector::AddPoint(std::span<const double> x) {
  DAR_CHECK_EQ(x.size(), ls_.size());
  ++n_;
  for (size_t d = 0; d < x.size(); ++d) {
    ls_[d] += x[d];
    ss_[d] += x[d] * x[d];
    min_[d] = std::min(min_[d], x[d]);
    max_[d] = std::max(max_[d], x[d]);
  }
  if (has_histogram()) {
    for (size_t d = 0; d < x.size(); ++d) ++hist_[d][x[d]];
  }
}

void CfVector::Merge(const CfVector& other) {
  DAR_CHECK_EQ(dim(), other.dim());
  DAR_CHECK(metric_ == other.metric_);
  n_ += other.n_;
  for (size_t d = 0; d < ls_.size(); ++d) {
    ls_[d] += other.ls_[d];
    ss_[d] += other.ss_[d];
    min_[d] = std::min(min_[d], other.min_[d]);
    max_[d] = std::max(max_[d], other.max_[d]);
  }
  if (has_histogram()) {
    for (size_t d = 0; d < hist_.size(); ++d) {
      for (const auto& [v, c] : other.hist_[d]) hist_[d][v] += c;
    }
  }
}

std::vector<double> CfVector::Centroid() const {
  DAR_CHECK_GT(n_, 0);
  std::vector<double> c(ls_.size());
  for (size_t d = 0; d < ls_.size(); ++d) c[d] = ls_[d] / n_;
  return c;
}

double CfVector::SsSum() const {
  double s = 0;
  for (double v : ss_) s += v;
  return s;
}

double CfVector::LsSquaredNorm() const {
  double s = 0;
  for (double v : ls_) s += v * v;
  return s;
}

double CfVector::Radius() const {
  if (n_ < 1) return 0.0;
  // R^2 = SS/N - ||LS/N||^2
  double r2 = SsSum() / n_ - LsSquaredNorm() / (static_cast<double>(n_) * n_);
  return std::sqrt(std::max(0.0, r2));
}

double CfVector::DiameterFromMoments(int64_t n, double ss_sum,
                                     double ls_sq_norm) const {
  if (n < 2) return 0.0;
  // Sum over all ordered pairs (i != j) of ||t_i - t_j||^2 equals
  // 2*N*SS - 2*||LS||^2; divide by N(N-1) and take the root.
  double d2 = (2.0 * n * ss_sum - 2.0 * ls_sq_norm) /
              (static_cast<double>(n) * (n - 1));
  return std::sqrt(std::max(0.0, d2));
}

double CfVector::Diameter() const {
  if (n_ < 2) return 0.0;
  if (has_histogram()) {
    // Exact average pairwise mismatch count: per dimension, the number of
    // ordered mismatching pairs is N^2 - sum_v h(v)^2 (self-pairs match).
    double total = 0;
    for (const auto& h : hist_) {
      double same = 0;
      for (const auto& [v, c] : h) same += static_cast<double>(c) * c;
      total += static_cast<double>(n_) * n_ - same;
    }
    return total / (static_cast<double>(n_) * (n_ - 1));
  }
  return DiameterFromMoments(n_, SsSum(), LsSquaredNorm());
}

double CfVector::DiameterWithPoint(std::span<const double> x) const {
  DAR_CHECK_EQ(x.size(), ls_.size());
  int64_t n = n_ + 1;
  if (n < 2) return 0.0;
  if (has_histogram()) {
    double total = 0;
    for (size_t d = 0; d < hist_.size(); ++d) {
      double same = 0;
      for (const auto& [v, c] : hist_[d]) same += static_cast<double>(c) * c;
      // Incrementing h(x[d]) changes sum h^2 by 2*h(x[d]) + 1.
      auto it = hist_[d].find(x[d]);
      int64_t hx = it == hist_[d].end() ? 0 : it->second;
      same += 2.0 * hx + 1.0;
      total += static_cast<double>(n) * n - same;
    }
    return total / (static_cast<double>(n) * (n - 1));
  }
  double ss_sum = SsSum();
  double ls_sq = 0;
  for (size_t d = 0; d < x.size(); ++d) {
    ss_sum += x[d] * x[d];
    double l = ls_[d] + x[d];
    ls_sq += l * l;
  }
  return DiameterFromMoments(n, ss_sum, ls_sq);
}

double CfVector::DiameterWithMerge(const CfVector& other) const {
  DAR_CHECK_EQ(dim(), other.dim());
  int64_t n = n_ + other.n_;
  if (n < 2) return 0.0;
  if (has_histogram()) {
    double total = 0;
    for (size_t d = 0; d < hist_.size(); ++d) {
      double same = 0;
      // Merge the two histograms for this dimension on the fly.
      const auto& ha = hist_[d];
      const auto& hb = other.hist_[d];
      for (const auto& [v, c] : ha) {
        auto it = hb.find(v);
        double merged = c + (it == hb.end() ? 0 : it->second);
        same += merged * merged;
      }
      for (const auto& [v, c] : hb) {
        if (ha.find(v) == ha.end()) same += static_cast<double>(c) * c;
      }
      total += static_cast<double>(n) * n - same;
    }
    return total / (static_cast<double>(n) * (n - 1));
  }
  double ss_sum = SsSum() + other.SsSum();
  double ls_sq = 0;
  for (size_t d = 0; d < ls_.size(); ++d) {
    double l = ls_[d] + other.ls_[d];
    ls_sq += l * l;
  }
  return DiameterFromMoments(n, ss_sum, ls_sq);
}

size_t CfVector::ApproxBytes() const {
  size_t bytes = sizeof(CfVector) + 4 * ls_.size() * sizeof(double);
  for (const auto& h : hist_) {
    // Node-based map: ~48 bytes of overhead plus key/value per entry.
    bytes += h.size() * (sizeof(double) + sizeof(int64_t) + 48);
  }
  return bytes;
}

std::string CfVector::ToString() const {
  std::ostringstream os;
  os << "CF{n=" << n_ << ", ls=[";
  for (size_t d = 0; d < ls_.size(); ++d) {
    if (d > 0) os << ", ";
    os << ls_[d];
  }
  os << "], d=" << Diameter() << "}";
  return os.str();
}

}  // namespace dar
