#ifndef DAR_BIRCH_METRICS_H_
#define DAR_BIRCH_METRICS_H_

#include <span>

#include "birch/cf.h"

namespace dar {

/// Inter-cluster distance metrics computable from CF summaries (§5, Eqs. 5-6;
/// the D0-D4 family is from BIRCH [ZRL96]).
///
/// For summaries of attribute sets under the discrete 0/1 metric, D0/D1/D2
/// all evaluate the exact average pairwise mismatch between the two point
/// sets — the only statistically meaningful inter-cluster distance for
/// nominal data, and the one Theorem 5.2 relies on. Centroids of dictionary
/// codes are meaningless, so the centroid-based forms intentionally
/// degenerate to the average form there.
enum class ClusterMetric : int {
  /// Euclidean distance between centroids (BIRCH D0).
  kD0Centroid = 0,
  /// Manhattan distance between centroids (Eq. 5; BIRCH D1).
  kD1CentroidManhattan = 1,
  /// Average inter-cluster distance (Eq. 6; BIRCH D2). RMS form
  /// `sqrt(sum_ij ||a_i - b_j||^2 / (N1 N2))` for interval parts; exact
  /// average mismatch count for discrete parts.
  kD2AvgInter = 2,
  /// Average intra-cluster distance of the merged cluster (BIRCH D3), i.e.
  /// the diameter of the union.
  kD3AvgIntra = 3,
  /// Variance increase of the merge (BIRCH D4).
  kD4VarIncrease = 4,
};

/// Stable name ("D0".."D4").
const char* ClusterMetricToString(ClusterMetric m);

/// Distance between two cluster summaries over the *same* attribute set.
/// Both summaries must have equal dimension and metric kind and be
/// non-empty.
double ClusterDistance(const CfVector& a, const CfVector& b, ClusterMetric m);

/// Distance from a single point to a cluster summary: the distance from the
/// point to the centroid under the part's metric for interval parts; the
/// expected per-dimension mismatch probability for discrete parts. Used to
/// steer CF-tree descent and nearest-cluster assignment.
double PointClusterDistance(std::span<const double> x, const CfVector& c);

}  // namespace dar

#endif  // DAR_BIRCH_METRICS_H_
