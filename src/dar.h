#ifndef DAR_DAR_H_
#define DAR_DAR_H_

/// Umbrella header: the full public API of the distance-based
/// association-rule library. Include this (and link the `dar` CMake
/// target) to get everything; individual headers remain available for
/// finer-grained dependencies.
///
/// API stability tiers (mirrored in README.md):
///
///   Stable — semantics and signatures only change with a deprecation
///   cycle: Session/DarConfig/MiningReport, the relation layer (Schema,
///   Relation, AttributePartition, CSV), the rule model (ClusterSet,
///   DistanceRule), Status/Result, Executor, telemetry registries, the
///   streaming miner's ingest/remine/checkpoint surface, QueryService
///   and the serve protocol, and the checkpoint container format
///   (persist/checkpoint_io.h — versioned independently of the library).
///
///   Experimental — may change signature or semantics without notice:
///   the distributed mining layer (Coordinator, MergeTrees/MergeBuilders
///   in core/merge.h, MergeCheckpoints in persist/merge.h), the quality
///   layer (src/quality: interestingness measures, redundancy pruning,
///   snapshot diffing), the clique engine (src/graph: CSR Graph,
///   EnumerateMaximalCliques), the advisor, and the generalized-QAR
///   bridge.
///
/// Deprecated symbols are removed at the next minor release; the tree
/// carries none outside the deprecation machinery itself (enforced by
/// tools/dar_lint.py rule `no-lingering-deprecated`).

#include "apriori/apriori.h"     // IWYU pragma: export
#include "apriori/itemset.h"     // IWYU pragma: export
#include "birch/acf.h"           // IWYU pragma: export
#include "birch/acf_tree.h"      // IWYU pragma: export
#include "birch/cf.h"            // IWYU pragma: export
#include "birch/metrics.h"       // IWYU pragma: export
#include "birch/refine.h"        // IWYU pragma: export
#include "common/executor.h"     // IWYU pragma: export
#include "common/random.h"       // IWYU pragma: export
#include "common/result.h"       // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "common/stopwatch.h"    // IWYU pragma: export
#include "core/advisor.h"        // IWYU pragma: export
#include "core/clustering_graph.h"  // IWYU pragma: export
#include "core/config.h"         // IWYU pragma: export
#include "core/coordinator.h"    // IWYU pragma: export
#include "core/generalized_qar.h"   // IWYU pragma: export
#include "core/merge.h"          // IWYU pragma: export
#include "core/miner_result.h"   // IWYU pragma: export
#include "core/mining_report.h"  // IWYU pragma: export
#include "core/model.h"          // IWYU pragma: export
#include "core/observer.h"       // IWYU pragma: export
#include "core/phase1_builder.h"    // IWYU pragma: export
#include "core/session.h"        // IWYU pragma: export
#include "core/report.h"         // IWYU pragma: export
#include "core/rule_gen.h"       // IWYU pragma: export
#include "core/rules.h"          // IWYU pragma: export
#include "datagen/fixtures.h"    // IWYU pragma: export
#include "datagen/graphs.h"      // IWYU pragma: export
#include "datagen/planted.h"     // IWYU pragma: export
#include "graph/clique.h"        // IWYU pragma: export
#include "graph/graph.h"         // IWYU pragma: export
#include "persist/checkpoint_io.h"  // IWYU pragma: export
#include "persist/codec.h"       // IWYU pragma: export
#include "persist/merge.h"       // IWYU pragma: export
#include "qar/equidepth.h"       // IWYU pragma: export
#include "qar/qar_miner.h"       // IWYU pragma: export
#include "quality/diff.h"        // IWYU pragma: export
#include "quality/interval_match.h" // IWYU pragma: export
#include "quality/measure.h"     // IWYU pragma: export
#include "quality/prune.h"       // IWYU pragma: export
#include "quality/scored_rules.h"   // IWYU pragma: export
#include "relation/csv.h"        // IWYU pragma: export
#include "relation/metric.h"     // IWYU pragma: export
#include "relation/partition.h"  // IWYU pragma: export
#include "relation/relation.h"   // IWYU pragma: export
#include "relation/schema.h"     // IWYU pragma: export
#include "serve/admission.h"     // IWYU pragma: export
#include "serve/client.h"        // IWYU pragma: export
#include "serve/http_adapter.h"  // IWYU pragma: export
#include "serve/protocol.h"      // IWYU pragma: export
#include "serve/query_api.h"     // IWYU pragma: export
#include "serve/query_service.h"    // IWYU pragma: export
#include "serve/server.h"        // IWYU pragma: export
#include "stream/rule_index.h"   // IWYU pragma: export
#include "stream/rule_snapshot.h"   // IWYU pragma: export
#include "stream/stream_config.h"   // IWYU pragma: export
#include "stream/streaming_miner.h" // IWYU pragma: export
#include "telemetry/context.h"   // IWYU pragma: export
#include "telemetry/json.h"      // IWYU pragma: export
#include "telemetry/metrics.h"   // IWYU pragma: export
#include "telemetry/trace.h"     // IWYU pragma: export

#endif  // DAR_DAR_H_
