#ifndef DAR_DAR_H_
#define DAR_DAR_H_

/// Umbrella header: the full public API of the distance-based
/// association-rule library. Include this (and link the `dar` CMake
/// target) to get everything; individual headers remain available for
/// finer-grained dependencies.

#include "apriori/apriori.h"     // IWYU pragma: export
#include "apriori/itemset.h"     // IWYU pragma: export
#include "birch/acf.h"           // IWYU pragma: export
#include "birch/acf_tree.h"      // IWYU pragma: export
#include "birch/cf.h"            // IWYU pragma: export
#include "birch/metrics.h"       // IWYU pragma: export
#include "birch/refine.h"        // IWYU pragma: export
#include "common/executor.h"     // IWYU pragma: export
#include "common/random.h"       // IWYU pragma: export
#include "common/result.h"       // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "common/stopwatch.h"    // IWYU pragma: export
#include "core/advisor.h"        // IWYU pragma: export
#include "core/clustering_graph.h"  // IWYU pragma: export
#include "core/config.h"         // IWYU pragma: export
#include "core/generalized_qar.h"   // IWYU pragma: export
#include "core/miner_result.h"   // IWYU pragma: export
#include "core/mining_report.h"  // IWYU pragma: export
#include "core/model.h"          // IWYU pragma: export
#include "core/observer.h"       // IWYU pragma: export
#include "core/phase1_builder.h"    // IWYU pragma: export
#include "core/session.h"        // IWYU pragma: export
#include "core/report.h"         // IWYU pragma: export
#include "core/rule_gen.h"       // IWYU pragma: export
#include "core/rules.h"          // IWYU pragma: export
#include "datagen/fixtures.h"    // IWYU pragma: export
#include "datagen/planted.h"     // IWYU pragma: export
#include "qar/equidepth.h"       // IWYU pragma: export
#include "qar/qar_miner.h"       // IWYU pragma: export
#include "relation/csv.h"        // IWYU pragma: export
#include "relation/metric.h"     // IWYU pragma: export
#include "relation/partition.h"  // IWYU pragma: export
#include "relation/relation.h"   // IWYU pragma: export
#include "relation/schema.h"     // IWYU pragma: export
#include "serve/admission.h"     // IWYU pragma: export
#include "serve/client.h"        // IWYU pragma: export
#include "serve/http_adapter.h"  // IWYU pragma: export
#include "serve/protocol.h"      // IWYU pragma: export
#include "serve/query_api.h"     // IWYU pragma: export
#include "serve/query_service.h"    // IWYU pragma: export
#include "serve/server.h"        // IWYU pragma: export
#include "telemetry/context.h"   // IWYU pragma: export
#include "telemetry/json.h"      // IWYU pragma: export
#include "telemetry/metrics.h"   // IWYU pragma: export
#include "telemetry/trace.h"     // IWYU pragma: export

#endif  // DAR_DAR_H_
