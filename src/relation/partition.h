#ifndef DAR_RELATION_PARTITION_H_
#define DAR_RELATION_PARTITION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "relation/metric.h"
#include "relation/schema.h"

namespace dar {

/// One element X_i of the user-supplied attribute partitioning (§4.3, §6):
/// a set of columns over which a single distance metric delta_{X_i} is
/// meaningful (e.g. {Latitude, Longitude} with Euclidean distance, or a lone
/// Salary column).
struct AttributeSet {
  /// Column indices into the relation's schema, in ascending order.
  std::vector<size_t> columns;
  MetricKind metric = MetricKind::kEuclidean;
  /// Human-readable label, e.g. "Salary" or "Lat+Lon" (derived from the
  /// schema when built via AttributePartition::Make).
  std::string label;

  [[nodiscard]] size_t dimension() const { return columns.size(); }
};

/// A partitioning of (a subset of) a relation's attributes into disjoint
/// attribute sets. The mining algorithms build one ACF-tree per part and
/// never compare values across parts except through cluster summaries.
class AttributePartition {
 public:
  AttributePartition() = default;

  /// Validates that parts are non-empty, disjoint, within the schema, and
  /// that nominal columns use the discrete metric. `parts[i]` is given by
  /// attribute name lists.
  static Result<AttributePartition> Make(
      const Schema& schema,
      const std::vector<std::pair<std::vector<std::string>, MetricKind>>&
          parts);

  /// Builds the default partitioning: one single-column part per attribute,
  /// Euclidean for interval attributes, discrete for nominal ones.
  static AttributePartition SingletonPartition(const Schema& schema);

  [[nodiscard]] size_t num_parts() const { return parts_.size(); }
  [[nodiscard]] const AttributeSet& part(size_t i) const { return parts_.at(i); }
  [[nodiscard]] const std::vector<AttributeSet>& parts() const { return parts_; }

  /// Index of the part containing column `col`, or NotFound.
  [[nodiscard]] Result<size_t> PartOfColumn(size_t col) const;

  /// Total number of columns covered by all parts.
  [[nodiscard]] size_t TotalColumns() const;

 private:
  explicit AttributePartition(std::vector<AttributeSet> parts)
      : parts_(std::move(parts)) {}

  std::vector<AttributeSet> parts_;
};

}  // namespace dar

#endif  // DAR_RELATION_PARTITION_H_
