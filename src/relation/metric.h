#ifndef DAR_RELATION_METRIC_H_
#define DAR_RELATION_METRIC_H_

#include <cmath>
#include <span>
#include <string>

namespace dar {

/// Distance metric attached to an attribute set (the paper's delta_X, §4.1).
///
/// - kEuclidean / kManhattan: the interval-data metrics used throughout the
///   paper's examples.
/// - kDiscrete: the 0/1 metric of §5.1 (`delta(x,y) = [x != y]`), which makes
///   distance-based rules degenerate to classical rules (Theorems 5.1/5.2).
///   Nominal attributes are dictionary-encoded and given this metric.
enum class MetricKind : int {
  kEuclidean = 0,
  kManhattan = 1,
  kDiscrete = 2,
};

/// Stable name ("euclidean", "manhattan", "discrete").
const char* MetricKindToString(MetricKind kind);

/// Point-to-point distance between two equally-sized value vectors under
/// `kind`. For kDiscrete the distance is the count of differing coordinates
/// (which for one dimension is exactly the paper's 0/1 metric).
double PointDistance(MetricKind kind, std::span<const double> a,
                     std::span<const double> b);

/// Squared Euclidean norm of `a - b`; helper shared by the CF algebra.
double SquaredEuclidean(std::span<const double> a, std::span<const double> b);

}  // namespace dar

#endif  // DAR_RELATION_METRIC_H_
