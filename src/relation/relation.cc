#include "relation/relation.h"

#include "common/logging.h"

namespace dar {

Relation::Relation(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

Status Relation::AppendRow(std::span<const double> values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(values.size()) +
        " does not match schema width " + std::to_string(columns_.size()));
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(values[c]);
  }
  ++num_rows_;
  return Status::OK();
}

void Relation::ProjectRow(size_t row, std::span<const size_t> cols,
                          std::vector<double>& out) const {
  out.resize(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    out[i] = columns_[cols[i]][row];
  }
}

std::vector<double> Relation::Row(size_t row) const {
  std::vector<double> out(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) out[c] = columns_[c][row];
  return out;
}

Result<Relation> Relation::Project(std::span<const size_t> cols) const {
  std::vector<Attribute> attrs;
  attrs.reserve(cols.size());
  for (size_t c : cols) {
    if (c >= schema_.num_attributes()) {
      return Status::OutOfRange("column index " + std::to_string(c) +
                                " out of range");
    }
    attrs.push_back(schema_.attribute(c));
  }
  DAR_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  Relation out(std::move(schema));
  out.num_rows_ = num_rows_;
  for (size_t i = 0; i < cols.size(); ++i) {
    out.columns_[i] = columns_[cols[i]];
  }
  return out;
}

Result<Relation> Relation::SelectRows(std::span<const size_t> rows) const {
  Relation out(schema_);
  out.Reserve(rows.size());
  std::vector<double> buf(columns_.size());
  for (size_t r : rows) {
    if (r >= num_rows_) {
      return Status::OutOfRange("row index " + std::to_string(r) +
                                " out of range");
    }
    for (size_t c = 0; c < columns_.size(); ++c) buf[c] = columns_[c][r];
    DAR_RETURN_IF_ERROR(out.AppendRow(buf));
  }
  return out;
}

void Relation::Reserve(size_t n) {
  for (auto& col : columns_) col.reserve(n);
}

}  // namespace dar
