#ifndef DAR_RELATION_SCHEMA_H_
#define DAR_RELATION_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dar {

/// Kind of an attribute's domain.
///
/// kInterval is the paper's focus: ordered data where the separation between
/// values has meaning (salary, age, claims...). kNominal attributes are
/// dictionary-encoded; under the 0/1 discrete metric they reproduce classical
/// association-rule semantics (§5.1).
enum class AttributeKind : int {
  kInterval = 0,
  kNominal = 1,
};

/// A named, typed column of a relation.
struct Attribute {
  std::string name;
  AttributeKind kind = AttributeKind::kInterval;
};

/// Ordered list of attributes; maps names to column indices.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Builds a schema, failing on duplicate or empty attribute names.
  static Result<Schema> Make(std::vector<Attribute> attributes);

  [[nodiscard]] size_t num_attributes() const { return attributes_.size(); }
  [[nodiscard]] const Attribute& attribute(size_t i) const { return attributes_.at(i); }
  [[nodiscard]] const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Column index of `name`, or NotFound.
  [[nodiscard]] Result<size_t> IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const;

  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
  std::map<std::string, size_t> index_;
};

/// Bidirectional mapping between nominal string labels and their encoded
/// double values (0, 1, 2, ... in first-seen order). One per nominal column.
class Dictionary {
 public:
  /// Returns the code for `label`, adding it if new.
  double Encode(const std::string& label);

  /// The label for `code`, or NotFound if the code was never produced.
  [[nodiscard]] Result<std::string> Decode(double code) const;

  /// Code for `label` if present, without inserting.
  [[nodiscard]] Result<double> Lookup(const std::string& label) const;

  [[nodiscard]] size_t size() const { return labels_.size(); }

 private:
  std::vector<std::string> labels_;
  std::map<std::string, size_t> codes_;
};

}  // namespace dar

#endif  // DAR_RELATION_SCHEMA_H_
