#include "relation/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace dar {

namespace {

// Reads all non-empty lines from `in`, stripping a trailing '\r' (CRLF).
std::vector<std::string> ReadLines(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

}  // namespace

Result<CsvTable> ReadCsv(std::istream& in, const CsvOptions& options) {
  std::vector<std::string> lines = ReadLines(in);
  if (lines.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> names;
  size_t first_data_line = 0;
  if (options.has_header) {
    for (const auto& f : Split(lines[0], options.delimiter)) {
      names.emplace_back(StripWhitespace(f));
    }
    first_data_line = 1;
  } else {
    size_t width = Split(lines[0], options.delimiter).size();
    for (size_t i = 0; i < width; ++i) names.push_back("c" + std::to_string(i));
  }

  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const auto& name : names) {
    AttributeKind kind =
        std::find(options.nominal_columns.begin(),
                  options.nominal_columns.end(),
                  name) != options.nominal_columns.end()
            ? AttributeKind::kNominal
            : AttributeKind::kInterval;
    attrs.push_back({name, kind});
  }
  DAR_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));

  CsvTable table{Relation(schema), std::vector<Dictionary>(names.size())};
  std::vector<double> row(names.size());
  for (size_t li = first_data_line; li < lines.size(); ++li) {
    std::vector<std::string> fields = Split(lines[li], options.delimiter);
    if (fields.size() != names.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(li + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(names.size()));
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      std::string_view field = StripWhitespace(fields[c]);
      if (schema.attribute(c).kind == AttributeKind::kNominal) {
        row[c] = table.dictionaries[c].Encode(std::string(field));
      } else {
        auto parsed = ParseDouble(field);
        if (!parsed.ok()) {
          return Status::InvalidArgument(
              "line " + std::to_string(li + 1) + ", column '" + names[c] +
              "': " + parsed.status().message());
        }
        row[c] = *parsed;
      }
    }
    DAR_RETURN_IF_ERROR(table.relation.AppendRow(row));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadCsv(in, options);
}

Status WriteCsv(const CsvTable& table, std::ostream& out, char delimiter) {
  const Relation& rel = table.relation;
  const Schema& schema = rel.schema();
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (c > 0) out << delimiter;
    out << schema.attribute(c).name;
  }
  out << "\n";
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      if (c > 0) out << delimiter;
      double v = rel.at(r, c);
      if (schema.attribute(c).kind == AttributeKind::kNominal) {
        DAR_ASSIGN_OR_RETURN(std::string label,
                             table.dictionaries[c].Decode(v));
        out << label;
      } else {
        out << FormatDouble(v);
      }
    }
    out << "\n";
  }
  if (!out) return Status::IOError("CSV write failed");
  return Status::OK();
}

}  // namespace dar
