#include "relation/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace dar {

namespace {

// Prefixes input-shaped errors with the configured source name (a file
// path, a URL, a queue id) so multi-input callers can attribute failures.
Status WithSource(Status status, const CsvOptions& options) {
  if (status.ok() || options.source_name.empty()) return status;
  return Status(status.code(),
                "'" + options.source_name + "': " + status.message());
}

// Parses one data line into `row`, encoding nominal fields through the
// (persistent) dictionaries. `line_number` is the 1-based physical line,
// used verbatim in every error.
Status ParseCsvRow(const std::string& line, const CsvOptions& options,
                   const Schema& schema,
                   const std::vector<std::string>& names, size_t line_number,
                   std::vector<Dictionary>& dictionaries,
                   std::vector<double>& row) {
  std::vector<std::string> fields = Split(line, options.delimiter);
  if (fields.size() != names.size()) {
    return Status::InvalidArgument(
        "line " + std::to_string(line_number) + " has " +
        std::to_string(fields.size()) + " fields, expected " +
        std::to_string(names.size()));
  }
  for (size_t c = 0; c < fields.size(); ++c) {
    std::string_view field = StripWhitespace(fields[c]);
    if (schema.attribute(c).kind == AttributeKind::kNominal) {
      row[c] = dictionaries[c].Encode(std::string(field));
    } else {
      auto parsed = ParseDouble(field);
      if (!parsed.ok()) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ", column '" + names[c] +
            "': " + parsed.status().message());
      }
      row[c] = *parsed;
    }
  }
  return Status::OK();
}

}  // namespace

bool CsvStreamReader::NextLine(std::string& line) {
  while (std::getline(*in_, line)) {
    ++line_number_;
    // getline also yields a final row that has no trailing newline, so a
    // truncated last line is still a row, not a silent drop.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) return true;
  }
  return false;
}

Result<CsvStreamReader> CsvStreamReader::Open(std::istream& in,
                                              const CsvOptions& options) {
  CsvStreamReader reader(in, options);
  std::string first;
  if (!reader.NextLine(first)) {
    return WithSource(Status::InvalidArgument("empty CSV input"), options);
  }

  std::vector<std::string> names;
  if (options.has_header) {
    for (const auto& f : Split(first, options.delimiter)) {
      names.emplace_back(StripWhitespace(f));
    }
  } else {
    size_t width = Split(first, options.delimiter).size();
    for (size_t i = 0; i < width; ++i) {
      names.push_back("c" + std::to_string(i));
    }
    reader.pending_line_ = std::move(first);
    reader.pending_line_number_ = reader.line_number_;
    reader.has_pending_ = true;
  }

  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const auto& name : names) {
    AttributeKind kind =
        std::find(options.nominal_columns.begin(),
                  options.nominal_columns.end(),
                  name) != options.nominal_columns.end()
            ? AttributeKind::kNominal
            : AttributeKind::kInterval;
    attrs.push_back({name, kind});
  }
  DAR_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));

  reader.schema_ = std::move(schema);
  reader.names_ = std::move(names);
  reader.dictionaries_.resize(reader.names_.size());
  return reader;
}

Result<Relation> CsvStreamReader::NextBatch(size_t max_rows) {
  if (max_rows == 0) {
    return Status::InvalidArgument("NextBatch max_rows must be > 0");
  }
  Relation batch(schema_);
  std::vector<double> row(names_.size());
  std::string line;
  while (batch.num_rows() < max_rows) {
    size_t line_number;
    if (has_pending_) {
      line = std::move(pending_line_);
      line_number = pending_line_number_;
      has_pending_ = false;
    } else if (NextLine(line)) {
      line_number = line_number_;
    } else {
      exhausted_ = true;
      break;
    }
    DAR_RETURN_IF_ERROR(WithSource(
        ParseCsvRow(line, options_, schema_, names_, line_number,
                    dictionaries_, row),
        options_));
    DAR_RETURN_IF_ERROR(batch.AppendRow(row));
  }
  return batch;
}

Result<CsvTable> ReadCsv(std::istream& in, const CsvOptions& options) {
  // One parse path for batch and streaming: ReadCsv is the stream reader
  // drained in one go.
  DAR_ASSIGN_OR_RETURN(CsvStreamReader reader,
                       CsvStreamReader::Open(in, options));
  CsvTable table{Relation(reader.schema()), {}};
  std::vector<double> row(reader.schema().num_attributes());
  while (!reader.exhausted()) {
    DAR_ASSIGN_OR_RETURN(Relation batch, reader.NextBatch(4096));
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      for (size_t c = 0; c < row.size(); ++c) row[c] = batch.at(r, c);
      DAR_RETURN_IF_ERROR(table.relation.AppendRow(row));
    }
  }
  table.dictionaries = reader.dictionaries();
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  CsvOptions file_options = options;
  if (file_options.source_name.empty()) file_options.source_name = path;
  return ReadCsv(in, file_options);
}

Status WriteCsv(const CsvTable& table, std::ostream& out, char delimiter) {
  const Relation& rel = table.relation;
  const Schema& schema = rel.schema();
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (c > 0) out << delimiter;
    out << schema.attribute(c).name;
  }
  out << "\n";
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      if (c > 0) out << delimiter;
      double v = rel.at(r, c);
      if (schema.attribute(c).kind == AttributeKind::kNominal) {
        DAR_ASSIGN_OR_RETURN(std::string label,
                             table.dictionaries[c].Decode(v));
        out << label;
      } else {
        out << FormatDouble(v);
      }
    }
    out << "\n";
  }
  if (!out) return Status::IOError("CSV write failed");
  return Status::OK();
}

}  // namespace dar
