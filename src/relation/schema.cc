#include "relation/schema.h"

#include <cmath>

#include "common/logging.h"

namespace dar {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_.emplace(attributes_[i].name, i);
  }
}

Result<Schema> Schema::Make(std::vector<Attribute> attributes) {
  std::map<std::string, size_t> seen;
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name.empty()) {
      return Status::InvalidArgument("attribute " + std::to_string(i) +
                                     " has an empty name");
    }
    auto [it, inserted] = seen.emplace(attributes[i].name, i);
    if (!inserted) {
      return Status::InvalidArgument("duplicate attribute name '" +
                                     attributes[i].name + "'");
    }
  }
  return Schema(std::move(attributes));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no attribute named '" + name + "'");
  }
  return it->second;
}

bool Schema::operator==(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].kind != other.attributes_[i].kind) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += attributes_[i].kind == AttributeKind::kNominal ? ":nominal"
                                                          : ":interval";
  }
  out += ")";
  return out;
}

double Dictionary::Encode(const std::string& label) {
  auto [it, inserted] = codes_.emplace(label, labels_.size());
  if (inserted) labels_.push_back(label);
  return static_cast<double>(it->second);
}

Result<std::string> Dictionary::Decode(double code) const {
  double rounded = std::round(code);
  if (rounded != code || rounded < 0 ||
      rounded >= static_cast<double>(labels_.size())) {
    return Status::NotFound("no label with code " + std::to_string(code));
  }
  return labels_[static_cast<size_t>(rounded)];
}

Result<double> Dictionary::Lookup(const std::string& label) const {
  auto it = codes_.find(label);
  if (it == codes_.end()) {
    return Status::NotFound("label '" + label + "' not in dictionary");
  }
  return static_cast<double>(it->second);
}

}  // namespace dar
