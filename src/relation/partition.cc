#include "relation/partition.h"

#include <algorithm>
#include <set>

namespace dar {

Result<AttributePartition> AttributePartition::Make(
    const Schema& schema,
    const std::vector<std::pair<std::vector<std::string>, MetricKind>>&
        parts) {
  std::vector<AttributeSet> out;
  std::set<size_t> used;
  for (const auto& [names, metric] : parts) {
    if (names.empty()) {
      return Status::InvalidArgument("attribute set must not be empty");
    }
    AttributeSet set;
    set.metric = metric;
    for (const auto& name : names) {
      DAR_ASSIGN_OR_RETURN(size_t col, schema.IndexOf(name));
      if (!used.insert(col).second) {
        return Status::InvalidArgument("attribute '" + name +
                                       "' appears in more than one part");
      }
      if (schema.attribute(col).kind == AttributeKind::kNominal &&
          metric != MetricKind::kDiscrete) {
        return Status::InvalidArgument(
            "nominal attribute '" + name +
            "' requires the discrete metric (got " +
            MetricKindToString(metric) + ")");
      }
      set.columns.push_back(col);
      if (!set.label.empty()) set.label += "+";
      set.label += name;
    }
    std::sort(set.columns.begin(), set.columns.end());
    out.push_back(std::move(set));
  }
  return AttributePartition(std::move(out));
}

AttributePartition AttributePartition::SingletonPartition(
    const Schema& schema) {
  std::vector<AttributeSet> parts;
  parts.reserve(schema.num_attributes());
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    AttributeSet set;
    set.columns = {c};
    set.metric = schema.attribute(c).kind == AttributeKind::kNominal
                     ? MetricKind::kDiscrete
                     : MetricKind::kEuclidean;
    set.label = schema.attribute(c).name;
    parts.push_back(std::move(set));
  }
  return AttributePartition(std::move(parts));
}

Result<size_t> AttributePartition::PartOfColumn(size_t col) const {
  for (size_t i = 0; i < parts_.size(); ++i) {
    const auto& cols = parts_[i].columns;
    if (std::find(cols.begin(), cols.end(), col) != cols.end()) return i;
  }
  return Status::NotFound("column " + std::to_string(col) +
                          " is not covered by the partition");
}

size_t AttributePartition::TotalColumns() const {
  size_t n = 0;
  for (const auto& p : parts_) n += p.columns.size();
  return n;
}

}  // namespace dar
