#ifndef DAR_RELATION_RELATION_H_
#define DAR_RELATION_RELATION_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relation/schema.h"

namespace dar {

/// A column-major numeric table: the relation `r` over schema `R` of §4.1.
///
/// All values are stored as doubles. Interval attributes hold their natural
/// numeric values; nominal attributes hold dictionary codes (see
/// `Dictionary`). Column-major layout keeps Phase I's per-attribute-set scans
/// cache-friendly.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema);

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] size_t num_rows() const { return num_rows_; }
  [[nodiscard]] size_t num_columns() const { return columns_.size(); }

  /// Appends a row; `values.size()` must equal the number of attributes.
  Status AppendRow(std::span<const double> values);
  Status AppendRow(std::initializer_list<double> values) {
    return AppendRow(std::span<const double>(values.begin(), values.size()));
  }

  /// Full column `col` (length num_rows()).
  [[nodiscard]] std::span<const double> column(size_t col) const {
    return columns_.at(col);
  }

  [[nodiscard]] double at(size_t row, size_t col) const { return columns_.at(col).at(row); }

  /// Copies row `row` projected on `cols` into `out` (resized to match).
  /// This is the tuple image t[X] used throughout the paper.
  void ProjectRow(size_t row, std::span<const size_t> cols,
                  std::vector<double>& out) const;

  /// Entire row as a vector (convenience for tests/examples).
  [[nodiscard]] std::vector<double> Row(size_t row) const;

  /// New relation containing only the columns in `cols`, in that order.
  [[nodiscard]] Result<Relation> Project(std::span<const size_t> cols) const;

  /// New relation containing only the rows in `rows`, in that order.
  [[nodiscard]] Result<Relation> SelectRows(std::span<const size_t> rows) const;

  /// Reserves capacity for `n` rows across all columns.
  void Reserve(size_t n);

 private:
  Schema schema_;
  std::vector<std::vector<double>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace dar

#endif  // DAR_RELATION_RELATION_H_
