#include "relation/metric.h"

#include "common/logging.h"

namespace dar {

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kEuclidean:
      return "euclidean";
    case MetricKind::kManhattan:
      return "manhattan";
    case MetricKind::kDiscrete:
      return "discrete";
  }
  return "unknown";
}

double PointDistance(MetricKind kind, std::span<const double> a,
                     std::span<const double> b) {
  DAR_CHECK_EQ(a.size(), b.size());
  switch (kind) {
    case MetricKind::kEuclidean: {
      double s = 0;
      for (size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        s += d * d;
      }
      return std::sqrt(s);
    }
    case MetricKind::kManhattan: {
      double s = 0;
      for (size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
      return s;
    }
    case MetricKind::kDiscrete: {
      double s = 0;
      for (size_t i = 0; i < a.size(); ++i) s += (a[i] != b[i]) ? 1.0 : 0.0;
      return s;
    }
  }
  return 0;
}

double SquaredEuclidean(std::span<const double> a, std::span<const double> b) {
  DAR_CHECK_EQ(a.size(), b.size());
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace dar
