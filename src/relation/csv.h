#ifndef DAR_RELATION_CSV_H_
#define DAR_RELATION_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace dar {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// Whether the first line names the columns. When false, columns are named
  /// "c0", "c1", ...
  bool has_header = true;
  /// Columns (by name) to treat as nominal; everything else is interval.
  std::vector<std::string> nominal_columns;
  /// When non-empty, every parse error is prefixed with "'source_name': "
  /// so a caller juggling several inputs can tell which one is malformed.
  /// ReadCsvFile fills it with the file path when the caller left it empty.
  std::string source_name;
};

/// Result of reading a CSV: the relation plus the dictionaries that encoded
/// each nominal column (keyed by column index; interval columns have empty
/// dictionaries).
struct CsvTable {
  Relation relation;
  std::vector<Dictionary> dictionaries;
};

/// Parses CSV text from `in`. Nominal columns are dictionary-encoded; any
/// non-numeric value in an interval column is an error.
Result<CsvTable> ReadCsv(std::istream& in, const CsvOptions& options = {});

/// Incremental CSV reader for streaming ingest (StreamingMiner::Ingest):
/// Open() consumes the header and fixes the schema, then each NextBatch()
/// yields a micro-batch Relation of up to `max_rows` rows without
/// materializing the rest of the input. Nominal-column dictionaries
/// persist across batches, so a label first seen in batch 1 keeps its
/// code in batch 9.
///
/// Edge cases a streaming source surfaces are handled explicitly: CRLF
/// line endings are stripped, a final row without a trailing newline is
/// still a row, and a row whose field count does not match the header is
/// an InvalidArgument naming the 1-based physical line — never a silent
/// skip. Blank lines are ignored (they are not rows in any CSV dialect we
/// accept) but still advance the line counter.
///
///     DAR_ASSIGN_OR_RETURN(CsvStreamReader reader,
///                          CsvStreamReader::Open(file, opts));
///     while (!reader.exhausted()) {
///       DAR_ASSIGN_OR_RETURN(Relation batch, reader.NextBatch(1024));
///       if (batch.num_rows() > 0) DAR_RETURN_IF_ERROR(stream->Ingest(batch));
///     }
class CsvStreamReader {
 public:
  /// Reads the header (or, without one, peeks the first row for the
  /// width) and fixes the schema. `in` is borrowed and must outlive the
  /// reader. Fails on empty input or an invalid header.
  static Result<CsvStreamReader> Open(std::istream& in,
                                      const CsvOptions& options = {});

  /// Parses up to `max_rows` further rows (> 0). Returns a Relation with
  /// fewer rows — possibly zero — when the input ends first; after that
  /// exhausted() is true and further calls yield empty batches.
  Result<Relation> NextBatch(size_t max_rows);

  [[nodiscard]] const Schema& schema() const { return schema_; }

  /// Dictionary per column (empty for interval columns), growing as new
  /// nominal labels arrive. Codes are stable across batches.
  [[nodiscard]] const std::vector<Dictionary>& dictionaries() const {
    return dictionaries_;
  }

  /// True once the underlying stream has ended.
  [[nodiscard]] bool exhausted() const { return exhausted_; }

  /// 1-based physical line number of the last line consumed (header,
  /// blank and data lines all count), 0 before Open reads anything.
  [[nodiscard]] size_t line_number() const { return line_number_; }

 private:
  CsvStreamReader(std::istream& in, CsvOptions options)
      : in_(&in), options_(std::move(options)) {}

  // Reads the next non-blank line (CRLF-stripped) into `line`, advancing
  // line_number_; false at end of input.
  bool NextLine(std::string& line);

  std::istream* in_;
  CsvOptions options_;
  Schema schema_;
  std::vector<std::string> names_;
  std::vector<Dictionary> dictionaries_;
  // Without a header the first line is data but must be read at Open to
  // size the schema; it is replayed by the first NextBatch.
  std::string pending_line_;
  bool has_pending_ = false;
  size_t pending_line_number_ = 0;
  size_t line_number_ = 0;
  bool exhausted_ = false;
};

/// Reads a CSV file from `path`.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Writes `table` as CSV (header + rows). Nominal columns are decoded back
/// to their labels via the supplied dictionaries.
Status WriteCsv(const CsvTable& table, std::ostream& out,
                char delimiter = ',');

}  // namespace dar

#endif  // DAR_RELATION_CSV_H_
