#ifndef DAR_RELATION_CSV_H_
#define DAR_RELATION_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace dar {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// Whether the first line names the columns. When false, columns are named
  /// "c0", "c1", ...
  bool has_header = true;
  /// Columns (by name) to treat as nominal; everything else is interval.
  std::vector<std::string> nominal_columns;
};

/// Result of reading a CSV: the relation plus the dictionaries that encoded
/// each nominal column (keyed by column index; interval columns have empty
/// dictionaries).
struct CsvTable {
  Relation relation;
  std::vector<Dictionary> dictionaries;
};

/// Parses CSV text from `in`. Nominal columns are dictionary-encoded; any
/// non-numeric value in an interval column is an error.
Result<CsvTable> ReadCsv(std::istream& in, const CsvOptions& options = {});

/// Reads a CSV file from `path`.
Result<CsvTable> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Writes `table` as CSV (header + rows). Nominal columns are decoded back
/// to their labels via the supplied dictionaries.
Status WriteCsv(const CsvTable& table, std::ostream& out,
                char delimiter = ',');

}  // namespace dar

#endif  // DAR_RELATION_CSV_H_
