#include "qar/qar_miner.h"

#include <algorithm>
#include <unordered_map>
#include <cmath>
#include <sstream>

#include "common/str_util.h"

namespace dar {

namespace {

// One mineable unit: a predicate plus the item id assigned to it.
struct ItemInfo {
  QarPredicate predicate;
};

}  // namespace

std::string QarRule::ToString(const Schema& schema) const {
  auto render = [&](const std::vector<QarPredicate>& preds) {
    std::string out;
    for (size_t i = 0; i < preds.size(); ++i) {
      if (i > 0) out += " AND ";
      const std::string& name = schema.attribute(preds[i].column).name;
      if (preds[i].is_nominal) {
        out += name + " = " + FormatDouble(preds[i].lo);
      } else {
        out += FormatDouble(preds[i].lo) + " <= " + name +
               " <= " + FormatDouble(preds[i].hi);
      }
    }
    return out;
  };
  std::ostringstream os;
  os << render(antecedent) << " => " << render(consequent)
     << " (support=" << support << ", confidence=" << confidence << ")";
  return os.str();
}

Result<QarResult> QarMiner::Mine(const Relation& rel) const {
  if (rel.num_rows() == 0) {
    return Status::InvalidArgument("relation is empty");
  }
  if (options_.min_support <= 0 || options_.min_support > 1) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  const Schema& schema = rel.schema();
  size_t n = rel.num_rows();

  size_t num_quant = 0;
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (schema.attribute(c).kind == AttributeKind::kInterval) ++num_quant;
  }

  QarResult result;
  result.base_intervals.resize(schema.num_attributes());

  // Build items: base intervals + merged ranges for interval attributes,
  // one item per distinct value for nominal attributes.
  std::vector<ItemInfo> items;
  std::vector<size_t> item_column;  // column of each item, for the filter
  auto add_item = [&](const QarPredicate& p) {
    items.push_back({p});
    item_column.push_back(p.column);
  };

  int64_t max_merged_count = static_cast<int64_t>(
      std::floor(options_.max_merged_support * static_cast<double>(n)));

  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (schema.attribute(c).kind == AttributeKind::kNominal) {
      std::vector<double> distinct(rel.column(c).begin(),
                                   rel.column(c).end());
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      for (double v : distinct) {
        add_item({c, /*is_nominal=*/true, v, v});
      }
      continue;
    }
    size_t base = options_.max_base_intervals;
    if (num_quant > 0) {
      DAR_ASSIGN_OR_RETURN(
          size_t prescribed,
          NumIntervalsForPartialCompleteness(options_.min_support, num_quant,
                                             options_.partial_completeness));
      base = std::min(base, prescribed);
    }
    DAR_ASSIGN_OR_RETURN(std::vector<ValueInterval> intervals,
                         EquiDepthPartition(rel.column(c), base));
    result.base_intervals[c] = intervals;
    // Base intervals.
    for (const auto& iv : intervals) {
      add_item({c, /*is_nominal=*/false, iv.lo, iv.hi});
    }
    // Merged ranges of consecutive base intervals, capped by max-support.
    for (size_t i = 0; i < intervals.size(); ++i) {
      int64_t covered = intervals[i].count;
      for (size_t j = i + 1; j < intervals.size(); ++j) {
        covered += intervals[j].count;
        if (covered > max_merged_count) break;
        add_item({c, /*is_nominal=*/false, intervals[i].lo, intervals[j].hi});
      }
    }
  }
  result.num_items = items.size();

  // Encode tuples as transactions.
  std::vector<Itemset> transactions(n);
  for (size_t r = 0; r < n; ++r) {
    Itemset& t = transactions[r];
    for (size_t id = 0; id < items.size(); ++id) {
      const QarPredicate& p = items[id].predicate;
      if (p.Matches(rel.at(r, p.column))) {
        t.push_back(static_cast<Item>(id));
      }
    }
    // Items are generated column-by-column in increasing id order, so t is
    // already sorted and unique.
  }

  AprioriOptions ap;
  ap.min_support_count = static_cast<int64_t>(
      std::ceil(options_.min_support * static_cast<double>(n)));
  if (ap.min_support_count < 1) ap.min_support_count = 1;
  ap.min_confidence = options_.min_confidence;
  ap.max_itemset_size = options_.max_itemset_size;
  ap.candidate_filter = [&item_column](const Itemset& candidate) {
    for (size_t i = 0; i + 1 < candidate.size(); ++i) {
      // Items of the same column have consecutive ids; equal columns in a
      // sorted candidate are adjacent.
      if (item_column[candidate[i]] == item_column[candidate[i + 1]]) {
        return false;
      }
    }
    return true;
  };

  DAR_ASSIGN_OR_RETURN(std::vector<FrequentItemset> frequent,
                       MineFrequentItemsets(transactions, ap));
  DAR_ASSIGN_OR_RETURN(std::vector<AssociationRule> raw,
                       GenerateRules(frequent, transactions.size(), ap));

  // Itemset counts for the independence-based interest measure [SA96].
  std::unordered_map<Itemset, int64_t, ItemsetHash> counts;
  if (options_.min_interest > 0) {
    counts.reserve(frequent.size() * 2);
    for (const auto& f : frequent) counts[f.items] = f.count;
  }

  result.rules.reserve(raw.size());
  for (const auto& rule : raw) {
    QarRule out;
    if (options_.min_interest > 0) {
      double count_a = static_cast<double>(counts.at(rule.antecedent));
      double count_b = static_cast<double>(counts.at(rule.consequent));
      double expected = count_a * count_b / static_cast<double>(n);
      out.interest = expected > 0 ? rule.support_count / expected : 0;
      if (out.interest < options_.min_interest) continue;
    }
    for (Item it : rule.antecedent) {
      out.antecedent.push_back(items[it].predicate);
    }
    for (Item it : rule.consequent) {
      out.consequent.push_back(items[it].predicate);
    }
    out.support_count = rule.support_count;
    out.support = rule.support;
    out.confidence = rule.confidence;
    result.rules.push_back(std::move(out));
  }
  return result;
}

}  // namespace dar
