#include "qar/equidepth.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dar {

std::string ValueInterval::ToString() const {
  std::ostringstream os;
  os << "[" << lo << ", " << hi << "]";
  return os.str();
}

Result<std::vector<ValueInterval>> EquiDepthPartition(
    std::span<const double> values, size_t num_intervals) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot partition an empty column");
  }
  if (num_intervals == 0) {
    return Status::InvalidArgument("num_intervals must be positive");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  std::vector<ValueInterval> out;
  size_t n = sorted.size();
  size_t start = 0;
  for (size_t k = 0; k < num_intervals && start < n; ++k) {
    // Ideal right boundary of the k-th interval by rank.
    size_t end = (k + 1) * n / num_intervals;
    if (end <= start) end = start + 1;
    // Never split a run of equal values: extend to the end of the run.
    while (end < n && sorted[end] == sorted[end - 1]) ++end;
    if (k + 1 == num_intervals) end = n;  // last interval takes the rest
    ValueInterval iv;
    iv.lo = sorted[start];
    iv.hi = sorted[end - 1];
    iv.count = static_cast<int64_t>(end - start);
    out.push_back(iv);
    start = end;
  }
  // If ties exhausted the data early, the loop above already stopped.
  return out;
}

Result<size_t> NumIntervalsForPartialCompleteness(double min_support,
                                                  size_t num_quant_attrs,
                                                  double k) {
  if (min_support <= 0 || min_support > 1) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  if (k <= 1) {
    return Status::InvalidArgument(
        "partial completeness level K must exceed 1");
  }
  if (num_quant_attrs == 0) {
    return Status::InvalidArgument("need at least one quantitative attribute");
  }
  double v = 2.0 * static_cast<double>(num_quant_attrs) /
             (min_support * (k - 1.0));
  return static_cast<size_t>(std::ceil(v));
}

}  // namespace dar
