#ifndef DAR_QAR_QAR_MINER_H_
#define DAR_QAR_QAR_MINER_H_

#include <string>
#include <vector>

#include "apriori/apriori.h"
#include "common/result.h"
#include "qar/equidepth.h"
#include "relation/relation.h"

namespace dar {

/// Parameters for the quantitative-association-rule baseline [SA96].
struct QarOptions {
  /// Minimum support as a fraction of the relation size.
  double min_support = 0.05;
  /// Minimum confidence for emitted rules.
  double min_confidence = 0.5;
  /// Partial-completeness level K (> 1); determines the number of base
  /// equi-depth intervals per quantitative attribute.
  double partial_completeness = 2.0;
  /// Hard cap on base intervals per attribute (guards tiny min_support).
  size_t max_base_intervals = 64;
  /// Adjacent base intervals are merged into ranges while the merged range
  /// covers at most this fraction of the tuples (SA96's max-support cap,
  /// which prevents ranges from swallowing the whole domain).
  double max_merged_support = 0.5;
  /// Upper bound on itemset size explored by Apriori.
  size_t max_itemset_size = 3;
  /// Interest filter [SA96]: keep a rule only if its support exceeds
  /// `min_interest` times the support expected were antecedent and
  /// consequent independent (count(A) * count(B) / N). 0 disables the
  /// filter; values around 1.1-2.0 prune coincidental rules.
  double min_interest = 0;
};

/// One predicate of a quantitative association rule: either a range
/// predicate `lo <= column <= hi` (interval attribute) or an equality
/// predicate `column = value` (nominal attribute).
struct QarPredicate {
  size_t column = 0;
  bool is_nominal = false;
  double lo = 0;  // for ranges; for nominal, lo == hi == value
  double hi = 0;

  [[nodiscard]] bool Matches(double v) const {
    return is_nominal ? v == lo : (lo <= v && v <= hi);
  }
};

/// A quantitative association rule (Dfn 4.3): `I_X => I_Y` over disjoint
/// attribute sets, with classical support and confidence.
struct QarRule {
  std::vector<QarPredicate> antecedent;
  std::vector<QarPredicate> consequent;
  int64_t support_count = 0;
  double support = 0;
  double confidence = 0;
  /// Ratio of actual to independence-expected support (see
  /// QarOptions::min_interest); 0 when the filter is disabled.
  double interest = 0;

  [[nodiscard]] std::string ToString(const Schema& schema) const;
};

/// Mining output: the rules plus the base equi-depth partitioning per
/// column (empty for nominal columns), exposed for Figure-1-style
/// inspection.
struct QarResult {
  std::vector<QarRule> rules;
  std::vector<std::vector<ValueInterval>> base_intervals;
  size_t num_items = 0;
};

/// The Srikant-Agrawal quantitative association rule miner used as the
/// paper's baseline: equi-depth partitioning driven by a
/// partial-completeness level, merging of adjacent intervals up to a
/// max-support cap, dictionary items for nominal values, and classical
/// Apriori over the item-encoded tuples. Itemsets combining two predicates
/// on the same attribute are excluded (via the Apriori candidate filter).
class QarMiner {
 public:
  explicit QarMiner(QarOptions options) : options_(options) {}

  /// Mines rules from `rel`. Interval vs nominal attributes are taken from
  /// the relation's schema.
  [[nodiscard]] Result<QarResult> Mine(const Relation& rel) const;

 private:
  QarOptions options_;
};

}  // namespace dar

#endif  // DAR_QAR_QAR_MINER_H_
