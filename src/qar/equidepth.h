#ifndef DAR_QAR_EQUIDEPTH_H_
#define DAR_QAR_EQUIDEPTH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace dar {

/// A closed value interval [lo, hi] with the number of column values it
/// covers. The building block of the Srikant-Agrawal quantitative
/// association rules [SA96] that the paper's Figure 1 contrasts with
/// distance-based clusters.
struct ValueInterval {
  double lo = 0;
  double hi = 0;
  int64_t count = 0;

  [[nodiscard]] bool Contains(double v) const { return lo <= v && v <= hi; }
  [[nodiscard]] std::string ToString() const;
};

/// Equi-depth partitioning of a column into (at most) `num_intervals`
/// intervals of roughly equal support (§2: "for a depth d, the first d
/// values (in order) are placed in one interval, the next d in a second
/// interval, etc."). Equal values are never split across intervals, so
/// fewer intervals may be returned for heavily-tied columns.
///
/// This is the *ordinal* partitioning whose blindness to value distances
/// motivates the paper (Goal 1): given the Figure-1 salary column it happily
/// produces [31K, 80K].
Result<std::vector<ValueInterval>> EquiDepthPartition(
    std::span<const double> values, size_t num_intervals);

/// Number of base intervals per attribute prescribed by a
/// K-partial-completeness level [SA96, Lemma 1]:
/// `2 * n / (m * (K - 1))` where n is the number of quantitative
/// attributes, m the minimum support (fraction) and K > 1 the level.
Result<size_t> NumIntervalsForPartialCompleteness(double min_support,
                                                  size_t num_quant_attrs,
                                                  double k);

}  // namespace dar

#endif  // DAR_QAR_EQUIDEPTH_H_
