#include "quality/diff.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "quality/interval_match.h"

namespace dar::quality {

Result<SnapshotDiffResult> DiffRuleSets(
    const ClusterSet& old_clusters, std::span<const DistanceRule> old_rules,
    uint64_t old_generation, const ClusterSet& new_clusters,
    std::span<const DistanceRule> new_rules, uint64_t new_generation,
    const DiffOptions& options) {
  DAR_RETURN_IF_ERROR(options.Validate());

  SnapshotDiffResult out;
  out.old_generation = old_generation;
  out.new_generation = new_generation;

  // Old-rule indices per attribute-set signature, ascending.
  std::map<std::vector<int64_t>, std::vector<size_t>> old_by_signature;
  for (size_t k = 0; k < old_rules.size(); ++k) {
    old_by_signature[RuleSignature(old_clusters, old_rules[k])].push_back(k);
  }

  std::vector<uint8_t> old_matched(old_rules.size(), 0);
  out.records.reserve(old_rules.size() + new_rules.size());

  for (size_t k = 0; k < new_rules.size(); ++k) {
    const auto it =
        old_by_signature.find(RuleSignature(new_clusters, new_rules[k]));
    int64_t best_old = -1;
    double best_overlap = 0;
    if (it != old_by_signature.end()) {
      for (size_t old_k : it->second) {
        if (old_matched[old_k]) continue;
        const double overlap = RuleOverlap(old_clusters, old_rules[old_k],
                                           new_clusters, new_rules[k],
                                           /*min_overlap=*/nullptr);
        // Strictly-greater: ties keep the lowest old index.
        if (overlap > best_overlap) {
          best_overlap = overlap;
          best_old = static_cast<int64_t>(old_k);
        }
      }
    }
    RuleDiffRecord rec;
    rec.new_index = static_cast<int64_t>(k);
    if (best_old < 0) {
      rec.kind = DiffKind::kBorn;
      ++out.born;
    } else {
      old_matched[static_cast<size_t>(best_old)] = 1;
      rec.old_index = best_old;
      rec.interval_shift =
          RuleIntervalShift(old_clusters, old_rules[static_cast<size_t>(
                                              best_old)],
                            new_clusters, new_rules[k]);
      constexpr double kDegreeFloor = 1e-12;
      const double old_degree =
          old_rules[static_cast<size_t>(best_old)].degree;
      rec.degree_shift = std::abs(new_rules[k].degree - old_degree) /
                         std::max(old_degree, kDegreeFloor);
      if (rec.interval_shift > options.interval_tolerance ||
          rec.degree_shift > options.degree_tolerance) {
        rec.kind = DiffKind::kDrifted;
        ++out.drifted;
      } else {
        rec.kind = DiffKind::kUnchanged;
        ++out.unchanged;
      }
    }
    out.records.push_back(rec);
  }

  for (size_t old_k = 0; old_k < old_rules.size(); ++old_k) {
    if (old_matched[old_k]) continue;
    RuleDiffRecord rec;
    rec.kind = DiffKind::kDied;
    rec.old_index = static_cast<int64_t>(old_k);
    out.records.push_back(rec);
    ++out.died;
  }
  return out;
}

}  // namespace dar::quality
