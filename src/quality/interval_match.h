#ifndef DAR_QUALITY_INTERVAL_MATCH_H_
#define DAR_QUALITY_INTERVAL_MATCH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/model.h"
#include "core/rules.h"

namespace dar::quality {

/// The attribute-set identity of a rule: the parts its antecedent clusters
/// live on (sorted), a -1 separator, then the consequent parts (sorted).
/// Two rules with equal signatures bind the same attribute sets on the
/// same sides — the precondition for both redundancy pruning and
/// cross-generation matching; which clusters they bind is then compared by
/// interval overlap.
std::vector<int64_t> RuleSignature(const ClusterSet& clusters,
                                   const DistanceRule& rule);

/// Interval similarity of two bounding boxes' dimension `d`:
/// |intersection| / |union| (Jaccard), with two zero-width intervals at
/// the same point scoring 1. Always in [0, 1].
double IntervalJaccard(const std::pair<double, double>& a,
                       const std::pair<double, double>& b);

/// Aggregate interval similarity of two same-signature rules: Jaccard per
/// dimension of every bound cluster's own-part bounding box, paired by
/// part and side. `min_overlap` receives the worst dimension (the pruning
/// criterion), the return value is the mean over all dimensions (the
/// matching criterion). Returns 0 (and min 0) when the signatures differ
/// after all — callers group by RuleSignature first.
double RuleOverlap(const ClusterSet& clusters_a, const DistanceRule& a,
                   const ClusterSet& clusters_b, const DistanceRule& b,
                   double* min_overlap);

/// Worst-dimension relative endpoint movement between the two rules'
/// interval sets: max over all paired dimensions of
/// |endpoint_b - endpoint_a| / width, where width is the larger of the two
/// interval widths (1e-12 floor). Large-but-finite when only one side is
/// degenerate. Pairing as in RuleOverlap.
double RuleIntervalShift(const ClusterSet& clusters_a, const DistanceRule& a,
                         const ClusterSet& clusters_b,
                         const DistanceRule& b);

}  // namespace dar::quality

#endif  // DAR_QUALITY_INTERVAL_MATCH_H_
