#include "quality/interval_match.h"

#include <algorithm>
#include <cmath>

namespace dar::quality {
namespace {

// Per-side (part, cluster) pairs sorted by part: a rule binds at most one
// cluster per part per side (Dfn 5.3 requires pairwise disjoint attribute
// sets), so this is the canonical pairing key.
std::vector<std::pair<size_t, size_t>> SideByPart(
    const ClusterSet& clusters, const std::vector<size_t>& side) {
  std::vector<std::pair<size_t, size_t>> out;
  out.reserve(side.size());
  for (size_t id : side) {
    out.emplace_back(clusters.cluster(id).part, id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<int64_t> RuleSignature(const ClusterSet& clusters,
                                   const DistanceRule& rule) {
  std::vector<int64_t> signature;
  signature.reserve(rule.antecedent.size() + rule.consequent.size() + 1);
  for (const auto& [part, id] : SideByPart(clusters, rule.antecedent)) {
    signature.push_back(static_cast<int64_t>(part));
  }
  signature.push_back(-1);
  for (const auto& [part, id] : SideByPart(clusters, rule.consequent)) {
    signature.push_back(static_cast<int64_t>(part));
  }
  return signature;
}

double IntervalJaccard(const std::pair<double, double>& a,
                       const std::pair<double, double>& b) {
  const double inter_lo = std::max(a.first, b.first);
  const double inter_hi = std::min(a.second, b.second);
  const double union_lo = std::min(a.first, b.first);
  const double union_hi = std::max(a.second, b.second);
  const double union_len = union_hi - union_lo;
  if (union_len <= 0) {
    // Both intervals are the same point, or degenerate and disjoint.
    return a.first == b.first && a.second == b.second ? 1.0 : 0.0;
  }
  const double inter_len = std::max(0.0, inter_hi - inter_lo);
  return inter_len / union_len;
}

namespace {

// Applies `visit(box_a_dim, box_b_dim)` to every paired dimension of the
// two rules' bound clusters (paired by part and side). Returns false on a
// signature mismatch.
template <typename Visitor>
bool VisitPairedDims(const ClusterSet& clusters_a, const DistanceRule& a,
                     const ClusterSet& clusters_b, const DistanceRule& b,
                     Visitor&& visit) {
  const std::pair<const std::vector<size_t>*, const std::vector<size_t>*>
      side_pairs[] = {{&a.antecedent, &b.antecedent},
                      {&a.consequent, &b.consequent}};
  for (const auto& [sa, sb] : side_pairs) {
    const auto side_a = SideByPart(clusters_a, *sa);
    const auto side_b = SideByPart(clusters_b, *sb);
    if (side_a.size() != side_b.size()) return false;
    for (size_t i = 0; i < side_a.size(); ++i) {
      if (side_a[i].first != side_b[i].first) return false;
      const size_t part = side_a[i].first;
      const auto box_a =
          clusters_a.cluster(side_a[i].second).acf.BoundingBox(part);
      const auto box_b =
          clusters_b.cluster(side_b[i].second).acf.BoundingBox(part);
      if (box_a.size() != box_b.size()) return false;
      for (size_t d = 0; d < box_a.size(); ++d) {
        visit(box_a[d], box_b[d]);
      }
    }
  }
  return true;
}

}  // namespace

double RuleOverlap(const ClusterSet& clusters_a, const DistanceRule& a,
                   const ClusterSet& clusters_b, const DistanceRule& b,
                   double* min_overlap) {
  double sum = 0;
  double min_seen = 1.0;
  size_t dims = 0;
  const bool comparable = VisitPairedDims(
      clusters_a, a, clusters_b, b,
      [&](const std::pair<double, double>& box_a,
          const std::pair<double, double>& box_b) {
        const double jaccard = IntervalJaccard(box_a, box_b);
        sum += jaccard;
        min_seen = std::min(min_seen, jaccard);
        ++dims;
      });
  if (!comparable || dims == 0) {
    if (min_overlap != nullptr) *min_overlap = 0;
    return 0;
  }
  if (min_overlap != nullptr) *min_overlap = min_seen;
  return sum / static_cast<double>(dims);
}

double RuleIntervalShift(const ClusterSet& clusters_a, const DistanceRule& a,
                         const ClusterSet& clusters_b,
                         const DistanceRule& b) {
  constexpr double kWidthFloor = 1e-12;
  double worst = 0;
  const bool comparable = VisitPairedDims(
      clusters_a, a, clusters_b, b,
      [&](const std::pair<double, double>& box_a,
          const std::pair<double, double>& box_b) {
        const double width = std::max(
            {box_a.second - box_a.first, box_b.second - box_b.first,
             kWidthFloor});
        const double shift =
            std::max(std::abs(box_b.first - box_a.first),
                     std::abs(box_b.second - box_a.second)) /
            width;
        worst = std::max(worst, shift);
      });
  return comparable ? worst : 0;
}

}  // namespace dar::quality
