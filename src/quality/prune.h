#ifndef DAR_QUALITY_PRUNE_H_
#define DAR_QUALITY_PRUNE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/model.h"
#include "core/rules.h"

namespace dar::quality {

/// Strictness knobs of the redundancy pruner.
struct PruneOptions {
  /// Two same-signature rules are near-duplicates when EVERY paired
  /// interval dimension overlaps by at least this Jaccard fraction.
  /// 1.0 = only bit-identical intervals merge (strictest), 0.0 = any two
  /// rules over the same attribute sets merge (loosest).
  double min_overlap = 0.5;
  /// When true (default) a rule is only absorbed into a cluster whose
  /// representative dominates it: representative degree <= rule degree
  /// (smaller = stronger) and representative score >= rule score on every
  /// provided measure. A rule that beats its near-duplicates on any axis
  /// starts its own cluster instead of being hidden.
  bool require_dominance = true;

  [[nodiscard]] Status Validate() const {
    if (min_overlap < 0.0 || min_overlap > 1.0) {
      return Status::InvalidArgument(
          "PruneOptions::min_overlap must be in [0, 1], got " +
          std::to_string(min_overlap));
    }
    return Status::OK();
  }
};

/// Verdict of one pruning pass, index-aligned with the rule vector.
struct PruneResult {
  /// 1 = kept (cluster representative), 0 = pruned near-duplicate.
  std::vector<uint8_t> representative;
  /// For a pruned rule, the index of the representative that absorbed it;
  /// the representative's own index for kept rules.
  std::vector<uint32_t> representative_of;
  size_t num_pruned = 0;
};

/// Clusters near-duplicate rules (Kannan & Bhaskaran, arXiv:0912.1822,
/// adapted to interval rules) and keeps one representative per cluster:
/// rules are visited in index order (Phase II sorts ascending degree, so
/// strongest first) and each rule either joins the first existing cluster
/// whose representative shares its attribute-set signature, overlaps every
/// interval dimension by >= min_overlap and (optionally) dominates it — or
/// founds a new cluster. Pure index-ordered sequential sweep over
/// precomputed summaries: bit-identical at any thread count by
/// construction. `scores` are the per-measure columns of a ScoredRuleSet
/// (may be empty; dominance then checks degree only).
Result<PruneResult> PruneRedundant(
    const ClusterSet& clusters, std::span<const DistanceRule> rules,
    std::span<const std::vector<double>> scores, const PruneOptions& options);

}  // namespace dar::quality

#endif  // DAR_QUALITY_PRUNE_H_
