#include "quality/scored_rules.h"

#include <utility>

namespace dar::quality {

Result<ScoredRuleSet> ScoreRules(std::vector<RuleStats> stats,
                                 const MeasureRegistry& registry,
                                 std::span<const std::string> measure_names) {
  ScoredRuleSet out;
  out.stats = std::move(stats);
  out.measure_names.assign(measure_names.begin(), measure_names.end());
  out.scores.reserve(measure_names.size());
  for (size_t m = 0; m < measure_names.size(); ++m) {
    for (size_t prev = 0; prev < m; ++prev) {
      if (measure_names[prev] == measure_names[m]) {
        return Status::InvalidArgument("measure \"" + measure_names[m] +
                                       "\" requested twice");
      }
    }
    const InterestingnessMeasure* measure = registry.Find(measure_names[m]);
    if (measure == nullptr) {
      std::string known;
      for (const std::string& name : registry.Names()) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      return Status::NotFound("measure \"" + measure_names[m] +
                              "\" is not registered (have: " + known + ")");
    }
    std::vector<double>& column = out.scores.emplace_back();
    column.reserve(out.stats.size());
    for (const RuleStats& s : out.stats) {
      column.push_back(measure->Score(s));
    }
  }
  out.representative.assign(out.stats.size(), 1);
  out.num_pruned = 0;
  return out;
}

Result<ScoredRuleSet> ScanAndScoreRules(
    const Relation& rel, const AttributePartition& partition,
    const ClusterSet& clusters, std::span<const DistanceRule> rules,
    const MeasureRegistry& registry,
    std::span<const std::string> measure_names, Executor* executor) {
  DAR_ASSIGN_OR_RETURN(
      std::vector<RuleStats> stats,
      ComputeRuleStats(rel, partition, clusters, rules, executor));
  return ScoreRules(std::move(stats), registry, measure_names);
}

}  // namespace dar::quality
