#ifndef DAR_QUALITY_MEASURE_H_
#define DAR_QUALITY_MEASURE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/rule_stats.h"

namespace dar::quality {

/// A pluggable rule-interestingness measure over the 2x2 contingency table
/// of core/rule_stats.h — the objective-measure families of Guillaume et
/// al. (arXiv:1206.6741) applied to interval rules. Implementations must
/// be pure functions of the stats (no hidden state, no randomness): the
/// scored snapshots the stream publishes are required to be bit-identical
/// at any thread count, and a measure is evaluated once per rule per
/// snapshot from integer counts, which makes that automatic.
///
/// Convention: larger scores mean more interesting, and every score is
/// finite (degenerate tables map to documented fallbacks, never NaN/inf) —
/// the serving layer sorts descending on the raw doubles.
class InterestingnessMeasure {
 public:
  virtual ~InterestingnessMeasure() = default;

  /// Stable registry key, lowercase (e.g. "lift"). Never changes once
  /// published: clients filter serve queries by this name.
  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] virtual double Score(const RuleStats& stats) const = 0;
};

/// Conviction of a perfectly confident rule is unbounded; it is capped
/// here so every published score stays finite and comparable.
inline constexpr double kMaxConviction = 1e6;

// Built-in measures (all finite; `total == 0` scores 0 everywhere):
//   support     both / total
//   confidence  both / antecedent                    (0 when antecedent 0)
//   lift        confidence / (consequent / total)    (0 when a margin is 0)
//   conviction  (1 - consequent/total) / (1 - confidence), capped at
//               kMaxConviction                       (0 when antecedent 0)
//   chi2        N (ad - bc)^2 / ((a+b)(c+d)(a+c)(b+d)) over the 2x2 table
//               (0 when any margin is 0)
std::unique_ptr<InterestingnessMeasure> MakeSupportMeasure();
std::unique_ptr<InterestingnessMeasure> MakeConfidenceMeasure();
std::unique_ptr<InterestingnessMeasure> MakeLiftMeasure();
std::unique_ptr<InterestingnessMeasure> MakeConvictionMeasure();
std::unique_ptr<InterestingnessMeasure> MakeChiSquaredMeasure();

/// Name -> measure lookup. A fresh registry holds the five built-ins;
/// user-defined measures are added with Register. Instance-based (no
/// global mutable state): construction and registration happen before the
/// registry is shared, after which every method is const and the registry
/// may be read from any number of threads.
class MeasureRegistry {
 public:
  /// Constructs with the built-ins pre-registered.
  MeasureRegistry();

  MeasureRegistry(const MeasureRegistry&) = delete;
  MeasureRegistry& operator=(const MeasureRegistry&) = delete;
  MeasureRegistry(MeasureRegistry&&) = default;
  MeasureRegistry& operator=(MeasureRegistry&&) = default;

  /// Adds a user-defined measure. Fails AlreadyExists on a duplicate name
  /// and InvalidArgument on an empty one.
  Status Register(std::unique_ptr<InterestingnessMeasure> measure);

  /// The measure registered under `name`, or null.
  [[nodiscard]] const InterestingnessMeasure* Find(
      std::string_view name) const;

  /// Registered names, sorted (for error messages and discovery).
  [[nodiscard]] std::vector<std::string> Names() const;

  [[nodiscard]] size_t size() const { return measures_.size(); }

 private:
  std::vector<std::unique_ptr<InterestingnessMeasure>> measures_;
};

}  // namespace dar::quality

#endif  // DAR_QUALITY_MEASURE_H_
