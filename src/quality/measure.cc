#include "quality/measure.h"

#include <algorithm>
#include <utility>

namespace dar::quality {
namespace {

double Support(const RuleStats& s) {
  if (s.total <= 0) return 0;
  return static_cast<double>(s.both) / static_cast<double>(s.total);
}

double Confidence(const RuleStats& s) {
  if (s.antecedent <= 0) return 0;
  return static_cast<double>(s.both) / static_cast<double>(s.antecedent);
}

class SupportMeasure : public InterestingnessMeasure {
 public:
  [[nodiscard]] std::string_view name() const override { return "support"; }
  [[nodiscard]] double Score(const RuleStats& s) const override {
    return Support(s);
  }
};

class ConfidenceMeasure : public InterestingnessMeasure {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "confidence";
  }
  [[nodiscard]] double Score(const RuleStats& s) const override {
    return Confidence(s);
  }
};

class LiftMeasure : public InterestingnessMeasure {
 public:
  [[nodiscard]] std::string_view name() const override { return "lift"; }
  [[nodiscard]] double Score(const RuleStats& s) const override {
    if (s.total <= 0 || s.antecedent <= 0 || s.consequent <= 0) return 0;
    const double base_rate =
        static_cast<double>(s.consequent) / static_cast<double>(s.total);
    return Confidence(s) / base_rate;
  }
};

class ConvictionMeasure : public InterestingnessMeasure {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "conviction";
  }
  [[nodiscard]] double Score(const RuleStats& s) const override {
    if (s.total <= 0 || s.antecedent <= 0) return 0;
    const double confidence = Confidence(s);
    const double miss_rate =
        1.0 - static_cast<double>(s.consequent) / static_cast<double>(s.total);
    if (confidence >= 1.0) return kMaxConviction;
    return std::min(kMaxConviction, miss_rate / (1.0 - confidence));
  }
};

class ChiSquaredMeasure : public InterestingnessMeasure {
 public:
  [[nodiscard]] std::string_view name() const override { return "chi2"; }
  [[nodiscard]] double Score(const RuleStats& s) const override {
    // 2x2 table: a = both, b = antecedent-only, c = consequent-only,
    // d = neither. Zero when any margin is empty (the statistic is
    // undefined there, and such a rule carries no association signal).
    const double n = static_cast<double>(s.total);
    const double a = static_cast<double>(s.both);
    const double b = static_cast<double>(s.antecedent - s.both);
    const double c = static_cast<double>(s.consequent - s.both);
    const double d = n - a - b - c;
    const double margins = (a + b) * (c + d) * (a + c) * (b + d);
    if (n <= 0 || margins <= 0) return 0;
    const double det = a * d - b * c;
    return n * det * det / margins;
  }
};

}  // namespace

std::unique_ptr<InterestingnessMeasure> MakeSupportMeasure() {
  return std::make_unique<SupportMeasure>();
}
std::unique_ptr<InterestingnessMeasure> MakeConfidenceMeasure() {
  return std::make_unique<ConfidenceMeasure>();
}
std::unique_ptr<InterestingnessMeasure> MakeLiftMeasure() {
  return std::make_unique<LiftMeasure>();
}
std::unique_ptr<InterestingnessMeasure> MakeConvictionMeasure() {
  return std::make_unique<ConvictionMeasure>();
}
std::unique_ptr<InterestingnessMeasure> MakeChiSquaredMeasure() {
  return std::make_unique<ChiSquaredMeasure>();
}

MeasureRegistry::MeasureRegistry() {
  measures_.push_back(MakeSupportMeasure());
  measures_.push_back(MakeConfidenceMeasure());
  measures_.push_back(MakeLiftMeasure());
  measures_.push_back(MakeConvictionMeasure());
  measures_.push_back(MakeChiSquaredMeasure());
}

Status MeasureRegistry::Register(
    std::unique_ptr<InterestingnessMeasure> measure) {
  if (measure == nullptr || measure->name().empty()) {
    return Status::InvalidArgument(
        "an interestingness measure needs a non-empty name");
  }
  if (Find(measure->name()) != nullptr) {
    return Status::AlreadyExists("measure \"" + std::string(measure->name()) +
                                 "\" is already registered");
  }
  measures_.push_back(std::move(measure));
  return Status::OK();
}

const InterestingnessMeasure* MeasureRegistry::Find(
    std::string_view name) const {
  for (const auto& measure : measures_) {
    if (measure->name() == name) return measure.get();
  }
  return nullptr;
}

std::vector<std::string> MeasureRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(measures_.size());
  for (const auto& measure : measures_) {
    names.emplace_back(measure->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dar::quality
