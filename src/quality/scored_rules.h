#ifndef DAR_QUALITY_SCORED_RULES_H_
#define DAR_QUALITY_SCORED_RULES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "core/model.h"
#include "core/rule_stats.h"
#include "core/rules.h"
#include "quality/measure.h"
#include "relation/relation.h"

namespace dar::quality {

/// Every requested measure evaluated over every rule of one snapshot, plus
/// the redundancy-pruning verdicts when pruning ran. Computed once per
/// published RuleSnapshot from ONE contingency post-scan (core/
/// rule_stats.h) regardless of how many measures are requested, then
/// immutable and shared with the snapshot.
struct ScoredRuleSet {
  /// Measures evaluated, in the order the stream was configured with.
  std::vector<std::string> measure_names;
  /// One contingency table per rule (index-aligned with the snapshot's
  /// rule vector).
  std::vector<RuleStats> stats;
  /// scores[m][k] = measure_names[m] applied to rule k. All finite.
  std::vector<std::vector<double>> scores;
  /// Per rule: 1 when the rule survived redundancy pruning as its
  /// cluster's representative (or pruning was off), 0 when a near-
  /// duplicate of an earlier, at-least-as-strong rule.
  std::vector<uint8_t> representative;
  /// Number of zeros in `representative`; always <= stats.size().
  size_t num_pruned = 0;

  /// Index into measure_names/scores, or -1 when `name` was not computed.
  [[nodiscard]] int FindMeasure(std::string_view name) const {
    for (size_t m = 0; m < measure_names.size(); ++m) {
      if (measure_names[m] == name) return static_cast<int>(m);
    }
    return -1;
  }
};

/// Evaluates `measure_names` over precomputed contingency tables. Fails
/// NotFound naming the registry's contents when a requested measure is not
/// registered, and InvalidArgument on a duplicate request. Every rule
/// starts as a representative (pruning is a separate pass, quality/
/// prune.h).
Result<ScoredRuleSet> ScoreRules(std::vector<RuleStats> stats,
                                 const MeasureRegistry& registry,
                                 std::span<const std::string> measure_names);

/// Convenience: one executor-parallel contingency scan over `rel`, then
/// ScoreRules. `executor` may be null (serial); the scan is the dominant
/// cost and is bit-identical at any thread count.
Result<ScoredRuleSet> ScanAndScoreRules(
    const Relation& rel, const AttributePartition& partition,
    const ClusterSet& clusters, std::span<const DistanceRule> rules,
    const MeasureRegistry& registry,
    std::span<const std::string> measure_names, Executor* executor);

}  // namespace dar::quality

#endif  // DAR_QUALITY_SCORED_RULES_H_
