#ifndef DAR_QUALITY_DIFF_H_
#define DAR_QUALITY_DIFF_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/model.h"
#include "core/rules.h"

namespace dar::quality {

/// Tolerances separating "the same rule, re-estimated" from real drift.
struct DiffOptions {
  /// A matched rule is drifted when any paired interval dimension's
  /// endpoints moved by more than this fraction of the interval width
  /// (see RuleIntervalShift).
  double interval_tolerance = 0.05;
  /// ... or when its degree moved by more than this relative fraction.
  double degree_tolerance = 0.05;

  [[nodiscard]] Status Validate() const {
    if (interval_tolerance < 0.0) {
      return Status::InvalidArgument(
          "DiffOptions::interval_tolerance must be >= 0, got " +
          std::to_string(interval_tolerance));
    }
    if (degree_tolerance < 0.0) {
      return Status::InvalidArgument(
          "DiffOptions::degree_tolerance must be >= 0, got " +
          std::to_string(degree_tolerance));
    }
    return Status::OK();
  }
};

enum class DiffKind : uint8_t {
  kUnchanged = 0,
  kDrifted = 1,  ///< Matched across generations, but moved past tolerance.
  kBorn = 2,     ///< Present in the new generation only.
  kDied = 3,     ///< Present in the old generation only.
};

/// One rule's fate across a generation boundary.
struct RuleDiffRecord {
  DiffKind kind = DiffKind::kUnchanged;
  /// Index into the old rule vector, -1 for kBorn.
  int64_t old_index = -1;
  /// Index into the new rule vector, -1 for kDied.
  int64_t new_index = -1;
  /// RuleIntervalShift between the matched pair; 0 for born/died.
  double interval_shift = 0;
  /// |new degree - old degree| / max(old degree, 1e-12); 0 for born/died.
  double degree_shift = 0;
};

/// Classification of every rule of two generations. `records` lists new
/// rules in ascending new_index, then died old rules in ascending
/// old_index — a deterministic order independent of match iteration.
struct SnapshotDiffResult {
  uint64_t old_generation = 0;
  uint64_t new_generation = 0;
  size_t born = 0;
  size_t died = 0;
  size_t drifted = 0;
  size_t unchanged = 0;
  std::vector<RuleDiffRecord> records;
};

/// Matches the two rule sets by attribute-set signature and greedy
/// max-mean-interval-overlap (each new rule, in index order, takes the
/// unmatched same-signature old rule it overlaps most; ties break to the
/// lowest old index; zero overlap never matches), then classifies every
/// rule as unchanged / drifted / born / died under `options`. Generations
/// are reported as passed through. Diffing two identical rule sets yields
/// all-unchanged; either side may be empty.
Result<SnapshotDiffResult> DiffRuleSets(
    const ClusterSet& old_clusters, std::span<const DistanceRule> old_rules,
    uint64_t old_generation, const ClusterSet& new_clusters,
    std::span<const DistanceRule> new_rules, uint64_t new_generation,
    const DiffOptions& options);

}  // namespace dar::quality

#endif  // DAR_QUALITY_DIFF_H_
