#include "quality/prune.h"

#include <cstddef>
#include <map>

#include "quality/interval_match.h"

namespace dar::quality {

Result<PruneResult> PruneRedundant(const ClusterSet& clusters,
                                   std::span<const DistanceRule> rules,
                                   std::span<const std::vector<double>> scores,
                                   const PruneOptions& options) {
  DAR_RETURN_IF_ERROR(options.Validate());
  for (size_t m = 0; m < scores.size(); ++m) {
    if (scores[m].size() != rules.size()) {
      return Status::InvalidArgument(
          "score column " + std::to_string(m) + " has " +
          std::to_string(scores[m].size()) + " entries for " +
          std::to_string(rules.size()) + " rules");
    }
  }

  PruneResult out;
  out.representative.assign(rules.size(), 1);
  out.representative_of.resize(rules.size());
  for (size_t k = 0; k < rules.size(); ++k) {
    out.representative_of[k] = static_cast<uint32_t>(k);
  }

  // Representative indices of each signature's clusters, in creation order.
  std::map<std::vector<int64_t>, std::vector<size_t>> clusters_by_signature;

  // dominates(rep, k): rep is at least as strong as k on every axis.
  const auto dominates = [&](size_t rep, size_t k) {
    if (rules[rep].degree > rules[k].degree) return false;
    for (const std::vector<double>& column : scores) {
      if (column[rep] < column[k]) return false;
    }
    return true;
  };

  for (size_t k = 0; k < rules.size(); ++k) {
    std::vector<size_t>& reps =
        clusters_by_signature[RuleSignature(clusters, rules[k])];
    bool absorbed = false;
    for (size_t rep : reps) {
      double min_overlap = 0;
      RuleOverlap(clusters, rules[rep], clusters, rules[k], &min_overlap);
      if (min_overlap < options.min_overlap) continue;
      if (options.require_dominance && !dominates(rep, k)) continue;
      out.representative[k] = 0;
      out.representative_of[k] = static_cast<uint32_t>(rep);
      ++out.num_pruned;
      absorbed = true;
      break;
    }
    if (!absorbed) reps.push_back(k);
  }
  return out;
}

}  // namespace dar::quality
