#ifndef DAR_TELEMETRY_METRICS_H_
#define DAR_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace dar {
namespace telemetry {

/// What a metric's value measures. Time-valued metrics (kSeconds) are
/// inherently run-dependent — JsonExporter can exclude them to produce the
/// *deterministic view* of a snapshot, which is bit-identical across thread
/// counts and repeated runs for a fixed seed/config (see json.h).
enum class Unit {
  kCount,    // monotonic event counts, sizes, cardinalities
  kSeconds,  // wall-clock durations (nondeterministic)
  kBytes,    // memory footprints
};

/// Stable lowercase name for `unit` ("count", "seconds", "bytes").
const char* UnitName(Unit unit);

/// A monotonic event counter. Increment is wait-free (relaxed atomics) and
/// safe from any thread; the total is exact because increments commute.
class Counter {
 public:
  explicit Counter(Unit unit) : unit_(unit) {}

  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Unit unit() const { return unit_; }

 private:
  std::atomic<int64_t> value_{0};
  Unit unit_;
};

/// A last-writer-wins instantaneous value (tree height, final threshold,
/// phase wall-time). Set/value are atomic but not read-modify-write; use a
/// Counter for anything accumulated concurrently.
class Gauge {
 public:
  explicit Gauge(Unit unit) : unit_(unit) {}

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Unit unit() const { return unit_; }

 private:
  std::atomic<double> value_{0.0};
  Unit unit_;
};

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit overflow bucket at the end (counts.size() ==
/// bounds.size() + 1). Record is wait-free and thread-safe; bucket totals
/// are exact, `sum` is accumulated with atomic compare-exchange so the
/// total is a correct (order-dependent in the last ulps) float sum.
class Histogram {
 public:
  Histogram(std::vector<double> bounds, Unit unit);

  void Record(double value);
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<int64_t> bucket_counts() const;
  [[nodiscard]] int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Unit unit() const { return unit_; }

  /// Default latency buckets: 1us..10s, one decade per pair of buckets.
  static std::vector<double> LatencyBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  Unit unit_;
};

/// A point-in-time copy of a registry's metrics, safe to keep after the
/// registry is gone. Maps are ordered by name, so iteration (and the JSON
/// export) is deterministic.
struct Snapshot {
  struct CounterValue {
    int64_t value = 0;
    Unit unit = Unit::kCount;
  };
  struct GaugeValue {
    double value = 0;
    Unit unit = Unit::kCount;
  };
  struct HistogramValue {
    std::vector<double> bounds;
    std::vector<int64_t> counts;  // bounds.size() + 1 entries
    int64_t count = 0;
    double sum = 0;
    Unit unit = Unit::kSeconds;
  };

  std::map<std::string, CounterValue> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramValue> histograms;

  /// Counter value by name, or 0 when absent (the view the legacy loose
  /// result counters are implemented with).
  [[nodiscard]] int64_t CounterOr(const std::string& name,
                                  int64_t fallback = 0) const;
  /// Gauge value by name, or `fallback` when absent.
  [[nodiscard]] double GaugeOr(const std::string& name,
                               double fallback = 0) const;
};

/// A named family of metrics for one mining run. Lookup registers on first
/// use and returns a stable pointer (the registry never deletes a metric
/// until Reset/destruction); the returned handles are the hot-path API, so
/// phases resolve their metrics once and then record lock-free.
///
/// Threading: Counter/Gauge/Histogram lookups take a reader/writer lock —
/// shared when the metric already exists (the common case), exclusive only
/// on a name's first registration — still, resolve handles once per phase,
/// not per event; the handles themselves are safe to use from any thread.
/// TakeSnapshot may run concurrently with recording and sees some
/// consistent recent value of every metric. Reset must not race recording.
/// The lock discipline is compile-checked (common/mutex.h).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it with `unit` on first
  /// use. A later lookup with a different unit keeps the original.
  Counter* GetCounter(const std::string& name, Unit unit = Unit::kCount);
  Gauge* GetGauge(const std::string& name, Unit unit = Unit::kCount);
  /// `bounds` are inclusive ascending upper bounds; only consulted on the
  /// first lookup of `name`.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          Unit unit = Unit::kSeconds);

  [[nodiscard]] Snapshot TakeSnapshot() const;

  /// Drops every metric. The next Get* re-registers from zero. Invalidates
  /// previously returned handles — do not call while a run is recording.
  void Reset();

 private:
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      DAR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DAR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DAR_GUARDED_BY(mu_);
};

}  // namespace telemetry
}  // namespace dar

#endif  // DAR_TELEMETRY_METRICS_H_
