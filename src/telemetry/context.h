#ifndef DAR_TELEMETRY_CONTEXT_H_
#define DAR_TELEMETRY_CONTEXT_H_

#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace dar {
namespace telemetry {

/// The handle the mining phases record through: a nullable view onto a
/// MetricsRegistry, cheap to pass by value. A default-constructed context
/// is *disabled* — every Get* returns null and callers skip recording —
/// so code paths that run without a Session (unit tests, ad-hoc builders)
/// pay nothing.
///
/// The registry is not owned and must outlive every phase using the
/// context.
class TelemetryContext {
 public:
  TelemetryContext() = default;
  explicit TelemetryContext(MetricsRegistry* registry)
      : registry_(registry) {}

  [[nodiscard]] bool enabled() const { return registry_ != nullptr; }
  [[nodiscard]] MetricsRegistry* registry() const { return registry_; }

  /// Null when disabled; otherwise the registry metric. Resolve once per
  /// phase and record through the returned handle (lock-free), not
  /// through repeated lookups.
  [[nodiscard]] Counter* GetCounter(const std::string& name,
                                    Unit unit = Unit::kCount) const {
    return registry_ == nullptr ? nullptr
                                : registry_->GetCounter(name, unit);
  }
  [[nodiscard]] Gauge* GetGauge(const std::string& name,
                                Unit unit = Unit::kCount) const {
    return registry_ == nullptr ? nullptr : registry_->GetGauge(name, unit);
  }
  [[nodiscard]] Histogram* GetHistogram(
      const std::string& name, std::vector<double> bounds,
      Unit unit = Unit::kSeconds) const {
    return registry_ == nullptr
               ? nullptr
               : registry_->GetHistogram(name, std::move(bounds), unit);
  }

 private:
  MetricsRegistry* registry_ = nullptr;
};

}  // namespace telemetry
}  // namespace dar

#endif  // DAR_TELEMETRY_CONTEXT_H_
