#ifndef DAR_TELEMETRY_JSON_H_
#define DAR_TELEMETRY_JSON_H_

#include <cstdint>
#include <string>

#include "telemetry/metrics.h"

namespace dar {
namespace telemetry {

/// Minimal deterministic JSON writer. Emits compact JSON (no whitespace);
/// numbers use std::to_chars shortest round-trip formatting, so the same
/// value always serializes to the same bytes regardless of locale or
/// stream state. Keys are emitted in call order — callers that need
/// sorted output iterate sorted containers (Snapshot's std::maps already
/// are).
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  /// Starts a key inside an object; follow with exactly one value call
  /// (or Begin*). Handles the separating comma.
  void Key(const std::string& name);
  void String(const std::string& value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  /// Splices `json` into the document verbatim as one value. `json` must
  /// itself be well-formed (e.g. a JsonExporter result embedded as a
  /// sub-object); no validation is performed.
  void Raw(const std::string& json);

  /// The document so far. Call after the outermost End*.
  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string&& TakeStr() && { return std::move(out_); }

  /// Shortest round-trip decimal form of `value` ("NaN"/"Inf" are mapped
  /// to null, which JSON cannot represent otherwise).
  static std::string FormatDouble(double value);
  /// `value` with JSON string escaping applied, without quotes.
  static std::string Escape(const std::string& value);

 private:
  void MaybeComma();

  std::string out_;
  bool need_comma_ = false;
};

struct JsonExporterOptions {
  /// When false, metrics whose Unit is kSeconds are omitted everywhere
  /// (counters, gauges, histograms). The result is the *deterministic
  /// view*: for a fixed seed and config it is byte-identical across
  /// thread counts and repeated runs.
  bool include_timings = true;
};

/// Serializes a Snapshot to a deterministic JSON object:
///
///   {"counters":{"<name>":{"unit":"count","value":N},...},
///    "gauges":{"<name>":{"unit":"count","value":X},...},
///    "histograms":{"<name>":{"unit":"seconds","bounds":[...],
///                            "counts":[...],"count":N,"sum":X},...}}
///
/// Keys are sorted (Snapshot's maps are ordered) and floats use fixed
/// shortest round-trip formatting.
class JsonExporter {
 public:
  explicit JsonExporter(JsonExporterOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string Export(const Snapshot& snapshot) const;

 private:
  JsonExporterOptions options_;
};

}  // namespace telemetry
}  // namespace dar

#endif  // DAR_TELEMETRY_JSON_H_
