#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dar {
namespace telemetry {

const char* UnitName(Unit unit) {
  switch (unit) {
    case Unit::kCount:
      return "count";
    case Unit::kSeconds:
      return "seconds";
    case Unit::kBytes:
      return "bytes";
  }
  return "count";
}

Histogram::Histogram(std::vector<double> bounds, Unit unit)
    : bounds_(std::move(bounds)), unit_(unit) {
  DAR_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket bounds must be ascending";
  buckets_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
}

void Histogram::Record(double value) {
  // First bucket whose inclusive upper bound admits `value`; everything
  // above the last bound lands in the overflow bucket.
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::vector<int64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    out.push_back(b->load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<double> Histogram::LatencyBounds() {
  // Half-decade steps from 1us to 10s: 1e-6, ~3.16e-6, 1e-5, ... 10.
  std::vector<double> bounds;
  for (int decade = -6; decade <= 0; ++decade) {
    const double base = std::pow(10.0, decade);
    bounds.push_back(base);
    bounds.push_back(base * 3.1622776601683795);  // sqrt(10)
  }
  bounds.push_back(10.0);
  return bounds;
}

int64_t Snapshot::CounterOr(const std::string& name, int64_t fallback) const {
  const auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second.value;
}

double Snapshot::GaugeOr(const std::string& name, double fallback) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second.value;
}

// The Get* lookups are double-checked: a shared lock covers the common
// case (the metric already exists — every lookup after a phase's first),
// and only a miss upgrades to the exclusive lock to register the name.
// Handles are stable unique_ptr targets, so a pointer found under the
// shared lock stays valid after it is dropped.

Counter* MetricsRegistry::GetCounter(const std::string& name, Unit unit) {
  {
    const ReaderLock lock(mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return it->second.get();
  }
  const WriterLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(unit);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Unit unit) {
  {
    const ReaderLock lock(mu_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) return it->second.get();
  }
  const WriterLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(unit);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         Unit unit) {
  {
    const ReaderLock lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second.get();
  }
  const WriterLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds), unit);
  }
  return slot.get();
}

Snapshot MetricsRegistry::TakeSnapshot() const {
  // Shared suffices: the maps are only read; the metric values themselves
  // are atomics the owners keep updating concurrently.
  const ReaderLock lock(mu_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = {counter->value(), counter->unit()};
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = {gauge->value(), gauge->unit()};
  }
  for (const auto& [name, hist] : histograms_) {
    Snapshot::HistogramValue value;
    value.bounds = hist->bounds();
    value.counts = hist->bucket_counts();
    value.count = hist->count();
    value.sum = hist->sum();
    value.unit = hist->unit();
    snap.histograms[name] = std::move(value);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  const WriterLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace telemetry
}  // namespace dar
