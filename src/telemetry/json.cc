#include "telemetry/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace dar {
namespace telemetry {

void JsonWriter::MaybeComma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
}

void JsonWriter::EndObject() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
}

void JsonWriter::EndArray() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::Key(const std::string& name) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
}

void JsonWriter::String(const std::string& value) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  need_comma_ = true;
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  need_comma_ = true;
}

void JsonWriter::Double(double value) {
  MaybeComma();
  out_ += FormatDouble(value);
  need_comma_ = true;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::Raw(const std::string& json) {
  MaybeComma();
  out_ += json;
  need_comma_ = true;
}

std::string JsonWriter::FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  std::string text(buf, result.ptr);
  // Bare "1e+30"-style output is valid JSON, but "1" for 1.0 is too; both
  // are deterministic, so keep to_chars' shortest form as-is.
  return text;
}

std::string JsonWriter::Escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonExporter::Export(const Snapshot& snapshot) const {
  JsonWriter w;
  w.BeginObject();

  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, counter] : snapshot.counters) {
    if (!options_.include_timings && counter.unit == Unit::kSeconds) continue;
    w.Key(name);
    w.BeginObject();
    w.Key("unit");
    w.String(UnitName(counter.unit));
    w.Key("value");
    w.Int(counter.value);
    w.EndObject();
  }
  w.EndObject();

  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, gauge] : snapshot.gauges) {
    if (!options_.include_timings && gauge.unit == Unit::kSeconds) continue;
    w.Key(name);
    w.BeginObject();
    w.Key("unit");
    w.String(UnitName(gauge.unit));
    w.Key("value");
    w.Double(gauge.value);
    w.EndObject();
  }
  w.EndObject();

  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!options_.include_timings && hist.unit == Unit::kSeconds) continue;
    w.Key(name);
    w.BeginObject();
    w.Key("unit");
    w.String(UnitName(hist.unit));
    w.Key("bounds");
    w.BeginArray();
    for (const double b : hist.bounds) w.Double(b);
    w.EndArray();
    w.Key("counts");
    w.BeginArray();
    for (const int64_t c : hist.counts) w.Int(c);
    w.EndArray();
    w.Key("count");
    w.Int(hist.count);
    w.Key("sum");
    w.Double(hist.sum);
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return std::move(w).TakeStr();
}

}  // namespace telemetry
}  // namespace dar
