#ifndef DAR_TELEMETRY_TRACE_H_
#define DAR_TELEMETRY_TRACE_H_

#include "common/stopwatch.h"
#include "telemetry/metrics.h"

namespace dar {
namespace telemetry {

/// RAII span: owns its own Stopwatch (so concurrent spans never share
/// timer state, see the Stopwatch thread-safety note) and records the
/// elapsed seconds into a Histogram and/or Gauge when it goes out of
/// scope. Either sink may be null; a span with no sinks is free except
/// for the clock read.
///
///   {
///     TraceSpan span(registry->GetHistogram(
///         "phase2.shard_seconds", Histogram::LatencyBounds()));
///     ... work ...
///   }  // records here
class TraceSpan {
 public:
  explicit TraceSpan(Histogram* histogram, Gauge* gauge = nullptr)
      : histogram_(histogram), gauge_(gauge) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    const double seconds = watch_.ElapsedSeconds();
    if (histogram_ != nullptr) histogram_->Record(seconds);
    if (gauge_ != nullptr) gauge_->Set(seconds);
  }

  /// Seconds elapsed so far, without ending the span.
  [[nodiscard]] double ElapsedSeconds() const {
    return watch_.ElapsedSeconds();
  }

 private:
  Stopwatch watch_;
  Histogram* histogram_;
  Gauge* gauge_;
};

/// Per-part Phase-I wall-clock timings, handed to
/// MiningObserver::OnPhase1PartDone alongside the tree stats. Values are
/// wall time and therefore run-dependent; the deterministic counters for
/// the same part live in the telemetry::Snapshot.
struct PartTimings {
  /// Seconds spent feeding the part's rows into its ACF-tree.
  double feed_seconds = 0;
  /// Seconds spent finishing the part (outlier re-absorption, image
  /// extraction, diameter summaries).
  double finish_seconds = 0;
};

}  // namespace telemetry
}  // namespace dar

#endif  // DAR_TELEMETRY_TRACE_H_
