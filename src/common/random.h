#ifndef DAR_COMMON_RANDOM_H_
#define DAR_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace dar {

/// Seeded pseudo-random generator used by all synthetic data generators and
/// property tests. A thin wrapper over std::mt19937_64 so every consumer of
/// randomness in the library takes an explicit seed (reproducible benches).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Index drawn from the discrete distribution given by `weights`.
  size_t Categorical(const std::vector<double>& weights) {
    std::discrete_distribution<size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dar

#endif  // DAR_COMMON_RANDOM_H_
