#ifndef DAR_COMMON_MUTEX_H_
#define DAR_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// The annotated locking layer: every mutex in the dar library is one of
/// these wrappers, so Clang's thread-safety analysis (-Wthread-safety,
/// promoted to an error in the clang CI legs) proves at compile time that
/// each DAR_GUARDED_BY field is only touched with its lock held and each
/// DAR_REQUIRES helper is only called under the right mutex. Under GCC the
/// attribute macros expand to nothing and the wrappers cost exactly a
/// std::mutex — the annotations are documentation there, enforced the next
/// time clang compiles the tree.
///
/// House rules (enforced by tools/dar_lint.py):
///   no-raw-mutex        library code never names std::mutex /
///                       std::shared_mutex / std::lock_guard /
///                       std::unique_lock / std::condition_variable
///                       outside this header — raw primitives are invisible
///                       to the analysis.
///   no-detached-thread  std::thread::detach is banned everywhere in src/;
///                       a detached thread outlives every shutdown path the
///                       analysis can reason about.
///
/// DAR_NO_THREAD_SAFETY_ANALYSIS is a last-resort escape. It must not
/// appear outside this header without a comment justifying why the
/// analysis cannot see the invariant.

// ---------------------------------------------------------------------------
// Capability attribute macros (clang only; no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define DAR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DAR_THREAD_ANNOTATION_(x)
#endif

/// Declares a class to be a lockable capability named `name` in analysis
/// diagnostics.
#define DAR_CAPABILITY(name) DAR_THREAD_ANNOTATION_(capability(name))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability.
#define DAR_SCOPED_CAPABILITY DAR_THREAD_ANNOTATION_(scoped_lockable)

/// The field may only be read/written while holding the given capability.
#define DAR_GUARDED_BY(...) DAR_THREAD_ANNOTATION_(guarded_by(__VA_ARGS__))

/// The pointee of this pointer field is protected by the given capability
/// (the pointer itself is not).
#define DAR_PT_GUARDED_BY(...) \
  DAR_THREAD_ANNOTATION_(pt_guarded_by(__VA_ARGS__))

/// The function may only be called while holding the given capabilities
/// exclusively (the `*Locked()` helper contract).
#define DAR_REQUIRES(...) \
  DAR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// As DAR_REQUIRES, but shared (reader) ownership suffices.
#define DAR_REQUIRES_SHARED(...) \
  DAR_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define DAR_ACQUIRE(...) \
  DAR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DAR_ACQUIRE_SHARED(...) \
  DAR_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases a capability the caller held on entry.
#define DAR_RELEASE(...) \
  DAR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define DAR_RELEASE_SHARED(...) \
  DAR_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `value`.
#define DAR_TRY_ACQUIRE(...) \
  DAR_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called while holding the given capabilities
/// (deadlock guard for self-locking public entry points).
#define DAR_EXCLUDES(...) DAR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held without acquiring it (for
/// runtime-checked invariants it cannot see).
#define DAR_ASSERT_CAPABILITY(...) \
  DAR_THREAD_ANNOTATION_(assert_capability(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define DAR_RETURN_CAPABILITY(x) DAR_THREAD_ANNOTATION_(lock_returned(x))

/// Turns the analysis off for one function. Last resort; see header note.
#define DAR_NO_THREAD_SAFETY_ANALYSIS \
  DAR_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dar {

class CondVar;

// ---------------------------------------------------------------------------
// Lockable wrappers.
// ---------------------------------------------------------------------------

/// std::mutex carrying the `capability` attribute. Prefer MutexLock over
/// manual Lock/Unlock pairs; the analysis accepts both but RAII survives
/// early returns and exceptions.
class DAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DAR_ACQUIRE() { mu_.lock(); }
  [[nodiscard]] bool TryLock() DAR_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void Unlock() DAR_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;  // waits on the wrapped std::mutex directly
  std::mutex mu_;
};

/// std::shared_mutex carrying the `capability` attribute: one writer
/// (Lock/Unlock) or many readers (LockShared/UnlockShared). Prefer
/// WriterLock/ReaderLock over the manual pairs.
class DAR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() DAR_ACQUIRE() { mu_.lock(); }
  void Unlock() DAR_RELEASE() { mu_.unlock(); }
  void LockShared() DAR_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() DAR_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// ---------------------------------------------------------------------------
// RAII scopes.
// ---------------------------------------------------------------------------

/// Exclusive RAII scope over a Mutex (the dar::lock_guard).
class DAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DAR_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DAR_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Exclusive (writer) RAII scope over a SharedMutex.
class DAR_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) DAR_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() DAR_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Shared (reader) RAII scope over a SharedMutex.
class DAR_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) DAR_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() DAR_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---------------------------------------------------------------------------
// Condition variable.
// ---------------------------------------------------------------------------

/// std::condition_variable over dar::Mutex. Wait() is annotated
/// DAR_REQUIRES(mu), so the analysis rejects waiting on a mutex the caller
/// does not hold. Wakeups are spurious as ever: always wait in a loop,
///
///     MutexLock lock(mu_);
///     while (!ready_) cv_.Wait(mu_);
///
/// (an explicit `while`, not a predicate lambda — the analysis cannot see
/// through a lambda that touches guarded fields).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; re-acquires `mu` before
  /// returning. The caller must hold `mu` (compile-checked).
  void Wait(Mutex& mu) DAR_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait and
    // release ownership back to the caller's scope afterwards; the
    // capability bookkeeping is untouched because `mu` is held on entry
    // and on exit exactly as DAR_REQUIRES promises.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dar

#endif  // DAR_COMMON_MUTEX_H_
