#ifndef DAR_COMMON_RESULT_H_
#define DAR_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace dar {

/// Either a value of type `T` or an error `Status` — the library's analogue
/// of `arrow::Result` / `absl::StatusOr`.
///
///     Result<Relation> r = ReadCsv(path);
///     if (!r.ok()) return r.status();
///     Relation rel = std::move(r).ValueOrDie();
///
/// Prefer the `DAR_ASSIGN_OR_RETURN` macro inside Status-returning code.
///
/// Like `Status`, the class is `[[nodiscard]]`: a dropped Result hides the
/// error it may carry, so discarding one is a compile error under -Werror.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value (implicit by design, so functions
  /// can `return value;`).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    // An OK status carries no value; this is a programming error.
    DAR_CHECK(!std::get<Status>(v_).ok())
        << "Result constructed from an OK Status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }

  /// The error (OK if this holds a value).
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  /// The held value. Aborts if this holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(v_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(v_);
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    DAR_CHECK(ok()) << "ValueOrDie called on an error Result: "
                    << std::get<Status>(v_).ToString();
  }

  std::variant<T, Status> v_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its error, else assigning the
/// value to `lhs`. `lhs` may include a declaration, e.g.
/// `DAR_ASSIGN_OR_RETURN(auto rel, ReadCsv(path));`
#define DAR_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).ValueOrDie()

#define DAR_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define DAR_ASSIGN_OR_RETURN_CONCAT(x, y) DAR_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define DAR_ASSIGN_OR_RETURN(lhs, rexpr) \
  DAR_ASSIGN_OR_RETURN_IMPL(             \
      DAR_ASSIGN_OR_RETURN_CONCAT(_dar_result_, __LINE__), lhs, rexpr)

}  // namespace dar

#endif  // DAR_COMMON_RESULT_H_
