#include "common/executor.h"

#include <algorithm>

namespace dar {

namespace {

// First error in index order wins; within a chunk the body keeps running
// past a failure so side effects match every other schedule.
Status RunChunk(size_t begin, size_t end,
                const std::function<Status(size_t)>& body) {
  Status first = Status::OK();
  for (size_t i = begin; i < end; ++i) {
    Status s = body(i);
    if (!s.ok() && first.ok()) first = std::move(s);
  }
  return first;
}

}  // namespace

Status SerialExecutor::ParallelFor(size_t n,
                                   const std::function<Status(size_t)>& body) {
  return RunChunk(0, n, body);
}

ThreadPoolExecutor::ThreadPoolExecutor(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    const MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

void ThreadPoolExecutor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPoolExecutor::ParallelFor(
    size_t n, const std::function<Status(size_t)>& body) {
  if (n == 0) return Status::OK();
  size_t num_chunks = std::min<size_t>(workers_.size(), n);
  if (num_chunks <= 1) return RunChunk(0, n, body);

  struct Batch {
    Mutex mu;
    CondVar done_cv;
    size_t remaining DAR_GUARDED_BY(mu) = 0;
    std::vector<Status> statuses DAR_GUARDED_BY(mu);  // per chunk, in order
  };
  Batch batch;
  {
    // No worker exists yet, but initializing under the lock keeps the
    // guarded-field accounting uniform.
    const MutexLock lock(batch.mu);
    batch.remaining = num_chunks;
    batch.statuses.resize(num_chunks);
  }

  {
    const MutexLock lock(mu_);
    for (size_t c = 0; c < num_chunks; ++c) {
      // Even split: the first (n % num_chunks) chunks take one extra index.
      size_t base = n / num_chunks, extra = n % num_chunks;
      size_t begin = c * base + std::min(c, extra);
      size_t end = begin + base + (c < extra ? 1 : 0);
      queue_.push_back([&batch, &body, c, begin, end] {
        Status s = RunChunk(begin, end, body);
        const MutexLock batch_lock(batch.mu);
        batch.statuses[c] = std::move(s);
        if (--batch.remaining == 0) batch.done_cv.NotifyOne();
      });
    }
  }
  work_cv_.NotifyAll();

  const MutexLock lock(batch.mu);
  while (batch.remaining != 0) batch.done_cv.Wait(batch.mu);
  // Chunks cover ascending index ranges, so the first chunk with an error
  // holds the smallest failing index.
  for (Status& s : batch.statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

std::shared_ptr<Executor> MakeExecutor(int num_threads) {
  if (num_threads == 0) num_threads = HardwareParallelism();
  if (num_threads <= 1) return std::make_shared<SerialExecutor>();
  return std::make_shared<ThreadPoolExecutor>(num_threads);
}

int HardwareParallelism() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace dar
