#ifndef DAR_COMMON_STR_UTIL_H_
#define DAR_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dar {

/// Splits `s` on `sep`, preserving empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Parses a double, rejecting trailing garbage and empty input.
Result<double> ParseDouble(std::string_view s);

/// Parses a non-negative integer, rejecting trailing garbage and empty input.
Result<int64_t> ParseInt(std::string_view s);

/// Formats `v` trimming trailing zeros ("3.5", "42", "0.125").
std::string FormatDouble(double v);

}  // namespace dar

#endif  // DAR_COMMON_STR_UTIL_H_
