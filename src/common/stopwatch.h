#ifndef DAR_COMMON_STOPWATCH_H_
#define DAR_COMMON_STOPWATCH_H_

#include <chrono>

namespace dar {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and by
/// telemetry::TraceSpan.
///
/// Thread-safety: `start_` is a plain (non-atomic) time_point. Concurrent
/// ElapsedSeconds()/ElapsedMillis() calls are safe — they only read
/// `start_` — but Reset() must not race with any other member call.
/// Callers that time work on worker threads must either give each scope
/// its own Stopwatch (what TraceSpan does) or confine Reset() to the
/// coordinating thread before workers start (what Phase1Builder does).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  [[nodiscard]] double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  [[nodiscard]] double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dar

#endif  // DAR_COMMON_STOPWATCH_H_
