#ifndef DAR_COMMON_STOPWATCH_H_
#define DAR_COMMON_STOPWATCH_H_

#include <atomic>
#include <chrono>

namespace dar {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and by
/// telemetry::TraceSpan.
///
/// Thread-safety: every member is safe from any thread. The start point is
/// a single lock-free atomic word, so a Reset() racing a concurrent
/// ElapsedSeconds()/ElapsedMillis() hands the reader either the old or the
/// new epoch, never a torn value. (Before the annotated-locking sweep this
/// was a documented-but-unchecked contract — "Reset must not race reads" —
/// that nothing enforced; making the field atomic enforces it by
/// construction instead of by convention.)
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Copying (and therefore moving — e.g. a Phase1Builder changing hands
  // through Result<Phase1Builder>) takes a relaxed snapshot of the epoch.
  // The copy itself must not race a Reset() of the *source*; the atomic
  // guards concurrent Reset/read on one instance, not structural copies.
  Stopwatch(const Stopwatch& other)
      : start_(other.start_.load(std::memory_order_relaxed)) {}
  Stopwatch& operator=(const Stopwatch& other) {
    start_.store(other.start_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  /// Restarts the stopwatch.
  void Reset() { start_.store(Clock::now(), std::memory_order_relaxed); }

  /// Seconds elapsed since construction or the last Reset().
  [[nodiscard]] double ElapsedSeconds() const {
    return std::chrono::duration<double>(
               Clock::now() - start_.load(std::memory_order_relaxed))
        .count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  [[nodiscard]] double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  // One 64-bit time_point: lock-free atomic on every target we build for.
  std::atomic<Clock::time_point> start_;
};

}  // namespace dar

#endif  // DAR_COMMON_STOPWATCH_H_
