#ifndef DAR_COMMON_STOPWATCH_H_
#define DAR_COMMON_STOPWATCH_H_

#include <chrono>

namespace dar {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  [[nodiscard]] double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  [[nodiscard]] double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dar

#endif  // DAR_COMMON_STOPWATCH_H_
