#ifndef DAR_COMMON_LOGGING_H_
#define DAR_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dar {
namespace internal_logging {

/// Accumulates a fatal message and aborts the process when destroyed.
/// Used only via the DAR_CHECK* macros below; invariant violations are
/// programming errors, not recoverable conditions.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace dar

/// Aborts with a message when `cond` is false. Active in all build types:
/// these guard internal invariants whose violation would corrupt results.
#define DAR_CHECK(cond)                                        \
  if (!(cond))                                                 \
  ::dar::internal_logging::FatalLogMessage(__FILE__, __LINE__) \
          .stream()                                            \
      << #cond << " "

#define DAR_CHECK_EQ(a, b) DAR_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DAR_CHECK_NE(a, b) DAR_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DAR_CHECK_LT(a, b) DAR_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DAR_CHECK_LE(a, b) DAR_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DAR_CHECK_GT(a, b) DAR_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DAR_CHECK_GE(a, b) DAR_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // DAR_COMMON_LOGGING_H_
