#ifndef DAR_COMMON_LOGGING_H_
#define DAR_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dar {
namespace internal_logging {

/// Accumulates a fatal message and aborts the process when destroyed.
/// Used only via the DAR_CHECK* macros below; invariant violations are
/// programming errors, not recoverable conditions.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace dar

/// Aborts with a message when `cond` is false. Active in all build types:
/// these guard internal invariants whose violation would corrupt results.
///
/// The `switch (0) case 0: default:` wrapper makes the expansion a single
/// statement that an outer `else` cannot bind into, so
/// `if (x) DAR_CHECK(y); else f();` attaches the `else` to `if (x)` as
/// written rather than to the macro's internal `if`.
#define DAR_CHECK(cond)                                            \
  switch (0)                                                       \
  case 0:                                                          \
  default:                                                         \
    if (cond) {                                                    \
    } else                                                         \
      ::dar::internal_logging::FatalLogMessage(__FILE__, __LINE__) \
              .stream()                                            \
          << #cond << " "

#define DAR_CHECK_EQ(a, b) DAR_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DAR_CHECK_NE(a, b) DAR_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DAR_CHECK_LT(a, b) DAR_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DAR_CHECK_LE(a, b) DAR_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DAR_CHECK_GT(a, b) DAR_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DAR_CHECK_GE(a, b) DAR_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Debug-only checks. `DAR_DCHECK*` mirror `DAR_CHECK*` but compile to a
/// no-op in release builds (NDEBUG): the condition is still type-checked but
/// never evaluated, so a DAR_DCHECK may sit on a hot path. Use DAR_CHECK for
/// invariants whose violation would silently corrupt mining results; use
/// DAR_DCHECK for expensive redundant checks (e.g. re-walking a tree).
///
/// Override the default with -DDAR_ENABLE_DCHECKS=0/1.
#ifndef DAR_ENABLE_DCHECKS
#ifdef NDEBUG
#define DAR_ENABLE_DCHECKS 0
#else
#define DAR_ENABLE_DCHECKS 1
#endif
#endif

#if DAR_ENABLE_DCHECKS
#define DAR_DCHECK(cond) DAR_CHECK(cond)
#define DAR_DCHECK_EQ(a, b) DAR_CHECK_EQ(a, b)
#define DAR_DCHECK_NE(a, b) DAR_CHECK_NE(a, b)
#define DAR_DCHECK_LT(a, b) DAR_CHECK_LT(a, b)
#define DAR_DCHECK_LE(a, b) DAR_CHECK_LE(a, b)
#define DAR_DCHECK_GT(a, b) DAR_CHECK_GT(a, b)
#define DAR_DCHECK_GE(a, b) DAR_CHECK_GE(a, b)
#else
// `while (false)` keeps the operands compiled (type errors still surface)
// without evaluating them at runtime.
#define DAR_DCHECK(cond) \
  while (false) DAR_CHECK(cond)
#define DAR_DCHECK_EQ(a, b) \
  while (false) DAR_CHECK_EQ(a, b)
#define DAR_DCHECK_NE(a, b) \
  while (false) DAR_CHECK_NE(a, b)
#define DAR_DCHECK_LT(a, b) \
  while (false) DAR_CHECK_LT(a, b)
#define DAR_DCHECK_LE(a, b) \
  while (false) DAR_CHECK_LE(a, b)
#define DAR_DCHECK_GT(a, b) \
  while (false) DAR_CHECK_GT(a, b)
#define DAR_DCHECK_GE(a, b) \
  while (false) DAR_CHECK_GE(a, b)
#endif  // DAR_ENABLE_DCHECKS

#endif  // DAR_COMMON_LOGGING_H_
