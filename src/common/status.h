#ifndef DAR_COMMON_STATUS_H_
#define DAR_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace dar {

/// Error categories used across the library.
///
/// The library does not throw exceptions across API boundaries; every
/// fallible operation returns a `Status` (or a `Result<T>`, see result.h).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kIOError = 6,
  kInternal = 7,
  kNotImplemented = 8,
  /// The service cannot answer right now (e.g. no published rule snapshot
  /// yet); the same call may succeed later without any change by the
  /// caller. Distinct from kNotFound, which is about a specific entity.
  kUnavailable = 9,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// `Status` is cheap to copy in the OK case (a single null pointer); error
/// states carry a heap-allocated payload. Typical use:
///
///     Status DoThing() {
///       if (bad) return Status::InvalidArgument("why it is bad");
///       return Status::OK();
///     }
///
/// The class is `[[nodiscard]]`: silently dropping a returned Status is a
/// compile error under -Werror. Handle it, propagate it with
/// DAR_RETURN_IF_ERROR, or (rarely) discard explicitly with a void cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per StatusCode.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return state_ == nullptr; }
  [[nodiscard]] StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// Error message; empty for OK statuses.
  [[nodiscard]] const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  [[nodiscard]] bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  [[nodiscard]] bool IsNotFound() const {
    return code() == StatusCode::kNotFound;
  }
  [[nodiscard]] bool IsOutOfRange() const {
    return code() == StatusCode::kOutOfRange;
  }
  [[nodiscard]] bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  [[nodiscard]] bool IsIOError() const {
    return code() == StatusCode::kIOError;
  }
  [[nodiscard]] bool IsInternal() const {
    return code() == StatusCode::kInternal;
  }
  [[nodiscard]] bool IsUnavailable() const {
    return code() == StatusCode::kUnavailable;
  }

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // nullptr means OK.
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates an error Status from the evaluated expression, if any.
#define DAR_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::dar::Status _dar_status = (expr);             \
    if (!_dar_status.ok()) return _dar_status;      \
  } while (false)

}  // namespace dar

#endif  // DAR_COMMON_STATUS_H_
