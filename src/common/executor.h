#ifndef DAR_COMMON_EXECUTOR_H_
#define DAR_COMMON_EXECUTOR_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace dar {

/// Strategy for running independent index-space loops — the library's only
/// parallelism primitive. The mining pipeline is written against this
/// interface so the same code runs serially or on a thread pool.
///
/// Determinism contract: ParallelFor partitions [0, n) *statically* into
/// contiguous chunks (no work stealing), every index is invoked exactly
/// once, and callers write results into per-index (or per-shard) slots that
/// are merged in index order afterwards. Under that discipline the final
/// output is bit-identical for every Executor implementation and thread
/// count — the guarantee dar::Session builds on.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Number of workers ParallelFor spreads work over (>= 1).
  virtual int parallelism() const = 0;

  /// Invokes body(i) for every i in [0, n), possibly concurrently, and
  /// blocks until all invocations return. Every index is attempted even
  /// when another fails (so side effects do not depend on timing); the
  /// returned Status is OK iff all were, else the error of the *smallest*
  /// failing index — deterministic regardless of scheduling.
  ///
  /// `body` must be safe to invoke concurrently from multiple threads and
  /// must not call ParallelFor on the same executor (non-reentrant).
  virtual Status ParallelFor(size_t n,
                             const std::function<Status(size_t)>& body) = 0;
};

/// Runs everything inline on the calling thread. The reference
/// implementation for the determinism contract.
class SerialExecutor : public Executor {
 public:
  int parallelism() const override { return 1; }
  Status ParallelFor(size_t n,
                     const std::function<Status(size_t)>& body) override;
};

/// A fixed-size pool of worker threads with a FIFO task queue. ParallelFor
/// splits [0, n) into at most `num_threads` contiguous chunks, enqueues
/// them, and blocks the caller until every chunk has run. There is no work
/// stealing: the index->chunk assignment depends only on (n, num_threads),
/// keeping runs reproducible.
class ThreadPoolExecutor : public Executor {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPoolExecutor(int num_threads);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  int parallelism() const override {
    return static_cast<int>(workers_.size());
  }
  Status ParallelFor(size_t n,
                     const std::function<Status(size_t)>& body) override;

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_cv_;
  std::deque<std::function<void()>> queue_ DAR_GUARDED_BY(mu_);
  bool stopping_ DAR_GUARDED_BY(mu_) = false;
};

/// `num_threads <= 1` yields a SerialExecutor, anything larger a
/// ThreadPoolExecutor of that size. `num_threads == 0` means "use the
/// hardware concurrency".
std::shared_ptr<Executor> MakeExecutor(int num_threads);

/// std::thread::hardware_concurrency with a floor of 1.
int HardwareParallelism();

}  // namespace dar

#endif  // DAR_COMMON_EXECUTOR_H_
