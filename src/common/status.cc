#include "common/status.h"

namespace dar {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace dar
