#include "common/str_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace dar {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty numeric field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("numeric value out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + buf + "'");
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace dar
