// Verifies Theorems 5.1/5.2 empirically at scale: on random nominal
// relations, the distance-based degree of association of value clusters
// under the 0/1 metric equals 1 - confidence of the corresponding
// classical rule, to machine precision. This is the paper's bridge showing
// distance-based rules strictly generalize classical association rules.

#include <cmath>
#include <iostream>
#include <map>
#include <memory>

#include "bench_util.h"
#include "birch/acf.h"
#include "birch/metrics.h"
#include "common/random.h"

int main() {
  using namespace dar;
  using bench::Table;

  std::cout << "=== Theorem 5.2: degree == 1 - confidence (0/1 metric) "
               "===\n\n";
  Table table({"tuples", "values/attr", "pairs", "max|err|"});
  table.PrintHeader();

  Rng rng(52);
  double global_max_err = 0;
  for (auto [n, domain] : std::vector<std::pair<size_t, int64_t>>{
           {100, 3}, {1000, 5}, {10000, 8}, {100000, 12}}) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<double>(rng.UniformInt(0, domain - 1));
      b[i] = static_cast<double>(rng.UniformInt(0, domain - 1));
    }
    auto layout = std::make_shared<AcfLayout>();
    layout->parts = {{1, MetricKind::kDiscrete, "A"},
                     {1, MetricKind::kDiscrete, "B"}};
    std::map<double, Acf> on_a, on_b;
    for (size_t i = 0; i < n; ++i) {
      PartedRow row = {{a[i]}, {b[i]}};
      on_a.try_emplace(a[i], Acf(layout, 0)).first->second.AddRow(row);
      on_b.try_emplace(b[i], Acf(layout, 1)).first->second.AddRow(row);
    }
    // Confidence counts.
    std::map<double, size_t> count_a;
    std::map<std::pair<double, double>, size_t> count_ab;
    for (size_t i = 0; i < n; ++i) {
      ++count_a[a[i]];
      ++count_ab[{a[i], b[i]}];
    }
    double max_err = 0;
    size_t pairs = 0;
    for (const auto& [va, ca] : on_a) {
      for (const auto& [vb, cb] : on_b) {
        double conf =
            static_cast<double>(count_ab.count({va, vb}) ? count_ab[{va, vb}]
                                                         : 0) /
            count_a[va];
        double degree = ClusterDistance(cb.image(1), ca.image(1),
                                        ClusterMetric::kD2AvgInter);
        max_err = std::max(max_err, std::fabs(degree - (1.0 - conf)));
        ++pairs;
      }
    }
    global_max_err = std::max(global_max_err, max_err);
    table.PrintRow(n, domain, pairs, max_err);
  }
  std::cout << "\nGlobal max |degree - (1 - confidence)| = " << global_max_err
            << (global_max_err < 1e-9 ? "  [OK: Theorem 5.2 holds exactly]"
                                      : "  [FAIL]")
            << "\n";
  return global_max_err < 1e-9 ? 0 : 1;
}
