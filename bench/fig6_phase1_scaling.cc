// Reproduces Figure 6: Phase-I running time as the relation grows from
// 100K to 500K tuples, with the data complexity (number and shape of
// clusters) held constant — points per cluster and outliers scale
// proportionally, exactly the §7.2 methodology. The memory limit is the
// paper's 5 MB and the frequency threshold 3% of N.
//
// The paper's claim is *linear scaling*; absolute seconds differ from the
// 1997 Sparc 10. The table reports per-tuple time, which should stay
// roughly flat, and a least-squares linearity fit.
//
// A second section fixes N and sweeps the Session thread count: Phase I
// parallelizes per attribute part (one independent ACF-tree each), so with
// 30 parts the build should scale with the cores available — and the
// output is bit-identical at every thread count.
//
// Usage: fig6_phase1_scaling [max_n] [seed]   (DAR_BENCH_QUICK=1 shrinks)

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/executor.h"
#include "core/session.h"
#include "datagen/planted.h"

int main(int argc, char** argv) {
  using namespace dar;
  using bench::Table;

  size_t max_n = bench::ArgOr(argc, argv, 1, 500000);
  uint64_t seed = bench::ArgOr(argc, argv, 2, 1997);
  if (bench::QuickMode()) max_n = std::min<size_t>(max_n, 100000);

  // §7.2 substitute workload: 30 attributes, 35 clusters each (~1050 ACFs),
  // 90 partial patterns of 6 attributes, 20% outliers.
  auto spec_or = WbcdPartialPatternSpec(/*num_attrs=*/30,
                                        /*clusters_per_attr=*/35,
                                        /*num_patterns=*/90,
                                        /*attrs_per_pattern=*/6,
                                        /*outlier_fraction=*/0.2, seed);
  if (!spec_or.ok()) {
    std::cerr << spec_or.status() << "\n";
    return 1;
  }
  const PlantedDataSpec& spec = *spec_or;

  std::cout << "=== Figure 6: Phase I running time vs. relation size ===\n"
            << "30 attributes, ~1050 planted clusters, 32MB limit (=1997 5MB), "
               "s0 = 3% of N (seed "
            << seed << ")\n\n";
  Table table({"tuples", "seconds", "us/tuple", "raw.ACFs", "rebuilds"});
  table.PrintHeader();

  std::vector<double> xs, ys;
  for (size_t n = max_n / 5; n <= max_n; n += max_n / 5) {
    auto data = GeneratePlanted(spec, n, seed + n);
    if (!data.ok()) {
      std::cerr << data.status() << "\n";
      return 1;
    }
    DarConfig config;
  // Memory budget: the paper used 5 MB on a 1997 Sparc 10 with ~750-byte
  // ACFs (CF + 29 ls/ss pairs). Our ACFs also carry per-dimension min/max
  // and square sums (~6.3x larger), so the equivalent memory pressure is
  // ~32 MB; see EXPERIMENTS.md.
    config.memory_budget_bytes = 32u << 20;
    config.frequency_fraction = 0.03;       // the paper's 3%
    // Repair insertion-order fragmentation so the reported ACF count
    // reflects cluster structure, not tree artifacts (see ablation_refine).
    config.refine_clusters = true;
    auto session = Session::Builder().WithConfig(config).Build();
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }
    auto phase1 = session->RunPhase1(data->relation, data->partition);
    if (!phase1.ok()) {
      std::cerr << phase1.status() << "\n";
      return 1;
    }
    size_t raw = 0;
    int rebuilds = 0;
    for (size_t p = 0; p < phase1->raw_cluster_counts.size(); ++p) {
      raw += phase1->raw_cluster_counts[p];
      rebuilds += phase1->tree_stats[p].rebuild_count;
    }
    table.PrintRow(n, phase1->seconds, 1e6 * phase1->seconds / n, raw,
                   rebuilds);
    xs.push_back(static_cast<double>(n));
    ys.push_back(phase1->seconds);
  }

  // Least-squares fit y = a*x + b; report R^2 as the linearity check.
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  size_t k = xs.size();
  for (size_t i = 0; i < k; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  double denom = k * sxx - sx * sx;
  double a = (k * sxy - sx * sy) / denom;
  double r_num = k * sxy - sx * sy;
  double r_den = std::sqrt((k * sxx - sx * sx) * (k * syy - sy * sy));
  double r2 = r_den > 0 ? (r_num / r_den) * (r_num / r_den) : 1.0;
  // Per-tuple flatness is the robust linearity signal on a shared machine
  // (a single loaded run wrecks R^2 without changing the trend).
  double per_lo = 1e18, per_hi = 0;
  for (size_t i = 0; i < k; ++i) {
    per_lo = std::min(per_lo, ys[i] / xs[i]);
    per_hi = std::max(per_hi, ys[i] / xs[i]);
  }
  bool linear = r2 > 0.95 || per_hi / per_lo < 1.5;
  std::cout << "\nLinear fit: " << a * 1e6 << " us/tuple, R^2 = " << r2
            << ", per-tuple spread = " << per_hi / per_lo << "x"
            << (linear ? "  [OK: linear, matching Figure 6]"
                       : "  [WARN: not cleanly linear]")
            << "\n";

  // === Thread scaling: fixed N, sweep the Session executor ===
  // Per-part parallelism over the 30 independent ACF-trees. Speedup is
  // bounded by the cores actually present; serial output stays the
  // reference — every row below produces bit-identical results.
  size_t n_fixed = max_n / 5;
  auto data = GeneratePlanted(spec, n_fixed, seed + 1);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  std::cout << "\n=== Phase I thread scaling (N = " << n_fixed << ", "
            << HardwareParallelism() << " hardware threads) ===\n\n";
  Table scaling({"threads", "seconds", "speedup", "us/tuple"});
  scaling.PrintHeader();
  double serial_seconds = 0;
  for (int threads : {1, 2, 4, 8}) {
    DarConfig config;
    config.memory_budget_bytes = 32u << 20;
    config.frequency_fraction = 0.03;
    config.refine_clusters = true;
    auto session =
        Session::Builder().WithConfig(config).WithThreads(threads).Build();
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }
    auto phase1 = session->RunPhase1(data->relation, data->partition);
    if (!phase1.ok()) {
      std::cerr << phase1.status() << "\n";
      return 1;
    }
    if (threads == 1) serial_seconds = phase1->seconds;
    scaling.PrintRow(threads, phase1->seconds,
                     serial_seconds / phase1->seconds,
                     1e6 * phase1->seconds / n_fixed);
  }
  return 0;
}
