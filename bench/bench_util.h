#ifndef DAR_BENCH_BENCH_UTIL_H_
#define DAR_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

namespace dar {
namespace bench {

/// Fixed-width table printer for bench reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader(std::ostream& os = std::cout) const {
    for (const auto& h : headers_) os << std::setw(width_) << h;
    os << "\n";
    os << std::string(headers_.size() * width_, '-') << "\n";
  }

  template <typename... Ts>
  void PrintRow(Ts&&... values) const {
    (PrintCell(std::forward<Ts>(values)), ...);
    std::cout << "\n";
  }

 private:
  template <typename T>
  void PrintCell(T&& v) const {
    std::cout << std::setw(width_) << std::fixed << std::setprecision(3) << v;
  }

  std::vector<std::string> headers_;
  int width_;
};

/// Reads a positional size_t argument with a default.
inline size_t ArgOr(int argc, char** argv, int index, size_t def) {
  if (argc > index) return std::strtoull(argv[index], nullptr, 10);
  return def;
}

/// Honors DAR_BENCH_QUICK=1 for CI-sized runs.
inline bool QuickMode() {
  const char* env = std::getenv("DAR_BENCH_QUICK");
  return env != nullptr && std::string(env) == "1";
}

}  // namespace bench
}  // namespace dar

#endif  // DAR_BENCH_BENCH_UTIL_H_
