// Ablation A (§3, §4.3.1): the memory/quality dial. The same dataset is
// mined under a sweep of Phase-I memory budgets. Shrinking the budget
// forces threshold-raising rebuilds: fewer, coarser clusters and higher
// centroid drift — but the scan count stays at one and the run completes.
//
// Usage: ablation_memory [n] [seed]

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/session.h"
#include "datagen/planted.h"

int main(int argc, char** argv) {
  using namespace dar;
  using bench::Table;

  size_t n = bench::ArgOr(argc, argv, 1, 100000);
  uint64_t seed = bench::ArgOr(argc, argv, 2, 7);
  if (bench::QuickMode()) n = std::min<size_t>(n, 30000);

  auto spec_or = WbcdPartialPatternSpec(30, 35, 90, 6, 0.2, seed);
  if (!spec_or.ok()) {
    std::cerr << spec_or.status() << "\n";
    return 1;
  }
  const PlantedDataSpec& spec = *spec_or;
  auto data = GeneratePlanted(spec, n, seed + 1);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  const double slot = 1000.0 / 35;

  std::cout << "=== Ablation: Phase-I memory budget vs. cluster quality ===\n"
            << n << " tuples, 30 attrs, ~1050 planted clusters\n\n";
  Table table({"budget.KB", "raw.ACFs", "frequent", "rebuilds", "drift%",
               "max.thresh", "seconds"});
  table.PrintHeader();

  for (size_t kb : {16384, 5120, 1024, 512, 256, 128}) {
    DarConfig config;
    config.memory_budget_bytes = kb << 10;
    config.frequency_fraction = 0.01;
    auto session = Session::Builder().WithConfig(config).Build();
    if (!session.ok()) {
      std::cout << "  budget " << kb << "KB: " << session.status() << "\n";
      continue;
    }
    auto phase1 = session->RunPhase1(data->relation, data->partition);
    if (!phase1.ok()) {
      std::cout << "  budget " << kb << "KB: " << phase1.status() << "\n";
      continue;
    }
    size_t raw = 0;
    int rebuilds = 0;
    double max_threshold = 0;
    for (size_t p = 0; p < phase1->raw_cluster_counts.size(); ++p) {
      raw += phase1->raw_cluster_counts[p];
      rebuilds += phase1->tree_stats[p].rebuild_count;
      max_threshold =
          std::max(max_threshold, phase1->tree_stats[p].threshold);
    }
    double drift = 0;
    for (const auto& c : phase1->clusters.clusters()) {
      double centroid = c.acf.Centroid()[0];
      double best = 1e18;
      for (const auto& planted : spec.parts[c.part].clusters) {
        best = std::min(best, std::fabs(planted.center[0] - centroid));
      }
      drift += best;
    }
    drift = phase1->clusters.size() > 0
                ? 100.0 * drift / phase1->clusters.size() / slot
                : 0.0;
    table.PrintRow(kb, raw, phase1->clusters.size(), rebuilds, drift,
                   max_threshold, phase1->seconds);
  }
  std::cout << "\nThe adaptive algorithm trades granularity for footprint: "
               "smaller budgets mean\nmore rebuilds, higher diameter "
               "thresholds and coarser clusters, while the data\nis still "
               "scanned exactly once.\n";
  return 0;
}
