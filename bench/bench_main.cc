// Unified JSON bench harness. Executes the phase-1-scaling,
// phase-2-stability, streaming-remine, checkpoint-persistence,
// rule-serving, shard-merge, rule-quality, clique-engine, and
// micro-kernel suites over seeded planted generators and writes
// BENCH_phase1.json / BENCH_phase2.json / BENCH_stream.json /
// BENCH_persist.json / BENCH_serve.json / BENCH_merge.json /
// BENCH_quality.json / BENCH_graph.json / BENCH_micro.json (by default
// into the current directory), seeding the perf trajectory that
// EXPERIMENTS.md ("Reading BENCH_*.json") documents.
//
// Usage: bench_main [--smoke] [--outdir DIR] [--seed N] [--threads N]
//                   [--no-timings]
//
// Every run's "telemetry" field is the *deterministic view* of the run's
// metrics (JsonExporter with include_timings=false): for a fixed seed and
// config it is bit-identical across thread counts and repeated runs. The
// "timings" objects carry wall-clock seconds and naturally vary;
// --no-timings omits them (and nothing else), so entire output files
// become byte-comparable — CI's bench-smoke job diffs a 1-thread and an
// 8-thread --smoke run exactly this way.

#include <algorithm>
#include <barrier>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "birch/acf_tree.h"
#include "birch/metrics.h"
#include "common/executor.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/clustering_graph.h"
#include "core/coordinator.h"
#include "core/session.h"
#include "datagen/graphs.h"
#include "datagen/planted.h"
#include "graph/clique.h"
#include "graph/graph.h"
#include "quality/diff.h"
#include "quality/scored_rules.h"
#include "serve/client.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "stream/streaming_miner.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace dar {
namespace {

struct BenchOptions {
  bool smoke = false;
  bool include_timings = true;
  std::string outdir = ".";
  uint64_t seed = 1997;
  int threads = 1;
};

// One benchmark execution: scalar parameters, wall-clock timings, and the
// deterministic telemetry export (a complete JSON object).
struct RunRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> params;
  std::vector<std::pair<std::string, double>> timings;
  std::string telemetry_json;
};

std::string DeterministicTelemetry(const telemetry::Snapshot& snapshot) {
  telemetry::JsonExporterOptions options;
  options.include_timings = false;
  return telemetry::JsonExporter(options).Export(snapshot);
}

int WriteSuite(const BenchOptions& options, const std::string& suite,
               const std::vector<RunRecord>& runs) {
  telemetry::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(1);
  w.Key("suite");
  w.String(suite);
  w.Key("smoke");
  w.Bool(options.smoke);
  w.Key("seed");
  w.Int(static_cast<int64_t>(options.seed));
  w.Key("runs");
  w.BeginArray();
  for (const RunRecord& run : runs) {
    w.BeginObject();
    w.Key("name");
    w.String(run.name);
    w.Key("params");
    w.BeginObject();
    for (const auto& [key, value] : run.params) {
      w.Key(key);
      w.Double(value);
    }
    w.EndObject();
    if (options.include_timings) {
      w.Key("timings");
      w.BeginObject();
      for (const auto& [key, value] : run.timings) {
        w.Key(key);
        w.Double(value);
      }
      w.EndObject();
    }
    w.Key("telemetry");
    w.Raw(run.telemetry_json);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const std::string path = options.outdir + "/BENCH_" + suite + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << w.str() << "\n";
  if (!out.good()) {
    std::cerr << "bench_main: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << " (" << runs.size() << " runs)\n";
  return 0;
}

Result<Session> MakeSession(const BenchOptions& options, DarConfig config) {
  return Session::Builder()
      .WithConfig(config)
      .WithThreads(options.threads)
      .Build();
}

// --- Suite 1: Phase-I scaling (the Figure-6 axis: N grows, structure
// fixed, ACF count and scan cost should stay stable). ---

int RunPhase1Suite(const BenchOptions& options,
                   std::vector<RunRecord>& runs) {
  const size_t attrs = options.smoke ? 4 : 30;
  const size_t clusters = options.smoke ? 3 : 35;
  const std::vector<size_t> sizes =
      options.smoke ? std::vector<size_t>{2000, 4000}
                    : std::vector<size_t>{100000, 200000, 400000};
  const PlantedDataSpec spec =
      WbcdLikeSpec(attrs, clusters, 0.1, options.seed);
  for (const size_t n : sizes) {
    auto data = GeneratePlanted(spec, n, options.seed + n);
    if (!data.ok()) {
      std::cerr << data.status() << "\n";
      return 1;
    }
    DarConfig config;
    config.memory_budget_bytes = 32u << 20;
    config.frequency_fraction = 0.5 / static_cast<double>(clusters);
    config.initial_diameters.assign(attrs, 0.3 * 1000.0 / clusters);
    config.refine_clusters = true;
    auto session = MakeSession(options, config);
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }
    Stopwatch watch;
    auto phase1 = session->RunPhase1(data->relation, data->partition);
    const double seconds = watch.ElapsedSeconds();
    if (!phase1.ok()) {
      std::cerr << phase1.status() << "\n";
      return 1;
    }
    RunRecord run;
    run.name = "phase1/n=" + std::to_string(n);
    run.params = {{"n", static_cast<double>(n)},
                  {"attrs", static_cast<double>(attrs)},
                  {"clusters_per_attr", static_cast<double>(clusters)}};
    run.timings = {{"seconds", seconds},
                   {"phase1_seconds", phase1->seconds}};
    run.telemetry_json =
        DeterministicTelemetry(session->metrics().TakeSnapshot());
    runs.push_back(std::move(run));
  }
  return 0;
}

// --- Suite 2: Phase-II stability (full Mine; clique and edge counts
// should stay roughly constant as N grows at fixed complexity). ---

int RunPhase2Suite(const BenchOptions& options,
                   std::vector<RunRecord>& runs) {
  const size_t attrs = options.smoke ? 4 : 10;
  const size_t clusters = options.smoke ? 3 : 8;
  const std::vector<size_t> sizes =
      options.smoke ? std::vector<size_t>{2000, 4000}
                    : std::vector<size_t>{50000, 100000, 200000};
  const PlantedDataSpec spec =
      WbcdLikeSpec(attrs, clusters, 0.05, options.seed + 1);
  for (const size_t n : sizes) {
    auto data = GeneratePlanted(spec, n, options.seed + 2 * n);
    if (!data.ok()) {
      std::cerr << data.status() << "\n";
      return 1;
    }
    DarConfig config;
    config.memory_budget_bytes = 32u << 20;
    config.frequency_fraction = 0.5 / static_cast<double>(clusters);
    config.initial_diameters.assign(attrs, 0.3 * 1000.0 / clusters);
    config.degree_threshold = 150.0;
    config.refine_clusters = true;
    auto session = MakeSession(options, config);
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }
    Stopwatch watch;
    auto report = session->Mine(data->relation, data->partition);
    const double seconds = watch.ElapsedSeconds();
    if (!report.ok()) {
      std::cerr << report.status() << "\n";
      return 1;
    }
    RunRecord run;
    run.name = "phase2/n=" + std::to_string(n);
    run.params = {{"n", static_cast<double>(n)},
                  {"attrs", static_cast<double>(attrs)},
                  {"clusters_per_attr", static_cast<double>(clusters)}};
    run.timings = {{"seconds", seconds},
                   {"phase1_seconds", report->phase1().seconds},
                   {"phase2_seconds", report->phase2().seconds}};
    run.telemetry_json = DeterministicTelemetry(report->telemetry);
    runs.push_back(std::move(run));
  }
  return 0;
}

// --- Suite: streaming — the incremental re-mine claim. Ingest N rows as
// micro-batches into a dar::stream, then compare the cost of refreshing
// the rules incrementally (clone live summaries + Phase II, no data
// rescan) against a cold full re-mine (fresh Session::Mine over the same
// accumulated relation). The whole point of summary-only re-mining is
// that `speedup` grows with N. ---

int RunStreamSuite(const BenchOptions& options,
                   std::vector<RunRecord>& runs) {
  const size_t attrs = options.smoke ? 4 : 10;
  const size_t clusters = options.smoke ? 3 : 8;
  const size_t n = options.smoke ? 20000 : 200000;
  const size_t batch_rows = n / 20;
  constexpr int kRemines = 5;  // averaged to de-noise the short refresh
  const PlantedDataSpec spec =
      WbcdLikeSpec(attrs, clusters, 0.05, options.seed + 21);
  auto data = GeneratePlanted(spec, n, options.seed + 22);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  DarConfig config;
  config.memory_budget_bytes = 32u << 20;
  config.frequency_fraction = 0.5 / static_cast<double>(clusters);
  config.initial_diameters.assign(attrs, 0.3 * 1000.0 / clusters);
  config.degree_threshold = 150.0;
  auto session = MakeSession(options, config);
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }
  StreamConfig stream_config;
  stream_config.remine_every_rows = 0;  // remine explicitly, timed below
  auto stream = session->OpenStream(data->relation.schema(),
                                    data->partition, stream_config);
  if (!stream.ok()) {
    std::cerr << stream.status() << "\n";
    return 1;
  }
  Stopwatch ingest_watch;
  for (size_t begin = 0; begin < n; begin += batch_rows) {
    const size_t end = std::min(n, begin + batch_rows);
    Relation batch(data->relation.schema());
    batch.Reserve(end - begin);
    for (size_t r = begin; r < end; ++r) {
      (void)batch.AppendRow(data->relation.Row(r));
    }
    if (auto s = (*stream)->Ingest(batch); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  const double ingest_seconds = ingest_watch.ElapsedSeconds();

  Stopwatch remine_watch;
  for (int i = 0; i < kRemines; ++i) {
    auto snapshot = (*stream)->Remine();
    if (!snapshot.ok()) {
      std::cerr << snapshot.status() << "\n";
      return 1;
    }
  }
  const double incremental_seconds =
      remine_watch.ElapsedSeconds() / kRemines;

  // Cold baseline: everything the stream already knows, mined from
  // scratch (fresh trees, full Phase-I pass over all N rows).
  auto cold_session = MakeSession(options, config);
  if (!cold_session.ok()) {
    std::cerr << cold_session.status() << "\n";
    return 1;
  }
  Stopwatch cold_watch;
  auto cold = cold_session->Mine(data->relation, data->partition);
  const double cold_seconds = cold_watch.ElapsedSeconds();
  if (!cold.ok()) {
    std::cerr << cold.status() << "\n";
    return 1;
  }

  RunRecord run;
  run.name = "stream/n=" + std::to_string(n);
  run.params = {{"n", static_cast<double>(n)},
                {"attrs", static_cast<double>(attrs)},
                {"clusters_per_attr", static_cast<double>(clusters)},
                {"batch_rows", static_cast<double>(batch_rows)},
                {"remines", static_cast<double>(kRemines)}};
  run.timings = {{"ingest_seconds", ingest_seconds},
                 {"incremental_remine_seconds", incremental_seconds},
                 {"cold_remine_seconds", cold_seconds},
                 {"speedup", incremental_seconds > 0
                                 ? cold_seconds / incremental_seconds
                                 : 0.0}};
  run.telemetry_json =
      DeterministicTelemetry(session->metrics().TakeSnapshot());
  runs.push_back(std::move(run));
  return 0;
}

// --- Suite: persist — checkpoint save/restore throughput plus the warm
// re-mine claim: a restored checkpoint carries complete ACF summaries
// (Thm 6.1), so refreshing the rules after a restore costs Phase II only
// while a cold mine pays the full Phase-I scan over all N rows. The
// checkpoint file is deleted before returning so --outdir holds nothing
// but BENCH_*.json (CI diffs the 1-thread and 8-thread directories). ---

int RunPersistSuite(const BenchOptions& options,
                    std::vector<RunRecord>& runs) {
  const size_t attrs = options.smoke ? 4 : 10;
  const size_t clusters = options.smoke ? 3 : 8;
  const size_t n = options.smoke ? 20000 : 200000;
  constexpr int kReps = 3;  // averaged to de-noise the short file ops
  const PlantedDataSpec spec =
      WbcdLikeSpec(attrs, clusters, 0.05, options.seed + 31);
  auto data = GeneratePlanted(spec, n, options.seed + 32);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  DarConfig config;
  config.memory_budget_bytes = 32u << 20;
  config.frequency_fraction = 0.5 / static_cast<double>(clusters);
  config.initial_diameters.assign(attrs, 0.3 * 1000.0 / clusters);
  config.degree_threshold = 150.0;
  auto session = MakeSession(options, config);
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }
  StreamConfig stream_config;
  stream_config.remine_every_rows = 0;
  auto stream = session->OpenStream(data->relation.schema(),
                                    data->partition, stream_config);
  if (!stream.ok()) {
    std::cerr << stream.status() << "\n";
    return 1;
  }
  if (auto s = (*stream)->Ingest(data->relation); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (auto snapshot = (*stream)->Remine(); !snapshot.ok()) {
    std::cerr << snapshot.status() << "\n";
    return 1;
  }

  const std::string ckpt_path = options.outdir + "/bench_persist.darckpt";
  Stopwatch save_watch;
  for (int i = 0; i < kReps; ++i) {
    if (auto s = session->SaveCheckpoint(**stream, ckpt_path); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  const double save_seconds = save_watch.ElapsedSeconds() / kReps;
  size_t checkpoint_bytes = 0;
  {
    std::ifstream in(ckpt_path, std::ios::binary | std::ios::ate);
    if (in.good()) checkpoint_bytes = static_cast<size_t>(in.tellg());
  }

  Stopwatch load_watch;
  Result<RestoredStream> restored = Status::Internal("never restored");
  for (int i = 0; i < kReps; ++i) {
    restored = session->RestoreCheckpoint(ckpt_path);
    if (!restored.ok()) {
      std::cerr << restored.status() << "\n";
      return 1;
    }
  }
  const double load_seconds = load_watch.ElapsedSeconds() / kReps;

  // Warm refresh: Phase II from the restored summaries, no data access.
  Stopwatch warm_watch;
  for (int i = 0; i < kReps; ++i) {
    auto snapshot = restored->stream->Remine();
    if (!snapshot.ok()) {
      std::cerr << snapshot.status() << "\n";
      return 1;
    }
  }
  const double warm_seconds = warm_watch.ElapsedSeconds() / kReps;

  // Cold baseline: the same rules mined from scratch out of the raw data.
  auto cold_session = MakeSession(options, config);
  if (!cold_session.ok()) {
    std::cerr << cold_session.status() << "\n";
    return 1;
  }
  Stopwatch cold_watch;
  auto cold = cold_session->Mine(data->relation, data->partition);
  const double cold_seconds = cold_watch.ElapsedSeconds();
  if (!cold.ok()) {
    std::cerr << cold.status() << "\n";
    return 1;
  }

  std::remove(ckpt_path.c_str());

  RunRecord run;
  run.name = "persist/n=" + std::to_string(n);
  run.params = {{"n", static_cast<double>(n)},
                {"attrs", static_cast<double>(attrs)},
                {"clusters_per_attr", static_cast<double>(clusters)},
                {"reps", static_cast<double>(kReps)},
                {"checkpoint_bytes", static_cast<double>(checkpoint_bytes)}};
  run.timings = {
      {"save_seconds", save_seconds},
      {"save_bytes_per_second",
       save_seconds > 0 ? static_cast<double>(checkpoint_bytes) / save_seconds
                        : 0.0},
      {"load_seconds", load_seconds},
      {"load_bytes_per_second",
       load_seconds > 0 ? static_cast<double>(checkpoint_bytes) / load_seconds
                        : 0.0},
      {"warm_remine_seconds", warm_seconds},
      {"cold_mine_seconds", cold_seconds},
      {"warm_speedup", warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0}};
  run.telemetry_json =
      DeterministicTelemetry(session->metrics().TakeSnapshot());
  runs.push_back(std::move(run));
  return 0;
}

// --- Suite: serve — mixed query traffic from concurrent binary clients
// against a live RuleServer on loopback, with snapshot hot-swaps
// mid-traffic. Request counts are fixed (70/20/10 point/list/info by
// request index) so the suite's telemetry view is deterministic and CI
// can byte-diff it across thread counts; only the "timings" object (QPS
// and client-observed latency percentiles) varies run to run. Traffic
// runs in phases separated by a barrier: the writer ingests a chunk and
// re-mines DURING phases 1..3, so every swap overlaps live queries. Each
// client validates every response's (generation, rows_ingested) pair
// against the writer's publication ledger after the fact — a mixed-
// generation response would pair them wrongly. ---

int RunServeSuite(const BenchOptions& options, std::vector<RunRecord>& runs) {
  const size_t attrs = 4;
  const size_t clusters = 3;
  const size_t clients = 8;
  const size_t phases = 4;  // phase 0 on generation 1, then 3 hot swaps
  const size_t requests_per_phase = options.smoke ? 30 : 150;
  const size_t requests_per_client = phases * requests_per_phase;
  const size_t chunk_rows = options.smoke ? 3000 : 10000;
  const size_t n = phases * chunk_rows;

  const PlantedDataSpec spec =
      WbcdLikeSpec(attrs, clusters, 0.05, options.seed + 41);
  auto data = GeneratePlanted(spec, n, options.seed + 42);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  DarConfig config;
  config.memory_budget_bytes = 32u << 20;
  config.frequency_fraction = 0.5 / static_cast<double>(clusters);
  config.initial_diameters.assign(attrs, 0.3 * 1000.0 / clusters);
  config.degree_threshold = 150.0;
  auto session = MakeSession(options, config);
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }
  StreamConfig stream_config;
  stream_config.remine_every_rows = 0;  // the writer publishes explicitly
  auto stream = session->OpenStream(data->relation.schema(),
                                    data->partition, stream_config);
  if (!stream.ok()) {
    std::cerr << stream.status() << "\n";
    return 1;
  }

  // Generation 1 before any traffic, from the first chunk.
  auto ingest_chunk = [&](size_t phase) -> Status {
    const size_t begin = phase * chunk_rows;
    const size_t end = std::min(n, begin + chunk_rows);
    for (size_t r = begin; r < end; ++r) {
      DAR_RETURN_IF_ERROR((*stream)->IngestRow(data->relation.Row(r)));
    }
    DAR_ASSIGN_OR_RETURN(auto snapshot, (*stream)->Remine());
    (void)snapshot;
    return Status::OK();
  };
  if (auto s = ingest_chunk(0); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  telemetry::MetricsRegistry registry;
  QueryService service(&registry);
  service.AttachStream(**stream);
  serve::ServerConfig server_config;
  server_config.admission.max_concurrent = 0;  // never shed: the bench
  server_config.admission.max_per_tenant = 0;  // must drop zero responses
  server_config.admission.max_tenant_requests = 0;
  serve::RuleServer server(service, server_config, &registry);
  if (auto s = server.Start(); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // Publication ledger: appended only by the writer, read by clients only
  // after join.
  std::vector<std::pair<uint64_t, int64_t>> published;
  published.push_back({(*stream)->generation(), (*stream)->rows_ingested()});

  struct ClientStats {
    std::vector<double> latencies;
    uint64_t dropped = 0;
    std::vector<std::pair<uint64_t, int64_t>> seen;  // deduped pairs
    bool connect_failed = false;
  };
  std::vector<ClientStats> stats(clients);
  std::barrier sync(static_cast<std::ptrdiff_t>(clients) + 1);
  std::atomic<bool> writer_failed{false};

  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      ClientStats& mine = stats[c];
      mine.latencies.reserve(requests_per_client);
      auto client = serve::RuleClient::Connect(
          "127.0.0.1", server.port(), "bench-" + std::to_string(c));
      if (!client.ok()) {
        mine.connect_failed = true;
        for (size_t p = 0; p < phases; ++p) sync.arrive_and_wait();
        return;
      }
      PointQueryResponse point;
      RuleListResponse list;
      SnapshotInfoResponse info;
      std::vector<double> tuple;
      auto note = [&mine](uint64_t generation, int64_t rows) {
        const auto pair = std::make_pair(generation, rows);
        if (std::find(mine.seen.begin(), mine.seen.end(), pair) ==
            mine.seen.end()) {
          mine.seen.push_back(pair);
        }
      };
      for (size_t p = 0; p < phases; ++p) {
        sync.arrive_and_wait();
        for (size_t i = 0; i < requests_per_phase; ++i) {
          const size_t idx = p * requests_per_phase + i;
          Stopwatch watch;
          Status status = Status::OK();
          if (idx % 10 < 7) {
            tuple = data->relation.Row((c * 131 + idx * 17) % n);
            PointQueryRequest request;
            request.tuple = tuple;
            status = client->PointQuery(request, point);
            if (status.ok()) note(point.generation, point.rows_ingested);
          } else if (idx % 10 < 9) {
            RuleListRequest request;
            request.offset = static_cast<uint32_t>(idx % 3);
            request.limit = 8;
            status = client->ListRules(request, list);
            if (status.ok()) note(list.generation, list.rows_ingested);
          } else {
            status = client->SnapshotInfo(info);
            if (status.ok()) note(info.generation, info.rows_ingested);
          }
          mine.latencies.push_back(watch.ElapsedSeconds());
          if (!status.ok()) ++mine.dropped;
        }
      }
    });
  }

  // The writer drives the barrier: phase 0 serves generation 1 untouched;
  // during phases 1..3 it ingests the next chunk and hot-swaps.
  Stopwatch traffic_watch;
  for (size_t p = 0; p < phases; ++p) {
    sync.arrive_and_wait();
    if (p + 1 < phases) {
      if (auto s = ingest_chunk(p + 1); !s.ok()) {
        std::cerr << s << "\n";
        writer_failed.store(true);
      }
      published.push_back(
          {(*stream)->generation(), (*stream)->rows_ingested()});
    }
  }
  for (std::thread& worker : workers) worker.join();
  const double traffic_seconds = traffic_watch.ElapsedSeconds();
  server.Stop();
  if (writer_failed.load()) return 1;

  uint64_t dropped = 0;
  uint64_t inconsistent = 0;
  std::vector<double> latencies;
  latencies.reserve(clients * requests_per_client);
  for (const ClientStats& mine : stats) {
    if (mine.connect_failed) {
      std::cerr << "bench serve: client failed to connect\n";
      return 1;
    }
    dropped += mine.dropped;
    for (const auto& pair : mine.seen) {
      if (std::find(published.begin(), published.end(), pair) ==
          published.end()) {
        ++inconsistent;
      }
    }
    latencies.insert(latencies.end(), mine.latencies.begin(),
                     mine.latencies.end());
  }
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&latencies](double q) {
    if (latencies.empty()) return 0.0;
    const size_t idx = std::min(
        latencies.size() - 1,
        static_cast<size_t>(q * static_cast<double>(latencies.size())));
    return latencies[idx];
  };
  const double total_requests =
      static_cast<double>(clients * requests_per_client);

  // The final queue-depth value depends on request-release interleaving;
  // pin it so the deterministic telemetry view stays byte-identical.
  registry.GetGauge("serve.queue_depth")->Set(0);

  if (dropped != 0 || inconsistent != 0) {
    std::cerr << "bench serve: " << dropped << " dropped and " << inconsistent
              << " cross-generation-inconsistent responses (want 0)\n";
    return 1;
  }

  RunRecord run;
  run.name = "serve/clients=" + std::to_string(clients);
  run.params = {{"n", static_cast<double>(n)},
                {"clients", static_cast<double>(clients)},
                {"requests_per_client", static_cast<double>(requests_per_client)},
                {"swaps", static_cast<double>(phases - 1)},
                {"dropped_responses", static_cast<double>(dropped)},
                {"inconsistent_responses", static_cast<double>(inconsistent)}};
  run.timings = {
      {"seconds", traffic_seconds},
      {"qps", traffic_seconds > 0 ? total_requests / traffic_seconds : 0.0},
      {"p50_seconds", percentile(0.50)},
      {"p99_seconds", percentile(0.99)},
      {"p999_seconds", percentile(0.999)}};
  run.telemetry_json = DeterministicTelemetry(registry.TakeSnapshot());
  runs.push_back(std::move(run));
  return 0;
}

// --- Suite: graph — the dar::graph clique engine on adversarial graphs,
// fed directly (no mining pipeline). graph/planted enumerates a >= 5k-node
// overlapping-planted-clique graph with G(n,p) background noise, once
// serially and once on the session executor; on multi-core hardware the
// per-component fan-out shows up as timings.speedup ~ min(threads,
// components). graph/moonmoser_cap and graph/moonmoser_steps drive the
// Moon-Moser worst case (3^k maximal cliques) into each budget separately,
// so the two truncation flags are exercised as distinct signals.
// graph/oracle_* replay verification-sized instances against the
// exponential brute-force oracle; dropped/spurious counts land in params
// and must be zero (tools/check_bench_json.py enforces it). The telemetry
// view and all params are thread-count invariant, so CI byte-diffs the
// --no-timings output across 1 and 8 threads like every other suite. ---

// Brute-force maximal-clique count oracle over bitmask subsets; only for
// graphs with <= 20 nodes.
std::vector<std::vector<uint32_t>> OracleMaximalCliques(
    const graph::Graph& g) {
  const size_t n = g.num_nodes();
  std::vector<uint64_t> nbr(n, 0);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t w : g.Neighbors(v)) nbr[v] |= uint64_t{1} << w;
  }
  std::vector<std::vector<uint32_t>> out;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    bool is_clique = true;
    for (uint32_t v = 0; v < n && is_clique; ++v) {
      if (((mask >> v) & 1) != 0 &&
          ((mask & ~(uint64_t{1} << v)) & ~nbr[v]) != 0) {
        is_clique = false;
      }
    }
    if (!is_clique) continue;
    bool is_maximal = true;
    for (uint32_t v = 0; v < n && is_maximal; ++v) {
      if (((mask >> v) & 1) == 0 && (mask & nbr[v]) == mask) {
        is_maximal = false;
      }
    }
    if (!is_maximal) continue;
    std::vector<uint32_t>& clique = out.emplace_back();
    for (uint32_t v = 0; v < n; ++v) {
      if (((mask >> v) & 1) != 0) clique.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Count of cliques in `a` missing from `b` (both sorted canonical).
size_t MissingFrom(const std::vector<std::vector<uint32_t>>& a,
                   const std::vector<std::vector<uint32_t>>& b) {
  size_t missing = 0;
  for (const auto& clique : a) {
    if (!std::binary_search(b.begin(), b.end(), clique)) ++missing;
  }
  return missing;
}

void AppendGraphParams(const graph::Graph& g,
                       const graph::CliqueResult& result, RunRecord* run) {
  run->params.emplace_back("num_nodes", static_cast<double>(g.num_nodes()));
  run->params.emplace_back("num_edges", static_cast<double>(g.num_edges()));
  run->params.emplace_back("components",
                           static_cast<double>(result.num_components));
  run->params.emplace_back("degeneracy",
                           static_cast<double>(result.degeneracy));
  run->params.emplace_back("cliques",
                           static_cast<double>(result.cliques.size()));
  run->params.emplace_back("largest_clique",
                           static_cast<double>(result.largest_clique));
  run->params.emplace_back("clique_cap_truncated",
                           result.clique_cap_truncated ? 1.0 : 0.0);
  run->params.emplace_back("step_budget_truncated",
                           result.step_budget_truncated ? 1.0 : 0.0);
}

int RunGraphSuite(const BenchOptions& options, std::vector<RunRecord>& runs) {
  auto pool = MakeExecutor(options.threads);

  // (a) Adversarial planted-clique graph, always >= 5k nodes (graph
  // generation is cheap even in smoke mode; what smoke trims is noise).
  {
    PlantedCliqueGraphSpec spec;
    spec.num_nodes = options.smoke ? 6000 : 20000;
    spec.num_cliques = options.smoke ? 60 : 300;
    spec.clique_size = 24;
    spec.overlap = 6;
    spec.background_p = options.smoke ? 0.0002 : 0.0001;
    spec.seed = options.seed + 61;
    auto generated = GeneratePlantedCliqueGraph(spec);
    if (!generated.ok()) {
      std::cerr << generated.status() << "\n";
      return 1;
    }
    const graph::Graph g =
        graph::Graph::FromEdges(generated->num_nodes, generated->edges);

    graph::CliqueOptions serial_opts;
    Stopwatch serial_watch;
    const graph::CliqueResult serial_result =
        graph::EnumerateMaximalCliques(g, serial_opts);
    const double serial_seconds = serial_watch.ElapsedSeconds();

    telemetry::MetricsRegistry registry;
    graph::CliqueOptions par_opts;
    par_opts.executor = pool.get();
    par_opts.telemetry = telemetry::TelemetryContext(&registry);
    Stopwatch watch;
    const graph::CliqueResult result =
        graph::EnumerateMaximalCliques(g, par_opts);
    const double seconds = watch.ElapsedSeconds();
    if (result.cliques != serial_result.cliques) {
      std::cerr << "graph/planted: executor run diverged from serial run\n";
      return 1;
    }

    RunRecord run;
    run.name = "graph/planted";
    run.params = {
        {"planted_cliques", static_cast<double>(spec.num_cliques)},
        {"clique_size", static_cast<double>(spec.clique_size)},
        {"overlap", static_cast<double>(spec.overlap)}};
    AppendGraphParams(g, result, &run);
    run.timings = {{"seconds", seconds},
                   {"single_thread_seconds", serial_seconds},
                   {"speedup",
                    seconds > 0 ? serial_seconds / seconds : 0.0}};
    run.telemetry_json = DeterministicTelemetry(registry.TakeSnapshot());
    runs.push_back(std::move(run));
  }

  // (b)/(c) Moon-Moser worst case vs each budget: the cap and the step
  // budget must truncate loudly — and separately.
  for (const bool use_cap : {true, false}) {
    const size_t k = options.smoke ? 8 : 10;
    const GeneratedGraph mm = MoonMoserGraph(k);
    const graph::Graph g = graph::Graph::FromEdges(mm.num_nodes, mm.edges);
    telemetry::MetricsRegistry registry;
    graph::CliqueOptions copts;
    copts.executor = pool.get();
    copts.telemetry = telemetry::TelemetryContext(&registry);
    if (use_cap) {
      copts.max_cliques = 1000;  // 3^k is 6561 (smoke) or 59049
    } else {
      copts.max_steps = 500;
    }
    Stopwatch watch;
    const graph::CliqueResult result =
        graph::EnumerateMaximalCliques(g, copts);
    const double seconds = watch.ElapsedSeconds();
    const bool expected_flag = use_cap ? result.clique_cap_truncated
                                       : result.step_budget_truncated;
    if (!expected_flag) {
      std::cerr << "graph/moonmoser: budget failed to truncate\n";
      return 1;
    }

    RunRecord run;
    run.name = use_cap ? "graph/moonmoser_cap" : "graph/moonmoser_steps";
    run.params = {{"k", static_cast<double>(k)}};
    AppendGraphParams(g, result, &run);
    run.timings = {{"seconds", seconds}};
    run.telemetry_json = DeterministicTelemetry(registry.TakeSnapshot());
    runs.push_back(std::move(run));
  }

  // (d) Verification-sized instances against the brute-force oracle. Both
  // counts must be zero; a nonzero count is a bug, not a data point.
  struct OracleCase {
    const char* name;
    GeneratedGraph generated;
  };
  PlantedCliqueGraphSpec vspec;
  vspec.num_nodes = 18;
  vspec.num_cliques = 3;
  vspec.clique_size = 6;
  vspec.overlap = 2;
  vspec.background_p = 0.08;
  vspec.seed = options.seed + 62;
  auto planted_small = GeneratePlantedCliqueGraph(vspec);
  auto gnp_small = GenerateGnp(16, 0.4, options.seed + 63);
  if (!planted_small.ok() || !gnp_small.ok()) {
    std::cerr << "graph/oracle: generator failed\n";
    return 1;
  }
  for (OracleCase& oracle_case :
       std::vector<OracleCase>{{"graph/oracle_planted", *planted_small},
                               {"graph/oracle_gnp", *gnp_small}}) {
    const graph::Graph g = graph::Graph::FromEdges(
        oracle_case.generated.num_nodes, oracle_case.generated.edges);
    telemetry::MetricsRegistry registry;
    graph::CliqueOptions copts;
    copts.executor = pool.get();
    copts.telemetry = telemetry::TelemetryContext(&registry);
    Stopwatch watch;
    const graph::CliqueResult result =
        graph::EnumerateMaximalCliques(g, copts);
    const double seconds = watch.ElapsedSeconds();
    const auto oracle = OracleMaximalCliques(g);
    const size_t dropped = MissingFrom(oracle, result.cliques);
    const size_t spurious = MissingFrom(result.cliques, oracle);
    if (dropped != 0 || spurious != 0) {
      std::cerr << oracle_case.name << ": engine disagrees with oracle ("
                << dropped << " dropped, " << spurious << " spurious)\n";
      return 1;
    }

    RunRecord run;
    run.name = oracle_case.name;
    AppendGraphParams(g, result, &run);
    run.params.emplace_back("oracle_cliques",
                            static_cast<double>(oracle.size()));
    run.params.emplace_back("dropped_cliques", static_cast<double>(dropped));
    run.params.emplace_back("spurious_cliques",
                            static_cast<double>(spurious));
    run.timings = {{"seconds", seconds}};
    run.telemetry_json = DeterministicTelemetry(registry.TakeSnapshot());
    runs.push_back(std::move(run));
  }
  return 0;
}

// --- Suite 3: micro kernels (ACF-tree insertion, D2 distance, clique
// enumeration), measured standalone with their own registries. ---

void MicroAcfInsert(const BenchOptions& options,
                    std::vector<RunRecord>& runs) {
  const size_t n = options.smoke ? 5000 : 200000;
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "x"}};
  AcfTreeOptions tree_opts;
  tree_opts.initial_threshold = 5.0;
  tree_opts.memory_budget_bytes = 8u << 20;
  AcfTree tree(layout, 0, tree_opts);
  Rng rng(options.seed + 11);
  PartedRow row(1, std::vector<double>(1));
  Stopwatch watch;
  for (size_t i = 0; i < n; ++i) {
    row[0][0] = rng.Uniform(0, 1000);
    (void)tree.InsertPoint(row);
  }
  const double seconds = watch.ElapsedSeconds();
  const AcfTreeStats stats = tree.Stats();
  telemetry::MetricsRegistry registry;
  registry.GetCounter("micro.acf_insert.points")
      ->Increment(stats.points_inserted);
  registry.GetCounter("micro.acf_insert.splits")->Increment(stats.split_count);
  registry.GetCounter("micro.acf_insert.rebuilds")
      ->Increment(stats.rebuild_count);
  registry.GetGauge("micro.acf_insert.height")
      ->Set(static_cast<double>(stats.height));
  RunRecord run;
  run.name = "micro/acf_insert";
  run.params = {{"points", static_cast<double>(n)}};
  run.timings = {
      {"seconds", seconds},
      {"points_per_second", seconds > 0 ? static_cast<double>(n) / seconds
                                        : 0.0}};
  run.telemetry_json = DeterministicTelemetry(registry.TakeSnapshot());
  runs.push_back(std::move(run));
}

void MicroD2Distance(const BenchOptions& options,
                     std::vector<RunRecord>& runs) {
  const size_t evals = options.smoke ? 20000 : 2000000;
  const size_t dim = 4;
  CfVector a(dim, MetricKind::kEuclidean), b(dim, MetricKind::kEuclidean);
  Rng rng(options.seed + 12);
  std::vector<double> x(dim);
  for (int i = 0; i < 100; ++i) {
    for (double& v : x) v = rng.Uniform(0, 10);
    a.AddPoint(x);
    for (double& v : x) v = rng.Uniform(5, 15);
    b.AddPoint(x);
  }
  Stopwatch watch;
  double checksum = 0;
  for (size_t i = 0; i < evals; ++i) {
    checksum += ClusterDistance(a, b, ClusterMetric::kD2AvgInter);
  }
  const double seconds = watch.ElapsedSeconds();
  telemetry::MetricsRegistry registry;
  registry.GetCounter("micro.d2.evals")
      ->Increment(static_cast<int64_t>(evals));
  registry.GetGauge("micro.d2.checksum")->Set(checksum);
  RunRecord run;
  run.name = "micro/d2_distance";
  run.params = {{"evals", static_cast<double>(evals)},
                {"dim", static_cast<double>(dim)}};
  run.timings = {
      {"seconds", seconds},
      {"evals_per_second",
       seconds > 0 ? static_cast<double>(evals) / seconds : 0.0}};
  run.telemetry_json = DeterministicTelemetry(registry.TakeSnapshot());
  runs.push_back(std::move(run));
}

int MicroCliqueEnum(const BenchOptions& options,
                    std::vector<RunRecord>& runs) {
  const size_t attrs = options.smoke ? 4 : 12;
  const size_t clusters = options.smoke ? 3 : 10;
  const size_t n = options.smoke ? 3000 : 60000;
  const PlantedDataSpec spec =
      WbcdLikeSpec(attrs, clusters, 0.05, options.seed + 13);
  auto data = GeneratePlanted(spec, n, options.seed + 14);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  DarConfig config;
  config.memory_budget_bytes = 32u << 20;
  config.frequency_fraction = 0.5 / static_cast<double>(clusters);
  config.initial_diameters.assign(attrs, 0.3 * 1000.0 / clusters);
  auto session = MakeSession(options, config);
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }
  auto phase1 = session->RunPhase1(data->relation, data->partition);
  if (!phase1.ok()) {
    std::cerr << phase1.status() << "\n";
    return 1;
  }
  ClusteringGraphOptions graph_opts;
  for (const double d0 : phase1->effective_d0) {
    graph_opts.d0.push_back(d0 * 2.0);
  }
  ClusteringGraph graph(phase1->clusters, graph_opts);
  Stopwatch watch;
  const auto cliques = graph.MaximalCliques();
  const double seconds = watch.ElapsedSeconds();
  telemetry::MetricsRegistry registry;
  registry.GetCounter("micro.clique.nodes")
      ->Increment(static_cast<int64_t>(graph.num_nodes()));
  registry.GetCounter("micro.clique.edges")
      ->Increment(static_cast<int64_t>(graph.num_edges()));
  registry.GetCounter("micro.clique.cliques")
      ->Increment(static_cast<int64_t>(cliques.size()));
  RunRecord run;
  run.name = "micro/clique_enum";
  run.params = {{"n", static_cast<double>(n)},
                {"attrs", static_cast<double>(attrs)},
                {"clusters_per_attr", static_cast<double>(clusters)}};
  run.timings = {{"seconds", seconds}};
  run.telemetry_json = DeterministicTelemetry(registry.TakeSnapshot());
  runs.push_back(std::move(run));
  return 0;
}

// --- Suite: merge — distributed shard-merge scaling (ACF additivity,
// Thm 6.1). For each shard count in {1,2,4,8}: (a) in-process
// Coordinator::MineSharded over the session executor, and (b) the
// multi-process path — N shard checkpoints written by independent
// streams, then MergeCheckpoints + one Phase II via MineFromCheckpoints.
// Both are checked against a single-node Mine baseline: the rule count
// must match exactly (the planted data is float-valued, so degrees may
// differ in ulps across *shard* counts, but the rule set must not). The
// telemetry view is deterministic for a fixed shard count at every
// thread count — MineSharded is thread-count invariant by construction —
// so CI byte-diffs the --no-timings output across 1 and 8 threads. ---

int RunMergeSuite(const BenchOptions& options, std::vector<RunRecord>& runs) {
  const size_t attrs = options.smoke ? 4 : 10;
  const size_t clusters = options.smoke ? 3 : 8;
  const size_t n = options.smoke ? 20000 : 200000;
  const PlantedDataSpec spec =
      WbcdLikeSpec(attrs, clusters, 0.05, options.seed + 41);
  auto data = GeneratePlanted(spec, n, options.seed + 42);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  DarConfig config;
  config.memory_budget_bytes = 32u << 20;
  config.frequency_fraction = 0.5 / static_cast<double>(clusters);
  config.initial_diameters.assign(attrs, 0.3 * 1000.0 / clusters);
  config.degree_threshold = 150.0;
  config.count_rule_support = false;  // no data access on the merge path

  // Single-node baseline: the target every shard count must reproduce.
  auto baseline_session = MakeSession(options, config);
  if (!baseline_session.ok()) {
    std::cerr << baseline_session.status() << "\n";
    return 1;
  }
  Stopwatch baseline_watch;
  auto baseline = baseline_session->Mine(data->relation, data->partition);
  const double baseline_seconds = baseline_watch.ElapsedSeconds();
  if (!baseline.ok()) {
    std::cerr << baseline.status() << "\n";
    return 1;
  }
  const size_t baseline_rules = baseline->result.phase2.rules.size();

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    auto session = MakeSession(options, config);
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }

    // (a) In-process: shard Phase I across the executor, merge, Phase II.
    Stopwatch sharded_watch;
    auto sharded = session->NewCoordinator().MineSharded(
        data->relation, data->partition, shards);
    const double sharded_seconds = sharded_watch.ElapsedSeconds();
    if (!sharded.ok()) {
      std::cerr << sharded.status() << "\n";
      return 1;
    }
    if (sharded->result.phase2.rules.size() != baseline_rules) {
      std::cerr << "merge bench: " << shards << "-shard MineSharded mined "
                << sharded->result.phase2.rules.size() << " rules, single-node "
                << baseline_rules << "\n";
      return 1;
    }

    // (b) Multi-process stand-in: each shard's slice ingested by its own
    // stream and checkpointed, then merged from the files alone.
    std::vector<std::string> paths;
    Stopwatch save_watch;
    for (size_t s = 0; s < shards; ++s) {
      StreamConfig stream_config;
      stream_config.remine_every_rows = 0;
      stream_config.shard_id = static_cast<int64_t>(s);
      auto stream = session->OpenStream(data->relation.schema(),
                                        data->partition, stream_config);
      if (!stream.ok()) {
        std::cerr << stream.status() << "\n";
        return 1;
      }
      const size_t begin = s * n / shards;
      const size_t end = (s + 1) * n / shards;
      for (size_t r = begin; r < end; ++r) {
        if (auto st = (*stream)->IngestRow(data->relation.Row(r)); !st.ok()) {
          std::cerr << st << "\n";
          return 1;
        }
      }
      std::string path = options.outdir + "/bench_merge." +
                         std::to_string(s) + ".darckpt";
      if (auto st = (*stream)->SaveCheckpoint(path); !st.ok()) {
        std::cerr << st << "\n";
        return 1;
      }
      paths.push_back(std::move(path));
    }
    const double save_seconds = save_watch.ElapsedSeconds();

    Stopwatch merge_watch;
    auto merged = session->NewCoordinator().MineFromCheckpoints(paths);
    const double merge_seconds = merge_watch.ElapsedSeconds();
    if (!merged.ok()) {
      std::cerr << merged.status() << "\n";
      return 1;
    }
    if (merged->result.phase2.rules.size() != baseline_rules) {
      std::cerr << "merge bench: " << shards
                << "-checkpoint merge mined "
                << merged->result.phase2.rules.size() << " rules, single-node "
                << baseline_rules << "\n";
      return 1;
    }
    for (const std::string& path : paths) std::remove(path.c_str());

    RunRecord run;
    run.name = "merge/shards=" + std::to_string(shards);
    run.params = {{"n", static_cast<double>(n)},
                  {"attrs", static_cast<double>(attrs)},
                  {"clusters_per_attr", static_cast<double>(clusters)},
                  {"num_shards", static_cast<double>(shards)},
                  {"rules", static_cast<double>(baseline_rules)}};
    run.timings = {
        {"single_node_seconds", baseline_seconds},
        {"mine_sharded_seconds", sharded_seconds},
        {"mine_sharded_speedup",
         sharded_seconds > 0 ? baseline_seconds / sharded_seconds : 0.0},
        {"checkpoint_save_seconds", save_seconds},
        {"checkpoint_merge_mine_seconds", merge_seconds}};
    // The checkpoint-merge run's own snapshot: merge.checkpoints /
    // merge.shards plus the usual phase1/phase2 counters, all
    // shard-deterministic.
    run.telemetry_json = DeterministicTelemetry(merged->telemetry);
    runs.push_back(std::move(run));
  }
  return 0;
}

// --- Suite: quality — scored snapshots, redundancy pruning, and drift
// diffing end to end. Two runs over the same planted base spec: "drift"
// shifts every cluster mean partway through the stream (the generator's
// drift injection), "stationary" replays the identical pipeline with
// shift 0 — same row count, same re-mine cadence, fresh samples after the
// cut, but an unchanged distribution. tools/check_bench_json.py enforces
// the invariants: pruned <= total, every score finite, the stationary
// control reports zero born/died/drifted and the drift run at least one
// change. Scoring reduces executor-sharded integer counts in shard order
// and pruning/diffing are sequential sweeps over them, so the whole
// telemetry view stays byte-identical across thread counts. ---

int RunQualityRun(const BenchOptions& options, const std::string& label,
                  double shift, std::vector<RunRecord>& runs) {
  const size_t attrs = options.smoke ? 4 : 6;
  const size_t clusters = options.smoke ? 3 : 4;
  const size_t n = options.smoke ? 16000 : 100000;
  const size_t drift_row = n / 2;
  // No outliers: the stationary control must reproduce the planted rule
  // set exactly in both generations, and uniform outlier tuples are the
  // one source of spurious clusters.
  const PlantedDataSpec spec = WbcdLikeSpec(attrs, clusters, 0.0,
                                            options.seed + 51);
  // A shift of a quarter slot is several cluster stddevs (0.04 * slot):
  // large enough that post-cut tuples visibly move the recovered interval
  // boxes, small enough that the planted pattern structure survives.
  const double slot = 1000.0 / static_cast<double>(clusters);
  auto data = GenerateDrifting(spec, n, drift_row, shift * slot,
                               options.seed + 52);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  DarConfig config;
  config.memory_budget_bytes = 32u << 20;
  config.frequency_fraction = 0.5 / static_cast<double>(clusters);
  config.initial_diameters.assign(attrs, 0.3 * 1000.0 / clusters);
  config.degree_threshold = 150.0;
  config.count_rule_support = true;  // scoring needs the post-scan counts
  auto session = MakeSession(options, config);
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }
  StreamConfig stream_config;
  stream_config.remine_every_rows = 0;  // one publish per generation
  stream_config.score_measures = {"support", "confidence", "lift",
                                  "conviction", "chi2"};
  stream_config.prune_redundant = true;
  stream_config.prune_min_overlap = 0.5;
  stream_config.diff_snapshots = true;
  // Generous tolerances: generation 2 sees twice the rows of generation
  // 1, so even stationary interval boxes pick up fresh sample extremes.
  stream_config.drift_interval_tolerance = 0.25;
  stream_config.drift_degree_tolerance = 0.5;
  auto stream = session->OpenStream(data->relation.schema(),
                                    data->partition, stream_config);
  if (!stream.ok()) {
    std::cerr << stream.status() << "\n";
    return 1;
  }

  Stopwatch watch;
  for (size_t r = 0; r < drift_row; ++r) {
    if (auto s = (*stream)->IngestRow(data->relation.Row(r)); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  if (auto snapshot = (*stream)->Remine(); !snapshot.ok()) {
    std::cerr << snapshot.status() << "\n";
    return 1;
  }
  for (size_t r = drift_row; r < n; ++r) {
    if (auto s = (*stream)->IngestRow(data->relation.Row(r)); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  auto snapshot = (*stream)->Remine();
  const double seconds = watch.ElapsedSeconds();
  if (!snapshot.ok()) {
    std::cerr << snapshot.status() << "\n";
    return 1;
  }
  const quality::ScoredRuleSet* scored = (*snapshot)->scored();
  const quality::SnapshotDiffResult* diff = (*snapshot)->diff();
  if (scored == nullptr || diff == nullptr) {
    std::cerr << "bench quality: generation 2 published without scored "
                 "rules or a diff\n";
    return 1;
  }
  double min_score = 0;
  double max_score = 0;
  bool any_score = false;
  for (const auto& column : scored->scores) {
    for (const double score : column) {
      if (!any_score) {
        min_score = max_score = score;
        any_score = true;
      } else {
        min_score = std::min(min_score, score);
        max_score = std::max(max_score, score);
      }
    }
  }

  RunRecord run;
  run.name = "quality/" + label;
  run.params = {
      {"n", static_cast<double>(n)},
      {"attrs", static_cast<double>(attrs)},
      {"clusters_per_attr", static_cast<double>(clusters)},
      {"drift_row", static_cast<double>(drift_row)},
      {"drift_injected", shift != 0 ? 1.0 : 0.0},
      {"rules_total", static_cast<double>(scored->stats.size())},
      {"rules_pruned", static_cast<double>(scored->num_pruned)},
      {"born", static_cast<double>(diff->born)},
      {"died", static_cast<double>(diff->died)},
      {"drifted", static_cast<double>(diff->drifted)},
      {"unchanged", static_cast<double>(diff->unchanged)},
      {"min_score", min_score},
      {"max_score", max_score}};
  run.timings = {{"seconds", seconds}};
  run.telemetry_json =
      DeterministicTelemetry(session->metrics().TakeSnapshot());
  runs.push_back(std::move(run));
  return 0;
}

int RunQualitySuite(const BenchOptions& options,
                    std::vector<RunRecord>& runs) {
  if (RunQualityRun(options, "drift", 0.25, runs) != 0) return 1;
  return RunQualityRun(options, "stationary", 0.0, runs);
}

int Usage() {
  std::cerr << "usage: bench_main [--smoke] [--outdir DIR] [--seed N] "
               "[--threads N] [--no-timings]\n";
  return 2;
}

int Main(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--no-timings") {
      options.include_timings = false;
    } else if (arg == "--outdir" && i + 1 < argc) {
      options.outdir = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      return Usage();
    }
  }

  std::vector<RunRecord> phase1_runs;
  if (RunPhase1Suite(options, phase1_runs) != 0) return 1;
  if (WriteSuite(options, "phase1", phase1_runs) != 0) return 1;

  std::vector<RunRecord> phase2_runs;
  if (RunPhase2Suite(options, phase2_runs) != 0) return 1;
  if (WriteSuite(options, "phase2", phase2_runs) != 0) return 1;

  std::vector<RunRecord> stream_runs;
  if (RunStreamSuite(options, stream_runs) != 0) return 1;
  if (WriteSuite(options, "stream", stream_runs) != 0) return 1;

  std::vector<RunRecord> persist_runs;
  if (RunPersistSuite(options, persist_runs) != 0) return 1;
  if (WriteSuite(options, "persist", persist_runs) != 0) return 1;

  std::vector<RunRecord> serve_runs;
  if (RunServeSuite(options, serve_runs) != 0) return 1;
  if (WriteSuite(options, "serve", serve_runs) != 0) return 1;

  std::vector<RunRecord> merge_runs;
  if (RunMergeSuite(options, merge_runs) != 0) return 1;
  if (WriteSuite(options, "merge", merge_runs) != 0) return 1;

  std::vector<RunRecord> quality_runs;
  if (RunQualitySuite(options, quality_runs) != 0) return 1;
  if (WriteSuite(options, "quality", quality_runs) != 0) return 1;

  std::vector<RunRecord> graph_runs;
  if (RunGraphSuite(options, graph_runs) != 0) return 1;
  if (WriteSuite(options, "graph", graph_runs) != 0) return 1;

  std::vector<RunRecord> micro_runs;
  MicroAcfInsert(options, micro_runs);
  MicroD2Distance(options, micro_runs);
  if (MicroCliqueEnum(options, micro_runs) != 0) return 1;
  if (WriteSuite(options, "micro", micro_runs) != 0) return 1;
  return 0;
}

}  // namespace
}  // namespace dar

int main(int argc, char** argv) { return dar::Main(argc, argv); }
