// Ablation C (§6.2): "Empirically, we have found that using a more lenient
// (higher) threshold in Phase II produces a better set of rules." Sweeps
// the Phase-II leniency multiplier on the density thresholds and measures
// rule quality against the planted ground truth:
//   recall    — fraction of planted 1:1 cluster links recovered as rules;
//   precision — fraction of emitted 1:1 rules whose two clusters belong to
//               the same planted pattern.
//
// Usage: ablation_phase2_threshold [n] [seed]

#include <cmath>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/session.h"
#include "datagen/planted.h"

namespace dar {
namespace {

// Maps a frequent cluster to the planted pattern owning its nearest
// dedicated center, or -1 (background / ambiguous).
int PatternOf(const PlantedDataSpec& spec, const FoundCluster& c,
              double slot) {
  double centroid = c.acf.Centroid()[0];
  size_t best_k = 0;
  double best = 1e18;
  for (size_t k = 0; k < spec.parts[c.part].clusters.size(); ++k) {
    double d = std::fabs(spec.parts[c.part].clusters[k].center[0] - centroid);
    if (d < best) {
      best = d;
      best_k = k;
    }
  }
  if (best > 0.4 * slot) return -1;
  // Background clusters are claimed by no pattern and fall through to -1.
  for (size_t p = 0; p < spec.patterns.size(); ++p) {
    if (spec.patterns[p].cluster_of_part[c.part] ==
        static_cast<int64_t>(best_k)) {
      return static_cast<int>(p);
    }
  }
  return -1;
}

}  // namespace
}  // namespace dar

int main(int argc, char** argv) {
  using namespace dar;
  using bench::Table;

  size_t n = bench::ArgOr(argc, argv, 1, 100000);
  uint64_t seed = bench::ArgOr(argc, argv, 2, 29);
  if (bench::QuickMode()) n = std::min<size_t>(n, 30000);

  const size_t kPatterns = 90, kAttrsPerPattern = 6, kAttrs = 30;
  const size_t claims_per_attr [[maybe_unused]] =
      (kPatterns * kAttrsPerPattern + kAttrs - 1) / kAttrs;
  auto spec_or =
      WbcdPartialPatternSpec(kAttrs, 35, kPatterns, kAttrsPerPattern, 0.2,
                             seed);
  if (!spec_or.ok()) {
    std::cerr << spec_or.status() << "\n";
    return 1;
  }
  const PlantedDataSpec& spec = *spec_or;
  auto data = GeneratePlanted(spec, n, seed + 1);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  const double slot = 1000.0 / 35;

  DarConfig base;
  // Memory budget: the paper used 5 MB on a 1997 Sparc 10 with ~750-byte
  // ACFs (CF + 29 ls/ss pairs). Our ACFs also carry per-dimension min/max
  // and square sums (~6.3x larger), so the equivalent memory pressure is
  // ~32 MB; see EXPERIMENTS.md.
  base.memory_budget_bytes = 32u << 20;
  base.frequency_fraction = 0.005;
  // Base d0 of 175 on the image scale (see sec72_phase2_stability); the
  // leniency sweep below shows the Sec-6.2 effect around it.
  base.density_thresholds.assign(kAttrs, 125.0);
  base.degree_threshold = 250.0;
  base.max_cliques = 2000;
  base.max_rules = 200000;
  // Session validates phase2_leniency >= 1, but this sweep deliberately
  // visits sub-unit leniencies. RunPhase2 applies the multiplier as
  // d0 * leniency, so the sweep scales effective_d0 on a copy of the
  // Phase-I result instead and keeps the session at leniency 1.
  base.phase2_leniency = 1.0;
  auto session = Session::Builder().WithConfig(base).Build();
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }
  auto phase1 = session->RunPhase1(data->relation, data->partition);
  if (!phase1.ok()) {
    std::cerr << phase1.status() << "\n";
    return 1;
  }

  // 1:1 rules need only the degree test (Dfn 5.1), so they are insensitive
  // to the graph thresholds; what leniency gates is co-occurrence — the
  // cliques — and with them every multi-cluster rule. Metrics:
  //   clique.recall — fraction of the 90 planted patterns with >= 4 of
  //                   their 6 clusters together in some maximal clique;
  //   2:1 precision — fraction of 2-antecedent rules whose three clusters
  //                   belong to one planted pattern.
  std::cout << "=== Ablation: Phase-II threshold leniency (Sec 6.2) ===\n"
            << phase1->clusters.size() << " frequent clusters, " << kPatterns
            << " planted patterns\n\n";
  Table table({"leniency", "edges", "cliques>1", "cliq.recall", "2:1.rules",
               "2:1.prec"});
  table.PrintHeader();

  // Leniency > ~3 floods the graph with background-pair edges (their D2
  // distribution starts at ~280; see EXPERIMENTS.md) and the clique count
  // explodes; the cap below keeps those sweep points bounded and loudly
  // truncated.
  for (double leniency : {0.25, 0.5, 1.0, 1.5, 2.0, 2.5}) {
    Phase1Result scaled = *phase1;
    for (double& d0 : scaled.effective_d0) d0 *= leniency;
    auto phase2 = session->RunPhase2(scaled);
    if (!phase2.ok()) {
      std::cerr << phase2.status() << "\n";
      return 1;
    }
    // Clique recall: per pattern, the max number of its clusters found
    // together in one maximal clique.
    std::map<int, size_t> best_together;
    for (const auto& clique : phase2->cliques) {
      std::map<int, size_t> counts;
      for (size_t id : clique) {
        int p = PatternOf(spec, phase1->clusters.cluster(id), slot);
        if (p >= 0) ++counts[p];
      }
      for (const auto& [p, c] : counts) {
        best_together[p] = std::max(best_together[p], c);
      }
    }
    size_t patterns_recovered = 0;
    for (const auto& [p, c] : best_together) {
      if (c >= 4) ++patterns_recovered;
    }
    // 2:1 rule precision.
    size_t total21 = 0, correct21 = 0;
    for (const auto& rule : phase2->rules) {
      if (rule.antecedent.size() != 2 || rule.consequent.size() != 1) {
        continue;
      }
      ++total21;
      int p0 = PatternOf(spec, phase1->clusters.cluster(rule.antecedent[0]),
                         slot);
      int p1 = PatternOf(spec, phase1->clusters.cluster(rule.antecedent[1]),
                         slot);
      int pc = PatternOf(spec, phase1->clusters.cluster(rule.consequent[0]),
                         slot);
      if (p0 >= 0 && p0 == p1 && p1 == pc) ++correct21;
    }
    table.PrintRow(leniency, phase2->graph_edges,
                   phase2->num_nontrivial_cliques,
                   static_cast<double>(patterns_recovered) / kPatterns,
                   total21,
                   total21 > 0 ? static_cast<double>(correct21) / total21
                               : 0.0);
    if (phase2->cliques_truncated || phase2->rules_truncated) {
      std::cout << "    (truncated: cliques="
                << (phase2->cliques_truncated ? "yes" : "no")
                << " rules=" << (phase2->rules_truncated ? "yes" : "no")
                << ")\n";
    }
  }
  std::cout
      << "\nLow leniency starves the clustering graph of edges (no cliques, "
         "no multi-\nantecedent rules); moderate leniency recovers every "
         "planted pattern as a clique\n— the paper's observation that a "
         "more lenient Phase-II threshold gives better\nrules. Too lenient "
         "and background-pair edges flood the graph: the clique\n"
         "enumeration hits its cap and recall collapses. The residual 2:1 "
         "noise (degree-\ntail background consequents) is what the paper's "
         "optional post-scan support\ncount (Sec 6.2) is for.\n";
  return 0;
}
