// Google-benchmark microbenchmarks for the performance-critical kernels:
// ACF-tree point insertion, CF distance metrics, clique enumeration, and
// Apriori counting.

#include <benchmark/benchmark.h>

#include <memory>

#include "apriori/apriori.h"
#include "birch/acf_tree.h"
#include "birch/metrics.h"
#include "common/random.h"
#include "core/clustering_graph.h"
#include "core/session.h"
#include "datagen/planted.h"
#include "qar/equidepth.h"

namespace dar {
namespace {

std::shared_ptr<const AcfLayout> LayoutWithParts(size_t parts) {
  auto layout = std::make_shared<AcfLayout>();
  for (size_t p = 0; p < parts; ++p) {
    layout->parts.push_back(
        {1, MetricKind::kEuclidean, "p" + std::to_string(p)});
  }
  return layout;
}

void BM_AcfTreeInsertPoint(benchmark::State& state) {
  size_t parts = static_cast<size_t>(state.range(0));
  auto layout = LayoutWithParts(parts);
  AcfTreeOptions opts;
  opts.initial_threshold = 5.0;
  opts.memory_budget_bytes = 64u << 20;
  AcfTree tree(layout, 0, opts);
  Rng rng(1);
  PartedRow row(parts, std::vector<double>(1));
  for (auto _ : state) {
    for (size_t p = 0; p < parts; ++p) row[p][0] = rng.Uniform(0, 1000);
    benchmark::DoNotOptimize(tree.InsertPoint(row));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AcfTreeInsertPoint)->Arg(1)->Arg(8)->Arg(30);

void BM_ClusterDistanceD2(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  CfVector a(dim, MetricKind::kEuclidean), b(dim, MetricKind::kEuclidean);
  Rng rng(2);
  std::vector<double> x(dim);
  for (int i = 0; i < 100; ++i) {
    for (auto& v : x) v = rng.Uniform(0, 10);
    a.AddPoint(x);
    for (auto& v : x) v = rng.Uniform(5, 15);
    b.AddPoint(x);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ClusterDistance(a, b, ClusterMetric::kD2AvgInter));
  }
}
BENCHMARK(BM_ClusterDistanceD2)->Arg(1)->Arg(4)->Arg(16);

void BM_DiameterWithPoint(benchmark::State& state) {
  CfVector cf(4, MetricKind::kEuclidean);
  Rng rng(3);
  std::vector<double> x(4);
  for (int i = 0; i < 1000; ++i) {
    for (auto& v : x) v = rng.Uniform(0, 10);
    cf.AddPoint(x);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cf.DiameterWithPoint(x));
  }
}
BENCHMARK(BM_DiameterWithPoint);

void BM_MaximalCliques(benchmark::State& state) {
  // Clustering graph from a planted workload sized by the arg.
  size_t patterns = static_cast<size_t>(state.range(0));
  auto spec = WbcdPartialPatternSpec(30, 35, patterns, 6, 0.2, 17);
  auto data = GeneratePlanted(*spec, 30000, 18);
  DarConfig config;
  config.memory_budget_bytes = 5u << 20;
  config.frequency_fraction = 0.01;
  auto session = Session::Builder().WithConfig(config).Build();
  auto phase1 = session->RunPhase1(data->relation, data->partition);
  ClusteringGraphOptions opts;
  for (double d0 : phase1->effective_d0) opts.d0.push_back(d0 * 2.0);
  ClusteringGraph graph(phase1->clusters, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.MaximalCliques());
  }
  state.counters["nodes"] = static_cast<double>(graph.num_nodes());
  state.counters["edges"] = static_cast<double>(graph.num_edges());
}
BENCHMARK(BM_MaximalCliques)->Arg(30)->Arg(90)->Unit(benchmark::kMillisecond);

void BM_AprioriMine(benchmark::State& state) {
  Rng rng(4);
  std::vector<Itemset> txns;
  for (int i = 0; i < 2000; ++i) {
    Itemset t;
    for (Item item = 0; item < 24; ++item) {
      if (rng.Bernoulli(0.25)) t.push_back(item);
    }
    txns.push_back(std::move(t));
  }
  AprioriOptions opts;
  opts.min_support_count = 200;
  opts.max_itemset_size = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineFrequentItemsets(txns, opts));
  }
  state.SetItemsProcessed(state.iterations() * txns.size());
}
BENCHMARK(BM_AprioriMine)->Unit(benchmark::kMillisecond);

void BM_EquiDepthPartition(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> values(100000);
  for (auto& v : values) v = rng.Uniform(0, 1e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EquiDepthPartition(values, 50));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_EquiDepthPartition)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dar

BENCHMARK_MAIN();
