// Reproduces the §7.2 text metrics around Figure 6:
//   - the number of ACFs found in Phase I stays ~constant (~1050, within
//     ~5%) as N grows from 100K to 500K with fixed data complexity;
//   - cluster centroids drift only slightly (paper: < 4%) from the true
//     (planted) centers, growing mildly with N;
//   - Phase II finds a roughly constant number of non-trivial cliques
//     (paper: ~90) in roughly constant time (paper: ~7s on 1997 hardware);
//   - the clustering graph's edge count is a small constant times the node
//     count (not the worst-case quadratic).
//
// Usage: sec72_phase2_stability [max_n] [seed]  (DAR_BENCH_QUICK=1 shrinks)

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/session.h"
#include "datagen/planted.h"

int main(int argc, char** argv) {
  using namespace dar;
  using bench::Table;

  size_t max_n = bench::ArgOr(argc, argv, 1, 500000);
  uint64_t seed = bench::ArgOr(argc, argv, 2, 1997);
  if (bench::QuickMode()) max_n = std::min<size_t>(max_n, 100000);

  auto spec_or = WbcdPartialPatternSpec(30, 35, 90, 6, 0.2, seed);
  if (!spec_or.ok()) {
    std::cerr << spec_or.status() << "\n";
    return 1;
  }
  const PlantedDataSpec& spec = *spec_or;
  const double slot = 1000.0 / 35;  // planted inter-center spacing

  std::cout << "=== Sec 7.2: Phase I/II stability across data sizes ===\n"
            << "30 attrs x 35 clusters (~1050 ACFs planted), 90 partial "
               "patterns, 32MB limit\n"
            << "(frequency threshold 0.5% of N; the paper used 3% of its "
               "differently-weighted data)\n\n";
  Table table({"tuples", "raw.ACFs", "drift%", "frequent", "cliques>1",
               "edges/nodes", "p2.seconds"});
  table.PrintHeader();

  std::vector<double> acf_counts;
  for (size_t n = max_n / 5; n <= max_n; n += max_n / 5) {
    auto data = GeneratePlanted(spec, n, seed + n);
    if (!data.ok()) {
      std::cerr << data.status() << "\n";
      return 1;
    }
    DarConfig config;
  // Memory budget: the paper used 5 MB on a 1997 Sparc 10 with ~750-byte
  // ACFs (CF + 29 ls/ss pairs). Our ACFs also carry per-dimension min/max
  // and square sums (~6.3x larger), so the equivalent memory pressure is
  // ~32 MB; see EXPERIMENTS.md.
    config.memory_budget_bytes = 32u << 20;
    config.frequency_fraction = 0.005;
    config.refine_clusters = true;  // see ablation_refine
    // Phase-II thresholds live on the *image* scale, not the cluster
    // diameter scale: clusters absorb a fraction of uniform outliers, so
    // even a perfectly associated cluster pair has D2 ~ sqrt(contamination)
    // * domain (here ~100-240, vs ~280+ for unrelated pairs). This is the
    // paper's own observation that Phase II wants a much more lenient
    // threshold (Sec 6.2); see ablation_phase2_threshold for the sweep.
    config.density_thresholds.assign(30, 125.0);
    config.phase2_leniency = 2.0;
    config.degree_threshold = 250.0;
    auto session = Session::Builder().WithConfig(config).Build();
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }
    auto phase1 = session->RunPhase1(data->relation, data->partition);
    if (!phase1.ok()) {
      std::cerr << phase1.status() << "\n";
      return 1;
    }
    auto phase2 = session->RunPhase2(*phase1);
    if (!phase2.ok()) {
      std::cerr << phase2.status() << "\n";
      return 1;
    }
    size_t raw = 0;
    for (size_t c : phase1->raw_cluster_counts) raw += c;
    acf_counts.push_back(static_cast<double>(raw));

    // Centroid drift: mean distance from each frequent cluster's centroid
    // to the nearest planted center, as % of the cluster spacing.
    double drift = 0;
    for (const auto& c : phase1->clusters.clusters()) {
      double centroid = c.acf.Centroid()[0];
      double best = 1e18;
      for (const auto& planted : spec.parts[c.part].clusters) {
        best = std::min(best, std::fabs(planted.center[0] - centroid));
      }
      drift += best;
    }
    drift = phase1->clusters.size() > 0
                ? 100.0 * drift / phase1->clusters.size() / slot
                : 0.0;

    double nodes = static_cast<double>(phase1->clusters.size());
    table.PrintRow(n, raw, drift, phase1->clusters.size(),
                   phase2->num_nontrivial_cliques,
                   nodes > 0 ? phase2->graph_edges / nodes : 0.0,
                   phase2->seconds);
  }

  // ACF-count stability check (paper: ~5% variation).
  double lo = 1e18, hi = 0;
  for (double c : acf_counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  double spread = (hi - lo) / hi * 100.0;
  std::cout << "\nACF-count spread across sizes: " << spread << "%"
            << (spread < 15 ? "  [OK: data complexity held constant]"
                            : "  [WARN: cluster structure drifting]")
            << "\n";
  return 0;
}
