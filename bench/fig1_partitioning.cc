// Reproduces Figure 1: equi-depth vs distance-based partitioning of the
// Salary column. The paper's table shows that depth-2 equi-depth
// partitioning produces the semantically poor interval [31K, 80K] while
// distance-based clustering yields [18K,18K], [30K,31K], [80K,82K].
//
// Beyond the exact 6-value column, a randomized sweep over skewed columns
// quantifies the difference via the maximum intra-interval gap (distance
// between consecutive member values) of each method.

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "birch/acf_tree.h"
#include "common/random.h"
#include "datagen/fixtures.h"
#include "qar/equidepth.h"

namespace dar {
namespace {

// Clusters a column with an ACF-tree at the given diameter threshold and
// returns the sorted cluster bounding intervals.
std::vector<ValueInterval> DistanceIntervals(const std::vector<double>& col,
                                             double threshold) {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "Salary"}};
  AcfTreeOptions opts;
  opts.initial_threshold = threshold;
  opts.memory_budget_bytes = 64u << 20;
  AcfTree tree(layout, 0, opts);
  for (double v : col) {
    Status s = tree.InsertPoint({{v}});
    if (!s.ok()) {
      std::cerr << s << "\n";
      std::exit(1);
    }
  }
  std::vector<ValueInterval> out;
  for (const auto& c : tree.ExtractClusters()) {
    auto box = c.BoundingBox(0);
    out.push_back({box[0].first, box[0].second, c.n()});
  }
  std::sort(out.begin(), out.end(),
            [](const ValueInterval& a, const ValueInterval& b) {
              return a.lo < b.lo;
            });
  return out;
}

// Maximum gap between consecutive member values inside any interval of the
// partition: the "hidden distance" an interval glosses over.
double MaxIntraIntervalGap(const std::vector<double>& col,
                           const std::vector<ValueInterval>& intervals) {
  std::vector<double> sorted = col;
  std::sort(sorted.begin(), sorted.end());
  double worst = 0;
  for (const auto& iv : intervals) {
    double prev = 0;
    bool have_prev = false;
    for (double v : sorted) {
      if (!iv.Contains(v)) continue;
      if (have_prev) worst = std::max(worst, v - prev);
      prev = v;
      have_prev = true;
    }
  }
  return worst;
}

void PrintIntervals(const char* label,
                    const std::vector<ValueInterval>& intervals) {
  std::cout << "  " << label << ": ";
  for (const auto& iv : intervals) {
    std::cout << iv.ToString() << "(n=" << iv.count << ") ";
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace dar

int main() {
  using namespace dar;
  using bench::Table;

  std::cout << "=== Figure 1: Equi-depth vs. distance-based partitioning "
               "===\n\nPaper's salary column {18K, 30K, 31K, 80K, 81K, "
               "82K}:\n";
  std::vector<double> col = Fig1SalaryColumn();
  auto equi = *EquiDepthPartition(col, 3);
  auto dist = DistanceIntervals(col, 2000);
  PrintIntervals("equi-depth (depth 2) ", equi);
  PrintIntervals("distance-based (d0=2K)", dist);
  std::cout << "  max hidden gap: equi-depth=" << MaxIntraIntervalGap(col, equi)
            << ", distance-based=" << MaxIntraIntervalGap(col, dist) << "\n";

  std::cout << "\nRandomized sweep: 3-modal skewed salary columns, "
               "1000 values each.\n";
  Table table({"trial", "equi.maxgap", "dist.maxgap", "equi.k", "dist.k"});
  table.PrintHeader();
  Rng rng(2026);
  double equi_total = 0, dist_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> values;
    double m1 = rng.Uniform(20000, 40000);
    double m2 = m1 + rng.Uniform(30000, 60000);
    double m3 = m2 + rng.Uniform(40000, 80000);
    for (int i = 0; i < 600; ++i) values.push_back(rng.Gaussian(m1, 1500));
    for (int i = 0; i < 300; ++i) values.push_back(rng.Gaussian(m2, 1200));
    for (int i = 0; i < 100; ++i) values.push_back(rng.Gaussian(m3, 2000));
    auto e = *EquiDepthPartition(values, 4);
    auto d = DistanceIntervals(values, 6000);
    double eg = MaxIntraIntervalGap(values, e);
    double dg = MaxIntraIntervalGap(values, d);
    equi_total += eg;
    dist_total += dg;
    table.PrintRow(trial, eg, dg, e.size(), d.size());
  }
  std::cout << "\nMean max hidden gap: equi-depth=" << equi_total / 10
            << ", distance-based=" << dist_total / 10
            << "\n(equi-depth partitions routinely bridge gaps that "
               "distance-based clusters respect)\n";
  return 0;
}
