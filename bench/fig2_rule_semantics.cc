// Reproduces the Figure-2 discussion: the classical rule
//   Job = DBA AND Age = 30 => Salary = 40,000            (Rule 1)
// has identical support (50%) and confidence (60%) in relations R1 and R2,
// yet intuitively fits R2 better (the non-matching salaries there are 41K
// and 42K, not 90K and 100K). The distance-based degree of association
// captures the difference: it is far smaller (stronger) in R2.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "birch/acf.h"
#include "birch/metrics.h"
#include "datagen/fixtures.h"

namespace dar {
namespace {

struct Measures {
  double support;
  double confidence;
  double degree_d1;  // centroid Manhattan (Eq. 5)
  double degree_d2;  // average inter-cluster (Eq. 6)
};

Measures Measure(const CsvTable& table) {
  const Relation& rel = table.relation;
  double dba = *table.dictionaries[0].Lookup("DBA");
  size_t antecedent = 0, matching = 0;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    bool is_ant = rel.at(r, 0) == dba && rel.at(r, 1) == 30;
    if (is_ant) ++antecedent;
    if (is_ant && rel.at(r, 2) == 40000) ++matching;
  }
  // Distance view: antecedent cluster C_X = 30-year-old DBAs, consequent
  // cluster C_Y = tuples with salary 40K; degree = D(C_Y[Salary],
  // C_X[Salary]).
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kDiscrete, "JobAge"},
                   {1, MetricKind::kEuclidean, "Salary"}};
  Acf cx(layout, 0), cy(layout, 1);
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    PartedRow row = {{rel.at(r, 0)}, {rel.at(r, 2)}};
    if (rel.at(r, 0) == dba && rel.at(r, 1) == 30) cx.AddRow(row);
    if (rel.at(r, 2) == 40000) cy.AddRow(row);
  }
  return {static_cast<double>(matching) / rel.num_rows(),
          static_cast<double>(matching) / antecedent,
          ClusterDistance(cy.image(1), cx.image(1),
                          ClusterMetric::kD1CentroidManhattan),
          ClusterDistance(cy.image(1), cx.image(1),
                          ClusterMetric::kD2AvgInter)};
}

}  // namespace
}  // namespace dar

int main() {
  using namespace dar;
  using bench::Table;

  std::cout << "=== Figure 2: Rule (1) 'Job=DBA AND Age=30 => Salary=40K' "
               "===\n\n";
  Measures m1 = Measure(Fig2RelationR1());
  Measures m2 = Measure(Fig2RelationR2());

  Table table({"relation", "support", "confidence", "degree(D1)",
               "degree(D2)"});
  table.PrintHeader();
  table.PrintRow("R1", m1.support, m1.confidence, m1.degree_d1, m1.degree_d2);
  table.PrintRow("R2", m2.support, m2.confidence, m2.degree_d1, m2.degree_d2);

  std::cout << "\nClassical support/confidence cannot distinguish R1 from "
               "R2 (paper: both 50%/60%).\nThe distance-based degree is "
            << m1.degree_d2 / m2.degree_d2
            << "x smaller (stronger) in R2, capturing that 30-year-old DBAs"
               " there\nearn *about* 40K (Goals 2 and 3).\n";

  bool ok = m1.support == 0.5 && m2.support == 0.5 &&
            m1.confidence == 0.6 && m2.confidence == 0.6 &&
            m2.degree_d2 < m1.degree_d2;
  std::cout << (ok ? "\n[OK] matches the paper's reported measures\n"
                   : "\n[MISMATCH] check the fixtures\n");
  return ok ? 0 : 1;
}
