// Reproduces the Figure-4 scenario: clusters C_X (|C_X| = 12) and C_Y
// (|C_Y| = 13) overlap in 10 tuples. Classical confidence ranks
// C_X => C_Y (10/12) above C_Y => C_X (10/13). But the C_Y-only tuples sit
// *near* the intersection while the C_X-only tuples are far from C_Y, so
// under a distance-based measure each C_Y-only tuple should hurt less —
// the degree of association ranks C_Y => C_X as the stronger rule.
//
// The sweep varies how far the C_Y-only tuples sit from the intersection,
// showing where the distance-based ranking crosses over while confidence
// stays fixed.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "birch/acf.h"
#include "birch/metrics.h"
#include "datagen/fixtures.h"

namespace dar {
namespace {

struct DegreePair {
  double conf_x_to_y, conf_y_to_x;
  double deg_x_to_y, deg_y_to_x;
};

DegreePair Measure(const Fig4Options& options) {
  auto data = *MakeFig4Dataset(options);
  const Relation& rel = data.relation;
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "X"},
                   {1, MetricKind::kEuclidean, "Y"}};
  Acf cx(layout, 0), cy(layout, 1);
  size_t nx = 0, ny = 0, nxy = 0;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    bool in_x = std::fabs(rel.at(r, 0) - 50) < 2;
    bool in_y = std::fabs(rel.at(r, 1) - 50) < 2;
    PartedRow row = {{rel.at(r, 0)}, {rel.at(r, 1)}};
    if (in_x) {
      cx.AddRow(row);
      ++nx;
    }
    if (in_y) {
      cy.AddRow(row);
      ++ny;
    }
    if (in_x && in_y) ++nxy;
  }
  return {static_cast<double>(nxy) / nx, static_cast<double>(nxy) / ny,
          ClusterDistance(cy.image(1), cx.image(1),
                          ClusterMetric::kD2AvgInter),
          ClusterDistance(cx.image(0), cy.image(0),
                          ClusterMetric::kD2AvgInter)};
}

}  // namespace
}  // namespace dar

int main() {
  using namespace dar;
  using bench::Table;

  std::cout << "=== Figure 4: confidence vs. distance-based degree ===\n\n"
               "|C_X|=12, |C_Y|=13, |intersection|=10. C_X-only tuples far "
               "from C_Y (offset 30);\nC_Y-only tuples at varying distance "
               "from C_X.\n\n";
  Table table({"y.offset", "conf(X=>Y)", "conf(Y=>X)", "deg(X=>Y)",
               "deg(Y=>X)", "dist.winner"});
  table.PrintHeader();
  for (double near : {1.0, 3.0, 6.0, 12.0, 30.0, 60.0}) {
    Fig4Options opts;
    opts.near_offset = near;
    DegreePair m = Measure(opts);
    table.PrintRow(near, m.conf_x_to_y, m.conf_y_to_x, m.deg_x_to_y,
                   m.deg_y_to_x,
                   m.deg_y_to_x < m.deg_x_to_y ? "Y=>X" : "X=>Y");
  }
  std::cout
      << "\nConfidence always prefers X=>Y (10/12 > 10/13) regardless of "
         "geometry.\nThe distance-based degree prefers Y=>X exactly while "
         "the C_Y-only tuples stay\ncomparatively close to the "
         "intersection (the paper's Figure-4 argument), and\nflips once "
         "they move far away.\n";
  return 0;
}
