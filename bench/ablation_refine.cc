// Ablation D: the global refinement pass (birch/refine.h). The CF-tree's
// order-dependent insertion fragments natural clusters into several leaf
// entries — the effect behind the paper's observed centroid drift (§7.2).
// Refinement agglomeratively re-merges the extracted summaries. This bench
// measures raw cluster counts, centroid drift and Phase-I time with and
// without it, across diameter thresholds tight enough to fragment.
//
// Usage: ablation_refine [n] [seed]

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "core/session.h"
#include "datagen/planted.h"

int main(int argc, char** argv) {
  using namespace dar;
  using bench::Table;

  size_t n = bench::ArgOr(argc, argv, 1, 60000);
  uint64_t seed = bench::ArgOr(argc, argv, 2, 33);
  if (bench::QuickMode()) n = std::min<size_t>(n, 20000);

  const size_t kAttrs = 8, kClusters = 10;
  PlantedDataSpec spec = WbcdLikeSpec(kAttrs, kClusters, 0.1, seed);
  auto data = GeneratePlanted(spec, n, seed + 1);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  const double slot = 1000.0 / kClusters;
  const size_t planted_total = kAttrs * kClusters;

  std::cout << "=== Ablation: global refinement pass vs. fragmentation ===\n"
            << n << " tuples, " << kAttrs << " attrs x " << kClusters
            << " planted clusters (" << planted_total << " total)\n\n";
  Table table({"d0/sigma", "refine", "raw.ACFs", "drift%", "seconds"});
  table.PrintHeader();

  double sigma = spec.parts[0].clusters[0].stddev;
  for (double factor : {2.0, 3.0, 5.0, 8.0}) {
    for (bool refine : {false, true}) {
      DarConfig config;
      config.memory_budget_bytes = 32u << 20;
      config.frequency_fraction = 0.02;
      config.initial_diameters.assign(kAttrs, factor * sigma);
      config.refine_clusters = refine;
      auto session = Session::Builder().WithConfig(config).Build();
      if (!session.ok()) {
        std::cerr << session.status() << "\n";
        return 1;
      }
      auto phase1 = session->RunPhase1(data->relation, data->partition);
      if (!phase1.ok()) {
        std::cerr << phase1.status() << "\n";
        return 1;
      }
      size_t raw = 0;
      for (size_t c : phase1->raw_cluster_counts) raw += c;
      double drift = 0;
      for (const auto& c : phase1->clusters.clusters()) {
        double centroid = c.acf.Centroid()[0];
        double best = 1e18;
        for (const auto& planted : spec.parts[c.part].clusters) {
          best = std::min(best, std::fabs(planted.center[0] - centroid));
        }
        drift += best;
      }
      drift = phase1->clusters.size() > 0
                  ? 100.0 * drift / phase1->clusters.size() / slot
                  : 0.0;
      table.PrintRow(factor, refine ? "on" : "off", raw, drift,
                     phase1->seconds);
    }
  }
  std::cout << "\nAt tight thresholds the tree fragments planted clusters "
               "(raw counts well above\nthe planted " << planted_total
            << "); the refinement pass repairs the fragmentation at "
               "negligible cost,\nbringing counts back to the planted "
               "structure and reducing drift.\n";
  return 0;
}
