// Ablation B (§6.2 "Reducing the cost of Phase II"): clustering-graph
// construction with and without the density-image pruning heuristic.
// Under D2, D(A, B) >= max(radius(A), radius(B)), so any image whose
// radius already exceeds the density threshold can be skipped without
// evaluating distances. The result (edge set) must be identical.
//
// Usage: ablation_phase2_pruning [n] [seed]

#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/clustering_graph.h"
#include "core/session.h"
#include "datagen/planted.h"

int main(int argc, char** argv) {
  using namespace dar;
  using bench::Table;

  size_t n = bench::ArgOr(argc, argv, 1, 100000);
  uint64_t seed = bench::ArgOr(argc, argv, 2, 13);
  if (bench::QuickMode()) n = std::min<size_t>(n, 30000);

  auto spec_or = WbcdPartialPatternSpec(30, 35, 90, 6, 0.2, seed);
  if (!spec_or.ok()) {
    std::cerr << spec_or.status() << "\n";
    return 1;
  }
  auto data = GeneratePlanted(*spec_or, n, seed + 1);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }

  DarConfig config;
  // Memory budget: the paper used 5 MB on a 1997 Sparc 10 with ~750-byte
  // ACFs (CF + 29 ls/ss pairs). Our ACFs also carry per-dimension min/max
  // and square sums (~6.3x larger), so the equivalent memory pressure is
  // ~32 MB; see EXPERIMENTS.md.
  config.memory_budget_bytes = 32u << 20;
  config.frequency_fraction = 0.005;
  auto session = Session::Builder().WithConfig(config).Build();
  if (!session.ok()) {
    std::cerr << session.status() << "\n";
    return 1;
  }
  auto phase1 = session->RunPhase1(data->relation, data->partition);
  if (!phase1.ok()) {
    std::cerr << phase1.status() << "\n";
    return 1;
  }
  std::cout << "=== Ablation: Phase-II comparison pruning (Sec 6.2) ===\n"
            << phase1->clusters.size() << " frequent clusters from " << n
            << " tuples\n\n";

  Table table({"pruning", "pairs.eval", "pairs.skip", "edges", "seconds"});
  table.PrintHeader();

  size_t edges_with = 0, edges_without = 0;
  for (bool prune : {false, true}) {
    ClusteringGraphOptions opts;
    opts.metric = ClusterMetric::kD2AvgInter;
    opts.prune_low_density_images = prune;
    (void)phase1->effective_d0;
    opts.d0.assign(phase1->effective_d0.size(), 250.0);  // image scale
    Stopwatch watch;
    ClusteringGraph graph(phase1->clusters, opts);
    double seconds = watch.ElapsedSeconds();
    table.PrintRow(prune ? "on" : "off", graph.comparisons_made(),
                   graph.comparisons_skipped(), graph.num_edges(), seconds);
    (prune ? edges_with : edges_without) = graph.num_edges();
  }
  std::cout << (edges_with == edges_without
                    ? "\n[OK] identical edge sets - the heuristic is exact "
                      "under D2\n"
                    : "\n[FAIL] pruning changed the result\n");
  return edges_with == edges_without ? 0 : 1;
}
