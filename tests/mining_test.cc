// End-to-end mining behavior through the dar::Session facade (formerly
// miner_test.cc, which exercised the removed DarMiner shim).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "core/session.h"
#include "datagen/fixtures.h"
#include "datagen/planted.h"

namespace dar {
namespace {

DarConfig SmallConfig() {
  DarConfig config;
  config.memory_budget_bytes = 8u << 20;
  config.frequency_fraction = 0.05;
  config.degree_threshold = 10.0;
  config.phase2_leniency = 2.0;
  return config;
}

Session MakeSession(const DarConfig& config) {
  auto session = Session::Builder().WithConfig(config).Build();
  return std::move(session).ValueOrDie();
}

TEST(MiningTest, RejectsEmptyInput) {
  Schema s = *Schema::Make({{"a", AttributeKind::kInterval}});
  Relation rel(s);
  AttributePartition part = AttributePartition::SingletonPartition(s);
  Session session = MakeSession(SmallConfig());
  EXPECT_TRUE(session.Mine(rel, part).status().IsInvalidArgument());
}

TEST(MiningTest, RejectsBadFrequencyFraction) {
  DarConfig config = SmallConfig();
  config.frequency_fraction = 0;
  // The bad knob is refused at session construction, before any data.
  auto session = Session::Builder().WithConfig(config).Build();
  EXPECT_TRUE(session.status().IsInvalidArgument());
}

TEST(MiningTest, Phase1FindsPlantedClusters) {
  PlantedDataSpec spec = WbcdLikeSpec(/*num_attrs=*/4, /*clusters_per_attr=*/3,
                                      /*outlier_fraction=*/0.0, /*seed=*/1);
  auto data = GeneratePlanted(spec, 3000, /*seed=*/2);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(4, 80.0);  // slot width is ~333, sigma ~13
  Session session = MakeSession(config);
  auto phase1 = session.RunPhase1(data->relation, data->partition);
  ASSERT_TRUE(phase1.ok());
  // Expect exactly 3 frequent clusters per part.
  for (size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(phase1->clusters.ClustersOnPart(p).size(), 3u) << "part " << p;
  }
  // Cluster centroids near planted centers.
  for (const auto& c : phase1->clusters.clusters()) {
    double centroid = c.acf.Centroid()[0];
    double best = 1e18;
    for (const auto& planted : spec.parts[c.part].clusters) {
      best = std::min(best, std::fabs(planted.center[0] - centroid));
    }
    EXPECT_LT(best, 10.0);
  }
  EXPECT_EQ(phase1->frequency_threshold, 150);
  EXPECT_EQ(phase1->tree_stats.size(), 4u);
}

TEST(MiningTest, Phase1MassAccounting) {
  PlantedDataSpec spec = WbcdLikeSpec(3, 3, 0.1, 3);
  auto data = GeneratePlanted(spec, 2000, 4);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(3, 80.0);
  Session session = MakeSession(config);
  auto phase1 = session.RunPhase1(data->relation, data->partition);
  ASSERT_TRUE(phase1.ok());
  for (const auto& stats : phase1->tree_stats) {
    EXPECT_EQ(stats.points_inserted, 2000);
  }
}

TEST(MiningTest, EndToEndRecoversPlantedRules) {
  // 3 attributes, 3 aligned patterns: every cluster pair within a pattern
  // is a planted 1:1 rule.
  PlantedDataSpec spec = WbcdLikeSpec(3, 3, 0.05, 5);
  auto data = GeneratePlanted(spec, 4000, 6);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(3, 80.0);
  config.degree_threshold = 150.0;
  Session session = MakeSession(config);
  auto result = session.Mine(data->relation, data->partition);
  ASSERT_TRUE(result.ok());

  const ClusterSet& clusters = result->phase1().clusters;
  // For every pattern k and attribute pair (p, q), some rule must connect
  // the cluster near center k of p to the cluster near center k of q.
  auto cluster_near = [&](size_t part, double center) -> int64_t {
    for (size_t id : clusters.ClustersOnPart(part)) {
      if (std::fabs(clusters.cluster(id).acf.Centroid()[0] - center) < 15) {
        return static_cast<int64_t>(id);
      }
    }
    return -1;
  };
  size_t planted_found = 0, planted_total = 0;
  for (size_t k = 0; k < 3; ++k) {
    for (size_t p = 0; p < 3; ++p) {
      for (size_t q = 0; q < 3; ++q) {
        if (p == q) continue;
        ++planted_total;
        int64_t a = cluster_near(p, spec.parts[p].clusters[k].center[0]);
        int64_t b = cluster_near(q, spec.parts[q].clusters[k].center[0]);
        if (a < 0 || b < 0) continue;
        for (const auto& rule : result->rules()) {
          if (rule.antecedent == std::vector<size_t>{size_t(a)} &&
              rule.consequent == std::vector<size_t>{size_t(b)}) {
            ++planted_found;
            break;
          }
        }
      }
    }
  }
  EXPECT_EQ(planted_found, planted_total);

  // No rule may connect clusters from *different* patterns (they never
  // co-occur, so no clique contains both).
  for (const auto& rule : result->rules()) {
    std::set<int> patterns;
    for (const auto* side : {&rule.antecedent, &rule.consequent}) {
      for (size_t id : *side) {
        const FoundCluster& c = clusters.cluster(id);
        double centroid = c.acf.Centroid()[0];
        for (size_t k = 0; k < 3; ++k) {
          if (std::fabs(spec.parts[c.part].clusters[k].center[0] - centroid) <
              15) {
            patterns.insert(static_cast<int>(k));
          }
        }
      }
    }
    EXPECT_LE(patterns.size(), 1u);
  }
}

TEST(MiningTest, DegreeThresholdMonotone) {
  PlantedDataSpec spec = WbcdLikeSpec(3, 3, 0.05, 7);
  auto data = GeneratePlanted(spec, 2000, 8);
  ASSERT_TRUE(data.ok());
  auto rules_at = [&](double degree) {
    DarConfig config = SmallConfig();
    config.initial_diameters.assign(3, 80.0);
    config.degree_threshold = degree;
    Session session = MakeSession(config);
    auto result = session.Mine(data->relation, data->partition);
    EXPECT_TRUE(result.ok());
    return result->rules().size();
  };
  EXPECT_LE(rules_at(1.0), rules_at(50.0));
}

TEST(MiningTest, RulesSortedByDegree) {
  PlantedDataSpec spec = WbcdLikeSpec(3, 3, 0.05, 9);
  auto data = GeneratePlanted(spec, 2000, 10);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(3, 80.0);
  config.degree_threshold = 100.0;
  Session session = MakeSession(config);
  auto result = session.Mine(data->relation, data->partition);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->rules().size(), 1u);
  for (size_t i = 1; i < result->rules().size(); ++i) {
    EXPECT_LE(result->rules()[i - 1].degree, result->rules()[i].degree);
  }
}

TEST(MiningTest, SupportCountingMatchesPlantedPatternSizes) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 2, 0.0, 11);
  auto data = GeneratePlanted(spec, 1000, 12);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(2, 80.0);
  config.degree_threshold = 60.0;
  config.count_rule_support = true;
  Session session = MakeSession(config);
  auto result = session.Mine(data->relation, data->partition);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->rules().empty());
  // Pattern sizes: roughly 500 each; every 1:1 rule within a pattern
  // should have support close to the pattern size.
  int64_t pattern0 = 0, pattern1 = 0;
  for (int32_t p : data->pattern_of_row) {
    if (p == 0) ++pattern0;
    if (p == 1) ++pattern1;
  }
  for (const auto& rule : result->rules()) {
    ASSERT_GE(rule.support_count, 0);
    bool near0 = std::llabs(rule.support_count - pattern0) < 50;
    bool near1 = std::llabs(rule.support_count - pattern1) < 50;
    EXPECT_TRUE(near0 || near1) << rule.support_count;
  }
}

TEST(MiningTest, OutlierFractionProducesOutliers) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 3, 0.25, 13);
  auto data = GeneratePlanted(spec, 4000, 14);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  // Small budget so rebuilds (and outlier paging) happen.
  config.memory_budget_bytes = 64u << 10;
  config.outlier_fraction = 0.5;
  Session session = MakeSession(config);
  auto phase1 = session.RunPhase1(data->relation, data->partition);
  ASSERT_TRUE(phase1.ok());
  bool rebuilt = false;
  for (const auto& stats : phase1->tree_stats) {
    if (stats.rebuild_count > 0) rebuilt = true;
  }
  EXPECT_TRUE(rebuilt);
}

TEST(MiningTest, EffectiveD0UsesOverrides) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 2, 0.0, 15);
  auto data = GeneratePlanted(spec, 500, 16);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.density_thresholds = {7.5, 0.0};  // override part 0 only
  config.initial_diameters.assign(2, 80.0);
  Session session = MakeSession(config);
  auto phase1 = session.RunPhase1(data->relation, data->partition);
  ASSERT_TRUE(phase1.ok());
  EXPECT_DOUBLE_EQ(phase1->effective_d0[0], 7.5);
  EXPECT_GT(phase1->effective_d0[1], 0.0);  // derived
}

TEST(MiningTest, PartWithoutFrequentClustersIsOmitted) {
  // §4.3.2: "If for some X_i there are no frequent clusters, we omit X_i
  // from consideration in Phase II." A uniform attribute at threshold 0
  // produces only infrequent singleton clusters.
  Schema s = *Schema::Make({{"structured", AttributeKind::kInterval},
                            {"uniform", AttributeKind::kInterval}});
  Relation rel(s);
  Rng rng(61);
  for (int i = 0; i < 400; ++i) {
    double structured = (i % 2 == 0) ? 10.0 : 90.0;
    ASSERT_TRUE(rel.AppendRow({structured + rng.Uniform(-0.5, 0.5),
                               rng.Uniform(0, 1e9)})
                    .ok());
  }
  AttributePartition partition = AttributePartition::SingletonPartition(s);
  DarConfig config = SmallConfig();
  config.frequency_fraction = 0.25;
  config.initial_diameters = {2.0, 0.0};
  Session session = MakeSession(config);
  auto result = session.Mine(rel, partition);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->phase1().clusters.ClustersOnPart(0).size(), 2u);
  EXPECT_EQ(result->phase1().clusters.ClustersOnPart(1).size(), 0u);
  // No rule may mention part 1.
  for (const auto& rule : result->rules()) {
    for (const auto* side : {&rule.antecedent, &rule.consequent}) {
      for (size_t id : *side) {
        EXPECT_EQ(result->phase1().clusters.cluster(id).part, 0u);
      }
    }
  }
}

TEST(MiningTest, MultiDimensionalPartEndToEnd) {
  // Cluster on a 2-d Lat+Lon part, rules against a 1-d attribute.
  Schema s = *Schema::Make({{"lat", AttributeKind::kInterval},
                            {"lon", AttributeKind::kInterval},
                            {"price", AttributeKind::kInterval}});
  Relation rel(s);
  Rng rng(62);
  for (int i = 0; i < 600; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(rel.AppendRow({40 + rng.Gaussian(0, 0.2),
                                 -74 + rng.Gaussian(0, 0.2),
                                 3000 + rng.Gaussian(0, 100)})
                      .ok());
    } else {
      ASSERT_TRUE(rel.AppendRow({52 + rng.Gaussian(0, 0.2),
                                 13 + rng.Gaussian(0, 0.2),
                                 1200 + rng.Gaussian(0, 100)})
                      .ok());
    }
  }
  auto partition = AttributePartition::Make(
      s, {{{"lat", "lon"}, MetricKind::kEuclidean},
          {{"price"}, MetricKind::kEuclidean}});
  ASSERT_TRUE(partition.ok());
  DarConfig config = SmallConfig();
  config.frequency_fraction = 0.2;
  config.initial_diameters = {2.0, 400.0};
  config.degree_threshold = 500.0;
  Session session = MakeSession(config);
  auto result = session.Mine(rel, *partition);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->phase1().clusters.ClustersOnPart(0).size(), 2u);
  // A rule city-cluster => price-cluster must exist.
  bool found = false;
  for (const auto& rule : result->rules()) {
    if (rule.antecedent.size() == 1 && rule.consequent.size() == 1 &&
        result->phase1().clusters.cluster(rule.antecedent[0]).part == 0 &&
        result->phase1().clusters.cluster(rule.consequent[0]).part == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MiningTest, MixedNominalIntervalMining) {
  // The paper's mixed-variable-data direction (conclusions): a nominal Job
  // attribute under the discrete metric mined together with an interval
  // Salary attribute. Job clusters are exact values (Thm 5.1) and rules
  // link them to salary clusters.
  Schema s = *Schema::Make({{"job", AttributeKind::kNominal},
                            {"salary", AttributeKind::kInterval}});
  Relation rel(s);
  Rng rng(63);
  for (int i = 0; i < 300; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(rel.AppendRow({0, 40000 + rng.Gaussian(0, 500)}).ok());
    } else {
      ASSERT_TRUE(rel.AppendRow({1, 90000 + rng.Gaussian(0, 500)}).ok());
    }
  }
  AttributePartition partition = AttributePartition::SingletonPartition(s);
  DarConfig config = SmallConfig();
  config.frequency_fraction = 0.3;
  config.initial_diameters = {0.0, 2000.0};
  config.degree_threshold = 2000.0;
  config.density_thresholds = {0.4, 1500.0};
  Session session = MakeSession(config);
  auto result = session.Mine(rel, partition);
  ASSERT_TRUE(result.ok());
  const ClusterSet& clusters = result->phase1().clusters;
  ASSERT_EQ(clusters.ClustersOnPart(0).size(), 2u);  // two job values
  for (size_t id : clusters.ClustersOnPart(0)) {
    EXPECT_DOUBLE_EQ(clusters.cluster(id).acf.Diameter(), 0.0);  // Thm 5.1
  }
  // Expect a rule job-cluster => salary-cluster with a small degree (jobs
  // determine salaries exactly here).
  bool found = false;
  for (const auto& rule : result->rules()) {
    if (rule.antecedent.size() == 1 && rule.consequent.size() == 1 &&
        clusters.cluster(rule.antecedent[0]).part == 0 &&
        clusters.cluster(rule.consequent[0]).part == 1) {
      found = true;
      EXPECT_LT(rule.degree, 1500.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MiningTest, CliqueTruncationSurfacesInPhase2) {
  PlantedDataSpec spec = WbcdLikeSpec(3, 3, 0.0, 19);
  auto data = GeneratePlanted(spec, 1000, 20);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(3, 80.0);
  config.max_cliques = 2;  // below the 3 planted pattern cliques
  Session session = MakeSession(config);
  auto result = session.Mine(data->relation, data->partition);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->phase2().cliques_truncated);
  EXPECT_LE(result->phase2().cliques.size(), 2u);
  // The legacy bool is the OR of the two distinct signals; here the cap
  // (not the step budget) is what fired, and the split surfaces that.
  EXPECT_TRUE(result->phase2().clique_cap_truncated);
  EXPECT_FALSE(result->phase2().clique_steps_truncated);
}

TEST(MiningTest, DescribeUsesBoundingBox) {
  PlantedDataSpec spec = WbcdLikeSpec(2, 2, 0.0, 17);
  auto data = GeneratePlanted(spec, 500, 18);
  ASSERT_TRUE(data.ok());
  DarConfig config = SmallConfig();
  config.initial_diameters.assign(2, 80.0);
  Session session = MakeSession(config);
  auto phase1 = session.RunPhase1(data->relation, data->partition);
  ASSERT_TRUE(phase1.ok());
  ASSERT_GT(phase1->clusters.size(), 0u);
  std::string desc = phase1->clusters.Describe(0, data->relation.schema(),
                                               data->partition);
  EXPECT_NE(desc.find("attr"), std::string::npos);
  EXPECT_NE(desc.find("in ["), std::string::npos);
}

}  // namespace
}  // namespace dar
