// Verifies the paper's formal connections between distance-based and
// classical association rules (§5.1, Theorems 5.1 and 5.2), plus the
// Figure-2 semantics they support.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "birch/metrics.h"
#include "common/random.h"
#include "core/session.h"
#include "core/rule_gen.h"
#include "datagen/fixtures.h"

namespace dar {
namespace {

// Builds, for nominal column pair (A, B) of a relation, the clusters
// C_A = {t : t[A] = a} and C_B = {t : t[B] = b} as ACFs over a two-part
// discrete layout — the Theorem 5.1/5.2 construction.
struct NominalClusters {
  std::shared_ptr<const AcfLayout> layout;
  std::map<double, Acf> on_a;
  std::map<double, Acf> on_b;
};

NominalClusters BuildNominalClusters(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  NominalClusters out;
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kDiscrete, "A"},
                   {1, MetricKind::kDiscrete, "B"}};
  out.layout = layout;
  for (size_t i = 0; i < a.size(); ++i) {
    PartedRow row = {{a[i]}, {b[i]}};
    auto [ita, _a] = out.on_a.try_emplace(a[i], Acf(layout, 0));
    ita->second.AddRow(row);
    auto [itb, _b] = out.on_b.try_emplace(b[i], Acf(layout, 1));
    itb->second.AddRow(row);
  }
  return out;
}

TEST(Theorem51Test, DiameterZeroIffSingleValued) {
  // Clusters built per value have diameter 0 on their own attribute...
  NominalClusters nc = BuildNominalClusters({1, 1, 2, 3}, {5, 6, 5, 5});
  for (const auto& [value, acf] : nc.on_a) {
    EXPECT_DOUBLE_EQ(acf.cf().Diameter(), 0.0);
  }
  // ...while any mixed-value cluster has positive diameter.
  Acf mixed(nc.layout, 0);
  mixed.AddRow({{1}, {5}});
  mixed.AddRow({{2}, {5}});
  EXPECT_GT(mixed.cf().Diameter(), 0.0);
}

TEST(Theorem52Test, PaperExampleExact) {
  // A = a for rows 0-4; B = b for rows 0-2: confidence(A=a => B=b) = 3/5,
  // so D2(C_B[B], C_A[B]) must be 1 - 3/5 = 0.4.
  std::vector<double> a = {7, 7, 7, 7, 7};
  std::vector<double> b = {1, 1, 1, 2, 3};
  NominalClusters nc = BuildNominalClusters(a, b);
  const Acf& ca = nc.on_a.at(7);
  const Acf& cb = nc.on_b.at(1);
  double degree = ClusterDistance(cb.image(1), ca.image(1),
                                  ClusterMetric::kD2AvgInter);
  EXPECT_NEAR(degree, 1.0 - 3.0 / 5.0, 1e-12);
}

TEST(Theorem52Test, HoldsOnRandomNominalRelations) {
  Rng rng(90);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(5, 60));
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<double>(rng.UniformInt(0, 3));
      b[i] = static_cast<double>(rng.UniformInt(0, 3));
    }
    NominalClusters nc = BuildNominalClusters(a, b);
    for (const auto& [va, ca] : nc.on_a) {
      for (const auto& [vb, cb] : nc.on_b) {
        // Classical confidence of A=va => B=vb.
        size_t count_a = 0, count_ab = 0;
        for (size_t i = 0; i < n; ++i) {
          if (a[i] == va) {
            ++count_a;
            if (b[i] == vb) ++count_ab;
          }
        }
        double confidence = static_cast<double>(count_ab) / count_a;
        double degree = ClusterDistance(cb.image(1), ca.image(1),
                                        ClusterMetric::kD2AvgInter);
        EXPECT_NEAR(degree, 1.0 - confidence, 1e-9)
            << "trial " << trial << " a=" << va << " b=" << vb;
      }
    }
  }
}

// --- Figure 2: same support/confidence, different distance semantics ---

struct Fig2Measures {
  double support = 0;
  double confidence = 0;
  double degree = 0;  // D2(C_Salary40K[Salary], C_{DBA,30}[Salary])
};

Fig2Measures MeasureFig2(const CsvTable& table) {
  const Relation& rel = table.relation;
  Fig2Measures m;
  double dba = *table.dictionaries[0].Lookup("DBA");
  size_t matching = 0, antecedent = 0;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    bool is_ant = rel.at(r, 0) == dba && rel.at(r, 1) == 30;
    if (is_ant) ++antecedent;
    if (is_ant && rel.at(r, 2) == 40000) ++matching;
  }
  m.support = static_cast<double>(matching) / rel.num_rows();
  m.confidence = static_cast<double>(matching) / antecedent;

  // Distance-based view: antecedent cluster = the 30-year-old DBAs,
  // consequent cluster = the tuples earning exactly 40K, degree = the
  // Euclidean D2 between salary images.
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kDiscrete, "JobAge"},
                   {1, MetricKind::kEuclidean, "Salary"}};
  Acf ant(layout, 0), cons(layout, 1);
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    PartedRow row = {{rel.at(r, 0)}, {rel.at(r, 2)}};
    if (rel.at(r, 0) == dba && rel.at(r, 1) == 30) ant.AddRow(row);
    if (rel.at(r, 2) == 40000) cons.AddRow(row);
  }
  m.degree = ClusterDistance(cons.image(1), ant.image(1),
                             ClusterMetric::kD2AvgInter);
  return m;
}

TEST(Figure2Test, ClassicalMeasuresIdenticalAcrossR1R2) {
  Fig2Measures m1 = MeasureFig2(Fig2RelationR1());
  Fig2Measures m2 = MeasureFig2(Fig2RelationR2());
  EXPECT_DOUBLE_EQ(m1.support, 0.5);
  EXPECT_DOUBLE_EQ(m2.support, 0.5);
  EXPECT_DOUBLE_EQ(m1.confidence, 0.6);
  EXPECT_DOUBLE_EQ(m2.confidence, 0.6);
}

TEST(Figure2Test, DistanceDegreeStrongerInR2) {
  // Goal 2/3: the rule should rate higher (smaller degree) in R2, where
  // the non-matching salaries are 41K/42K instead of 90K/100K.
  Fig2Measures m1 = MeasureFig2(Fig2RelationR1());
  Fig2Measures m2 = MeasureFig2(Fig2RelationR2());
  EXPECT_LT(m2.degree, m1.degree);
  EXPECT_LT(m2.degree, 0.2 * m1.degree);  // dramatically stronger, not just
}

// --- Figure 4: confidence vs distance ranking ---

TEST(Figure4Test, DistanceReversesConfidenceRanking) {
  Fig4Options opts;
  auto data = MakeFig4Dataset(opts);
  ASSERT_TRUE(data.ok());
  const Relation& rel = data->relation;

  // Identify cluster memberships by construction: C_X = x within 2 of 50,
  // C_Y = y within 2 of 50.
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "X"},
                   {1, MetricKind::kEuclidean, "Y"}};
  Acf cx(layout, 0), cy(layout, 1);
  size_t nx = 0, ny = 0, nxy = 0;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    bool in_x = std::fabs(rel.at(r, 0) - 50) < 2;
    bool in_y = std::fabs(rel.at(r, 1) - 50) < 2;
    PartedRow row = {{rel.at(r, 0)}, {rel.at(r, 1)}};
    if (in_x) {
      cx.AddRow(row);
      ++nx;
    }
    if (in_y) {
      cy.AddRow(row);
      ++ny;
    }
    if (in_x && in_y) ++nxy;
  }
  ASSERT_EQ(nx, 12u);
  ASSERT_EQ(ny, 13u);
  ASSERT_EQ(nxy, 10u);

  double conf_x_to_y = static_cast<double>(nxy) / nx;  // 10/12
  double conf_y_to_x = static_cast<double>(nxy) / ny;  // 10/13
  EXPECT_GT(conf_x_to_y, conf_y_to_x);

  // Distance degree: CX => CY looks at Y images; the 2 CX-only points are
  // far on Y. CY => CX looks at X images; the 3 CY-only points are near.
  double degree_x_to_y = ClusterDistance(cy.image(1), cx.image(1),
                                         ClusterMetric::kD2AvgInter);
  double degree_y_to_x = ClusterDistance(cx.image(0), cy.image(0),
                                         ClusterMetric::kD2AvgInter);
  EXPECT_LT(degree_y_to_x, degree_x_to_y);
}

}  // namespace
}  // namespace dar
