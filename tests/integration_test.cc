// End-to-end scenarios exercising the full public API the way the examples
// and benches do: CSV input -> partition -> dar::Session -> printed rules.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <tuple>

#include "common/random.h"
#include "core/generalized_qar.h"
#include "core/session.h"
#include "datagen/fixtures.h"
#include "datagen/planted.h"
#include "qar/qar_miner.h"
#include "relation/csv.h"

namespace dar {
namespace {

TEST(IntegrationTest, CsvToRulesPipeline) {
  // Small correlated dataset through the whole pipeline via CSV.
  std::ostringstream csv;
  csv << "age,salary\n";
  Rng rng(201);
  for (int i = 0; i < 300; ++i) {
    if (i % 2 == 0) {
      csv << 30 + rng.UniformInt(-2, 2) << "," << 40000 + rng.UniformInt(-500, 500)
          << "\n";
    } else {
      csv << 55 + rng.UniformInt(-2, 2) << "," << 90000 + rng.UniformInt(-500, 500)
          << "\n";
    }
  }
  std::istringstream in(csv.str());
  auto table = ReadCsv(in);
  ASSERT_TRUE(table.ok());
  AttributePartition partition =
      AttributePartition::SingletonPartition(table->relation.schema());

  DarConfig config;
  config.frequency_fraction = 0.1;
  config.initial_diameters = {4.0, 2000.0};
  config.degree_threshold = 3000.0;
  auto session = Session::Builder().WithConfig(config).Build();
  ASSERT_TRUE(session.ok());
  auto result = session->Mine(table->relation, partition);
  ASSERT_TRUE(result.ok());

  // Expect a rule linking the age-30 cluster to the salary-40K cluster.
  const ClusterSet& clusters = result->phase1().clusters;
  bool found = false;
  for (const auto& rule : result->rules()) {
    if (rule.antecedent.size() != 1 || rule.consequent.size() != 1) continue;
    const FoundCluster& a = clusters.cluster(rule.antecedent[0]);
    const FoundCluster& c = clusters.cluster(rule.consequent[0]);
    if (a.part == 0 && std::fabs(a.acf.Centroid()[0] - 30) < 3 &&
        c.part == 1 && std::fabs(c.acf.Centroid()[0] - 40000) < 1000) {
      found = true;
      EXPECT_LT(rule.degree, 1500);
      std::string s =
          rule.ToString(clusters, table->relation.schema(), partition);
      EXPECT_NE(s.find("age"), std::string::npos);
      EXPECT_NE(s.find("salary"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(IntegrationTest, InsuranceN1Rules) {
  // The §5.2 motivating scenario: find N:1 rules targeting Claims.
  auto data = GeneratePlanted(InsuranceSpec(), 5000, 77);
  ASSERT_TRUE(data.ok());
  DarConfig config;
  config.frequency_fraction = 0.08;
  config.initial_diameters = {9.0, 1.2, 2200.0};
  config.degree_threshold = 2500.0;
  config.count_rule_support = true;
  auto session = Session::Builder().WithConfig(config).Build();
  ASSERT_TRUE(session.ok());
  auto result = session->Mine(data->relation, data->partition);
  ASSERT_TRUE(result.ok());

  const ClusterSet& clusters = result->phase1().clusters;
  // Look for AgeMid AND DependentsHigh => ClaimsHigh.
  bool found = false;
  for (const auto& rule : result->rules()) {
    if (rule.consequent.size() != 1 || rule.antecedent.size() != 2) continue;
    const FoundCluster& y = clusters.cluster(rule.consequent[0]);
    if (y.part != 2) continue;
    if (std::fabs(y.acf.Centroid()[0] - 12000) > 2000) continue;
    bool has_age = false, has_dep = false;
    for (size_t id : rule.antecedent) {
      const FoundCluster& x = clusters.cluster(id);
      if (x.part == 0 && std::fabs(x.acf.Centroid()[0] - 44) < 4) {
        has_age = true;
      }
      if (x.part == 1 && std::fabs(x.acf.Centroid()[0] - 3.5) < 1.0) {
        has_dep = true;
      }
    }
    if (has_age && has_dep) {
      // Pattern 0 holds ~37% of the 5000 tuples; BIRCH's order-dependent
      // insertion may fragment a planted cluster, so any one matching rule
      // carries a substantial fraction of that mass, not all of it.
      if (rule.support_count > 600) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(IntegrationTest, DarVsGeneralizedQarAgreeOnStructure) {
  // Both miners should link clusters of the same planted pattern.
  PlantedDataSpec spec = WbcdLikeSpec(3, 3, 0.05, 31);
  auto data = GeneratePlanted(spec, 3000, 32);
  ASSERT_TRUE(data.ok());
  DarConfig config;
  config.frequency_fraction = 0.05;
  config.initial_diameters.assign(3, 80.0);
  config.degree_threshold = 150.0;

  auto dar_session = Session::Builder().WithConfig(config).Build();
  ASSERT_TRUE(dar_session.ok());
  auto dar_result = dar_session->Mine(data->relation, data->partition);
  ASSERT_TRUE(dar_result.ok());
  GeneralizedQarMiner gq_miner(config, 0.7);
  auto gq_result = gq_miner.Mine(data->relation, data->partition);
  ASSERT_TRUE(gq_result.ok());

  EXPECT_FALSE(dar_result->rules().empty());
  EXPECT_FALSE(gq_result->rules.empty());

  // Count 1:1 structural pairs (part_a, centroid bucket) linked by each.
  auto pair_key = [&](const ClusterSet& cs, size_t a, size_t b) {
    const FoundCluster& ca = cs.cluster(a);
    const FoundCluster& cb = cs.cluster(b);
    auto bucket = [](double v) { return static_cast<int>(v / 100); };
    return std::tuple(ca.part, bucket(ca.acf.Centroid()[0]), cb.part,
                      bucket(cb.acf.Centroid()[0]));
  };
  std::set<std::tuple<size_t, int, size_t, int>> dar_pairs, gq_pairs;
  for (const auto& rule : dar_result->rules()) {
    if (rule.antecedent.size() == 1 && rule.consequent.size() == 1) {
      dar_pairs.insert(pair_key(dar_result->phase1().clusters,
                                rule.antecedent[0], rule.consequent[0]));
    }
  }
  for (const auto& rule : gq_result->rules) {
    if (rule.antecedent.size() == 1 && rule.consequent.size() == 1) {
      gq_pairs.insert(pair_key(gq_result->phase1.clusters, rule.antecedent[0],
                               rule.consequent[0]));
    }
  }
  // Every generalized-QAR pair should also be a DAR pair here (perfectly
  // aligned planted data).
  for (const auto& key : gq_pairs) {
    EXPECT_TRUE(dar_pairs.count(key));
  }
}

TEST(IntegrationTest, EquiDepthQarBaselineRunsOnSameData) {
  auto data = GeneratePlanted(InsuranceSpec(), 2000, 33);
  ASSERT_TRUE(data.ok());
  QarOptions opts;
  opts.min_support = 0.1;
  opts.min_confidence = 0.6;
  opts.max_base_intervals = 10;
  opts.max_itemset_size = 2;
  QarMiner qar(opts);
  auto result = qar.Mine(data->relation);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->rules.empty());
}

TEST(IntegrationTest, MemoryBudgetSweepKeepsMassAndShrinksClusters) {
  PlantedDataSpec spec = WbcdLikeSpec(4, 8, 0.1, 34);
  auto data = GeneratePlanted(spec, 6000, 35);
  ASSERT_TRUE(data.ok());
  size_t clusters_small = 0, clusters_large = 0;
  for (size_t budget : {size_t(96) << 10, size_t(16) << 20}) {
    DarConfig config;
    config.memory_budget_bytes = budget;
    config.frequency_fraction = 0.02;
    auto session = Session::Builder().WithConfig(config).Build();
    ASSERT_TRUE(session.ok());
    auto phase1 = session->RunPhase1(data->relation, data->partition);
    ASSERT_TRUE(phase1.ok());
    size_t raw = 0;
    for (size_t c : phase1->raw_cluster_counts) raw += c;
    if (budget == (size_t(96) << 10)) {
      clusters_small = raw;
    } else {
      clusters_large = raw;
    }
  }
  // Less memory => coarser clustering.
  EXPECT_LT(clusters_small, clusters_large);
}

}  // namespace
}  // namespace dar
