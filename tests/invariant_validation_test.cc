#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "birch/acf.h"
#include "birch/acf_tree.h"
#include "birch/cf.h"

namespace dar {

/// Reaches into AcfTree/Acf/CfVector internals so tests can plant precise
/// corruptions that no public API can produce. Befriended by all three.
struct InvariantTestPeer {
  using Node = AcfTree::Node;
  using ChildRef = AcfTree::ChildRef;

  static Node* Root(AcfTree& tree) { return tree.root_.get(); }
  static std::vector<Acf>& Entries(Node* node) { return node->entries; }
  static std::vector<ChildRef>& Children(Node* node) {
    return node->children;
  }
  static Node* FirstLeaf(AcfTree& tree) {
    Node* node = tree.root_.get();
    while (!node->is_leaf) node = node->children.front().child.get();
    return node;
  }
  static CfVector& Image(Acf& acf, size_t part) { return acf.images_[part]; }
  static std::vector<double>& Ls(CfVector& cf) { return cf.ls_; }
  static std::vector<double>& Ss(CfVector& cf) { return cf.ss_; }
  static int64_t& N(CfVector& cf) { return cf.n_; }
};

namespace {

std::shared_ptr<const AcfLayout> TwoPartLayout() {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "x"},
                   {1, MetricKind::kEuclidean, "y"}};
  return layout;
}

AcfTreeOptions SmallNodeOptions() {
  AcfTreeOptions options;
  options.branching_factor = 3;
  options.leaf_capacity = 2;
  options.initial_threshold = 0.0;
  options.memory_budget_bytes = 64u << 20;  // never rebuild in these tests
  return options;
}

// Builds a tree deep enough (>= 2 levels) that every leaf has an internal
// parent whose ChildRef CF the additivity check compares against.
std::unique_ptr<AcfTree> MakeDeepTree(
    const std::shared_ptr<const AcfLayout>& layout) {
  auto tree = std::make_unique<AcfTree>(layout, /*own_part=*/0,
                                        SmallNodeOptions());
  for (int i = 0; i < 40; ++i) {
    PartedRow row = {{static_cast<double>(i)}, {static_cast<double>(2 * i)}};
    Status st = tree->InsertPoint(row);
    EXPECT_TRUE(st.ok()) << st;
  }
  return tree;
}

TEST(ValidateInvariantsTest, CleanTreeValidates) {
  auto layout = TwoPartLayout();
  auto tree_ptr = MakeDeepTree(layout);
  AcfTree& tree = *tree_ptr;
  ASSERT_FALSE(InvariantTestPeer::Root(tree)->is_leaf)
      << "fixture must build a multi-level tree";
  Status st = tree.ValidateInvariants();
  EXPECT_TRUE(st.ok()) << st;
}

TEST(ValidateInvariantsTest, CleanTreeValidatesAfterFinishScan) {
  auto layout = TwoPartLayout();
  auto tree_ptr = MakeDeepTree(layout);
  AcfTree& tree = *tree_ptr;
  ASSERT_TRUE(tree.FinishScan().ok());
  Status st = tree.ValidateInvariants();
  EXPECT_TRUE(st.ok()) << st;
}

TEST(ValidateInvariantsTest, DetectsCorruptedLinearSum) {
  auto layout = TwoPartLayout();
  auto tree_ptr = MakeDeepTree(layout);
  AcfTree& tree = *tree_ptr;
  // Shift one leaf cluster's own-part linear sum: the parent's ChildRef CF
  // no longer equals the merge of the leaf's entries.
  auto* leaf = InvariantTestPeer::FirstLeaf(tree);
  Acf& entry = InvariantTestPeer::Entries(leaf).front();
  InvariantTestPeer::Ls(InvariantTestPeer::Image(entry, 0))[0] += 1000.0;

  Status st = tree.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find("CF additivity violated"), std::string::npos)
      << st;
  EXPECT_EQ(st.message().rfind("root/c", 0), 0u)
      << "message should start with the offending node path: " << st;
}

TEST(ValidateInvariantsTest, DetectsCorruptedCrossAttributeMass) {
  auto layout = TwoPartLayout();
  auto tree_ptr = MakeDeepTree(layout);
  AcfTree& tree = *tree_ptr;
  // Break Eq. 7: the image on part 1 claims to summarize a different number
  // of tuples than the cluster's own CF.
  auto* leaf = InvariantTestPeer::FirstLeaf(tree);
  Acf& entry = InvariantTestPeer::Entries(leaf).front();
  InvariantTestPeer::N(InvariantTestPeer::Image(entry, 1)) += 1;

  Status st = tree.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cross-attribute mass"), std::string::npos)
      << st;
  EXPECT_NE(st.message().find("/img1"), std::string::npos)
      << "message should name the offending image path: " << st;
}

TEST(ValidateInvariantsTest, DetectsCorruptedCrossAttributeSum) {
  auto layout = TwoPartLayout();
  auto tree_ptr = MakeDeepTree(layout);
  AcfTree& tree = *tree_ptr;
  // Shift the part-1 image's linear sum far outside its bounding box; the
  // own-part CFs all still agree, so only the per-image summary check can
  // catch this.
  auto* leaf = InvariantTestPeer::FirstLeaf(tree);
  Acf& entry = InvariantTestPeer::Entries(leaf).front();
  InvariantTestPeer::Ls(InvariantTestPeer::Image(entry, 1))[0] += 1e6;

  Status st = tree.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("outside bounding box"), std::string::npos)
      << st;
  EXPECT_NE(st.message().find("/img1"), std::string::npos) << st;
}

TEST(ValidateInvariantsTest, DetectsNegativeSquaredSum) {
  auto layout = TwoPartLayout();
  auto tree_ptr = MakeDeepTree(layout);
  AcfTree& tree = *tree_ptr;
  auto* leaf = InvariantTestPeer::FirstLeaf(tree);
  Acf& entry = InvariantTestPeer::Entries(leaf).front();
  InvariantTestPeer::Ss(InvariantTestPeer::Image(entry, 1))[0] = -4.0;

  Status st = tree.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("negative squared-sum"), std::string::npos)
      << st;
}

TEST(ValidateInvariantsTest, DetectsOverfullLeaf) {
  auto layout = TwoPartLayout();
  // Depth-1 tree: the root leaf's occupancy is checked directly, before any
  // additivity comparison could fire.
  AcfTreeOptions options = SmallNodeOptions();
  options.leaf_capacity = 4;
  AcfTree tree(layout, /*own_part=*/0, options);
  for (int i = 0; i < 3; ++i) {
    PartedRow row = {{static_cast<double>(i)}, {static_cast<double>(i)}};
    ASSERT_TRUE(tree.InsertPoint(row).ok());
  }
  auto* root = InvariantTestPeer::Root(tree);
  ASSERT_TRUE(root->is_leaf);
  // Duplicate entries until the leaf exceeds its capacity.
  auto& entries = InvariantTestPeer::Entries(root);
  entries.push_back(entries.front());
  entries.push_back(entries.front());

  Status st = tree.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("leaf holds 5 entries"), std::string::npos)
      << st;
  EXPECT_EQ(st.message().rfind("root:", 0), 0u) << st;
}

TEST(ValidateInvariantsTest, DetectsMissingChild) {
  auto layout = TwoPartLayout();
  auto tree_ptr = MakeDeepTree(layout);
  AcfTree& tree = *tree_ptr;
  auto* root = InvariantTestPeer::Root(tree);
  ASSERT_FALSE(root->is_leaf);
  // Drop an entire subtree: the cached node/entry counters and the total
  // mass no longer match a recount.
  InvariantTestPeer::Children(root).pop_back();

  Status st = tree.ValidateInvariants();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("!= recount"), std::string::npos) << st;
}

#ifdef DAR_VALIDATE_INVARIANTS
// When the build validates automatically, a corruption planted between
// operations surfaces as an error from the *next* mutation — no explicit
// ValidateInvariants() call needed.
TEST(ValidateInvariantsTest, AutoValidationCatchesCorruptionOnNextInsert) {
  auto layout = TwoPartLayout();
  auto tree_ptr = MakeDeepTree(layout);
  AcfTree& tree = *tree_ptr;
  auto* leaf = InvariantTestPeer::FirstLeaf(tree);
  Acf& entry = InvariantTestPeer::Entries(leaf).front();
  InvariantTestPeer::Ls(InvariantTestPeer::Image(entry, 0))[0] += 1000.0;

  PartedRow row = {{1e3}, {2e3}};
  Status st = tree.InsertPoint(row);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("CF additivity violated"), std::string::npos)
      << st;
}
#endif  // DAR_VALIDATE_INVARIANTS

}  // namespace
}  // namespace dar
