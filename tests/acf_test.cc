#include "birch/acf.h"

#include <gtest/gtest.h>

#include "birch/metrics.h"
#include "test_util.h"

namespace dar {
namespace {

using testutil::BruteD2Rms;
using testutil::Points;
using testutil::RandomPoints;

std::shared_ptr<const AcfLayout> TwoPartLayout() {
  auto layout = std::make_shared<AcfLayout>();
  layout->parts = {{1, MetricKind::kEuclidean, "X"},
                   {2, MetricKind::kEuclidean, "Y"}};
  return layout;
}

PartedRow Row(double x, double y0, double y1) {
  return {{x}, {y0, y1}};
}

TEST(AcfTest, TracksAllImages) {
  Acf acf(TwoPartLayout(), 0);
  acf.AddRow(Row(1, 10, 20));
  acf.AddRow(Row(3, 30, 40));
  EXPECT_EQ(acf.n(), 2);
  EXPECT_EQ(acf.own_part(), 0u);
  EXPECT_DOUBLE_EQ(acf.cf().ls()[0], 4);
  EXPECT_DOUBLE_EQ(acf.image(1).ls()[0], 40);
  EXPECT_DOUBLE_EQ(acf.image(1).ls()[1], 60);
}

TEST(AcfTest, MergeIsAdditiveOnEveryImage) {
  auto layout = TwoPartLayout();
  Acf a(layout, 0), b(layout, 0), all(layout, 0);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    PartedRow r = Row(rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1));
    a.AddRow(r);
    all.AddRow(r);
  }
  for (int i = 0; i < 6; ++i) {
    PartedRow r = Row(rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1));
    b.AddRow(r);
    all.AddRow(r);
  }
  a.Merge(b);
  EXPECT_EQ(a.n(), all.n());
  for (size_t p = 0; p < 2; ++p) {
    for (size_t d = 0; d < a.image(p).dim(); ++d) {
      EXPECT_NEAR(a.image(p).ls()[d], all.image(p).ls()[d], 1e-9);
      EXPECT_NEAR(a.image(p).ss()[d], all.image(p).ss()[d], 1e-9);
    }
  }
}

TEST(AcfTest, RepresentativityTheorem) {
  // Thm 6.1: any inter-cluster distance on any projection is computable
  // from ACFs alone. Check D(C1[Y], C2[Y]) against brute force where the
  // clusters are defined on X.
  auto layout = TwoPartLayout();
  Acf c1(layout, 0), c2(layout, 0);
  Rng rng(6);
  Points y1, y2;
  for (int i = 0; i < 8; ++i) {
    double a = rng.Uniform(-5, 5), b = rng.Uniform(-5, 5);
    c1.AddRow(Row(rng.Uniform(0, 1), a, b));
    y1.push_back({a, b});
  }
  for (int i = 0; i < 5; ++i) {
    double a = rng.Uniform(-5, 5), b = rng.Uniform(-5, 5);
    c2.AddRow(Row(rng.Uniform(0, 1), a, b));
    y2.push_back({a, b});
  }
  double got =
      ClusterDistance(c1.image(1), c2.image(1), ClusterMetric::kD2AvgInter);
  EXPECT_NEAR(got, BruteD2Rms(y1, y2), 1e-8);
}

TEST(AcfTest, BoundingBoxPerImage) {
  Acf acf(TwoPartLayout(), 0);
  acf.AddRow(Row(1, 10, -3));
  acf.AddRow(Row(5, 2, 9));
  auto own = acf.BoundingBox(0);
  ASSERT_EQ(own.size(), 1u);
  EXPECT_DOUBLE_EQ(own[0].first, 1);
  EXPECT_DOUBLE_EQ(own[0].second, 5);
  auto img = acf.BoundingBox(1);
  ASSERT_EQ(img.size(), 2u);
  EXPECT_DOUBLE_EQ(img[0].first, 2);
  EXPECT_DOUBLE_EQ(img[1].second, 9);
}

TEST(AcfTest, DiameterIsOwnPartDiameter) {
  Acf acf(TwoPartLayout(), 1);
  acf.AddRow(Row(0, 0, 0));
  acf.AddRow(Row(100, 3, 4));
  // Own part is Y (2-d); diameter of two points = their distance = 5.
  EXPECT_NEAR(acf.Diameter(), 5.0, 1e-9);
}

TEST(AcfTest, LayoutApproxBytesPositive) {
  auto layout = TwoPartLayout();
  EXPECT_GT(layout->ApproxAcfBytes(), 0u);
  Acf acf(layout, 0);
  EXPECT_GT(acf.ApproxBytes(), 0u);
}

TEST(AcfTest, ToStringShowsBoxAndCount) {
  Acf acf(TwoPartLayout(), 0);
  acf.AddRow(Row(2, 0, 0));
  std::string s = acf.ToString();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("X"), std::string::npos);
}

}  // namespace
}  // namespace dar
