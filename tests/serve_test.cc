// dar::serve: the versioned QueryService facade (point queries, listings,
// snapshot metadata — all single-generation consistent), the framed binary
// protocol's encode/decode round trips and corruption handling, admission
// quotas, the TCP server end-to-end in both dialects, and snapshot
// hot-swap under concurrent load including a RestoreCheckpoint warm-start
// swap (run under -DDAR_SANITIZE=thread via `ctest -L tsan`).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/session.h"
#include "datagen/planted.h"
#include "persist/wire.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/http_adapter.h"
#include "serve/protocol.h"
#include "serve/query_api.h"
#include "serve/query_service.h"
#include "serve/server.h"
#include "stream/rule_index.h"
#include "stream/rule_snapshot.h"
#include "stream/streaming_miner.h"
#include "stream_test_peer.h"

namespace dar {
namespace {

PlantedDataset TestData(size_t rows = 3000) {
  PlantedDataSpec spec = WbcdLikeSpec(/*num_attrs=*/4, /*clusters_per_attr=*/3,
                                      /*outlier_fraction=*/0.05, /*seed=*/31);
  auto data = GeneratePlanted(spec, rows, 32);
  EXPECT_TRUE(data.ok()) << data.status();
  return *std::move(data);
}

DarConfig TestConfig() {
  DarConfig config;
  config.frequency_fraction = 0.05;
  config.initial_diameters.assign(4, 80.0);
  config.degree_threshold = 150.0;
  config.count_rule_support = false;
  return config;
}

Result<Session> TestSession(int threads = 1) {
  return Session::Builder()
      .WithConfig(TestConfig())
      .WithThreads(threads)
      .Build();
}

// A stream fed `rows` tuples with one published snapshot, plus the
// service bound to it.
struct ServedStream {
  Session session;
  PlantedDataset data;
  std::unique_ptr<StreamingMiner> stream;
};

// Explicit-Remine-only cadence: tests publish generations themselves so
// snapshot contents are fully deterministic.
StreamConfig ManualCadence() {
  StreamConfig config;
  config.remine_every_rows = 0;
  return config;
}

ServedStream MakeServedStream(size_t rows = 3000) {
  auto session = TestSession();
  EXPECT_TRUE(session.ok()) << session.status();
  auto data = TestData(rows);
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    ManualCadence());
  EXPECT_TRUE(stream.ok()) << stream.status();
  EXPECT_TRUE((*stream)->Ingest(data.relation).ok());
  auto snap = (*stream)->Remine();
  EXPECT_TRUE(snap.ok()) << snap.status();
  return ServedStream{*std::move(session), std::move(data),
                      std::move(*stream)};
}

// ---------------------------------------------------------------------
// ServeCode mapping

TEST(ServeCodeTest, StatusRoundTrip) {
  EXPECT_EQ(ServeCodeFromStatus(Status::OK()), ServeCode::kOk);
  EXPECT_EQ(ServeCodeFromStatus(Status::InvalidArgument("x")),
            ServeCode::kInvalidRequest);
  EXPECT_EQ(ServeCodeFromStatus(Status::OutOfRange("x")),
            ServeCode::kInvalidRequest);
  EXPECT_EQ(ServeCodeFromStatus(Status::NotFound("x")), ServeCode::kNotFound);
  EXPECT_EQ(ServeCodeFromStatus(Status::Unavailable("x")),
            ServeCode::kUnavailable);
  EXPECT_EQ(ServeCodeFromStatus(Status::ResourceExhausted("x")),
            ServeCode::kOverloaded);
  EXPECT_EQ(ServeCodeFromStatus(Status::Internal("x")), ServeCode::kInternal);
  EXPECT_EQ(ServeCodeFromStatus(Status::IOError("x")), ServeCode::kInternal);

  for (ServeCode code :
       {ServeCode::kInvalidRequest, ServeCode::kNotFound,
        ServeCode::kUnavailable, ServeCode::kOverloaded,
        ServeCode::kInternal}) {
    const Status status = StatusFromServeCode(code, "m");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(ServeCodeFromStatus(status), code);
    EXPECT_EQ(status.message(), "m");
  }
  EXPECT_TRUE(StatusFromServeCode(ServeCode::kOk, "").ok());
  EXPECT_STREQ(ServeCodeName(ServeCode::kOverloaded), "overloaded");
}

// ---------------------------------------------------------------------
// Protocol round trips

TEST(ProtocolTest, PointQueryRequestRoundTrip) {
  const std::vector<double> tuple = {1.5, -2.0, 3.25};
  PointQueryRequest request;
  request.tuple = tuple;
  request.max_rules = 7;
  persist::WireWriter payload;
  serve::EncodePointQueryRequest(42, request, payload);

  std::vector<double> scratch;
  auto decoded = serve::DecodeRequest(payload.bytes(), scratch);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->header.method, serve::Method::kPointQuery);
  EXPECT_EQ(decoded->header.request_id, 42u);
  EXPECT_EQ(decoded->point.max_rules, 7u);
  ASSERT_EQ(decoded->point.tuple.size(), tuple.size());
  for (size_t i = 0; i < tuple.size(); ++i) {
    EXPECT_EQ(decoded->point.tuple[i], tuple[i]);
  }
}

TEST(ProtocolTest, HelloAndListAndInfoRoundTrip) {
  persist::WireWriter payload;
  std::vector<double> scratch;

  serve::EncodeHelloRequest(1, "tenant-a", payload);
  auto hello = serve::DecodeRequest(payload.bytes(), scratch);
  ASSERT_TRUE(hello.ok()) << hello.status();
  EXPECT_EQ(hello->header.method, serve::Method::kHello);
  EXPECT_EQ(hello->tenant, "tenant-a");

  RuleListRequest list;
  list.offset = 10;
  list.limit = 5;
  list.include_text = true;
  serve::EncodeRuleListRequest(2, list, payload);
  auto decoded_list = serve::DecodeRequest(payload.bytes(), scratch);
  ASSERT_TRUE(decoded_list.ok()) << decoded_list.status();
  EXPECT_EQ(decoded_list->list.offset, 10u);
  EXPECT_EQ(decoded_list->list.limit, 5u);
  EXPECT_TRUE(decoded_list->list.include_text);

  serve::EncodeSnapshotInfoRequest(3, payload);
  auto info = serve::DecodeRequest(payload.bytes(), scratch);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->header.method, serve::Method::kSnapshotInfo);
}

TEST(ProtocolTest, ResponseRoundTrips) {
  serve::RequestHeader header;
  header.method = serve::Method::kPointQuery;
  header.request_id = 99;

  PointQueryResponse point;
  point.generation = 5;
  point.rows_ingested = 1234;
  point.clusters = {1, 4, 9};
  point.rules = {0, 2};
  point.total_rule_matches = 6;
  persist::WireWriter payload;
  serve::EncodePointQueryResponse(header, point, payload);
  {
    persist::WireReader reader{std::string_view(payload.bytes())};
    auto decoded_header = serve::DecodeResponseHeader(reader);
    ASSERT_TRUE(decoded_header.ok()) << decoded_header.status();
    EXPECT_EQ(decoded_header->code, ServeCode::kOk);
    EXPECT_EQ(decoded_header->header.request_id, 99u);
    PointQueryResponse out;
    ASSERT_TRUE(serve::DecodePointQueryBody(reader, out).ok());
    EXPECT_EQ(out.generation, 5u);
    EXPECT_EQ(out.rows_ingested, 1234);
    EXPECT_EQ(out.clusters, point.clusters);
    EXPECT_EQ(out.rules, point.rules);
    EXPECT_EQ(out.total_rule_matches, 6u);
  }

  RuleListResponse list;
  list.generation = 5;
  list.rows_ingested = 1234;
  list.total_rules = 40;
  list.offset = 2;
  RuleListEntry entry;
  entry.id = 2;
  entry.degree = 0.5;
  entry.support_count = -1;
  entry.antecedent_size = 1;
  entry.consequent_size = 2;
  entry.text = "[A] => [B C]";
  list.rules.push_back(entry);
  header.method = serve::Method::kListRules;
  serve::EncodeRuleListResponse(header, list, payload);
  {
    persist::WireReader reader{std::string_view(payload.bytes())};
    auto decoded_header = serve::DecodeResponseHeader(reader);
    ASSERT_TRUE(decoded_header.ok()) << decoded_header.status();
    RuleListResponse out;
    ASSERT_TRUE(serve::DecodeRuleListBody(reader, out).ok());
    EXPECT_EQ(out.total_rules, 40u);
    ASSERT_EQ(out.rules.size(), 1u);
    EXPECT_EQ(out.rules[0].text, entry.text);
    EXPECT_EQ(out.rules[0].degree, entry.degree);
  }

  SnapshotInfoResponse info;
  info.generation = 9;
  info.rows_ingested = 777;
  info.num_clusters = 12;
  info.num_rules = 34;
  info.has_index = true;
  header.method = serve::Method::kSnapshotInfo;
  serve::EncodeSnapshotInfoResponse(header, info, payload);
  {
    persist::WireReader reader{std::string_view(payload.bytes())};
    auto decoded_header = serve::DecodeResponseHeader(reader);
    ASSERT_TRUE(decoded_header.ok()) << decoded_header.status();
    SnapshotInfoResponse out;
    ASSERT_TRUE(serve::DecodeSnapshotInfoBody(reader, out).ok());
    EXPECT_EQ(out.api_version, kQueryApiVersion);
    EXPECT_EQ(out.generation, 9u);
    EXPECT_TRUE(out.has_index);
  }
}

TEST(ProtocolTest, ErrorResponseRoundTrip) {
  serve::RequestHeader header;
  header.method = serve::Method::kPointQuery;
  header.request_id = 7;
  persist::WireWriter payload;
  serve::EncodeErrorResponse(header, ServeCode::kOverloaded, "busy", payload);
  persist::WireReader reader{std::string_view(payload.bytes())};
  auto decoded = serve::DecodeResponseHeader(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->code, ServeCode::kOverloaded);
  EXPECT_EQ(decoded->message, "busy");
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ProtocolTest, CorruptionIsRejectedCleanly) {
  std::vector<double> scratch;
  // Truncated payload.
  {
    persist::WireWriter payload;
    PointQueryRequest request;
    const std::vector<double> tuple = {1, 2, 3};
    request.tuple = tuple;
    serve::EncodePointQueryRequest(1, request, payload);
    const std::string whole = payload.bytes();
    for (size_t cut : {size_t{0}, size_t{4}, size_t{12}, whole.size() - 1}) {
      auto decoded =
          serve::DecodeRequest(std::string_view(whole).substr(0, cut),
                               scratch);
      EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
    }
    // Trailing garbage after a well-formed request.
    auto decoded = serve::DecodeRequest(whole + "x", scratch);
    EXPECT_FALSE(decoded.ok());
  }
  // Version skew.
  {
    persist::WireWriter payload;
    payload.U32(kQueryApiVersion + 1);
    payload.U8(2);
    payload.U64(1);
    auto decoded = serve::DecodeRequest(payload.bytes(), scratch);
    ASSERT_FALSE(decoded.ok());
    EXPECT_TRUE(decoded.status().IsInvalidArgument());
  }
  // Unknown method.
  {
    persist::WireWriter payload;
    payload.U32(kQueryApiVersion);
    payload.U8(200);
    payload.U64(1);
    auto decoded = serve::DecodeRequest(payload.bytes(), scratch);
    ASSERT_FALSE(decoded.ok());
    EXPECT_TRUE(decoded.status().IsInvalidArgument());
  }
  // Oversized frame length prefix.
  {
    persist::WireWriter frame;
    frame.U32(serve::kMaxFrameBytes + 1);
    auto length = serve::DecodeFrameLength(frame.bytes());
    ASSERT_FALSE(length.ok());
    EXPECT_TRUE(length.status().IsInvalidArgument());
  }
  // Tuple count above the cap.
  {
    persist::WireWriter payload;
    payload.U32(kQueryApiVersion);
    payload.U8(2);
    payload.U64(1);
    payload.U32(0);  // max_rules
    payload.U32(serve::kMaxTupleValues + 1);
    auto decoded = serve::DecodeRequest(payload.bytes(), scratch);
    ASSERT_FALSE(decoded.ok());
    EXPECT_TRUE(decoded.status().IsInvalidArgument());
  }
}

// ---------------------------------------------------------------------
// Admission control

TEST(AdmissionTest, GlobalConcurrencyLimit) {
  serve::AdmissionConfig config;
  config.max_concurrent = 2;
  config.max_per_tenant = 0;
  serve::AdmissionController admission(config);

  auto t1 = admission.Admit("a");
  auto t2 = admission.Admit("b");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(admission.in_flight(), 2u);
  auto t3 = admission.Admit("c");
  ASSERT_FALSE(t3.ok());
  EXPECT_TRUE(t3.status().IsResourceExhausted());
  EXPECT_EQ(admission.shed_count(), 1u);

  // Releasing a ticket restores capacity.
  *t1 = serve::AdmissionController::Ticket();
  auto t4 = admission.Admit("c");
  EXPECT_TRUE(t4.ok());
  EXPECT_EQ(admission.in_flight(), 2u);
}

TEST(AdmissionTest, PerTenantLimitIsIndependent) {
  serve::AdmissionConfig config;
  config.max_concurrent = 0;
  config.max_per_tenant = 1;
  serve::AdmissionController admission(config);

  auto a1 = admission.Admit("a");
  ASSERT_TRUE(a1.ok());
  auto a2 = admission.Admit("a");
  EXPECT_FALSE(a2.ok());
  // Another tenant is unaffected.
  auto b1 = admission.Admit("b");
  EXPECT_TRUE(b1.ok());
  // The anonymous tenant "" has its own quota too.
  auto anon = admission.Admit("");
  EXPECT_TRUE(anon.ok());
}

TEST(AdmissionTest, LifetimeQuota) {
  serve::AdmissionConfig config;
  config.max_concurrent = 0;
  config.max_per_tenant = 0;
  config.max_tenant_requests = 2;
  serve::AdmissionController admission(config);

  for (int i = 0; i < 2; ++i) {
    auto ticket = admission.Admit("a");
    EXPECT_TRUE(ticket.ok()) << i;
  }
  // Quota is lifetime: released tickets do not refill it.
  auto third = admission.Admit("a");
  EXPECT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsResourceExhausted());
  // Other tenants unaffected.
  EXPECT_TRUE(admission.Admit("b").ok());
}

TEST(AdmissionTest, PerTenantQuotaExactlyAtLimit) {
  serve::AdmissionConfig config;
  config.max_concurrent = 0;
  config.max_per_tenant = 3;
  serve::AdmissionController admission(config);

  // Fill the tenant's budget to exactly the limit — all must be admitted.
  std::vector<serve::AdmissionController::Ticket> held;
  for (int i = 0; i < 3; ++i) {
    auto ticket = admission.Admit("a");
    ASSERT_TRUE(ticket.ok()) << "ticket " << i << " at the limit boundary";
    held.push_back(std::move(*ticket));
  }
  EXPECT_EQ(admission.in_flight(), 3u);

  // One past the limit sheds; the shed must not disturb held tickets.
  auto over = admission.Admit("a");
  ASSERT_FALSE(over.ok());
  EXPECT_TRUE(over.status().IsResourceExhausted());
  EXPECT_EQ(admission.in_flight(), 3u);
  EXPECT_EQ(admission.shed_count(), 1u);

  // A different tenant still has its full budget.
  EXPECT_TRUE(admission.Admit("b").ok());

  // Releasing exactly one slot re-opens exactly one admission.
  held.pop_back();
  auto reopened = admission.Admit("a");
  EXPECT_TRUE(reopened.ok());
  EXPECT_FALSE(admission.Admit("a").ok());
}

TEST(AdmissionTest, LifetimeQuotaExhaustionMidBurst) {
  serve::AdmissionConfig config;
  config.max_concurrent = 0;
  config.max_per_tenant = 2;
  config.max_tenant_requests = 3;
  serve::AdmissionController admission(config);

  // Burst past the per-tenant in-flight cap while the lifetime quota is
  // still open: the shed is a per-tenant shed and must NOT consume the
  // lifetime budget.
  auto t1 = admission.Admit("a");
  auto t2 = admission.Admit("a");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_FALSE(admission.Admit("a").ok());  // in-flight shed, not lifetime

  // Release the burst; one unit of lifetime quota must remain.
  *t1 = serve::AdmissionController::Ticket();
  *t2 = serve::AdmissionController::Ticket();
  EXPECT_EQ(admission.in_flight(), 0u);
  EXPECT_TRUE(admission.Admit("a").ok());

  // Lifetime quota is now exhausted and stays exhausted with zero
  // in-flight requests.
  EXPECT_EQ(admission.in_flight(), 0u);
  auto exhausted = admission.Admit("a");
  ASSERT_FALSE(exhausted.ok());
  EXPECT_TRUE(exhausted.status().IsResourceExhausted());

  // Other tenants have independent lifetime budgets.
  EXPECT_TRUE(admission.Admit("b").ok());
}

TEST(AdmissionTest, TicketReleasesOnExceptionPath) {
  serve::AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_per_tenant = 0;
  serve::AdmissionController admission(config);

  // A handler that throws after admission must still release its slot:
  // the Ticket is RAII, so stack unwinding runs its destructor.
  try {
    auto ticket = admission.Admit("a");
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(admission.in_flight(), 1u);
    throw std::runtime_error("handler failure");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(admission.in_flight(), 0u);

  // The freed slot is immediately admittable again.
  auto after = admission.Admit("a");
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(admission.in_flight(), 1u);
}

// ---------------------------------------------------------------------
// QueryService

TEST(QueryServiceTest, UnboundAndPrePublicationStates) {
  QueryService service;
  EXPECT_FALSE(service.bound());
  PointQueryResponse hits;
  PointQueryRequest query;
  const std::vector<double> tuple = {0, 0, 0, 0};
  query.tuple = tuple;
  Status status = service.PointQuery(query, hits);
  EXPECT_TRUE(status.IsUnavailable()) << status;
  SnapshotInfoResponse info;
  EXPECT_TRUE(service.SnapshotInfo(info).IsUnavailable());

  // Bound to a stream that has not published: point queries stay
  // unavailable, but SnapshotInfo becomes the readiness probe.
  auto session = TestSession();
  ASSERT_TRUE(session.ok()) << session.status();
  auto data = TestData(500);
  auto stream = session->OpenStream(data.relation.schema(), data.partition);
  ASSERT_TRUE(stream.ok()) << stream.status();
  service.AttachStream(**stream);
  EXPECT_TRUE(service.bound());
  status = service.PointQuery(query, hits);
  EXPECT_TRUE(status.IsUnavailable()) << status;
  ASSERT_TRUE(service.SnapshotInfo(info).ok());
  EXPECT_EQ(info.generation, 0u);
  EXPECT_FALSE(info.has_index);
}

TEST(QueryServiceTest, PointQueryMatchesDirectIndexQuery) {
  ServedStream served = MakeServedStream();
  QueryService service;
  service.AttachStream(*served.stream);

  PointQueryResponse response;
  for (size_t r = 0; r < served.data.relation.num_rows(); r += 97) {
    // Row() returns an owning vector; the request views it (tuple is a
    // span), so it must outlive the query.
    const std::vector<double> row = served.data.relation.Row(r);
    PointQueryRequest query;
    query.tuple = row;
    ASSERT_TRUE(service.PointQuery(query, response).ok());
    // Querying the published snapshot's index directly is the reference.
    auto reference = StreamTestPeer::Query(*served.stream, row);
    ASSERT_TRUE(reference.ok()) << reference.status();
    ASSERT_EQ(response.clusters.size(), reference->clusters.size());
    for (size_t i = 0; i < response.clusters.size(); ++i) {
      EXPECT_EQ(response.clusters[i], reference->clusters[i]);
    }
    ASSERT_EQ(response.rules.size(), reference->rules.size());
    for (size_t i = 0; i < response.rules.size(); ++i) {
      EXPECT_EQ(response.rules[i], reference->rules[i]);
    }
    EXPECT_EQ(response.total_rule_matches, reference->rules.size());
    EXPECT_EQ(response.generation, served.stream->generation());
    EXPECT_EQ(response.rows_ingested, served.stream->rows_ingested());
  }
}

TEST(QueryServiceTest, MaxRulesTruncatesButCountsAll) {
  ServedStream served = MakeServedStream();
  QueryService service;
  service.AttachStream(*served.stream);

  // Find a tuple firing at least 2 rules.
  PointQueryResponse all;
  size_t row = 0;
  std::vector<double> tuple;
  for (; row < served.data.relation.num_rows(); ++row) {
    tuple = served.data.relation.Row(row);
    PointQueryRequest query;
    query.tuple = tuple;
    ASSERT_TRUE(service.PointQuery(query, all).ok());
    if (all.total_rule_matches >= 2) break;
  }
  ASSERT_GE(all.total_rule_matches, 2u) << "no tuple fires 2 rules";

  PointQueryRequest query;
  query.tuple = tuple;
  query.max_rules = 1;
  PointQueryResponse truncated;
  ASSERT_TRUE(service.PointQuery(query, truncated).ok());
  EXPECT_EQ(truncated.rules.size(), 1u);
  EXPECT_EQ(truncated.rules[0], all.rules[0]);
  EXPECT_EQ(truncated.total_rule_matches, all.total_rule_matches);
}

TEST(QueryServiceTest, ListRulesPaginates) {
  ServedStream served = MakeServedStream();
  QueryService service;
  service.AttachStream(*served.stream);

  SnapshotInfoResponse info;
  ASSERT_TRUE(service.SnapshotInfo(info).ok());
  ASSERT_GT(info.num_rules, 1u) << "test needs a multi-rule snapshot";

  // Page through with limit 1 and reassemble the full listing.
  RuleListResponse page;
  std::vector<uint32_t> ids;
  for (uint32_t offset = 0; offset < info.num_rules; ++offset) {
    RuleListRequest request;
    request.offset = offset;
    request.limit = 1;
    ASSERT_TRUE(service.ListRules(request, page).ok());
    EXPECT_EQ(page.total_rules, info.num_rules);
    EXPECT_EQ(page.offset, offset);
    ASSERT_EQ(page.rules.size(), 1u);
    EXPECT_TRUE(page.rules[0].text.empty());  // no text unless asked
    ids.push_back(page.rules[0].id);
  }
  for (uint32_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);

  // Degrees ascend (Phase II sorts strongest first).
  RuleListRequest all_request;
  all_request.limit = kMaxRuleListLimit;
  all_request.include_text = true;
  ASSERT_TRUE(service.ListRules(all_request, page).ok());
  ASSERT_EQ(page.rules.size(), info.num_rules);
  for (size_t i = 1; i < page.rules.size(); ++i) {
    EXPECT_LE(page.rules[i - 1].degree, page.rules[i].degree);
  }
  EXPECT_FALSE(page.rules[0].text.empty());

  // Past-the-end offset: an empty page, not an error.
  RuleListRequest past;
  past.offset = static_cast<uint32_t>(info.num_rules) + 10;
  ASSERT_TRUE(service.ListRules(past, page).ok());
  EXPECT_TRUE(page.rules.empty());
  EXPECT_EQ(page.total_rules, info.num_rules);
}

TEST(QueryServiceTest, ServesBatchResultsViaMakeSnapshot) {
  auto session = TestSession();
  ASSERT_TRUE(session.ok()) << session.status();
  auto data = TestData();
  auto report = session->Mine(data.relation, data.partition);
  ASSERT_TRUE(report.ok()) << report.status();

  QueryService service;
  service.AttachSnapshot(
      QueryService::MakeSnapshot(std::move(report->result), data.partition),
      data.relation.schema(), data.partition);

  SnapshotInfoResponse info;
  ASSERT_TRUE(service.SnapshotInfo(info).ok());
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.rows_ingested,
            static_cast<int64_t>(data.relation.num_rows()));
  EXPECT_TRUE(info.has_index);
  EXPECT_GT(info.num_rules, 0u);

  const std::vector<double> row = data.relation.Row(0);
  PointQueryRequest query;
  query.tuple = row;
  PointQueryResponse hits;
  ASSERT_TRUE(service.PointQuery(query, hits).ok());
  EXPECT_EQ(hits.generation, 1u);
}

TEST(QueryServiceTest, TooShortTupleIsInvalid) {
  ServedStream served = MakeServedStream();
  QueryService service;
  service.AttachStream(*served.stream);
  const std::vector<double> short_tuple = {1.0};
  PointQueryRequest query;
  query.tuple = short_tuple;
  PointQueryResponse hits;
  Status status = service.PointQuery(query, hits);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
}

// ---------------------------------------------------------------------
// RuleIndex scratch API

TEST(RuleIndexViewTest, ScratchReuseYieldsIdenticalHits) {
  ServedStream served = MakeServedStream();
  auto snapshot = StreamTestPeer::Snapshot(*served.stream);
  ASSERT_NE(snapshot, nullptr);
  const RuleIndex* index = snapshot->index();
  ASSERT_NE(index, nullptr);

  // One scratch reused across every query (the serving hot path) must
  // answer exactly like a cold scratch per query: reuse never leaks state
  // from the previous tuple into the next answer.
  RuleIndex::QueryScratch reused;
  for (size_t r = 0; r < served.data.relation.num_rows(); r += 131) {
    auto hits = index->Query(served.data.relation.Row(r), reused);
    ASSERT_TRUE(hits.ok()) << hits.status();
    RuleIndex::QueryScratch cold;
    auto reference = index->Query(served.data.relation.Row(r), cold);
    ASSERT_TRUE(reference.ok()) << reference.status();
    EXPECT_TRUE(std::equal(hits->clusters.begin(), hits->clusters.end(),
                           reference->clusters.begin(),
                           reference->clusters.end()));
    EXPECT_TRUE(std::equal(hits->rules.begin(), hits->rules.end(),
                           reference->rules.begin(), reference->rules.end()));
  }
}

// ---------------------------------------------------------------------
// Server end-to-end (binary + HTTP on one port)

TEST(RuleServerTest, BinaryEndToEnd) {
  ServedStream served = MakeServedStream();
  QueryService service;
  service.AttachStream(*served.stream);
  serve::RuleServer server(service, serve::ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client =
      serve::RuleClient::Connect("127.0.0.1", server.port(), "tenant-a");
  ASSERT_TRUE(client.ok()) << client.status();

  SnapshotInfoResponse info;
  ASSERT_TRUE(client->SnapshotInfo(info).ok());
  EXPECT_EQ(info.generation, served.stream->generation());
  EXPECT_TRUE(info.has_index);

  // Remote point queries agree with in-process service answers.
  PointQueryResponse remote;
  PointQueryResponse local;
  for (size_t r = 0; r < served.data.relation.num_rows(); r += 199) {
    const std::vector<double> row = served.data.relation.Row(r);
    PointQueryRequest query;
    query.tuple = row;
    ASSERT_TRUE(client->PointQuery(query, remote).ok());
    ASSERT_TRUE(service.PointQuery(query, local).ok());
    EXPECT_EQ(remote.generation, local.generation);
    EXPECT_EQ(remote.clusters, local.clusters);
    EXPECT_EQ(remote.rules, local.rules);
  }

  RuleListRequest list;
  list.limit = 3;
  list.include_text = true;
  RuleListResponse rules;
  ASSERT_TRUE(client->ListRules(list, rules).ok());
  EXPECT_EQ(rules.generation, info.generation);
  EXPECT_LE(rules.rules.size(), 3u);
  if (!rules.rules.empty()) {
    EXPECT_FALSE(rules.rules[0].text.empty());
  }

  // A too-short tuple surfaces as InvalidArgument THROUGH the wire.
  const std::vector<double> short_tuple = {1.0};
  PointQueryRequest bad;
  bad.tuple = short_tuple;
  Status status = client->PointQuery(bad, remote);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(RuleServerTest, LifetimeQuotaShedsOverTheWire) {
  ServedStream served = MakeServedStream(1000);
  QueryService service;
  service.AttachStream(*served.stream);
  serve::ServerConfig config;
  config.admission.max_tenant_requests = 2;
  serve::RuleServer server(service, config);
  ASSERT_TRUE(server.Start().ok());

  auto client =
      serve::RuleClient::Connect("127.0.0.1", server.port(), "greedy");
  ASSERT_TRUE(client.ok()) << client.status();
  SnapshotInfoResponse info;
  EXPECT_TRUE(client->SnapshotInfo(info).ok());
  EXPECT_TRUE(client->SnapshotInfo(info).ok());
  Status status = client->SnapshotInfo(info);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsResourceExhausted()) << status;
  EXPECT_GE(server.admission().shed_count(), 1u);
  // The shed response did not kill the session, and other tenants are
  // unaffected.
  auto other = serve::RuleClient::Connect("127.0.0.1", server.port(), "calm");
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_TRUE(other->SnapshotInfo(info).ok());
}

TEST(RuleServerTest, HttpEndpoints) {
  ServedStream served = MakeServedStream();
  QueryService service;
  service.AttachStream(*served.stream);
  serve::RuleServer server(service, serve::ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  // Raw HTTP through the adapter, as the server's HTTP path would.
  auto parsed = serve::ParseHttpRequest(
      "GET /v1/rules?limit=2&text=1 HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->path, "/v1/rules");
  EXPECT_EQ(parsed->query, "limit=2&text=1");
  std::string response = serve::HandleHttpRequest(service, *parsed);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"total_rules\":"), std::string::npos);

  auto info_req =
      serve::ParseHttpRequest("GET /v1/info HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(info_req.ok());
  response = serve::HandleHttpRequest(service, *info_req);
  EXPECT_NE(response.find("\"generation\":"), std::string::npos);

  auto bad = serve::ParseHttpRequest(
      "GET /v1/query?tuple=abc HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(bad.ok());
  response = serve::HandleHttpRequest(service, *bad);
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);

  auto missing = serve::ParseHttpRequest("GET /nope HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(missing.ok());
  response = serve::HandleHttpRequest(service, *missing);
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);

  server.Stop();
}

TEST(RuleServerTest, StartFailsOnBadHost) {
  QueryService service;
  serve::ServerConfig config;
  config.host = "not-an-ip";
  serve::RuleServer server(service, config);
  Status status = server.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Hot swap under load (the TSan centerpiece)

// One re-miner thread publishes generations (including a warm-start swap
// restored from a checkpoint) while reader threads query through the
// service. Every response must be internally consistent: its
// (generation, rows_ingested) pair must be one the writer actually
// published — a torn response mixing two generations would pair them
// wrongly.
TEST(RuleServerTest, HotSwapUnderLoadStaysConsistent) {
  const std::string ckpt = "serve_test_hotswap.darckpt";
  auto session = TestSession();
  ASSERT_TRUE(session.ok()) << session.status();
  auto data = TestData(4000);
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    ManualCadence());
  ASSERT_TRUE(stream.ok()) << stream.status();

  QueryService service;
  service.AttachStream(**stream);

  // Publish generation 1 from the first chunk so readers have something
  // from the start.
  const size_t kChunk = 1000;
  for (size_t r = 0; r < kChunk; ++r) {
    ASSERT_TRUE((*stream)->IngestRow(data.relation.Row(r)).ok());
  }
  ASSERT_TRUE((*stream)->Remine().ok());

  // (generation, rows) pairs the writer has published, pre-sized map-free:
  // generation g is published with pairs[g] rows. Readers validate against
  // it after the fact (no locking on the hot path).
  std::vector<std::pair<uint64_t, int64_t>> published;
  published.push_back({(*stream)->generation(), (*stream)->rows_ingested()});

  std::atomic<bool> done{false};
  constexpr int kReaders = 4;
  struct Observed {
    std::vector<std::pair<uint64_t, int64_t>> pairs;  // deduped locally
    int64_t queries = 0;
    int64_t unavailable = 0;
  };
  std::vector<Observed> observed(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Observed& mine = observed[t];
      PointQueryResponse hits;
      SnapshotInfoResponse info;
      size_t row = static_cast<size_t>(t) * 37;
      std::vector<double> tuple;
      while (!done.load(std::memory_order_acquire)) {
        tuple = data.relation.Row(row % data.relation.num_rows());
        PointQueryRequest query;
        query.tuple = tuple;
        row += 61;
        Status status = service.PointQuery(query, hits);
        if (status.IsUnavailable()) {
          ++mine.unavailable;
          continue;
        }
        ASSERT_TRUE(status.ok()) << status;
        ++mine.queries;
        const auto pair = std::make_pair(hits.generation, hits.rows_ingested);
        if (std::find(mine.pairs.begin(), mine.pairs.end(), pair) ==
            mine.pairs.end()) {
          mine.pairs.push_back(pair);
        }
        // SnapshotInfo must be single-generation consistent too.
        ASSERT_TRUE(service.SnapshotInfo(info).ok());
        const auto info_pair =
            std::make_pair(info.generation, info.rows_ingested);
        if (info.generation != 0 &&
            std::find(mine.pairs.begin(), mine.pairs.end(), info_pair) ==
                mine.pairs.end()) {
          mine.pairs.push_back(info_pair);
        }
      }
    });
  }

  // Writer: two more live publications, then a checkpoint/restore
  // warm-start swap, then one publication on the restored stream.
  size_t next_row = kChunk;
  for (int swap = 0; swap < 2; ++swap) {
    const size_t end = next_row + kChunk;
    for (; next_row < end; ++next_row) {
      ASSERT_TRUE((*stream)->IngestRow(data.relation.Row(next_row)).ok());
    }
    ASSERT_TRUE((*stream)->Remine().ok());
    published.push_back({(*stream)->generation(), (*stream)->rows_ingested()});
  }

  ASSERT_TRUE(session->SaveCheckpoint(**stream, ckpt).ok());
  auto restored = session->RestoreCheckpoint(ckpt);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // The restored stream republishes the checkpointed snapshot, so its
  // (generation, rows) is already in `published`. Swap the service onto
  // it while readers run — the warm-start hot swap.
  service.AttachStream(*restored->stream);
  for (size_t end = next_row + kChunk; next_row < end; ++next_row) {
    ASSERT_TRUE(
        restored->stream->IngestRow(data.relation.Row(next_row)).ok());
  }
  ASSERT_TRUE(restored->stream->Remine().ok());
  published.push_back(
      {restored->stream->generation(), restored->stream->rows_ingested()});

  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // >= 3 swaps happened (gen 1..4); every observed pair must be one the
  // writer published.
  ASSERT_GE(published.size(), 4u);
  int64_t total_queries = 0;
  for (const Observed& mine : observed) {
    total_queries += mine.queries;
    EXPECT_EQ(mine.unavailable, 0);  // generation 1 was live before start
    for (const auto& pair : mine.pairs) {
      EXPECT_NE(std::find(published.begin(), published.end(), pair),
                published.end())
          << "torn response: generation " << pair.first << " with rows "
          << pair.second << " was never published";
    }
  }
  EXPECT_GT(total_queries, 0);
  std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------------
// Quality layer over the wire: scored listings and drift diffs

DarConfig QualityConfig() {
  DarConfig config = TestConfig();
  // Measures are ratios over the §6.2 contingency scan, so the stream
  // must retain tuples and count rule support.
  config.count_rule_support = true;
  return config;
}

StreamConfig QualityCadence() {
  StreamConfig config = ManualCadence();
  config.score_measures = {"support", "confidence", "lift", "conviction",
                           "chi2"};
  config.prune_redundant = true;
  config.diff_snapshots = true;
  return config;
}

// Two published generations (first half, then all rows) so the current
// snapshot carries both scores and a generation-over-generation diff.
ServedStream MakeQualityServedStream(size_t rows = 3000) {
  auto session = Session::Builder()
                     .WithConfig(QualityConfig())
                     .WithThreads(1)
                     .Build();
  EXPECT_TRUE(session.ok()) << session.status();
  auto data = TestData(rows);
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    QualityCadence());
  EXPECT_TRUE(stream.ok()) << stream.status();
  for (size_t r = 0; r < rows / 2; ++r) {
    EXPECT_TRUE((*stream)->IngestRow(data.relation.Row(r)).ok());
  }
  EXPECT_TRUE((*stream)->Remine().ok());
  for (size_t r = rows / 2; r < rows; ++r) {
    EXPECT_TRUE((*stream)->IngestRow(data.relation.Row(r)).ok());
  }
  EXPECT_TRUE((*stream)->Remine().ok());
  return ServedStream{*std::move(session), std::move(data),
                      std::move(*stream)};
}

TEST(ProtocolTest, ScoredAndDiffRequestRoundTrip) {
  persist::WireWriter payload;
  std::vector<double> scratch;

  ScoredRuleListRequest scored;
  scored.offset = 4;
  scored.limit = 9;
  scored.include_text = true;
  scored.measure = "lift";
  scored.has_min = true;
  scored.min_score = 1.5;
  scored.has_max = true;
  scored.max_score = 3.0;
  scored.include_pruned = true;
  serve::EncodeScoredRuleListRequest(11, scored, payload);
  auto decoded = serve::DecodeRequest(payload.bytes(), scratch);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->header.method, serve::Method::kListRulesScored);
  EXPECT_EQ(decoded->header.request_id, 11u);
  EXPECT_EQ(decoded->scored.measure, "lift");
  EXPECT_EQ(decoded->scored.offset, 4u);
  EXPECT_EQ(decoded->scored.limit, 9u);
  EXPECT_TRUE(decoded->scored.include_text);
  ASSERT_TRUE(decoded->scored.has_min);
  EXPECT_EQ(decoded->scored.min_score, 1.5);
  ASSERT_TRUE(decoded->scored.has_max);
  EXPECT_EQ(decoded->scored.max_score, 3.0);
  EXPECT_TRUE(decoded->scored.include_pruned);

  RuleDiffRequest diff;
  diff.limit = 17;
  diff.include_text = true;
  serve::EncodeRuleDiffRequest(12, diff, payload);
  auto decoded_diff = serve::DecodeRequest(payload.bytes(), scratch);
  ASSERT_TRUE(decoded_diff.ok()) << decoded_diff.status();
  EXPECT_EQ(decoded_diff->header.method, serve::Method::kDiff);
  EXPECT_EQ(decoded_diff->diff.limit, 17u);
  EXPECT_TRUE(decoded_diff->diff.include_text);
}

TEST(ProtocolTest, ScoredAndDiffResponseRoundTrip) {
  serve::RequestHeader header;
  header.method = serve::Method::kListRulesScored;
  header.request_id = 21;
  persist::WireWriter payload;

  ScoredRuleListResponse scored;
  scored.generation = 3;
  scored.rows_ingested = 64;
  scored.total_matching = 2;
  scored.offset = 1;
  scored.measure = "conviction";
  ScoredRuleListEntry entry;
  entry.id = 7;
  entry.degree = 0.25;
  entry.support_count = 12;
  entry.score = 4.5;
  entry.representative = false;
  entry.antecedent_size = 2;
  entry.consequent_size = 1;
  entry.text = "[A B] => [C]";
  scored.rules.push_back(entry);
  serve::EncodeScoredRuleListResponse(header, scored, payload);
  {
    persist::WireReader reader{std::string_view(payload.bytes())};
    auto decoded_header = serve::DecodeResponseHeader(reader);
    ASSERT_TRUE(decoded_header.ok()) << decoded_header.status();
    EXPECT_EQ(decoded_header->code, ServeCode::kOk);
    ScoredRuleListResponse out;
    ASSERT_TRUE(serve::DecodeScoredRuleListBody(reader, out).ok());
    EXPECT_EQ(out.generation, 3u);
    EXPECT_EQ(out.rows_ingested, 64);
    EXPECT_EQ(out.total_matching, 2u);
    EXPECT_EQ(out.offset, 1u);
    EXPECT_EQ(out.measure, "conviction");
    ASSERT_EQ(out.rules.size(), 1u);
    EXPECT_EQ(out.rules[0].id, 7u);
    EXPECT_EQ(out.rules[0].degree, 0.25);
    EXPECT_EQ(out.rules[0].support_count, 12);
    EXPECT_EQ(out.rules[0].score, 4.5);
    EXPECT_FALSE(out.rules[0].representative);
    EXPECT_EQ(out.rules[0].text, entry.text);
  }

  RuleDiffResponse diff;
  diff.old_generation = 2;
  diff.new_generation = 3;
  diff.rows_ingested = 64;
  diff.born = 1;
  diff.died = 1;
  diff.drifted = 1;
  diff.unchanged = 5;
  diff.total_changed = 3;
  RuleDiffEntry born;
  born.kind = 2;
  born.rule_id = 4;
  born.degree = 0.5;
  born.text = "[A] => [B]";
  diff.entries.push_back(born);
  RuleDiffEntry drifted;
  drifted.kind = 1;
  drifted.rule_id = 2;
  drifted.interval_shift = 0.75;
  diff.entries.push_back(drifted);
  RuleDiffEntry died;
  died.kind = 3;
  died.rule_id = 9;
  diff.entries.push_back(died);
  header.method = serve::Method::kDiff;
  serve::EncodeRuleDiffResponse(header, diff, payload);
  {
    persist::WireReader reader{std::string_view(payload.bytes())};
    auto decoded_header = serve::DecodeResponseHeader(reader);
    ASSERT_TRUE(decoded_header.ok()) << decoded_header.status();
    RuleDiffResponse out;
    ASSERT_TRUE(serve::DecodeRuleDiffBody(reader, out).ok());
    EXPECT_EQ(out.old_generation, 2u);
    EXPECT_EQ(out.new_generation, 3u);
    EXPECT_EQ(out.born, 1u);
    EXPECT_EQ(out.died, 1u);
    EXPECT_EQ(out.drifted, 1u);
    EXPECT_EQ(out.unchanged, 5u);
    EXPECT_EQ(out.total_changed, 3u);
    ASSERT_EQ(out.entries.size(), 3u);
    EXPECT_EQ(out.entries[0].kind, 2);
    EXPECT_EQ(out.entries[0].rule_id, 4u);
    EXPECT_EQ(out.entries[0].text, born.text);
    EXPECT_EQ(out.entries[1].kind, 1);
    EXPECT_EQ(out.entries[1].interval_shift, 0.75);
    EXPECT_EQ(out.entries[2].kind, 3);
    EXPECT_EQ(out.entries[2].rule_id, 9u);
    EXPECT_TRUE(out.entries[2].text.empty());
  }
}

TEST(QueryServiceTest, ScoredListingRanksFiltersAndPaginates) {
  ServedStream served = MakeQualityServedStream();
  QueryService service;
  service.AttachStream(*served.stream);

  ScoredRuleListRequest request;
  request.measure = "lift";
  request.include_text = true;
  request.limit = kMaxRuleListLimit;
  ScoredRuleListResponse all;
  ASSERT_TRUE(service.ListRulesScored(request, all).ok());
  EXPECT_EQ(all.measure, "lift");
  EXPECT_EQ(all.generation, served.stream->generation());
  ASSERT_GT(all.rules.size(), 1u) << "test needs a multi-rule snapshot";
  EXPECT_EQ(all.rules.size(), all.total_matching);
  for (size_t i = 0; i < all.rules.size(); ++i) {
    EXPECT_TRUE(all.rules[i].representative);  // pruned excluded by default
    EXPECT_GE(all.rules[i].support_count, 0);  // quality streams rescan
    EXPECT_FALSE(all.rules[i].text.empty());
    if (i == 0) continue;
    // Descending score; ties break to ascending rule id, so the ranking
    // (and every page cut from it) is deterministic.
    const ScoredRuleListEntry& prev = all.rules[i - 1];
    EXPECT_TRUE(prev.score > all.rules[i].score ||
                (prev.score == all.rules[i].score &&
                 prev.id < all.rules[i].id))
        << "rank " << i << ": " << prev.score << " then "
        << all.rules[i].score;
  }

  // Score band: [min, max] keeps exactly the in-band entries.
  const double cut = all.rules[all.rules.size() / 2].score;
  request.has_min = true;
  request.min_score = cut;
  request.has_max = true;
  request.max_score = all.rules[0].score;
  request.include_text = false;
  ScoredRuleListResponse banded;
  ASSERT_TRUE(service.ListRulesScored(request, banded).ok());
  EXPECT_GT(banded.total_matching, 0u);
  EXPECT_LE(banded.total_matching, all.total_matching);
  for (const ScoredRuleListEntry& in_band : banded.rules) {
    EXPECT_GE(in_band.score, cut);
    EXPECT_LE(in_band.score, all.rules[0].score);
    EXPECT_TRUE(in_band.text.empty());
  }

  // Pagination walks the same ranking.
  request.has_min = false;
  request.has_max = false;
  request.limit = 1;
  request.offset = 1;
  ScoredRuleListResponse page;
  ASSERT_TRUE(service.ListRulesScored(request, page).ok());
  ASSERT_EQ(page.rules.size(), 1u);
  EXPECT_EQ(page.rules[0].id, all.rules[1].id);
  EXPECT_EQ(page.total_matching, all.total_matching);
  EXPECT_EQ(page.offset, 1u);

  // include_pruned can only widen the listing, never reorder the
  // representatives' relative ranks.
  request.offset = 0;
  request.limit = kMaxRuleListLimit;
  request.include_pruned = true;
  ScoredRuleListResponse widened;
  ASSERT_TRUE(service.ListRulesScored(request, widened).ok());
  EXPECT_GE(widened.total_matching, all.total_matching);
}

TEST(QueryServiceTest, ScoredListingAndDiffErrorContracts) {
  // A plain stream (no quality config): the scored listing is an invalid
  // request and the diff is unavailable — both say what to enable.
  ServedStream plain = MakeServedStream(1000);
  QueryService plain_service;
  plain_service.AttachStream(*plain.stream);
  ScoredRuleListRequest scored;
  scored.measure = "lift";
  ScoredRuleListResponse scored_out;
  Status no_scores = plain_service.ListRulesScored(scored, scored_out);
  ASSERT_FALSE(no_scores.ok());
  EXPECT_TRUE(no_scores.IsInvalidArgument()) << no_scores;
  EXPECT_NE(no_scores.message().find("score_measures"), std::string::npos);
  RuleDiffRequest diff;
  RuleDiffResponse diff_out;
  Status no_diff = plain_service.Diff(diff, diff_out);
  ASSERT_FALSE(no_diff.ok());
  EXPECT_TRUE(no_diff.IsUnavailable()) << no_diff;
  EXPECT_NE(no_diff.message().find("diff_snapshots"), std::string::npos);

  // A quality stream rejects unknown measures by name and lists the
  // measures it does have.
  ServedStream served = MakeQualityServedStream(1000);
  QueryService service;
  service.AttachStream(*served.stream);
  scored.measure = "novelty";
  Status unknown = service.ListRulesScored(scored, scored_out);
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.IsNotFound()) << unknown;
  EXPECT_NE(unknown.message().find("novelty"), std::string::npos);
  EXPECT_NE(unknown.message().find("lift"), std::string::npos);
}

TEST(QueryServiceTest, DiffCountsMatchSnapshotAndDiedEntriesHaveNoText) {
  ServedStream served = MakeQualityServedStream();
  QueryService service;
  service.AttachStream(*served.stream);

  SnapshotInfoResponse info;
  ASSERT_TRUE(service.SnapshotInfo(info).ok());

  RuleDiffRequest request;
  request.include_text = true;
  request.limit = kMaxRuleListLimit;
  RuleDiffResponse response;
  ASSERT_TRUE(service.Diff(request, response).ok());
  EXPECT_EQ(response.old_generation, 1u);
  EXPECT_EQ(response.new_generation, 2u);
  EXPECT_EQ(response.rows_ingested, info.rows_ingested);
  EXPECT_EQ(response.total_changed,
            response.born + response.died + response.drifted);
  // Every current rule is accounted for exactly once on the new side.
  EXPECT_EQ(response.unchanged + response.drifted + response.born,
            info.num_rules);
  ASSERT_EQ(response.entries.size(), response.total_changed);

  uint32_t born = 0;
  uint32_t died = 0;
  uint32_t drifted = 0;
  for (const RuleDiffEntry& entry : response.entries) {
    switch (entry.kind) {
      case 1:
        ++drifted;
        EXPECT_LT(entry.rule_id, info.num_rules);
        EXPECT_FALSE(entry.text.empty());
        break;
      case 2:
        ++born;
        EXPECT_LT(entry.rule_id, info.num_rules);
        EXPECT_FALSE(entry.text.empty());
        break;
      case 3:
        ++died;
        // Died rules index the PREVIOUS generation; its naming context is
        // gone, so no text even when asked.
        EXPECT_TRUE(entry.text.empty());
        EXPECT_EQ(entry.degree, 0.0);
        EXPECT_EQ(entry.interval_shift, 0.0);
        break;
      default:
        ADD_FAILURE() << "unexpected diff kind "
                      << static_cast<int>(entry.kind);
    }
  }
  EXPECT_EQ(born, response.born);
  EXPECT_EQ(died, response.died);
  EXPECT_EQ(drifted, response.drifted);

  // Truncation keeps the counts: limit 1 still reports the same totals.
  request.limit = 1;
  RuleDiffResponse truncated;
  ASSERT_TRUE(service.Diff(request, truncated).ok());
  EXPECT_EQ(truncated.total_changed, response.total_changed);
  EXPECT_EQ(truncated.unchanged, response.unchanged);
  if (truncated.total_changed > 0) {
    ASSERT_EQ(truncated.entries.size(), 1u);
    EXPECT_EQ(truncated.entries[0].kind, response.entries[0].kind);
    EXPECT_EQ(truncated.entries[0].rule_id, response.entries[0].rule_id);
  }
}

TEST(RuleServerTest, ScoredAndDiffBinaryEndToEnd) {
  ServedStream served = MakeQualityServedStream();
  QueryService service;
  service.AttachStream(*served.stream);
  serve::RuleServer server(service, serve::ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  auto client =
      serve::RuleClient::Connect("127.0.0.1", server.port(), "tenant-q");
  ASSERT_TRUE(client.ok()) << client.status();

  // Remote scored listings agree byte-for-byte with in-process answers.
  ScoredRuleListRequest scored;
  scored.measure = "confidence";
  scored.include_text = true;
  scored.limit = 5;
  ScoredRuleListResponse local;
  ScoredRuleListResponse remote;
  ASSERT_TRUE(service.ListRulesScored(scored, local).ok());
  ASSERT_TRUE(client->ListRulesScored(scored, remote).ok());
  EXPECT_EQ(remote.generation, local.generation);
  EXPECT_EQ(remote.total_matching, local.total_matching);
  EXPECT_EQ(remote.measure, local.measure);
  ASSERT_EQ(remote.rules.size(), local.rules.size());
  for (size_t i = 0; i < local.rules.size(); ++i) {
    EXPECT_EQ(remote.rules[i].id, local.rules[i].id);
    EXPECT_EQ(remote.rules[i].score, local.rules[i].score);
    EXPECT_EQ(remote.rules[i].degree, local.rules[i].degree);
    EXPECT_EQ(remote.rules[i].support_count, local.rules[i].support_count);
    EXPECT_EQ(remote.rules[i].representative, local.rules[i].representative);
    EXPECT_EQ(remote.rules[i].text, local.rules[i].text);
  }

  RuleDiffRequest diff;
  diff.include_text = true;
  RuleDiffResponse local_diff;
  RuleDiffResponse remote_diff;
  ASSERT_TRUE(service.Diff(diff, local_diff).ok());
  ASSERT_TRUE(client->Diff(diff, remote_diff).ok());
  EXPECT_EQ(remote_diff.old_generation, local_diff.old_generation);
  EXPECT_EQ(remote_diff.new_generation, local_diff.new_generation);
  EXPECT_EQ(remote_diff.born, local_diff.born);
  EXPECT_EQ(remote_diff.died, local_diff.died);
  EXPECT_EQ(remote_diff.drifted, local_diff.drifted);
  EXPECT_EQ(remote_diff.unchanged, local_diff.unchanged);
  ASSERT_EQ(remote_diff.entries.size(), local_diff.entries.size());
  for (size_t i = 0; i < local_diff.entries.size(); ++i) {
    EXPECT_EQ(remote_diff.entries[i].kind, local_diff.entries[i].kind);
    EXPECT_EQ(remote_diff.entries[i].rule_id, local_diff.entries[i].rule_id);
    EXPECT_EQ(remote_diff.entries[i].interval_shift,
              local_diff.entries[i].interval_shift);
    EXPECT_EQ(remote_diff.entries[i].text, local_diff.entries[i].text);
  }

  // An unknown measure crosses the wire as NotFound, message intact.
  scored.measure = "novelty";
  Status unknown = client->ListRulesScored(scored, remote);
  ASSERT_FALSE(unknown.ok());
  EXPECT_TRUE(unknown.IsNotFound()) << unknown;
  EXPECT_NE(unknown.message().find("novelty"), std::string::npos);

  server.Stop();
}

TEST(RuleServerTest, HttpScoredAndDiffEndpoints) {
  ServedStream served = MakeQualityServedStream();
  QueryService service;
  service.AttachStream(*served.stream);

  // The measure-filtered listing rides the same /v1/rules path, selected
  // by the presence of ?measure=.
  auto scored = serve::ParseHttpRequest(
      "GET /v1/rules?measure=lift&min=0&text=1 HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(scored.ok()) << scored.status();
  std::string response = serve::HandleHttpRequest(service, *scored);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"measure\":\"lift\""), std::string::npos);
  EXPECT_NE(response.find("\"total_matching\":"), std::string::npos);
  EXPECT_NE(response.find("\"score\":"), std::string::npos);
  EXPECT_NE(response.find("\"representative\":"), std::string::npos);
  EXPECT_NE(response.find("\"text\":"), std::string::npos);

  auto diff =
      serve::ParseHttpRequest("GET /v1/diff?text=1 HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(diff.ok()) << diff.status();
  response = serve::HandleHttpRequest(service, *diff);
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"old_generation\":1"), std::string::npos);
  EXPECT_NE(response.find("\"new_generation\":2"), std::string::npos);
  EXPECT_NE(response.find("\"born\":"), std::string::npos);
  EXPECT_NE(response.find("\"unchanged\":"), std::string::npos);

  // Unknown measure maps to HTTP 404 like any NotFound.
  auto unknown = serve::ParseHttpRequest(
      "GET /v1/rules?measure=novelty HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(unknown.ok());
  response = serve::HandleHttpRequest(service, *unknown);
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(response.find("novelty"), std::string::npos);

  // A bad score bound is the caller's error, not a server fault.
  auto bad = serve::ParseHttpRequest(
      "GET /v1/rules?measure=lift&min=abc HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(bad.ok());
  response = serve::HandleHttpRequest(service, *bad);
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);

  // The catch-all 404 advertises the diff endpoint.
  auto missing = serve::ParseHttpRequest("GET /v1/nope HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(missing.ok());
  EXPECT_NE(serve::HandleHttpRequest(service, *missing).find("/v1/diff"),
            std::string::npos);
}

}  // namespace
}  // namespace dar
