// dar::stream: streaming-vs-batch rule equality (K micro-batches on one
// thread == one-shot Session::Mine), snapshot cadence/generation
// accounting, RuleIndex point queries against brute force, and the
// single-writer/many-reader publication contract (run under
// -DDAR_SANITIZE=thread via `ctest -L tsan`).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "datagen/planted.h"
#include "stream/rule_index.h"
#include "stream/rule_snapshot.h"
#include "stream/streaming_miner.h"
#include "stream_test_peer.h"

namespace dar {
namespace {

PlantedDataset TestData() {
  PlantedDataSpec spec = WbcdLikeSpec(/*num_attrs=*/4, /*clusters_per_attr=*/3,
                                      /*outlier_fraction=*/0.05, /*seed=*/31);
  auto data = GeneratePlanted(spec, 3000, 32);
  EXPECT_TRUE(data.ok()) << data.status();
  return *std::move(data);
}

DarConfig TestConfig() {
  DarConfig config;
  config.frequency_fraction = 0.05;
  config.initial_diameters.assign(4, 80.0);
  config.degree_threshold = 150.0;
  // The stream retains no tuples, so the §6.2 support rescan cannot run;
  // keep the batch reference comparable.
  config.count_rule_support = false;
  return config;
}

Result<Session> TestSession(int threads = 1) {
  return Session::Builder().WithConfig(TestConfig()).WithThreads(threads).Build();
}

// StreamConfig with the given re-mine cadence (0 = manual Remine only).
StreamConfig Cadence(int64_t remine_every_rows) {
  StreamConfig sc;
  sc.remine_every_rows = remine_every_rows;
  return sc;
}

StreamConfig NoIndexConfig() {
  StreamConfig sc;
  sc.remine_every_rows = 0;
  sc.build_rule_index = false;
  return sc;
}

// Slices rows [begin, end) of `rel` into a fresh Relation.
Relation Slice(const Relation& rel, size_t begin, size_t end) {
  Relation out(rel.schema());
  for (size_t r = begin; r < end; ++r) {
    EXPECT_TRUE(out.AppendRow(rel.Row(r)).ok());
  }
  return out;
}

void ExpectSameRules(const std::vector<DistanceRule>& a,
                     const std::vector<DistanceRule>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].antecedent, b[i].antecedent);
    EXPECT_EQ(a[i].consequent, b[i].consequent);
    EXPECT_EQ(a[i].degree, b[i].degree);  // bitwise
    EXPECT_EQ(a[i].cooccurrence_slack, b[i].cooccurrence_slack);
    EXPECT_EQ(a[i].support_count, b[i].support_count);
  }
}

// The acceptance pin: a stream fed K micro-batches (fixed seed, one
// thread) publishes exactly the rule set a one-shot Mine over the
// concatenated batches derives.
TEST(StreamTest, MicroBatchStreamEqualsOneShotMine) {
  PlantedDataset data = TestData();
  auto batch_session = TestSession();
  ASSERT_TRUE(batch_session.ok());
  auto report = batch_session->Mine(data.relation, data.partition);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->rules().size(), 0u)
      << "workload must produce rules for the comparison to mean anything";

  auto stream_session = TestSession();
  ASSERT_TRUE(stream_session.ok());
  auto stream = stream_session->OpenStream(
      data.relation.schema(), data.partition,
      Cadence(0));
  ASSERT_TRUE(stream.ok()) << stream.status();

  // Deliberately ragged micro-batches: equality must not depend on where
  // the batch boundaries fall.
  const size_t sizes[] = {1, 7, 500, 992, 1000, 100, 400};
  size_t begin = 0;
  for (size_t size : sizes) {
    size_t end = std::min(data.relation.num_rows(), begin + size);
    ASSERT_TRUE((*stream)->Ingest(Slice(data.relation, begin, end)).ok());
    begin = end;
  }
  ASSERT_EQ(begin, data.relation.num_rows());
  EXPECT_EQ((*stream)->rows_ingested(),
            static_cast<int64_t>(data.relation.num_rows()));

  auto snapshot = (*stream)->Remine();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_TRUE((*snapshot)->CheckConsistency().ok());
  EXPECT_EQ((*snapshot)->clusters().size(), report->phase1().clusters.size());
  EXPECT_EQ((*snapshot)->phase1().frequency_threshold,
            report->phase1().frequency_threshold);
  EXPECT_EQ((*snapshot)->phase1().effective_d0, report->phase1().effective_d0);
  EXPECT_EQ((*snapshot)->phase2().cliques, report->phase2().cliques);
  ExpectSameRules((*snapshot)->rules(), report->rules());
}

// Snapshot() must not perturb the live trees: re-mining mid-stream and
// then finishing produces the same final result as never re-mining.
TEST(StreamTest, MidStreamReminesDoNotPerturbFinalSnapshot) {
  PlantedDataset data = TestData();
  auto reference_session = TestSession();
  ASSERT_TRUE(reference_session.ok());
  auto reference = reference_session->Mine(data.relation, data.partition);
  ASSERT_TRUE(reference.ok());

  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  // Cadence 750: publishes fire *during* ingest this time.
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    Cadence(750));
  ASSERT_TRUE(stream.ok());
  const size_t kBatch = 250;
  for (size_t begin = 0; begin < data.relation.num_rows(); begin += kBatch) {
    size_t end = std::min(data.relation.num_rows(), begin + kBatch);
    ASSERT_TRUE((*stream)->Ingest(Slice(data.relation, begin, end)).ok());
  }
  EXPECT_GE((*stream)->generation(), 3u);  // 3000 rows / 750 cadence
  auto final_snapshot = (*stream)->Remine();
  ASSERT_TRUE(final_snapshot.ok());
  ExpectSameRules((*final_snapshot)->rules(), reference->rules());
}

TEST(StreamTest, CadenceAndGenerationAccounting) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    Cadence(500));
  ASSERT_TRUE(stream.ok());

  EXPECT_EQ((*stream)->generation(), 0u);
  EXPECT_EQ(StreamTestPeer::Snapshot(**stream), nullptr);
  EXPECT_TRUE(StreamTestPeer::Query(**stream, data.relation.Row(0))
                  .status()
                  .IsNotFound());

  ASSERT_TRUE((*stream)->Ingest(Slice(data.relation, 0, 499)).ok());
  EXPECT_EQ((*stream)->generation(), 0u) << "cadence not crossed yet";
  EXPECT_EQ((*stream)->rows_since_snapshot(), 499);

  ASSERT_TRUE((*stream)->Ingest(Slice(data.relation, 499, 500)).ok());
  EXPECT_EQ((*stream)->generation(), 1u) << "row 500 crosses the cadence";
  EXPECT_EQ((*stream)->rows_since_snapshot(), 0);
  auto first = StreamTestPeer::Snapshot(**stream);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->generation(), 1u);
  EXPECT_EQ(first->rows_ingested(), 500);
  EXPECT_TRUE(first->CheckConsistency().ok());

  // One big batch crossing the cadence twice still publishes once, at the
  // batch boundary.
  ASSERT_TRUE((*stream)->Ingest(Slice(data.relation, 500, 1600)).ok());
  EXPECT_EQ((*stream)->generation(), 2u);
  auto second = StreamTestPeer::Snapshot(**stream);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->rows_ingested(), 1600);

  // The first snapshot is immutable and still valid after being replaced.
  EXPECT_EQ(first->generation(), 1u);
  EXPECT_EQ(first->rows_ingested(), 500);
  EXPECT_TRUE(first->CheckConsistency().ok());

  // Stream telemetry accumulates in the session registry.
  auto telemetry = session->metrics().TakeSnapshot();
  EXPECT_EQ(telemetry.CounterOr("stream.ingest_rows"), 1600);
  EXPECT_EQ(telemetry.CounterOr("stream.remines"), 2);
  EXPECT_EQ(telemetry.GaugeOr("stream.generation"), 2.0);
}

TEST(StreamTest, ManualRemineOnlyWhenCadenceDisabled) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    Cadence(0));
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Ingest(data.relation).ok());
  EXPECT_EQ(StreamTestPeer::Snapshot(**stream), nullptr);
  auto snapshot = (*stream)->Remine();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ((*stream)->generation(), 1u);
}

TEST(StreamTest, RemineWithNoRowsFails) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  auto stream =
      session->OpenStream(data.relation.schema(), data.partition);
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE((*stream)->Remine().status().IsInvalidArgument());
  EXPECT_EQ(StreamTestPeer::Snapshot(**stream), nullptr)
      << "nothing may be published";
}

TEST(StreamTest, RejectsNegativeCadence) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    Cadence(-1));
  EXPECT_TRUE(stream.status().IsInvalidArgument());
}

// Reference implementation for the index: scan every cluster / rule.
std::vector<size_t> BruteForceClusters(const ClusterSet& clusters,
                                       const AttributePartition& partition,
                                       const std::vector<double>& row) {
  std::vector<size_t> out;
  for (size_t id = 0; id < clusters.size(); ++id) {
    const FoundCluster& c = clusters.cluster(id);
    const auto box = c.acf.BoundingBox(c.part);
    const auto& cols = partition.part(c.part).columns;
    bool contains = true;
    for (size_t d = 0; d < box.size(); ++d) {
      const double v = row[cols[d]];
      if (v < box[d].first || v > box[d].second) {
        contains = false;
        break;
      }
    }
    if (contains) out.push_back(id);
  }
  return out;
}

std::vector<size_t> BruteForceRules(const std::vector<DistanceRule>& rules,
                                    const std::vector<size_t>& containing) {
  std::vector<size_t> out;
  for (size_t k = 0; k < rules.size(); ++k) {
    bool all = true;
    for (const auto* side : {&rules[k].antecedent, &rules[k].consequent}) {
      for (size_t id : *side) {
        if (!std::binary_search(containing.begin(), containing.end(), id)) {
          all = false;
          break;
        }
      }
      if (!all) break;
    }
    if (all) out.push_back(k);
  }
  return out;
}

TEST(StreamTest, RuleIndexMatchesBruteForce) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  auto stream =
      session->OpenStream(data.relation.schema(), data.partition,
                          Cadence(0));
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Ingest(data.relation).ok());
  auto snapshot = (*stream)->Remine();
  ASSERT_TRUE(snapshot.ok());
  const RuleIndex* index = (*snapshot)->index();
  ASSERT_NE(index, nullptr);
  ASSERT_GT((*snapshot)->rules().size(), 0u);

  size_t tuples_with_rules = 0;
  for (size_t r = 0; r < data.relation.num_rows(); r += 17) {
    const std::vector<double> row = data.relation.Row(r);
    auto hits = StreamTestPeer::Query(**stream, row);
    ASSERT_TRUE(hits.ok()) << hits.status();
    EXPECT_EQ(hits->clusters, BruteForceClusters((*snapshot)->clusters(),
                                                 data.partition, row));
    EXPECT_EQ(hits->rules,
              BruteForceRules((*snapshot)->rules(), hits->clusters));
    tuples_with_rules += hits->rules.empty() ? 0 : 1;
  }
  EXPECT_GT(tuples_with_rules, 0u)
      << "planted data must make some rules fire or the check is vacuous";

  // A tuple far outside every planted range matches nothing.
  const std::vector<double> far(data.relation.num_columns(), 1e13);
  auto miss = StreamTestPeer::Query(**stream, far);
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->clusters.empty());
  EXPECT_TRUE(miss->rules.empty());

  // A too-short tuple is a clear error, not UB.
  const std::vector<double> narrow(1, 0.0);
  EXPECT_TRUE(
      StreamTestPeer::Query(**stream, narrow).status().IsInvalidArgument());
}

TEST(StreamTest, IndexDisabledByConfig) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  auto stream = session->OpenStream(
      data.relation.schema(), data.partition,
      NoIndexConfig());
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Ingest(data.relation).ok());
  auto snapshot = (*stream)->Remine();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ((*snapshot)->index(), nullptr);
  EXPECT_TRUE(StreamTestPeer::Query(**stream, data.relation.Row(0))
                  .status()
                  .IsInvalidArgument());
}

// The tsan-labeled publication test: one ingest thread re-mining on a
// tight cadence while reader threads continuously load, self-check and
// query snapshots. Readers must only ever observe complete snapshots with
// monotonically non-decreasing generations.
TEST(StreamTest, ConcurrentReadersSeeConsistentSnapshots) {
  PlantedDataset data = TestData();
  auto session = TestSession();
  ASSERT_TRUE(session.ok());
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    Cadence(200));
  ASSERT_TRUE(stream.ok());
  StreamingMiner& miner = **stream;

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  const std::vector<double> probe = data.relation.Row(0);

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      uint64_t last_generation = 0;
      RuleIndex::QueryScratch scratch;  // one per reader thread
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const RuleSnapshot> snapshot =
            StreamTestPeer::Snapshot(miner);
        if (snapshot == nullptr) continue;
        if (!snapshot->CheckConsistency().ok() ||
            snapshot->generation() < last_generation) {
          failures.fetch_add(1);
          return;
        }
        last_generation = snapshot->generation();
        auto hits = snapshot->index()->Query(probe, scratch);
        if (hits.ok()) {
          // Rule hits must reference rules that exist in *this* snapshot.
          for (size_t k : hits->rules) {
            if (k >= snapshot->rules().size()) {
              failures.fetch_add(1);
              return;
            }
          }
        }
      }
    });
  }

  const size_t kBatch = 100;
  for (size_t begin = 0; begin < data.relation.num_rows(); begin += kBatch) {
    size_t end = std::min(data.relation.num_rows(), begin + kBatch);
    ASSERT_TRUE(miner.Ingest(Slice(data.relation, begin, end)).ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(miner.generation(), 10u);  // 3000 rows / 200 cadence
}

// Crash recovery: a stream with a checkpoint cadence is killed mid-run,
// restored from its last checkpoint in a fresh session (different thread
// count), and fed the remaining rows. The resumed stream must publish rules
// bit-identical to an uninterrupted stream over the same data — the
// checkpoint is the complete mining state, not an approximation.
TEST(StreamTest, KillRestoreContinueEqualsUninterruptedStream) {
  PlantedDataset data = TestData();
  const size_t total = data.relation.num_rows();  // 3000
  const std::string ckpt = testing::TempDir() + "/stream_kill.ckpt";

  StreamConfig cadence;
  cadence.remine_every_rows = 500;

  // Reference: one uninterrupted stream over all rows.
  auto ref_session = TestSession();
  ASSERT_TRUE(ref_session.ok());
  auto ref_stream = ref_session->OpenStream(data.relation.schema(),
                                            data.partition, cadence);
  ASSERT_TRUE(ref_stream.ok());
  for (size_t begin = 0; begin < total; begin += 250) {
    ASSERT_TRUE(
        (*ref_stream)->Ingest(Slice(data.relation, begin, begin + 250)).ok());
  }
  auto reference = StreamTestPeer::Snapshot(**ref_stream);
  ASSERT_NE(reference, nullptr);
  ASSERT_GT(reference->rules().size(), 0u);

  // Interrupted run: same cadence, plus a checkpoint every 500 rows.
  StreamConfig with_ckpt = cadence;
  with_ckpt.checkpoint_every_rows = 500;
  with_ckpt.checkpoint_path = ckpt;
  {
    auto session = TestSession();
    ASSERT_TRUE(session.ok());
    auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                      with_ckpt);
    ASSERT_TRUE(stream.ok()) << stream.status();
    for (size_t begin = 0; begin < 1250; begin += 250) {
      ASSERT_TRUE(
          (*stream)->Ingest(Slice(data.relation, begin, begin + 250)).ok());
    }
    // Stream destroyed here with 1250 rows ingested — the "crash". The
    // last cadence checkpoint was written at 1000 rows.
  }

  // Restore in a new session at a different thread count and catch up.
  auto resumed_session = TestSession(/*threads=*/4);
  ASSERT_TRUE(resumed_session.ok());
  auto restored = resumed_session->RestoreCheckpoint(ckpt);
  ASSERT_TRUE(restored.ok()) << restored.status();
  StreamingMiner& resumed = *restored->stream;
  EXPECT_EQ(resumed.rows_ingested(), 1000);
  EXPECT_EQ(resumed.generation(), 2u);  // re-mines fired at 500 and 1000
  auto republished = StreamTestPeer::Snapshot(resumed);
  ASSERT_NE(republished, nullptr);
  EXPECT_EQ(republished->rows_ingested(), 1000);
  EXPECT_TRUE(restored->schema == data.relation.schema());

  // Rows [1000, 1250) were ingested after the checkpoint and lost in the
  // crash; the caller re-feeds from the checkpoint's row count.
  for (size_t begin = 1000; begin < total; begin += 250) {
    ASSERT_TRUE(
        resumed.Ingest(Slice(data.relation, begin, begin + 250)).ok());
  }
  EXPECT_EQ(resumed.rows_ingested(), static_cast<int64_t>(total));

  auto final_snapshot = StreamTestPeer::Snapshot(resumed);
  ASSERT_NE(final_snapshot, nullptr);
  EXPECT_EQ(final_snapshot->rows_ingested(), reference->rows_ingested());
  EXPECT_EQ(final_snapshot->generation(), reference->generation());
  EXPECT_EQ(final_snapshot->phase1().effective_d0,
            reference->phase1().effective_d0);
  EXPECT_EQ(final_snapshot->phase2().cliques, reference->phase2().cliques);
  ExpectSameRules(final_snapshot->rules(), reference->rules());
  std::remove(ckpt.c_str());
}

// --- dar::quality integration: support post-scan on the streaming path,
// scored/pruned/diffed snapshots, and retained-row checkpoints. ---

DarConfig QualityConfig() {
  DarConfig config = TestConfig();
  config.count_rule_support = true;  // the stream retains rows and rescans
  return config;
}

Result<Session> QualitySession(int threads = 1) {
  return Session::Builder()
      .WithConfig(QualityConfig())
      .WithThreads(threads)
      .Build();
}

StreamConfig QualityStreamConfig() {
  StreamConfig sc;
  sc.remine_every_rows = 0;
  sc.score_measures = {"support", "confidence", "lift", "conviction",
                       "chi2"};
  sc.prune_redundant = true;
  sc.diff_snapshots = true;
  return sc;
}

// The satellite fix: DistanceRule::support_count must be filled on the
// streaming path when the config asks for the §6.2 post-scan, and must
// match the batch Mine over the same accumulated rows exactly.
TEST(StreamQualityTest, StreamingSupportCountsMatchBatchMine) {
  PlantedDataset data = TestData();
  auto batch_session = QualitySession();
  ASSERT_TRUE(batch_session.ok());
  auto report = batch_session->Mine(data.relation, data.partition);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->rules().size(), 0u);
  for (const DistanceRule& rule : report->rules()) {
    ASSERT_GE(rule.support_count, 0) << "batch post-scan must have run";
  }

  auto stream_session = QualitySession();
  ASSERT_TRUE(stream_session.ok());
  auto stream = stream_session->OpenStream(data.relation.schema(),
                                           data.partition, Cadence(0));
  ASSERT_TRUE(stream.ok()) << stream.status();
  for (size_t begin = 0; begin < data.relation.num_rows(); begin += 500) {
    ASSERT_TRUE(
        (*stream)->Ingest(Slice(data.relation, begin, begin + 500)).ok());
  }
  auto snapshot = (*stream)->Remine();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ExpectSameRules((*snapshot)->rules(), report->rules());
}

TEST(StreamQualityTest, ScoreMeasuresRequireSupportCounting) {
  PlantedDataset data = TestData();
  auto session = TestSession();  // count_rule_support = false
  ASSERT_TRUE(session.ok());
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    QualityStreamConfig());
  ASSERT_FALSE(stream.ok());
  EXPECT_TRUE(stream.status().IsInvalidArgument()) << stream.status();
}

TEST(StreamQualityTest, ScoredSnapshotsAreThreadCountInvariant) {
  PlantedDataset data = TestData();
  std::shared_ptr<const RuleSnapshot> snapshots[2];
  const int thread_counts[] = {1, 8};
  for (size_t i = 0; i < 2; ++i) {
    auto session = QualitySession(thread_counts[i]);
    ASSERT_TRUE(session.ok());
    auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                      QualityStreamConfig());
    ASSERT_TRUE(stream.ok()) << stream.status();
    ASSERT_TRUE(
        (*stream)->Ingest(Slice(data.relation, 0, 1500)).ok());
    ASSERT_TRUE((*stream)->Remine().ok());
    ASSERT_TRUE((*stream)
                    ->Ingest(Slice(data.relation, 1500,
                                   data.relation.num_rows()))
                    .ok());
    auto snapshot = (*stream)->Remine();
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    snapshots[i] = *snapshot;
  }
  const quality::ScoredRuleSet* a = snapshots[0]->scored();
  const quality::ScoredRuleSet* b = snapshots[1]->scored();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->stats.size(), b->stats.size());
  ASSERT_EQ(a->stats.size(), snapshots[0]->rules().size());
  EXPECT_EQ(a->measure_names, b->measure_names);
  for (size_t k = 0; k < a->stats.size(); ++k) {
    EXPECT_EQ(a->stats[k].both, b->stats[k].both);
    EXPECT_EQ(a->stats[k].antecedent, b->stats[k].antecedent);
    EXPECT_EQ(a->stats[k].consequent, b->stats[k].consequent);
    EXPECT_EQ(a->stats[k].total, b->stats[k].total);
  }
  for (size_t m = 0; m < a->scores.size(); ++m) {
    for (size_t k = 0; k < a->scores[m].size(); ++k) {
      EXPECT_EQ(a->scores[m][k], b->scores[m][k]);  // bitwise
    }
  }
  EXPECT_EQ(a->representative, b->representative);
  EXPECT_EQ(a->num_pruned, b->num_pruned);

  const quality::SnapshotDiffResult* da = snapshots[0]->diff();
  const quality::SnapshotDiffResult* db = snapshots[1]->diff();
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(da->born, db->born);
  EXPECT_EQ(da->died, db->died);
  EXPECT_EQ(da->drifted, db->drifted);
  EXPECT_EQ(da->unchanged, db->unchanged);
  EXPECT_EQ(da->old_generation, 1u);
  EXPECT_EQ(da->new_generation, 2u);
}

TEST(StreamQualityTest, UserRegisteredMeasureScoresSnapshots) {
  class RowCountMeasure : public quality::InterestingnessMeasure {
   public:
    [[nodiscard]] std::string_view name() const override {
      return "row_count";
    }
    [[nodiscard]] double Score(const RuleStats& stats) const override {
      return static_cast<double>(stats.total);
    }
  };
  PlantedDataset data = TestData();
  auto session = QualitySession();
  ASSERT_TRUE(session.ok());
  StreamConfig sc;
  sc.remine_every_rows = 0;
  sc.score_measures = {"lift", "row_count"};
  auto stream =
      session->OpenStream(data.relation.schema(), data.partition, sc);
  ASSERT_TRUE(stream.ok()) << stream.status();
  ASSERT_TRUE(
      (*stream)->RegisterMeasure(std::make_unique<RowCountMeasure>()).ok());
  ASSERT_TRUE((*stream)->Ingest(data.relation).ok());
  auto snapshot = (*stream)->Remine();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  const quality::ScoredRuleSet* scored = (*snapshot)->scored();
  ASSERT_NE(scored, nullptr);
  const int m = scored->FindMeasure("row_count");
  ASSERT_GE(m, 0);
  for (const double score : scored->scores[static_cast<size_t>(m)]) {
    EXPECT_EQ(score, static_cast<double>(data.relation.num_rows()));
  }
}

// Drift end to end: a planted cluster-mean shift after row N must be
// flagged by the second generation's diff, and the stationary control
// (identical pipeline, shift 0) must stay quiet.
TEST(StreamQualityTest, InjectedDriftFlaggedAndStationaryControlQuiet) {
  const PlantedDataSpec spec = WbcdLikeSpec(4, 3, 0.0, 61);
  const size_t n = 4000;
  for (const double shift : {1000.0 / 3.0 * 0.25, 0.0}) {
    auto data = GenerateDrifting(spec, n, n / 2, shift, 62);
    ASSERT_TRUE(data.ok()) << data.status();
    auto session = QualitySession();
    ASSERT_TRUE(session.ok());
    StreamConfig sc = QualityStreamConfig();
    sc.drift_interval_tolerance = 0.25;
    sc.drift_degree_tolerance = 0.5;
    auto stream =
        session->OpenStream(data->relation.schema(), data->partition, sc);
    ASSERT_TRUE(stream.ok()) << stream.status();
    ASSERT_TRUE((*stream)->Ingest(Slice(data->relation, 0, n / 2)).ok());
    ASSERT_TRUE((*stream)->Remine().ok());
    ASSERT_TRUE((*stream)->Ingest(Slice(data->relation, n / 2, n)).ok());
    auto snapshot = (*stream)->Remine();
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    const quality::SnapshotDiffResult* diff = (*snapshot)->diff();
    ASSERT_NE(diff, nullptr);
    if (shift != 0.0) {
      EXPECT_GE(diff->born + diff->died + diff->drifted, 1u)
          << "injected mean shift must be flagged";
    } else {
      EXPECT_EQ(diff->born, 0u);
      EXPECT_EQ(diff->died, 0u);
      EXPECT_EQ(diff->drifted, 0u);
    }
  }
}

// Retained tuples travel with the checkpoint, so a restored stream's
// post-scan counts and scores equal the uninterrupted stream's.
TEST(StreamQualityTest, RetainedRowsCheckpointRoundTrip) {
  PlantedDataset data = TestData();
  const std::string ckpt = testing::TempDir() + "/stream_quality.ckpt";

  auto session = QualitySession();
  ASSERT_TRUE(session.ok());
  auto stream = session->OpenStream(data.relation.schema(), data.partition,
                                    QualityStreamConfig());
  ASSERT_TRUE(stream.ok()) << stream.status();
  ASSERT_TRUE((*stream)->Ingest(data.relation).ok());
  auto reference = (*stream)->Remine();
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE((*stream)->SaveCheckpoint(ckpt).ok());

  auto resumed_session = QualitySession(/*threads=*/4);
  ASSERT_TRUE(resumed_session.ok());
  auto restored = resumed_session->RestoreCheckpoint(ckpt);
  ASSERT_TRUE(restored.ok()) << restored.status();
  auto snapshot = restored->stream->Remine();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ExpectSameRules((*snapshot)->rules(), (*reference)->rules());
  const quality::ScoredRuleSet* scored = (*snapshot)->scored();
  const quality::ScoredRuleSet* ref_scored = (*reference)->scored();
  ASSERT_NE(scored, nullptr);
  ASSERT_NE(ref_scored, nullptr);
  EXPECT_EQ(scored->scores, ref_scored->scores);
  EXPECT_EQ(scored->representative, ref_scored->representative);
  std::remove(ckpt.c_str());
}

// A checkpoint that retained no tuples cannot resume a support-counting
// stream: restoring it into a config that wants the post-scan must fail
// loudly instead of publishing support_count = -1 (or wrong scores).
TEST(StreamQualityTest, CheckpointWithoutRetainedRowsRefusesSupportConfig) {
  PlantedDataset data = TestData();
  const std::string ckpt = testing::TempDir() + "/stream_nosupport.ckpt";

  auto plain_session = TestSession();  // count_rule_support = false
  ASSERT_TRUE(plain_session.ok());
  auto stream = plain_session->OpenStream(data.relation.schema(),
                                          data.partition, Cadence(0));
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE((*stream)->Ingest(data.relation).ok());
  ASSERT_TRUE((*stream)->Remine().ok());
  ASSERT_TRUE((*stream)->SaveCheckpoint(ckpt).ok());

  auto counting_session = QualitySession();
  ASSERT_TRUE(counting_session.ok());
  auto restored = counting_session->RestoreCheckpoint(ckpt);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument()) << restored.status();
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace dar
