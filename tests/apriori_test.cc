#include "apriori/apriori.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"

namespace dar {
namespace {

// Brute-force frequent itemsets: enumerate all subsets of the item universe
// up to `max_size` and count them directly.
std::map<Itemset, int64_t> BruteFrequent(const std::vector<Itemset>& txns,
                                         int64_t min_count, size_t max_size) {
  Itemset universe;
  for (const auto& t : txns) {
    universe.insert(universe.end(), t.begin(), t.end());
  }
  Canonicalize(universe);
  std::map<Itemset, int64_t> out;
  size_t m = universe.size();
  for (uint64_t mask = 1; mask < (1ull << m); ++mask) {
    Itemset s;
    for (size_t i = 0; i < m; ++i) {
      if (mask & (1ull << i)) s.push_back(universe[i]);
    }
    if (max_size != 0 && s.size() > max_size) continue;
    int64_t count = 0;
    for (const auto& t : txns) {
      if (IsSubsetOf(s, t)) ++count;
    }
    if (count >= min_count) out[s] = count;
  }
  return out;
}

TEST(ItemsetTest, CanonicalizeSortsAndDedups) {
  Itemset s = {5, 1, 5, 3, 1};
  Canonicalize(s);
  EXPECT_EQ(s, (Itemset{1, 3, 5}));
}

TEST(ItemsetTest, SubsetUnionDifference) {
  Itemset a = {1, 3, 5}, b = {1, 5};
  EXPECT_TRUE(IsSubsetOf(b, a));
  EXPECT_FALSE(IsSubsetOf(a, b));
  EXPECT_EQ(Union(a, b), (Itemset{1, 3, 5}));
  EXPECT_EQ(Difference(a, b), (Itemset{3}));
  EXPECT_EQ(ItemsetToString(b), "{1, 5}");
}

TEST(ItemsetTest, HashDistinguishes) {
  ItemsetHash h;
  EXPECT_NE(h({1, 2}), h({2, 1, 3}));
  EXPECT_EQ(h({1, 2}), h({1, 2}));
}

TEST(AprioriTest, EmptyTransactions) {
  AprioriOptions opts;
  opts.min_support_count = 1;
  auto r = MineFrequentItemsets({}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(AprioriTest, RejectsNonCanonicalTransactions) {
  AprioriOptions opts;
  auto r = MineFrequentItemsets({{3, 1}}, opts);
  EXPECT_TRUE(r.status().IsInvalidArgument());
  auto r2 = MineFrequentItemsets({{1, 1}}, opts);
  EXPECT_TRUE(r2.status().IsInvalidArgument());
}

TEST(AprioriTest, RejectsZeroSupport) {
  AprioriOptions opts;
  opts.min_support_count = 0;
  EXPECT_TRUE(MineFrequentItemsets({{1}}, opts).status().IsInvalidArgument());
}

TEST(AprioriTest, TextbookExample) {
  // Classic market-basket example.
  std::vector<Itemset> txns = {
      {1, 3, 4}, {2, 3, 5}, {1, 2, 3, 5}, {2, 5}};
  AprioriOptions opts;
  opts.min_support_count = 2;
  auto r = MineFrequentItemsets(txns, opts);
  ASSERT_TRUE(r.ok());
  std::map<Itemset, int64_t> got;
  for (const auto& f : *r) got[f.items] = f.count;
  std::map<Itemset, int64_t> expect = {
      {{1}, 2},    {{2}, 3},    {{3}, 3},    {{5}, 3},
      {{1, 3}, 2}, {{2, 3}, 2}, {{2, 5}, 3}, {{3, 5}, 2},
      {{2, 3, 5}, 2}};
  EXPECT_EQ(got, expect);
}

TEST(AprioriTest, MatchesBruteForceOnRandomBaskets) {
  Rng rng(101);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<Itemset> txns;
    size_t n = 30;
    for (size_t i = 0; i < n; ++i) {
      Itemset t;
      for (Item it = 0; it < 8; ++it) {
        if (rng.Bernoulli(0.35)) t.push_back(it);
      }
      txns.push_back(t);
    }
    int64_t min_count = rng.UniformInt(2, 6);
    AprioriOptions opts;
    opts.min_support_count = min_count;
    auto r = MineFrequentItemsets(txns, opts);
    ASSERT_TRUE(r.ok());
    std::map<Itemset, int64_t> got;
    for (const auto& f : *r) got[f.items] = f.count;
    EXPECT_EQ(got, BruteFrequent(txns, min_count, 0)) << "trial " << trial;
  }
}

TEST(AprioriTest, MaxItemsetSizeCapsLevels) {
  std::vector<Itemset> txns(10, Itemset{1, 2, 3, 4});
  AprioriOptions opts;
  opts.min_support_count = 5;
  opts.max_itemset_size = 2;
  auto r = MineFrequentItemsets(txns, opts);
  ASSERT_TRUE(r.ok());
  size_t max_size = 0;
  for (const auto& f : *r) max_size = std::max(max_size, f.items.size());
  EXPECT_EQ(max_size, 2u);
}

TEST(AprioriTest, DownwardClosureHolds) {
  Rng rng(102);
  std::vector<Itemset> txns;
  for (int i = 0; i < 50; ++i) {
    Itemset t;
    for (Item it = 0; it < 10; ++it) {
      if (rng.Bernoulli(0.4)) t.push_back(it);
    }
    txns.push_back(t);
  }
  AprioriOptions opts;
  opts.min_support_count = 5;
  auto r = MineFrequentItemsets(txns, opts);
  ASSERT_TRUE(r.ok());
  std::map<Itemset, int64_t> got;
  for (const auto& f : *r) got[f.items] = f.count;
  for (const auto& [items, count] : got) {
    if (items.size() < 2) continue;
    for (size_t drop = 0; drop < items.size(); ++drop) {
      Itemset sub;
      for (size_t i = 0; i < items.size(); ++i) {
        if (i != drop) sub.push_back(items[i]);
      }
      ASSERT_TRUE(got.count(sub)) << ItemsetToString(items);
      EXPECT_GE(got[sub], count);
    }
  }
}

TEST(AprioriTest, CandidateFilterIsRespected) {
  std::vector<Itemset> txns(10, Itemset{1, 2, 3});
  AprioriOptions opts;
  opts.min_support_count = 1;
  // Anti-monotone filter: no itemset containing both 1 and 2.
  opts.candidate_filter = [](const Itemset& s) {
    return !(std::binary_search(s.begin(), s.end(), 1u) &&
             std::binary_search(s.begin(), s.end(), 2u));
  };
  auto r = MineFrequentItemsets(txns, opts);
  ASSERT_TRUE(r.ok());
  for (const auto& f : *r) {
    EXPECT_FALSE(IsSubsetOf({1, 2}, f.items)) << ItemsetToString(f.items);
  }
  // {1,3} and {2,3} still found.
  std::map<Itemset, int64_t> got;
  for (const auto& f : *r) got[f.items] = f.count;
  EXPECT_TRUE(got.count({1, 3}));
  EXPECT_TRUE(got.count({2, 3}));
}

TEST(RuleGenTest, ConfidenceExactness) {
  // 10 transactions: {1,2} x6, {1} x2, {2} x2.
  std::vector<Itemset> txns;
  for (int i = 0; i < 6; ++i) txns.push_back({1, 2});
  for (int i = 0; i < 2; ++i) txns.push_back({1});
  for (int i = 0; i < 2; ++i) txns.push_back({2});
  AprioriOptions opts;
  opts.min_support_count = 2;
  opts.min_confidence = 0.0;
  auto rules = MineAssociationRules(txns, opts);
  ASSERT_TRUE(rules.ok());
  bool found = false;
  for (const auto& rule : *rules) {
    if (rule.antecedent == Itemset{1} && rule.consequent == Itemset{2}) {
      found = true;
      EXPECT_DOUBLE_EQ(rule.confidence, 6.0 / 8.0);
      EXPECT_DOUBLE_EQ(rule.support, 0.6);
      EXPECT_EQ(rule.support_count, 6);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RuleGenTest, MinConfidenceFilters) {
  std::vector<Itemset> txns;
  for (int i = 0; i < 6; ++i) txns.push_back({1, 2});
  for (int i = 0; i < 4; ++i) txns.push_back({1});
  AprioriOptions opts;
  opts.min_support_count = 2;
  opts.min_confidence = 0.9;
  auto rules = MineAssociationRules(txns, opts);
  ASSERT_TRUE(rules.ok());
  // conf(1 => 2) = 0.6 < 0.9 (dropped); conf(2 => 1) = 1.0 (kept).
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ((*rules)[0].antecedent, (Itemset{2}));
  EXPECT_DOUBLE_EQ((*rules)[0].confidence, 1.0);
}

TEST(RuleGenTest, MultiWayRulesFromTriple) {
  std::vector<Itemset> txns(8, Itemset{1, 2, 3});
  AprioriOptions opts;
  opts.min_support_count = 2;
  opts.min_confidence = 0.5;
  auto rules = MineAssociationRules(txns, opts);
  ASSERT_TRUE(rules.ok());
  // From {1,2,3}: 6 rules; from the three pairs: 6 more.
  EXPECT_EQ(rules->size(), 12u);
}

TEST(RuleGenTest, GenerateRulesRejectsInconsistentInput) {
  std::vector<FrequentItemset> bogus = {{{1, 2}, 5}};  // missing subsets
  AprioriOptions opts;
  opts.min_confidence = 0.1;
  auto rules = GenerateRules(bogus, 10, opts);
  EXPECT_TRUE(rules.status().IsInvalidArgument());
}

TEST(RuleGenTest, GenerateRulesRejectsZeroTransactions) {
  AprioriOptions opts;
  EXPECT_TRUE(GenerateRules({}, 0, opts).status().IsInvalidArgument());
}

TEST(RuleGenTest, RuleToStringFormat) {
  AssociationRule rule;
  rule.antecedent = {1};
  rule.consequent = {2};
  rule.support = 0.5;
  rule.confidence = 0.75;
  std::string s = rule.ToString();
  EXPECT_NE(s.find("{1} => {2}"), std::string::npos);
  EXPECT_NE(s.find("0.75"), std::string::npos);
}

}  // namespace
}  // namespace dar
