#include "birch/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dar {
namespace {

using testutil::BruteCentroid;
using testutil::BruteD2Discrete;
using testutil::BruteD2Rms;
using testutil::BruteDiameterRms;
using testutil::Points;
using testutil::RandomDiscretePoints;
using testutil::RandomPoints;

CfVector Summarize(const Points& pts, MetricKind metric) {
  CfVector cf(pts[0].size(), metric);
  for (const auto& p : pts) cf.AddPoint(p);
  return cf;
}

TEST(ClusterMetricTest, Names) {
  EXPECT_STREQ(ClusterMetricToString(ClusterMetric::kD0Centroid), "D0");
  EXPECT_STREQ(ClusterMetricToString(ClusterMetric::kD2AvgInter), "D2");
  EXPECT_STREQ(ClusterMetricToString(ClusterMetric::kD4VarIncrease), "D4");
}

TEST(ClusterMetricTest, D0MatchesCentroidDistance) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    Points a = RandomPoints(rng, 9, 2);
    Points b = RandomPoints(rng, 6, 2);
    CfVector cfa = Summarize(a, MetricKind::kEuclidean);
    CfVector cfb = Summarize(b, MetricKind::kEuclidean);
    double expect = PointDistance(MetricKind::kEuclidean, BruteCentroid(a),
                                  BruteCentroid(b));
    EXPECT_NEAR(ClusterDistance(cfa, cfb, ClusterMetric::kD0Centroid), expect,
                1e-9);
  }
}

TEST(ClusterMetricTest, D1MatchesManhattanCentroidDistance) {
  Rng rng(32);
  Points a = RandomPoints(rng, 9, 3);
  Points b = RandomPoints(rng, 6, 3);
  CfVector cfa = Summarize(a, MetricKind::kEuclidean);
  CfVector cfb = Summarize(b, MetricKind::kEuclidean);
  double expect = PointDistance(MetricKind::kManhattan, BruteCentroid(a),
                                BruteCentroid(b));
  EXPECT_NEAR(
      ClusterDistance(cfa, cfb, ClusterMetric::kD1CentroidManhattan), expect,
      1e-9);
}

TEST(ClusterMetricTest, D2MatchesBruteForce) {
  Rng rng(33);
  for (int trial = 0; trial < 15; ++trial) {
    Points a = RandomPoints(rng, size_t(rng.UniformInt(1, 20)), 2);
    Points b = RandomPoints(rng, size_t(rng.UniformInt(1, 20)), 2);
    CfVector cfa = Summarize(a, MetricKind::kEuclidean);
    CfVector cfb = Summarize(b, MetricKind::kEuclidean);
    EXPECT_NEAR(ClusterDistance(cfa, cfb, ClusterMetric::kD2AvgInter),
                BruteD2Rms(a, b), 1e-8);
  }
}

TEST(ClusterMetricTest, D3IsMergedDiameter) {
  Rng rng(34);
  Points a = RandomPoints(rng, 8, 2);
  Points b = RandomPoints(rng, 5, 2);
  CfVector cfa = Summarize(a, MetricKind::kEuclidean);
  CfVector cfb = Summarize(b, MetricKind::kEuclidean);
  Points all = a;
  all.insert(all.end(), b.begin(), b.end());
  EXPECT_NEAR(ClusterDistance(cfa, cfb, ClusterMetric::kD3AvgIntra),
              BruteDiameterRms(all), 1e-8);
}

TEST(ClusterMetricTest, D4MatchesVarianceIncrease) {
  Rng rng(35);
  Points a = RandomPoints(rng, 8, 2);
  Points b = RandomPoints(rng, 5, 2);
  CfVector cfa = Summarize(a, MetricKind::kEuclidean);
  CfVector cfb = Summarize(b, MetricKind::kEuclidean);
  auto scatter = [](const Points& pts) {
    auto c = BruteCentroid(pts);
    double s = 0;
    for (const auto& p : pts) s += SquaredEuclidean(p, c);
    return s;
  };
  Points all = a;
  all.insert(all.end(), b.begin(), b.end());
  double expect = std::sqrt(scatter(all) - scatter(a) - scatter(b));
  EXPECT_NEAR(ClusterDistance(cfa, cfb, ClusterMetric::kD4VarIncrease),
              expect, 1e-8);
}

TEST(ClusterMetricTest, D2LowerBoundedByRadii) {
  // The §6.2 pruning inequality: D2(A,B)^2 = R_A^2 + R_B^2 + D0^2.
  Rng rng(36);
  for (int trial = 0; trial < 10; ++trial) {
    Points a = RandomPoints(rng, 10, 2);
    Points b = RandomPoints(rng, 10, 2);
    CfVector cfa = Summarize(a, MetricKind::kEuclidean);
    CfVector cfb = Summarize(b, MetricKind::kEuclidean);
    double d2 = ClusterDistance(cfa, cfb, ClusterMetric::kD2AvgInter);
    double d0 = ClusterDistance(cfa, cfb, ClusterMetric::kD0Centroid);
    EXPECT_NEAR(d2 * d2,
                cfa.Radius() * cfa.Radius() + cfb.Radius() * cfb.Radius() +
                    d0 * d0,
                1e-7);
    EXPECT_GE(d2 + 1e-12, cfa.Radius());
    EXPECT_GE(d2 + 1e-12, cfb.Radius());
  }
}

TEST(ClusterMetricTest, IdenticalSinglePointClustersAreAtZero) {
  CfVector a(1, MetricKind::kEuclidean), b(1, MetricKind::kEuclidean);
  a.AddPoint(std::vector<double>{5.0});
  b.AddPoint(std::vector<double>{5.0});
  for (auto m : {ClusterMetric::kD0Centroid, ClusterMetric::kD1CentroidManhattan,
                 ClusterMetric::kD2AvgInter, ClusterMetric::kD3AvgIntra,
                 ClusterMetric::kD4VarIncrease}) {
    EXPECT_NEAR(ClusterDistance(a, b, m), 0.0, 1e-12) << ClusterMetricToString(m);
  }
}

TEST(ClusterMetricTest, DiscreteD2MatchesBruteForce) {
  Rng rng(37);
  for (int trial = 0; trial < 15; ++trial) {
    Points a = RandomDiscretePoints(rng, size_t(rng.UniformInt(1, 15)), 2);
    Points b = RandomDiscretePoints(rng, size_t(rng.UniformInt(1, 15)), 2);
    CfVector cfa = Summarize(a, MetricKind::kDiscrete);
    CfVector cfb = Summarize(b, MetricKind::kDiscrete);
    double expect = BruteD2Discrete(a, b);
    EXPECT_NEAR(ClusterDistance(cfa, cfb, ClusterMetric::kD2AvgInter), expect,
                1e-9);
    // Centroid-based metrics degenerate to the same average form.
    EXPECT_NEAR(ClusterDistance(cfa, cfb, ClusterMetric::kD0Centroid), expect,
                1e-9);
    EXPECT_NEAR(
        ClusterDistance(cfa, cfb, ClusterMetric::kD1CentroidManhattan),
        expect, 1e-9);
  }
}

TEST(ClusterMetricTest, DiscreteDistanceBetweenPureClustersIs01) {
  // The §5.1 construction: pure single-value clusters behave like nominal
  // values under the 0/1 metric.
  CfVector a(1, MetricKind::kDiscrete), b(1, MetricKind::kDiscrete),
      c(1, MetricKind::kDiscrete);
  for (int i = 0; i < 4; ++i) a.AddPoint(std::vector<double>{1.0});
  for (int i = 0; i < 3; ++i) b.AddPoint(std::vector<double>{1.0});
  for (int i = 0; i < 5; ++i) c.AddPoint(std::vector<double>{2.0});
  EXPECT_DOUBLE_EQ(ClusterDistance(a, b, ClusterMetric::kD2AvgInter), 0.0);
  EXPECT_DOUBLE_EQ(ClusterDistance(a, c, ClusterMetric::kD2AvgInter), 1.0);
}

TEST(PointClusterDistanceTest, EuclideanToCentroid) {
  CfVector cf(2, MetricKind::kEuclidean);
  cf.AddPoint(std::vector<double>{0, 0});
  cf.AddPoint(std::vector<double>{2, 0});
  std::vector<double> x = {1, 4};
  EXPECT_NEAR(PointClusterDistance(x, cf), 4.0, 1e-12);
}

TEST(PointClusterDistanceTest, ManhattanToCentroid) {
  CfVector cf(2, MetricKind::kManhattan);
  cf.AddPoint(std::vector<double>{0, 0});
  cf.AddPoint(std::vector<double>{2, 2});
  std::vector<double> x = {3, 5};
  EXPECT_NEAR(PointClusterDistance(x, cf), 2.0 + 4.0, 1e-12);
}

TEST(PointClusterDistanceTest, DiscreteMismatchProbability) {
  CfVector cf(1, MetricKind::kDiscrete);
  cf.AddPoint(std::vector<double>{1.0});
  cf.AddPoint(std::vector<double>{1.0});
  cf.AddPoint(std::vector<double>{2.0});
  std::vector<double> x = {1.0};
  EXPECT_NEAR(PointClusterDistance(x, cf), 1.0 - 2.0 / 3.0, 1e-12);
  std::vector<double> y = {9.0};
  EXPECT_NEAR(PointClusterDistance(y, cf), 1.0, 1e-12);
}

}  // namespace
}  // namespace dar
